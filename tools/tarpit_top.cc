// tarpit_top: live operator console for the defense forensics layer.
//
// The registry, event ring, risk scorer and watchdog are in-process
// (this codebase is a library, not a daemon), so the console drives
// its own mixed workload -- a handful of benign Zipf readers plus one
// extraction-shaped sequential scanner, all attributed principals
// against a ConcurrentProtectedDatabase with real (small) stalls
// parked on the timer wheel -- and renders one frame per poll: parked
// stalls, charged-delay p50/p99/p999, the top principals by
// extraction-risk score, the watchdog's verdicts, and the event ring's
// tallies. The extractor visibly climbs to the top of the risk board
// within a few frames, which is the whole point of the forensics
// layer: extraction announces itself long before the dataset is gone.
//
// Usage:
//   tarpit_top [--frames=N] [--interval=SECONDS] [--plain]
//              [--rows=N] [--batch=N]
//
//   --frames    frames to render before exiting (default 10).
//   --interval  seconds between frames (default 0.5).
//   --plain     no ANSI cursor-home/clear between frames (append
//               frames instead -- for logs, CI, and dumb terminals).
//   --rows      protected-table size (default 512).
//   --batch     async requests issued per principal per frame
//               (default 48; the extractor issues 4x this).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/resource_governor.h"
#include "core/self_audit.h"
#include "obs/event_ring.h"
#include "obs/metrics.h"
#include "obs/risk.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "workload/key_generator.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

struct Args {
  int frames = 10;
  double interval = 0.5;
  bool plain = false;
  int rows = 512;
  int batch = 48;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&a](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return a.compare(0, n, flag) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = value("--frames=")) {
      args->frames = std::atoi(v);
    } else if (const char* v = value("--interval=")) {
      args->interval = std::atof(v);
    } else if (a == "--plain") {
      args->plain = true;
    } else if (const char* v = value("--rows=")) {
      args->rows = std::atoi(v);
    } else if (const char* v = value("--batch=")) {
      args->batch = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  if (args->frames < 1 || args->interval <= 0 || args->rows < 8 ||
      args->batch < 1) {
    std::fprintf(stderr,
                 "--frames >= 1, --interval > 0, --rows >= 8, "
                 "--batch >= 1 required\n");
    return false;
  }
  return true;
}

double HistQuantile(const obs::RegistrySnapshot& snap, double q) {
  // Quantiles across every policy label of the delay-charged
  // histogram (one policy per run, but stay label-agnostic).
  for (const obs::MetricSnapshot& m : snap.metrics) {
    if (m.kind == obs::MetricKind::kHistogram &&
        m.name == "tarpit_delay_charged_ns" && m.histogram.count > 0) {
      return m.histogram.Quantile(q) / 1e6;  // ns -> ms
    }
  }
  return 0;
}

int64_t GaugeValue(const obs::RegistrySnapshot& snap, const char* name) {
  const obs::MetricSnapshot* m = snap.Find(name);
  return m != nullptr ? m->value : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  obs::MetricRegistry registry;
  obs::TraceSink trace_sink;
  obs::DefenseEventRingOptions ring_opts;
  ring_opts.metrics = &registry;
  obs::DefenseEventRing events(ring_opts);
  obs::RiskScorerOptions risk_opts;
  risk_opts.keyspace_size = args.rows;
  risk_opts.metrics = &registry;
  // Sampled hot feed (1-in-4 hash partition, estimates scaled back):
  // the small demo keyspace still resolves breadth fast.
  risk_opts.query_sample_every = 4;
  obs::RiskScorer risk(risk_opts);

  ResourceGovernorOptions gov_opts;
  gov_opts.max_parked_stalls = 256;
  gov_opts.metrics = &registry;
  ResourceGovernor governor(gov_opts);

  const fs::path dir = fs::temp_directory_path() / "tarpit_top";
  fs::remove_all(dir);
  fs::create_directories(dir);

  RealClock clock;
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  // Small real stalls: popular tuples cost ~a millisecond, cold ones
  // cap at 60 ms -- long enough that parked stalls are visible on the
  // board, short enough that the console stays live.
  opts.popularity.scale = 0.02;
  opts.popularity.bounds.min_seconds = 0.001;
  opts.popularity.bounds.max_seconds = 0.060;
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.async_stalls = true;
  copts.governor = &governor;
  copts.metrics = &registry;
  copts.trace_sink = &trace_sink;
  copts.event_ring = &events;
  copts.risk = &risk;
  auto opened = ConcurrentProtectedDatabase::Open(dir.string(), "items",
                                                  &clock, opts, copts);
  if (!opened.ok()) {
    std::fprintf(stderr, "open: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*opened);
  if (!db->ExecuteSql(
             "CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::fprintf(stderr, "create table failed\n");
    return 1;
  }
  for (int i = 1; i <= args.rows; ++i) {
    if (!db->BulkLoadRow(
               {Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::fprintf(stderr, "bulk load failed\n");
      return 1;
    }
  }

  obs::SelfAuditWatchdogOptions wd_opts;
  wd_opts.metrics = &registry;
  wd_opts.events = &events;
  obs::SelfAuditWatchdog watchdog(wd_opts);
  SelfAuditTargets targets;
  targets.db = db.get();
  targets.metrics = &registry;
  targets.governor = &governor;
  InstallStandardChecks(&watchdog, targets);

  obs::MetricTimeSeries timeseries(&registry);

  // Principals: 1..4 are benign Zipf readers; 9 is the extractor
  // (sequential full scans at 4x the benign rate).
  constexpr uint64_t kExtractor = 9;
  std::vector<RequestPrincipal> benign;
  for (uint64_t id = 1; id <= 4; ++id) {
    benign.push_back({id, static_cast<uint32_t>(0x0A000000u | (id << 8))});
  }
  const RequestPrincipal extractor{kExtractor, 0xC0A80100u};
  Rng rng(0x70F);
  ZipfKeyGenerator zipf(args.rows, 1.1);
  int64_t scan_cursor = 0;
  std::atomic<uint64_t> completed{0};

  for (int frame = 1; frame <= args.frames; ++frame) {
    // Issue this frame's traffic; stalls park on the wheel and
    // complete on dispatcher threads while we render.
    auto fire = [&](const RequestPrincipal& who, int64_t key) {
      db->GetByKeyAsync(
          key, who,
          [&completed](Result<ProtectedResult> r) {
            (void)r;  // Overloaded / cancelled still count as done.
            completed.fetch_add(1, std::memory_order_relaxed);
          },
          /*session=*/who.identity);
    };
    for (int i = 0; i < args.batch; ++i) {
      for (const RequestPrincipal& who : benign) {
        fire(who, zipf.Next(&rng));
      }
      for (int e = 0; e < 4; ++e) {
        scan_cursor = scan_cursor % args.rows + 1;
        fire(extractor, scan_cursor);
      }
    }

    // Render mid-flight (stalls are 1-60 ms, so waiting the whole
    // interval would always show an idle wheel); sleep the remainder
    // after the frame is out.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(args.interval * 0.05));

    const double now = clock.NowSeconds();
    timeseries.ScrapeOnce(now);
    risk.OnScrape(now);
    watchdog.RunOnce(clock.NowMicros());

    const obs::RegistrySnapshot snap = registry.Snapshot();
    std::string out;
    out.reserve(2048);
    char line[256];
    if (!args.plain) out += "\x1b[H\x1b[2J";
    std::snprintf(line, sizeof line,
                  "tarpit_top — frame %d/%d  (interval %.2fs)\n\n",
                  frame, args.frames, args.interval);
    out += line;
    std::snprintf(
        line, sizeof line,
        "requests   issued=%lld  completed=%llu  parked=%lld  "
        "peak=%lld  shed=%llu\n",
        static_cast<long long>(
            GaugeValue(snap, "tarpit_db_requests_total")),
        static_cast<unsigned long long>(
            completed.load(std::memory_order_relaxed)),
        static_cast<long long>(
            GaugeValue(snap, "tarpit_scheduler_parked")),
        static_cast<long long>(
            GaugeValue(snap, "tarpit_scheduler_parked_peak")),
        static_cast<unsigned long long>(governor.shed_total()));
    out += line;
    std::snprintf(line, sizeof line,
                  "delay ms   p50=%.2f  p99=%.2f  p999=%.2f\n",
                  HistQuantile(snap, 0.50), HistQuantile(snap, 0.99),
                  HistQuantile(snap, 0.999));
    out += line;
    std::snprintf(
        line, sizeof line,
        "events     appended=%llu  dropped=%llu  retained=%zu\n",
        static_cast<unsigned long long>(events.appended_total()),
        static_cast<unsigned long long>(events.dropped_total()),
        events.retained());
    out += line;

    out += "\nwatchdog   ";
    out += watchdog.healthy() ? "HEALTHY" : "*** VIOLATION ***";
    std::snprintf(line, sizeof line, "  (passes=%llu)\n",
                  static_cast<unsigned long long>(
                      watchdog.passes_total()));
    out += line;
    for (const auto& check : watchdog.Stats()) {
      const char* verdict =
          check.last.status == obs::WatchdogResult::Status::kOk
              ? "ok"
              : check.last.status ==
                        obs::WatchdogResult::Status::kSkipped
                    ? "skipped"
                    : "VIOLATION";
      std::snprintf(line, sizeof line,
                    "  %-20s %-10s runs=%llu violations=%llu "
                    "skips=%llu %s\n",
                    check.name.c_str(), verdict,
                    static_cast<unsigned long long>(check.runs),
                    static_cast<unsigned long long>(check.violations),
                    static_cast<unsigned long long>(check.skips),
                    check.last.detail.c_str());
      out += line;
    }

    out += "\ntop principals by extraction risk\n"
           "  principal      score  breadth  queries  "
           "(bre/rate/probe/sig)\n";
    for (const obs::RiskScore& s : risk.TopN(5, now)) {
      std::snprintf(
          line, sizeof line,
          "  %-9llu %s %6.1f  %7.0f  %7llu  "
          "(%.2f/%.2f/%.2f/%.2f)\n",
          static_cast<unsigned long long>(s.principal),
          s.principal == kExtractor ? "<-scan" : "      ", s.score,
          s.breadth, static_cast<unsigned long long>(s.queries),
          s.breadth_component, s.rate_component, s.probe_component,
          s.signal_component);
      out += line;
    }
    std::fputs(out.c_str(), stdout);
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(args.interval * 0.95));
  }

  // Drain: cancel outstanding parked stalls so shutdown is prompt;
  // cancellations land in the ring as kCancelled forensics.
  for (const RequestPrincipal& who : benign) {
    db->CancelSession(who.identity);
  }
  db->CancelSession(extractor.identity);
  std::printf(
      "\ncancelled-on-exit events: %llu  (ring total %llu, dropped "
      "%llu)\n",
      static_cast<unsigned long long>(
          events.CountOfType(obs::DefenseEventType::kCancelled)),
      static_cast<unsigned long long>(events.appended_total()),
      static_cast<unsigned long long>(events.dropped_total()));

  db.reset();
  fs::remove_all(dir);
  return 0;
}
