// tarpit_bench_client: load generator for the tarpit network front
// end. Two modes:
//
//   --mode=park (default): open --connections sockets (rotating source
//     IPs across 127.0.0.0/8 when --source-ips > 0 so the 4-tuple
//     space, not ephemeral ports, is the bound), send one kGetKey on
//     each, and HOLD them all open while the server parks every
//     stalled response on its DelayScheduler. Reports the steady-state
//     count -- point it at `tarpit_server --delay-min=300
//     --delay-max=300` and watch tarpit_net_parked_connections climb.
//
//   --mode=rate: open-loop (coordinated-omission-free) request rate
//     from --threads blocking connections at --qps total for
//     --seconds, reporting p50/p99/p999 response latency (stall
//     included) -- the client-side mirror of bench_net_capacity's
//     in-process measurement.
//
// Usage:
//   tarpit_bench_client --port=N [--host=H] [--mode=park|rate]
//                       [--connections=N] [--source-ips=N] [--hold=S]
//                       [--qps=N] [--threads=N] [--seconds=S]
//                       [--keys=N]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/load_client.h"
#include "net/socket.h"

using namespace tarpit;

namespace {

struct Args {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string mode = "park";
  size_t connections = 10000;
  size_t source_ips = 64;
  double hold = 10.0;
  double qps = 200.0;
  size_t threads = 4;
  double seconds = 10.0;
  int64_t keys = 1024;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--host=")) {
      out->host = v;
    } else if (const char* v = val("--port=")) {
      out->port = static_cast<uint16_t>(std::atoi(v));
    } else if (const char* v = val("--mode=")) {
      out->mode = v;
    } else if (const char* v = val("--connections=")) {
      out->connections = static_cast<size_t>(std::atol(v));
    } else if (const char* v = val("--source-ips=")) {
      out->source_ips = static_cast<size_t>(std::atol(v));
    } else if (const char* v = val("--hold=")) {
      out->hold = std::atof(v);
    } else if (const char* v = val("--qps=")) {
      out->qps = std::atof(v);
    } else if (const char* v = val("--threads=")) {
      out->threads = static_cast<size_t>(std::atol(v));
    } else if (const char* v = val("--seconds=")) {
      out->seconds = std::atof(v);
    } else if (const char* v = val("--keys=")) {
      out->keys = std::atol(v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  if (out->port == 0) {
    std::fprintf(stderr, "--port is required\n");
    return false;
  }
  return true;
}

int RunPark(const Args& args) {
  const size_t limit = net::TryRaiseNofileLimit(args.connections + 512);
  size_t target = args.connections;
  if (limit < target + 256) {
    target = limit > 512 ? limit - 512 : limit / 2;
    std::fprintf(stderr,
                 "RLIMIT_NOFILE caps at %zu fds; reducing to %zu "
                 "connections\n",
                 limit, target);
  }
  net::LoadClientOptions opts;
  opts.host = args.host;
  opts.port = args.port;
  opts.connections = target;
  opts.source_ips = args.source_ips;
  opts.key_min = 1;
  opts.key_max = args.keys;
  net::LoadClient lc(opts);
  Status s = lc.Init();
  if (!s.ok()) {
    std::fprintf(stderr, "init: %s\n", s.ToString().c_str());
    return 1;
  }
  const auto start = std::chrono::steady_clock::now();
  while (!lc.done()) lc.Drive(200);
  const double ramp =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  std::printf("ramp: %zu connected, %zu requests sent, %zu errors in "
              "%.1fs\n",
              lc.connected(), lc.requests_sent(), lc.errors(), ramp);
  const auto hold_until =
      std::chrono::steady_clock::now() +
      std::chrono::duration<double>(args.hold);
  while (std::chrono::steady_clock::now() < hold_until) {
    lc.Drive(500);
    std::printf("holding: %zu sent, %zu responses so far\n",
                lc.requests_sent(), lc.responses());
    std::fflush(stdout);
  }
  lc.CloseAll();
  return 0;
}

int RunRate(const Args& args) {
  std::vector<std::unique_ptr<net::FrameClient>> clients;
  for (size_t t = 0; t < args.threads; ++t) {
    auto c = std::make_unique<net::FrameClient>();
    Status s = c->Connect(args.host, args.port);
    if (!s.ok()) {
      std::fprintf(stderr, "connect: %s\n", s.ToString().c_str());
      return 1;
    }
    clients.push_back(std::move(c));
  }
  const size_t total_ops =
      static_cast<size_t>(args.qps * args.seconds);
  const double per_thread_qps = args.qps / args.threads;
  std::atomic<size_t> failures{0};
  std::vector<std::vector<int64_t>> lat(args.threads);
  std::vector<std::thread> workers;
  for (size_t t = 0; t < args.threads; ++t) {
    workers.emplace_back([&, t] {
      const size_t ops = total_ops / args.threads;
      const auto start = std::chrono::steady_clock::now();
      const double interval_us = 1e6 / per_thread_qps;
      lat[t].reserve(ops);
      for (size_t i = 0; i < ops; ++i) {
        // Open loop: send times are scheduled, not reactive, so a slow
        // response delays nothing and queueing shows up as latency.
        const auto due =
            start + std::chrono::microseconds(
                        static_cast<int64_t>(i * interval_us));
        std::this_thread::sleep_until(due);
        const auto t0 = std::chrono::steady_clock::now();
        auto r = clients[t]->GetByKey(
            1 + static_cast<int64_t>((t * ops + i) %
                                     static_cast<size_t>(args.keys)),
            /*timeout_seconds=*/120.0);
        if (!r.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        lat[t].push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<int64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  if (all.empty()) {
    std::fprintf(stderr, "no successful responses\n");
    return 1;
  }
  std::sort(all.begin(), all.end());
  auto pct = [&](double q) {
    return all[std::min(all.size() - 1,
                        static_cast<size_t>(q * all.size()))];
  };
  std::printf("rate: %zu ops, %zu failures, p50 %lld us, p99 %lld us, "
              "p999 %lld us\n",
              all.size(), failures.load(),
              static_cast<long long>(pct(0.50)),
              static_cast<long long>(pct(0.99)),
              static_cast<long long>(pct(0.999)));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (args.mode == "park") return RunPark(args);
  if (args.mode == "rate") return RunRate(args);
  std::fprintf(stderr, "unknown mode: %s\n", args.mode.c_str());
  return 2;
}
