// tarpit_metrics_dump: run an instrumented workload against a
// delay-protected database and dump the metric registry in Prometheus
// text or JSON -- the command-line face of the /metrics surface.
//
// The registry is in-process (this codebase is a library, not a
// daemon), so the CLI drives its own workload: open a
// ConcurrentProtectedDatabase with a registry and trace sink attached,
// run a burst of point reads on a virtual clock (delays are charged,
// never slept), and print the snapshot. This doubles as an end-to-end
// smoke of the whole telemetry path: scheduler, buffer pools, count
// cache, row cache, delay histograms, and request traces all light up
// in one run.
//
// Usage:
//   tarpit_metrics_dump [--format=prom|json] [--out=PATH]
//                       [--rows=N] [--queries=N] [--traces]
//                       [--emit-interval=SECONDS]
//
//   --format         prom (default), json, or trace (Chrome/Perfetto
//                    trace-event JSON rendered from the trace sink --
//                    load the output in chrome://tracing or
//                    ui.perfetto.dev).
//   --out            write the dump to PATH instead of stdout (uses
//                    the PeriodicExporter's atomic tmp+rename write).
//   --rows           table size (default 512).
//   --queries        Zipf point reads to run (default 4096).
//   --traces         also print the trace sink's slowest/recent JSON.
//   --emit-interval  additionally run the periodic file emitter at
//                    this interval for one cycle (requires --out).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "workload/key_generator.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

struct Args {
  std::string format = "prom";
  std::string out;
  int rows = 512;
  int queries = 4096;
  bool traces = false;
  double emit_interval = 0.0;
};

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&a](const char* flag) -> const char* {
      const size_t n = std::strlen(flag);
      return a.compare(0, n, flag) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = value("--format=")) {
      args->format = v;
    } else if (const char* v = value("--out=")) {
      args->out = v;
    } else if (const char* v = value("--rows=")) {
      args->rows = std::atoi(v);
    } else if (const char* v = value("--queries=")) {
      args->queries = std::atoi(v);
    } else if (a == "--traces") {
      args->traces = true;
    } else if (const char* v = value("--emit-interval=")) {
      args->emit_interval = std::atof(v);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
      return false;
    }
  }
  if (args->format != "prom" && args->format != "json" &&
      args->format != "trace") {
    std::fprintf(stderr,
                 "--format must be prom, json or trace (got %s)\n",
                 args->format.c_str());
    return false;
  }
  if (args->format == "trace" && args->emit_interval > 0) {
    std::fprintf(stderr, "--emit-interval only supports prom/json\n");
    return false;
  }
  if (args->rows < 1 || args->queries < 0) {
    std::fprintf(stderr, "--rows must be >= 1, --queries >= 0\n");
    return false;
  }
  if (args->emit_interval > 0 && args->out.empty()) {
    std::fprintf(stderr, "--emit-interval requires --out\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  obs::MetricRegistry registry;
  obs::TraceSinkOptions sink_opts;
  if (args.format == "trace") {
    // A trace dump is single-run forensics: span every request instead
    // of head-sampling 1-in-16.
    sink_opts.sample_every = 1;
  }
  obs::TraceSink trace_sink(sink_opts);

  const fs::path dir =
      fs::temp_directory_path() / "tarpit_metrics_dump";
  fs::remove_all(dir);
  fs::create_directories(dir);

  {
    // Virtual clock: delays are charged on the simulated timeline, so
    // the dump is instant no matter how punitive the policy is.
    VirtualClock clock;
    ProtectedDatabaseOptions opts;
    opts.mode = DelayMode::kAccessPopularity;
    opts.persist_counts = true;
    opts.count_cache_capacity = static_cast<size_t>(args.rows) / 4 + 1;
    ConcurrentDatabaseOptions copts;
    copts.mode = ConcurrencyMode::kSharded;
    copts.async_stalls = true;  // Virtual wheel: instant fire.
    copts.metrics = &registry;
    copts.trace_sink = &trace_sink;
    auto opened = ConcurrentProtectedDatabase::Open(
        dir.string(), "items", &clock, opts, copts);
    if (!opened.ok()) {
      std::fprintf(stderr, "open: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    auto db = std::move(*opened);
    if (!db->ExecuteSql(
               "CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
             .ok()) {
      std::fprintf(stderr, "create table failed\n");
      return 1;
    }
    for (int i = 1; i <= args.rows; ++i) {
      if (!db->BulkLoadRow(
                 {Value(static_cast<int64_t>(i)), Value(i * 0.5)})
               .ok()) {
        std::fprintf(stderr, "bulk load failed\n");
        return 1;
      }
    }
    Rng rng(0xD09);
    ZipfKeyGenerator gen(args.rows, 1.1);
    for (int i = 0; i < args.queries; ++i) {
      auto r = db->GetByKey(gen.Next(&rng));
      if (!r.ok()) {
        std::fprintf(stderr, "query: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
    if (!db->Checkpoint().ok()) {
      std::fprintf(stderr, "checkpoint failed\n");
      return 1;
    }
  }

  if (args.format == "trace") {
    // The Perfetto export path: retained spans (deduped slowest +
    // recent) as trace events, with exemplar links from delay-charged
    // histogram buckets to trace ids.
    obs::ChromeTraceOptions topts;
    topts.registry = &registry;
    const obs::ChromeTrace trace =
        obs::ExportChromeTrace(trace_sink, topts);
    if (args.out.empty()) {
      std::fputs(trace.json.c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::FILE* f = std::fopen(args.out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "write %s failed\n", args.out.c_str());
        return 1;
      }
      std::fputs(trace.json.c_str(), f);
      std::fclose(f);
      std::printf("trace written to %s (%zu request spans, %zu phase "
                  "slices)\n",
                  args.out.c_str(), trace.request_spans,
                  trace.phase_spans);
    }
    fs::remove_all(dir);
    return 0;
  }

  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  const std::string dump = args.format == "json"
                               ? obs::ToJson(snapshot)
                               : obs::ToPrometheusText(snapshot);

  if (args.out.empty()) {
    std::fputs(dump.c_str(), stdout);
  } else {
    obs::PeriodicExporterOptions eopts;
    eopts.path = args.out;
    eopts.format = args.format == "json"
                       ? obs::PeriodicExporterOptions::Format::kJson
                       : obs::PeriodicExporterOptions::Format::kPrometheus;
    if (args.emit_interval > 0) {
      eopts.interval_seconds = args.emit_interval;
      eopts.flush_on_stop = true;
      obs::PeriodicExporter exporter(&registry, eopts);
      // Let at least one periodic cycle land before the final
      // flush-on-stop write.
      std::this_thread::sleep_for(std::chrono::duration<double>(
          args.emit_interval * 1.5));
    } else {
      eopts.flush_on_stop = false;
      obs::PeriodicExporter exporter(&registry, eopts);
      if (!exporter.WriteOnce()) {
        std::fprintf(stderr, "write %s failed\n", args.out.c_str());
        return 1;
      }
      exporter.Stop();
    }
    std::printf("metrics written to %s\n", args.out.c_str());
  }

  if (args.traces) {
    std::fputs(trace_sink.ToJson().c_str(), stdout);
    std::fputc('\n', stdout);
  }

  fs::remove_all(dir);
  return 0;
}
