// tarpit_server: stand up the epoll network front end over a
// delay-protected database and serve the length-prefixed frame
// protocol plus Prometheus /metrics over HTTP -- the daemon face of
// the library, and the binary the network benches and manual poking
// (tarpit_bench_client, curl) talk to.
//
// The served database is self-seeded: a single `items` table of
// --rows point-readable rows under access-popularity delay, so every
// kGetKey/kQuery response is stalled per the paper's policy while the
// connection parks on the DelayScheduler.
//
// Usage:
//   tarpit_server [--port=N] [--http-port=N] [--loops=N] [--rows=N]
//                 [--delay-scale=S] [--delay-min=S] [--delay-max=S]
//                 [--accept-delay=S] [--keepalive=S] [--dir=PATH]
//
//   --port          frame-protocol port (default 7437; 0 = ephemeral).
//   --http-port     /metrics HTTP port (default 7438; 0 = ephemeral).
//   --loops         event-loop (reactor) threads (default 4).
//   --rows          seeded table size (default 4096).
//   --delay-scale   popularity delay scale in seconds (default 0.05).
//   --delay-min/max delay clamp bounds in seconds (default 0.02/5.0).
//   --accept-delay  delay-before-serve base for low-reputation
//                   principals, seconds (default 0.5; 0 disables).
//   --keepalive     kProgress keep-alive interval, seconds (default 5).
//   --dir           database directory (default: fresh temp dir).
//
// SIGINT/SIGTERM stop the server with the documented drain ordering:
// stop accepting, cancel every parked stall (charges stay on the
// books), then stop the reactors and tear down the database.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "core/concurrent_db.h"
#include "defense/reputation.h"
#include "net/server.h"
#include "obs/metrics.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

struct Args {
  uint16_t port = 7437;
  uint16_t http_port = 7438;
  size_t loops = 4;
  int rows = 4096;
  double delay_scale = 0.05;
  double delay_min = 0.02;
  double delay_max = 5.0;
  double accept_delay = 0.5;
  double keepalive = 5.0;
  std::string dir;
};

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--port=")) {
      out->port = static_cast<uint16_t>(std::atoi(v));
    } else if (const char* v = val("--http-port=")) {
      out->http_port = static_cast<uint16_t>(std::atoi(v));
    } else if (const char* v = val("--loops=")) {
      out->loops = static_cast<size_t>(std::atol(v));
    } else if (const char* v = val("--rows=")) {
      out->rows = std::atoi(v);
    } else if (const char* v = val("--delay-scale=")) {
      out->delay_scale = std::atof(v);
    } else if (const char* v = val("--delay-min=")) {
      out->delay_min = std::atof(v);
    } else if (const char* v = val("--delay-max=")) {
      out->delay_max = std::atof(v);
    } else if (const char* v = val("--accept-delay=")) {
      out->accept_delay = std::atof(v);
    } else if (const char* v = val("--keepalive=")) {
      out->keepalive = std::atof(v);
    } else if (const char* v = val("--dir=")) {
      out->dir = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  const bool temp_dir = args.dir.empty();
  if (temp_dir) {
    args.dir = (fs::temp_directory_path() / "tarpit_server_db").string();
    fs::remove_all(args.dir);
  }
  fs::create_directories(args.dir);

  RealClock clock;
  obs::MetricRegistry metrics;
  ReputationStore reputation;

  ProtectedDatabaseOptions dopts;
  dopts.mode = DelayMode::kAccessPopularity;
  dopts.popularity.scale = args.delay_scale;
  dopts.popularity.bounds = {args.delay_min, args.delay_max};
  ConcurrentDatabaseOptions copts;
  copts.serve_delays = true;
  copts.async_stalls = true;
  copts.metrics = &metrics;
  auto opened = ConcurrentProtectedDatabase::Open(
      args.dir, "items", &clock, dopts, copts);
  if (!opened.ok()) {
    std::fprintf(stderr, "open database: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*opened);
  auto st =
      db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)");
  if (!st.ok()) {
    std::fprintf(stderr, "seed schema: %s\n", st.status().ToString().c_str());
    return 1;
  }
  for (int i = 1; i <= args.rows; ++i) {
    if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::fprintf(stderr, "seed row %d failed\n", i);
      return 1;
    }
  }

  net::TarpitServerOptions sopts;
  sopts.port = args.port;
  sopts.http_port = args.http_port;
  sopts.num_event_loops = args.loops;
  sopts.keepalive_interval_seconds = args.keepalive;
  sopts.accept_delay_seconds = args.accept_delay;
  sopts.reputation = &reputation;
  sopts.metrics = &metrics;
  net::TarpitServer server(db.get(), &clock, sopts);
  Status s = server.Start();
  if (!s.ok()) {
    std::fprintf(stderr, "start server: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("tarpit_server listening: frames on %u, /metrics on %u "
              "(%zu event loops, %d rows, delay [%g, %g]s)\n",
              server.port(), server.http_port(), args.loops, args.rows,
              args.delay_min, args.delay_max);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  std::printf("draining: %zu active, %zu parked\n",
              server.active_connections(), server.parked_connections());
  server.Stop();  // Drain BEFORE the database (and its scheduler) dies.
  db.reset();
  if (temp_dir) fs::remove_all(args.dir);
  std::printf("stopped: %llu responses, %llu keepalives, %llu hangups "
              "mid-stall, peak parked %zu\n",
              static_cast<unsigned long long>(server.responses_sent()),
              static_cast<unsigned long long>(server.keepalives_sent()),
              static_cast<unsigned long long>(server.hangups_mid_stall()),
              server.peak_parked_connections());
  return 0;
}
