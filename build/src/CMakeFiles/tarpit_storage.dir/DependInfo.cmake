
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/tarpit_storage.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/tarpit_storage.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/tarpit_storage.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/tarpit_storage.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/tarpit_storage.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/tarpit_storage.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/tarpit_storage.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/tarpit_storage.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/tarpit_storage.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/tarpit_storage.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/tarpit_storage.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/tarpit_storage.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/secondary_index.cc" "src/CMakeFiles/tarpit_storage.dir/storage/secondary_index.cc.o" "gcc" "src/CMakeFiles/tarpit_storage.dir/storage/secondary_index.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/tarpit_storage.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/tarpit_storage.dir/storage/slotted_page.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/tarpit_storage.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/tarpit_storage.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/tarpit_storage.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/tarpit_storage.dir/storage/value.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/tarpit_storage.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/tarpit_storage.dir/storage/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarpit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
