file(REMOVE_RECURSE
  "libtarpit_storage.a"
)
