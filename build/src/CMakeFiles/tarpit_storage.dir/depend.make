# Empty dependencies file for tarpit_storage.
# This may be replaced when dependencies are built.
