file(REMOVE_RECURSE
  "CMakeFiles/tarpit_storage.dir/storage/btree.cc.o"
  "CMakeFiles/tarpit_storage.dir/storage/btree.cc.o.d"
  "CMakeFiles/tarpit_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/tarpit_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/tarpit_storage.dir/storage/database.cc.o"
  "CMakeFiles/tarpit_storage.dir/storage/database.cc.o.d"
  "CMakeFiles/tarpit_storage.dir/storage/disk_manager.cc.o"
  "CMakeFiles/tarpit_storage.dir/storage/disk_manager.cc.o.d"
  "CMakeFiles/tarpit_storage.dir/storage/heap_file.cc.o"
  "CMakeFiles/tarpit_storage.dir/storage/heap_file.cc.o.d"
  "CMakeFiles/tarpit_storage.dir/storage/schema.cc.o"
  "CMakeFiles/tarpit_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/tarpit_storage.dir/storage/secondary_index.cc.o"
  "CMakeFiles/tarpit_storage.dir/storage/secondary_index.cc.o.d"
  "CMakeFiles/tarpit_storage.dir/storage/slotted_page.cc.o"
  "CMakeFiles/tarpit_storage.dir/storage/slotted_page.cc.o.d"
  "CMakeFiles/tarpit_storage.dir/storage/table.cc.o"
  "CMakeFiles/tarpit_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/tarpit_storage.dir/storage/value.cc.o"
  "CMakeFiles/tarpit_storage.dir/storage/value.cc.o.d"
  "CMakeFiles/tarpit_storage.dir/storage/wal.cc.o"
  "CMakeFiles/tarpit_storage.dir/storage/wal.cc.o.d"
  "libtarpit_storage.a"
  "libtarpit_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarpit_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
