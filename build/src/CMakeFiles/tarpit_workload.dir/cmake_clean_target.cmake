file(REMOVE_RECURSE
  "libtarpit_workload.a"
)
