file(REMOVE_RECURSE
  "CMakeFiles/tarpit_workload.dir/workload/boxoffice_trace.cc.o"
  "CMakeFiles/tarpit_workload.dir/workload/boxoffice_trace.cc.o.d"
  "CMakeFiles/tarpit_workload.dir/workload/calgary_trace.cc.o"
  "CMakeFiles/tarpit_workload.dir/workload/calgary_trace.cc.o.d"
  "CMakeFiles/tarpit_workload.dir/workload/mixed_workload.cc.o"
  "CMakeFiles/tarpit_workload.dir/workload/mixed_workload.cc.o.d"
  "CMakeFiles/tarpit_workload.dir/workload/trace_io.cc.o"
  "CMakeFiles/tarpit_workload.dir/workload/trace_io.cc.o.d"
  "libtarpit_workload.a"
  "libtarpit_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarpit_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
