
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/boxoffice_trace.cc" "src/CMakeFiles/tarpit_workload.dir/workload/boxoffice_trace.cc.o" "gcc" "src/CMakeFiles/tarpit_workload.dir/workload/boxoffice_trace.cc.o.d"
  "/root/repo/src/workload/calgary_trace.cc" "src/CMakeFiles/tarpit_workload.dir/workload/calgary_trace.cc.o" "gcc" "src/CMakeFiles/tarpit_workload.dir/workload/calgary_trace.cc.o.d"
  "/root/repo/src/workload/mixed_workload.cc" "src/CMakeFiles/tarpit_workload.dir/workload/mixed_workload.cc.o" "gcc" "src/CMakeFiles/tarpit_workload.dir/workload/mixed_workload.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/CMakeFiles/tarpit_workload.dir/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/tarpit_workload.dir/workload/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarpit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
