# Empty dependencies file for tarpit_workload.
# This may be replaced when dependencies are built.
