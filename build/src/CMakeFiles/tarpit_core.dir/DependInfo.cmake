
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_decay.cc" "src/CMakeFiles/tarpit_core.dir/core/adaptive_decay.cc.o" "gcc" "src/CMakeFiles/tarpit_core.dir/core/adaptive_decay.cc.o.d"
  "/root/repo/src/core/analytic_zipf_delay.cc" "src/CMakeFiles/tarpit_core.dir/core/analytic_zipf_delay.cc.o" "gcc" "src/CMakeFiles/tarpit_core.dir/core/analytic_zipf_delay.cc.o.d"
  "/root/repo/src/core/combined_delay.cc" "src/CMakeFiles/tarpit_core.dir/core/combined_delay.cc.o" "gcc" "src/CMakeFiles/tarpit_core.dir/core/combined_delay.cc.o.d"
  "/root/repo/src/core/concurrent_db.cc" "src/CMakeFiles/tarpit_core.dir/core/concurrent_db.cc.o" "gcc" "src/CMakeFiles/tarpit_core.dir/core/concurrent_db.cc.o.d"
  "/root/repo/src/core/delay_engine.cc" "src/CMakeFiles/tarpit_core.dir/core/delay_engine.cc.o" "gcc" "src/CMakeFiles/tarpit_core.dir/core/delay_engine.cc.o.d"
  "/root/repo/src/core/popularity_delay.cc" "src/CMakeFiles/tarpit_core.dir/core/popularity_delay.cc.o" "gcc" "src/CMakeFiles/tarpit_core.dir/core/popularity_delay.cc.o.d"
  "/root/repo/src/core/protected_db.cc" "src/CMakeFiles/tarpit_core.dir/core/protected_db.cc.o" "gcc" "src/CMakeFiles/tarpit_core.dir/core/protected_db.cc.o.d"
  "/root/repo/src/core/update_delay.cc" "src/CMakeFiles/tarpit_core.dir/core/update_delay.cc.o" "gcc" "src/CMakeFiles/tarpit_core.dir/core/update_delay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarpit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
