# Empty dependencies file for tarpit_core.
# This may be replaced when dependencies are built.
