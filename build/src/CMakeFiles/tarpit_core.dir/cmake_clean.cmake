file(REMOVE_RECURSE
  "CMakeFiles/tarpit_core.dir/core/adaptive_decay.cc.o"
  "CMakeFiles/tarpit_core.dir/core/adaptive_decay.cc.o.d"
  "CMakeFiles/tarpit_core.dir/core/analytic_zipf_delay.cc.o"
  "CMakeFiles/tarpit_core.dir/core/analytic_zipf_delay.cc.o.d"
  "CMakeFiles/tarpit_core.dir/core/combined_delay.cc.o"
  "CMakeFiles/tarpit_core.dir/core/combined_delay.cc.o.d"
  "CMakeFiles/tarpit_core.dir/core/concurrent_db.cc.o"
  "CMakeFiles/tarpit_core.dir/core/concurrent_db.cc.o.d"
  "CMakeFiles/tarpit_core.dir/core/delay_engine.cc.o"
  "CMakeFiles/tarpit_core.dir/core/delay_engine.cc.o.d"
  "CMakeFiles/tarpit_core.dir/core/popularity_delay.cc.o"
  "CMakeFiles/tarpit_core.dir/core/popularity_delay.cc.o.d"
  "CMakeFiles/tarpit_core.dir/core/protected_db.cc.o"
  "CMakeFiles/tarpit_core.dir/core/protected_db.cc.o.d"
  "CMakeFiles/tarpit_core.dir/core/update_delay.cc.o"
  "CMakeFiles/tarpit_core.dir/core/update_delay.cc.o.d"
  "libtarpit_core.a"
  "libtarpit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarpit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
