file(REMOVE_RECURSE
  "libtarpit_core.a"
)
