file(REMOVE_RECURSE
  "CMakeFiles/tarpit_sql.dir/sql/ast.cc.o"
  "CMakeFiles/tarpit_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/tarpit_sql.dir/sql/executor.cc.o"
  "CMakeFiles/tarpit_sql.dir/sql/executor.cc.o.d"
  "CMakeFiles/tarpit_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/tarpit_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/tarpit_sql.dir/sql/parser.cc.o"
  "CMakeFiles/tarpit_sql.dir/sql/parser.cc.o.d"
  "CMakeFiles/tarpit_sql.dir/sql/planner.cc.o"
  "CMakeFiles/tarpit_sql.dir/sql/planner.cc.o.d"
  "CMakeFiles/tarpit_sql.dir/sql/statement_template.cc.o"
  "CMakeFiles/tarpit_sql.dir/sql/statement_template.cc.o.d"
  "libtarpit_sql.a"
  "libtarpit_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarpit_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
