# Empty compiler generated dependencies file for tarpit_sql.
# This may be replaced when dependencies are built.
