file(REMOVE_RECURSE
  "libtarpit_sql.a"
)
