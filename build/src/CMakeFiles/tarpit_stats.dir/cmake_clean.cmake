file(REMOVE_RECURSE
  "CMakeFiles/tarpit_stats.dir/stats/count_cache.cc.o"
  "CMakeFiles/tarpit_stats.dir/stats/count_cache.cc.o.d"
  "CMakeFiles/tarpit_stats.dir/stats/count_tracker.cc.o"
  "CMakeFiles/tarpit_stats.dir/stats/count_tracker.cc.o.d"
  "CMakeFiles/tarpit_stats.dir/stats/rank_index.cc.o"
  "CMakeFiles/tarpit_stats.dir/stats/rank_index.cc.o.d"
  "CMakeFiles/tarpit_stats.dir/stats/synopsis.cc.o"
  "CMakeFiles/tarpit_stats.dir/stats/synopsis.cc.o.d"
  "libtarpit_stats.a"
  "libtarpit_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarpit_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
