
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/count_cache.cc" "src/CMakeFiles/tarpit_stats.dir/stats/count_cache.cc.o" "gcc" "src/CMakeFiles/tarpit_stats.dir/stats/count_cache.cc.o.d"
  "/root/repo/src/stats/count_tracker.cc" "src/CMakeFiles/tarpit_stats.dir/stats/count_tracker.cc.o" "gcc" "src/CMakeFiles/tarpit_stats.dir/stats/count_tracker.cc.o.d"
  "/root/repo/src/stats/rank_index.cc" "src/CMakeFiles/tarpit_stats.dir/stats/rank_index.cc.o" "gcc" "src/CMakeFiles/tarpit_stats.dir/stats/rank_index.cc.o.d"
  "/root/repo/src/stats/synopsis.cc" "src/CMakeFiles/tarpit_stats.dir/stats/synopsis.cc.o" "gcc" "src/CMakeFiles/tarpit_stats.dir/stats/synopsis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarpit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
