# Empty compiler generated dependencies file for tarpit_stats.
# This may be replaced when dependencies are built.
