file(REMOVE_RECURSE
  "libtarpit_stats.a"
)
