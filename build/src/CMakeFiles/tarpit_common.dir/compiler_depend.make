# Empty compiler generated dependencies file for tarpit_common.
# This may be replaced when dependencies are built.
