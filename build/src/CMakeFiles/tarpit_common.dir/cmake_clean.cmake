file(REMOVE_RECURSE
  "CMakeFiles/tarpit_common.dir/common/clock.cc.o"
  "CMakeFiles/tarpit_common.dir/common/clock.cc.o.d"
  "CMakeFiles/tarpit_common.dir/common/hyperloglog.cc.o"
  "CMakeFiles/tarpit_common.dir/common/hyperloglog.cc.o.d"
  "CMakeFiles/tarpit_common.dir/common/random.cc.o"
  "CMakeFiles/tarpit_common.dir/common/random.cc.o.d"
  "CMakeFiles/tarpit_common.dir/common/stats.cc.o"
  "CMakeFiles/tarpit_common.dir/common/stats.cc.o.d"
  "CMakeFiles/tarpit_common.dir/common/status.cc.o"
  "CMakeFiles/tarpit_common.dir/common/status.cc.o.d"
  "CMakeFiles/tarpit_common.dir/common/zipf.cc.o"
  "CMakeFiles/tarpit_common.dir/common/zipf.cc.o.d"
  "libtarpit_common.a"
  "libtarpit_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarpit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
