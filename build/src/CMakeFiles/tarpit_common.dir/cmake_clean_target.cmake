file(REMOVE_RECURSE
  "libtarpit_common.a"
)
