file(REMOVE_RECURSE
  "CMakeFiles/tarpit_analysis.dir/analysis/model.cc.o"
  "CMakeFiles/tarpit_analysis.dir/analysis/model.cc.o.d"
  "CMakeFiles/tarpit_analysis.dir/analysis/staleness.cc.o"
  "CMakeFiles/tarpit_analysis.dir/analysis/staleness.cc.o.d"
  "CMakeFiles/tarpit_analysis.dir/analysis/zipf_fit.cc.o"
  "CMakeFiles/tarpit_analysis.dir/analysis/zipf_fit.cc.o.d"
  "libtarpit_analysis.a"
  "libtarpit_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarpit_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
