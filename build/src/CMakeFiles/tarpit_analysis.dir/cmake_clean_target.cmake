file(REMOVE_RECURSE
  "libtarpit_analysis.a"
)
