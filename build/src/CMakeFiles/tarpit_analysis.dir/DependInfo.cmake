
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/model.cc" "src/CMakeFiles/tarpit_analysis.dir/analysis/model.cc.o" "gcc" "src/CMakeFiles/tarpit_analysis.dir/analysis/model.cc.o.d"
  "/root/repo/src/analysis/staleness.cc" "src/CMakeFiles/tarpit_analysis.dir/analysis/staleness.cc.o" "gcc" "src/CMakeFiles/tarpit_analysis.dir/analysis/staleness.cc.o.d"
  "/root/repo/src/analysis/zipf_fit.cc" "src/CMakeFiles/tarpit_analysis.dir/analysis/zipf_fit.cc.o" "gcc" "src/CMakeFiles/tarpit_analysis.dir/analysis/zipf_fit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarpit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
