# Empty dependencies file for tarpit_analysis.
# This may be replaced when dependencies are built.
