
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/access_simulation.cc" "src/CMakeFiles/tarpit_sim.dir/sim/access_simulation.cc.o" "gcc" "src/CMakeFiles/tarpit_sim.dir/sim/access_simulation.cc.o.d"
  "/root/repo/src/sim/adversary.cc" "src/CMakeFiles/tarpit_sim.dir/sim/adversary.cc.o" "gcc" "src/CMakeFiles/tarpit_sim.dir/sim/adversary.cc.o.d"
  "/root/repo/src/sim/dynamic_simulation.cc" "src/CMakeFiles/tarpit_sim.dir/sim/dynamic_simulation.cc.o" "gcc" "src/CMakeFiles/tarpit_sim.dir/sim/dynamic_simulation.cc.o.d"
  "/root/repo/src/sim/gate_attack.cc" "src/CMakeFiles/tarpit_sim.dir/sim/gate_attack.cc.o" "gcc" "src/CMakeFiles/tarpit_sim.dir/sim/gate_attack.cc.o.d"
  "/root/repo/src/sim/trace_replay.cc" "src/CMakeFiles/tarpit_sim.dir/sim/trace_replay.cc.o" "gcc" "src/CMakeFiles/tarpit_sim.dir/sim/trace_replay.cc.o.d"
  "/root/repo/src/sim/user_model.cc" "src/CMakeFiles/tarpit_sim.dir/sim/user_model.cc.o" "gcc" "src/CMakeFiles/tarpit_sim.dir/sim/user_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarpit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
