file(REMOVE_RECURSE
  "libtarpit_sim.a"
)
