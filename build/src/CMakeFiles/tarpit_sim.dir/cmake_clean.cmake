file(REMOVE_RECURSE
  "CMakeFiles/tarpit_sim.dir/sim/access_simulation.cc.o"
  "CMakeFiles/tarpit_sim.dir/sim/access_simulation.cc.o.d"
  "CMakeFiles/tarpit_sim.dir/sim/adversary.cc.o"
  "CMakeFiles/tarpit_sim.dir/sim/adversary.cc.o.d"
  "CMakeFiles/tarpit_sim.dir/sim/dynamic_simulation.cc.o"
  "CMakeFiles/tarpit_sim.dir/sim/dynamic_simulation.cc.o.d"
  "CMakeFiles/tarpit_sim.dir/sim/gate_attack.cc.o"
  "CMakeFiles/tarpit_sim.dir/sim/gate_attack.cc.o.d"
  "CMakeFiles/tarpit_sim.dir/sim/trace_replay.cc.o"
  "CMakeFiles/tarpit_sim.dir/sim/trace_replay.cc.o.d"
  "CMakeFiles/tarpit_sim.dir/sim/user_model.cc.o"
  "CMakeFiles/tarpit_sim.dir/sim/user_model.cc.o.d"
  "libtarpit_sim.a"
  "libtarpit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarpit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
