# Empty dependencies file for tarpit_sim.
# This may be replaced when dependencies are built.
