
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/audit_log.cc" "src/CMakeFiles/tarpit_defense.dir/defense/audit_log.cc.o" "gcc" "src/CMakeFiles/tarpit_defense.dir/defense/audit_log.cc.o.d"
  "/root/repo/src/defense/coverage_monitor.cc" "src/CMakeFiles/tarpit_defense.dir/defense/coverage_monitor.cc.o" "gcc" "src/CMakeFiles/tarpit_defense.dir/defense/coverage_monitor.cc.o.d"
  "/root/repo/src/defense/identity.cc" "src/CMakeFiles/tarpit_defense.dir/defense/identity.cc.o" "gcc" "src/CMakeFiles/tarpit_defense.dir/defense/identity.cc.o.d"
  "/root/repo/src/defense/query_gate.cc" "src/CMakeFiles/tarpit_defense.dir/defense/query_gate.cc.o" "gcc" "src/CMakeFiles/tarpit_defense.dir/defense/query_gate.cc.o.d"
  "/root/repo/src/defense/registration_fee.cc" "src/CMakeFiles/tarpit_defense.dir/defense/registration_fee.cc.o" "gcc" "src/CMakeFiles/tarpit_defense.dir/defense/registration_fee.cc.o.d"
  "/root/repo/src/defense/registration_limiter.cc" "src/CMakeFiles/tarpit_defense.dir/defense/registration_limiter.cc.o" "gcc" "src/CMakeFiles/tarpit_defense.dir/defense/registration_limiter.cc.o.d"
  "/root/repo/src/defense/session_manager.cc" "src/CMakeFiles/tarpit_defense.dir/defense/session_manager.cc.o" "gcc" "src/CMakeFiles/tarpit_defense.dir/defense/session_manager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarpit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
