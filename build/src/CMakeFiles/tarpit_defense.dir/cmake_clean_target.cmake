file(REMOVE_RECURSE
  "libtarpit_defense.a"
)
