# Empty dependencies file for tarpit_defense.
# This may be replaced when dependencies are built.
