file(REMOVE_RECURSE
  "CMakeFiles/tarpit_defense.dir/defense/audit_log.cc.o"
  "CMakeFiles/tarpit_defense.dir/defense/audit_log.cc.o.d"
  "CMakeFiles/tarpit_defense.dir/defense/coverage_monitor.cc.o"
  "CMakeFiles/tarpit_defense.dir/defense/coverage_monitor.cc.o.d"
  "CMakeFiles/tarpit_defense.dir/defense/identity.cc.o"
  "CMakeFiles/tarpit_defense.dir/defense/identity.cc.o.d"
  "CMakeFiles/tarpit_defense.dir/defense/query_gate.cc.o"
  "CMakeFiles/tarpit_defense.dir/defense/query_gate.cc.o.d"
  "CMakeFiles/tarpit_defense.dir/defense/registration_fee.cc.o"
  "CMakeFiles/tarpit_defense.dir/defense/registration_fee.cc.o.d"
  "CMakeFiles/tarpit_defense.dir/defense/registration_limiter.cc.o"
  "CMakeFiles/tarpit_defense.dir/defense/registration_limiter.cc.o.d"
  "CMakeFiles/tarpit_defense.dir/defense/session_manager.cc.o"
  "CMakeFiles/tarpit_defense.dir/defense/session_manager.cc.o.d"
  "libtarpit_defense.a"
  "libtarpit_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarpit_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
