file(REMOVE_RECURSE
  "../bench/bench_ablation_access_vs_update"
  "../bench/bench_ablation_access_vs_update.pdb"
  "CMakeFiles/bench_ablation_access_vs_update.dir/bench_ablation_access_vs_update.cc.o"
  "CMakeFiles/bench_ablation_access_vs_update.dir/bench_ablation_access_vs_update.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_access_vs_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
