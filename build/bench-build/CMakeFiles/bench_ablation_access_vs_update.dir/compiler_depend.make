# Empty compiler generated dependencies file for bench_ablation_access_vs_update.
# This may be replaced when dependencies are built.
