# Empty compiler generated dependencies file for bench_table2_cap_scaling.
# This may be replaced when dependencies are built.
