file(REMOVE_RECURSE
  "../bench/bench_ablation_adaptive_decay"
  "../bench/bench_ablation_adaptive_decay.pdb"
  "CMakeFiles/bench_ablation_adaptive_decay.dir/bench_ablation_adaptive_decay.cc.o"
  "CMakeFiles/bench_ablation_adaptive_decay.dir/bench_ablation_adaptive_decay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptive_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
