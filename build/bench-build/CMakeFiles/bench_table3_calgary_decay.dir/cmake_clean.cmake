file(REMOVE_RECURSE
  "../bench/bench_table3_calgary_decay"
  "../bench/bench_table3_calgary_decay.pdb"
  "CMakeFiles/bench_table3_calgary_decay.dir/bench_table3_calgary_decay.cc.o"
  "CMakeFiles/bench_table3_calgary_decay.dir/bench_table3_calgary_decay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_calgary_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
