# Empty compiler generated dependencies file for bench_table3_calgary_decay.
# This may be replaced when dependencies are built.
