# Empty dependencies file for bench_analysis_asymptotics.
# This may be replaced when dependencies are built.
