file(REMOVE_RECURSE
  "../bench/bench_analysis_asymptotics"
  "../bench/bench_analysis_asymptotics.pdb"
  "CMakeFiles/bench_analysis_asymptotics.dir/bench_analysis_asymptotics.cc.o"
  "CMakeFiles/bench_analysis_asymptotics.dir/bench_analysis_asymptotics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_asymptotics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
