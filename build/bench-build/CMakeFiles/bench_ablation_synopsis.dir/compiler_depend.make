# Empty compiler generated dependencies file for bench_ablation_synopsis.
# This may be replaced when dependencies are built.
