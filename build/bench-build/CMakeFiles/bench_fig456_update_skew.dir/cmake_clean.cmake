file(REMOVE_RECURSE
  "../bench/bench_fig456_update_skew"
  "../bench/bench_fig456_update_skew.pdb"
  "CMakeFiles/bench_fig456_update_skew.dir/bench_fig456_update_skew.cc.o"
  "CMakeFiles/bench_fig456_update_skew.dir/bench_fig456_update_skew.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig456_update_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
