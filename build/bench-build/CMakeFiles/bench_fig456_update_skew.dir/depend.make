# Empty dependencies file for bench_fig456_update_skew.
# This may be replaced when dependencies are built.
