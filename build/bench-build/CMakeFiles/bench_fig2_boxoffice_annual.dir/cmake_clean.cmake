file(REMOVE_RECURSE
  "../bench/bench_fig2_boxoffice_annual"
  "../bench/bench_fig2_boxoffice_annual.pdb"
  "CMakeFiles/bench_fig2_boxoffice_annual.dir/bench_fig2_boxoffice_annual.cc.o"
  "CMakeFiles/bench_fig2_boxoffice_annual.dir/bench_fig2_boxoffice_annual.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_boxoffice_annual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
