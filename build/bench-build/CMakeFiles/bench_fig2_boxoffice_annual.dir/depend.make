# Empty dependencies file for bench_fig2_boxoffice_annual.
# This may be replaced when dependencies are built.
