file(REMOVE_RECURSE
  "../bench/bench_ablation_wal"
  "../bench/bench_ablation_wal.pdb"
  "CMakeFiles/bench_ablation_wal.dir/bench_ablation_wal.cc.o"
  "CMakeFiles/bench_ablation_wal.dir/bench_ablation_wal.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
