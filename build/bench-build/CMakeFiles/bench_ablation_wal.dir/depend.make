# Empty dependencies file for bench_ablation_wal.
# This may be replaced when dependencies are built.
