# Empty dependencies file for bench_fig1_calgary_distribution.
# This may be replaced when dependencies are built.
