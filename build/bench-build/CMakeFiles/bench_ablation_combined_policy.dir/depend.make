# Empty dependencies file for bench_ablation_combined_policy.
# This may be replaced when dependencies are built.
