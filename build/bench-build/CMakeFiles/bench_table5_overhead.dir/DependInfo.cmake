
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_overhead.cc" "bench-build/CMakeFiles/bench_table5_overhead.dir/bench_table5_overhead.cc.o" "gcc" "bench-build/CMakeFiles/bench_table5_overhead.dir/bench_table5_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tarpit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tarpit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
