file(REMOVE_RECURSE
  "../bench/bench_ablation_beta_sweep"
  "../bench/bench_ablation_beta_sweep.pdb"
  "CMakeFiles/bench_ablation_beta_sweep.dir/bench_ablation_beta_sweep.cc.o"
  "CMakeFiles/bench_ablation_beta_sweep.dir/bench_ablation_beta_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_beta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
