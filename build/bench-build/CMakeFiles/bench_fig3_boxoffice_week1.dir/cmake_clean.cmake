file(REMOVE_RECURSE
  "../bench/bench_fig3_boxoffice_week1"
  "../bench/bench_fig3_boxoffice_week1.pdb"
  "CMakeFiles/bench_fig3_boxoffice_week1.dir/bench_fig3_boxoffice_week1.cc.o"
  "CMakeFiles/bench_fig3_boxoffice_week1.dir/bench_fig3_boxoffice_week1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_boxoffice_week1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
