file(REMOVE_RECURSE
  "../bench/bench_table4_boxoffice_decay"
  "../bench/bench_table4_boxoffice_decay.pdb"
  "CMakeFiles/bench_table4_boxoffice_decay.dir/bench_table4_boxoffice_decay.cc.o"
  "CMakeFiles/bench_table4_boxoffice_decay.dir/bench_table4_boxoffice_decay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_boxoffice_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
