# Empty dependencies file for bench_table4_boxoffice_decay.
# This may be replaced when dependencies are built.
