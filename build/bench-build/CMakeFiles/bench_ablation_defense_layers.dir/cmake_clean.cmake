file(REMOVE_RECURSE
  "../bench/bench_ablation_defense_layers"
  "../bench/bench_ablation_defense_layers.pdb"
  "CMakeFiles/bench_ablation_defense_layers.dir/bench_ablation_defense_layers.cc.o"
  "CMakeFiles/bench_ablation_defense_layers.dir/bench_ablation_defense_layers.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_defense_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
