# Empty compiler generated dependencies file for bench_ablation_defense_layers.
# This may be replaced when dependencies are built.
