file(REMOVE_RECURSE
  "../bench/bench_ablation_decay_impl"
  "../bench/bench_ablation_decay_impl.pdb"
  "CMakeFiles/bench_ablation_decay_impl.dir/bench_ablation_decay_impl.cc.o"
  "CMakeFiles/bench_ablation_decay_impl.dir/bench_ablation_decay_impl.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decay_impl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
