# Empty compiler generated dependencies file for bench_table1_synthetic_scale.
# This may be replaced when dependencies are built.
