file(REMOVE_RECURSE
  "../bench/bench_table1_synthetic_scale"
  "../bench/bench_table1_synthetic_scale.pdb"
  "CMakeFiles/bench_table1_synthetic_scale.dir/bench_table1_synthetic_scale.cc.o"
  "CMakeFiles/bench_table1_synthetic_scale.dir/bench_table1_synthetic_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_synthetic_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
