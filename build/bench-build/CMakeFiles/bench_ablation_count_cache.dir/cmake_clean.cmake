file(REMOVE_RECURSE
  "../bench/bench_ablation_count_cache"
  "../bench/bench_ablation_count_cache.pdb"
  "CMakeFiles/bench_ablation_count_cache.dir/bench_ablation_count_cache.cc.o"
  "CMakeFiles/bench_ablation_count_cache.dir/bench_ablation_count_cache.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_count_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
