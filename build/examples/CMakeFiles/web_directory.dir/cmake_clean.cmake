file(REMOVE_RECURSE
  "CMakeFiles/web_directory.dir/web_directory.cpp.o"
  "CMakeFiles/web_directory.dir/web_directory.cpp.o.d"
  "web_directory"
  "web_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
