# Empty compiler generated dependencies file for web_directory.
# This may be replaced when dependencies are built.
