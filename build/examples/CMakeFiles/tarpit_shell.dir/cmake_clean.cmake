file(REMOVE_RECURSE
  "CMakeFiles/tarpit_shell.dir/tarpit_shell.cpp.o"
  "CMakeFiles/tarpit_shell.dir/tarpit_shell.cpp.o.d"
  "tarpit_shell"
  "tarpit_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tarpit_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
