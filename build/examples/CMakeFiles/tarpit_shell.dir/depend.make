# Empty dependencies file for tarpit_shell.
# This may be replaced when dependencies are built.
