# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(defense_test "/root/repo/build/tests/defense_test")
set_tests_properties(defense_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(edge_case_test "/root/repo/build/tests/edge_case_test")
set_tests_properties(edge_case_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_test "/root/repo/build/tests/index_test")
set_tests_properties(index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sql_test "/root/repo/build/tests/sql_test")
set_tests_properties(sql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stats_test "/root/repo/build/tests/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
