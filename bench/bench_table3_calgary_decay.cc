// Table 3: Decay-rate sweep on the (static-popularity) Calgary-like
// trace.
//
// Paper reference (Table 3), cap 10 s:
//   decay 1.000000 -> median   15.4 ms, adversary 30.17 h
//   decay 1.000001 -> median   24.9 ms, adversary 31.06 h
//   decay 1.000002 -> median   38.3 ms, adversary 31.75 h
//   decay 1.000005 -> median  118.6 ms, adversary 32.76 h
//   decay 1.000010 -> median  421.4 ms, adversary 33.27 h
//   decay 1.000020 -> median 2241.6 ms, adversary 33.61 h
//
// Because this workload's popularity is static, any decay only throws
// away useful history: the median user pays more while the adversary's
// (already nearly maximal) delay barely moves. Decay is per-request.

#include <cstdio>

#include "common/stats.h"
#include "sim/access_simulation.h"
#include "workload/calgary_trace.h"

using namespace tarpit;

int main() {
  CalgaryTraceConfig trace_config;  // Paper-matched defaults.
  CalgaryTrace trace(trace_config);
  auto requests = trace.Generate();

  std::printf("# Table 3: Delays in Calgary-like Trace (cap 10 s)\n");
  std::printf("%-12s %-18s %-18s\n", "decay rate", "median user (ms)",
              "adversary (hours)");
  for (double decay : {1.000000, 1.000001, 1.000002, 1.000005, 1.000010,
                       1.000020}) {
    PopularityDelayParams params;
    params.scale = 50.0;
    params.beta = 1.0;
    params.bounds = {0.0, 10.0};
    AccessDelaySimulation sim(trace_config.objects, decay, params);
    QuantileSketch user_delays;
    for (const TraceRequest& r : requests) {
      user_delays.Add(sim.ServeRequest(r.key));
    }
    std::printf("%-12.6f %-18.1f %-18.2f\n", decay,
                user_delays.Median() * 1e3,
                sim.ExtractionDelayFrozen() / 3600.0);
  }
  return 0;
}
