// Ablation: WAL configuration vs write throughput on the storage
// engine. The protected database logs logical records for crash
// recovery; this quantifies what that durability costs on the write
// path (the read path -- the one the paper delays -- is unaffected).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "storage/table.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

Schema BenchSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"payload", ColumnType::kString}});
}

void RunInsertBench(benchmark::State& state, bool wal_enabled,
                    bool wal_sync) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("tarpit_walbench_" + std::to_string(::getpid()) + "_" +
       std::to_string(wal_enabled) + std::to_string(wal_sync));
  fs::remove_all(dir);
  fs::create_directories(dir);
  TableOptions options;
  options.wal_enabled = wal_enabled;
  options.wal_sync = wal_sync;
  auto table = Table::Create(dir.string(), "t", BenchSchema(), 0,
                             options);
  if (!table.ok()) {
    state.SkipWithError("table create failed");
    return;
  }
  const std::string payload(64, 'x');
  int64_t key = 0;
  for (auto _ : state) {
    Status st = (*table)->Insert({Value(key++), Value(payload)});
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  table->reset();
  fs::remove_all(dir);
}

void BM_InsertNoWal(benchmark::State& state) {
  RunInsertBench(state, false, false);
}
BENCHMARK(BM_InsertNoWal);

void BM_InsertWalBuffered(benchmark::State& state) {
  RunInsertBench(state, true, false);
}
BENCHMARK(BM_InsertWalBuffered);

void BM_InsertWalSync(benchmark::State& state) {
  RunInsertBench(state, true, true);
}
BENCHMARK(BM_InsertWalSync)->Iterations(2000);

}  // namespace
}  // namespace tarpit

BENCHMARK_MAIN();
