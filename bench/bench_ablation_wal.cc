// Ablation: WAL configuration vs write throughput on the storage
// engine. The protected database logs logical records for crash
// recovery; this quantifies what that durability costs on the write
// path (the read path -- the one the paper delays -- is unaffected).
//
// The group-commit rows ablate the commit window: fdatasync batched to
// at most one per window recovers most of the no-sync throughput while
// bounding the crash-loss gap to the window length.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "storage/table.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

Schema BenchSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"payload", ColumnType::kString}});
}

void RunInsertBench(benchmark::State& state, bool wal_enabled,
                    bool wal_sync, int64_t group_commit_window_micros = 0) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("tarpit_walbench_" + std::to_string(::getpid()) + "_" +
       std::to_string(wal_enabled) + std::to_string(wal_sync) + "_" +
       std::to_string(group_commit_window_micros));
  fs::remove_all(dir);
  fs::create_directories(dir);
  TableOptions options;
  options.wal_enabled = wal_enabled;
  options.wal_sync = wal_sync;
  options.wal_group_commit_window_micros = group_commit_window_micros;
  auto table = Table::Create(dir.string(), "t", BenchSchema(), 0,
                             options);
  if (!table.ok()) {
    state.SkipWithError("table create failed");
    return;
  }
  const std::string payload(64, 'x');
  int64_t key = 0;
  for (auto _ : state) {
    Status st = (*table)->Insert({Value(key++), Value(payload)});
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  table->reset();
  fs::remove_all(dir);
}

void BM_InsertNoWal(benchmark::State& state) {
  RunInsertBench(state, false, false);
}
BENCHMARK(BM_InsertNoWal);

void BM_InsertWalBuffered(benchmark::State& state) {
  RunInsertBench(state, true, false);
}
BENCHMARK(BM_InsertWalBuffered);

void BM_InsertWalSync(benchmark::State& state) {
  RunInsertBench(state, true, true);
}
BENCHMARK(BM_InsertWalSync)->Iterations(2000);

void BM_InsertWalGroupCommit100us(benchmark::State& state) {
  RunInsertBench(state, true, true, /*group_commit_window_micros=*/100);
}
BENCHMARK(BM_InsertWalGroupCommit100us)->Iterations(20000);

void BM_InsertWalGroupCommit1ms(benchmark::State& state) {
  RunInsertBench(state, true, true, /*group_commit_window_micros=*/1000);
}
BENCHMARK(BM_InsertWalGroupCommit1ms)->Iterations(20000);

}  // namespace
}  // namespace tarpit

BENCHMARK_MAIN();
