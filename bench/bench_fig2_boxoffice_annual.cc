// Figure 2: Sales distribution of the top-10 films by *annual* gross
// in the box-office-like trace.
//
// Paper reference (Fig. 2): #1 ~ $404M (Spider-Man) tapering to
// ~$150-160M at rank 10 -- a much flatter curve than any single week,
// because different films dominate different weeks.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "workload/boxoffice_trace.h"

using namespace tarpit;

int main() {
  BoxOfficeTrace trace(BoxOfficeTraceConfig{});
  std::vector<double> annual = trace.AnnualGross();
  std::sort(annual.begin(), annual.end(), std::greater<>());

  std::printf("# Figure 2: Top-10 films by annual gross "
              "(box-office-like trace)\n");
  std::printf("%-6s %-16s\n", "rank", "annual sales ($)");
  for (int rank = 1; rank <= 10; ++rank) {
    std::printf("%-6d %-16.0f\n", rank, annual[rank - 1]);
  }
  std::printf("# top-1 / top-10 ratio: %.2f\n", annual[0] / annual[9]);
  return 0;
}
