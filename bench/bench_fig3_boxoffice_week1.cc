// Figure 3: Top-10 films for the *first week* of the box-office-like
// trace.
//
// Paper reference (Fig. 3): the weekly view is sharply skewed --
// ~$30M at rank 1 dropping steeply within the top 10 -- in contrast to
// the flatter annual aggregate of Figure 2.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "workload/boxoffice_trace.h"

using namespace tarpit;

int main() {
  BoxOfficeTrace trace(BoxOfficeTraceConfig{});
  std::vector<double> week = trace.WeekGross(0);
  std::vector<double> annual = trace.AnnualGross();
  std::sort(week.begin(), week.end(), std::greater<>());
  std::sort(annual.begin(), annual.end(), std::greater<>());

  std::printf("# Figure 3: Top-10 films, week 1 "
              "(box-office-like trace)\n");
  std::printf("%-6s %-16s\n", "rank", "weekly sales ($)");
  for (int rank = 1; rank <= 10; ++rank) {
    std::printf("%-6d %-16.0f\n", rank, week[rank - 1]);
  }
  std::printf("# weekly top-1/top-10 ratio: %.2f "
              "(annual ratio for comparison: %.2f)\n",
              week[0] / week[9], annual[0] / annual[9]);
  return 0;
}
