// Ablation: exact per-tuple counts vs the Gibbons-style counting
// sample (paper section 4.4 cites it as the way to shrink count
// overheads further).
//
// The synopsis tracks only ~capacity keys. For delay assignment that
// is fine *if* it still separates the popular head (small delays) from
// the tail (cap): we compare the delays each approach assigns and the
// resulting user/adversary outcomes.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "common/zipf.h"
#include "stats/count_tracker.h"
#include "stats/synopsis.h"

using namespace tarpit;

int main() {
  const uint64_t n = 100'000;
  const int requests = 2'000'000;
  const double alpha = 1.2;
  const double scale = 0.05;
  const double cap = 10.0;

  CountTracker exact(n, 1.0);
  ZipfDistribution zipf(n, alpha);
  Rng rng(3);
  std::vector<CountingSample> samples;
  const std::vector<size_t> capacities = {256, 1024, 4096};
  for (size_t c : capacities) samples.emplace_back(c, /*seed=*/9);

  std::vector<int64_t> keys;
  keys.reserve(requests);
  for (int i = 0; i < requests; ++i) {
    keys.push_back(static_cast<int64_t>(zipf.Sample(&rng)));
  }
  for (int64_t key : keys) {
    exact.Record(key);
    for (auto& s : samples) s.Observe(key);
  }

  // Delay assignment: pure inverse popularity (beta = 0) so the rank
  // structure is out of the picture and only count fidelity matters.
  auto delay_from_count = [&](double count) {
    if (count <= 0) return cap;
    const double d = scale * requests / count / 1000.0;
    return d > cap ? cap : d;
  };

  std::printf("# Ablation: exact counts vs counting-sample synopsis "
              "(N = %llu, %d Zipf(%.1f) requests)\n",
              static_cast<unsigned long long>(n), requests, alpha);
  std::printf("%-16s %-12s %-18s %-18s %-18s\n", "counts", "memory",
              "median user (ms)", "adversary (h)", "head delay err");

  // Baseline: exact counts.
  {
    QuantileSketch user;
    Rng qr(5);
    for (int i = 0; i < 50'000; ++i) {
      int64_t k = static_cast<int64_t>(zipf.Sample(&qr));
      user.Add(delay_from_count(exact.Count(k)));
    }
    double adversary = 0;
    for (uint64_t k = 1; k <= n; ++k) {
      adversary += delay_from_count(exact.Count(static_cast<int64_t>(k)));
    }
    std::printf("%-16s %-12s %-18.3f %-18.2f %-18s\n", "exact",
                "~1/tuple", user.Median() * 1e3, adversary / 3600, "-");
  }

  for (size_t si = 0; si < samples.size(); ++si) {
    const CountingSample& sample = samples[si];
    QuantileSketch user;
    Rng qr(5);
    for (int i = 0; i < 50'000; ++i) {
      int64_t k = static_cast<int64_t>(zipf.Sample(&qr));
      user.Add(delay_from_count(sample.EstimatedCount(k)));
    }
    double adversary = 0;
    for (uint64_t k = 1; k <= n; ++k) {
      adversary += delay_from_count(
          sample.EstimatedCount(static_cast<int64_t>(k)));
    }
    // Relative error of the delay assigned to the top-100 keys.
    RunningStat err;
    for (int64_t k = 1; k <= 100; ++k) {
      double de = delay_from_count(exact.Count(k));
      double ds = delay_from_count(sample.EstimatedCount(k));
      if (de > 0) err.Add(std::abs(ds - de) / de);
    }
    char mem[32];
    std::snprintf(mem, sizeof(mem), "%zu keys", capacities[si]);
    char errbuf[32];
    std::snprintf(errbuf, sizeof(errbuf), "%.1f%% avg",
                  err.mean() * 100);
    std::printf("%-16s %-12s %-18.3f %-18.2f %-18s\n",
                ("sample-" + std::to_string(capacities[si])).c_str(),
                mem, user.Median() * 1e3, adversary / 3600, errbuf);
  }
  std::printf("# A few thousand sampled keys reproduce the exact-count "
              "delay structure: the head is\n"
              "# approximated well and everything untracked correctly "
              "falls to the cap.\n");
  return 0;
}
