// Network front-end capacity: park 100k+ stalled CONNECTIONS on idle
// fds at a fixed event-loop thread budget, prove the network path adds
// bounded overhead, and show the wire changes nothing about accounting.
//
// Three phases against real sockets (ISSUE 10 acceptance):
//
//   1. capacity -- a LoadClient opens as many connections as the fd
//      budget allows (source-IP rotation across 127.0.x.y widens the
//      4-tuple space past one address's ephemeral ports), each sends
//      one request against a database whose every read stalls 300s, and
//      the server parks them ALL on <= 8 event loops. Peak
//      tarpit_net_parked_connections (registry gauge + server counter)
//      must equal the attempted population. The 100k+ claim holds
//      wherever RLIMIT_NOFILE grants the fds; a capped container runs
//      the same proof at the largest population its limit admits and
//      reports fd_limited=true in the JSON rather than faking the
//      number (client + server share one process: 2 fds per
//      connection).
//
//   2. overhead -- open-loop p50 (bench/openloop.h: latency from the
//      INTENDED exponential send time, coordinated-omission-free) of
//      undelayed point reads over the wire vs. the in-process async
//      door. Both paths ride the same DelayScheduler (a zero delay
//      still rounds up to the next wheel tick), so the ratio isolates
//      what the network adds: accept/frame/epoll/write. Bar: <= 2x
//      (4x tiny: CI boxes share cores and the absolute numbers are
//      sub-millisecond).
//
//   3. drift -- a serial client replays a Zipf stream with every 8th
//      request issued from a throwaway connection that HANGS UP
//      mid-stall (the park is cancelled, the charge must not be); the
//      database's charged-delay total must match a serial CountTracker
//      oracle replaying the identical key order within 0.01%.
//
// Env: TARPIT_BENCH_TINY=1 shrinks populations for CI smoke runs;
// TARPIT_BENCH_JSON=<path> emits BENCH_net.json for the CI gate.

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/popularity_delay.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/load_client.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "openloop.h"
#include "stats/count_tracker.h"
#include "workload/key_generator.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

bool TinyConfig() {
  const char* env = std::getenv("TARPIT_BENCH_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

constexpr int kRows = 1024;
constexpr size_t kEventLoops = 8;  // The fixed thread budget under test.

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Served {
  std::unique_ptr<ConcurrentProtectedDatabase> db;
  std::unique_ptr<net::TarpitServer> server;
  fs::path dir;

  ~Served() {
    if (server) server->Stop();
    db.reset();
    if (!dir.empty()) fs::remove_all(dir);
  }
};

/// Database + server on real sockets. `stall_bounds` clamps every
/// read's delay (beta=0 popularity => the clamp IS the delay);
/// {0, 0} means no delay at all (kNone).
void Serve(Served* out, const fs::path& dir, RealClock* clock,
           obs::MetricRegistry* metrics, double stall_lo, double stall_hi,
           double beta, double scale, net::TarpitServerOptions sopts,
           ConcurrencyMode mode = ConcurrencyMode::kSharded) {
  fs::create_directories(dir);
  ProtectedDatabaseOptions dopts;
  dopts.mode = stall_hi > 0 ? DelayMode::kAccessPopularity : DelayMode::kNone;
  dopts.popularity.beta = beta;
  dopts.popularity.scale = scale;
  dopts.popularity.bounds = {stall_lo, stall_hi};
  dopts.decay_per_request = 1.0;
  ConcurrentDatabaseOptions copts;
  copts.mode = mode;
  copts.serve_delays = true;
  copts.async_stalls = true;
  copts.metrics = metrics;
  auto opened = ConcurrentProtectedDatabase::Open(dir.string(), "items",
                                                  clock, dopts, copts);
  if (!opened.ok()) std::abort();
  out->dir = dir;
  out->db = std::move(*opened);
  if (!out->db
           ->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!out->db
             ->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }
  sopts.metrics = metrics;
  sopts.num_event_loops = kEventLoops;
  sopts.enable_http = false;
  out->server =
      std::make_unique<net::TarpitServer>(out->db.get(), clock, sopts);
  if (!out->server->Start().ok()) std::abort();
}

// ---- Phase 1: parked-connection capacity. ---------------------------

struct CapacityResult {
  size_t requested = 0;   // What we would attempt with unlimited fds.
  size_t target = 0;      // What the fd budget admitted.
  size_t fd_limit = 0;    // Effective RLIMIT_NOFILE after the raise.
  bool fd_limited = false;
  size_t connected = 0;
  size_t parked_peak = 0;        // Server-side high-water mark.
  int64_t parked_gauge_peak = 0; // tarpit_net_parked_connections_peak.
  double fill_seconds = 0;       // First connect -> all parked.
  double stop_seconds = 0;       // Stop() with everything parked.
  bool pass = false;
  std::string registry_json;
};

CapacityResult RunCapacity(const fs::path& dir, size_t requested) {
  CapacityResult res;
  res.requested = requested;
  // Client + server live in one process: 2 fds per connection, plus
  // slack for the db, epoll instances, eventfds, and the listener.
  constexpr size_t kSlack = 2048;
  res.fd_limit = net::TryRaiseNofileLimit(2 * requested + kSlack);
  res.target = std::min(requested, (res.fd_limit - kSlack) / 2);
  res.fd_limited = res.target < requested;

  RealClock clock;
  obs::MetricRegistry metrics;
  net::TarpitServerOptions sopts;
  // No keep-alives: 100k pending 1-byte writes per interval would
  // measure the write path, not parking.
  sopts.keepalive_interval_seconds = 0;
  sopts.read_timeout_seconds = 300.0;
  // Every read stalls 300s: nothing un-parks while we count.
  Served served;
  Serve(&served, dir, &clock, &metrics, 300.0, 300.0,
        /*beta=*/0.0, /*scale=*/300.0, sopts);

  net::LoadClientOptions lopts;
  lopts.port = served.server->port();
  lopts.connections = res.target;
  lopts.connect_burst = 256;
  lopts.key_min = 1;
  lopts.key_max = kRows;
  // ~28k ephemeral ports per source address; rotate enough to never be
  // the binding constraint.
  lopts.source_ips = res.target / 16000 + 1;
  net::LoadClient load(lopts);
  if (!load.Init().ok()) std::abort();

  const double t0 = NowSeconds();
  // Drive until every connection is parked server-side (responses are
  // 300s away; anything completing early would be a served stall).
  while (NowSeconds() - t0 < 120.0) {
    load.Drive(200);
    if (load.done() &&
        served.server->parked_connections() + load.errors() >= res.target) {
      break;
    }
  }
  res.fill_seconds = NowSeconds() - t0;
  res.connected = load.connected();
  res.parked_peak = served.server->peak_parked_connections();
  if (const obs::MetricSnapshot* peak =
          metrics.Snapshot().Find("tarpit_net_parked_connections_peak")) {
    res.parked_gauge_peak = peak->value;
  }
  res.registry_json = obs::ToJson(metrics.Snapshot());

  // Orderly drain with the full population parked: Stop() cancels
  // every park (charges stay), joins the loops, leaks nothing.
  const double t1 = NowSeconds();
  served.server->Stop();
  res.stop_seconds = NowSeconds() - t1;
  load.CloseAll();

  // Pass: every attempted connection was parked CONCURRENTLY, the
  // registry gauge agrees, and the population met the 100k bar unless
  // the container's fd limit made that physically impossible.
  res.pass = res.parked_peak >= res.target &&
             static_cast<size_t>(res.parked_gauge_peak) >= res.target &&
             res.target > 0;
  return res;
}

// ---- Phase 2: network vs in-process p50 on undelayed reads. ---------

/// In-process op: the async door, awaited synchronously. A zero delay
/// still parks on the wheel until the next tick, exactly like the
/// server-side path -- the comparison isolates the network.
bench::OpenLoopStats RunInprocOpenLoop(const fs::path& dir,
                                       const bench::OpenLoopOptions& oopts) {
  RealClock clock;
  net::TarpitServerOptions sopts;
  Served served;
  Serve(&served, dir, &clock, nullptr, 0.0, 0.0, 0.0, 0.0, sopts);
  auto* db = served.db.get();
  return bench::RunOpenLoop(oopts, [db](int t, int i) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    db->GetByKeyAsync(1 + (t * 7919 + i) % kRows,
                      [&](Result<ProtectedResult> r) {
                        if (!r.ok()) std::abort();
                        std::lock_guard<std::mutex> lock(mu);
                        done = true;
                        cv.notify_one();
                      });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  });
}

bench::OpenLoopStats RunNetworkOpenLoop(const fs::path& dir,
                                        const bench::OpenLoopOptions& oopts) {
  RealClock clock;
  net::TarpitServerOptions sopts;
  Served served;
  Serve(&served, dir, &clock, nullptr, 0.0, 0.0, 0.0, 0.0, sopts);
  std::vector<std::unique_ptr<net::FrameClient>> clients;
  for (int t = 0; t < oopts.threads; ++t) {
    clients.push_back(std::make_unique<net::FrameClient>());
    if (!clients.back()->Connect("127.0.0.1", served.server->port()).ok()) {
      std::abort();
    }
  }
  auto stats = bench::RunOpenLoop(oopts, [&](int t, int i) {
    auto r = clients[t]->GetByKey(1 + (t * 7919 + i) % kRows);
    if (!r.ok()) std::abort();
  });
  for (auto& c : clients) c->Close();
  return stats;
}

// ---- Phase 3: charged-delay drift with mid-stall hangups. -----------

struct DriftResult {
  size_t ops = 0;
  size_t probes = 0;              // Hangup-mid-stall connections.
  uint64_t hangups_seen = 0;      // Server-attributed mid-stall closes.
  double oracle_delay = 0;
  double measured_delay = 0;
  double drift = 1.0;
  bool pass = false;
};

DriftResult RunDrift(const fs::path& dir, int ops) {
  DriftResult res;
  ProtectedDatabaseOptions oracle_opts;
  oracle_opts.popularity.beta = 0.3;
  oracle_opts.popularity.scale = 0.004;
  oracle_opts.popularity.bounds = {0.002, 0.05};
  oracle_opts.decay_per_request = 1.0;

  RealClock clock;
  obs::MetricRegistry metrics;
  net::TarpitServerOptions sopts;
  sopts.keepalive_interval_seconds = 0.02;
  Served served;
  // kGlobalLock: stripe-local popularity stats diverge from a serial
  // replay (each stripe sees 1/Nth of the traffic); the global-lock
  // path is the exact-accounting baseline the oracle models.
  Serve(&served, dir, &clock, &metrics,
        oracle_opts.popularity.bounds.min_seconds,
        oracle_opts.popularity.bounds.max_seconds,
        oracle_opts.popularity.beta, oracle_opts.popularity.scale, sopts,
        ConcurrencyMode::kGlobalLock);
  auto* db = served.db.get();

  Rng rng(0xD21F7u);
  ZipfKeyGenerator gen(kRows, 1.1);
  std::vector<int64_t> seq;
  seq.reserve(ops);
  for (int i = 0; i < ops; ++i) seq.push_back(gen.Next(&rng));

  // Baseline AFTER setup: DDL/seeding record their own (zero-delay)
  // charges.
  const double charged_before = db->Metrics().total_delay_seconds;
  const uint64_t count_before = db->Metrics().delays_charged;

  net::FrameClient main_conn;
  if (!main_conn.Connect("127.0.0.1", served.server->port()).ok()) {
    std::abort();
  }
  uint64_t charges_seen = count_before;
  for (int i = 0; i < ops; ++i) {
    if (i % 8 == 7) {
      // Probe: trigger the stall from a fresh connection, confirm the
      // charge landed (the in-process ledger is visible to the bench),
      // then hang up with the park still pending. The charge must
      // survive the cancellation.
      ++res.probes;
      net::FrameClient probe;
      if (!probe.Connect("127.0.0.1", served.server->port()).ok()) {
        std::abort();
      }
      if (!probe.SendFrame(net::FrameType::kGetKey,
                           net::GetKeyPayload(seq[i]))
               .ok()) {
        std::abort();
      }
      const double t0 = NowSeconds();
      while (db->Metrics().delays_charged <= charges_seen &&
             NowSeconds() - t0 < 5.0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      if (db->Metrics().delays_charged <= charges_seen) std::abort();
      probe.Close();  // Mid-stall hangup; the 2-50ms park is pending.
    } else {
      auto r = main_conn.GetByKey(seq[i]);
      if (!r.ok() || r->status_code != 0) std::abort();
    }
    charges_seen = db->Metrics().delays_charged;
  }

  // Serial oracle: one CountTracker replaying the identical key order
  // (mains and probes alike -- a hangup changes WHERE the stall ends,
  // never what was charged).
  CountTracker tracker(kRows, oracle_opts.decay_per_request);
  for (int64_t key : seq) {
    tracker.Record(key);
    res.oracle_delay += PopularityDelayPolicy::DelayFromStats(
        tracker.Stats(key), oracle_opts.popularity);
  }
  res.ops = static_cast<size_t>(ops);
  res.measured_delay = db->Metrics().total_delay_seconds - charged_before;
  res.hangups_seen = served.server->hangups_mid_stall();
  res.drift = res.oracle_delay <= 0
                  ? 1.0
                  : std::fabs(res.measured_delay - res.oracle_delay) /
                        res.oracle_delay;
  res.pass = res.drift <= 1e-4;
  main_conn.Close();
  return res;
}

}  // namespace

int main() {
  const bool tiny = TinyConfig();
  const size_t capacity_requested = tiny ? 2000 : 110000;
  const int drift_ops = tiny ? 160 : 1200;

  const fs::path base = fs::temp_directory_path() / "tarpit_bench_net";
  fs::remove_all(base);
  fs::create_directories(base);

  std::printf("# Network front end: parked-connection capacity, wire "
              "overhead, accounting drift\n");
  std::printf("# event_loops=%zu capacity_requested=%zu drift_ops=%d%s\n\n",
              kEventLoops, capacity_requested, drift_ops,
              tiny ? " (tiny)" : "");

  // -- Phase 1 --------------------------------------------------------
  const CapacityResult cap = RunCapacity(base / "capacity",
                                         capacity_requested);
  std::printf("capacity: fd_limit=%zu -> target %zu (requested %zu%s)\n",
              cap.fd_limit, cap.target, cap.requested,
              cap.fd_limited ? ", fd-limited" : "");
  std::printf("capacity: %zu connected, parked peak %zu (gauge %lld) on "
              "%zu loops; fill %.2fs, stop %.2fs -> %s\n",
              cap.connected, cap.parked_peak,
              static_cast<long long>(cap.parked_gauge_peak), kEventLoops,
              cap.fill_seconds, cap.stop_seconds,
              cap.pass ? "PASS" : "FAIL");

  // -- Phase 2 --------------------------------------------------------
  bench::OpenLoopOptions oopts;
  oopts.threads = 2;
  oopts.ops_per_thread = tiny ? 250 : 1500;
  oopts.mean_interarrival_us = 2000.0;
  const bench::OpenLoopStats inproc =
      RunInprocOpenLoop(base / "inproc", oopts);
  const bench::OpenLoopStats wire =
      RunNetworkOpenLoop(base / "wire", oopts);
  const double overhead_target = tiny ? 4.0 : 2.0;
  const double overhead =
      inproc.p50_us <= 0 ? 0.0 : wire.p50_us / inproc.p50_us;
  const bool overhead_pass = overhead > 0 && overhead <= overhead_target;
  std::printf("overhead: in-process p50 %.0fus p99 %.0fus | network p50 "
              "%.0fus p99 %.0fus p999 %.0fus -> p50 ratio %.2fx "
              "(target <= %.1fx) %s\n",
              inproc.p50_us, inproc.p99_us, wire.p50_us, wire.p99_us,
              wire.p999_us, overhead, overhead_target,
              overhead_pass ? "PASS" : "FAIL");

  // -- Phase 3 --------------------------------------------------------
  const DriftResult drift = RunDrift(base / "drift", drift_ops);
  std::printf("drift: %zu ops (%zu hangup probes, %llu attributed "
              "mid-stall), charged %.6fs vs oracle %.6fs -> %.5f%% "
              "(target <= 0.01%%) %s\n",
              drift.ops, drift.probes,
              static_cast<unsigned long long>(drift.hangups_seen),
              drift.measured_delay, drift.oracle_delay,
              100.0 * drift.drift, drift.pass ? "PASS" : "FAIL");

  if (const char* json_path = std::getenv("TARPIT_BENCH_JSON")) {
    if (json_path[0] != '\0') {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"net_capacity\",\n"
            "  \"tiny\": %s,\n"
            "  \"event_loops\": %zu,\n"
            "  \"capacity_requested\": %zu,\n"
            "  \"capacity_target\": %zu,\n"
            "  \"fd_limit\": %zu,\n"
            "  \"fd_limited\": %s,\n"
            "  \"connected\": %zu,\n"
            "  \"parked_peak\": %zu,\n"
            "  \"parked_gauge_peak\": %lld,\n"
            "  \"fill_seconds\": %.3f,\n"
            "  \"stop_seconds\": %.3f,\n"
            "  \"capacity_pass\": %s,\n"
            "  \"inproc_p50_us\": %.1f,\n"
            "  \"inproc_p99_us\": %.1f,\n"
            "  \"inproc_p999_us\": %.1f,\n"
            "%s"
            "  \"overhead_ratio_p50\": %.4f,\n"
            "  \"overhead_target\": %.1f,\n"
            "  \"overhead_pass\": %s,\n"
            "  \"drift_ops\": %zu,\n"
            "  \"drift_probes\": %zu,\n"
            "  \"hangups_mid_stall\": %llu,\n"
            "  \"oracle_delay_s\": %.9f,\n"
            "  \"measured_delay_s\": %.9f,\n"
            "  \"drift\": %.9f,\n"
            "  \"drift_pass\": %s,\n"
            "  \"registry\": %s\n"
            "}\n",
            tiny ? "true" : "false", kEventLoops, cap.requested,
            cap.target, cap.fd_limit, cap.fd_limited ? "true" : "false",
            cap.connected, cap.parked_peak,
            static_cast<long long>(cap.parked_gauge_peak),
            cap.fill_seconds, cap.stop_seconds,
            cap.pass ? "true" : "false", inproc.p50_us, inproc.p99_us,
            inproc.p999_us, bench::OpenLoopJsonFields(wire).c_str(),
            overhead, overhead_target, overhead_pass ? "true" : "false",
            drift.ops, drift.probes,
            static_cast<unsigned long long>(drift.hangups_seen),
            drift.oracle_delay, drift.measured_delay, drift.drift,
            drift.pass ? "true" : "false", cap.registry_json.c_str());
        std::fclose(f);
        std::printf("json written to %s\n", json_path);
      }
    }
  }

  fs::remove_all(base);
  return (cap.pass && overhead_pass && drift.pass) ? 0 : 1;
}
