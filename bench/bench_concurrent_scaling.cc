// Concurrent scaling of the protected front door: sweeps 1/2/4/8
// threads over uniform and Zipf workloads against (a) the seed
// global-mutex wrapper (ConcurrencyMode::kGlobalLock) and (b) the
// sharded concurrent path (ConcurrencyMode::kSharded), and reports
// per-thread + aggregate GetByKey throughput and the delay-accuracy
// drift of the epoch-batched concurrent stats spine against a serial
// tracker oracle.
//
// This is the end-to-end executable form of the paper's section 2.4
// parallel-attack model: k registered identities extracting disjoint
// or overlapping partitions stall in parallel, and the server itself
// no longer serializes their computation.
//
// Acceptance targets (ISSUE 1):
//   * sharded aggregate throughput at 8 threads >= 3x the global-mutex
//     wrapper at 8 threads on the uniform workload;
//   * total charged delay under the concurrent tracker within 5% of
//     the serial oracle on the Zipf workload.
//
// Storage is configured with small buffer pools (as in the Table 5
// overhead bench) so point lookups exercise the real disk path -- the
// regime where a single-threaded storage engine behind one mutex is
// the front-door bottleneck.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/popularity_delay.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "openloop.h"
#include "stats/count_tracker.h"
#include "workload/key_generator.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

constexpr int kRows = 4096;
constexpr double kZipfAlpha = 1.1;

/// TARPIT_BENCH_TINY=1 shrinks per-thread work for CI smoke runs (the
/// acceptance thresholds are only meaningful at the full size).
bool TinyConfig() {
  const char* env = std::getenv("TARPIT_BENCH_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}
const int kOpsPerThread = TinyConfig() ? 500 : 20'000;

struct RunResult {
  double qps = 0;
  double per_thread_qps = 0;
  double total_delay = 0;   // Seconds charged (not slept).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t epoch_flushes = 0;
};

ProtectedDatabaseOptions MakeDbOptions() {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.beta = 0.0;
  opts.popularity.scale = 1e-3;
  opts.popularity.bounds = {0.0, 10.0};
  opts.decay_per_request = 1.0;
  // Tiny pools: random point lookups through the (single-threaded)
  // storage engine nearly always miss the buffer pool, as in the
  // Table 5 overhead experiment's disk regime. Both modes share this
  // configuration; the sharded path escapes it through its lock-striped
  // read-through row cache, the global-mutex wrapper cannot.
  opts.table_options.heap_pool_pages = 8;
  opts.table_options.index_pool_pages = 8;
  return opts;
}

ConcurrentDatabaseOptions MakeConcurrentOptions(ConcurrencyMode mode) {
  ConcurrentDatabaseOptions copts;
  copts.mode = mode;
  copts.num_shards = 64;
  copts.stats_shards = 64;
  copts.epoch_batch = 256;
  copts.serve_delays = false;  // Measure the charge, skip the sleep.
  return copts;
}

/// Deterministic per-thread key sequences so the serial oracle can
/// replay exactly what the threads executed.
std::vector<std::vector<int64_t>> MakeSequences(bool zipf, int threads) {
  std::vector<std::vector<int64_t>> seqs(threads);
  for (int t = 0; t < threads; ++t) {
    Rng rng(0xC0FFEEu + 1013u * static_cast<uint64_t>(t) +
            (zipf ? 7u : 0u));
    std::unique_ptr<KeyGenerator> gen;
    if (zipf) {
      gen = std::make_unique<ZipfKeyGenerator>(kRows, kZipfAlpha);
    } else {
      gen = std::make_unique<UniformKeyGenerator>(kRows);
    }
    seqs[t].reserve(kOpsPerThread);
    for (int i = 0; i < kOpsPerThread; ++i) {
      seqs[t].push_back(gen->Next(&rng));
    }
  }
  return seqs;
}

RunResult RunConfig(const fs::path& base, ConcurrencyMode mode,
                    const std::vector<std::vector<int64_t>>& seqs,
                    obs::MetricRegistry* metrics) {
  static int run_id = 0;
  const fs::path dir = base / ("run_" + std::to_string(run_id++));
  fs::create_directories(dir);

  RealClock clock;
  ConcurrentDatabaseOptions copts = MakeConcurrentOptions(mode);
  copts.metrics = metrics;
  auto opened = ConcurrentProtectedDatabase::Open(
      dir.string(), "items", &clock, MakeDbOptions(), copts);
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  if (!db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }
  if (!db->Checkpoint().ok()) std::abort();

  // Warmup: touch every key once (fills buffer pools / row cache) --
  // the oracle replays this phase too.
  for (int i = 1; i <= kRows; ++i) {
    if (!db->GetByKey(i).ok()) std::abort();
  }

  const int threads = static_cast<int>(seqs.size());
  std::vector<double> delays(threads, 0.0);
  RealClock wall;
  const int64_t start = wall.NowMicros();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      double sum = 0.0;
      for (int64_t key : seqs[t]) {
        auto r = db->GetByKey(key);
        if (!r.ok()) std::abort();
        sum += r->delay_seconds;
      }
      delays[t] = sum;
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = (wall.NowMicros() - start) / 1e6;

  RunResult res;
  const double total_ops = static_cast<double>(threads) * kOpsPerThread;
  res.qps = total_ops / elapsed;
  res.per_thread_qps = res.qps / threads;
  for (double d : delays) res.total_delay += d;
  res.cache_hits = db->row_cache_hits();
  res.cache_misses = db->row_cache_misses();
  res.epoch_flushes = db->stats_epoch_flushes();
  db.reset();
  fs::remove_all(dir);
  return res;
}

/// Serial oracle: one CountTracker replaying warmup + the per-thread
/// sequences round-robin, charging through the same snapshot math.
double SerialOracleDelay(const std::vector<std::vector<int64_t>>& seqs) {
  const ProtectedDatabaseOptions opts = MakeDbOptions();
  CountTracker tracker(kRows, opts.decay_per_request);
  double total = 0.0;
  auto charge = [&](int64_t key) {
    tracker.Record(key);
    total += PopularityDelayPolicy::DelayFromStats(tracker.Stats(key),
                                                   opts.popularity);
  };
  for (int i = 1; i <= kRows; ++i) charge(i);
  const double warmup = total;
  for (int i = 0; i < kOpsPerThread; ++i) {
    for (const auto& seq : seqs) charge(seq[i]);
  }
  return total - warmup;
}

/// Measured-phase delay (excludes warmup, which RunConfig folds into
/// the db's accounting but not into the per-thread sums it returns).
double MeasuredDelay(const RunResult& r) { return r.total_delay; }

/// Open-loop (coordinated-omission-free) tail of the sharded door:
/// uniform point reads on a fixed exponential schedule, latency from
/// the INTENDED send time -- the closed-loop sweep above self-paces,
/// so only this section can show a stall's queueing backlash.
bench::OpenLoopStats RunOpenLoopSharded(const fs::path& base) {
  const fs::path dir = base / "openloop";
  fs::create_directories(dir);
  RealClock clock;
  auto opened = ConcurrentProtectedDatabase::Open(
      dir.string(), "items", &clock, MakeDbOptions(),
      MakeConcurrentOptions(ConcurrencyMode::kSharded));
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  if (!db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!db->GetByKey(i).ok()) std::abort();
  }
  const auto keys = MakeSequences(/*zipf=*/false, /*threads=*/4);
  bench::OpenLoopOptions olopts;
  olopts.threads = 4;
  olopts.ops_per_thread = TinyConfig() ? 400 : 4000;
  olopts.mean_interarrival_us = TinyConfig() ? 400.0 : 100.0;
  const bench::OpenLoopStats stats =
      bench::RunOpenLoop(olopts, [&](int t, int i) {
        if (!db->GetByKey(keys[static_cast<size_t>(t)]
                              [static_cast<size_t>(i) % keys[0].size()])
                 .ok()) {
          std::abort();
        }
      });
  db.reset();
  fs::remove_all(dir);
  return stats;
}

}  // namespace

int main() {
  const fs::path base =
      fs::temp_directory_path() / "tarpit_bench_concurrent_scaling";
  fs::remove_all(base);
  fs::create_directories(base);

  const int thread_counts[] = {1, 2, 4, 8};
  std::printf("# Concurrent scaling: GetByKey front-door throughput\n");
  std::printf("# rows=%d ops/thread=%d zipf_alpha=%.2f "
              "(delays computed+accounted, not slept)\n\n",
              kRows, kOpsPerThread, kZipfAlpha);
  std::printf("%-9s %-8s %-8s %-12s %-14s %-12s %-10s\n", "workload",
              "mode", "threads", "agg qps", "qps/thread", "cache hit%",
              "flushes");

  double global8_uniform = 0, sharded8_uniform = 0;
  double sharded8_zipf_drift = 0;
  // Sharded 8-thread runs publish into registries whose snapshots go
  // into the JSON dump (buffer-pool / row-cache hit rates, count-cache
  // traffic) so a regression in cache behavior is visible in CI
  // artifacts, not just in aggregate qps.
  obs::MetricRegistry reg_uniform8;
  obs::MetricRegistry reg_zipf8;
  std::string json_rows;
  char row_buf[512];

  for (bool zipf : {false, true}) {
    for (ConcurrencyMode mode :
         {ConcurrencyMode::kGlobalLock, ConcurrencyMode::kSharded}) {
      for (int threads : thread_counts) {
        const auto seqs = MakeSequences(zipf, threads);
        obs::MetricRegistry* reg = nullptr;
        if (threads == 8 && mode == ConcurrencyMode::kSharded) {
          reg = zipf ? &reg_zipf8 : &reg_uniform8;
        }
        const RunResult r = RunConfig(base, mode, seqs, reg);
        const double hit_pct =
            r.cache_hits + r.cache_misses == 0
                ? 0.0
                : 100.0 * static_cast<double>(r.cache_hits) /
                      static_cast<double>(r.cache_hits + r.cache_misses);
        std::printf("%-9s %-8s %-8d %-12.0f %-14.0f %-12.1f %-10llu\n",
                    zipf ? "zipf" : "uniform",
                    mode == ConcurrencyMode::kGlobalLock ? "global"
                                                         : "sharded",
                    threads, r.qps, r.per_thread_qps, hit_pct,
                    static_cast<unsigned long long>(r.epoch_flushes));

        std::snprintf(
            row_buf, sizeof(row_buf),
            "%s    {\"workload\": \"%s\", \"mode\": \"%s\", "
            "\"threads\": %d, \"qps\": %.1f, \"qps_per_thread\": %.1f, "
            "\"row_cache_hits\": %llu, \"row_cache_misses\": %llu, "
            "\"epoch_flushes\": %llu}",
            json_rows.empty() ? "" : ",\n", zipf ? "zipf" : "uniform",
            mode == ConcurrencyMode::kGlobalLock ? "global" : "sharded",
            threads, r.qps, r.per_thread_qps,
            static_cast<unsigned long long>(r.cache_hits),
            static_cast<unsigned long long>(r.cache_misses),
            static_cast<unsigned long long>(r.epoch_flushes));
        json_rows.append(row_buf);

        if (!zipf && threads == 8) {
          if (mode == ConcurrencyMode::kGlobalLock) {
            global8_uniform = r.qps;
          } else {
            sharded8_uniform = r.qps;
          }
        }
        if (mode == ConcurrencyMode::kSharded) {
          const double oracle = SerialOracleDelay(seqs);
          const double drift =
              oracle <= 0 ? 0.0
                          : std::fabs(MeasuredDelay(r) - oracle) / oracle;
          if (zipf && threads == 8) sharded8_zipf_drift = drift;
          std::printf("%-9s %-8s %-8d oracle_delay=%.4fs "
                      "measured=%.4fs drift=%.3f%%\n",
                      zipf ? "zipf" : "uniform", "sharded", threads,
                      oracle, MeasuredDelay(r), 100.0 * drift);
        }
      }
    }
  }

  const double speedup =
      global8_uniform <= 0 ? 0.0 : sharded8_uniform / global8_uniform;
  std::printf("\n# Acceptance\n");
  std::printf("uniform@8: sharded %.0f qps vs global %.0f qps -> "
              "%.2fx (target >= 3.0x) %s\n",
              sharded8_uniform, global8_uniform, speedup,
              speedup >= 3.0 ? "PASS" : "FAIL");
  std::printf("zipf@8 delay-accuracy drift vs serial tracker: %.3f%% "
              "(target <= 5%%) %s\n",
              100.0 * sharded8_zipf_drift,
              sharded8_zipf_drift <= 0.05 ? "PASS" : "FAIL");

  const bench::OpenLoopStats ol = RunOpenLoopSharded(base);
  std::printf("open-loop sharded reads: p50 %.0fus p99 %.0fus p999 "
              "%.0fus, achieved %.0f qps\n",
              ol.p50_us, ol.p99_us, ol.p999_us, ol.achieved_qps);

  if (const char* json_path = std::getenv("TARPIT_BENCH_JSON")) {
    if (json_path[0] != '\0') {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"concurrent_scaling\",\n"
            "  \"tiny\": %s,\n"
            "  \"rows\": %d,\n"
            "  \"ops_per_thread\": %d,\n"
            "  \"configs\": [\n%s\n  ],\n"
            "  \"speedup_uniform8\": %.3f,\n"
            "  \"speedup_pass\": %s,\n"
            "  \"zipf8_drift\": %.6f,\n"
            "  \"drift_pass\": %s,\n"
            "%s"
            "  \"registry_sharded8_uniform\": %s,\n"
            "  \"registry_sharded8_zipf\": %s\n"
            "}\n",
            TinyConfig() ? "true" : "false", kRows, kOpsPerThread,
            json_rows.c_str(), speedup,
            speedup >= 3.0 ? "true" : "false", sharded8_zipf_drift,
            sharded8_zipf_drift <= 0.05 ? "true" : "false",
            bench::OpenLoopJsonFields(ol).c_str(),
            obs::ToJson(reg_uniform8.Snapshot()).c_str(),
            obs::ToJson(reg_zipf8.Snapshot()).c_str());
        std::fclose(f);
        std::printf("json written to %s\n", json_path);
      }
    }
  }

  fs::remove_all(base);
  return 0;
}
