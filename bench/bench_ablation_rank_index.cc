// Ablation: exact order-statistics treap vs approximate log-bucketed
// rank index.
//
// Two questions: (1) how much faster is the bucket index per recorded
// request, and (2) how much rank error does it introduce (which feeds
// directly into delay error through the rank^beta term).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "stats/count_tracker.h"
#include "stats/rank_index.h"

namespace tarpit {
namespace {

void RecordWorkload(CountTracker* tracker, uint64_t n, int requests,
                    uint64_t seed) {
  ZipfDistribution zipf(n, 1.2);
  Rng rng(seed);
  for (int i = 0; i < requests; ++i) {
    tracker->Record(static_cast<int64_t>(zipf.Sample(&rng)));
  }
}

void BM_TreapRecord(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  CountTracker tracker(n, 1.0, std::make_unique<TreapRankIndex>());
  ZipfDistribution zipf(n, 1.2);
  Rng rng(1);
  for (auto _ : state) {
    tracker.Record(static_cast<int64_t>(zipf.Sample(&rng)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreapRecord)->Arg(10'000)->Arg(100'000);

void BM_BucketRecord(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  CountTracker tracker(n, 1.0,
                       std::make_unique<BucketRankIndex>(1.25));
  ZipfDistribution zipf(n, 1.2);
  Rng rng(1);
  for (auto _ : state) {
    tracker.Record(static_cast<int64_t>(zipf.Sample(&rng)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketRecord)->Arg(10'000)->Arg(100'000);

void BM_TreapRankQuery(benchmark::State& state) {
  const uint64_t n = 100'000;
  CountTracker tracker(n, 1.0, std::make_unique<TreapRankIndex>());
  RecordWorkload(&tracker, n, 500'000, 2);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tracker.Stats(static_cast<int64_t>(rng.Uniform(n)) + 1));
  }
}
BENCHMARK(BM_TreapRankQuery);

void BM_BucketRankQuery(benchmark::State& state) {
  const uint64_t n = 100'000;
  CountTracker tracker(n, 1.0,
                       std::make_unique<BucketRankIndex>(1.25));
  RecordWorkload(&tracker, n, 500'000, 2);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tracker.Stats(static_cast<int64_t>(rng.Uniform(n)) + 1));
  }
}
BENCHMARK(BM_BucketRankQuery);

void PrintAccuracyComparison() {
  const uint64_t n = 20'000;
  CountTracker exact(n, 1.0, std::make_unique<TreapRankIndex>());
  CountTracker approx(n, 1.0,
                      std::make_unique<BucketRankIndex>(1.25));
  ZipfDistribution zipf(n, 1.2);
  Rng rng(5);
  for (int i = 0; i < 500'000; ++i) {
    int64_t key = static_cast<int64_t>(zipf.Sample(&rng));
    exact.Record(key);
    approx.Record(key);
  }
  std::printf("# Rank accuracy (bucket growth 1.25 vs exact treap, "
              "N = %llu, 500k Zipf(1.2) requests)\n",
              static_cast<unsigned long long>(n));
  std::printf("%-12s %-12s %-12s %-12s\n", "true-rank", "treap",
              "bucket", "rel-err");
  Rng pick(6);
  double max_rel_err = 0;
  for (int64_t key : {1, 5, 25, 125, 625, 3125}) {
    uint64_t tr = exact.Stats(key).rank;
    uint64_t br = approx.Stats(key).rank;
    double rel =
        std::abs(static_cast<double>(br) - static_cast<double>(tr)) /
        static_cast<double>(tr);
    max_rel_err = std::max(max_rel_err, rel);
    std::printf("%-12lld %-12llu %-12llu %-12.2f\n",
                static_cast<long long>(key),
                static_cast<unsigned long long>(tr),
                static_cast<unsigned long long>(br), rel);
  }
  std::printf("# max relative rank error at probes: %.2f\n\n",
              max_rel_err);
}

}  // namespace
}  // namespace tarpit

int main(int argc, char** argv) {
  tarpit::PrintAccuracyComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
