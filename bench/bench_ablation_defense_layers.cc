// Ablation: defense-in-depth. The same determined adversary (100
// sybils if it can get them) extracts a 2,000-tuple relation through
// the gate under progressively stronger perimeters:
//
//   L0  delays only (free registration, no throttles)
//   L1  + registration rate limiting (paper section 2.4)
//   L2  + per-/24 subnet aggregation (Sybil defense)
//   L3  + coverage-tracking escalation (extension)
//
// Reported: virtual wall-clock time to complete the extraction. Each
// layer should multiply the attack's cost; legitimate access (checked
// as a spot sample) stays cheap throughout.

#include <cstdio>
#include <filesystem>
#include <memory>

#include "common/clock.h"
#include "core/protected_db.h"
#include "defense/query_gate.h"
#include "sim/gate_attack.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

constexpr uint64_t kTuples = 2'000;

struct LayerOutcome {
  double attack_hours;
  double legit_median_ms;
  uint64_t rate_limited;
  bool completed;
};

LayerOutcome RunLayer(const std::string& tag, QueryGateOptions gate_opts,
                      uint64_t sybils) {
  const fs::path dir =
      fs::temp_directory_path() / ("tarpit_defense_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);

  auto clock = std::make_unique<VirtualClock>();
  ProtectedDatabaseOptions db_opts;
  db_opts.popularity.scale = 0.05;
  db_opts.popularity.beta = 1.0;
  db_opts.popularity.bounds = {0.0, 10.0};
  // The attack simulator runs per-identity timelines; delays must not
  // advance the shared clock inside ExecuteSql.
  db_opts.defer_delay_sleep = true;
  auto pdb = ProtectedDatabase::Open(dir.string(), "items", clock.get(),
                                     db_opts);
  if (!pdb.ok()) std::abort();
  (void)(*pdb)->ExecuteSql(
      "CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)");
  for (uint64_t i = 1; i <= kTuples; ++i) {
    if (!(*pdb)
             ->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(1.0)})
             .ok()) {
      std::abort();
    }
  }
  {
    // A brief legitimate history so the head of the distribution is
    // cheap (otherwise everything is at the cap and layers can't
    // differentiate).
    for (int rep = 0; rep < 200; ++rep) {
      for (int64_t k = 1; k <= 20; ++k) {
        (void)(*pdb)->ExecuteSql("SELECT * FROM items WHERE id = " +
                                 std::to_string(k));
      }
    }
  }

  QueryGate gate(pdb->get(), gate_opts);

  // Legitimate spot check: one fresh user fetching a popular tuple.
  auto probe = gate.RegisterUser(Ipv4FromString("192.0.2.1"));
  double legit_ms = -1;
  if (probe.ok()) {
    auto r = gate.ExecuteSql(*probe, "SELECT * FROM items WHERE id = 1");
    if (r.ok()) legit_ms = r->delay_seconds * 1e3;
  }

  GateAttackConfig attack;
  attack.n = kTuples;
  attack.identities = sybils;
  attack.spread_subnets = false;  // One /24 (a realistic botnet slice).
  attack.give_up_after_seconds = 400.0 * 3600;
  GateAttackReport report =
      RunGateExtraction(&gate, clock.get(), attack);

  fs::remove_all(dir);
  return LayerOutcome{report.attack_seconds / 3600.0, legit_ms,
                      report.rate_limited, report.completed};
}

}  // namespace

int main() {
  std::printf("# Ablation: defense layers vs sybil extraction of %llu "
              "tuples (cap 10 s)\n",
              static_cast<unsigned long long>(kTuples));
  std::printf("# attack hours to extract everything; legitimate probe "
              "delay stays ~0.25 ms in all cells\n");
  std::printf("%-34s %-18s %-18s\n", "perimeter", "10 sybils (h)",
              "100 sybils (h)");

  // L0: delays only.
  QueryGateOptions l0;
  l0.registration_seconds_per_account = 0.0;
  l0.registration_burst = 200.0;
  l0.per_user_queries_per_second = 1e9;
  l0.per_user_burst = 1e9;
  l0.per_subnet_queries_per_second = 1e9;
  l0.per_subnet_burst = 1e9;

  // L1: + registration limiting (1 account / 5 min).
  QueryGateOptions l1 = l0;
  l1.registration_seconds_per_account = 300.0;
  l1.registration_burst = 1.0;

  // L2: + subnet aggregation (the sybils share a /24).
  QueryGateOptions l2 = l1;
  l2.per_subnet_queries_per_second = 2.0;
  l2.per_subnet_burst = 20.0;

  // L3: + coverage escalation. With few sybils each identity's
  // coverage is blatant; with 100 sybils each stays near the free
  // threshold -- quantifying how much Sybil capacity the coverage
  // signal can absorb.
  QueryGateOptions l3 = l2;
  l3.coverage_escalation = true;
  l3.coverage.free_coverage = 0.01;
  l3.coverage.max_coverage = 0.2;
  l3.coverage.max_escalation = 20.0;

  const char* names[4] = {"L0 delays only", "L1 + registration limit",
                          "L2 + subnet rate limit",
                          "L3 + coverage escalation"};
  const QueryGateOptions opts[4] = {l0, l1, l2, l3};
  for (int layer = 0; layer < 4; ++layer) {
    LayerOutcome small = RunLayer(
        "l" + std::to_string(layer) + "s10", opts[layer], 10);
    LayerOutcome big = RunLayer(
        "l" + std::to_string(layer) + "s100", opts[layer], 100);
    std::printf("%-34s %-18.2f %-18.2f\n", names[layer],
                small.attack_hours, big.attack_hours);
  }
  return 0;
}
