// Analytical regimes of section 2.1 (Eqs. 3-4): how the median rank and
// the adversary/median delay ratio scale with N in the three skew
// regimes (alpha < 1, alpha = 1, alpha > 1), computed exactly from the
// closed-form model (no simulation).
//
// Paper claims (Eq. 3): median rank is Theta(N) below alpha=1,
// Theta(sqrt N) at alpha=1, Theta(log N) above. (Eq. 4): for skews
// >= 1, a tolerable beta makes the adversary/median ratio grow by
// orders of magnitude with N -- the core guarantee of the scheme.

#include <cstdio>

#include "analysis/model.h"

using namespace tarpit;

int main() {
  std::printf("# Median rank i_med vs N (Eq. 3 regimes)\n");
  std::printf("%-10s %-14s %-14s %-14s\n", "N", "alpha=0.5",
              "alpha=1.0", "alpha=1.5");
  for (uint64_t n : {1'000ull, 10'000ull, 100'000ull, 1'000'000ull}) {
    std::printf("%-10llu %-14llu %-14llu %-14llu\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(MedianRankZipf(n, 0.5)),
                static_cast<unsigned long long>(MedianRankZipf(n, 1.0)),
                static_cast<unsigned long long>(MedianRankZipf(n, 1.5)));
  }

  std::printf("\n# Adversary/median delay ratio vs N "
              "(Eq. 4; beta = 1, fmax = 1, uncapped)\n");
  std::printf("%-10s %-16s %-16s %-16s\n", "N", "alpha=0.5",
              "alpha=1.0", "alpha=1.5");
  for (uint64_t n : {1'000ull, 10'000ull, 100'000ull, 1'000'000ull}) {
    std::printf("%-10llu", static_cast<unsigned long long>(n));
    for (double alpha : {0.5, 1.0, 1.5}) {
      ZipfModelParams p;
      p.n = n;
      p.alpha = alpha;
      p.beta = 1.0;
      p.fmax = 1.0;
      p.dmax = 0;  // Uncapped: the pure asymptotic.
      std::printf(" %-16.3e", AdversaryToMedianRatio(p));
    }
    std::printf("\n");
  }

  std::printf("\n# With the 10 s cap (the deployable configuration) the "
              "ratio still explodes:\n");
  std::printf("%-10s %-16s\n", "N", "alpha=1.5 capped");
  for (uint64_t n : {1'000ull, 100'000ull, 1'000'000ull}) {
    ZipfModelParams p;
    p.n = n;
    p.alpha = 1.5;
    p.beta = 1.0;
    p.fmax = 1.0;
    p.dmax = 10.0;
    std::printf("%-10llu %-16.3e\n",
                static_cast<unsigned long long>(n),
                AdversaryToMedianRatio(p));
  }

  std::printf("\n# Regime classes:\n");
  for (double alpha : {0.5, 1.0, 1.5}) {
    std::printf("# alpha=%.1f: %s\n", alpha,
                RatioRegimeDescription(alpha, 1.0).c_str());
  }
  return 0;
}
