// Concurrent read path acceptance bench (ISSUE 5): measures the three
// tentpole wins and emits BENCH_read.json for the CI quick-bench gate.
//
//   1. 8-thread point-read throughput, sharded front door (thread-safe
//      sharded buffer pool + shared storage lock + striped row cache)
//      vs the exclusive-lock baseline (ConcurrencyMode::kGlobalLock).
//      Target: >= 2x (CI gates at >= 1.5x to absorb runner noise).
//   2. Plan-cache p50: repeated point-lookup SELECT latency with the
//      statement cache on vs off (lexer -> parser -> planner skipped on
//      hits). Target: >= 30% p50 improvement.
//   3. Charged-delay fidelity: the sharded path replaying a Zipf key
//      sequence single-threaded with epoch_batch=1 must charge within
//      0.01% of a serial CountTracker oracle -- the refactored read
//      path may not change the delay math at all. (Single-threaded
//      because drift here measures ACCOUNTING fidelity; ordering
//      nondeterminism under concurrency is measured, with a looser
//      bar, by bench_concurrent_scaling.)
//
// Also reports batched range-scan throughput with LIMIT pushdown
// (leaf-at-a-time decode), informational.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/popularity_delay.h"
#include "core/protected_db.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "openloop.h"
#include "stats/count_tracker.h"
#include "workload/key_generator.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

constexpr int kRows = 4096;
constexpr double kZipfAlpha = 1.1;

bool TinyConfig() {
  const char* env = std::getenv("TARPIT_BENCH_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}
const int kOpsPerThread = TinyConfig() ? 500 : 20'000;
const int kSqlRounds = TinyConfig() ? 40 : 400;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ProtectedDatabaseOptions MakeDelayOptions() {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.beta = 0.0;
  opts.popularity.scale = 1e-3;
  opts.popularity.bounds = {0.0, 10.0};
  opts.decay_per_request = 1.0;
  // Tiny pools: point lookups exercise the real storage path (the
  // regime where the exclusive-lock baseline serializes everything).
  opts.table_options.heap_pool_pages = 8;
  opts.table_options.index_pool_pages = 8;
  return opts;
}

std::unique_ptr<ConcurrentProtectedDatabase> OpenConcurrent(
    const fs::path& dir, ConcurrencyMode mode, size_t epoch_batch,
    Clock* clock, obs::MetricRegistry* metrics) {
  fs::create_directories(dir);
  ConcurrentDatabaseOptions copts;
  copts.mode = mode;
  copts.num_shards = 64;
  copts.stats_shards = 64;
  copts.epoch_batch = epoch_batch;
  copts.serve_delays = false;  // Measure the charge, skip the sleep.
  copts.metrics = metrics;
  auto opened = ConcurrentProtectedDatabase::Open(
      dir.string(), "items", clock, MakeDelayOptions(), copts);
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  if (!db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }
  if (!db->Checkpoint().ok()) std::abort();
  return db;
}

std::vector<std::vector<int64_t>> MakeSequences(bool zipf, int threads) {
  std::vector<std::vector<int64_t>> seqs(threads);
  for (int t = 0; t < threads; ++t) {
    Rng rng(0xBEEFCAFEu + 917u * static_cast<uint64_t>(t) +
            (zipf ? 3u : 0u));
    std::unique_ptr<KeyGenerator> gen;
    if (zipf) {
      gen = std::make_unique<ZipfKeyGenerator>(kRows, kZipfAlpha);
    } else {
      gen = std::make_unique<UniformKeyGenerator>(kRows);
    }
    seqs[t].reserve(kOpsPerThread);
    for (int i = 0; i < kOpsPerThread; ++i) {
      seqs[t].push_back(gen->Next(&rng));
    }
  }
  return seqs;
}

/// Part 1: 8-thread GetByKey throughput for one mode.
double RunThroughput(const fs::path& base, ConcurrencyMode mode,
                     const std::vector<std::vector<int64_t>>& seqs) {
  static int run_id = 0;
  const fs::path dir = base / ("tp_" + std::to_string(run_id++));
  RealClock clock;
  auto db = OpenConcurrent(dir, mode, /*epoch_batch=*/256, &clock,
                           nullptr);
  for (int i = 1; i <= kRows; ++i) {  // Warm pools / row cache.
    if (!db->GetByKey(i).ok()) std::abort();
  }
  const int64_t start = clock.NowMicros();
  std::vector<std::thread> workers;
  for (const auto& seq : seqs) {
    workers.emplace_back([&db, &seq] {
      for (int64_t key : seq) {
        if (!db->GetByKey(key).ok()) std::abort();
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = (clock.NowMicros() - start) / 1e6;
  db.reset();
  fs::remove_all(dir);
  return static_cast<double>(seqs.size()) * kOpsPerThread / elapsed;
}

/// Part 2: p50 of repeated point-lookup SELECT latency through the
/// serial front door, with / without the plan cache.
double RunSqlP50Nanos(const fs::path& dir, size_t plan_cache_capacity) {
  fs::create_directories(dir);
  RealClock clock;
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kNone;
  opts.plan_cache_capacity = plan_cache_capacity;
  // Default (large) pools: rows stay resident, so the measured delta
  // is compilation cost, not disk traffic.
  auto opened = ProtectedDatabase::Open(dir.string(), "items", &clock,
                                        opts);
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  if (!db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }
  constexpr int kDistinct = 64;
  std::vector<std::string> statements;
  statements.reserve(kDistinct);
  for (int i = 0; i < kDistinct; ++i) {
    statements.push_back("SELECT * FROM items WHERE id = " +
                         std::to_string(1 + i * (kRows / kDistinct)));
  }
  for (const std::string& sql : statements) {  // Warm cache + pools.
    if (!db->ExecuteSql(sql).ok()) std::abort();
  }
  std::vector<int64_t> lat;
  lat.reserve(static_cast<size_t>(kSqlRounds) * kDistinct);
  for (int round = 0; round < kSqlRounds; ++round) {
    for (const std::string& sql : statements) {
      const int64_t t0 = NowNanos();
      if (!db->ExecuteSql(sql).ok()) std::abort();
      lat.push_back(NowNanos() - t0);
    }
  }
  db.reset();
  fs::remove_all(dir);
  std::nth_element(lat.begin(), lat.begin() + lat.size() / 2, lat.end());
  return static_cast<double>(lat[lat.size() / 2]);
}

/// Part 3: charged-delay fidelity of the sharded read path against a
/// serial CountTracker oracle (same sequence, same order).
double RunDrift(const fs::path& base,
                const std::vector<int64_t>& sequence) {
  const fs::path dir = base / "drift";
  RealClock clock;
  // epoch_batch=1: every access merges into the rank index before the
  // next, so execution order equals oracle order exactly.
  auto db = OpenConcurrent(dir, ConcurrencyMode::kSharded,
                           /*epoch_batch=*/1, &clock, nullptr);
  for (int i = 1; i <= kRows; ++i) {
    if (!db->GetByKey(i).ok()) std::abort();
  }
  double measured = 0.0;
  for (int64_t key : sequence) {
    auto r = db->GetByKey(key);
    if (!r.ok()) std::abort();
    measured += r->delay_seconds;
  }
  db.reset();
  fs::remove_all(dir);

  const ProtectedDatabaseOptions opts = MakeDelayOptions();
  CountTracker tracker(kRows, opts.decay_per_request);
  double oracle = 0.0;
  auto charge = [&](int64_t key) {
    tracker.Record(key);
    return PopularityDelayPolicy::DelayFromStats(tracker.Stats(key),
                                                 opts.popularity);
  };
  for (int i = 1; i <= kRows; ++i) charge(i);  // Warmup, not summed.
  for (int64_t key : sequence) oracle += charge(key);
  return oracle <= 0 ? 0.0 : std::fabs(measured - oracle) / oracle;
}

/// Open-loop (coordinated-omission-free) latency of the sharded door:
/// requests fire on a fixed exponential schedule and latency is
/// measured from the INTENDED send time, so a slow request also
/// charges the requests queued behind it.
bench::OpenLoopStats RunOpenLoopReads(const fs::path& base) {
  const fs::path dir = base / "openloop";
  RealClock clock;
  auto db = OpenConcurrent(dir, ConcurrencyMode::kSharded,
                           /*epoch_batch=*/256, &clock, nullptr);
  for (int i = 1; i <= kRows; ++i) {
    if (!db->GetByKey(i).ok()) std::abort();
  }
  std::vector<std::vector<int64_t>> keys =
      MakeSequences(/*zipf=*/false, /*threads=*/4);
  bench::OpenLoopOptions olopts;
  olopts.threads = 4;
  olopts.ops_per_thread = TinyConfig() ? 400 : 4000;
  olopts.mean_interarrival_us = TinyConfig() ? 400.0 : 100.0;
  const bench::OpenLoopStats stats =
      bench::RunOpenLoop(olopts, [&](int t, int i) {
        if (!db->GetByKey(keys[static_cast<size_t>(t)]
                              [static_cast<size_t>(i) % keys[0].size()])
                 .ok()) {
          std::abort();
        }
      });
  db.reset();
  fs::remove_all(dir);
  return stats;
}

struct ScanStats {
  double full_rows_per_sec = 0;
  double limit10_micros = 0;
};

/// Informational: batched range scans + LIMIT pushdown through the SQL
/// layer, publishing tarpit_scan_batch_rows into `metrics`.
ScanStats RunScans(const fs::path& dir, obs::MetricRegistry* metrics) {
  fs::create_directories(dir);
  RealClock clock;
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kNone;
  opts.metrics = metrics;
  auto opened = ProtectedDatabase::Open(dir.string(), "items", &clock,
                                        opts);
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  if (!db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }
  ScanStats out;
  const int scan_rounds = TinyConfig() ? 5 : 50;
  uint64_t rows_seen = 0;
  const int64_t t0 = clock.NowMicros();
  for (int i = 0; i < scan_rounds; ++i) {
    auto r = db->ExecuteSql(
        "SELECT * FROM items WHERE id >= 1 AND id <= " +
        std::to_string(kRows));
    if (!r.ok()) std::abort();
    rows_seen += r->result.rows.size();
  }
  const double full_secs = (clock.NowMicros() - t0) / 1e6;
  out.full_rows_per_sec = static_cast<double>(rows_seen) / full_secs;

  // LIMIT pushdown: stopping after 10 of 4096 candidates must cost
  // microseconds, not a full-range decode.
  const int64_t t1 = clock.NowMicros();
  const int limit_rounds = TinyConfig() ? 50 : 500;
  for (int i = 0; i < limit_rounds; ++i) {
    auto r = db->ExecuteSql(
        "SELECT * FROM items WHERE id >= 1 AND id <= " +
        std::to_string(kRows) + " LIMIT 10");
    if (!r.ok() || r->result.rows.size() != 10) std::abort();
  }
  out.limit10_micros =
      static_cast<double>(clock.NowMicros() - t1) / limit_rounds;
  db.reset();
  fs::remove_all(dir);
  return out;
}

}  // namespace

int main() {
  const fs::path base = fs::temp_directory_path() / "tarpit_bench_read";
  fs::remove_all(base);
  fs::create_directories(base);

  std::printf("# Concurrent read path: sharded buffer pool + plan "
              "cache + batched scans\n");
  std::printf("# rows=%d ops/thread=%d sql_rounds=%d tiny=%d\n\n",
              kRows, kOpsPerThread, kSqlRounds, TinyConfig() ? 1 : 0);

  // 1. 8-thread read throughput, sharded vs exclusive-lock baseline.
  const auto seqs = MakeSequences(/*zipf=*/false, /*threads=*/8);
  const double qps_global =
      RunThroughput(base, ConcurrencyMode::kGlobalLock, seqs);
  const double qps_sharded =
      RunThroughput(base, ConcurrencyMode::kSharded, seqs);
  const double speedup = qps_global <= 0 ? 0.0 : qps_sharded / qps_global;
  std::printf("read@8t: sharded %.0f qps vs exclusive-lock %.0f qps -> "
              "%.2fx (target >= 2.0x) %s\n",
              qps_sharded, qps_global, speedup,
              speedup >= 2.0 ? "PASS" : "FAIL");

  // 2. Plan-cache p50.
  const double p50_off = RunSqlP50Nanos(base / "sql_off", 0);
  const double p50_on = RunSqlP50Nanos(base / "sql_on", 256);
  const double p50_improvement =
      p50_off <= 0 ? 0.0 : (p50_off - p50_on) / p50_off;
  std::printf("plan cache p50: off %.0fns on %.0fns -> %.1f%% "
              "improvement (target >= 30%%) %s\n",
              p50_off, p50_on, 100.0 * p50_improvement,
              p50_improvement >= 0.30 ? "PASS" : "FAIL");

  // 3. Charged-delay fidelity.
  Rng rng(0xD15EA5Eu);
  ZipfKeyGenerator zipf(kRows, kZipfAlpha);
  std::vector<int64_t> drift_seq;
  drift_seq.reserve(kOpsPerThread);
  for (int i = 0; i < kOpsPerThread; ++i) {
    drift_seq.push_back(zipf.Next(&rng));
  }
  const double drift = RunDrift(base, drift_seq);
  std::printf("charged-delay drift vs serial oracle: %.6f%% "
              "(target <= 0.01%%) %s\n",
              100.0 * drift, drift <= 1e-4 ? "PASS" : "FAIL");

  // 4. Batched scans (informational).
  obs::MetricRegistry scan_reg;
  const ScanStats scans = RunScans(base / "scans", &scan_reg);
  std::printf("range scan: %.0f rows/s full-range; LIMIT 10 over %d "
              "candidates: %.1fus/query\n",
              scans.full_rows_per_sec, kRows, scans.limit10_micros);

  // 5. Open-loop tail latency (CO-free, informational).
  const bench::OpenLoopStats ol = RunOpenLoopReads(base);
  std::printf("open-loop reads: p50 %.0fus p99 %.0fus p999 %.0fus, "
              "achieved %.0f qps\n",
              ol.p50_us, ol.p99_us, ol.p999_us, ol.achieved_qps);

  if (const char* json_path = std::getenv("TARPIT_BENCH_JSON")) {
    if (json_path[0] != '\0') {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"read_path\",\n"
            "  \"tiny\": %s,\n"
            "  \"rows\": %d,\n"
            "  \"ops_per_thread\": %d,\n"
            "  \"qps_sharded_8t\": %.1f,\n"
            "  \"qps_exclusive_8t\": %.1f,\n"
            "  \"read_speedup_8t\": %.3f,\n"
            "  \"speedup_pass\": %s,\n"
            "  \"plan_cache_p50_off_ns\": %.0f,\n"
            "  \"plan_cache_p50_on_ns\": %.0f,\n"
            "  \"plan_cache_p50_improvement\": %.4f,\n"
            "  \"p50_pass\": %s,\n"
            "  \"delay_drift\": %.9f,\n"
            "  \"drift_pass\": %s,\n"
            "  \"scan_rows_per_sec\": %.0f,\n"
            "  \"scan_limit10_micros\": %.2f,\n"
            "%s"
            "  \"registry_scans\": %s\n"
            "}\n",
            TinyConfig() ? "true" : "false", kRows, kOpsPerThread,
            qps_sharded, qps_global, speedup,
            speedup >= 2.0 ? "true" : "false", p50_off, p50_on,
            p50_improvement, p50_improvement >= 0.30 ? "true" : "false",
            drift, drift <= 1e-4 ? "true" : "false",
            scans.full_rows_per_sec, scans.limit10_micros,
            bench::OpenLoopJsonFields(ol).c_str(),
            obs::ToJson(scan_reg.Snapshot()).c_str());
        std::fclose(f);
        std::printf("json written to %s\n", json_path);
      }
    }
  }

  fs::remove_all(base);
  return 0;
}
