// Ablation: the beta knob. The paper: "The constant beta is chosen to
// balance the desired penalty imposed on an extraction attack with the
// undesirable delays to legitimate users." This bench sweeps beta over
// a closed-loop user population and reports both sides of that trade,
// including the fraction of requests beyond a 1 s human tolerance.

#include <cstdio>
#include <memory>

#include "core/popularity_delay.h"
#include "sim/adversary.h"
#include "sim/user_model.h"
#include "stats/count_tracker.h"

using namespace tarpit;

int main() {
  const uint64_t n = 50'000;
  std::printf("# Ablation: beta sweep (N = %llu, Zipf(1.2) users, cap "
              "10 s, tolerance 1 s)\n",
              static_cast<unsigned long long>(n));
  std::printf("%-8s %-14s %-12s %-16s %-18s %-16s\n", "beta",
              "median (ms)", "p99 (s)", "intolerable %",
              "adversary (h)", "ratio adv/med");
  for (double beta : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    CountTracker tracker(n, 1.0);
    PopularityDelayParams params;
    params.scale = 0.02;
    params.beta = beta;
    params.bounds = {0.0, 10.0};
    PopularityDelayPolicy policy(&tracker, params);

    UserPopulationConfig config;
    config.num_users = 500;
    config.zipf_alpha = 1.2;
    config.total_requests = 300'000;
    config.tolerance_seconds = 1.0;
    UserPopulationReport users =
        RunUserPopulation(&tracker, policy, config);

    ExtractionReport adversary = RunSequentialExtraction(policy, n);
    const double median = users.median_delay_seconds;
    std::printf("%-8.1f %-14.3f %-12.3f %-16.2f %-18.2f %-16.3e\n",
                beta, median * 1e3, users.p99_delay_seconds,
                users.intolerable_fraction * 100,
                adversary.total_delay_seconds / 3600,
                median > 0 ? adversary.total_delay_seconds / median : 0);
  }
  std::printf("# Higher beta amplifies the adversary's bill but pushes "
              "more tail requests past tolerance --\n"
              "# the provider picks the operating point.\n");
  return 0;
}
