// Stall capacity: how many concurrently-stalled sessions a fixed
// thread budget can carry, blocking vs async stall scheduling.
//
// The paper's defense works by making every query wait; under the seed
// implementation each waiting query *holds an OS thread* for its whole
// stall, so the server's concurrent-stall capacity equals its thread
// count. The DelayScheduler (hierarchical timer wheel + dispatcher
// pool) turns a stalled request into a parked wheel entry instead, so
// the same fixed thread budget carries tens of thousands of
// simultaneous stalls -- the section 2.4 parallel-attack regime where
// many registered identities extract (and stall) at once.
//
// Two runs against identical kGlobalLock databases (so the only
// variable is stall scheduling, not the sharded compute path):
//   * blocking: kThreads workers call GetByKey and sleep through their
//     own stalls. Peak concurrent stalls is structurally <= kThreads.
//   * async: ONE submitter calls GetByKeyAsync; stalls park on the
//     wheel and complete on 8 dispatcher threads. Peak concurrent
//     stalls is the scheduler's parked() high-water mark.
//
// Acceptance targets (ISSUE 2):
//   * async peak concurrent stalls >= 50x the blocking path's at the
//     same dispatcher/thread budget;
//   * async total accounted delay matches a serial CountTracker oracle
//     replaying the identical submission order within 0.01% (the wheel
//     changes WHERE a stall waits, never HOW MUCH is charged).
//
// Telemetry acceptance (ISSUE 4): the async run publishes into a
// MetricRegistry; the tarpit_scheduler_parked gauge must be > 0 in a
// mid-run snapshot, and the tarpit_delay_charged_ns{policy} histogram
// median must match the oracle's exact median within 0.1%. The full
// registry snapshot is embedded in the JSON output.
//
// Env: TARPIT_BENCH_TINY=1 shrinks the workload for CI smoke runs;
// TARPIT_BENCH_JSON=<path> additionally emits machine-readable JSON.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/popularity_delay.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "openloop.h"
#include "stats/count_tracker.h"
#include "workload/key_generator.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

bool TinyConfig() {
  const char* env = std::getenv("TARPIT_BENCH_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

constexpr int kRows = 1024;
constexpr int kThreads = 8;  // Blocking workers == async dispatchers.
constexpr double kZipfAlpha = 1.1;

// Delay shape: scale/count clamped to [20ms, 80ms] -- every request
// stalls a humanly-short but schedulable time, so the blocking run
// finishes quickly while the async run still parks thousands at once.
ProtectedDatabaseOptions MakeDbOptions() {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.beta = 0.0;
  opts.popularity.scale = 0.05;
  opts.popularity.bounds = {0.02, 0.08};
  opts.decay_per_request = 1.0;
  return opts;
}

ConcurrentDatabaseOptions MakeConcurrentOptions(bool async_stalls) {
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kGlobalLock;  // Exact serial accounting.
  copts.serve_delays = true;                  // Stalls are real here.
  copts.async_stalls = async_stalls;
  copts.scheduler.num_dispatchers = kThreads;
  copts.scheduler.tick_micros = 1000;
  return copts;
}

std::vector<int64_t> MakeSequence(int ops, uint64_t seed) {
  Rng rng(seed);
  ZipfKeyGenerator gen(kRows, kZipfAlpha);
  std::vector<int64_t> seq;
  seq.reserve(ops);
  for (int i = 0; i < ops; ++i) seq.push_back(gen.Next(&rng));
  return seq;
}

std::unique_ptr<ConcurrentProtectedDatabase> OpenDb(
    const fs::path& dir, Clock* clock, bool async_stalls,
    obs::MetricRegistry* metrics) {
  fs::create_directories(dir);
  ConcurrentDatabaseOptions copts = MakeConcurrentOptions(async_stalls);
  copts.metrics = metrics;
  auto opened = ConcurrentProtectedDatabase::Open(
      dir.string(), "items", clock, MakeDbOptions(), copts);
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  if (!db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }
  if (!db->Checkpoint().ok()) std::abort();
  return db;
}

struct PathResult {
  double elapsed_seconds = 0;
  double qps = 0;           // Completions per wall second, under stall.
  double total_delay = 0;   // Seconds charged across the measured ops.
  size_t peak_stalled = 0;  // Max requests stalling simultaneously.
  // Registry's view of the wheel mid-run (async only): the
  // tarpit_scheduler_parked gauge read while stalls were in flight.
  int64_t parked_gauge_midrun = 0;
};

/// Blocking path: kThreads workers, each thread sleeps through its own
/// stalls, so at most kThreads requests stall at any instant.
PathResult RunBlocking(const fs::path& dir,
                       const std::vector<int64_t>& seq) {
  RealClock clock;
  auto db = OpenDb(dir, &clock, /*async_stalls=*/false, nullptr);

  std::atomic<size_t> in_call{0};
  std::atomic<size_t> peak{0};
  std::vector<double> delays(kThreads, 0.0);
  const int64_t start = clock.NowMicros();
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      double sum = 0.0;
      // Static round-robin split of the shared sequence.
      for (size_t i = t; i < seq.size(); i += kThreads) {
        size_t now = in_call.fetch_add(1, std::memory_order_relaxed) + 1;
        size_t p = peak.load(std::memory_order_relaxed);
        while (now > p &&
               !peak.compare_exchange_weak(p, now,
                                           std::memory_order_relaxed)) {
        }
        auto r = db->GetByKey(seq[i]);
        in_call.fetch_sub(1, std::memory_order_relaxed);
        if (!r.ok()) std::abort();
        sum += r->delay_seconds;
      }
      delays[t] = sum;
    });
  }
  for (auto& w : workers) w.join();
  PathResult res;
  res.elapsed_seconds = (clock.NowMicros() - start) / 1e6;
  res.qps = static_cast<double>(seq.size()) / res.elapsed_seconds;
  for (double d : delays) res.total_delay += d;
  res.peak_stalled = peak.load();
  db.reset();
  fs::remove_all(dir);
  return res;
}

/// Async path: one submitter; stalls park on the wheel; kThreads
/// dispatchers run completions. Capacity = the wheel's high-water mark.
PathResult RunAsync(const fs::path& dir, const std::vector<int64_t>& seq,
                    obs::MetricRegistry* metrics) {
  RealClock clock;
  auto db = OpenDb(dir, &clock, /*async_stalls=*/true, metrics);

  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  double total_delay = 0.0;
  const int64_t start = clock.NowMicros();
  for (int64_t key : seq) {
    db->GetByKeyAsync(key, [&](Result<ProtectedResult> r) {
      if (!r.ok()) std::abort();
      std::lock_guard<std::mutex> lock(mu);
      total_delay += r->delay_seconds;
      if (++completed == seq.size()) cv.notify_all();
    });
  }
  // Mid-run registry read: every op is submitted, most are still
  // parked (each stalls 20-80ms; submission outruns expiry). The
  // parked gauge must see the stalled population.
  int64_t parked_gauge = 0;
  if (const obs::MetricSnapshot* parked =
          metrics->Snapshot().Find("tarpit_scheduler_parked")) {
    parked_gauge = parked->value;
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == seq.size(); });
  }
  PathResult res;
  res.elapsed_seconds = (clock.NowMicros() - start) / 1e6;
  res.qps = static_cast<double>(seq.size()) / res.elapsed_seconds;
  res.total_delay = total_delay;
  res.peak_stalled = db->delay_scheduler()->peak_parked();
  res.parked_gauge_midrun = parked_gauge;
  db.reset();
  fs::remove_all(dir);
  return res;
}

/// Open-loop (coordinated-omission-free) stall fidelity: one submitter
/// fires GetByKeyAsync on a fixed exponential schedule and each
/// request's latency is completion time minus the INTENDED send time.
/// With stalls served for real, p50 ~ the charged stall; the tail
/// exposes wheel-tick granularity, dispatcher queueing, and any
/// submit-side stall the closed-loop runs above would silently absorb.
bench::OpenLoopStats RunOpenLoopAsync(const fs::path& dir, int ops,
                                      double mean_interarrival_us) {
  RealClock clock;
  auto db = OpenDb(dir, &clock, /*async_stalls=*/true, nullptr);
  const auto seq = MakeSequence(ops, 0x01CE0Fu);

  Rng rng(0xAB5E9u);
  std::vector<int64_t> intended(seq.size());
  {
    int64_t at = bench::OpenLoopNowMicros() + 10'000;
    for (size_t i = 0; i < seq.size(); ++i) {
      at += static_cast<int64_t>(
          rng.Exponential(1.0 / mean_interarrival_us));
      intended[i] = at;
    }
  }

  std::vector<int64_t> lat(seq.size(), 0);
  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  const int64_t t0 = bench::OpenLoopNowMicros();
  for (size_t i = 0; i < seq.size(); ++i) {
    while (bench::OpenLoopNowMicros() < intended[i]) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    db->GetByKeyAsync(seq[i], [&, i](Result<ProtectedResult> r) {
      if (!r.ok()) std::abort();
      const int64_t now = bench::OpenLoopNowMicros();
      std::lock_guard<std::mutex> lock(mu);
      lat[i] = now - intended[i];
      if (++completed == seq.size()) cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == seq.size(); });
  }
  const int64_t t1 = bench::OpenLoopNowMicros();
  db.reset();
  fs::remove_all(dir);

  std::sort(lat.begin(), lat.end());
  bench::OpenLoopStats stats;
  stats.ops = lat.size();
  stats.p50_us = bench::PercentileUs(lat, 0.50);
  stats.p99_us = bench::PercentileUs(lat, 0.99);
  stats.p999_us = bench::PercentileUs(lat, 0.999);
  stats.achieved_qps =
      t1 > t0 ? static_cast<double>(lat.size()) / ((t1 - t0) / 1e6) : 0;
  return stats;
}

/// Serial oracle: one CountTracker replaying the async submission order
/// (single submitter => the global order is exactly `seq`), charging
/// through the same snapshot math as the database. Returns every
/// per-request delay so callers can check totals AND quantiles.
std::vector<double> SerialOracleDelays(const std::vector<int64_t>& seq) {
  const ProtectedDatabaseOptions opts = MakeDbOptions();
  CountTracker tracker(kRows, opts.decay_per_request);
  std::vector<double> delays;
  delays.reserve(seq.size());
  for (int64_t key : seq) {
    tracker.Record(key);
    delays.push_back(PopularityDelayPolicy::DelayFromStats(
        tracker.Stats(key), opts.popularity));
  }
  return delays;
}

/// Exact median by the same rank convention as
/// HistogramSnapshot::Quantile (the ceil(n/2)-th order statistic).
double ExactMedian(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const size_t k = (values.size() + 1) / 2 - 1;
  std::nth_element(values.begin(), values.begin() + k, values.end());
  return values[k];
}

}  // namespace

int main() {
  const bool tiny = TinyConfig();
  const int blocking_ops = tiny ? 80 : 800;
  const int async_ops = tiny ? 2000 : 20000;

  const fs::path base =
      fs::temp_directory_path() / "tarpit_bench_stall_capacity";
  fs::remove_all(base);
  fs::create_directories(base);

  std::printf("# Stall capacity: blocking threads vs timer-wheel parking\n");
  std::printf("# rows=%d threads/dispatchers=%d delay in [20,80]ms "
              "blocking_ops=%d async_ops=%d%s\n\n",
              kRows, kThreads, blocking_ops, async_ops,
              tiny ? " (tiny)" : "");

  // Distinct seeds: the two paths run independent workloads (each
  // path's accounting is compared to its own oracle replay).
  const auto blocking_seq = MakeSequence(blocking_ops, 0xB10Cu);
  const auto async_seq = MakeSequence(async_ops, 0xA51Cu);

  const PathResult blocking = RunBlocking(base / "blocking", blocking_seq);
  // The async run publishes into a registry; the post-run snapshot is
  // exact (its writers quiesced when the db was torn down).
  obs::MetricRegistry async_registry;
  const PathResult async_r =
      RunAsync(base / "async", async_seq, &async_registry);
  const obs::RegistrySnapshot registry_snap = async_registry.Snapshot();

  std::printf("%-9s %-10s %-12s %-14s %-14s\n", "path", "ops",
              "elapsed(s)", "qps-under-stall", "peak-stalled");
  std::printf("%-9s %-10zu %-12.3f %-14.0f %-14zu\n", "blocking",
              blocking_seq.size(), blocking.elapsed_seconds, blocking.qps,
              blocking.peak_stalled);
  std::printf("%-9s %-10zu %-12.3f %-14.0f %-14zu\n", "async",
              async_seq.size(), async_r.elapsed_seconds, async_r.qps,
              async_r.peak_stalled);

  // Capacity ratio: peak concurrent stalls at the same thread budget.
  // The blocking path's peak can never exceed kThreads; use kThreads as
  // its capacity even if the measured peak briefly sampled lower.
  const size_t blocking_capacity =
      std::max(blocking.peak_stalled, static_cast<size_t>(1));
  const double ratio = static_cast<double>(async_r.peak_stalled) /
                       static_cast<double>(blocking_capacity);

  const std::vector<double> oracle_delays = SerialOracleDelays(async_seq);
  double oracle = 0.0;
  for (double d : oracle_delays) oracle += d;
  const double drift =
      oracle <= 0 ? 0.0
                  : std::fabs(async_r.total_delay - oracle) / oracle;

  // Registry acceptance (ISSUE 4): the per-policy delay-charged
  // histogram must reproduce the serial oracle's MEDIAN within 0.1%
  // (the nanosecond-domain sub_bits=11 geometry bounds bucket width at
  // 0.049%, so a correct pipeline has margin), and the parked gauge
  // must have seen the mid-run stalled population.
  const double oracle_median_ns = ExactMedian(oracle_delays) * 1e9;
  double hist_median_ns = 0.0;
  int64_t hist_count = 0;
  if (const obs::MetricSnapshot* m = registry_snap.Find(
          "tarpit_delay_charged_ns",
          {{"policy", "access-popularity"}})) {
    hist_median_ns = m->histogram.Median();
    hist_count = m->histogram.count;
  }
  const double median_drift =
      oracle_median_ns <= 0
          ? 1.0
          : std::fabs(hist_median_ns - oracle_median_ns) / oracle_median_ns;

  // Tiny CI configs shrink the parked population along with the ops
  // count; hold them to a reduced but still order-of-magnitude bar.
  const double ratio_target = tiny ? 10.0 : 50.0;
  const bool ratio_pass = ratio >= ratio_target;
  const bool drift_pass = drift <= 1e-4;
  // >= not ==: setup statements (CREATE TABLE) also record a
  // (zero-delay) charge into the policy histogram.
  const bool median_pass =
      hist_count >= static_cast<int64_t>(async_seq.size()) &&
      median_drift <= 1e-3;
  const bool gauge_pass = async_r.parked_gauge_midrun > 0;

  std::printf("\n# Acceptance\n");
  std::printf("stall capacity: async peak %zu vs blocking peak %zu -> "
              "%.1fx (target >= %.0fx) %s\n",
              async_r.peak_stalled, blocking_capacity, ratio,
              ratio_target, ratio_pass ? "PASS" : "FAIL");
  std::printf("accounting: async charged %.6fs vs serial oracle %.6fs "
              "-> drift %.5f%% (target <= 0.01%%) %s\n",
              async_r.total_delay, oracle, 100.0 * drift,
              drift_pass ? "PASS" : "FAIL");
  std::printf("histogram: tarpit_delay_charged_ns{policy=access-"
              "popularity} median %.0fns (n=%lld) vs oracle median "
              "%.0fns -> drift %.4f%% (target <= 0.1%%) %s\n",
              hist_median_ns, static_cast<long long>(hist_count),
              oracle_median_ns, 100.0 * median_drift,
              median_pass ? "PASS" : "FAIL");
  std::printf("gauge: tarpit_scheduler_parked mid-run %lld (> 0) %s\n",
              static_cast<long long>(async_r.parked_gauge_midrun),
              gauge_pass ? "PASS" : "FAIL");

  // Open-loop stall fidelity (CO-free, informational): latency from
  // the intended exponential send time through real served stalls.
  const bench::OpenLoopStats ol = RunOpenLoopAsync(
      base / "openloop", tiny ? 400 : 2000, tiny ? 1000.0 : 500.0);
  std::printf("open-loop async stalls: p50 %.0fus p99 %.0fus p999 "
              "%.0fus, achieved %.0f qps\n",
              ol.p50_us, ol.p99_us, ol.p999_us, ol.achieved_qps);

  if (const char* json_path = std::getenv("TARPIT_BENCH_JSON")) {
    if (json_path[0] != '\0') {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"stall_capacity\",\n"
            "  \"tiny\": %s,\n"
            "  \"threads\": %d,\n"
            "  \"blocking\": {\"ops\": %zu, \"elapsed_s\": %.6f, "
            "\"qps\": %.1f, \"peak_stalled\": %zu},\n"
            "  \"async\": {\"ops\": %zu, \"elapsed_s\": %.6f, "
            "\"qps\": %.1f, \"peak_stalled\": %zu},\n"
            "  \"capacity_ratio\": %.2f,\n"
            "  \"capacity_target\": %.1f,\n"
            "  \"capacity_pass\": %s,\n"
            "  \"oracle_delay_s\": %.9f,\n"
            "  \"measured_delay_s\": %.9f,\n"
            "  \"drift\": %.9f,\n"
            "  \"drift_pass\": %s,\n"
            "  \"oracle_median_ns\": %.1f,\n"
            "  \"histogram_median_ns\": %.1f,\n"
            "  \"median_drift\": %.9f,\n"
            "  \"median_pass\": %s,\n"
            "  \"parked_gauge_midrun\": %lld,\n"
            "  \"gauge_pass\": %s,\n"
            "%s"
            "  \"registry\": %s\n"
            "}\n",
            tiny ? "true" : "false", kThreads, blocking_seq.size(),
            blocking.elapsed_seconds, blocking.qps, blocking.peak_stalled,
            async_seq.size(), async_r.elapsed_seconds, async_r.qps,
            async_r.peak_stalled, ratio, ratio_target,
            ratio_pass ? "true" : "false", oracle, async_r.total_delay,
            drift, drift_pass ? "true" : "false", oracle_median_ns,
            hist_median_ns, median_drift,
            median_pass ? "true" : "false",
            static_cast<long long>(async_r.parked_gauge_midrun),
            gauge_pass ? "true" : "false",
            bench::OpenLoopJsonFields(ol).c_str(),
            obs::ToJson(registry_snap).c_str());
        std::fclose(f);
        std::printf("json written to %s\n", json_path);
      }
    }
  }

  fs::remove_all(base);
  return (ratio_pass && drift_pass && median_pass && gauge_pass) ? 0 : 1;
}
