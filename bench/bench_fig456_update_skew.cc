// Figures 4-6: dynamic-data simulation. 100,000 tuples, uniform
// queries, Zipf(alpha) updates with alpha swept 0.25 .. 2.50; delays
// assigned by update rate (inverse rate, Eq. 8/9), cap 10 s.
//
// Paper reference:
//   Fig. 4 -- median user delay rises with skew (log axis, sub-ms to
//             ~10 s: at high skew the typical uniformly-chosen tuple is
//             rarely updated, so it is expensive).
//   Fig. 5 -- total adversary delay rises toward N * cap = 1e6 s.
//   Fig. 6 -- stale fraction ~100% at modest skew, falling once updates
//             concentrate on few tuples.

#include <cstdio>

#include "sim/dynamic_simulation.h"

using namespace tarpit;

int main() {
  std::printf("# Figures 4-6: Dynamic data, uniform queries, "
              "Zipf updates (N = 100000, cap 10 s, c = 2)\n");
  std::printf("%-8s %-22s %-22s %-14s %-18s\n", "alpha",
              "median delay (s)", "adversary delay (s)", "stale (%)",
              "stale-poisson (%)");
  for (double alpha = 0.25; alpha <= 2.501; alpha += 0.25) {
    DynamicSimConfig config;
    config.n = 100'000;
    config.update_alpha = alpha;
    config.updates_per_second = 100.0;
    config.warmup_updates = 1'000'000;
    config.measured_queries = 10'000;
    config.delay.c = 2.0;
    config.delay.bounds = {0.0, 10.0};
    DynamicSimResult r = RunDynamicSimulation(config);
    std::printf("%-8.2f %-22.6g %-22.6g %-14.1f %-18.1f\n", alpha,
                r.median_user_delay_seconds, r.adversary_delay_seconds,
                r.stale_fraction * 100,
                r.expected_stale_fraction * 100);
  }
  return 0;
}
