// Ablation: adaptive multi-decay tracking (paper section 2.3's
// "simultaneously track counts with more than one decay term") vs any
// single fixed decay rate, on a workload whose dynamics shift.
//
// Phase 1 is static (Zipf over a fixed hot set: no decay is best);
// phase 2 churns the hot set every epoch (strong decay is best). A
// fixed rate must lose one of the phases; the adaptive tracker should
// land near the per-phase winner in both.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "common/zipf.h"
#include "core/adaptive_decay.h"
#include "core/popularity_delay.h"
#include "stats/count_tracker.h"

using namespace tarpit;

namespace {

constexpr uint64_t kN = 5'000;
constexpr int kPhase1 = 200'000;  // Static phase requests.
constexpr int kEpochs = 40;       // Shifting phase epochs...
constexpr int kPerEpoch = 5'000;  // ...of this many requests.

// Generates the two-phase request stream.
std::vector<int64_t> MakeStream() {
  std::vector<int64_t> stream;
  stream.reserve(kPhase1 + kEpochs * kPerEpoch);
  Rng rng(1);
  ZipfDistribution zipf(kN, 1.2);
  for (int i = 0; i < kPhase1; ++i) {
    stream.push_back(static_cast<int64_t>(zipf.Sample(&rng)));
  }
  // Shifting phase: each epoch has a fresh hot set of 20 keys.
  ZipfDistribution hot(20, 1.2);
  for (int e = 0; e < kEpochs; ++e) {
    const int64_t base = (e * 137) % (kN - 20);
    for (int i = 0; i < kPerEpoch; ++i) {
      stream.push_back(base + static_cast<int64_t>(hot.Sample(&rng)));
    }
  }
  return stream;
}

/// Serves the stream with a policy over the given tracker interface;
/// returns median delay in each phase.
struct PhaseMedians {
  double phase1 = 0;
  double phase2 = 0;
};

template <typename Tracker>
PhaseMedians Run(Tracker* tracker,
                 const std::vector<int64_t>& stream,
                 const PopularityDelayParams& params) {
  QuantileSketch p1, p2;
  int i = 0;
  for (int64_t key : stream) {
    tracker->Record(key);
    // Inline policy computation from the tracker's stats (mirrors
    // PopularityDelayPolicy but works for both tracker types).
    PopularityStats s = tracker->Stats(key);
    double d;
    if (s.count <= 0) {
      d = params.bounds.max_seconds;
    } else {
      d = params.bounds.Apply(
          params.scale * static_cast<double>(s.rank) / s.count);
    }
    if (i < kPhase1) {
      p1.Add(d);
    } else {
      p2.Add(d);
    }
    ++i;
  }
  return {p1.Median(), p2.Median()};
}

}  // namespace

int main() {
  const std::vector<int64_t> stream = MakeStream();
  PopularityDelayParams params;
  params.scale = 0.05;
  params.beta = 1.0;
  params.bounds = {0.0, 10.0};

  std::printf("# Ablation: fixed decay rates vs adaptive tracking on a "
              "two-phase workload\n");
  std::printf("# phase 1: static Zipf; phase 2: hot set shifts every %d "
              "requests\n",
              kPerEpoch);
  std::printf("%-16s %-20s %-20s\n", "tracker", "phase1 median (ms)",
              "phase2 median (ms)");

  for (double decay : {1.0, 1.0005, 1.002}) {
    CountTracker tracker(kN, decay);
    PhaseMedians m = Run(&tracker, stream, params);
    std::printf("fixed %-10.4f %-20.3f %-20.3f\n", decay,
                m.phase1 * 1e3, m.phase2 * 1e3);
  }
  {
    AdaptiveDecayTracker adaptive(kN, {1.0, 1.0005, 1.002}, 0.999);
    PhaseMedians m = Run(&adaptive, stream, params);
    std::printf("%-16s %-20.3f %-20.3f\n", "adaptive", m.phase1 * 1e3,
                m.phase2 * 1e3);
    std::printf("# adaptive tracker finished on decay %.4f\n",
                adaptive.best_decay());
  }
  return 0;
}
