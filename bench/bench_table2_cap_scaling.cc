// Table 2: Scaling the maximum delay cap on the Calgary-like trace.
//
// Paper reference (Table 2), N = 12,179 after the full trace replay:
//   cap   0.1 s -> adversary   0.33 h
//   cap   1   s -> adversary   3.16 h
//   cap  10   s -> adversary  30.17 h
//   cap 100   s -> adversary 282.70 h
//
// Raising the cap has no effect on the median user but multiplies the
// adversary's total nearly linearly, because most tuples sit at the
// cap. We learn the distribution once (caps do not affect learning)
// and apply each cap to the same raw per-tuple delays.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "core/popularity_delay.h"
#include "sim/access_simulation.h"
#include "workload/calgary_trace.h"

using namespace tarpit;

int main() {
  CalgaryTraceConfig trace_config;  // Paper-matched defaults.
  CalgaryTrace trace(trace_config);
  auto requests = trace.Generate();

  PopularityDelayParams params;
  params.scale = 50.0;
  params.beta = 1.0;
  params.bounds = {0.0, 10.0};
  AccessDelaySimulation sim(trace_config.objects, 1.0, params);
  for (const TraceRequest& r : requests) sim.ServeRequest(r.key);

  // Raw (uncapped) learned delays.
  PopularityDelayParams raw = params;
  raw.bounds = {0.0, std::numeric_limits<double>::infinity()};
  PopularityDelayPolicy raw_policy(sim.tracker(), raw);

  std::printf("# Table 2: Scaling Maximum Delay Costs (N = %llu)\n",
              static_cast<unsigned long long>(trace_config.objects));
  std::printf("%-10s %-20s\n", "cap (s)", "adversary (hours)");
  for (double cap : {0.1, 1.0, 10.0, 100.0}) {
    double total = 0;
    for (uint64_t key = 1; key <= trace_config.objects; ++key) {
      total += std::min(raw_policy.DelayFor(static_cast<int64_t>(key)),
                        cap);
    }
    std::printf("%-10.1f %-20.2f\n", cap, total / 3600.0);
  }
  return 0;
}
