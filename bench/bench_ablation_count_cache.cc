// Ablation: count-maintenance overhead (the Table 5 experiment) as a
// function of the write-behind cache budget.
//
// A larger cache absorbs more increments in memory and defers more
// write-backs; at the extreme the cache covers the whole working set
// and the residual cost is pure computation (tracker + rank + delay).

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/clock.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/protected_db.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

constexpr int kRows = 10'000;
constexpr int kQueries = 2'000;
constexpr int kWarmup = 200;

double MeasurePerQueryMicros(ProtectedDatabaseOptions opts,
                             const std::string& dir, uint64_t seed,
                             uint64_t* backing_writes) {
  fs::create_directories(dir);
  VirtualClock delay_clock;
  auto pdb = ProtectedDatabase::Open(dir, "items", &delay_clock, opts);
  if (!pdb.ok()) std::abort();
  (void)(*pdb)->ExecuteSql(
      "CREATE TABLE items (id INT PRIMARY KEY, payload TEXT)");
  const std::string payload(64, 'x');
  for (int i = 1; i <= kRows; ++i) {
    if (!(*pdb)
             ->BulkLoadRow({Value(static_cast<int64_t>(i)),
                            Value(payload)})
             .ok()) {
      std::abort();
    }
  }
  if (!(*pdb)->Checkpoint().ok()) std::abort();

  Rng rng(seed);
  RealClock wall;
  RunningStat micros;
  for (int q = 0; q < kWarmup + kQueries; ++q) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(kRows)) + 1;
    const int64_t start = wall.NowMicros();
    auto r = (*pdb)->ExecuteSql("SELECT * FROM items WHERE id = " +
                                std::to_string(key));
    const int64_t elapsed = wall.NowMicros() - start;
    if (!r.ok()) std::abort();
    if (q >= kWarmup) micros.Add(static_cast<double>(elapsed));
  }
  if (backing_writes != nullptr) {
    *backing_writes = (*pdb)->count_cache() != nullptr
                          ? (*pdb)->count_cache()->backing_writes()
                          : 0;
  }
  return micros.mean();
}

}  // namespace

int main() {
  const fs::path base =
      fs::temp_directory_path() / "tarpit_bench_ablation_cc";
  fs::remove_all(base);

  TableOptions table_options;
  table_options.heap_pool_pages = 32;
  table_options.index_pool_pages = 16;

  ProtectedDatabaseOptions baseline;
  baseline.mode = DelayMode::kNone;
  baseline.table_options = table_options;
  const double base_us = MeasurePerQueryMicros(
      baseline, (base / "base").string(), 99, nullptr);

  std::printf("# Ablation: overhead vs count-cache capacity "
              "(%d uniform lookups over %d rows)\n",
              kQueries, kRows);
  std::printf("# baseline (no counting): %.2f us/query\n", base_us);
  std::printf("%-12s %-16s %-14s %-16s\n", "cache", "us/query",
              "overhead(%)", "backing writes");
  for (size_t capacity : {16ul, 64ul, 256ul, 1024ul, 4096ul, 16384ul}) {
    ProtectedDatabaseOptions opts;
    opts.mode = DelayMode::kAccessPopularity;
    opts.popularity.bounds = {0.0, 0.0};  // Compute, don't stall.
    opts.persist_counts = true;
    opts.count_cache_capacity = capacity;
    opts.table_options = table_options;
    uint64_t writes = 0;
    const double us = MeasurePerQueryMicros(
        opts, (base / ("c" + std::to_string(capacity))).string(), 99,
        &writes);
    std::printf("%-12zu %-16.2f %-14.0f %-16llu\n", capacity, us,
                100.0 * (us - base_us) / base_us,
                static_cast<unsigned long long>(writes));
  }
  fs::remove_all(base);
  return 0;
}
