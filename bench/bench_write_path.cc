// Concurrent write path acceptance bench (ISSUE 7): measures the MVCC
// tentpole wins and emits BENCH_write.json for the CI quick-bench gate.
//
//   1. Closed-loop mixed 80/20 read/write throughput at 8 threads:
//      MVCC write path (snapshot reads + group-committed version-store
//      writes) vs the exclusive-lock baseline
//      (ConcurrencyMode::kGlobalLock). The sharded door with MVCC off
//      (writers take the DDL lock exclusively) is reported as the
//      middle bar. Target: >= 2x (the CI gate).
//   2. Open-loop latency, free of coordinated omission: requests fire
//      on a FIXED arrival schedule (deterministic exponential
//      interarrivals) and each latency is measured from the INTENDED
//      send time, so a stalled server keeps accumulating blame instead
//      of silently pausing the load. Reports p50/p99/p999.
//   3. Charged-delay fidelity of the write path: an interleaved
//      read/update sequence replayed single-threaded on a shared
//      VirtualClock through the MVCC door and a serial
//      ProtectedDatabase oracle (update-rate mode, epoch_batch=1) must
//      charge within 0.01% -- the group-commit refactor may not change
//      the paper's Eq. 9 update-delay math at all.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/protected_db.h"
#include "openloop.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

constexpr int kRows = 4096;

bool TinyConfig() {
  const char* env = std::getenv("TARPIT_BENCH_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}
// Tiny still runs enough mixed ops that the measured phase dominates
// warmup: at ~500k qps the 8x1500 ops take ~25ms, which keeps the
// CI speedup gate out of scheduler-noise territory.
const int kOpsPerThread = TinyConfig() ? 1'500 : 12'000;
const int kOpenLoopOps = TinyConfig() ? 300 : 4'000;
const int kDriftOps = TinyConfig() ? 400 : 4'000;

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ProtectedDatabaseOptions MakeDelayOptions() {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.beta = 0.0;
  opts.popularity.scale = 1e-3;
  opts.popularity.bounds = {0.0, 10.0};
  opts.decay_per_request = 1.0;
  opts.table_options.heap_pool_pages = 8;
  opts.table_options.index_pool_pages = 8;
  // Large enough that the bounded statement set below stays resident:
  // statement reuse through the plan cache is this engine's
  // prepared-statement analog, and both doors share the capacity, so
  // the comparison measures execution, not parsing.
  opts.plan_cache_capacity = 8192;
  return opts;
}

std::unique_ptr<ConcurrentProtectedDatabase> OpenConcurrent(
    const fs::path& dir, ConcurrencyMode mode, bool mvcc,
    size_t epoch_batch, Clock* clock,
    ProtectedDatabaseOptions opts = MakeDelayOptions()) {
  fs::create_directories(dir);
  ConcurrentDatabaseOptions copts;
  copts.mode = mode;
  copts.num_shards = 64;
  copts.stats_shards = 64;
  copts.epoch_batch = epoch_batch;
  copts.serve_delays = false;  // Measure the charge, skip the sleep.
  copts.mvcc_writes = mvcc;
  // Fold in larger batches: reclaim applies run in sorted key order,
  // so a bigger pass revisits each B+tree leaf consecutively and the
  // per-commit amortized fold cost drops with the batch size.
  copts.mvcc_reclaim_every_commits = 512;
  auto opened = ConcurrentProtectedDatabase::Open(dir.string(), "items",
                                                  clock, opts, copts);
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  if (!db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }
  if (!db->Checkpoint().ok()) std::abort();
  return db;
}

/// One pre-generated mixed operation (formatting cost stays out of the
/// measured loop and is identical across configs either way).
struct MixedOp {
  int64_t key = 0;
  bool is_write = false;
  std::string sql;  // Only for writes.
};

std::vector<std::vector<MixedOp>> MakeMixedOps(int threads, int ops) {
  std::vector<std::vector<MixedOp>> all(threads);
  for (int t = 0; t < threads; ++t) {
    Rng rng(0xFEEDFACEu + 271u * static_cast<uint64_t>(t));
    all[t].reserve(ops);
    for (int i = 0; i < ops; ++i) {
      MixedOp op;
      op.key = 1 + static_cast<int64_t>(rng.Uniform(kRows));
      op.is_write = rng.Uniform(100) >= 80;  // 20% updates.
      if (op.is_write) {
        // Key-derived literal: the statement set is bounded by the key
        // space, so repeats hit the plan cache (the engine's
        // prepared-statement analog) in every door alike.
        op.sql = "UPDATE items SET v = " + std::to_string(op.key % 97) +
                 ".25 WHERE id = " + std::to_string(op.key);
      }
      all[t].push_back(std::move(op));
    }
  }
  return all;
}

/// Part 1: closed-loop 8-thread 80/20 throughput for one config.
double RunMixedThroughput(const fs::path& base, ConcurrencyMode mode,
                          bool mvcc,
                          const std::vector<std::vector<MixedOp>>& ops) {
  static int run_id = 0;
  const fs::path dir = base / ("mixed_" + std::to_string(run_id++));
  RealClock clock;
  auto db = OpenConcurrent(dir, mode, mvcc, /*epoch_batch=*/256, &clock);
  for (int i = 1; i <= kRows; ++i) {  // Warm pools / row cache.
    if (!db->GetByKey(i).ok()) std::abort();
  }
  const int64_t start = NowMicros();
  std::vector<std::thread> workers;
  for (const auto& seq : ops) {
    workers.emplace_back([&db, &seq] {
      for (const MixedOp& op : seq) {
        if (op.is_write) {
          if (!db->ExecuteSql(op.sql).ok()) std::abort();
        } else {
          if (!db->GetByKey(op.key).ok()) std::abort();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = (NowMicros() - start) / 1e6;
  db.reset();
  fs::remove_all(dir);
  return static_cast<double>(ops.size()) * ops[0].size() / elapsed;
}

/// Part 2: open-loop latency on the MVCC config, through the shared
/// coordinated-omission-free harness (bench/openloop.h).
bench::OpenLoopStats RunOpenLoopMixed(const fs::path& base) {
  const fs::path dir = base / "openloop";
  RealClock clock;
  auto db = OpenConcurrent(dir, ConcurrencyMode::kSharded, /*mvcc=*/true,
                           /*epoch_batch=*/256, &clock);
  for (int i = 1; i <= kRows; ++i) {
    if (!db->GetByKey(i).ok()) std::abort();
  }
  bench::OpenLoopOptions olopts;
  olopts.threads = 4;
  olopts.ops_per_thread = kOpenLoopOps;
  olopts.mean_interarrival_us = TinyConfig() ? 500.0 : 150.0;
  auto mixed = MakeMixedOps(olopts.threads, kOpenLoopOps);
  const bench::OpenLoopStats out =
      bench::RunOpenLoop(olopts, [&](int t, int i) {
        const MixedOp& op = mixed[t][i];
        if (op.is_write) {
          if (!db->ExecuteSql(op.sql).ok()) std::abort();
        } else {
          if (!db->GetByKey(op.key).ok()) std::abort();
        }
      });
  db.reset();
  fs::remove_all(dir);
  return out;
}

/// Part 3: charged-delay fidelity of the MVCC write path vs a serial
/// ProtectedDatabase oracle. Update-rate mode: the delay charged to a
/// read is Eq. 9's inverse learned update rate, so the comparison
/// covers exactly the bookkeeping the write path reimplements.
double RunDrift(const fs::path& base) {
  VirtualClock vclock;
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kUpdateRate;
  opts.update.c = 1.0;
  opts.update.bounds = {0.0, 10.0};
  opts.table_options.heap_pool_pages = 8;
  opts.table_options.index_pool_pages = 8;

  const fs::path cdir = base / "drift_mvcc";
  // epoch_batch=1: access-side stats merge in submission order, so the
  // two doors see identical tracker states at every step.
  auto cdb = OpenConcurrent(cdir, ConcurrencyMode::kSharded,
                            /*mvcc=*/true, /*epoch_batch=*/1, &vclock,
                            opts);

  const fs::path sdir = base / "drift_serial";
  fs::create_directories(sdir);
  ProtectedDatabaseOptions sopts = opts;
  sopts.defer_delay_sleep = true;  // Charge without advancing the
                                   // shared virtual clock.
  auto sopen = ProtectedDatabase::Open(sdir.string(), "items", &vclock,
                                       sopts);
  if (!sopen.ok()) std::abort();
  auto sdb = std::move(*sopen);
  if (!sdb->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!sdb->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }

  Rng rng(0xD00DAD5u);
  double measured = 0.0, oracle = 0.0;
  int64_t next_insert_key = kRows + 1;
  for (int i = 0; i < kDriftOps; ++i) {
    vclock.SleepForMicros(1'000);  // Both doors share the timeline.
    const uint64_t dice = rng.Uniform(100);
    if (dice < 70) {  // Read an always-present key; sum the charge.
      const int64_t key = 1 + static_cast<int64_t>(rng.Uniform(kRows));
      auto a = cdb->GetByKey(key);
      auto b = sdb->GetByKey(key);
      if (!a.ok() || !b.ok()) std::abort();
      measured += a->delay_seconds;
      oracle += b->delay_seconds;
    } else if (dice < 95) {  // pk-equality UPDATE (lowered to MVCC).
      const int64_t key = 1 + static_cast<int64_t>(rng.Uniform(kRows));
      const std::string sql = "UPDATE items SET v = " +
                              std::to_string(i % 89) + ".5 WHERE id = " +
                              std::to_string(key);
      if (!cdb->ExecuteSql(sql).ok()) std::abort();
      if (!sdb->ExecuteSql(sql).ok()) std::abort();
    } else {  // INSERT: universe-size bookkeeping must track too.
      const std::string sql = "INSERT INTO items VALUES (" +
                              std::to_string(next_insert_key++) +
                              ", 1.0)";
      if (!cdb->ExecuteSql(sql).ok()) std::abort();
      if (!sdb->ExecuteSql(sql).ok()) std::abort();
    }
  }
  cdb.reset();
  sdb.reset();
  fs::remove_all(cdir);
  fs::remove_all(sdir);
  return oracle <= 0 ? 0.0 : std::fabs(measured - oracle) / oracle;
}

}  // namespace

int main() {
  const fs::path base = fs::temp_directory_path() / "tarpit_bench_write";
  fs::remove_all(base);
  fs::create_directories(base);

  std::printf("# Concurrent write path: MVCC snapshot reads + group-"
              "committed write batches\n");
  std::printf("# rows=%d ops/thread=%d openloop_ops=%d drift_ops=%d "
              "tiny=%d\n\n",
              kRows, kOpsPerThread, kOpenLoopOps, kDriftOps,
              TinyConfig() ? 1 : 0);

  // 1. Closed-loop 8-thread mixed 80/20 throughput. Best of 3 passes
  // per config: on a timesliced host a single pass can lose 2-3x to a
  // scheduler hiccup, and the quantity under test is each door's
  // capacity, not the host's worst moment.
  const auto ops = MakeMixedOps(/*threads=*/8, kOpsPerThread);
  const auto best_mixed = [&](ConcurrencyMode mode, bool mvcc) {
    double best = 0.0;
    for (int pass = 0; pass < 3; ++pass) {
      best = std::max(best, RunMixedThroughput(base, mode, mvcc, ops));
    }
    return best;
  };
  const double qps_exclusive =
      best_mixed(ConcurrencyMode::kGlobalLock, /*mvcc=*/false);
  const double qps_nomvcc =
      best_mixed(ConcurrencyMode::kSharded, /*mvcc=*/false);
  const double qps_mvcc =
      best_mixed(ConcurrencyMode::kSharded, /*mvcc=*/true);
  const double speedup =
      qps_exclusive <= 0 ? 0.0 : qps_mvcc / qps_exclusive;
  std::printf("mixed 80/20 @8t: mvcc %.0f qps | sharded-no-mvcc %.0f "
              "qps | exclusive-lock %.0f qps -> %.2fx (target >= 2.0x) "
              "%s\n",
              qps_mvcc, qps_nomvcc, qps_exclusive, speedup,
              speedup >= 2.0 ? "PASS" : "FAIL");

  // 2. Open-loop (coordinated-omission-free) latency on the MVCC door.
  const bench::OpenLoopStats ol = RunOpenLoopMixed(base);
  std::printf("open-loop mixed @4t (intended-time latency): p50 %.0fus "
              "p99 %.0fus p999 %.0fus, achieved %.0f qps\n",
              ol.p50_us, ol.p99_us, ol.p999_us, ol.achieved_qps);

  // 3. Charged-delay fidelity vs the serial oracle.
  const double drift = RunDrift(base);
  std::printf("update-delay drift vs serial oracle: %.6f%% (target <= "
              "0.01%%) %s\n",
              100.0 * drift, drift <= 1e-4 ? "PASS" : "FAIL");

  if (const char* json_path = std::getenv("TARPIT_BENCH_JSON")) {
    if (json_path[0] != '\0') {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"write_path\",\n"
            "  \"tiny\": %s,\n"
            "  \"rows\": %d,\n"
            "  \"ops_per_thread\": %d,\n"
            "  \"qps_mvcc_8t\": %.1f,\n"
            "  \"qps_sharded_nomvcc_8t\": %.1f,\n"
            "  \"qps_exclusive_8t\": %.1f,\n"
            "  \"write_speedup_8t\": %.3f,\n"
            "  \"speedup_pass\": %s,\n"
            "  \"openloop_p50_us\": %.1f,\n"
            "  \"openloop_p99_us\": %.1f,\n"
            "  \"openloop_p999_us\": %.1f,\n"
            "  \"openloop_achieved_qps\": %.1f,\n"
            "  \"delay_drift\": %.9f,\n"
            "  \"drift_pass\": %s\n"
            "}\n",
            TinyConfig() ? "true" : "false", kRows, kOpsPerThread,
            qps_mvcc, qps_nomvcc, qps_exclusive, speedup,
            speedup >= 2.0 ? "true" : "false", ol.p50_us, ol.p99_us,
            ol.p999_us, ol.achieved_qps, drift,
            drift <= 1e-4 ? "true" : "false");
        std::fclose(f);
        std::printf("json written to %s\n", json_path);
      }
    }
  }

  fs::remove_all(base);
  return 0;
}
