// Table 4: Decay-rate sweep on the box-office-like trace (rapidly
// shifting popularity), decay applied at weekly boundaries.
//
// Paper reference (Table 4), 634 films, cap 10 s (max possible
// adversary delay 1.76 h):
//   decay 1.00 -> median 0.03 ms, adversary 1.33 h
//   decay 1.01 -> median 0.04 ms, adversary 1.51 h
//   ...
//   decay 5.00 -> median 1.26 ms, adversary 1.76 h
//
// With fast-shifting popularity, aggressive decay barely hurts the
// median (the current week's hits dominate regardless) while pushing
// the adversary to ~100% of the maximum possible delay.

#include <cstdio>

#include "common/stats.h"
#include "sim/access_simulation.h"
#include "workload/boxoffice_trace.h"

using namespace tarpit;

int main() {
  BoxOfficeTraceConfig trace_config;
  BoxOfficeTrace trace(trace_config);
  auto weekly = trace.GenerateWeeklyRequests();

  std::printf("# Table 4: Delays in Box-Office-like Data (cap 10 s, "
              "max adversary %.2f h)\n",
              static_cast<double>(trace_config.films) * 10 / 3600);
  std::printf("%-12s %-18s %-18s\n", "decay rate", "median user (ms)",
              "adversary (hours)");
  for (double decay :
       {1.00, 1.01, 1.02, 1.05, 1.10, 1.20, 1.50, 2.00, 5.00}) {
    PopularityDelayParams params;
    params.scale = 0.01;
    params.beta = 1.0;
    params.bounds = {0.0, 10.0};
    AccessDelaySimulation sim(trace_config.films, 1.0, params);
    QuantileSketch user_delays;
    for (int week = 0; week < trace_config.weeks; ++week) {
      sim.ApplyDecayFactor(decay);  // Weekly boundary.
      sim.ServeTrace(weekly[week], &user_delays);
    }
    std::printf("%-12.2f %-18.3f %-18.2f\n", decay,
                user_delays.Median() * 1e3,
                sim.ExtractionDelayFrozen() / 3600.0);
  }
  return 0;
}
