// Recovery and overload-survival bench (PR 8). Four gated sections:
//
//  1. Fail-point overhead: TARPIT_FAILPOINT compiles to one relaxed
//     atomic load + branch when no point is enabled. Measured per-call
//     cost times a generous sites-per-operation budget must stay under
//     1% of a real point-read, so shipping the instrumentation is free.
//  2. WAL recovery: reopen a table whose log holds ~100k records (plus
//     a deliberately torn tail) -- replay must be complete (every
//     record recovered, tail truncated, contents exact) and fast
//     (bounded records/second, not seconds-per-record).
//  3. Delay-ledger drift: charged-delay totals recovered across a
//     checkpointed restart must match the in-memory oracle within
//     0.01% -- the tarpit's bill survives the crash.
//  4. Governor flood: a deterministic overload (one extraction-shaped
//     identity flooding async queries through the QueryGate) must
//     shed-before-collapse: parked stalls never exceed the budget,
//     parked bytes stay within the memory envelope, the excess
//     completes Overloaded, every shed query is still charged, the
//     suspect's reputation penalty still accrues, and benign p99 is
//     not degraded by the flood.
//
// Exits non-zero if any gate fails. Env: TARPIT_BENCH_TINY=1 shrinks
// the workload for CI smoke runs; TARPIT_BENCH_JSON=<path> emits
// machine-readable JSON.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/delay_scheduler.h"
#include "core/protected_db.h"
#include "core/resource_governor.h"
#include "defense/audit_log.h"
#include "defense/identity.h"
#include "defense/query_gate.h"
#include "defense/reputation.h"
#include "obs/metrics.h"
#include "openloop.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

bool TinyConfig() {
  const char* env = std::getenv("TARPIT_BENCH_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Schema BenchSchema() {
  return Schema({{"id", ColumnType::kInt64}, {"v", ColumnType::kDouble}});
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * (v.size() - 1));
  return v[idx];
}

// ---- Section 1: inactive fail-point overhead ------------------------

struct FailpointOverhead {
  double macro_ns = 0;     // Per TARPIT_FAILPOINT evaluation, inactive.
  double read_op_ns = 0;   // One Table::GetByKey.
  double overhead = 0;     // macro_ns * kSitesPerOp / read_op_ns.
  bool pass = false;
};

// Instrumented sites an indexed point read actually crosses: one
// buffer-pool fetch per B+tree level plus the heap page (the WAL sites
// are write-path only).
constexpr double kSitesPerOp = 4.0;

FailpointOverhead MeasureFailpointOverhead(Table* table, int rows,
                                           bool tiny) {
  FailpointOverhead r;
  // Best-of-3 on both sides: the bar is the macro's intrinsic cost,
  // not shared-runner scheduling noise.
  const int64_t calls = tiny ? 20'000'000 : 100'000'000;
  volatile int64_t sink = 0;
  r.macro_ns = 1e18;
  for (int round = 0; round < 3; ++round) {
    const double t0 = NowSeconds();
    for (int64_t i = 0; i < calls; ++i) {
      auto fired = TARPIT_FAILPOINT("bench.inactive_probe");
      sink = sink + (fired.has_value() ? 1 : 0);
    }
    const double t1 = NowSeconds();
    r.macro_ns = std::min(
        r.macro_ns, (t1 - t0) / static_cast<double>(calls) * 1e9);
  }

  const int reads = tiny ? 50'000 : 200'000;
  r.read_op_ns = 1e18;
  for (int round = 0; round < 3; ++round) {
    Rng rng(99 + round);
    const double t2 = NowSeconds();
    for (int i = 0; i < reads; ++i) {
      auto row =
          table->GetByKey(static_cast<int64_t>(rng.Uniform(rows)));
      if (!row.ok()) std::abort();
    }
    const double t3 = NowSeconds();
    r.read_op_ns = std::min(r.read_op_ns, (t3 - t2) / reads * 1e9);
  }
  r.overhead = r.macro_ns * kSitesPerOp / r.read_op_ns;
  r.pass = r.overhead <= 0.01 && !FailPoints::AnyActive();
  return r;
}

// ---- Section 2: WAL recovery ---------------------------------------

struct RecoveryResult {
  uint64_t records = 0;
  uint64_t truncated_bytes = 0;
  double open_seconds = 0;
  double replay_rate = 0;  // records / second.
  bool complete = false;
  bool pass = false;
};

RecoveryResult MeasureWalRecovery(const fs::path& dir, bool tiny) {
  RecoveryResult r;
  const int n = tiny ? 10'000 : 100'000;
  fs::create_directories(dir);
  {
    auto t = Table::Create(dir.string(), "rec", BenchSchema(), 0);
    if (!t.ok()) std::abort();
    for (int i = 0; i < n; ++i) {
      Row row = {Value(static_cast<int64_t>(i)),
                 Value(static_cast<double>(i) * 0.5)};
      if (!(*t)->Insert(row).ok()) std::abort();
    }
    // No checkpoint: the full log replays on open (destructor flushes
    // pages but never truncates the WAL, so replay is the idempotent
    // worst case -- every record re-applied over an up-to-date base).
  }
  // Crash flavor on top: a torn half-record at the tail.
  {
    std::ofstream f(dir / "rec.wal", std::ios::app | std::ios::binary);
    f.write("\x40\x00\x00\x00\x01torn-tail", 14);
  }
  const double t0 = NowSeconds();
  auto reopened = Table::Open(dir.string(), "rec", BenchSchema(), 0);
  const double t1 = NowSeconds();
  if (!reopened.ok()) std::abort();
  r.open_seconds = t1 - t0;
  r.records = (*reopened)->recovered_wal_records();
  r.truncated_bytes = (*reopened)->wal_truncated_bytes();
  r.replay_rate =
      r.open_seconds > 0 ? r.records / r.open_seconds : 0.0;
  r.complete = r.records == static_cast<uint64_t>(n) &&
               r.truncated_bytes == 14 &&
               (*reopened)->NumRows() == static_cast<uint64_t>(n);
  // Rate bar is deliberately loose (CI runners are noisy); the point
  // is catching an accidental O(n^2) replay, not micro-tuning.
  r.pass = r.complete && r.replay_rate >= 20'000.0;
  return r;
}

// ---- Section 3: delay-ledger drift ---------------------------------

struct DriftResult {
  double oracle_delay = 0;
  double recovered_delay = 0;
  uint64_t charges = 0;
  double drift = 0;
  bool pass = false;
};

DriftResult MeasureLedgerDrift(const fs::path& dir, bool tiny) {
  DriftResult r;
  const int rows = 512;
  const int queries = tiny ? 2'000 : 20'000;
  fs::create_directories(dir);
  VirtualClock clock;
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 0.001;
  opts.popularity.bounds = {0.0, 10.0};
  opts.persist_delay_ledger = true;
  {
    auto pdb =
        ProtectedDatabase::Open(dir.string(), "items", &clock, opts);
    if (!pdb.ok()) std::abort();
    if (!(*pdb)
             ->ExecuteSql(
                 "CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
             .ok()) {
      std::abort();
    }
    for (int i = 0; i < rows; ++i) {
      if (!(*pdb)
               ->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(1.0)})
               .ok()) {
        std::abort();
      }
    }
    Rng rng(7);
    for (int i = 0; i < queries; ++i) {
      auto res =
          (*pdb)->GetByKey(static_cast<int64_t>(rng.Uniform(rows)));
      if (!res.ok()) std::abort();
      r.oracle_delay += res->delay_seconds;
    }
    if (!(*pdb)->Checkpoint().ok()) std::abort();
  }
  auto pdb = ProtectedDatabase::Open(dir.string(), "items", &clock, opts);
  if (!pdb.ok()) std::abort();
  auto m = (*pdb)->Metrics();
  r.recovered_delay = m.total_delay_seconds;
  r.charges = m.delays_charged;
  r.drift = r.oracle_delay <= 0
                ? 1.0
                : std::fabs(r.recovered_delay - r.oracle_delay) /
                      r.oracle_delay;
  r.pass = r.charges == static_cast<uint64_t>(queries) &&
           r.drift <= 1e-4;
  return r;
}

// ---- Section 4: governor flood -------------------------------------

struct FloodResult {
  uint64_t budget = 0;
  uint64_t flood = 0;
  uint64_t peak_parked = 0;
  uint64_t peak_parked_bytes = 0;
  uint64_t shed = 0;
  uint64_t served = 0;
  uint64_t charged = 0;
  double suspect_penalty = 1.0;
  double benign_p99_before = 0;
  double benign_p99_after = 0;
  bool pass = false;
};

FloodResult MeasureGovernorFlood(const fs::path& dir, bool tiny) {
  FloodResult r;
  const int rows = 2'000;
  r.budget = tiny ? 128 : 1'024;
  r.flood = r.budget * 8;
  fs::create_directories(dir);

  // Real time: a VirtualClock wheel instant-fires every submission
  // (simulation mode), which would release each slot before the next
  // submit. With 0.4s stalls and microsecond submits, the budget
  // genuinely fills and the overload is real.
  RealClock clock;
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 2.0;
  opts.popularity.bounds = {0.0, 0.4};
  opts.defer_delay_sleep = true;  // The gate parks the stall.
  auto pdb = ProtectedDatabase::Open(dir.string(), "items", &clock, opts);
  if (!pdb.ok()) std::abort();
  if (!(*pdb)
           ->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, "
                        "v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 0; i < rows; ++i) {
    if (!(*pdb)
             ->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(1.0)})
             .ok()) {
      std::abort();
    }
  }

  obs::MetricRegistry registry;
  ResourceGovernorOptions go;
  go.max_parked_stalls = r.budget;
  go.metrics = &registry;
  ResourceGovernor gov(go);
  ReputationStore reputation;  // Breadth learning on defaults.
  QueryGateOptions qopts;
  qopts.registration_burst = 8;             // Two accounts at t=0.
  qopts.per_user_queries_per_second = 1e9;  // The governor is the cap
  qopts.per_user_burst = 1e9;               // under test, not the
  qopts.per_subnet_queries_per_second = 1e9;  // rate limiters.
  qopts.per_subnet_burst = 1e9;
  qopts.governor = &gov;
  qopts.reputation = &reputation;
  qopts.metrics = &registry;
  QueryGate gate(pdb->get(), qopts);
  DelayScheduler scheduler(&clock);

  auto benign = gate.RegisterUser(Ipv4FromString("10.1.0.1"));
  auto suspect = gate.RegisterUser(Ipv4FromString("203.0.113.7"));
  if (!benign.ok() || !suspect.ok()) std::abort();

  // Benign baseline: a narrow hot set, queried before the flood.
  auto run_benign = [&](uint64_t seed) {
    std::vector<double> delays;
    Rng rng(seed);
    for (int i = 0; i < 200; ++i) {
      auto res = gate.ExecuteSql(
          *benign, "SELECT * FROM items WHERE id = " +
                       std::to_string(rng.Uniform(20)));
      if (!res.ok()) std::abort();
      delays.push_back(res->delay_seconds);
    }
    return Percentile(delays, 0.99);
  };
  r.benign_p99_before = run_benign(1);

  // The flood: one identity walking distinct tuples (extraction-shaped
  // breadth) with async queries that all want a wheel slot. Sheds
  // complete inline on this thread; admitted stalls complete on the
  // wheel's dispatchers ~0.4s later.
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> shed{0};
  const uint64_t before_charges = (*pdb)->Metrics().delays_charged;
  for (uint64_t i = 0; i < r.flood; ++i) {
    gate.ExecuteSqlAsync(
        *suspect,
        "SELECT * FROM items WHERE id = " +
            std::to_string(i % static_cast<uint64_t>(rows)),
        &scheduler,
        [&](Result<ProtectedResult> res) {
          if (res.ok()) {
            served.fetch_add(1, std::memory_order_relaxed);
          } else if (res.status().IsOverloaded()) {
            shed.fetch_add(1, std::memory_order_relaxed);
          } else {
            std::abort();
          }
        });
    r.peak_parked = std::max(r.peak_parked, gov.parked_stalls());
    r.peak_parked_bytes =
        std::max(r.peak_parked_bytes, gov.parked_bytes());
  }
  // Let the admitted stalls expire and the wheel drain.
  const double deadline = NowSeconds() + 30.0;
  while (served.load() + shed.load() < r.flood &&
         NowSeconds() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  r.served = served.load();
  r.shed = shed.load();
  r.charged = (*pdb)->Metrics().delays_charged - before_charges;
  r.suspect_penalty =
      reputation.IdentityPenalty(suspect->id, clock.NowSeconds());
  r.benign_p99_after = run_benign(2);

  const bool budget_held = r.peak_parked <= r.budget &&
                           r.peak_parked_bytes <=
                               r.budget * go.stall_bytes_estimate;
  const bool all_accounted = r.served + r.shed == r.flood;
  // Submission takes milliseconds against 0.4s stalls, so at most the
  // budget is admitted; 2x slack absorbs a runner hiccup mid-loop
  // letting early slots recycle once.
  const bool excess_shed = r.shed > 0 && r.served <= 2 * r.budget &&
                           r.shed >= r.flood - 2 * r.budget;
  const bool charge_kept = r.charged == r.flood;
  const bool penalty_accrued = r.suspect_penalty > 1.0;
  // Popularity counts only grow, so benign delays can only shrink;
  // allow a hair of slack for rank churn from the suspect's scan.
  const bool benign_ok =
      r.benign_p99_after <= r.benign_p99_before * 1.05 + 1e-9;
  // The audit ring is capacity-bounded (sheds can outnumber its
  // retention at full scale), so gate on the unbounded counter and
  // only require that sheds are present in the retained audit window.
  const bool audit_ok =
      registry
              .GetCounter("tarpit_gate_denials_total",
                          {{"reason", "overload"}})
              ->Value() == static_cast<int64_t>(r.shed) &&
      gate.audit_log()->CountOf(AuditEvent::kOverloadShed) > 0;
  r.pass = budget_held && all_accounted && excess_shed && charge_kept &&
           penalty_accrued && benign_ok && audit_ok;
  return r;
}

}  // namespace

int main() {
  const bool tiny = TinyConfig();
  const fs::path base =
      fs::temp_directory_path() /
      ("tarpit_bench_recovery_" + std::to_string(::getpid()));
  fs::remove_all(base);
  fs::create_directories(base);

  std::printf("# bench_recovery (%s)\n\n", tiny ? "tiny" : "full");

  // Shared read-path table for the overhead probe.
  const int probe_rows = 4'096;
  fs::create_directories(base / "probe");
  auto probe =
      Table::Create((base / "probe").string(), "p", BenchSchema(), 0);
  if (!probe.ok()) std::abort();
  for (int i = 0; i < probe_rows; ++i) {
    if (!(*probe)
             ->Insert({Value(static_cast<int64_t>(i)), Value(1.0)})
             .ok()) {
      std::abort();
    }
  }

  FailpointOverhead fp =
      MeasureFailpointOverhead(probe->get(), probe_rows, tiny);
  std::printf(
      "failpoints: %.3f ns/eval inactive, read op %.0f ns -> "
      "%.4f%% of an op at %g sites/op (target <= 1%%) %s\n",
      fp.macro_ns, fp.read_op_ns, 100.0 * fp.overhead, kSitesPerOp,
      fp.pass ? "PASS" : "FAIL");

  RecoveryResult rec = MeasureWalRecovery(base / "wal", tiny);
  std::printf(
      "recovery: %llu records replayed in %.3fs (%.0f rec/s), torn "
      "tail truncated %llu bytes, contents %s (target: complete, >= "
      "20k rec/s) %s\n",
      static_cast<unsigned long long>(rec.records), rec.open_seconds,
      rec.replay_rate,
      static_cast<unsigned long long>(rec.truncated_bytes),
      rec.complete ? "exact" : "WRONG", rec.pass ? "PASS" : "FAIL");

  DriftResult drift = MeasureLedgerDrift(base / "ledger", tiny);
  std::printf(
      "ledger: %llu charges, oracle %.6fs vs recovered %.6fs -> drift "
      "%.5f%% (target <= 0.01%%) %s\n",
      static_cast<unsigned long long>(drift.charges), drift.oracle_delay,
      drift.recovered_delay, 100.0 * drift.drift,
      drift.pass ? "PASS" : "FAIL");

  // Open-loop storage reads (CO-free, informational): the raw table
  // read path on a fixed exponential schedule, single lane (Table is
  // single-threaded by contract) -- a recovery-path regression that
  // slows reads shows up here as tail latency, not hidden by a
  // closed-loop's self-pacing.
  std::vector<int64_t> ol_keys;
  {
    Rng rng(0x0B5E55u);
    const int ol_ops = tiny ? 2'000 : 10'000;
    ol_keys.reserve(ol_ops);
    for (int i = 0; i < ol_ops; ++i) {
      ol_keys.push_back(static_cast<int64_t>(rng.Uniform(probe_rows)));
    }
  }
  bench::OpenLoopOptions olopts;
  olopts.threads = 1;
  olopts.ops_per_thread = static_cast<int>(ol_keys.size());
  olopts.mean_interarrival_us = tiny ? 100.0 : 50.0;
  const bench::OpenLoopStats ol =
      bench::RunOpenLoop(olopts, [&](int, int i) {
        if (!(*probe)->GetByKey(ol_keys[static_cast<size_t>(i)]).ok()) {
          std::abort();
        }
      });
  std::printf("open-loop storage reads: p50 %.0fus p99 %.0fus p999 "
              "%.0fus, achieved %.0f qps\n",
              ol.p50_us, ol.p99_us, ol.p999_us, ol.achieved_qps);

  FloodResult flood = MeasureGovernorFlood(base / "flood", tiny);
  std::printf(
      "governor: flood %llu vs budget %llu -> peak parked %llu "
      "(bytes %llu), served %llu, shed %llu, charged %llu, suspect "
      "penalty %.2fx, benign p99 %.4fs -> %.4fs %s\n",
      static_cast<unsigned long long>(flood.flood),
      static_cast<unsigned long long>(flood.budget),
      static_cast<unsigned long long>(flood.peak_parked),
      static_cast<unsigned long long>(flood.peak_parked_bytes),
      static_cast<unsigned long long>(flood.served),
      static_cast<unsigned long long>(flood.shed),
      static_cast<unsigned long long>(flood.charged),
      flood.suspect_penalty, flood.benign_p99_before,
      flood.benign_p99_after, flood.pass ? "PASS" : "FAIL");

  if (const char* json_path = std::getenv("TARPIT_BENCH_JSON")) {
    if (json_path[0] != '\0') {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"recovery\",\n"
            "  \"tiny\": %s,\n"
            "  \"failpoint_ns_per_eval\": %.4f,\n"
            "  \"read_op_ns\": %.1f,\n"
            "  \"failpoint_overhead\": %.6f,\n"
            "  \"failpoint_pass\": %s,\n"
            "  \"recovered_records\": %llu,\n"
            "  \"recovery_seconds\": %.6f,\n"
            "  \"replay_rate\": %.1f,\n"
            "  \"truncated_bytes\": %llu,\n"
            "  \"recovery_pass\": %s,\n"
            "  \"ledger_charges\": %llu,\n"
            "  \"ledger_drift\": %.9f,\n"
            "  \"ledger_pass\": %s,\n"
            "  \"flood\": %llu,\n"
            "  \"budget\": %llu,\n"
            "  \"peak_parked\": %llu,\n"
            "  \"peak_parked_bytes\": %llu,\n"
            "  \"served\": %llu,\n"
            "  \"shed\": %llu,\n"
            "  \"charged\": %llu,\n"
            "  \"suspect_penalty\": %.3f,\n"
            "  \"benign_p99_before\": %.6f,\n"
            "  \"benign_p99_after\": %.6f,\n"
            "%s"
            "  \"flood_pass\": %s\n"
            "}\n",
            tiny ? "true" : "false", fp.macro_ns, fp.read_op_ns,
            fp.overhead, fp.pass ? "true" : "false",
            static_cast<unsigned long long>(rec.records),
            rec.open_seconds, rec.replay_rate,
            static_cast<unsigned long long>(rec.truncated_bytes),
            rec.pass ? "true" : "false",
            static_cast<unsigned long long>(drift.charges), drift.drift,
            drift.pass ? "true" : "false",
            static_cast<unsigned long long>(flood.flood),
            static_cast<unsigned long long>(flood.budget),
            static_cast<unsigned long long>(flood.peak_parked),
            static_cast<unsigned long long>(flood.peak_parked_bytes),
            static_cast<unsigned long long>(flood.served),
            static_cast<unsigned long long>(flood.shed),
            static_cast<unsigned long long>(flood.charged),
            flood.suspect_penalty, flood.benign_p99_before,
            flood.benign_p99_after,
            bench::OpenLoopJsonFields(ol).c_str(),
            flood.pass ? "true" : "false");
        std::fclose(f);
        std::printf("json written to %s\n", json_path);
      }
    }
  }

  fs::remove_all(base);
  return (fp.pass && rec.pass && drift.pass && flood.pass) ? 0 : 1;
}
