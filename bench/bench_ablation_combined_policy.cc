// Ablation: access-based vs update-based vs combined (max) delay
// assignment across the four workload quadrants:
//
//                     updates skewed        updates uniform
//   queries skewed    both schemes work     only access works
//   queries uniform   only update works     nothing works (paper's
//                                           acknowledged limit)
//
// Two ways to avoid choosing a scheme by hand are compared: combining
// the delays (max) and measuring the skew (auto via analysis/zipf_fit).
// Reported per cell: median user delay and total adversary delay.

#include <cstdio>
#include <memory>

#include "analysis/zipf_fit.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/zipf.h"
#include "core/combined_delay.h"
#include "core/popularity_delay.h"
#include "core/update_delay.h"
#include "sim/adversary.h"
#include "stats/count_tracker.h"
#include "stats/update_tracker.h"
#include "workload/key_generator.h"

using namespace tarpit;

namespace {

constexpr uint64_t kN = 20'000;
constexpr int kQueries = 300'000;
constexpr int kUpdates = 300'000;
constexpr double kCap = 10.0;

struct Quadrant {
  const char* name;
  double query_alpha;   // 0 = uniform.
  double update_alpha;  // 0 = uniform.
};

struct CellResult {
  double median_user;
  double adversary;
};

// policy_kind: 0 access, 1 update, 2 combined-max, 3 auto (fit skews
// from the learned counts and use whichever signal actually has one --
// the selection rule the paper leaves to the provider, automated with
// analysis/zipf_fit).
CellResult RunCell(const Quadrant& quadrant, int policy_kind) {
  // Learn both signals from the quadrant's workload.
  CountTracker access(kN, 1.0);
  UpdateTracker updates(kN, 1.0);
  Rng rng(41);
  std::unique_ptr<KeyGenerator> qgen, ugen;
  if (quadrant.query_alpha > 0) {
    qgen = std::make_unique<ZipfKeyGenerator>(kN, quadrant.query_alpha);
  } else {
    qgen = std::make_unique<UniformKeyGenerator>(kN);
  }
  if (quadrant.update_alpha > 0) {
    ugen = std::make_unique<ZipfKeyGenerator>(kN, quadrant.update_alpha);
  } else {
    ugen = std::make_unique<UniformKeyGenerator>(kN);
  }
  for (int i = 0; i < kUpdates; ++i) updates.Record(ugen->Next(&rng));

  PopularityDelayParams pop;
  pop.scale = 0.05;
  pop.beta = 1.0;
  pop.bounds = {0.0, kCap};
  PopularityDelayPolicy access_policy(&access, pop);

  UpdateDelayParams upd;
  upd.c = 2.0;
  upd.n = kN;
  upd.rate_window_seconds = kUpdates / 100.0;  // 100 updates/s.
  upd.bounds = {0.0, kCap};
  UpdateDelayPolicy update_policy(&updates, upd);

  CombinedDelayPolicy combined(&access_policy, &update_policy,
                               CombineMode::kMax, {0.0, kCap});
  const DelayPolicy* policy = nullptr;
  switch (policy_kind) {
    case 0: policy = &access_policy; break;
    case 1: policy = &update_policy; break;
    case 2: policy = &combined; break;
    default: break;  // kind 3 chooses after a learning phase.
  }

  std::vector<int64_t> all_keys;
  if (policy_kind == 3) {
    all_keys.reserve(kN);
    for (uint64_t k = 1; k <= kN; ++k) {
      all_keys.push_back(static_cast<int64_t>(k));
    }
  }

  QuantileSketch user;
  for (int i = 0; i < kQueries; ++i) {
    const int64_t key = qgen->Next(&rng);
    access.Record(key);
    if (policy == nullptr && i == kQueries / 10) {
      // Auto selection after a 10% learning phase: trust whichever
      // dimension shows real skew (fitted alpha with a decent fit);
      // prefer access (no staleness caveats) when both qualify.
      ZipfFit access_fit = FitZipfFromTracker(access, all_keys, 200);
      ZipfFit update_fit = FitZipfFromTracker(updates, all_keys, 200);
      const bool access_skewed =
          access_fit.alpha > 0.8 && access_fit.r_squared > 0.7;
      const bool update_skewed =
          update_fit.alpha > 0.8 && update_fit.r_squared > 0.7;
      if (access_skewed) {
        policy = &access_policy;
      } else if (update_skewed) {
        policy = &update_policy;
      } else {
        policy = &update_policy;  // Least user-hostile fallback.
      }
    }
    if (policy != nullptr) user.Add(policy->DelayFor(key));
  }
  if (policy == nullptr) policy = &update_policy;
  ExtractionReport adversary = RunSequentialExtraction(*policy, kN);
  return CellResult{user.Median(), adversary.total_delay_seconds};
}

}  // namespace

int main() {
  const Quadrant quadrants[4] = {
      {"skewed-q/skewed-u", 1.2, 1.2},
      {"skewed-q/uniform-u", 1.2, 0.0},
      {"uniform-q/skewed-u", 0.0, 1.2},
      {"uniform-q/uniform-u", 0.0, 0.0},
  };
  const char* policies[4] = {"access", "update", "combined-max",
                             "auto(fit)"};

  std::printf("# Ablation: policy vs workload quadrant "
              "(N = %llu, cap %.0f s; median user ms / adversary h)\n",
              static_cast<unsigned long long>(kN), kCap);
  std::printf("%-24s %-22s %-22s %-22s %-22s\n", "workload", policies[0],
              policies[1], policies[2], policies[3]);
  for (const Quadrant& quadrant : quadrants) {
    std::printf("%-24s", quadrant.name);
    for (int p = 0; p < 4; ++p) {
      CellResult cell = RunCell(quadrant, p);
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.2f / %.1f",
                    cell.median_user * 1e3, cell.adversary / 3600);
      std::printf(" %-22s", buf);
    }
    std::printf("\n");
  }
  std::printf("# combined-max maximizes adversary delay everywhere but "
              "inherits the WORSE user experience\n"
              "# (max of the delays). auto(fit) measures which skew "
              "actually exists (analysis/zipf_fit) and\n"
              "# picks that scheme -- matching the best cell in the "
              "three usable quadrants. In the fourth\n"
              "# (no skew anywhere) every scheme must hurt users to "
              "hurt the adversary: the paper's stated limit.\n");
  return 0;
}
