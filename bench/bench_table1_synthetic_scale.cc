// Table 1: Delays in synthetic traces -- the Calgary scenario scaled to
// databases of 100k / 500k / 1M tuples.
//
// Paper reference (Table 1), cap 10 s:
//   100,000 tuples:   median 0.0 ms, adversary  2 weeks
//   500,000 tuples:   median 0.0 ms, adversary  8 weeks
// 1,000,000 tuples:   median 0.0 ms, adversary 17 weeks
//
// The mechanism: 725k requests can only make a sliver of a million-row
// table "popular", so nearly every tuple is charged the cap, and
// adversary delay tracks N * d_max while the median user (who hits the
// hot head of the Zipf) pays ~nothing.

#include <cstdio>

#include "common/stats.h"
#include "sim/access_simulation.h"
#include "workload/calgary_trace.h"

using namespace tarpit;

namespace {
constexpr double kSecondsPerWeek = 7 * 24 * 3600.0;
}

int main() {
  std::printf("# Table 1: Delays in Synthetic Traces (cap 10 s)\n");
  std::printf("%-16s %-18s %-18s\n", "db size (tuples)",
              "median user (ms)", "adversary (weeks)");

  for (uint64_t n : {100'000ull, 500'000ull, 1'000'000ull}) {
    CalgaryTraceConfig trace_config;
    trace_config.objects = n;  // Same request volume, bigger universe.
    CalgaryTrace trace(trace_config);
    auto requests = trace.Generate();

    PopularityDelayParams params;
    params.scale = 50.0;
    params.beta = 1.0;
    params.bounds = {0.0, 10.0};
    AccessDelaySimulation sim(n, /*decay=*/1.0, params);

    QuantileSketch user_delays;
    for (const TraceRequest& r : requests) {
      user_delays.Add(sim.ServeRequest(r.key));
    }
    const double adversary = sim.ExtractionDelayFrozen();
    std::printf("%-16llu %-18.1f %-18.0f\n",
                static_cast<unsigned long long>(n),
                user_delays.Median() * 1e3,
                adversary / kSecondsPerWeek);
  }
  return 0;
}
