// Figure 1: Request distribution of the Calgary-like trace -- the
// frequency of the 10 most popular objects.
//
// Paper reference (Fig. 1): rank 1 at roughly 130,000 requests,
// falling off as a power law with alpha ~ 1.5 over 12,179 objects and
// 725,091 requests.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "workload/calgary_trace.h"

using namespace tarpit;

int main() {
  CalgaryTraceConfig config;  // Paper-matched defaults.
  CalgaryTrace trace(config);
  auto requests = trace.Generate();

  std::vector<int64_t> counts(config.objects + 1, 0);
  for (const TraceRequest& r : requests) ++counts[r.key];
  std::sort(counts.begin(), counts.end(), std::greater<>());

  std::printf("# Figure 1: Request Distribution, Calgary-like trace\n");
  std::printf("# objects=%llu requests=%llu alpha=%.2f\n",
              static_cast<unsigned long long>(config.objects),
              static_cast<unsigned long long>(config.requests),
              config.alpha);
  std::printf("%-6s %-12s %-12s\n", "rank", "observed", "expected");
  for (uint64_t rank = 1; rank <= 10; ++rank) {
    std::printf("%-6llu %-12lld %-12.0f\n",
                static_cast<unsigned long long>(rank),
                static_cast<long long>(counts[rank - 1]),
                trace.ExpectedFrequency(rank));
  }
  return 0;
}
