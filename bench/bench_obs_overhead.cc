// Telemetry overhead: the metrics registry and trace sink must be
// close to free on the extraction-critical read path.
//
// The instrumentation contract (ISSUE 4) is "one null-pointer test per
// site when metrics are off; sharded counters and a lock-free
// histogram when on". This bench holds the implementation to it:
// two identical sharded databases, 8 threads of uniform GetByKey reads
// (delays computed but not slept -- serve_delays=false -- so the
// measurement is pure engine work, not stalling), one run with no
// registry attached and one with a registry AND a trace sink
// publishing every request. Uniform keys maximize per-request
// instrument traffic relative to cache effects; best-of-N repetitions
// on each side squeeze out scheduler noise.
//
// A third configuration holds the forensics layer (ISSUE 9) to the
// same contract: event ring attached to the door, risk scorer fed per
// principal-attributed served tuple, and a live scrape driver
// snapshotting the registry + running the self-audit watchdog + risk
// scrape concurrently with the hot path. Acceptance: the forensics
// *layer* -- everything it adds on top of the already-gated telemetry
// -- costs <= 3% vs the metrics-on baseline; the absolute
// off->forensics ratio is reported alongside for trend tracking.
//
// Acceptance (ISSUE 4): metrics-on throughput within 3% of metrics-off
// on the standard config. TARPIT_BENCH_TINY runs a smaller workload
// for CI smoke where a single-digit-millisecond run cannot resolve 3%;
// the tiny bar is 15% (the check still catches pathological
// regressions like a lock on the hot path).
//
// Env: TARPIT_BENCH_TINY=1 shrinks the workload;
// TARPIT_BENCH_JSON=<path> emits machine-readable JSON (the CI
// quick-bench job uploads it as BENCH_obs.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/self_audit.h"
#include "obs/event_ring.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/risk.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "openloop.h"
#include "workload/key_generator.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

bool TinyConfig() {
  const char* env = std::getenv("TARPIT_BENCH_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Worker count scaled to the machine: on a box with fewer cores than
/// workers an overhead ratio measures timeslicing, not
/// instrumentation, so never run more threads than hardware (floor 2
/// to keep the sharded structures contended at all).
const int kThreads = static_cast<int>(std::max(
    2u, std::min(8u, std::thread::hardware_concurrency())));
constexpr int kRows = 4096;

std::unique_ptr<ConcurrentProtectedDatabase> OpenDb(
    const fs::path& dir, Clock* clock, obs::MetricRegistry* metrics,
    obs::TraceSink* sink, obs::DefenseEventRing* events = nullptr,
    obs::RiskScorer* risk = nullptr) {
  fs::create_directories(dir);
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.serve_delays = false;  // Measure engine work, not stalling.
  copts.metrics = metrics;
  copts.trace_sink = sink;
  copts.event_ring = events;
  copts.risk = risk;
  auto opened = ConcurrentProtectedDatabase::Open(
      dir.string(), "items", clock, opts, copts);
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  if (!db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }
  if (!db->Checkpoint().ok()) std::abort();
  return db;
}

/// One timed pass: kThreads workers, `ops_per_thread` uniform
/// principal-attributed reads each (every config uses the attributed
/// entry point, so the forensics pass measures the risk feed against
/// an identical call path, not a cheaper one). Returns queries per
/// second.
double TimedPass(ConcurrentProtectedDatabase* db, Clock* clock,
                 int ops_per_thread, uint64_t seed) {
  std::vector<std::thread> workers;
  const int64_t start = clock->NowMicros();
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([db, ops_per_thread, seed, t] {
      Rng rng(seed + static_cast<uint64_t>(t) * 0x9E3779B97F4A7C15ull);
      UniformKeyGenerator gen(kRows);
      const RequestPrincipal who{static_cast<uint64_t>(t) + 1,
                                 0x0A000000u + static_cast<uint32_t>(t)};
      for (int i = 0; i < ops_per_thread; ++i) {
        auto r = db->GetByKey(gen.Next(&rng), who);
        if (!r.ok()) std::abort();
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = (clock->NowMicros() - start) / 1e6;
  return static_cast<double>(ops_per_thread) * kThreads / elapsed;
}

}  // namespace

int main() {
  const bool tiny = TinyConfig();
  // Total per-pass work is constant regardless of the worker count, so
  // a 2-core host times the same number of requests as an 8-core one.
  const int ops_per_thread = (tiny ? 16'000 : 320'000) / kThreads;
  const int reps = tiny ? 3 : 5;
  // See header comment: tiny runs are too short to resolve 3%.
  const double bar = tiny ? 0.15 : 0.03;

  const fs::path base =
      fs::temp_directory_path() / "tarpit_bench_obs_overhead";
  fs::remove_all(base);
  fs::create_directories(base);

  std::printf("# Telemetry overhead: sharded uniform reads, %d threads, "
              "%d ops/thread, best of %d%s\n\n",
              kThreads, ops_per_thread, reps, tiny ? " (tiny)" : "");

  RealClock clock;

  // All three configs are opened up front and the timed passes are
  // INTERLEAVED round-robin (off, on, forensics, off, on, ...): on a
  // shared or single-core host, slow minutes otherwise land entirely
  // on whichever config happens to run then, and the overhead ratio
  // measures run order instead of instrumentation. Interleaving makes
  // host noise symmetric across configs; best-of-N then discards it.
  auto db_off = OpenDb(base / "off", &clock, nullptr, nullptr);

  obs::MetricRegistry registry;
  obs::TraceSink sink;
  auto db_on = OpenDb(base / "on", &clock, &registry, &sink);

  // Forensics config (ISSUE 9): registry + trace sink + event ring +
  // per-request risk feed, with a live scraper thread snapshotting the
  // registry into time-series rings and running the self-audit
  // watchdog + risk scrape every 20ms -- the full production
  // forensics posture, measured against the everything-off baseline.
  obs::MetricRegistry fregistry;
  obs::TraceSink fsink;
  obs::DefenseEventRingOptions ring_opts;
  ring_opts.metrics = &fregistry;
  obs::DefenseEventRing events(ring_opts);
  obs::RiskScorerOptions risk_opts;
  risk_opts.keyspace_size = kRows;
  risk_opts.metrics = &fregistry;
  // Production posture for a per-served-tuple feed: 1-in-16 hash
  // partition of the keyspace, estimates scaled back up (unbiased).
  risk_opts.query_sample_every = 16;
  obs::RiskScorer risk(risk_opts);
  double qps_off = 0.0, qps_on = 0.0, qps_forensics = 0.0;
  uint64_t requests_seen = 0;
  bool watchdog_healthy = false;
  uint64_t watchdog_passes = 0;
  uint64_t risk_observations = 0;
  bench::OpenLoopStats ol;
  {
    auto db = OpenDb(base / "forensics", &clock, &fregistry, &fsink,
                     &events, &risk);
    obs::SelfAuditWatchdogOptions wd_opts;
    wd_opts.metrics = &fregistry;
    wd_opts.events = &events;
    obs::SelfAuditWatchdog watchdog(wd_opts);
    SelfAuditTargets targets;
    targets.db = db.get();
    targets.metrics = &fregistry;
    InstallStandardChecks(&watchdog, targets);
    obs::MetricTimeSeries timeseries(&fregistry);
    obs::ScrapeDriverOptions drv_opts;
    drv_opts.interval_seconds = tiny ? 0.05 : 0.02;
    obs::ScrapeDriver driver(
        [&] {
          const double now = clock.NowSeconds();
          timeseries.ScrapeOnce(now);
          risk.OnScrape(now);
          watchdog.RunOnce(clock.NowMicros());
        },
        drv_opts);

    // Warmup (faults the row caches in), then interleaved timed
    // rounds.
    TimedPass(db_off.get(), &clock, ops_per_thread, 0xAAAA);
    TimedPass(db_on.get(), &clock, ops_per_thread, 0xAAAA);
    TimedPass(db.get(), &clock, ops_per_thread, 0xAAAA);
    for (int rep = 0; rep < reps; ++rep) {
      const uint64_t seed = 0xBEEF + static_cast<uint64_t>(rep);
      qps_off = std::max(
          qps_off, TimedPass(db_off.get(), &clock, ops_per_thread, seed));
      qps_on = std::max(
          qps_on, TimedPass(db_on.get(), &clock, ops_per_thread, seed));
      qps_forensics = std::max(
          qps_forensics, TimedPass(db.get(), &clock, ops_per_thread, seed));
    }
    db_off.reset();
    if (const obs::MetricSnapshot* m =
            registry.Snapshot().Find("tarpit_db_requests_total")) {
      requests_seen = static_cast<uint64_t>(m->value);
    }
    db_on.reset();

    // Open-loop tail (coordinated-omission-free) on the same fully
    // instrumented door.
    bench::OpenLoopOptions olopts;
    olopts.threads = 4;
    olopts.ops_per_thread = tiny ? 400 : 4000;
    olopts.mean_interarrival_us = tiny ? 400.0 : 100.0;
    Rng olrng(0x0B5);
    UniformKeyGenerator olgen(kRows);
    std::vector<int64_t> olkeys;
    olkeys.reserve(static_cast<size_t>(olopts.threads) *
                   olopts.ops_per_thread);
    for (size_t i = 0; i < olkeys.capacity(); ++i) {
      olkeys.push_back(olgen.Next(&olrng));
    }
    ol = bench::RunOpenLoop(olopts, [&](int t, int i) {
      const RequestPrincipal who{static_cast<uint64_t>(t) + 1,
                                 0x0A000000u + static_cast<uint32_t>(t)};
      const size_t idx = static_cast<size_t>(t) * olopts.ops_per_thread +
                         static_cast<size_t>(i);
      if (!db->GetByKey(olkeys[idx], who).ok()) std::abort();
    });

    driver.Stop();
    // Quiesced final pass: with no writer moving, the ledger check
    // must reconcile exactly -- a violation here is a real accounting
    // bug, not noise (the zero-false-positive half of the watchdog
    // acceptance).
    watchdog.RunOnce(clock.NowMicros());
    watchdog_healthy = watchdog.healthy();
    watchdog_passes = watchdog.passes_total();
    risk_observations = risk.observations_total();
    db.reset();
  }

  // Sanity: the registry must have actually been on the path.
  // (1 + reps) passes of kThreads * ops_per_thread reads, plus the
  // CREATE TABLE statement.
  const uint64_t expected_min =
      static_cast<uint64_t>(1 + reps) * kThreads * ops_per_thread;
  const bool counted = requests_seen >= expected_min;

  const double overhead =
      qps_off <= 0 ? 1.0 : (qps_off - qps_on) / qps_off;
  const bool overhead_pass = overhead <= bar;
  // The forensics bar is the *layer's* increment over the already-gated
  // metrics-on baseline: the event ring + risk feed + scraper are what
  // this bench newly admits, and measuring against metrics-on keeps the
  // gate attributable to them (the metrics-off gap is already charged
  // to the telemetry gate above). The absolute off->forensics ratio is
  // still reported and exported for trend tracking.
  const double forensics_overhead =
      qps_on <= 0 ? 1.0 : (qps_on - qps_forensics) / qps_on;
  const double forensics_total_overhead =
      qps_off <= 0 ? 1.0 : (qps_off - qps_forensics) / qps_off;
  const bool forensics_pass = forensics_overhead <= bar;

  std::printf("%-14s %-14s\n", "config", "qps(best)");
  std::printf("%-14s %-14.0f\n", "metrics-off", qps_off);
  std::printf("%-14s %-14.0f\n", "metrics-on", qps_on);
  std::printf("%-14s %-14.0f\n", "forensics-on", qps_forensics);

  std::printf("\n# Acceptance\n");
  std::printf("overhead: %.2f%% (bar <= %.0f%%) %s\n", 100.0 * overhead,
              100.0 * bar, overhead_pass ? "PASS" : "FAIL");
  std::printf("forensics layer overhead vs metrics-on: %.2f%% "
              "(bar <= %.0f%%) %s\n",
              100.0 * forensics_overhead, 100.0 * bar,
              forensics_pass ? "PASS" : "FAIL");
  std::printf("forensics total overhead vs metrics-off: %.2f%% "
              "(reported, not gated)\n",
              100.0 * forensics_total_overhead);
  std::printf("watchdog: %s after %llu passes (zero false positives "
              "required) %s\n",
              watchdog_healthy ? "healthy" : "VIOLATION",
              static_cast<unsigned long long>(watchdog_passes),
              watchdog_healthy ? "PASS" : "FAIL");
  std::printf("open-loop (forensics-on): p50 %.0fus p99 %.0fus p999 "
              "%.0fus, achieved %.0f qps\n",
              ol.p50_us, ol.p99_us, ol.p999_us, ol.achieved_qps);
  std::printf("risk observations: %llu, events appended: %llu\n",
              static_cast<unsigned long long>(risk_observations),
              static_cast<unsigned long long>(events.appended_total()));
  std::printf("instrumented: requests_total=%llu (>= %llu) %s\n",
              static_cast<unsigned long long>(requests_seen),
              static_cast<unsigned long long>(expected_min),
              counted ? "PASS" : "FAIL");

  if (const char* json_path = std::getenv("TARPIT_BENCH_JSON")) {
    if (json_path[0] != '\0') {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"obs_overhead\",\n"
                     "  \"tiny\": %s,\n"
                     "  \"threads\": %d,\n"
                     "  \"ops_per_thread\": %d,\n"
                     "  \"reps\": %d,\n"
                     "  \"qps_metrics_off\": %.1f,\n"
                     "  \"qps_metrics_on\": %.1f,\n"
                     "  \"qps_forensics_on\": %.1f,\n"
                     "  \"overhead\": %.6f,\n"
                     "  \"forensics_overhead\": %.6f,\n"
                     "  \"forensics_total_overhead\": %.6f,\n"
                     "  \"overhead_bar\": %.6f,\n"
                     "  \"overhead_pass\": %s,\n"
                     "  \"forensics_pass\": %s,\n"
                     "  \"watchdog_healthy\": %s,\n"
                     "  \"watchdog_passes\": %llu,\n"
                     "  \"risk_observations\": %llu,\n"
                     "  \"events_appended\": %llu,\n"
                     "%s"
                     "  \"requests_total\": %llu,\n"
                     "  \"registry\": %s\n"
                     "}\n",
                     tiny ? "true" : "false", kThreads, ops_per_thread,
                     reps, qps_off, qps_on, qps_forensics, overhead,
                     forensics_overhead, forensics_total_overhead, bar,
                     overhead_pass ? "true" : "false",
                     forensics_pass ? "true" : "false",
                     watchdog_healthy ? "true" : "false",
                     static_cast<unsigned long long>(watchdog_passes),
                     static_cast<unsigned long long>(risk_observations),
                     static_cast<unsigned long long>(
                         events.appended_total()),
                     bench::OpenLoopJsonFields(ol).c_str(),
                     static_cast<unsigned long long>(requests_seen),
                     obs::ToJson(registry.Snapshot()).c_str());
        std::fclose(f);
        std::printf("json written to %s\n", json_path);
      }
    }
  }

  fs::remove_all(base);
  return (overhead_pass && forensics_pass && watchdog_healthy && counted)
             ? 0
             : 1;
}
