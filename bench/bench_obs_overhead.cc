// Telemetry overhead: the metrics registry and trace sink must be
// close to free on the extraction-critical read path.
//
// The instrumentation contract (ISSUE 4) is "one null-pointer test per
// site when metrics are off; sharded counters and a lock-free
// histogram when on". This bench holds the implementation to it:
// two identical sharded databases, 8 threads of uniform GetByKey reads
// (delays computed but not slept -- serve_delays=false -- so the
// measurement is pure engine work, not stalling), one run with no
// registry attached and one with a registry AND a trace sink
// publishing every request. Uniform keys maximize per-request
// instrument traffic relative to cache effects; best-of-N repetitions
// on each side squeeze out scheduler noise.
//
// Acceptance (ISSUE 4): metrics-on throughput within 3% of metrics-off
// on the standard config. TARPIT_BENCH_TINY runs a smaller workload
// for CI smoke where a single-digit-millisecond run cannot resolve 3%;
// the tiny bar is 15% (the check still catches pathological
// regressions like a lock on the hot path).
//
// Env: TARPIT_BENCH_TINY=1 shrinks the workload;
// TARPIT_BENCH_JSON=<path> emits machine-readable JSON (the CI
// quick-bench job uploads it as BENCH_obs.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/key_generator.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

bool TinyConfig() {
  const char* env = std::getenv("TARPIT_BENCH_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

constexpr int kThreads = 8;
constexpr int kRows = 4096;

std::unique_ptr<ConcurrentProtectedDatabase> OpenDb(
    const fs::path& dir, Clock* clock, obs::MetricRegistry* metrics,
    obs::TraceSink* sink) {
  fs::create_directories(dir);
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.serve_delays = false;  // Measure engine work, not stalling.
  copts.metrics = metrics;
  copts.trace_sink = sink;
  auto opened = ConcurrentProtectedDatabase::Open(
      dir.string(), "items", clock, opts, copts);
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  if (!db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }
  if (!db->Checkpoint().ok()) std::abort();
  return db;
}

/// One timed pass: kThreads workers, `ops_per_thread` uniform reads
/// each. Returns queries per second.
double TimedPass(ConcurrentProtectedDatabase* db, Clock* clock,
                 int ops_per_thread, uint64_t seed) {
  std::vector<std::thread> workers;
  const int64_t start = clock->NowMicros();
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([db, ops_per_thread, seed, t] {
      Rng rng(seed + static_cast<uint64_t>(t) * 0x9E3779B97F4A7C15ull);
      UniformKeyGenerator gen(kRows);
      for (int i = 0; i < ops_per_thread; ++i) {
        auto r = db->GetByKey(gen.Next(&rng));
        if (!r.ok()) std::abort();
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed = (clock->NowMicros() - start) / 1e6;
  return static_cast<double>(ops_per_thread) * kThreads / elapsed;
}

/// Best-of-`reps` throughput for one configuration (after one
/// untimed warmup pass that faults the row caches in).
double BestOf(ConcurrentProtectedDatabase* db, Clock* clock,
              int ops_per_thread, int reps) {
  TimedPass(db, clock, ops_per_thread, 0xAAAA);  // Warmup.
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    best = std::max(
        best, TimedPass(db, clock, ops_per_thread,
                        0xBEEF + static_cast<uint64_t>(rep)));
  }
  return best;
}

}  // namespace

int main() {
  const bool tiny = TinyConfig();
  const int ops_per_thread = tiny ? 2000 : 40000;
  const int reps = tiny ? 3 : 5;
  // See header comment: tiny runs are too short to resolve 3%.
  const double bar = tiny ? 0.15 : 0.03;

  const fs::path base =
      fs::temp_directory_path() / "tarpit_bench_obs_overhead";
  fs::remove_all(base);
  fs::create_directories(base);

  std::printf("# Telemetry overhead: sharded uniform reads, %d threads, "
              "%d ops/thread, best of %d%s\n\n",
              kThreads, ops_per_thread, reps, tiny ? " (tiny)" : "");

  RealClock clock;
  double qps_off = 0.0;
  {
    auto db = OpenDb(base / "off", &clock, nullptr, nullptr);
    qps_off = BestOf(db.get(), &clock, ops_per_thread, reps);
    db.reset();
  }

  obs::MetricRegistry registry;
  obs::TraceSink sink;
  double qps_on = 0.0;
  uint64_t requests_seen = 0;
  {
    auto db = OpenDb(base / "on", &clock, &registry, &sink);
    qps_on = BestOf(db.get(), &clock, ops_per_thread, reps);
    db.reset();
    const obs::RegistrySnapshot snap = registry.Snapshot();
    if (const obs::MetricSnapshot* m =
            snap.Find("tarpit_db_requests_total")) {
      requests_seen = static_cast<uint64_t>(m->value);
    }
  }

  // Sanity: the registry must have actually been on the path.
  // (1 + reps) passes of kThreads * ops_per_thread reads, plus the
  // CREATE TABLE statement.
  const uint64_t expected_min =
      static_cast<uint64_t>(1 + reps) * kThreads * ops_per_thread;
  const bool counted = requests_seen >= expected_min;

  const double overhead =
      qps_off <= 0 ? 1.0 : (qps_off - qps_on) / qps_off;
  const bool overhead_pass = overhead <= bar;

  std::printf("%-12s %-14s\n", "config", "qps(best)");
  std::printf("%-12s %-14.0f\n", "metrics-off", qps_off);
  std::printf("%-12s %-14.0f\n", "metrics-on", qps_on);

  std::printf("\n# Acceptance\n");
  std::printf("overhead: %.2f%% (bar <= %.0f%%) %s\n", 100.0 * overhead,
              100.0 * bar, overhead_pass ? "PASS" : "FAIL");
  std::printf("instrumented: requests_total=%llu (>= %llu) %s\n",
              static_cast<unsigned long long>(requests_seen),
              static_cast<unsigned long long>(expected_min),
              counted ? "PASS" : "FAIL");

  if (const char* json_path = std::getenv("TARPIT_BENCH_JSON")) {
    if (json_path[0] != '\0') {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"obs_overhead\",\n"
                     "  \"tiny\": %s,\n"
                     "  \"threads\": %d,\n"
                     "  \"ops_per_thread\": %d,\n"
                     "  \"reps\": %d,\n"
                     "  \"qps_metrics_off\": %.1f,\n"
                     "  \"qps_metrics_on\": %.1f,\n"
                     "  \"overhead\": %.6f,\n"
                     "  \"overhead_bar\": %.6f,\n"
                     "  \"overhead_pass\": %s,\n"
                     "  \"requests_total\": %llu,\n"
                     "  \"registry\": %s\n"
                     "}\n",
                     tiny ? "true" : "false", kThreads, ops_per_thread,
                     reps, qps_off, qps_on, overhead, bar,
                     overhead_pass ? "true" : "false",
                     static_cast<unsigned long long>(requests_seen),
                     obs::ToJson(registry.Snapshot()).c_str());
        std::fclose(f);
        std::printf("json written to %s\n", json_path);
      }
    }
  }

  fs::remove_all(base);
  return (overhead_pass && counted) ? 0 : 1;
}
