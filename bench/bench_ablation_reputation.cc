// Ablation: the adversary zoo vs the reputation ladder.
//
// Matrix: {slow-and-low, sybil churn, volume inference, brute sweep}
// x {popularity-only, + coverage escalation, + reputation}. Each cell
// reports virtual time-to-extract; each layer column also reports the
// p99 delay a benign population pays under it, because an escalation
// mechanism that taxes browsers is not a defense.
//
// Acceptance (the binary exits non-zero on FAIL):
//   - every adversary's time-to-extract strictly increases when the
//     reputation layer is enabled on top of coverage;
//   - sybil churn pays >= 5x vs popularity-only (identity churn sheds
//     per-identity state; only the subnet-keyed reputation factor and
//     breadth tracking survive churn, and this is the number that
//     proves they bite);
//   - benign p99 under the full ladder regresses < 5% vs
//     popularity-only.
//
// Env: TARPIT_BENCH_TINY=1 shrinks the relation for CI smoke runs;
// TARPIT_BENCH_JSON=<path> emits the matrix as machine-readable JSON
// (the CI artifact BENCH_adversary.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/protected_db.h"
#include "defense/query_gate.h"
#include "defense/reputation.h"
#include "openloop.h"
#include "sim/adversary_zoo.h"
#include "sim/gate_attack.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

bool TinyConfig() {
  const char* env = std::getenv("TARPIT_BENCH_TINY");
  return env != nullptr && env[0] == '1';
}

enum class Layer {
  kPopularityOnly,
  kCoverage,
  kCoverageReputation,
};

const char* LayerName(Layer layer) {
  switch (layer) {
    case Layer::kPopularityOnly:
      return "popularity";
    case Layer::kCoverage:
      return "coverage";
    case Layer::kCoverageReputation:
      return "coverage+reputation";
  }
  return "?";
}

struct Stack {
  fs::path dir;
  std::unique_ptr<VirtualClock> clock;
  std::unique_ptr<ProtectedDatabase> pdb;
  std::unique_ptr<ReputationStore> reputation;
  std::unique_ptr<QueryGate> gate;

  ~Stack() {
    gate.reset();
    pdb.reset();
    if (!dir.empty()) fs::remove_all(dir);
  }
};

std::unique_ptr<Stack> MakeStack(Layer layer, const std::string& tag,
                                 int64_t tuples,
                                 bool (*present)(int64_t) = nullptr) {
  auto stack = std::make_unique<Stack>();
  stack->dir = fs::temp_directory_path() / ("tarpit_abrep_" + tag);
  fs::remove_all(stack->dir);
  fs::create_directories(stack->dir);
  stack->clock = std::make_unique<VirtualClock>();

  ProtectedDatabaseOptions db_opts;
  db_opts.popularity.scale = 0.05;
  db_opts.popularity.beta = 1.0;
  db_opts.popularity.bounds = {0.0, 10.0};
  db_opts.defer_delay_sleep = true;  // Discrete-event adversaries.
  auto pdb = ProtectedDatabase::Open(stack->dir.string(), "items",
                                     stack->clock.get(), db_opts);
  if (!pdb.ok()) std::abort();
  stack->pdb = std::move(*pdb);
  (void)stack->pdb->ExecuteSql(
      "CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)");
  for (int64_t i = 1; i <= tuples; ++i) {
    if (present != nullptr && !present(i)) continue;
    if (!stack->pdb->BulkLoadRow({Value(i), Value(1.0)}).ok()) {
      std::abort();
    }
  }
  // Warm the head so popular tuples are cheap and the cold tail sits
  // at the cap -- without a skewed distribution every layer looks the
  // same and the ablation measures nothing.
  for (int rep = 0; rep < 200; ++rep) {
    for (int64_t k = 1; k <= 20; ++k) {
      (void)stack->pdb->ExecuteSql("SELECT * FROM items WHERE id = " +
                                   std::to_string(k));
    }
  }

  QueryGateOptions gate_opts;
  gate_opts.registration_seconds_per_account = 0.0;
  gate_opts.registration_burst = 1e9;
  gate_opts.per_user_queries_per_second = 5.0;
  gate_opts.per_user_burst = 20.0;
  gate_opts.per_subnet_queries_per_second = 1e9;
  gate_opts.per_subnet_burst = 1e9;
  // Free lines sized so benign browsing (a head-heavy ~17% slice) is
  // comfortably inside them while every zoo adversary's footprint
  // (50-100% of the relation, per identity or per subnet) is far past.
  if (layer != Layer::kPopularityOnly) {
    gate_opts.coverage_escalation = true;
    gate_opts.coverage.free_coverage = 0.25;
    gate_opts.coverage.max_coverage = 0.5;
    gate_opts.coverage.max_escalation = 20.0;
  }
  if (layer == Layer::kCoverageReputation) {
    ReputationOptions rep;
    rep.growth = 2.0;
    rep.subnet_growth = 2.0;
    rep.half_life_seconds = 1e9;
    rep.max_penalty = 64.0;
    rep.max_subnet_penalty = 64.0;
    rep.breadth_free_fraction = 0.25;
    rep.breadth_signal_stride = 0.025;
    stack->reputation = std::make_unique<ReputationStore>(rep);
    gate_opts.reputation = stack->reputation.get();
  }
  stack->gate =
      std::make_unique<QueryGate>(stack->pdb.get(), gate_opts);
  return stack;
}

/// p99 delay (ms) across a benign population: users browse the warm
/// head with zipf-ish repetition, each well under every threshold the
/// ladder watches. Deterministic (fixed seed).
double BenignP99Ms(Layer layer, const std::string& tag, int64_t tuples,
                   int users, int queries_per_user) {
  auto stack = MakeStack(layer, tag, tuples);
  Rng rng(4242);
  std::vector<double> delays;
  delays.reserve(static_cast<size_t>(users) * queries_per_user);
  for (int u = 0; u < users; ++u) {
    // Each benign user browses from their own /24 (households do not
    // share an extraction fleet's subnet).
    auto id = stack->gate->RegisterUser(
        0xC0000201u + (static_cast<uint32_t>(u) << 8));
    if (!id.ok()) std::abort();
    for (int q = 0; q < queries_per_user; ++q) {
      // Head-heavy browsing: mostly the top 15, occasionally deeper,
      // never past a ~17% slice of the relation.
      const int64_t key =
          rng.Bernoulli(0.9)
              ? 1 + static_cast<int64_t>(rng.Uniform(15))
              : 1 + static_cast<int64_t>(rng.Uniform(25));
      auto r = stack->gate->ExecuteSql(
          *id, "SELECT * FROM items WHERE id = " + std::to_string(key));
      if (r.ok()) {
        delays.push_back(r->delay_seconds * 1e3);
        stack->clock->SleepForMicros(2'000'000);  // 0.5 qps: casual.
      } else {
        stack->clock->SleepForMicros(5'000'000);
      }
    }
  }
  if (delays.empty()) return -1.0;
  std::sort(delays.begin(), delays.end());
  return delays[static_cast<size_t>(0.99 * (delays.size() - 1))];
}

struct Cell {
  std::string adversary;
  Layer layer;
  double attack_seconds = 0;
  double charged_delay = 0;
  uint64_t queries = 0;
  bool completed = false;
};

/// Open-loop (coordinated-omission-free) processing latency of the
/// full-ladder gate on a REAL clock: delays stay deferred (charged, not
/// slept), so the percentiles measure gate + SQL engine work under a
/// fixed exponential arrival schedule -- what a benign user's request
/// costs before any policy stall is added. Rate limits are opened up;
/// policy behaviour is the virtual-clock matrix's job, not this one's.
bench::OpenLoopStats RunOpenLoopGate(int64_t tuples, bool tiny) {
  const fs::path dir = fs::temp_directory_path() / "tarpit_abrep_ol";
  fs::remove_all(dir);
  fs::create_directories(dir);
  RealClock clock;
  ProtectedDatabaseOptions db_opts;
  db_opts.popularity.scale = 0.05;
  db_opts.popularity.beta = 1.0;
  db_opts.popularity.bounds = {0.0, 10.0};
  db_opts.defer_delay_sleep = true;
  auto pdb = ProtectedDatabase::Open(dir.string(), "items", &clock,
                                     db_opts);
  if (!pdb.ok()) std::abort();
  auto db = std::move(*pdb);
  (void)db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)");
  for (int64_t i = 1; i <= tuples; ++i) {
    if (!db->BulkLoadRow({Value(i), Value(1.0)}).ok()) std::abort();
  }

  ReputationOptions rep;
  rep.breadth_free_fraction = 0.25;
  ReputationStore reputation(rep);
  QueryGateOptions gate_opts;
  gate_opts.registration_seconds_per_account = 0.0;
  gate_opts.registration_burst = 1e9;
  gate_opts.per_user_queries_per_second = 1e9;
  gate_opts.per_user_burst = 1e9;
  gate_opts.per_subnet_queries_per_second = 1e9;
  gate_opts.per_subnet_burst = 1e9;
  gate_opts.coverage_escalation = true;
  gate_opts.reputation = &reputation;
  QueryGate gate(db.get(), gate_opts);

  constexpr int kUsers = 4;
  std::vector<Identity> ids;
  for (int u = 0; u < kUsers; ++u) {
    auto id = gate.RegisterUser(0xC0000301u +
                                (static_cast<uint32_t>(u) << 8));
    if (!id.ok()) std::abort();
    ids.push_back(*id);
  }
  std::vector<std::string> statements;
  statements.reserve(32);
  for (int k = 1; k <= 32; ++k) {
    statements.push_back("SELECT * FROM items WHERE id = " +
                         std::to_string(k));
  }
  for (const Identity& id : ids) {  // Warm plans + pools.
    for (const std::string& sql : statements) {
      (void)gate.ExecuteSql(id, sql);
    }
  }

  // The serial front door is single-threaded by contract; arrivals
  // queue on one door mutex and the intended-time latency charges the
  // queue wait -- the honest cost of a serial door under load.
  std::mutex door;
  bench::OpenLoopOptions olopts;
  olopts.threads = kUsers;
  olopts.ops_per_thread = tiny ? 400 : 2000;
  olopts.mean_interarrival_us = tiny ? 600.0 : 300.0;
  const bench::OpenLoopStats stats =
      bench::RunOpenLoop(olopts, [&](int t, int i) {
        std::lock_guard<std::mutex> lock(door);
        (void)gate.ExecuteSql(
            ids[static_cast<size_t>(t)],
            statements[static_cast<size_t>(i) % statements.size()]);
      });
  db.reset();
  fs::remove_all(dir);
  return stats;
}

}  // namespace

int main() {
  const bool tiny = TinyConfig();
  const int64_t kTuples = tiny ? 150 : 600;
  const int64_t kDomain = tiny ? 120 : 500;
  const int kBenignUsers = tiny ? 8 : 20;
  const int kBenignQueries = tiny ? 40 : 150;

  std::printf("# Ablation: adversary zoo x reputation ladder "
              "(%lld tuples, cap 10 s)%s\n",
              static_cast<long long>(kTuples), tiny ? " [tiny]" : "");

  std::vector<Cell> cells;
  const Layer ladder[3] = {Layer::kPopularityOnly, Layer::kCoverage,
                           Layer::kCoverageReputation};

  std::printf("%-18s %-22s %-14s %-12s %-10s\n", "adversary", "layer",
              "attack (h)", "queries", "completed");
  auto record = [&cells](const std::string& adversary, Layer layer,
                         double seconds, double delay, uint64_t queries,
                         bool completed) {
    cells.push_back(
        Cell{adversary, layer, seconds, delay, queries, completed});
    std::printf("%-18s %-22s %-14.3f %-12llu %-10s\n",
                adversary.c_str(), LayerName(layer), seconds / 3600.0,
                static_cast<unsigned long long>(queries),
                completed ? "yes" : "NO");
  };

  for (Layer layer : ladder) {
    const std::string tag = LayerName(layer);
    {
      SlowLowConfig config;
      config.n = static_cast<uint64_t>(kTuples);
      auto stack = MakeStack(layer, "sl_" + tag, kTuples);
      SlowLowReport r = RunSlowLowExtraction(stack->gate.get(),
                                             stack->clock.get(), config);
      record("slow-low", layer, r.attack_seconds, r.total_delay_seconds,
             r.queries_issued, r.completed);
    }
    {
      SybilChurnConfig config;
      config.n = static_cast<uint64_t>(kTuples);
      config.fleet_size = 4;
      config.queries_per_identity = 10;
      config.subnet_pool = 2;
      auto stack = MakeStack(layer, "sy_" + tag, kTuples);
      SybilChurnReport r = RunSybilChurnExtraction(
          stack->gate.get(), stack->clock.get(), config);
      record("sybil-churn", layer, r.attack_seconds,
             r.total_delay_seconds, r.queries_issued, r.completed);
    }
    {
      // A gapped key domain (every 5th key absent): dense tables fall
      // to a single COUNT, gaps force the full binary-split probe
      // tree.
      VolumeInferenceConfig config;
      config.domain_max = kDomain;
      auto stack = MakeStack(layer, "vi_" + tag, kDomain,
                             [](int64_t key) { return key % 5 != 0; });
      VolumeInferenceReport r = RunVolumeInference(
          stack->gate.get(), stack->clock.get(), config);
      record("volume-infer", layer, r.attack_seconds,
             r.total_delay_seconds, r.queries_issued, r.completed);
    }
    {
      GateAttackConfig config;
      config.n = static_cast<uint64_t>(kTuples);
      config.identities = 2;  // 50% coverage each: past every line.
      config.spread_subnets = true;
      auto stack = MakeStack(layer, "bf_" + tag, kTuples);
      GateAttackReport r = RunGateExtraction(stack->gate.get(),
                                             stack->clock.get(), config);
      record("brute-sweep", layer, r.attack_seconds, 0.0,
             r.queries_issued, r.completed);
    }
  }

  const double p99_pop = BenignP99Ms(Layer::kPopularityOnly, "bn_pop",
                                     kTuples, kBenignUsers,
                                     kBenignQueries);
  const double p99_full = BenignP99Ms(Layer::kCoverageReputation,
                                      "bn_full", kTuples, kBenignUsers,
                                      kBenignQueries);

  // ---- Acceptance. ----
  auto cell_seconds = [&cells](const std::string& adversary,
                               Layer layer) {
    for (const Cell& c : cells) {
      if (c.adversary == adversary && c.layer == layer) {
        return c.attack_seconds;
      }
    }
    return -1.0;
  };
  const char* adversaries[4] = {"slow-low", "sybil-churn",
                                "volume-infer", "brute-sweep"};
  bool ordering_pass = true;
  for (const char* adv : adversaries) {
    const double cov = cell_seconds(adv, Layer::kCoverage);
    const double rep = cell_seconds(adv, Layer::kCoverageReputation);
    if (!(rep > cov)) ordering_pass = false;
  }
  const double sybil_factor =
      cell_seconds("sybil-churn", Layer::kCoverageReputation) /
      cell_seconds("sybil-churn", Layer::kPopularityOnly);
  const bool sybil_pass = sybil_factor >= 5.0;
  const double benign_regression =
      p99_pop > 0 ? (p99_full - p99_pop) / p99_pop : 1.0;
  const bool benign_pass = benign_regression < 0.05;

  std::printf("\n# Acceptance\n");
  std::printf("reputation strictly slows every adversary vs coverage: "
              "%s\n",
              ordering_pass ? "PASS" : "FAIL");
  std::printf("sybil-churn pays %.1fx vs popularity-only "
              "(target >= 5x) %s\n",
              sybil_factor, sybil_pass ? "PASS" : "FAIL");
  std::printf("benign p99 %.3f ms -> %.3f ms (%+.2f%%, target < +5%%) "
              "%s\n",
              p99_pop, p99_full, 100.0 * benign_regression,
              benign_pass ? "PASS" : "FAIL");

  const bench::OpenLoopStats ol = RunOpenLoopGate(kTuples, tiny);
  std::printf("open-loop gate (real clock, deferred delays): p50 %.0fus "
              "p99 %.0fus p999 %.0fus, achieved %.0f qps\n",
              ol.p50_us, ol.p99_us, ol.p999_us, ol.achieved_qps);

  if (const char* json_path = std::getenv("TARPIT_BENCH_JSON")) {
    if (json_path[0] != '\0') {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::string rows;
        for (size_t i = 0; i < cells.size(); ++i) {
          const Cell& c = cells[i];
          char buf[512];
          std::snprintf(
              buf, sizeof(buf),
              "    {\"adversary\": \"%s\", \"layer\": \"%s\", "
              "\"attack_seconds\": %.6f, \"charged_delay\": %.6f, "
              "\"queries\": %llu, \"completed\": %s}%s\n",
              c.adversary.c_str(), LayerName(c.layer),
              c.attack_seconds, c.charged_delay,
              static_cast<unsigned long long>(c.queries),
              c.completed ? "true" : "false",
              i + 1 < cells.size() ? "," : "");
          rows += buf;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"ablation_reputation\",\n"
                     "  \"tiny\": %s,\n"
                     "  \"tuples\": %lld,\n"
                     "  \"cells\": [\n%s  ],\n"
                     "  \"benign_p99_popularity_ms\": %.6f,\n"
                     "  \"benign_p99_full_ms\": %.6f,\n"
                     "  \"benign_regression\": %.6f,\n"
                     "  \"benign_pass\": %s,\n"
                     "  \"sybil_factor\": %.3f,\n"
                     "  \"sybil_pass\": %s,\n"
                     "%s"
                     "  \"ordering_pass\": %s\n"
                     "}\n",
                     tiny ? "true" : "false",
                     static_cast<long long>(kTuples), rows.c_str(),
                     p99_pop, p99_full, benign_regression,
                     benign_pass ? "true" : "false", sybil_factor,
                     sybil_pass ? "true" : "false",
                     bench::OpenLoopJsonFields(ol).c_str(),
                     ordering_pass ? "true" : "false");
        std::fclose(f);
        std::printf("json written to %s\n", json_path);
      }
    }
  }

  return (ordering_pass && sybil_pass && benign_pass) ? 0 : 1;
}
