// Forensics acceptance bench (ISSUE 9): holds the self-audit and
// trace-export layers to the promises DESIGN.md makes for them. Three
// gated sections plus an informational event-ring throughput probe:
//
//  1. Watchdog benign run -- zero false positives: a full workload
//     (with in-flight windows, then quiescence) across repeated
//     watchdog passes must record no violation. The skip discipline is
//     doing the work here: checks that cannot observe a stable pair of
//     reads must skip, never guess.
//  2. Watchdog drift detection -- the concurrent_db.acct_skim
//     failpoint skims 0.1% (1 permille) off every RECORDED charge
//     while callers are served the full delay, exactly the
//     embezzlement the ledger-vs-histogram check exists to catch. The
//     FIRST pass after the skimmed workload quiesces must flag it:
//     detection latency is one scrape interval by construction.
//  3. Trace export -- a full-sampling TraceSink exported through
//     ExportChromeTrace must (a) report one cat="request" span per
//     distinct retained request (the deduplicated union of Slowest()
//     and Recent()), and (b) emit exactly request_spans + phase_spans
//     ph:"X" complete-events in the JSON, i.e. the accounting the
//     export returns matches the document it wrote.
//
// Exits non-zero if any gate fails. Env: TARPIT_BENCH_TINY=1 shrinks
// the workload; TARPIT_BENCH_JSON=<path> emits machine-readable JSON
// (the CI artifact BENCH_forensics.json).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/self_audit.h"
#include "obs/event_ring.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "obs/watchdog.h"
#include "workload/key_generator.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

bool TinyConfig() {
  const char* env = std::getenv("TARPIT_BENCH_TINY");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

constexpr int kRows = 1024;

std::unique_ptr<ConcurrentProtectedDatabase> OpenDb(
    const fs::path& dir, Clock* clock, obs::MetricRegistry* metrics,
    obs::TraceSink* sink) {
  fs::create_directories(dir);
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.beta = 0.0;
  opts.popularity.scale = 1e-3;
  opts.popularity.bounds = {0.0, 10.0};
  opts.decay_per_request = 1.0;
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.serve_delays = false;  // Charges recorded, stalls skipped.
  copts.metrics = metrics;
  copts.trace_sink = sink;
  auto opened = ConcurrentProtectedDatabase::Open(dir.string(), "items",
                                                  clock, opts, copts);
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  if (!db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
           .ok()) {
    std::abort();
  }
  for (int i = 1; i <= kRows; ++i) {
    if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
             .ok()) {
      std::abort();
    }
  }
  if (!db->Checkpoint().ok()) std::abort();
  return db;
}

void RunWorkload(ConcurrentProtectedDatabase* db, int ops,
                 uint64_t seed) {
  Rng rng(seed);
  UniformKeyGenerator gen(kRows);
  for (int i = 0; i < ops; ++i) {
    if (!db->GetByKey(gen.Next(&rng)).ok()) std::abort();
  }
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

}  // namespace

int main() {
  const bool tiny = TinyConfig();
  const int kOps = tiny ? 2'000 : 20'000;
  const fs::path base =
      fs::temp_directory_path() / "tarpit_bench_forensics";
  fs::remove_all(base);
  fs::create_directories(base);

  std::printf("# Forensics: watchdog drift detection + trace export "
              "(%d ops/phase%s)\n\n",
              kOps, tiny ? ", tiny" : "");

  // ---- Sections 1 + 2: watchdog on a live engine. -------------------
  RealClock clock;
  obs::MetricRegistry registry;
  auto db = OpenDb(base / "audit", &clock, &registry, nullptr);
  obs::SelfAuditWatchdogOptions wopts;
  wopts.metrics = &registry;
  obs::SelfAuditWatchdog watchdog(wopts);
  SelfAuditTargets targets;
  targets.db = db.get();
  targets.metrics = &registry;
  const size_t installed = InstallStandardChecks(&watchdog, targets);

  // Benign phase: passes both mid-flight (skips allowed, violations
  // not) and at quiescence (exact reconcile).
  std::thread benign([&] { RunWorkload(db.get(), kOps, 0xFACEu); });
  uint64_t benign_passes = 0;
  for (int i = 0; i < 3; ++i) {
    watchdog.RunOnce(clock.NowMicros());
    ++benign_passes;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  benign.join();
  for (int i = 0; i < 5; ++i) {  // Quiescent: exact comparisons.
    watchdog.RunOnce(clock.NowMicros());
    ++benign_passes;
  }
  const uint64_t false_positives = watchdog.violations_total();
  const bool benign_pass = false_positives == 0 && watchdog.healthy();
  std::printf("benign: %llu watchdog passes over %zu checks, %llu "
              "violations (target 0) %s\n",
              static_cast<unsigned long long>(benign_passes), installed,
              static_cast<unsigned long long>(false_positives),
              benign_pass ? "PASS" : "FAIL");

  db.reset();

  // Drift injection on a FRESH stack (a clean prior ledger would
  // dilute the relative drift): skim 1 permille (0.1%) off every
  // recorded charge, so the aggregate ledger-vs-histogram drift is the
  // injected 0.1% -- 10x the 0.01% tolerance -- and ONE quiescent pass
  // must trip.
  obs::MetricRegistry drift_registry;
  auto drift_db = OpenDb(base / "drift", &clock, &drift_registry,
                         nullptr);
  obs::SelfAuditWatchdog drift_watchdog(obs::SelfAuditWatchdogOptions{});
  SelfAuditTargets drift_targets;
  drift_targets.db = drift_db.get();
  drift_targets.metrics = &drift_registry;
  InstallStandardChecks(&drift_watchdog, drift_targets);

  FailPointSpec skim;
  skim.trigger = FailPointSpec::Trigger::kAlways;
  skim.arg = 1;  // Permille skimmed from the recorded charge.
  FailPoints::Instance().Enable("concurrent_db.acct_skim", skim);
  RunWorkload(drift_db.get(), kOps, 0xFEEDu);
  FailPoints::Instance().DisableAll();

  drift_watchdog.RunOnce(clock.NowMicros());  // THE one detection pass.
  const bool drift_detected = drift_watchdog.violations_total() > 0 &&
                              !drift_watchdog.healthy();
  double drift_magnitude = 0;
  for (const auto& cs : drift_watchdog.Stats()) {
    if (cs.name == "ledger-vs-histogram") {
      drift_magnitude = cs.last.drift;
    }
  }
  std::printf("drift: 0.1%% skim over %d charges detected in ONE pass "
              "(measured relative drift %.5f%%, tolerance 0.01%%) %s\n",
              kOps, 100.0 * drift_magnitude,
              drift_detected ? "PASS" : "FAIL");
  drift_db.reset();

  // ---- Section 3: trace export accounting. --------------------------
  obs::MetricRegistry trace_registry;
  obs::TraceSinkOptions sopts;
  sopts.sample_every = 1;  // Trace everything: single-run forensics.
  sopts.recent_sample_every = 1;
  obs::TraceSink sink(sopts);
  {
    auto tdb = OpenDb(base / "trace", &clock, &trace_registry, &sink);
    RunWorkload(tdb.get(), tiny ? 500 : 2'000, 0xBEADu);
    tdb.reset();  // Quiesce before exporting.
  }
  obs::ChromeTraceOptions topts;
  topts.registry = &trace_registry;
  const obs::ChromeTrace trace = obs::ExportChromeTrace(sink, topts);

  std::set<uint64_t> retained;
  for (const obs::RequestTrace& t : sink.Slowest()) {
    retained.insert(t.request_id);
  }
  for (const obs::RequestTrace& t : sink.Recent()) {
    retained.insert(t.request_id);
  }
  const size_t ph_events =
      CountOccurrences(trace.json, "\"ph\":\"X\"");
  const bool spans_match = trace.request_spans == retained.size();
  const bool events_match =
      ph_events == trace.request_spans + trace.phase_spans;
  const bool json_shape =
      trace.json.rfind("{\"traceEvents\":[", 0) == 0 &&
      trace.json.back() == '}';
  const bool trace_pass = spans_match && events_match && json_shape &&
                          trace.request_spans > 0;
  std::printf("trace export: %zu request spans (retained union %zu), "
              "%zu phase spans, %zu ph:X events in JSON, %zu exemplars "
              "%s\n",
              trace.request_spans, retained.size(), trace.phase_spans,
              ph_events, trace.exemplars.size(),
              trace_pass ? "PASS" : "FAIL");

  // ---- Informational: event-ring append throughput. -----------------
  obs::DefenseEventRingOptions ropts;
  ropts.capacity = 4096;
  obs::DefenseEventRing ring(ropts);
  const int ring_threads = 4;
  const int ring_ops = tiny ? 50'000 : 500'000;
  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> writers;
    for (int t = 0; t < ring_threads; ++t) {
      writers.emplace_back([&ring, t, ring_ops] {
        obs::DefenseEvent e;
        e.type = obs::DefenseEventType::kQueryAdmitted;
        e.principal = static_cast<uint64_t>(t + 1);
        for (int i = 0; i < ring_ops; ++i) {
          e.time_micros = i;
          e.arg = i;
          ring.Append(e);
        }
      });
    }
    for (auto& w : writers) w.join();
  }
  const double ring_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t0)
          .count();
  const uint64_t ring_total =
      static_cast<uint64_t>(ring_threads) * ring_ops;
  const double ring_rate =
      ring_secs > 0 ? static_cast<double>(ring_total) / ring_secs : 0;
  const bool ring_exact =
      ring.appended_total() == ring_total &&
      ring.dropped_total() == ring_total - ropts.capacity;
  std::printf("event ring: %llu appends from %d threads at %.0f "
              "events/s, drop accounting %s\n",
              static_cast<unsigned long long>(ring_total), ring_threads,
              ring_rate, ring_exact ? "exact" : "WRONG");

  if (const char* json_path = std::getenv("TARPIT_BENCH_JSON")) {
    if (json_path[0] != '\0') {
      if (std::FILE* f = std::fopen(json_path, "w")) {
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"forensics\",\n"
            "  \"tiny\": %s,\n"
            "  \"ops_per_phase\": %d,\n"
            "  \"benign_passes\": %llu,\n"
            "  \"benign_false_positives\": %llu,\n"
            "  \"benign_pass\": %s,\n"
            "  \"drift_detected_in_one_pass\": %s,\n"
            "  \"drift_magnitude\": %.9f,\n"
            "  \"trace_request_spans\": %zu,\n"
            "  \"trace_phase_spans\": %zu,\n"
            "  \"trace_retained_union\": %zu,\n"
            "  \"trace_exemplars\": %zu,\n"
            "  \"trace_pass\": %s,\n"
            "  \"ring_events_per_sec\": %.0f,\n"
            "  \"ring_drop_accounting_exact\": %s\n"
            "}\n",
            tiny ? "true" : "false", kOps,
            static_cast<unsigned long long>(benign_passes),
            static_cast<unsigned long long>(false_positives),
            benign_pass ? "true" : "false",
            drift_detected ? "true" : "false", drift_magnitude,
            trace.request_spans, trace.phase_spans, retained.size(),
            trace.exemplars.size(), trace_pass ? "true" : "false",
            ring_rate, ring_exact ? "true" : "false");
        std::fclose(f);
        std::printf("json written to %s\n", json_path);
      }
    }
  }

  fs::remove_all(base);
  return (benign_pass && drift_detected && trace_pass && ring_exact)
             ? 0
             : 1;
}
