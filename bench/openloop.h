#ifndef TARPIT_BENCH_OPENLOOP_H_
#define TARPIT_BENCH_OPENLOOP_H_

// Shared open-loop load harness for the CI benches: requests fire on a
// FIXED arrival schedule (deterministic per-thread exponential
// interarrivals) and each latency is measured from the INTENDED send
// time, not the actual one, so a stalled server keeps accumulating
// blame instead of silently pausing the load -- the standard fix for
// coordinated omission. Every CI-gated bench reports its tail through
// this harness so the openloop_* fields in the BENCH_*.json artifacts
// mean the same thing everywhere.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"

namespace tarpit {
namespace bench {

struct OpenLoopStats {
  double p50_us = 0, p99_us = 0, p999_us = 0;
  double achieved_qps = 0;
  size_t ops = 0;
};

struct OpenLoopOptions {
  int threads = 4;
  int ops_per_thread = 1000;
  /// Mean of the exponential interarrival distribution, per thread.
  double mean_interarrival_us = 150.0;
  /// Schedule seed (the schedule is fixed before the run starts).
  uint64_t seed = 0xAB5E9;
  /// Start offset so every worker lines up on the same epoch.
  int64_t lineup_micros = 10'000;
};

inline int64_t OpenLoopNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Percentile over an already-sorted latency vector.
inline double PercentileUs(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = std::min(
      sorted.size() - 1, static_cast<size_t>(p * (sorted.size() - 1)));
  return static_cast<double>(sorted[idx]);
}

/// Runs `op(thread, index)` (one synchronous request) on the fixed
/// schedule and returns intended-time percentiles.
inline OpenLoopStats RunOpenLoop(const OpenLoopOptions& options,
                                 const std::function<void(int, int)>& op) {
  // Deterministic schedule, generated before any request fires.
  std::vector<std::vector<int64_t>> schedule(options.threads);
  for (int t = 0; t < options.threads; ++t) {
    Rng rng(options.seed + 97u * static_cast<uint64_t>(t));
    double at = 0;
    schedule[t].reserve(options.ops_per_thread);
    for (int i = 0; i < options.ops_per_thread; ++i) {
      at += rng.Exponential(1.0 / options.mean_interarrival_us);
      schedule[t].push_back(static_cast<int64_t>(at));
    }
  }
  std::vector<std::vector<int64_t>> lat(options.threads);
  const int64_t start = OpenLoopNowMicros() + options.lineup_micros;
  std::vector<std::thread> workers;
  for (int t = 0; t < options.threads; ++t) {
    workers.emplace_back([&, t] {
      lat[t].reserve(options.ops_per_thread);
      for (int i = 0; i < options.ops_per_thread; ++i) {
        const int64_t intended = start + schedule[t][i];
        int64_t now = OpenLoopNowMicros();
        while (now < intended) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(intended - now));
          now = OpenLoopNowMicros();
        }
        op(t, i);
        // Latency from the INTENDED send time, not the actual one.
        lat[t].push_back(OpenLoopNowMicros() - intended);
      }
    });
  }
  for (auto& w : workers) w.join();
  const int64_t wall = OpenLoopNowMicros() - start;

  std::vector<int64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  OpenLoopStats out;
  out.ops = all.size();
  out.p50_us = PercentileUs(all, 0.50);
  out.p99_us = PercentileUs(all, 0.99);
  out.p999_us = PercentileUs(all, 0.999);
  out.achieved_qps = wall <= 0 ? 0.0
                               : static_cast<double>(all.size()) /
                                     (static_cast<double>(wall) / 1e6);
  return out;
}

/// The shared JSON spelling of the open-loop fields (comma-terminated;
/// splice into a BENCH_*.json object body).
inline std::string OpenLoopJsonFields(const OpenLoopStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  \"openloop_p50_us\": %.1f,\n"
                "  \"openloop_p99_us\": %.1f,\n"
                "  \"openloop_p999_us\": %.1f,\n"
                "  \"openloop_achieved_qps\": %.1f,\n",
                s.p50_us, s.p99_us, s.p999_us, s.achieved_qps);
  return buf;
}

}  // namespace bench
}  // namespace tarpit

#endif  // TARPIT_BENCH_OPENLOOP_H_
