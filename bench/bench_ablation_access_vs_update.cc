// Ablation: access-popularity delays vs update-rate delays as the
// *access* skew varies.
//
// The paper's core scheme needs skewed accesses (section 2); when the
// query distribution flattens, it must either hurt users or spare the
// adversary. The update-based scheme (section 3) is independent of
// access skew. This bench sweeps access alpha and reports, for both
// policies, the median user delay and the adversary's total -- showing
// where each scheme holds the line.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "common/zipf.h"
#include "core/update_delay.h"
#include "sim/access_simulation.h"
#include "stats/update_tracker.h"
#include "workload/key_generator.h"

using namespace tarpit;

namespace {

constexpr uint64_t kN = 20'000;
constexpr int kRequests = 400'000;

struct PolicyOutcome {
  double median_user = 0;
  double adversary = 0;
};

PolicyOutcome RunAccessPolicy(double access_alpha) {
  PopularityDelayParams params;
  params.scale = 0.05;
  params.beta = 1.0;
  params.bounds = {0.0, 10.0};
  AccessDelaySimulation sim(kN, 1.0, params);
  Rng rng(13);
  QuantileSketch delays;
  if (access_alpha <= 0.0) {
    UniformKeyGenerator gen(kN);
    for (int i = 0; i < kRequests; ++i) {
      delays.Add(sim.ServeRequest(gen.Next(&rng)));
    }
  } else {
    ZipfKeyGenerator gen(kN, access_alpha);
    for (int i = 0; i < kRequests; ++i) {
      delays.Add(sim.ServeRequest(gen.Next(&rng)));
    }
  }
  return {delays.Median(), sim.ExtractionDelayFrozen()};
}

PolicyOutcome RunUpdatePolicy(double access_alpha) {
  // Updates arrive Zipf(1.0) regardless of how queries are skewed.
  UpdateTracker tracker(kN, 1.0);
  ZipfDistribution update_zipf(kN, 1.0);
  Rng rng(14);
  const int updates = 400'000;
  for (int i = 0; i < updates; ++i) {
    tracker.Record(static_cast<int64_t>(update_zipf.Sample(&rng)));
  }
  UpdateDelayParams params;
  params.c = 2.0;
  params.n = kN;
  params.rate_window_seconds = updates / 100.0;  // 100 updates/s.
  params.bounds = {0.0, 10.0};
  UpdateDelayPolicy policy(&tracker, params);

  QuantileSketch delays;
  if (access_alpha <= 0.0) {
    UniformKeyGenerator gen(kN);
    for (int i = 0; i < 50'000; ++i) {
      delays.Add(policy.DelayFor(gen.Next(&rng)));
    }
  } else {
    ZipfKeyGenerator gen(kN, access_alpha);
    for (int i = 0; i < 50'000; ++i) {
      delays.Add(policy.DelayFor(gen.Next(&rng)));
    }
  }
  double adversary = 0;
  for (uint64_t key = 1; key <= kN; ++key) {
    adversary += policy.DelayFor(static_cast<int64_t>(key));
  }
  return {delays.Median(), adversary};
}

}  // namespace

int main() {
  std::printf("# Ablation: access-based vs update-based delays as "
              "access skew varies (N = %llu, cap 10 s)\n",
              static_cast<unsigned long long>(kN));
  std::printf("# updates are always Zipf(1.0); max adversary = %.0f s\n",
              static_cast<double>(kN) * 10);
  std::printf("%-14s %-34s %-34s\n", "",
              "access-policy", "update-policy");
  std::printf("%-14s %-16s %-16s  %-16s %-16s\n", "access alpha",
              "median (ms)", "adversary (s)", "median (ms)",
              "adversary (s)");
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}) {
    PolicyOutcome access = RunAccessPolicy(alpha);
    PolicyOutcome update = RunUpdatePolicy(alpha);
    std::printf("%-14.2f %-16.2f %-16.0f  %-16.2f %-16.0f\n", alpha,
                access.median_user * 1e3, access.adversary,
                update.median_user * 1e3, update.adversary);
  }
  std::printf("# access alpha 0.00 = uniform queries: the access "
              "policy's median rises toward the cap\n"
              "# (users hurt) while the update policy's protection is "
              "unchanged -- the paper's section 3 motivation.\n");
  return 0;
}
