// Ablation: decay by increment inflation (the paper's scheme, used by
// CountTracker) vs the naive implementation that discounts every
// counter on every request.
//
// The paper (section 2.3): "It is expensive to discount the value of
// every count at each access. Instead, we inflate the value by which
// each count increases at each access." This bench quantifies
// "expensive": the naive sweep is O(distinct keys) per request.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "common/random.h"
#include "common/zipf.h"
#include "stats/count_tracker.h"

namespace tarpit {
namespace {

/// The strawman: multiplies every stored count by 1/delta on each
/// request (no rank index, to isolate the decay cost).
class NaiveDecayedCounts {
 public:
  explicit NaiveDecayedCounts(double delta) : inv_delta_(1.0 / delta) {}

  void Record(int64_t key) {
    for (auto& [k, v] : counts_) v *= inv_delta_;
    counts_[key] += 1.0;
  }
  double Count(int64_t key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0.0 : it->second;
  }

 private:
  double inv_delta_;
  std::unordered_map<int64_t, double> counts_;
};

/// Inflation-based counts without a rank index, for apples-to-apples.
class InflatedDecayedCounts {
 public:
  explicit InflatedDecayedCounts(double delta) : delta_(delta) {}

  void Record(int64_t key) {
    weight_ *= delta_;
    counts_[key] += weight_;
    if (weight_ > 1e100) {
      const double inv = 1.0 / weight_;
      for (auto& [k, v] : counts_) v *= inv;
      weight_ = 1.0;
    }
  }
  double Count(int64_t key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0.0 : it->second / weight_;
  }

 private:
  double delta_;
  double weight_ = 1.0;
  std::unordered_map<int64_t, double> counts_;
};

template <typename Counts>
void RunDecayBench(benchmark::State& state) {
  const uint64_t n = static_cast<uint64_t>(state.range(0));
  Counts counts(1.0001);
  ZipfDistribution zipf(n, 1.2);
  Rng rng(1);
  // Pre-populate so the naive sweep has real work.
  for (uint64_t i = 0; i < n; ++i) {
    counts.Record(static_cast<int64_t>(i + 1));
  }
  for (auto _ : state) {
    counts.Record(static_cast<int64_t>(zipf.Sample(&rng)));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_NaiveDecay(benchmark::State& state) {
  RunDecayBench<NaiveDecayedCounts>(state);
}
BENCHMARK(BM_NaiveDecay)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_InflationDecay(benchmark::State& state) {
  RunDecayBench<InflatedDecayedCounts>(state);
}
BENCHMARK(BM_InflationDecay)->Arg(1'000)->Arg(10'000)->Arg(100'000);

}  // namespace
}  // namespace tarpit

BENCHMARK_MAIN();
