// Table 5: Implementation overhead of count maintenance + delay
// computation on simple selection queries, against the real storage
// engine (disk heap + B+tree through small buffer pools) and the
// write-behind count cache.
//
// Paper reference (Table 5, commercial RDBMS, 2004 hardware):
//   base 55.17 ms (stdev 15.61) vs with-counts 66.20 ms (stdev 27.84)
//   => overhead 11.04 ms, ~20%.
//
// Absolute times differ by orders of magnitude on modern hardware with
// our engine; the reproduction target is the *relative* overhead:
// tens of percent, dominated by the extra count-cache I/O.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>

#include "common/clock.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/protected_db.h"

using namespace tarpit;

namespace {

namespace fs = std::filesystem;

constexpr int kRows = 10'000;
// The paper used 100 queries at ~55 ms each; at our microsecond
// scale we need more samples for stable statistics.
constexpr int kQueries = 2000;
constexpr int kWarmupQueries = 200;

// Builds the dataset once per configuration.
void LoadData(ProtectedDatabase* db) {
  (void)db->ExecuteSql(
      "CREATE TABLE items (id INT PRIMARY KEY, payload TEXT, "
      "price DOUBLE)");
  const std::string payload(64, 'x');
  for (int i = 1; i <= kRows; ++i) {
    Row row = {Value(static_cast<int64_t>(i)),
               Value(payload + std::to_string(i)), Value(i * 0.5)};
    if (!db->BulkLoadRow(row).ok()) std::abort();
  }
  if (!db->Checkpoint().ok()) std::abort();
}

// Runs the 100-random-selection experiment; returns per-query stats.
RunningStat RunQueries(ProtectedDatabase* db, uint64_t seed) {
  Rng rng(seed);
  RealClock wall;
  RunningStat per_query_ms;
  for (int q = 0; q < kWarmupQueries + kQueries; ++q) {
    const int64_t key =
        static_cast<int64_t>(rng.Uniform(kRows)) + 1;
    const int64_t start = wall.NowMicros();
    auto r = db->ExecuteSql("SELECT * FROM items WHERE id = " +
                            std::to_string(key));
    const int64_t elapsed = wall.NowMicros() - start;
    if (!r.ok()) std::abort();
    if (q >= kWarmupQueries) {
      per_query_ms.Add(static_cast<double>(elapsed) / 1000.0);
    }
  }
  return per_query_ms;
}

}  // namespace

int main() {
  const fs::path base =
      fs::temp_directory_path() / "tarpit_bench_table5";
  fs::remove_all(base);

  // Small pools so that random point lookups touch the disk path.
  TableOptions table_options;
  table_options.heap_pool_pages = 32;
  table_options.index_pool_pages = 16;

  VirtualClock delay_clock;  // Delay *serving* is excluded: we measure
                             // the compute/maintenance cost, and the
                             // delay bounds are zero anyway.

  // --- Baseline: no counting, no delay computation. ---
  fs::create_directories(base / "baseline");
  ProtectedDatabaseOptions baseline_opts;
  baseline_opts.mode = DelayMode::kNone;
  baseline_opts.table_options = table_options;
  auto baseline_db = ProtectedDatabase::Open(
      (base / "baseline").string(), "items", &delay_clock,
      baseline_opts);
  if (!baseline_db.ok()) return 1;
  LoadData(baseline_db->get());
  RunningStat baseline = RunQueries(baseline_db->get(), 1234);

  // --- Protected: decayed counts, write-behind persistence, rank
  //     lookup and delay computation on every retrieval. ---
  fs::create_directories(base / "protected");
  ProtectedDatabaseOptions protected_opts;
  protected_opts.mode = DelayMode::kAccessPopularity;
  protected_opts.popularity.scale = 1.0;
  protected_opts.popularity.beta = 1.0;
  protected_opts.popularity.bounds = {0.0, 0.0};  // Compute, don't stall.
  protected_opts.decay_per_request = 1.000001;
  protected_opts.persist_counts = true;
  protected_opts.count_cache_capacity = 256;  // "small" write-behind cache.
  protected_opts.table_options = table_options;
  auto protected_db = ProtectedDatabase::Open(
      (base / "protected").string(), "items", &delay_clock,
      protected_opts);
  if (!protected_db.ok()) return 1;
  LoadData(protected_db->get());
  RunningStat with_counts = RunQueries(protected_db->get(), 1234);

  const double overhead_ms = with_counts.mean() - baseline.mean();
  std::printf("# Table 5: Overheads in Simple Selection Queries "
              "(%d random point lookups over %d rows)\n",
              kQueries, kRows);
  std::printf("%-22s %-12s %-12s\n", "", "avg (ms)", "stdev (ms)");
  std::printf("%-22s %-12.3f %-12.3f\n", "base query cost",
              baseline.mean(), baseline.stddev());
  std::printf("%-22s %-12.3f %-12.3f\n", "with counts+delay",
              with_counts.mean(), with_counts.stddev());
  std::printf("%-22s %-12.3f (%.0f%%)\n", "overhead", overhead_ms,
              100.0 * overhead_ms / std::max(1e-9, baseline.mean()));
  std::printf("# count-cache: %llu hits, %llu misses, %llu backing "
              "reads, %llu backing writes\n",
              static_cast<unsigned long long>(
                  (*protected_db)->count_cache()->hits()),
              static_cast<unsigned long long>(
                  (*protected_db)->count_cache()->misses()),
              static_cast<unsigned long long>(
                  (*protected_db)->count_cache()->backing_reads()),
              static_cast<unsigned long long>(
                  (*protected_db)->count_cache()->backing_writes()));

  baseline_db->reset();
  protected_db->reset();
  fs::remove_all(base);
  return 0;
}
