// Interactive SQL shell over a delay-protected database.
//
//   tarpit_shell [data-dir] [protected-table]
//
// Defaults: ./tarpit_shell_data, table "items". Statements end at
// newline. The shell prints each query's result and the delay that was
// charged; meta commands:
//   .stats        show learned-popularity summary for the protected table
//   .delay <key>  peek the current delay for a key
//   .quit         exit
//
// Uses a RealClock: delays actually stall the shell, so you can *feel*
// the tarpit (keep caps small when playing).

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "common/clock.h"
#include "core/protected_db.h"

using namespace tarpit;

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "./tarpit_shell_data";
  const std::string table = argc > 2 ? argv[2] : "items";
  std::filesystem::create_directories(dir);

  RealClock clock;
  ProtectedDatabaseOptions options;
  options.mode = DelayMode::kAccessPopularity;
  options.popularity.scale = 0.05;
  options.popularity.beta = 1.0;
  options.popularity.bounds = {0.0, 2.0};  // Gentle cap for a demo.
  options.persist_counts = true;

  auto pdb = ProtectedDatabase::Open(dir, table, &clock, options);
  if (!pdb.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 pdb.status().ToString().c_str());
    return 1;
  }
  ProtectedDatabase& db = **pdb;

  std::printf("tarpit shell -- protecting table '%s' in %s\n",
              table.c_str(), dir.c_str());
  std::printf("type SQL, or .stats / .delay <key> / .quit\n");

  std::string line;
  while (true) {
    std::printf("tarpit> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".stats") {
      std::printf("%s\n", db.Metrics().ToString().c_str());
      continue;
    }
    if (line.rfind(".delay ", 0) == 0) {
      char* end = nullptr;
      const int64_t key = std::strtoll(line.c_str() + 7, &end, 10);
      if (end == line.c_str() + 7) {
        std::printf("usage: .delay <integer-key>\n");
        continue;
      }
      std::printf("delay for key %lld: %.3f s\n",
                  static_cast<long long>(key), db.PeekDelay(key));
      continue;
    }
    auto result = db.ExecuteSql(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", result->result.ToString().c_str());
    if (result->delay_seconds > 0) {
      std::printf("-- charged %.3f s of delay\n",
                  result->delay_seconds);
    }
  }
  (void)db.Checkpoint();
  std::printf("\nbye (state persisted to %s)\n", dir.c_str());
  return 0;
}
