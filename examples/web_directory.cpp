// Web-directory lookup service behind the full defense perimeter
// (paper section 2.4): account registration is rate-limited, queries
// are throttled per identity AND per /24 subnet, and every retrieval
// pays a popularity delay. Shows a legitimate user, then a Sybil
// attacker trying to parallelize around the delays.

#include <cstdio>
#include <filesystem>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/protected_db.h"
#include "defense/query_gate.h"

using namespace tarpit;

int main() {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "tarpit_webdir_example";
  fs::remove_all(dir);
  fs::create_directories(dir);

  VirtualClock clock;
  ProtectedDatabaseOptions db_options;
  db_options.popularity.scale = 0.02;
  db_options.popularity.bounds = {0.0, 10.0};
  auto pdb = ProtectedDatabase::Open(dir.string(), "listings", &clock,
                                     db_options);
  if (!pdb.ok()) return 1;
  ProtectedDatabase& db = **pdb;

  (void)db.ExecuteSql("CREATE TABLE listings (id INT PRIMARY KEY, "
                      "business TEXT, phone TEXT)");
  const int kListings = 300;
  for (int i = 1; i <= kListings; ++i) {
    (void)db.BulkLoadRow({Value(static_cast<int64_t>(i)),
                          Value("Business #" + std::to_string(i)),
                          Value("555-01" + std::to_string(i))});
  }

  QueryGateOptions gate_options;
  gate_options.registration_seconds_per_account = 120.0;
  gate_options.per_user_queries_per_second = 2.0;
  gate_options.per_user_burst = 10.0;
  gate_options.per_subnet_queries_per_second = 5.0;
  gate_options.per_subnet_burst = 20.0;
  QueryGate gate(&db, gate_options);

  // --- A legitimate user looks up a few popular businesses. ---
  auto alice = gate.RegisterUser(Ipv4FromString("203.0.113.7"));
  if (!alice.ok()) return 1;
  std::printf("[alice] registered from 203.0.113.7\n");
  ZipfDistribution zipf(kListings, 1.5);
  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    int64_t key = static_cast<int64_t>(zipf.Sample(&rng));
    auto r = gate.ExecuteSql(
        *alice, "SELECT business, phone FROM listings WHERE id = " +
                    std::to_string(key));
    if (r.ok()) {
      std::printf("[alice] lookup id=%lld -> %s (delay %.1f ms)\n",
                  static_cast<long long>(key),
                  r->result.rows[0][0].AsString().c_str(),
                  r->delay_seconds * 1e3);
    }
  }

  // --- The attacker tries to register a fleet of accounts. ---
  // Some time passes after alice signed up, then mallory tries to
  // register five accounts back-to-back: only the first (accrued)
  // token is granted.
  clock.AdvanceToMicros(clock.NowMicros() + 150 * 1'000'000LL);
  std::printf("\n[mallory] attempting to register 5 accounts "
              "back-to-back...\n");
  std::vector<Identity> sybils;
  for (int i = 1; i <= 5; ++i) {
    auto s = gate.RegisterUser(
        Ipv4FromString("198.51.100." + std::to_string(i)));
    if (s.ok()) {
      sybils.push_back(*s);
      std::printf("[mallory] account %d granted\n", i);
    } else {
      std::printf("[mallory] account %d refused: %s\n", i,
                  s.status().ToString().c_str());
    }
  }
  std::printf("[mallory] amassing 50 accounts would take at least "
              "%.0f minutes\n",
              gate.registration_limiter()->TimeToAccumulate(50) / 60.0);

  // --- Sybils from one /24 share the subnet budget. ---
  std::printf("\n[mallory] hammering with the account(s) granted...\n");
  int served = 0, limited = 0;
  for (int q = 1; q <= 40 && !sybils.empty(); ++q) {
    const Identity& who = sybils[q % sybils.size()];
    auto r = gate.ExecuteSql(
        who, "SELECT * FROM listings WHERE id = " + std::to_string(q));
    if (r.ok()) {
      ++served;
    } else {
      ++limited;
    }
  }
  std::printf("[gate] served %d, rate-limited %d of 40 scrape "
              "queries from 198.51.100.0/24\n",
              served, limited);

  // --- And each served tuple still pays its delay. ---
  double extraction = 0;
  for (int64_t key = 1; key <= kListings; ++key) {
    extraction += db.PeekDelay(key);
  }
  std::printf("\nEven with unlimited accounts, extracting all %d "
              "listings costs %.1f minutes of delay.\n",
              kListings, extraction / 60.0);

  fs::remove_all(dir);
  return 0;
}
