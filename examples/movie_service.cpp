// Movie-review service with *shifting* popularity (paper section 4.2).
//
// Films are released throughout the year, spike, and fade; the service
// tracks popularity with exponentially decayed counts (decay applied at
// weekly boundaries) so delays follow the zeitgeist. Prints the weekly
// median user delay and the delay a scraper would face each quarter.

#include <cstdio>
#include <string>

#include "common/stats.h"
#include "sim/access_simulation.h"
#include "workload/boxoffice_trace.h"

using namespace tarpit;

int main() {
  BoxOfficeTraceConfig trace_config;  // 634 films, 52 weeks.
  BoxOfficeTrace trace(trace_config);
  auto weekly_requests = trace.GenerateWeeklyRequests();

  PopularityDelayParams params;
  params.scale = 0.5;
  params.beta = 1.0;
  params.bounds = {0.0, 10.0};
  const double weekly_decay = 1.5;  // Applied at week boundaries.

  AccessDelaySimulation sim(trace_config.films, 1.0, params);

  std::printf("%-6s %10s %14s %16s\n", "week", "requests",
              "median(ms)", "scrape-all(min)");
  uint64_t total_requests = 0;
  for (int week = 0; week < trace_config.weeks; ++week) {
    sim.ApplyDecayFactor(weekly_decay);
    QuantileSketch week_delays;
    sim.ServeTrace(weekly_requests[week], &week_delays);
    total_requests += weekly_requests[week].size();
    if ((week + 1) % 4 == 0) {
      std::printf("%-6d %10zu %14.3f %16.1f\n", week + 1,
                  weekly_requests[week].size(),
                  week_delays.Median() * 1e3,
                  sim.ExtractionDelayFrozen() / 60.0);
    }
  }

  const double extraction = sim.ExtractionDelayFrozen();
  std::printf("\nYear complete: %llu requests served.\n",
              static_cast<unsigned long long>(total_requests));
  std::printf("A scraper extracting all %llu films now pays %.2f hours "
              "of delay\n(maximum possible at the 10 s cap: %.2f hours).\n",
              static_cast<unsigned long long>(trace_config.films),
              extraction / 3600.0,
              static_cast<double>(trace_config.films) * 10.0 / 3600.0);
  return 0;
}
