// News service protected by the *update-rate* scheme (paper section 3):
// breaking stories change every few minutes (cheap to read), the
// archive never changes (expensive to read) -- so a scraped copy of the
// site is guaranteed to be substantially stale by the time the scrape
// finishes, even though reader traffic is spread evenly.

#include <cstdio>
#include <filesystem>
#include <string>

#include "analysis/staleness.h"
#include "common/clock.h"
#include "core/protected_db.h"
#include "sim/adversary.h"
#include "workload/mixed_workload.h"

using namespace tarpit;

int main() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "tarpit_news_example";
  fs::remove_all(dir);
  fs::create_directories(dir);

  VirtualClock clock;
  ProtectedDatabaseOptions options;
  options.mode = DelayMode::kUpdateRate;
  options.update.c = 2.0;
  options.update.bounds = {0.0, 10.0};
  // Readers are independent: one reader's stall must not advance the
  // shared timeline (that would inflate the update-rate observation
  // window). Delays are accounted, not slept.
  options.defer_delay_sleep = true;
  auto pdb =
      ProtectedDatabase::Open(dir.string(), "articles", &clock, options);
  if (!pdb.ok()) return 1;
  ProtectedDatabase& db = **pdb;

  (void)db.ExecuteSql("CREATE TABLE articles (id INT PRIMARY KEY, "
                      "headline TEXT, body TEXT)");
  const int kArticles = 1'000;
  for (int i = 1; i <= kArticles; ++i) {
    (void)db.BulkLoadRow({Value(static_cast<int64_t>(i)),
                          Value("Headline #" + std::to_string(i)),
                          Value("...")});
  }
  // A newsroom day: uniform readers, Zipf(1.2) editors (breaking
  // stories get edited constantly, the archive never).
  MixedWorkloadConfig workload;
  workload.n = kArticles;
  workload.queries_per_second = 20.0;
  workload.updates_per_second = 5.0;
  workload.query_alpha = 1.0;   // Readers gravitate to the news.
  workload.update_alpha = 1.5;  // Editors concentrate on breaking it.
  workload.duration_seconds = 4 * 3600.0;  // Four hours of operation.
  auto events = GenerateMixedWorkload(workload);

  QuantileSketch reader_delays;
  uint64_t reads = 0, writes = 0;
  for (const MixedEvent& event : events) {
    clock.AdvanceToMicros(
        static_cast<int64_t>(event.time_seconds * 1e6));
    const std::string key = std::to_string(event.key);
    if (event.is_update) {
      (void)db.ExecuteSql(
          "UPDATE articles SET body = 'rev' WHERE id = " + key);
      ++writes;
    } else {
      auto r = db.ExecuteSql("SELECT headline FROM articles WHERE id = " +
                             key);
      if (r.ok()) reader_delays.Add(r->delay_seconds);
      ++reads;
    }
  }
  std::printf("Newsroom day: %llu reads, %llu edits over %.0f h.\n",
              static_cast<unsigned long long>(reads),
              static_cast<unsigned long long>(writes),
              workload.duration_seconds / 3600);
  std::printf("Reader delays: median %.1f ms, p99 %.2f s.\n",
              reader_delays.Median() * 1e3,
              reader_delays.Quantile(0.99));

  // A scraper now pulls every article.
  ExtractionReport scrape =
      RunSequentialExtraction(*db.engine()->policy(), kArticles);
  std::printf("\nScraping all %d articles costs %.2f hours of delay.\n",
              kArticles, scrape.total_delay_seconds / 3600);

  // How much of the scrape is stale on arrival? Use the true editorial
  // rates learned this day.
  std::vector<double> rates(kArticles);
  const double elapsed = clock.NowSeconds();
  for (int i = 1; i <= kArticles; ++i) {
    rates[i - 1] = db.update_tracker()->Count(i) / elapsed;
  }
  const double stale = ExpectedStaleFractionPoisson(
      rates, scrape.completion_times, scrape.total_delay_seconds);
  std::printf("Expected stale fraction of the scraped copy: %.0f%%.\n",
              stale * 100);
  std::printf("(The busiest stories -- the ones worth stealing -- have "
              "long since moved on.)\n");

  fs::remove_all(dir);
  return 0;
}
