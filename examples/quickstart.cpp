// Quickstart: protect a small relation with popularity-based delays.
//
// Builds a protected database, loads a product catalog, serves a skewed
// legitimate workload, then shows what a wholesale extraction would
// cost. Run from anywhere; it uses a temp directory and cleans up.

#include <cstdio>
#include <filesystem>

#include "common/clock.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/protected_db.h"

using namespace tarpit;

int main() {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "tarpit_quickstart_example";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // A virtual clock: delays are accounted instantly so the example
  // finishes immediately. Swap in RealClock to actually stall callers.
  VirtualClock clock;

  ProtectedDatabaseOptions options;
  options.mode = DelayMode::kAccessPopularity;
  options.popularity.scale = 0.05;       // Seconds per unit popularity.
  options.popularity.beta = 1.0;         // Rank amplification.
  options.popularity.bounds = {0.0, 10.0};  // 10-second cap.

  auto pdb = ProtectedDatabase::Open(dir.string(), "products", &clock,
                                     options);
  if (!pdb.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 pdb.status().ToString().c_str());
    return 1;
  }
  ProtectedDatabase& db = **pdb;

  auto check = [](const Status& st) {
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  };

  check(db.ExecuteSql("CREATE TABLE products (id INT PRIMARY KEY, "
                      "name TEXT, price DOUBLE)")
            .status());
  const int kProducts = 500;
  for (int i = 1; i <= kProducts; ++i) {
    check(db.BulkLoadRow({Value(static_cast<int64_t>(i)),
                          Value("product-" + std::to_string(i)),
                          Value(9.99 + i)}));
  }
  std::printf("Loaded %d products.\n\n", kProducts);

  // Legitimate users: Zipf-skewed interest in products.
  ZipfDistribution zipf(kProducts, 1.4);
  Rng rng(2024);
  QuantileSketch user_delays;
  for (int q = 0; q < 20000; ++q) {
    int64_t key = static_cast<int64_t>(zipf.Sample(&rng));
    auto r = db.ExecuteSql("SELECT name, price FROM products WHERE id = " +
                           std::to_string(key));
    check(r.status());
    user_delays.Add(r->delay_seconds);
  }
  std::printf("Served 20000 legitimate queries.\n");
  std::printf("  median delay: %8.3f ms\n",
              user_delays.Median() * 1e3);
  std::printf("  p90    delay: %8.3f ms\n",
              user_delays.Quantile(0.9) * 1e3);
  std::printf("  p99    delay: %8.3f ms\n\n",
              user_delays.Quantile(0.99) * 1e3);

  // An adversary must eventually touch every product.
  double extraction_delay = 0;
  for (int64_t key = 1; key <= kProducts; ++key) {
    extraction_delay += db.PeekDelay(key);
  }
  std::printf("Extraction of all %d products would cost %.1f s "
              "(%.1f minutes) of delay.\n",
              kProducts, extraction_delay, extraction_delay / 60);
  std::printf("That is %.0fx the median user delay, per tuple.\n",
              extraction_delay / kProducts /
                  std::max(1e-9, user_delays.Median()));

  fs::remove_all(dir);
  return 0;
}
