// Adversary playbook demo: what each attack from paper section 2.4
// costs against a tarpit-protected dataset, and what the update-based
// scheme (section 3) guarantees even when access patterns are uniform.

#include <cstdio>

#include "analysis/staleness.h"
#include "core/analytic_zipf_delay.h"
#include "sim/adversary.h"
#include "sim/dynamic_simulation.h"

using namespace tarpit;

int main() {
  // A 100k-tuple relation with Zipf(1.2) accesses, beta = 1, 10 s cap.
  AnalyticZipfParams params;
  params.n = 100'000;
  params.alpha = 1.2;
  params.beta = 1.0;
  params.fmax = 50.0;  // Hottest tuple: 50 requests/s.
  params.bounds = {0.0, 10.0};
  AnalyticZipfDelayPolicy policy(params);

  std::printf("=== Attack cost comparison (N = %llu, cap = %.0f s) ===\n\n",
              static_cast<unsigned long long>(params.n),
              params.bounds.max_seconds);

  // 1. Sequential extraction.
  ExtractionReport seq = RunSequentialExtraction(policy, params.n);
  std::printf("sequential extraction: %10.1f hours of delay\n",
              seq.total_delay_seconds / 3600);

  // 2. Sybil parallelism with free identities.
  for (uint64_t ids : {10ull, 100ull, 1000ull}) {
    ParallelExtractionReport par =
        RunParallelExtraction(policy, params.n, ids, /*t_reg=*/0.0);
    std::printf("parallel x%-5llu (free ids): %8.1f hours\n",
                static_cast<unsigned long long>(ids),
                par.total_attack_seconds / 3600);
  }

  // 3. The same parallelism once registration is rate-limited so that
  //    1000 accounts take as long as one sequential extraction.
  const double t_reg = seq.total_delay_seconds / 1000.0;
  std::printf("\nwith 1 account per %.0f s registration limit:\n", t_reg);
  for (uint64_t ids : {10ull, 100ull, 1000ull}) {
    ParallelExtractionReport par =
        RunParallelExtraction(policy, params.n, ids, t_reg);
    std::printf("parallel x%-5llu: %8.1f hours "
                "(%.1f h registering + %.1f h querying)\n",
                static_cast<unsigned long long>(ids),
                par.total_attack_seconds / 3600,
                par.registration_seconds / 3600,
                par.max_partition_delay_seconds / 3600);
  }

  // 4. Storefront: forwarding real user queries, each account capped at
  //    500 lifetime queries.
  StorefrontReport sf = AnalyzeStorefront(params.n, 500, t_reg);
  std::printf("\nstorefront (500 queries/account): needs %llu accounts, "
              ">= %.1f hours of registrations\n",
              static_cast<unsigned long long>(sf.identities_needed),
              sf.registration_seconds / 3600);

  // 5. Uniform access pattern: fall back to update-rate delays. Even
  //    if the adversary gets everything, much of it is already stale.
  std::printf("\n=== Update-based defense (uniform accesses) ===\n\n");
  DynamicSimConfig dyn;
  dyn.n = 50'000;
  dyn.update_alpha = 1.0;
  dyn.updates_per_second = 100.0;
  dyn.warmup_updates = 1'000'000;
  dyn.measured_queries = 5'000;
  dyn.delay.c = 2.0;
  dyn.delay.bounds = {0.0, 10.0};
  DynamicSimResult r = RunDynamicSimulation(dyn);
  std::printf("median user delay:     %8.1f ms\n",
              r.median_user_delay_seconds * 1e3);
  std::printf("extraction delay:      %8.1f hours\n",
              r.adversary_delay_seconds / 3600);
  std::printf("stale when extracted:  %8.1f %% of tuples "
              "(Eq. 12 bound: %.1f %%)\n",
              r.stale_fraction * 100,
              SmaxApprox(dyn.delay.c, dyn.update_alpha) * 100);
  return 0;
}
