#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>
#include <fstream>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/database.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/schema.h"
#include "storage/slotted_page.h"
#include "storage/table.h"
#include "storage/value.h"
#include "storage/wal.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name) {
    path_ = fs::temp_directory_path() /
            ("tarpit_test_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string path() const { return path_.string(); }
  std::string file(const std::string& f) const {
    return (path_ / f).string();
  }

 private:
  fs::path path_;
};

// ---------- DiskManager ----------

TEST(DiskManagerTest, AllocateReadWrite) {
  TempDir dir("disk");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("a.db")).ok());
  EXPECT_EQ(dm.PageCount(), 0u);
  auto p0 = dm.AllocatePage();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(dm.PageCount(), 1u);

  char out[kPageSize];
  ASSERT_TRUE(dm.ReadPage(0, out).ok());
  for (size_t i = 0; i < kPageUsableSize; ++i) ASSERT_EQ(out[i], 0);

  char data[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) data[i] = static_cast<char>(i);
  ASSERT_TRUE(dm.WritePage(0, data).ok());
  ASSERT_TRUE(dm.ReadPage(0, out).ok());
  // The usable prefix round-trips; the trailer belongs to the disk
  // manager (CRC32 of the prefix), not to the caller's bytes.
  EXPECT_EQ(std::memcmp(out, data, kPageUsableSize), 0);
}

TEST(DiskManagerTest, ChecksumDetectsCorruption) {
  TempDir dir("disk-crc");
  const std::string path = dir.file("a.db");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(path).ok());
  char data[kPageSize] = {};
  std::memcpy(data, "hello", 5);
  ASSERT_TRUE(dm.WritePage(0, data).ok());
  ASSERT_TRUE(dm.Sync().ok());
  ASSERT_TRUE(dm.Close().ok());

  // Flip one byte in the middle of the page, behind the manager's back.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(100);
    char b = 0x5A;
    f.write(&b, 1);
  }
  DiskManager dm2;
  ASSERT_TRUE(dm2.Open(path).ok());
  char out[kPageSize];
  Status st = dm2.ReadPage(0, out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_EQ(dm2.checksum_failures(), 1u);
}

TEST(DiskManagerTest, ReadPastEndFails) {
  TempDir dir("disk2");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("a.db")).ok());
  char out[kPageSize];
  EXPECT_FALSE(dm.ReadPage(3, out).ok());
}

TEST(DiskManagerTest, PersistsAcrossReopen) {
  TempDir dir("disk3");
  char data[kPageSize] = {'x', 'y', 'z'};
  {
    DiskManager dm;
    ASSERT_TRUE(dm.Open(dir.file("a.db")).ok());
    ASSERT_TRUE(dm.AllocatePage().ok());
    ASSERT_TRUE(dm.WritePage(0, data).ok());
    ASSERT_TRUE(dm.Close().ok());
  }
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("a.db")).ok());
  EXPECT_EQ(dm.PageCount(), 1u);
  char out[kPageSize];
  ASSERT_TRUE(dm.ReadPage(0, out).ok());
  EXPECT_EQ(out[0], 'x');
  EXPECT_EQ(out[2], 'z');
}

// ---------- BufferPool ----------

TEST(BufferPoolTest, FetchCachesPages) {
  TempDir dir("bp1");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("a.db")).ok());
  BufferPool pool(&dm, 4);
  {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = 'a';
    guard->MarkDirty();
  }
  {
    auto guard = pool.FetchPage(0);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], 'a');
  }
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBack) {
  TempDir dir("bp2");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("a.db")).ok());
  BufferPool pool(&dm, 2);
  for (int i = 0; i < 5; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->data()[0] = static_cast<char>('a' + i);
    guard->MarkDirty();
  }
  // All five pages must be readable with correct content despite
  // the two-frame pool.
  for (int i = 0; i < 5; ++i) {
    auto guard = pool.FetchPage(i);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard->data()[0], static_cast<char>('a' + i)) << i;
  }
}

TEST(BufferPoolTest, AllPinnedFails) {
  TempDir dir("bp3");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("a.db")).ok());
  BufferPool pool(&dm, 2);
  auto g1 = pool.NewPage();
  auto g2 = pool.NewPage();
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto g3 = pool.NewPage();
  EXPECT_FALSE(g3.ok());
  EXPECT_TRUE(g3.status().IsResourceExhausted());
}

TEST(BufferPoolTest, FlushAllPersists) {
  TempDir dir("bp4");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("a.db")).ok());
  BufferPool pool(&dm, 4);
  {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    guard->data()[7] = 'q';
    guard->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  char out[kPageSize];
  ASSERT_TRUE(dm.ReadPage(0, out).ok());
  EXPECT_EQ(out[7], 'q');
}

// ---------- SlottedPage ----------

TEST(SlottedPageTest, InsertGet) {
  char buf[kPageSize] = {};
  SlottedPage sp(buf);
  sp.Init();
  auto s1 = sp.Insert("hello");
  auto s2 = sp.Insert("world!");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_NE(*s1, *s2);
  EXPECT_EQ(*sp.Get(*s1), "hello");
  EXPECT_EQ(*sp.Get(*s2), "world!");
  EXPECT_EQ(sp.slot_count(), 2);
}

TEST(SlottedPageTest, DeleteAndSlotReuse) {
  char buf[kPageSize] = {};
  SlottedPage sp(buf);
  sp.Init();
  auto s1 = sp.Insert("aaa");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(sp.Delete(*s1).ok());
  EXPECT_FALSE(sp.Get(*s1).ok());
  EXPECT_FALSE(sp.IsLive(*s1));
  EXPECT_FALSE(sp.Delete(*s1).ok());  // Double delete.
  auto s2 = sp.Insert("bbb");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s1);  // Tombstone reused.
  EXPECT_EQ(sp.slot_count(), 1);
}

TEST(SlottedPageTest, UpdateInPlaceAndGrow) {
  char buf[kPageSize] = {};
  SlottedPage sp(buf);
  sp.Init();
  auto s = sp.Insert("abcdef");
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(sp.Update(*s, "xy").ok());
  EXPECT_EQ(*sp.Get(*s), "xy");
  ASSERT_TRUE(sp.Update(*s, "longer than before").ok());
  EXPECT_EQ(*sp.Get(*s), "longer than before");
}

TEST(SlottedPageTest, FillsUpThenFails) {
  char buf[kPageSize] = {};
  SlottedPage sp(buf);
  sp.Init();
  std::string rec(100, 'r');
  int inserted = 0;
  while (true) {
    auto s = sp.Insert(rec);
    if (!s.ok()) {
      EXPECT_TRUE(s.status().IsResourceExhausted());
      break;
    }
    ++inserted;
  }
  // 4096 / (100 + 4 slot bytes) ~ 39.
  EXPECT_GE(inserted, 35);
  EXPECT_LE(inserted, 40);
}

TEST(SlottedPageTest, CompactionReclaimsDeletedSpace) {
  char buf[kPageSize] = {};
  SlottedPage sp(buf);
  sp.Init();
  std::string rec(1000, 'x');
  auto a = sp.Insert(rec);
  auto b = sp.Insert(rec);
  auto c = sp.Insert(rec);
  auto d = sp.Insert(rec);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_FALSE(sp.Insert(rec).ok());
  ASSERT_TRUE(sp.Delete(*b).ok());
  ASSERT_TRUE(sp.Delete(*d).ok());
  // Two holes of 1000 bytes exist; a fresh 1800-byte record only fits
  // after compaction.
  std::string big(1800, 'y');
  auto e = sp.Insert(big);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*sp.Get(*e), big);
  EXPECT_EQ(*sp.Get(*a), rec);
  EXPECT_EQ(*sp.Get(*c), rec);
}

TEST(SlottedPageTest, RecordTooLargeRejected) {
  char buf[kPageSize] = {};
  SlottedPage sp(buf);
  sp.Init();
  std::string rec(kPageSize, 'z');
  EXPECT_TRUE(sp.Insert(rec).status().IsInvalidArgument());
}

// ---------- HeapFile ----------

TEST(HeapFileTest, InsertGetAcrossPages) {
  TempDir dir("heap1");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("h.db")).ok());
  BufferPool pool(&dm, 8);
  HeapFile heap(&pool);
  ASSERT_TRUE(heap.Open().ok());

  std::vector<RecordId> rids;
  for (int i = 0; i < 500; ++i) {
    std::string rec = "record-" + std::to_string(i) + std::string(50, 'p');
    auto rid = heap.Insert(rec);
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  EXPECT_GT(heap.PageCount(), 1u);  // Spilled past one page.
  EXPECT_EQ(heap.live_records(), 500u);
  for (int i = 0; i < 500; ++i) {
    auto rec = heap.Get(rids[i]);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->substr(0, 7 + std::to_string(i).size()),
              "record-" + std::to_string(i));
  }
}

TEST(HeapFileTest, UpdateInPlaceKeepsRid) {
  TempDir dir("heap2");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("h.db")).ok());
  BufferPool pool(&dm, 8);
  HeapFile heap(&pool);
  ASSERT_TRUE(heap.Open().ok());
  auto rid = heap.Insert("original-record");
  ASSERT_TRUE(rid.ok());
  auto new_rid = heap.Update(*rid, "shorter");
  ASSERT_TRUE(new_rid.ok());
  EXPECT_EQ(*new_rid, *rid);
  EXPECT_EQ(*heap.Get(*rid), "shorter");
}

TEST(HeapFileTest, UpdateRelocatesWhenPageFull) {
  TempDir dir("heap3");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("h.db")).ok());
  BufferPool pool(&dm, 8);
  HeapFile heap(&pool);
  ASSERT_TRUE(heap.Open().ok());
  // Fill page 0 nearly full.
  auto first = heap.Insert(std::string(1300, 'a'));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(heap.Insert(std::string(1300, 'b')).ok());
  ASSERT_TRUE(heap.Insert(std::string(1300, 'c')).ok());
  // Growing the first record cannot fit in page 0 anymore.
  auto moved = heap.Update(*first, std::string(3000, 'A'));
  ASSERT_TRUE(moved.ok());
  EXPECT_FALSE(*moved == *first);
  EXPECT_EQ(heap.Get(*moved)->size(), 3000u);
  EXPECT_EQ(heap.live_records(), 3u);
}

TEST(HeapFileTest, ScanVisitsLiveOnly) {
  TempDir dir("heap4");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("h.db")).ok());
  BufferPool pool(&dm, 8);
  HeapFile heap(&pool);
  ASSERT_TRUE(heap.Open().ok());
  auto a = heap.Insert("keep-a");
  auto b = heap.Insert("drop-b");
  auto c = heap.Insert("keep-c");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(heap.Delete(*b).ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(heap.Scan([&](RecordId, std::string_view rec) {
                    seen.emplace_back(rec);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "keep-a");
  EXPECT_EQ(seen[1], "keep-c");
}

TEST(HeapFileTest, DeletedSpaceIsReusedNotGrown) {
  TempDir dir("heap_reuse");
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("h.db")).ok());
  BufferPool pool(&dm, 16);
  HeapFile heap(&pool);
  ASSERT_TRUE(heap.Open().ok());
  // Fill several pages, remember rids.
  std::vector<RecordId> rids;
  for (int i = 0; i < 300; ++i) {
    auto rid = heap.Insert(std::string(100, 'a'));
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  const uint32_t pages_after_fill = heap.PageCount();
  // Delete everything, then refill with same-size records: the file
  // must not grow (freed pages get reused).
  for (RecordId rid : rids) ASSERT_TRUE(heap.Delete(rid).ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(heap.Insert(std::string(100, 'b')).ok());
  }
  EXPECT_EQ(heap.PageCount(), pages_after_fill);
  EXPECT_EQ(heap.live_records(), 300u);
}

TEST(HeapFileTest, FreeSpaceMapSurvivesReopen) {
  TempDir dir("heap_reuse2");
  std::vector<RecordId> rids;
  {
    DiskManager dm;
    ASSERT_TRUE(dm.Open(dir.file("h.db")).ok());
    BufferPool pool(&dm, 16);
    HeapFile heap(&pool);
    ASSERT_TRUE(heap.Open().ok());
    for (int i = 0; i < 200; ++i) {
      auto rid = heap.Insert(std::string(100, 'a'));
      ASSERT_TRUE(rid.ok());
      rids.push_back(*rid);
    }
    // Punch holes in early pages.
    for (size_t i = 0; i < rids.size(); i += 2) {
      ASSERT_TRUE(heap.Delete(rids[i]).ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("h.db")).ok());
  BufferPool pool(&dm, 16);
  HeapFile heap(&pool);
  ASSERT_TRUE(heap.Open().ok());
  const uint32_t pages_before = heap.PageCount();
  // New inserts land in the holes rather than growing the file.
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(heap.Insert(std::string(100, 'c')).ok());
  }
  EXPECT_EQ(heap.PageCount(), pages_before);
}

TEST(HeapFileTest, ReopenRecountsLiveRecords) {
  TempDir dir("heap5");
  {
    DiskManager dm;
    ASSERT_TRUE(dm.Open(dir.file("h.db")).ok());
    BufferPool pool(&dm, 8);
    HeapFile heap(&pool);
    ASSERT_TRUE(heap.Open().ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(heap.Insert("r" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("h.db")).ok());
  BufferPool pool(&dm, 8);
  HeapFile heap(&pool);
  ASSERT_TRUE(heap.Open().ok());
  EXPECT_EQ(heap.live_records(), 10u);
}

// ---------- Value & Schema ----------

TEST(ValueTest, TypesAndNull) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_EQ(Value(int64_t{3}).AsDouble(), 3.0);
}

TEST(ValueTest, CompareSemantics) {
  EXPECT_EQ(Value(int64_t{1}).Compare(Value(int64_t{2})), -1);
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_EQ(Value(2.5).Compare(Value(int64_t{2})), 1);
  EXPECT_EQ(Value("a").Compare(Value("b")), -1);
  EXPECT_EQ(Value().Compare(Value(int64_t{0})), -1);  // NULL first.
  EXPECT_EQ(Value().Compare(Value()), 0);
  EXPECT_EQ(Value(int64_t{5}).Compare(Value("5")), -1);  // num < str.
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{-7}).ToString(), "-7");
  EXPECT_EQ(Value("x").ToString(), "'x'");
}

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"score", ColumnType::kDouble},
                 {"name", ColumnType::kString}});
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  Schema s = TestSchema();
  Row row = {Value(int64_t{42}), Value(3.14), Value("alpha")};
  std::string bytes;
  ASSERT_TRUE(s.EncodeRow(row, &bytes).ok());
  auto decoded = s.DecodeRow(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0], row[0]);
  EXPECT_EQ((*decoded)[1], row[1]);
  EXPECT_EQ((*decoded)[2], row[2]);
}

TEST(SchemaTest, NullsRoundTrip) {
  Schema s = TestSchema();
  Row row = {Value(int64_t{1}), Value::Null(), Value::Null()};
  std::string bytes;
  ASSERT_TRUE(s.EncodeRow(row, &bytes).ok());
  auto decoded = s.DecodeRow(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE((*decoded)[1].is_null());
  EXPECT_TRUE((*decoded)[2].is_null());
}

TEST(SchemaTest, IntWidensToDouble) {
  Schema s = TestSchema();
  Row row = {Value(int64_t{1}), Value(int64_t{9}), Value("x")};
  std::string bytes;
  ASSERT_TRUE(s.EncodeRow(row, &bytes).ok());
  auto decoded = s.DecodeRow(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE((*decoded)[1].is_double());
  EXPECT_EQ((*decoded)[1].AsDouble(), 9.0);
}

TEST(SchemaTest, ValidateRejectsBadArityAndTypes) {
  Schema s = TestSchema();
  EXPECT_FALSE(s.Validate({Value(int64_t{1})}).ok());
  EXPECT_FALSE(
      s.Validate({Value("wrong"), Value(1.0), Value("x")}).ok());
}

TEST(SchemaTest, DecodeRejectsCorruption) {
  Schema s = TestSchema();
  Row row = {Value(int64_t{42}), Value(3.14), Value("alpha")};
  std::string bytes;
  ASSERT_TRUE(s.EncodeRow(row, &bytes).ok());
  EXPECT_FALSE(s.DecodeRow(bytes.substr(0, bytes.size() - 2)).ok());
  EXPECT_FALSE(s.DecodeRow(bytes + "tail").ok());
  EXPECT_FALSE(s.DecodeRow("").ok());
}

TEST(SchemaTest, SerializeRoundTrip) {
  Schema s = TestSchema();
  auto back = Schema::Deserialize(s.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == s);
  EXPECT_FALSE(Schema::Deserialize("id:BOGUS").ok());
  EXPECT_FALSE(Schema::Deserialize("").ok());
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(*s.ColumnIndex("name"), 2u);
  EXPECT_FALSE(s.ColumnIndex("absent").ok());
}

// ---------- BTree ----------

struct BTreeFixture {
  TempDir dir;
  DiskManager dm;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<BTree> tree;

  explicit BTreeFixture(const std::string& name, size_t pool_pages = 64)
      : dir(name) {
    EXPECT_TRUE(dm.Open(dir.file("t.idx")).ok());
    pool = std::make_unique<BufferPool>(&dm, pool_pages);
    tree = std::make_unique<BTree>(pool.get());
    EXPECT_TRUE(tree->Open().ok());
  }
};

TEST(BTreeTest, InsertSearchSmall) {
  BTreeFixture f("bt1");
  for (int64_t k : {5, 3, 9, 1, 7}) {
    ASSERT_TRUE(f.tree->Insert(k, RecordId{static_cast<PageId>(k), 0}).ok());
  }
  for (int64_t k : {1, 3, 5, 7, 9}) {
    auto rid = f.tree->Search(k);
    ASSERT_TRUE(rid.ok()) << k;
    EXPECT_EQ(rid->page_id, static_cast<PageId>(k));
  }
  EXPECT_TRUE(f.tree->Search(4).status().IsNotFound());
}

TEST(BTreeTest, DuplicateRejected) {
  BTreeFixture f("bt2");
  ASSERT_TRUE(f.tree->Insert(1, RecordId{1, 0}).ok());
  EXPECT_EQ(f.tree->Insert(1, RecordId{2, 0}).code(),
            StatusCode::kAlreadyExists);
}

TEST(BTreeTest, ManyKeysCauseSplitsAndStaySearchable) {
  BTreeFixture f("bt3", 128);
  const int n = 20000;
  Rng rng(99);
  std::vector<int64_t> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back(i * 7 % n);  // Permutation.
  for (int64_t k : keys) {
    ASSERT_TRUE(
        f.tree->Insert(k, RecordId{static_cast<PageId>(k), 1}).ok())
        << k;
  }
  auto height = f.tree->Height();
  ASSERT_TRUE(height.ok());
  EXPECT_GE(*height, 2);  // Must have split at least once.
  auto count = f.tree->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, static_cast<uint64_t>(n));
  for (int i = 0; i < 200; ++i) {
    int64_t k = static_cast<int64_t>(rng.Uniform(n));
    auto rid = f.tree->Search(k);
    ASSERT_TRUE(rid.ok()) << k;
    EXPECT_EQ(rid->page_id, static_cast<PageId>(k));
  }
}

TEST(BTreeTest, RangeScanOrderedAndBounded) {
  BTreeFixture f("bt4");
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(f.tree->Insert(k * 2, RecordId{0, 0}).ok());
  }
  std::vector<int64_t> seen;
  ASSERT_TRUE(f.tree
                  ->RangeScan(10, 30,
                              [&](int64_t k, RecordId) {
                                seen.push_back(k);
                                return Status::OK();
                              })
                  .ok());
  ASSERT_EQ(seen.size(), 11u);  // 10,12,...,30.
  EXPECT_EQ(seen.front(), 10);
  EXPECT_EQ(seen.back(), 30);
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);
}

TEST(BTreeTest, DeleteRemovesAndSearchFails) {
  BTreeFixture f("bt5");
  for (int64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(f.tree->Insert(k, RecordId{1, 2}).ok());
  }
  for (int64_t k = 0; k < 1000; k += 2) {
    ASSERT_TRUE(f.tree->Delete(k).ok());
  }
  for (int64_t k = 0; k < 1000; ++k) {
    if (k % 2 == 0) {
      EXPECT_TRUE(f.tree->Search(k).status().IsNotFound()) << k;
    } else {
      EXPECT_TRUE(f.tree->Search(k).ok()) << k;
    }
  }
  EXPECT_EQ(*f.tree->CountEntries(), 500u);
  EXPECT_TRUE(f.tree->Delete(0).IsNotFound());
}

TEST(BTreeTest, UpdateRidRepoints) {
  BTreeFixture f("bt6");
  ASSERT_TRUE(f.tree->Insert(10, RecordId{1, 1}).ok());
  ASSERT_TRUE(f.tree->UpdateRid(10, RecordId{9, 9}).ok());
  auto rid = f.tree->Search(10);
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(rid->page_id, 9u);
  EXPECT_EQ(rid->slot, 9);
  EXPECT_TRUE(f.tree->UpdateRid(11, RecordId{0, 0}).IsNotFound());
}

TEST(BTreeTest, PersistsAcrossReopen) {
  TempDir dir("bt7");
  {
    DiskManager dm;
    ASSERT_TRUE(dm.Open(dir.file("t.idx")).ok());
    BufferPool pool(&dm, 64);
    BTree tree(&pool);
    ASSERT_TRUE(tree.Open().ok());
    for (int64_t k = 0; k < 5000; ++k) {
      ASSERT_TRUE(tree.Insert(k, RecordId{static_cast<PageId>(k), 0}).ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("t.idx")).ok());
  BufferPool pool(&dm, 64);
  BTree tree(&pool);
  ASSERT_TRUE(tree.Open().ok());
  EXPECT_EQ(*tree.CountEntries(), 5000u);
  EXPECT_EQ(tree.Search(4321)->page_id, 4321u);
}

TEST(BTreeTest, NegativeAndExtremeKeys) {
  BTreeFixture f("bt8");
  ASSERT_TRUE(f.tree->Insert(INT64_MIN, RecordId{1, 0}).ok());
  ASSERT_TRUE(f.tree->Insert(INT64_MAX, RecordId{2, 0}).ok());
  ASSERT_TRUE(f.tree->Insert(-5, RecordId{3, 0}).ok());
  ASSERT_TRUE(f.tree->Insert(0, RecordId{4, 0}).ok());
  EXPECT_EQ(f.tree->Search(INT64_MIN)->page_id, 1u);
  EXPECT_EQ(f.tree->Search(INT64_MAX)->page_id, 2u);
  std::vector<int64_t> seen;
  ASSERT_TRUE(f.tree
                  ->RangeScan(INT64_MIN, INT64_MAX,
                              [&](int64_t k, RecordId) {
                                seen.push_back(k);
                                return Status::OK();
                              })
                  .ok());
  EXPECT_EQ(seen, (std::vector<int64_t>{INT64_MIN, -5, 0, INT64_MAX}));
}

TEST(BTreeTest, CursorWalksInOrderAcrossLeaves) {
  BTreeFixture f("bt_cursor", 128);
  const int n = 5000;
  for (int64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(
        f.tree->Insert(k * 3, RecordId{static_cast<PageId>(k), 0}).ok());
  }
  auto cursor = f.tree->SeekGE(150);  // Between keys 147 and 150.
  ASSERT_TRUE(cursor.ok());
  int64_t expected = 150;
  int visited = 0;
  while (cursor->Valid()) {
    ASSERT_EQ(cursor->key(), expected);
    ASSERT_EQ(cursor->rid().page_id,
              static_cast<PageId>(expected / 3));
    expected += 3;
    ++visited;
    ASSERT_TRUE(cursor->Next().ok());
  }
  EXPECT_EQ(visited, n - 50);  // Keys 150..(n-1)*3.
}

TEST(BTreeTest, CursorSeekPastEndIsInvalid) {
  BTreeFixture f("bt_cursor2");
  ASSERT_TRUE(f.tree->Insert(1, RecordId{1, 0}).ok());
  auto cursor = f.tree->SeekGE(100);
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor->Valid());
  EXPECT_TRUE(cursor->Next().ok());  // Idempotent on exhausted cursor.
  EXPECT_FALSE(cursor->Valid());
}

TEST(BTreeTest, CursorSkipsEmptiedLeaves) {
  BTreeFixture f("bt_cursor3", 128);
  for (int64_t k = 0; k < 2000; ++k) {
    ASSERT_TRUE(f.tree->Insert(k, RecordId{0, 0}).ok());
  }
  // Empty out a band in the middle (whole leaves become empty).
  for (int64_t k = 300; k < 900; ++k) {
    ASSERT_TRUE(f.tree->Delete(k).ok());
  }
  auto cursor = f.tree->SeekGE(295);
  ASSERT_TRUE(cursor.ok());
  std::vector<int64_t> seen;
  while (cursor->Valid() && seen.size() < 10) {
    seen.push_back(cursor->key());
    ASSERT_TRUE(cursor->Next().ok());
  }
  EXPECT_EQ(seen, (std::vector<int64_t>{295, 296, 297, 298, 299, 900,
                                        901, 902, 903, 904}));
}

// ---------- WAL ----------

TEST(WalTest, AppendReplayRoundTrip) {
  TempDir dir("wal1");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir.file("t.wal")).ok());
  ASSERT_TRUE(wal.Append(WalRecordType::kInsert, "row-one").ok());
  ASSERT_TRUE(wal.Append(WalRecordType::kDelete, "12345678").ok());
  std::vector<std::pair<WalRecordType, std::string>> seen;
  ASSERT_TRUE(wal.Replay([&](WalRecordType t, std::string_view p) {
                    seen.emplace_back(t, std::string(p));
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, WalRecordType::kInsert);
  EXPECT_EQ(seen[0].second, "row-one");
  EXPECT_EQ(seen[1].first, WalRecordType::kDelete);
}

TEST(WalTest, TornTailIsIgnored) {
  TempDir dir("wal2");
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(dir.file("t.wal")).ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kInsert, "good").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Append garbage simulating a torn write.
  {
    std::ofstream f(dir.file("t.wal"), std::ios::app | std::ios::binary);
    f << "\x08\x00\x00\x00\x01par";  // Claims 8 bytes, delivers 3.
  }
  Wal wal;
  ASSERT_TRUE(wal.Open(dir.file("t.wal")).ok());
  int count = 0;
  ASSERT_TRUE(wal.Replay([&](WalRecordType, std::string_view) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST(WalTest, CorruptChecksumStopsReplay) {
  TempDir dir("wal3");
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(dir.file("t.wal")).ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kInsert, "aaaa").ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kInsert, "bbbb").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Flip a payload byte of the second record.
  {
    std::fstream f(dir.file("t.wal"),
                   std::ios::in | std::ios::out | std::ios::binary);
    // Record framing: 4 len + 1 type + 4 payload + 4 crc = 13 bytes each.
    f.seekp(13 + 5);
    f.put('X');
  }
  Wal wal;
  ASSERT_TRUE(wal.Open(dir.file("t.wal")).ok());
  int count = 0;
  ASSERT_TRUE(wal.Replay([&](WalRecordType, std::string_view) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 1);  // Only the intact first record.
}

TEST(WalTest, TruncateEmptiesLog) {
  TempDir dir("wal4");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir.file("t.wal")).ok());
  ASSERT_TRUE(wal.Append(WalRecordType::kInsert, "zzz").ok());
  EXPECT_GT(*wal.SizeBytes(), 0u);
  ASSERT_TRUE(wal.Truncate().ok());
  EXPECT_EQ(*wal.SizeBytes(), 0u);
  int count = 0;
  ASSERT_TRUE(wal.Replay([&](WalRecordType, std::string_view) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 0);
}

TEST(WalTest, GroupCommitBatchesSyncs) {
  TempDir dir("wal5");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir.file("t.wal")).ok());
  // Window far longer than this test: every sync-requested append
  // defers its fdatasync onto the pending batch.
  wal.set_group_commit_window_micros(60'000'000);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(wal.Append(WalRecordType::kInsert, "r", /*sync=*/true)
                    .ok());
  }
  EXPECT_EQ(wal.records_appended(), 100u);
  EXPECT_EQ(wal.syncs_issued(), 0u);  // All deferred into the window.
  EXPECT_EQ(wal.unsynced_records(), 100u);
  // The explicit barrier pays one sync for the whole batch.
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.syncs_issued(), 1u);
  EXPECT_EQ(wal.unsynced_records(), 0u);
  ASSERT_TRUE(wal.Sync().ok());        // Nothing pending: no-op.
  EXPECT_EQ(wal.syncs_issued(), 1u);
}

TEST(WalTest, GroupCommitWindowExpiryTriggersSync) {
  TempDir dir("wal6");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir.file("t.wal")).ok());
  wal.set_group_commit_window_micros(1'000);  // 1 ms window.
  ASSERT_TRUE(
      wal.Append(WalRecordType::kInsert, "a", /*sync=*/true).ok());
  // Wait past the window: the next sync-requested append must flush
  // the batch (itself included).
  RealClock clock;
  clock.SleepForMicros(2'000);
  ASSERT_TRUE(
      wal.Append(WalRecordType::kInsert, "b", /*sync=*/true).ok());
  EXPECT_GE(wal.syncs_issued(), 1u);
  EXPECT_EQ(wal.unsynced_records(), 0u);
}

TEST(WalTest, CloseFlushesDeferredGroupCommit) {
  TempDir dir("wal7");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir.file("t.wal")).ok());
  wal.set_group_commit_window_micros(60'000'000);
  ASSERT_TRUE(
      wal.Append(WalRecordType::kInsert, "x", /*sync=*/true).ok());
  EXPECT_EQ(wal.unsynced_records(), 1u);
  ASSERT_TRUE(wal.Close().ok());  // Acknowledged records hit disk.
  // Reopen: the record survived (and replay sees it intact).
  Wal reopened;
  ASSERT_TRUE(reopened.Open(dir.file("t.wal")).ok());
  int count = 0;
  ASSERT_TRUE(reopened
                  .Replay([&](WalRecordType, std::string_view) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 1);
}

TEST(WalTest, ZeroWindowSyncsEveryRecord) {
  TempDir dir("wal8");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir.file("t.wal")).ok());
  // Default window (0): seed behavior, one fdatasync per record.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(wal.Append(WalRecordType::kInsert, "r", /*sync=*/true)
                    .ok());
  }
  EXPECT_EQ(wal.syncs_issued(), 5u);
  EXPECT_EQ(wal.unsynced_records(), 0u);
}

// ---------- Table ----------

Schema MovieSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"title", ColumnType::kString},
                 {"gross", ColumnType::kDouble}});
}

TEST(TableTest, CrudLifecycle) {
  TempDir dir("tbl1");
  auto table = Table::Create(dir.path(), "movies", MovieSchema(), 0);
  ASSERT_TRUE(table.ok());
  Table& t = **table;
  ASSERT_TRUE(
      t.Insert({Value(int64_t{1}), Value("Spider-Man"), Value(403.7)}).ok());
  ASSERT_TRUE(
      t.Insert({Value(int64_t{2}), Value("Signs"), Value(228.0)}).ok());

  auto row = t.GetByKey(1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsString(), "Spider-Man");

  ASSERT_TRUE(
      t.UpdateByKey(2, {Value(int64_t{2}), Value("Signs"), Value(229.0)})
          .ok());
  EXPECT_EQ(t.GetByKey(2)->at(2).AsDouble(), 229.0);

  ASSERT_TRUE(t.DeleteByKey(1).ok());
  EXPECT_TRUE(t.GetByKey(1).status().IsNotFound());
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(TableTest, DuplicateKeyRejected) {
  TempDir dir("tbl2");
  auto table = Table::Create(dir.path(), "m", MovieSchema(), 0);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(
      (*table)->Insert({Value(int64_t{1}), Value("a"), Value(1.0)}).ok());
  EXPECT_EQ(
      (*table)->Insert({Value(int64_t{1}), Value("b"), Value(2.0)}).code(),
      StatusCode::kAlreadyExists);
}

TEST(TableTest, PkMustBeInt) {
  TempDir dir("tbl3");
  EXPECT_FALSE(Table::Create(dir.path(), "m", MovieSchema(), 1).ok());
  EXPECT_FALSE(Table::Create(dir.path(), "m", MovieSchema(), 7).ok());
}

TEST(TableTest, UpdateCannotChangePk) {
  TempDir dir("tbl4");
  auto table = Table::Create(dir.path(), "m", MovieSchema(), 0);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(
      (*table)->Insert({Value(int64_t{1}), Value("a"), Value(1.0)}).ok());
  EXPECT_TRUE((*table)
                  ->UpdateByKey(1, {Value(int64_t{9}), Value("a"),
                                    Value(1.0)})
                  .IsInvalidArgument());
}

TEST(TableTest, ScanRangeInKeyOrder) {
  TempDir dir("tbl5");
  auto table = Table::Create(dir.path(), "m", MovieSchema(), 0);
  ASSERT_TRUE(table.ok());
  for (int64_t k : {5, 1, 9, 3, 7}) {
    ASSERT_TRUE((*table)
                    ->Insert({Value(k), Value("t" + std::to_string(k)),
                              Value(0.0)})
                    .ok());
  }
  std::vector<int64_t> keys;
  ASSERT_TRUE((*table)
                  ->ScanRange(2, 8,
                              [&](const Row& row) {
                                keys.push_back(row[0].AsInt());
                                return Status::OK();
                              })
                  .ok());
  EXPECT_EQ(keys, (std::vector<int64_t>{3, 5, 7}));
}

TEST(TableTest, WalRecoveryAfterCrash) {
  TempDir dir("tbl6");
  {
    auto table = Table::Create(dir.path(), "m", MovieSchema(), 0);
    ASSERT_TRUE(table.ok());
    for (int64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE((*table)
                      ->Insert({Value(k), Value("m" + std::to_string(k)),
                                Value(k * 1.5)})
                      .ok());
    }
    ASSERT_TRUE((*table)->DeleteByKey(50).ok());
    ASSERT_TRUE((*table)
                    ->UpdateByKey(60, {Value(int64_t{60}), Value("updated"),
                                       Value(0.0)})
                    .ok());
    // "Crash": drop the table object without checkpointing. The
    // destructor flushes pools, so simulate harder by copying the wal
    // aside... instead we simply rely on wal replay being idempotent:
    // zero out nothing and reopen.
  }
  auto table = Table::Open(dir.path(), "m", MovieSchema(), 0);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 99u);
  EXPECT_TRUE((*table)->GetByKey(50).status().IsNotFound());
  EXPECT_EQ((*table)->GetByKey(60)->at(1).AsString(), "updated");
}

TEST(TableTest, WalRecoveryWithUnflushedPool) {
  TempDir dir("tbl7");
  {
    // Tiny pools force evictions mid-stream; destructor flush is
    // prevented by process semantics in a real crash, but replay must
    // still be correct over whatever prefix reached disk.
    TableOptions opts;
    opts.heap_pool_pages = 2;
    opts.index_pool_pages = 4;
    auto table = Table::Create(dir.path(), "m", MovieSchema(), 0, opts);
    ASSERT_TRUE(table.ok());
    for (int64_t k = 0; k < 500; ++k) {
      ASSERT_TRUE((*table)
                      ->Insert({Value(k), Value(std::string(40, 'x')),
                                Value(1.0)})
                      .ok());
    }
  }
  auto table = Table::Open(dir.path(), "m", MovieSchema(), 0);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 500u);
  for (int64_t k = 0; k < 500; k += 97) {
    EXPECT_TRUE((*table)->GetByKey(k).ok()) << k;
  }
}

TEST(TableTest, CheckpointTruncatesWal) {
  TempDir dir("tbl8");
  auto table = Table::Create(dir.path(), "m", MovieSchema(), 0);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(
      (*table)->Insert({Value(int64_t{1}), Value("a"), Value(1.0)}).ok());
  ASSERT_TRUE((*table)->Checkpoint().ok());
  std::error_code ec;
  auto size = fs::file_size(dir.path() + "/m.wal", ec);
  ASSERT_FALSE(ec);
  EXPECT_EQ(size, 0u);
  // Data survives a reopen with the empty wal.
  table->reset();
  auto reopened = Table::Open(dir.path(), "m", MovieSchema(), 0);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->GetByKey(1).ok());
}

// ---------- Database ----------

TEST(DatabaseTest, CreateGetListDrop) {
  TempDir dir("db1");
  auto db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok());
  auto t = (*db)->CreateTable("movies", MovieSchema(), "id");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE((*db)->GetTable("movies").ok());
  EXPECT_TRUE((*db)->GetTable("nope").status().IsNotFound());
  EXPECT_EQ((*db)->ListTables(), std::vector<std::string>{"movies"});
  EXPECT_EQ((*db)->CreateTable("movies", MovieSchema(), "id").status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE((*db)->DropTable("movies").ok());
  EXPECT_TRUE((*db)->GetTable("movies").status().IsNotFound());
  EXPECT_TRUE((*db)->DropTable("movies").IsNotFound());
}

TEST(DatabaseTest, CatalogPersistsAcrossReopen) {
  TempDir dir("db2");
  {
    auto db = Database::Open(dir.path());
    ASSERT_TRUE(db.ok());
    auto t = (*db)->CreateTable("movies", MovieSchema(), "id");
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(
        (*t)->Insert({Value(int64_t{7}), Value("Ice Age"), Value(176.4)})
            .ok());
    ASSERT_TRUE((*db)->CheckpointAll().ok());
  }
  auto db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok());
  auto t = (*db)->GetTable("movies");
  ASSERT_TRUE(t.ok());
  auto row = (*t)->GetByKey(7);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsString(), "Ice Age");
}

TEST(DatabaseTest, CreateTableWithBadPkColumn) {
  TempDir dir("db3");
  auto db = Database::Open(dir.path());
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)
                  ->CreateTable("t", MovieSchema(), "does_not_exist")
                  .status()
                  .IsNotFound());
  EXPECT_FALSE((*db)->CreateTable("t2", MovieSchema(), "title").ok());
}

}  // namespace
}  // namespace tarpit
