#include <cmath>
#include <filesystem>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/zipf.h"
#include "stats/count_cache.h"
#include "stats/count_tracker.h"
#include "stats/rank_index.h"
#include "stats/synopsis.h"
#include "storage/table.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

// ---------- TreapRankIndex ----------

TEST(TreapRankIndexTest, RanksByCountDescending) {
  TreapRankIndex idx;
  idx.UpdateCount(100, 0, false, 5.0);
  idx.UpdateCount(200, 0, false, 9.0);
  idx.UpdateCount(300, 0, false, 1.0);
  EXPECT_EQ(idx.NumTracked(), 3u);
  EXPECT_EQ(idx.Rank(200, 9.0), 1u);
  EXPECT_EQ(idx.Rank(100, 5.0), 2u);
  EXPECT_EQ(idx.Rank(300, 1.0), 3u);
  EXPECT_EQ(idx.MaxCount(), 9.0);
}

TEST(TreapRankIndexTest, UpdatePromotesKey) {
  TreapRankIndex idx;
  idx.UpdateCount(1, 0, false, 1.0);
  idx.UpdateCount(2, 0, false, 2.0);
  idx.UpdateCount(3, 0, false, 3.0);
  EXPECT_EQ(idx.Rank(1, 1.0), 3u);
  idx.UpdateCount(1, 1.0, true, 10.0);
  EXPECT_EQ(idx.Rank(1, 10.0), 1u);
  EXPECT_EQ(idx.Rank(3, 3.0), 2u);
  EXPECT_EQ(idx.NumTracked(), 3u);
  EXPECT_EQ(idx.MaxCount(), 10.0);
}

TEST(TreapRankIndexTest, TiesBrokenByKey) {
  TreapRankIndex idx;
  idx.UpdateCount(7, 0, false, 4.0);
  idx.UpdateCount(3, 0, false, 4.0);
  EXPECT_EQ(idx.Rank(3, 4.0), 1u);  // Smaller key ranks first on ties.
  EXPECT_EQ(idx.Rank(7, 4.0), 2u);
}

TEST(TreapRankIndexTest, RescalePreservesOrder) {
  TreapRankIndex idx;
  idx.UpdateCount(1, 0, false, 2.0);
  idx.UpdateCount(2, 0, false, 8.0);
  idx.Rescale(0.5);
  EXPECT_EQ(idx.Rank(2, 4.0), 1u);
  EXPECT_EQ(idx.Rank(1, 1.0), 2u);
  EXPECT_EQ(idx.MaxCount(), 4.0);
}

TEST(TreapRankIndexTest, LargeRandomAgainstBruteForce) {
  TreapRankIndex idx;
  Rng rng(5);
  std::vector<std::pair<int64_t, double>> truth;  // key -> count.
  for (int64_t k = 0; k < 500; ++k) {
    double c = 1.0 + static_cast<double>(rng.Uniform(1000));
    idx.UpdateCount(k, 0, false, c);
    truth.emplace_back(k, c);
  }
  // Random promotions.
  for (int i = 0; i < 2000; ++i) {
    size_t j = rng.Uniform(truth.size());
    double old_c = truth[j].second;
    double new_c = old_c + 1.0 + static_cast<double>(rng.Uniform(50));
    idx.UpdateCount(truth[j].first, old_c, true, new_c);
    truth[j].second = new_c;
  }
  auto brute_rank = [&](int64_t key, double count) {
    uint64_t rank = 1;
    for (const auto& [k, c] : truth) {
      if (c > count || (c == count && k < key)) ++rank;
    }
    return rank;
  };
  for (int i = 0; i < 100; ++i) {
    size_t j = rng.Uniform(truth.size());
    EXPECT_EQ(idx.Rank(truth[j].first, truth[j].second),
              brute_rank(truth[j].first, truth[j].second))
        << "key " << truth[j].first;
  }
}

// ---------- BucketRankIndex ----------

TEST(BucketRankIndexTest, ApproximateRankWithinBucketError) {
  BucketRankIndex idx(1.25);
  // Counts 2^0 .. 2^9: all in distinct buckets, so ranks are exact.
  for (int64_t k = 0; k < 10; ++k) {
    idx.UpdateCount(k, 0, false, std::pow(2.0, k));
  }
  EXPECT_EQ(idx.NumTracked(), 10u);
  EXPECT_EQ(idx.MaxCount(), 512.0);
  EXPECT_EQ(idx.Rank(9, 512.0), 1u);
  EXPECT_EQ(idx.Rank(0, 1.0), 10u);
}

TEST(BucketRankIndexTest, RankErrorBoundedByBucketPopulation) {
  BucketRankIndex idx(2.0);
  // 100 keys with count 10 (same bucket), one key with count 1000.
  for (int64_t k = 0; k < 100; ++k) {
    idx.UpdateCount(k, 0, false, 10.0);
  }
  idx.UpdateCount(999, 0, false, 1000.0);
  EXPECT_EQ(idx.Rank(999, 1000.0), 1u);
  uint64_t r = idx.Rank(50, 10.0);
  // True rank is somewhere in [2, 101]; the estimate is mid-bucket.
  EXPECT_GE(r, 2u);
  EXPECT_LE(r, 101u);
}

TEST(BucketRankIndexTest, UpdateMovesBetweenBuckets) {
  BucketRankIndex idx(2.0);
  idx.UpdateCount(1, 0, false, 1.0);
  idx.UpdateCount(2, 0, false, 100.0);
  EXPECT_GT(idx.Rank(1, 1.0), idx.Rank(2, 100.0));
  idx.UpdateCount(1, 1.0, true, 1000.0);
  EXPECT_LT(idx.Rank(1, 1000.0), idx.Rank(2, 100.0));
  EXPECT_EQ(idx.NumTracked(), 2u);
}

TEST(BucketRankIndexTest, RescaleKeepsAssignments) {
  BucketRankIndex idx(2.0);
  idx.UpdateCount(1, 0, false, 8.0);
  idx.UpdateCount(2, 0, false, 64.0);
  idx.Rescale(1.0 / 16.0);
  // Counts are now conceptually 0.5 and 4; updates with rescaled counts
  // must not corrupt bucket membership.
  idx.UpdateCount(1, 0.5, true, 1.0);
  EXPECT_LT(idx.Rank(2, 4.0), idx.Rank(1, 1.0));
  EXPECT_NEAR(idx.MaxCount(), 4.0, 1e-12);
}

// ---------- CountTracker ----------

TEST(CountTrackerTest, NoDecayCountsAreExact) {
  CountTracker tracker(100, 1.0);
  for (int i = 0; i < 10; ++i) tracker.Record(5);
  for (int i = 0; i < 3; ++i) tracker.Record(7);
  EXPECT_DOUBLE_EQ(tracker.Count(5), 10.0);
  EXPECT_DOUBLE_EQ(tracker.Count(7), 3.0);
  EXPECT_DOUBLE_EQ(tracker.Count(42), 0.0);
  EXPECT_EQ(tracker.total_requests(), 13u);
  EXPECT_EQ(tracker.distinct_seen(), 2u);

  PopularityStats s5 = tracker.Stats(5);
  EXPECT_EQ(s5.rank, 1u);
  EXPECT_DOUBLE_EQ(s5.max_count, 10.0);
  EXPECT_DOUBLE_EQ(s5.total_count, 13.0);
  EXPECT_EQ(tracker.Stats(7).rank, 2u);
}

TEST(CountTrackerTest, UnseenKeyGetsUniverseRank) {
  CountTracker tracker(12179, 1.0);
  tracker.Record(1);
  PopularityStats s = tracker.Stats(999);
  EXPECT_EQ(s.rank, 12179u);
  EXPECT_DOUBLE_EQ(s.count, 0.0);
}

TEST(CountTrackerTest, DecayShiftsRankToRecentKeys) {
  // Key 1 gets 100 early requests; key 2 gets 20 recent ones. With
  // strong decay the recent key must outrank the stale one.
  CountTracker decayed(10, 1.2);
  CountTracker undecayed(10, 1.0);
  for (int i = 0; i < 100; ++i) {
    decayed.Record(1);
    undecayed.Record(1);
  }
  for (int i = 0; i < 20; ++i) {
    decayed.Record(2);
    undecayed.Record(2);
  }
  EXPECT_EQ(undecayed.Stats(1).rank, 1u);
  EXPECT_EQ(undecayed.Stats(2).rank, 2u);
  EXPECT_EQ(decayed.Stats(2).rank, 1u);
  EXPECT_EQ(decayed.Stats(1).rank, 2u);
}

TEST(CountTrackerTest, DecaySemanticsMatchExplicitDiscounting) {
  // With delta = 2, after each request every older count halves
  // relative to the new one. Two requests to A then one to B:
  // A's normalized count = 1/4 + 1/2 ... verify against the closed
  // form: count_A = delta^-2 + delta^-1 relative to the last request.
  CountTracker tracker(10, 2.0);
  tracker.Record(1);
  tracker.Record(1);
  tracker.Record(2);
  const double expected_a = std::pow(2.0, -2) + std::pow(2.0, -1);
  const double expected_b = 1.0;
  EXPECT_NEAR(tracker.Count(1) / tracker.Count(2),
              expected_a / expected_b, 1e-12);
}

TEST(CountTrackerTest, ApplyDecayFactorDiscountsEverything) {
  CountTracker tracker(10, 1.0);
  tracker.Record(1);
  tracker.Record(1);
  tracker.ApplyDecayFactor(4.0);
  EXPECT_NEAR(tracker.Count(1), 0.5, 1e-12);
  tracker.Record(2);
  EXPECT_NEAR(tracker.Count(2), 1.0, 1e-12);
  // Rank still favors key 2 now? count 1 = 0.5 < 1.0.
  EXPECT_EQ(tracker.Stats(2).rank, 1u);
}

TEST(CountTrackerTest, RenormalizationPreservesRatiosAndRanks) {
  // Huge decay rate forces renormalization quickly.
  CountTracker tracker(10, 10.0);
  for (int i = 0; i < 50; ++i) tracker.Record(1);
  for (int i = 0; i < 60; ++i) tracker.Record(2);
  EXPECT_GT(tracker.renormalizations(), 0u);
  EXPECT_EQ(tracker.Stats(2).rank, 1u);
  EXPECT_EQ(tracker.Stats(1).rank, 2u);
  // Most recent request dominates: count(2) close to
  // 1 + 1/10 + 1/100 + ... = 10/9.
  EXPECT_NEAR(tracker.Count(2), 10.0 / 9.0, 1e-6);
}

TEST(CountTrackerTest, LearnsZipfOrderingFromSamples) {
  const uint64_t n = 200;
  CountTracker tracker(n, 1.0);
  ZipfDistribution zipf(n, 1.2);
  Rng rng(17);
  for (int i = 0; i < 100000; ++i) {
    tracker.Record(static_cast<int64_t>(zipf.Sample(&rng)));
  }
  // The top true ranks should be learned correctly.
  for (int64_t k = 1; k <= 3; ++k) {
    EXPECT_LE(tracker.Stats(k).rank, static_cast<uint64_t>(k + 1))
        << "true rank " << k;
  }
  EXPECT_GT(tracker.Stats(190).rank, 50u);
}

// ---------- CountCache ----------

class CountCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_cc_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    Schema schema(
        {{"key", ColumnType::kInt64}, {"cnt", ColumnType::kDouble}});
    auto table = Table::Create(dir_.string(), "counts", schema, 0);
    ASSERT_TRUE(table.ok());
    table_ = std::move(*table);
  }
  void TearDown() override {
    table_.reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
  std::unique_ptr<Table> table_;
};

TEST_F(CountCacheTest, AddAndGetInMemory) {
  CountCache cache(table_.get(), 16);
  ASSERT_TRUE(cache.Add(1, 2.0).ok());
  ASSERT_TRUE(cache.Add(1, 3.0).ok());
  EXPECT_DOUBLE_EQ(*cache.Get(1), 5.0);
  EXPECT_DOUBLE_EQ(*cache.Get(99), 0.0);  // Never counted.
  // Nothing written back yet for key 1 (write-behind).
  EXPECT_EQ(cache.backing_writes(), 0u);
}

TEST_F(CountCacheTest, EvictionWritesBackDirtyEntries) {
  CountCache cache(table_.get(), 2);
  ASSERT_TRUE(cache.Add(1, 1.0).ok());
  ASSERT_TRUE(cache.Add(2, 2.0).ok());
  ASSERT_TRUE(cache.Add(3, 3.0).ok());  // Evicts key 1.
  EXPECT_GE(cache.backing_writes(), 1u);
  // Key 1's value survives in the backing table and reloads on miss.
  EXPECT_DOUBLE_EQ(*cache.Get(1), 1.0);
}

TEST_F(CountCacheTest, FlushAllPersistsEverything) {
  CountCache cache(table_.get(), 16);
  ASSERT_TRUE(cache.Add(1, 10.0).ok());
  ASSERT_TRUE(cache.Add(2, 20.0).ok());
  ASSERT_TRUE(cache.FlushAll().ok());
  auto row1 = table_->GetByKey(1);
  ASSERT_TRUE(row1.ok());
  EXPECT_DOUBLE_EQ((*row1)[1].AsDouble(), 10.0);
  auto row2 = table_->GetByKey(2);
  ASSERT_TRUE(row2.ok());
  EXPECT_DOUBLE_EQ((*row2)[1].AsDouble(), 20.0);
}

TEST_F(CountCacheTest, HitMissAccounting) {
  CountCache cache(table_.get(), 16);
  ASSERT_TRUE(cache.Add(1, 1.0).ok());  // Miss.
  ASSERT_TRUE(cache.Add(1, 1.0).ok());  // Hit.
  ASSERT_TRUE(cache.Get(1).ok());       // Hit.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 2u);
}

TEST_F(CountCacheTest, LruOrderEvictsColdest) {
  CountCache cache(table_.get(), 2);
  ASSERT_TRUE(cache.Add(1, 1.0).ok());
  ASSERT_TRUE(cache.Add(2, 2.0).ok());
  ASSERT_TRUE(cache.Get(1).ok());       // Touch 1; 2 becomes coldest.
  ASSERT_TRUE(cache.Add(3, 3.0).ok());  // Evicts 2.
  EXPECT_EQ(cache.size(), 2u);
  uint64_t misses_before = cache.misses();
  ASSERT_TRUE(cache.Get(1).ok());  // Still cached.
  EXPECT_EQ(cache.misses(), misses_before);
  ASSERT_TRUE(cache.Get(2).ok());  // Reload.
  EXPECT_EQ(cache.misses(), misses_before + 1);
  EXPECT_DOUBLE_EQ(*cache.Get(2), 2.0);
}

// ---------- CountingSample ----------

TEST(CountingSampleTest, TracksEverythingBelowCapacity) {
  CountingSample sample(100);
  for (int64_t k = 0; k < 50; ++k) {
    sample.Observe(k);
    sample.Observe(k);
  }
  EXPECT_EQ(sample.size(), 50u);
  EXPECT_DOUBLE_EQ(sample.threshold(), 1.0);
  for (int64_t k = 0; k < 50; ++k) {
    EXPECT_DOUBLE_EQ(sample.EstimatedCount(k), 2.0);
  }
  EXPECT_DOUBLE_EQ(sample.EstimatedCount(999), 0.0);
}

TEST(CountingSampleTest, ThresholdRisesUnderPressure) {
  CountingSample sample(10);
  for (int64_t k = 0; k < 1000; ++k) sample.Observe(k);
  EXPECT_LE(sample.size(), 10u);
  EXPECT_GT(sample.threshold(), 1.0);
}

TEST(CountingSampleTest, HotKeysSurviveAndEstimatesTrack) {
  const uint64_t n = 1000;
  CountingSample sample(50, /*seed=*/3);
  ZipfDistribution zipf(n, 1.3);
  Rng rng(21);
  const int draws = 200000;
  std::vector<int> truth(n + 1, 0);
  for (int i = 0; i < draws; ++i) {
    int64_t k = static_cast<int64_t>(zipf.Sample(&rng));
    ++truth[k];
    sample.Observe(k);
  }
  // The hottest keys must be tracked, with estimates within a factor
  // of ~2 of the truth.
  for (int64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(sample.Tracks(k)) << k;
    double est = sample.EstimatedCount(k);
    EXPECT_GT(est, truth[k] * 0.5) << k;
    EXPECT_LT(est, truth[k] * 2.0) << k;
  }
  EXPECT_EQ(sample.observed(), static_cast<uint64_t>(draws));
}

}  // namespace
}  // namespace tarpit
