// Targeted coverage of corner cases across modules: rendering paths,
// counters, boundary values, and less-traveled error branches.

#include <cmath>
#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/hyperloglog.h"
#include "common/stats.h"
#include "common/zipf.h"
#include "core/analytic_zipf_delay.h"
#include "core/combined_delay.h"
#include "defense/identity.h"
#include "defense/registration_limiter.h"
#include "sql/executor.h"
#include "storage/database.h"
#include "storage/disk_manager.h"
#include "workload/mixed_workload.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

// ---------- Rendering / ToString paths ----------

TEST(RenderingTest, QueryResultToStringSelect) {
  QueryResult r;
  r.columns = {"id", "name"};
  r.rows = {{Value(int64_t{1}), Value("a")},
            {Value(int64_t{2}), Value::Null()}};
  const std::string s = r.ToString();
  EXPECT_NE(s.find("id | name"), std::string::npos);
  EXPECT_NE(s.find("1 | 'a'"), std::string::npos);
  EXPECT_NE(s.find("2 | NULL"), std::string::npos);
  EXPECT_NE(s.find("(2 rows)"), std::string::npos);
}

TEST(RenderingTest, QueryResultToStringMutation) {
  QueryResult r;
  r.affected = 7;
  EXPECT_EQ(r.ToString(), "(7 rows affected)");
}

TEST(RenderingTest, ExprToStringForms) {
  auto e = Expr::MakeBinary(
      BinaryOp::kAnd,
      Expr::MakeBinary(BinaryOp::kLtEq, Expr::MakeColumn("a"),
                       Expr::MakeLiteral(Value(int64_t{5}))),
      Expr::MakeNot(Expr::MakeBinary(BinaryOp::kEq,
                                     Expr::MakeColumn("b"),
                                     Expr::MakeLiteral(Value("x")))));
  EXPECT_EQ(e->ToString(), "((a <= 5) AND (NOT (b = 'x')))");
  auto in = Expr::MakeIn(Expr::MakeColumn("c"),
                         {Value(int64_t{1}), Value(int64_t{2})});
  EXPECT_EQ(in->ToString(), "(c IN (1, 2))");
}

TEST(RenderingTest, StatusCodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kRateLimited), "RateLimited");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented),
            "Unimplemented");
}

// ---------- Value boundaries ----------

TEST(ValueEdgeTest, Int64Extremes) {
  Value lo(INT64_MIN), hi(INT64_MAX);
  EXPECT_EQ(lo.Compare(hi), -1);
  EXPECT_EQ(lo.ToString(), std::to_string(INT64_MIN));
}

TEST(ValueEdgeTest, DoubleSpecials) {
  Value inf(std::numeric_limits<double>::infinity());
  Value big(1e308);
  EXPECT_EQ(big.Compare(inf), -1);
  // Documented quirk: Compare's three-way fallback treats unordered
  // IEEE comparisons (NaN) as ties. NaN should never be stored; the
  // statement template refuses to render non-finite doubles.
  Value nan_v(std::nan(""));
  EXPECT_EQ(nan_v.Compare(nan_v), 0);
}

TEST(ValueEdgeTest, EmptyAndEmbeddedQuoteStrings) {
  Value empty("");
  EXPECT_EQ(empty.ToString(), "''");
  Value quoted("a'b");
  EXPECT_EQ(quoted.AsString(), "a'b");
}

// ---------- Schema with wide rows (multi-byte null bitmap) ----------

TEST(SchemaEdgeTest, NineColumnsUseTwoBitmapBytes) {
  std::vector<Column> cols;
  for (int i = 0; i < 9; ++i) {
    cols.push_back({"c" + std::to_string(i), ColumnType::kInt64});
  }
  Schema schema(cols);
  Row row(9, Value::Null());
  row[0] = Value(int64_t{1});
  row[8] = Value(int64_t{9});  // Bit 8 lives in the second byte.
  std::string bytes;
  ASSERT_TRUE(schema.EncodeRow(row, &bytes).ok());
  auto decoded = schema.DecodeRow(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].AsInt(), 1);
  EXPECT_TRUE((*decoded)[4].is_null());
  EXPECT_EQ((*decoded)[8].AsInt(), 9);
}

// ---------- DiskManager counters & misc ----------

TEST(DiskManagerEdgeTest, CountersTrackIo) {
  auto dir = fs::temp_directory_path() /
             ("tarpit_edge_dm_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  DiskManager dm;
  ASSERT_TRUE(dm.Open((dir / "x.db").string()).ok());
  char buf[kPageSize] = {};
  ASSERT_TRUE(dm.AllocatePage().ok());
  ASSERT_TRUE(dm.WritePage(0, buf).ok());
  ASSERT_TRUE(dm.ReadPage(0, buf).ok());
  EXPECT_GE(dm.writes(), 2u);  // Allocation zero-fill + explicit write.
  EXPECT_EQ(dm.reads(), 1u);
  EXPECT_TRUE(dm.Sync().ok());
  // Double open is refused.
  EXPECT_FALSE(dm.Open((dir / "y.db").string()).ok());
  fs::remove_all(dir);
}

// ---------- AnalyticZipfDelayPolicy corner params ----------

TEST(AnalyticEdgeTest, CapRankBoundaries) {
  AnalyticZipfParams p;
  p.n = 100;
  p.alpha = 1.0;
  p.beta = 0.0;
  p.fmax = 1.0;
  // Cap so large nothing is capped: CapRank == n.
  p.bounds = {0.0, 1e12};
  EXPECT_EQ(AnalyticZipfDelayPolicy(p).CapRank(), 100u);
  // Cap so small everything is capped: CapRank == 1.
  p.bounds = {0.0, 1e-9};
  EXPECT_EQ(AnalyticZipfDelayPolicy(p).CapRank(), 1u);
}

// ---------- CombinedDelayPolicy naming ----------

TEST(CombinedEdgeTest, NameReflectsParts) {
  AnalyticZipfParams p;
  p.n = 10;
  p.fmax = 1.0;
  AnalyticZipfDelayPolicy a(p), b(p);
  CombinedDelayPolicy max_combined(&a, &b, CombineMode::kMax);
  EXPECT_EQ(max_combined.name(),
            "combined-max(analytic-zipf,analytic-zipf)");
  EXPECT_EQ(max_combined.mode(), CombineMode::kMax);
}

// ---------- RegistrationLimiter retry arithmetic ----------

TEST(RegistrationEdgeTest, RetryAfterCountsDown) {
  RegistrationLimiter limiter(100.0, 1.0);
  ASSERT_TRUE(limiter.Register(1, 0.0).ok());
  EXPECT_NEAR(limiter.RetryAfter(0.0), 100.0, 1e-6);
  EXPECT_NEAR(limiter.RetryAfter(60.0), 40.0, 1e-6);
  EXPECT_EQ(limiter.RetryAfter(100.0), 0.0);
}

// ---------- HyperLogLog precision bounds ----------

TEST(HllEdgeTest, MinAndMaxPrecision) {
  HyperLogLog small(4);
  HyperLogLog large(16);
  for (int64_t k = 0; k < 2000; ++k) {
    small.Add(k);
    large.Add(k);
  }
  // Precision 4 (16 registers): ~26% error allowed; precision 16: ~1%.
  EXPECT_NEAR(small.Estimate(), 2000, 2000 * 0.6);
  EXPECT_NEAR(large.Estimate(), 2000, 2000 * 0.03);
}

// ---------- Ipv4 formatting corners ----------

TEST(Ipv4EdgeTest, Boundaries) {
  EXPECT_EQ(Ipv4ToString(0), "0.0.0.0");
  EXPECT_EQ(Ipv4ToString(0xFFFFFFFFu), "255.255.255.255");
  EXPECT_EQ(Ipv4FromString("255.255.255.255"), 0xFFFFFFFFu);
  EXPECT_EQ(Ipv4FromString("1.2.3"), 0u);
  EXPECT_EQ(Ipv4FromString("1.2.3.4.5"), 0u);
}

// ---------- MixedWorkload ----------

TEST(MixedWorkloadTest, TimeOrderedAndRateAccurate) {
  MixedWorkloadConfig config;
  config.n = 100;
  config.queries_per_second = 10.0;
  config.updates_per_second = 5.0;
  config.duration_seconds = 1000.0;
  auto events = GenerateMixedWorkload(config);
  uint64_t queries = 0, upd = 0;
  double prev = -1;
  for (const MixedEvent& e : events) {
    EXPECT_GE(e.time_seconds, prev);
    EXPECT_LT(e.time_seconds, 1000.0);
    EXPECT_GE(e.key, 1);
    EXPECT_LE(e.key, 100);
    prev = e.time_seconds;
    if (e.is_update) {
      ++upd;
    } else {
      ++queries;
    }
  }
  // Poisson counts: ~10000 and ~5000 within 5 sigma.
  EXPECT_NEAR(queries, 10'000, 500);
  EXPECT_NEAR(upd, 5'000, 360);
}

TEST(MixedWorkloadTest, SkewAndZeroRateSides) {
  MixedWorkloadConfig config;
  config.n = 1000;
  config.queries_per_second = 0.0;  // Updates only.
  config.updates_per_second = 20.0;
  config.update_alpha = 1.5;
  config.duration_seconds = 500.0;
  auto events = GenerateMixedWorkload(config);
  ASSERT_FALSE(events.empty());
  uint64_t head = 0;
  for (const MixedEvent& e : events) {
    EXPECT_TRUE(e.is_update);
    if (e.key <= 10) ++head;
  }
  // Zipf(1.5): the top-10 keys draw well over half the updates.
  EXPECT_GT(head, events.size() / 2);
}

// ---------- Database drop with secondary index ----------

TEST(DatabaseEdgeTest, DropTableWithIndexCleansCatalog) {
  auto dir = fs::temp_directory_path() /
             ("tarpit_edge_db_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    auto db = Database::Open(dir.string());
    ASSERT_TRUE(db.ok());
    Executor exec(db->get());
    ASSERT_TRUE(exec.ExecuteSql("CREATE TABLE t (id INT PRIMARY KEY, "
                                "c TEXT)")
                    .ok());
    ASSERT_TRUE(exec.ExecuteSql("CREATE INDEX ON t (c)").ok());
    ASSERT_TRUE((*db)->DropTable("t").ok());
  }
  // Reopen must not trip over a dangling catalog entry.
  auto db = Database::Open(dir.string());
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->ListTables().empty());
  fs::remove_all(dir);
}

// ---------- Zipf sampler extreme alpha ----------

TEST(ZipfEdgeTest, VeryHighSkewConcentrates) {
  ZipfDistribution z(1000, 4.0);
  Rng rng(3);
  int head = 0;
  for (int i = 0; i < 10000; ++i) {
    if (z.Sample(&rng) == 1) ++head;
  }
  // At alpha=4, rank 1 has ~92% of the mass.
  EXPECT_GT(head, 8800);
}

TEST(ZipfEdgeTest, NearOneAlphaIsStable) {
  // Values adjacent to the alpha==1 special case must not blow up.
  for (double alpha : {0.999, 1.001}) {
    ZipfDistribution z(1000, alpha);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
      uint64_t s = z.Sample(&rng);
      ASSERT_GE(s, 1u);
      ASSERT_LE(s, 1000u);
    }
    double total = 0;
    for (uint64_t i = 1; i <= 1000; ++i) total += z.Pmf(i);
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

// ---------- VirtualClock saturation behavior ----------

TEST(ClockEdgeTest, LargeAdvances) {
  VirtualClock clock;
  clock.SleepForMicros(static_cast<int64_t>(1e18));
  EXPECT_EQ(clock.NowMicros(), static_cast<int64_t>(1e18));
  EXPECT_NEAR(clock.NowSeconds(), 1e12, 1e6);
}

}  // namespace
}  // namespace tarpit
