#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"
#include "common/zipf.h"
#include "core/analytic_zipf_delay.h"
#include "sim/access_simulation.h"
#include "sim/adversary.h"
#include "sim/dynamic_simulation.h"
#include "sim/user_model.h"
#include "core/popularity_delay.h"
#include "stats/count_tracker.h"
#include "workload/key_generator.h"

namespace tarpit {
namespace {

TEST(AccessSimulationTest, LearnsAndSeparatesUserFromAdversary) {
  PopularityDelayParams params;
  params.scale = 0.01;
  params.bounds = {0.0, 10.0};
  AccessDelaySimulation sim(1000, 1.0, params);

  ZipfKeyGenerator gen(1000, 1.5);
  Rng rng(7);
  std::vector<int64_t> keys;
  for (int i = 0; i < 100000; ++i) keys.push_back(gen.Next(&rng));

  QuantileSketch user_delays;
  sim.ServeTrace(keys, &user_delays);

  const double median = user_delays.Median();
  const double adversary = sim.ExtractionDelayFrozen();
  EXPECT_GT(adversary, 1000.0 * median);
  // Virtual clock advanced by the total served delay.
  EXPECT_NEAR(sim.clock()->NowSeconds(),
              sim.engine()->total_delay_seconds(), 1.0);
}

TEST(AccessSimulationTest, FrozenDelaysCoverUniverse) {
  PopularityDelayParams params;
  params.bounds = {0.0, 10.0};
  AccessDelaySimulation sim(50, 1.0, params);
  sim.ServeRequest(1);
  auto delays = sim.FrozenDelays();
  ASSERT_EQ(delays.size(), 50u);
  // Key 1 was accessed, everything else pays the cap.
  EXPECT_LT(delays[0], 10.0);
  for (size_t i = 1; i < delays.size(); ++i) {
    EXPECT_EQ(delays[i], 10.0);
  }
  EXPECT_NEAR(sim.ExtractionDelayFrozen(),
              delays[0] + 49 * 10.0, 1e-9);
}

TEST(AccessSimulationTest, LiveExtractionDiffersFromFrozen) {
  PopularityDelayParams params;
  params.scale = 1.0;
  params.bounds = {0.0, 10.0};
  AccessDelaySimulation sim(100, 1.0, params);
  for (int i = 0; i < 100; ++i) sim.ServeRequest(1);
  const double frozen = sim.ExtractionDelayFrozen();
  const double live = sim.ExtractionDelayLive();
  // Live extraction's own accesses give each key count >= 1, so the
  // later keys cost scale/1 instead of the cap.
  EXPECT_LT(live, frozen);
}

TEST(AdversaryTest, SequentialExtractionAccumulates) {
  AnalyticZipfParams p;
  p.n = 100;
  p.alpha = 1.0;
  p.beta = 0.0;
  p.fmax = 1.0;
  p.bounds = {0.0, 1e9};
  AnalyticZipfDelayPolicy policy(p);
  ExtractionReport report = RunSequentialExtraction(policy, 100);
  ASSERT_EQ(report.completion_times.size(), 100u);
  // Total = sum i/100 = 5050/100 = 50.5.
  EXPECT_NEAR(report.total_delay_seconds, 50.5, 1e-9);
  // Completion times strictly increase.
  for (size_t i = 1; i < report.completion_times.size(); ++i) {
    EXPECT_GT(report.completion_times[i], report.completion_times[i - 1]);
  }
  EXPECT_NEAR(report.completion_times.back(),
              report.total_delay_seconds, 1e-9);
}

TEST(AdversaryTest, ParallelismDividesDelayButRegistrationRestoresIt) {
  AnalyticZipfParams p;
  p.n = 10000;
  p.alpha = 1.0;
  p.beta = 1.0;
  p.fmax = 1.0;
  p.bounds = {0.0, 10.0};
  AnalyticZipfDelayPolicy policy(p);

  ExtractionReport seq = RunSequentialExtraction(policy, p.n);
  // Free identities: 100-way parallelism cuts the attack ~100x.
  ParallelExtractionReport free_ids =
      RunParallelExtraction(policy, p.n, 100, 0.0);
  EXPECT_LT(free_ids.total_attack_seconds,
            seq.total_delay_seconds / 50.0);
  EXPECT_GT(free_ids.max_partition_delay_seconds,
            seq.total_delay_seconds / 150.0);

  // Rate-limited registration: choose t so amassing 100 identities
  // costs as much as the sequential attack (the paper's prescription).
  const double t_reg = seq.total_delay_seconds / 100.0;
  ParallelExtractionReport limited =
      RunParallelExtraction(policy, p.n, 100, t_reg);
  EXPECT_GT(limited.total_attack_seconds,
            seq.total_delay_seconds * 0.9);
}

TEST(AdversaryTest, SingleIdentityParallelEqualsSequential) {
  AnalyticZipfParams p;
  p.n = 500;
  p.alpha = 1.5;
  p.beta = 0.5;
  p.fmax = 1.0;
  p.bounds = {0.0, 10.0};
  AnalyticZipfDelayPolicy policy(p);
  ExtractionReport seq = RunSequentialExtraction(policy, p.n);
  ParallelExtractionReport par =
      RunParallelExtraction(policy, p.n, 1, 3600.0);
  EXPECT_NEAR(par.total_attack_seconds, seq.total_delay_seconds, 1e-9);
  EXPECT_EQ(par.registration_seconds, 0.0);
}

TEST(AdversaryTest, StorefrontBound) {
  StorefrontReport r = AnalyzeStorefront(10000, 100, 60.0);
  EXPECT_EQ(r.identities_needed, 100u);
  EXPECT_NEAR(r.registration_seconds, 99 * 60.0, 1e-9);
  StorefrontReport unlimited = AnalyzeStorefront(10000, 0, 60.0);
  EXPECT_EQ(unlimited.identities_needed, 1u);
}

TEST(DynamicSimulationTest, HigherSkewLowersStaleFraction) {
  // The Figure 6 shape: at modest skew nearly everything is stale;
  // at strong skew updates concentrate and the stale fraction falls.
  DynamicSimConfig config;
  config.n = 10'000;
  config.warmup_updates = 200'000;
  config.measured_queries = 2'000;
  config.updates_per_second = 100.0;
  // c = 2.0 makes S_max = (c/(1+alpha))^(1/alpha) exceed 1 at low skew
  // (everything stale), mirroring the paper's parameterization.
  config.delay.c = 2.0;
  config.delay.bounds = {0.0, 10.0};

  config.update_alpha = 0.5;
  DynamicSimResult low_skew = RunDynamicSimulation(config);
  config.update_alpha = 2.5;
  DynamicSimResult high_skew = RunDynamicSimulation(config);

  EXPECT_GT(low_skew.stale_fraction, 0.9);
  EXPECT_LT(high_skew.stale_fraction, low_skew.stale_fraction);
  // At high skew most tuples are rarely updated => they pay the cap =>
  // adversary delay approaches N * cap.
  EXPECT_GT(high_skew.adversary_delay_seconds,
            0.5 * 10.0 * static_cast<double>(config.n));
}

TEST(DynamicSimulationTest, MedianDelayRisesWithSkew) {
  // Figure 4: with uniform queries, higher update skew means the
  // typical (uniformly chosen) tuple is rarely updated and thus
  // expensive.
  DynamicSimConfig config;
  config.n = 10'000;
  config.warmup_updates = 200'000;
  config.measured_queries = 2'000;
  config.updates_per_second = 100.0;
  config.delay.c = 0.5;
  config.delay.bounds = {0.0, 10.0};

  config.update_alpha = 0.25;
  double low = RunDynamicSimulation(config).median_user_delay_seconds;
  config.update_alpha = 2.0;
  double high = RunDynamicSimulation(config).median_user_delay_seconds;
  EXPECT_GT(high, low);
}

TEST(DynamicSimulationTest, PoissonStalenessBoundedByDeterministic) {
  DynamicSimConfig config;
  config.n = 5'000;
  config.warmup_updates = 100'000;
  config.measured_queries = 500;
  config.updates_per_second = 50.0;
  config.update_alpha = 1.0;
  config.delay.c = 0.5;
  config.delay.bounds = {0.0, 10.0};
  DynamicSimResult r = RunDynamicSimulation(config);
  EXPECT_GE(r.stale_fraction, 0.0);
  EXPECT_LE(r.stale_fraction, 1.0);
  EXPECT_GE(r.expected_stale_fraction, 0.0);
  EXPECT_LE(r.expected_stale_fraction, 1.0);
}

TEST(UserModelTest, PopulationLearnsAndPacesItself) {
  CountTracker tracker(1000, 1.0);
  PopularityDelayParams params;
  params.scale = 0.01;
  params.bounds = {0.0, 10.0};
  PopularityDelayPolicy policy(&tracker, params);
  UserPopulationConfig config;
  config.num_users = 50;
  config.think_time_mean_seconds = 10.0;
  config.total_requests = 50'000;
  config.tolerance_seconds = 1.0;
  UserPopulationReport report =
      RunUserPopulation(&tracker, policy, config);
  EXPECT_EQ(report.requests, 50'000u);
  // Steady state: the median request is popular and cheap.
  EXPECT_LT(report.median_delay_seconds, 0.05);
  EXPECT_LT(report.intolerable_fraction, 0.2);
  // Closed loop: 50 users with ~10 s think time produce ~5 req/s, so
  // 50k requests span roughly 10,000 virtual seconds.
  EXPECT_GT(report.duration_seconds, 3'000.0);
  EXPECT_LT(report.duration_seconds, 40'000.0);
  // The tracker saw every request.
  EXPECT_EQ(tracker.total_requests(), 50'000u);
}

TEST(UserModelTest, ToleranceThresholdCountsTail) {
  CountTracker tracker(100, 1.0);
  PopularityDelayParams params;
  params.scale = 1e9;  // Everything is capped at 10 s.
  params.bounds = {0.0, 10.0};
  PopularityDelayPolicy policy(&tracker, params);
  UserPopulationConfig config;
  config.num_users = 5;
  config.total_requests = 100;
  config.tolerance_seconds = 1.0;
  UserPopulationReport report =
      RunUserPopulation(&tracker, policy, config);
  EXPECT_NEAR(report.intolerable_fraction, 1.0, 1e-9);
  EXPECT_EQ(report.p99_delay_seconds, 10.0);
}

}  // namespace
}  // namespace tarpit
