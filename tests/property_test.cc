// Property-based and failure-injection tests: randomized operation
// sequences checked against reference models, crash-point injection
// into the WAL, and convergence of the learned delay policy to the
// closed-form model.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/model.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/analytic_zipf_delay.h"
#include "defense/reputation.h"
#include "core/popularity_delay.h"
#include "sim/adversary.h"
#include "stats/count_tracker.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/slotted_page.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& name) {
    path_ = fs::temp_directory_path() /
            ("tarpit_prop_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string path() const { return path_.string(); }
  std::string file(const std::string& f) const {
    return (path_ / f).string();
  }

 private:
  fs::path path_;
};

// ---------- B+tree vs std::map reference ----------

class BTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeFuzzTest, RandomOpsMatchReferenceModel) {
  TempDir dir("btfuzz" + std::to_string(GetParam()));
  DiskManager dm;
  ASSERT_TRUE(dm.Open(dir.file("t.idx")).ok());
  BufferPool pool(&dm, 64);
  BTree tree(&pool);
  ASSERT_TRUE(tree.Open().ok());

  std::map<int64_t, RecordId> reference;
  Rng rng(GetParam());
  const int64_t key_space = 2000;

  for (int op = 0; op < 20000; ++op) {
    const int64_t key =
        static_cast<int64_t>(rng.Uniform(key_space)) - key_space / 2;
    switch (rng.Uniform(4)) {
      case 0: {  // Insert.
        RecordId rid{static_cast<PageId>(rng.Uniform(1000)),
                     static_cast<uint16_t>(rng.Uniform(100))};
        Status st = tree.Insert(key, rid);
        if (reference.count(key)) {
          EXPECT_EQ(st.code(), StatusCode::kAlreadyExists) << key;
        } else {
          EXPECT_TRUE(st.ok()) << key;
          reference[key] = rid;
        }
        break;
      }
      case 1: {  // Delete.
        Status st = tree.Delete(key);
        EXPECT_EQ(st.ok(), reference.erase(key) > 0) << key;
        break;
      }
      case 2: {  // Search.
        Result<RecordId> rid = tree.Search(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_TRUE(rid.status().IsNotFound()) << key;
        } else {
          ASSERT_TRUE(rid.ok()) << key;
          EXPECT_EQ(*rid, it->second) << key;
        }
        break;
      }
      case 3: {  // UpdateRid.
        RecordId rid{static_cast<PageId>(rng.Uniform(1000)), 7};
        Status st = tree.UpdateRid(key, rid);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_TRUE(st.IsNotFound()) << key;
        } else {
          EXPECT_TRUE(st.ok()) << key;
          it->second = rid;
        }
        break;
      }
    }
  }
  // Full-scan equivalence: same keys, same order, same rids.
  std::vector<std::pair<int64_t, RecordId>> scanned;
  ASSERT_TRUE(tree.RangeScan(INT64_MIN, INT64_MAX,
                             [&](int64_t k, RecordId r) {
                               scanned.emplace_back(k, r);
                               return Status::OK();
                             })
                  .ok());
  ASSERT_EQ(scanned.size(), reference.size());
  size_t i = 0;
  for (const auto& [k, r] : reference) {
    EXPECT_EQ(scanned[i].first, k);
    EXPECT_EQ(scanned[i].second, r);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- SlottedPage vs reference ----------

class SlottedPageFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlottedPageFuzzTest, RandomOpsPreserveLiveRecords) {
  char buf[kPageSize] = {};
  SlottedPage page(buf);
  page.Init();
  std::map<uint16_t, std::string> reference;  // slot -> payload.
  Rng rng(GetParam() * 77);

  for (int op = 0; op < 5000; ++op) {
    const uint64_t action = rng.Uniform(3);
    if (action == 0) {  // Insert.
      std::string payload(1 + rng.Uniform(300), ' ');
      for (char& c : payload) {
        c = static_cast<char>('a' + rng.Uniform(26));
      }
      Result<uint16_t> slot = page.Insert(payload);
      if (slot.ok()) {
        EXPECT_EQ(reference.count(*slot), 0u);
        reference[*slot] = payload;
      } else {
        EXPECT_TRUE(slot.status().IsResourceExhausted());
      }
    } else if (action == 1 && !reference.empty()) {  // Delete random.
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      EXPECT_TRUE(page.Delete(it->first).ok());
      reference.erase(it);
    } else if (!reference.empty()) {  // Update random.
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      std::string payload(1 + rng.Uniform(300), 'z');
      Status st = page.Update(it->first, payload);
      if (st.ok()) {
        it->second = payload;
      } else {
        EXPECT_TRUE(st.IsResourceExhausted());
      }
    }
    // Periodically verify every live record.
    if (op % 500 == 0) {
      for (const auto& [slot, payload] : reference) {
        auto rec = page.Get(slot);
        ASSERT_TRUE(rec.ok()) << slot;
        EXPECT_EQ(*rec, payload) << slot;
      }
    }
  }
  for (const auto& [slot, payload] : reference) {
    EXPECT_EQ(*page.Get(slot), payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlottedPageFuzzTest,
                         ::testing::Values(1, 2, 3));

// ---------- WAL crash-point injection ----------

Schema KvSchema() {
  return Schema({{"id", ColumnType::kInt64}, {"v", ColumnType::kString}});
}

TEST(WalCrashTest, AnyTruncationPointRecoversAPrefix) {
  // Write a table, capture its WAL, then for many truncation points
  // verify the table opens and contains a *prefix* of the history with
  // no corruption (torn tails are silently dropped).
  TempDir dir("walcrash");
  const int kOps = 60;
  {
    TableOptions opts;
    opts.heap_pool_pages = 4;  // Force early page evictions too.
    auto table = Table::Create(dir.path(), "kv", KvSchema(), 0, opts);
    ASSERT_TRUE(table.ok());
    for (int64_t i = 0; i < kOps; ++i) {
      ASSERT_TRUE(
          (*table)
              ->Insert({Value(i), Value("v" + std::to_string(i))})
              .ok());
    }
  }
  const std::string wal_path = dir.file("kv.wal");
  std::ifstream wal_in(wal_path, std::ios::binary);
  std::string wal_bytes((std::istreambuf_iterator<char>(wal_in)),
                        std::istreambuf_iterator<char>());
  wal_in.close();
  ASSERT_GT(wal_bytes.size(), 100u);

  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t cut = rng.Uniform(wal_bytes.size() + 1);
    // Fresh copy of the state: empty heap/index (simulating a crash
    // before any checkpoint) plus the truncated WAL.
    TempDir crash_dir("walcrash_t" + std::to_string(trial));
    {
      std::ofstream out(crash_dir.file("kv.wal"), std::ios::binary);
      out.write(wal_bytes.data(), static_cast<std::streamsize>(cut));
    }
    auto table = Table::Open(crash_dir.path(), "kv", KvSchema(), 0);
    ASSERT_TRUE(table.ok()) << "cut=" << cut;
    // The recovered table must contain exactly rows 0..m-1 for some m.
    const uint64_t rows = (*table)->NumRows();
    EXPECT_LE(rows, static_cast<uint64_t>(kOps));
    for (int64_t i = 0; i < static_cast<int64_t>(rows); ++i) {
      auto row = (*table)->GetByKey(i);
      ASSERT_TRUE(row.ok()) << "cut=" << cut << " i=" << i;
      EXPECT_EQ((*row)[1].AsString(), "v" + std::to_string(i));
    }
    // And nothing beyond the prefix.
    EXPECT_TRUE(
        (*table)->GetByKey(static_cast<int64_t>(rows)).status()
            .IsNotFound());
  }
}

TEST(WalCrashTest, BitFlipLosesAtMostASuffix) {
  TempDir dir("walflip");
  const int kOps = 40;
  {
    auto table = Table::Create(dir.path(), "kv", KvSchema(), 0);
    ASSERT_TRUE(table.ok());
    for (int64_t i = 0; i < kOps; ++i) {
      ASSERT_TRUE(
          (*table)
              ->Insert({Value(i), Value("v" + std::to_string(i))})
              .ok());
    }
  }
  const std::string wal_path = dir.file("kv.wal");
  std::ifstream in(wal_path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::string flipped = bytes;
    flipped[rng.Uniform(flipped.size())] ^= 0x40;
    TempDir crash_dir("walflip_t" + std::to_string(trial));
    {
      std::ofstream out(crash_dir.file("kv.wal"), std::ios::binary);
      out.write(flipped.data(),
                static_cast<std::streamsize>(flipped.size()));
    }
    auto table = Table::Open(crash_dir.path(), "kv", KvSchema(), 0);
    // Either replay stops at the corrupt record (prefix recovered) or,
    // if the flip forged a semantically invalid record, open fails
    // cleanly -- it must never succeed with wrong data.
    if (!table.ok()) continue;
    const uint64_t rows = (*table)->NumRows();
    for (int64_t i = 0; i < static_cast<int64_t>(rows); ++i) {
      auto row = (*table)->GetByKey(i);
      if (row.ok()) {
        EXPECT_EQ((*row)[1].AsString(), "v" + std::to_string(i))
            << "trial=" << trial;
      }
    }
  }
}

// ---------- Table random ops vs reference ----------

TEST(TableFuzzTest, RandomCrudMatchesReference) {
  TempDir dir("tablefuzz");
  TableOptions opts;
  opts.heap_pool_pages = 8;
  opts.index_pool_pages = 8;
  auto table = Table::Create(dir.path(), "kv", KvSchema(), 0, opts);
  ASSERT_TRUE(table.ok());
  std::map<int64_t, std::string> reference;
  Rng rng(123);

  for (int op = 0; op < 5000; ++op) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(300));
    switch (rng.Uniform(4)) {
      case 0: {
        std::string v(1 + rng.Uniform(200), 'x');
        Status st = (*table)->Insert({Value(key), Value(v)});
        if (reference.count(key)) {
          EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
        } else {
          ASSERT_TRUE(st.ok());
          reference[key] = v;
        }
        break;
      }
      case 1: {
        std::string v(1 + rng.Uniform(400), 'u');
        Status st = (*table)->UpdateByKey(key, {Value(key), Value(v)});
        if (reference.count(key)) {
          ASSERT_TRUE(st.ok());
          reference[key] = v;
        } else {
          EXPECT_TRUE(st.IsNotFound());
        }
        break;
      }
      case 2: {
        Status st = (*table)->DeleteByKey(key);
        EXPECT_EQ(st.ok(), reference.erase(key) > 0);
        break;
      }
      case 3: {
        auto row = (*table)->GetByKey(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_TRUE(row.status().IsNotFound());
        } else {
          ASSERT_TRUE(row.ok());
          EXPECT_EQ((*row)[1].AsString(), it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ((*table)->NumRows(), reference.size());
  // Survive a checkpoint + reopen with identical contents.
  ASSERT_TRUE((*table)->Checkpoint().ok());
  table->reset();
  auto reopened = Table::Open(dir.path(), "kv", KvSchema(), 0, opts);
  ASSERT_TRUE(reopened.ok());
  for (const auto& [k, v] : reference) {
    auto row = (*reopened)->GetByKey(k);
    ASSERT_TRUE(row.ok()) << k;
    EXPECT_EQ((*row)[1].AsString(), v);
  }
}

// ---------- Table + secondary index vs reference ----------

TEST(TableFuzzTest, SecondaryIndexStaysConsistentUnderChurn) {
  TempDir dir("secfuzz");
  Schema schema({{"id", ColumnType::kInt64},
                 {"color", ColumnType::kString}});
  auto table = Table::Create(dir.path(), "kv", schema, 0);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->CreateSecondaryIndex("color").ok());

  const char* colors[4] = {"red", "green", "blue", "teal"};
  std::map<int64_t, std::string> reference;
  Rng rng(321);
  for (int op = 0; op < 4000; ++op) {
    const int64_t key = static_cast<int64_t>(rng.Uniform(200));
    const std::string color = colors[rng.Uniform(4)];
    switch (rng.Uniform(3)) {
      case 0: {
        Status st = (*table)->Insert({Value(key), Value(color)});
        if (!reference.count(key)) {
          ASSERT_TRUE(st.ok());
          reference[key] = color;
        }
        break;
      }
      case 1: {
        Status st =
            (*table)->UpdateByKey(key, {Value(key), Value(color)});
        if (reference.count(key)) {
          ASSERT_TRUE(st.ok());
          reference[key] = color;
        }
        break;
      }
      case 2:
        if ((*table)->DeleteByKey(key).ok()) {
          reference.erase(key);
        }
        break;
    }
    if (op % 400 == 0) {
      // Cross-check the index against the reference, per color.
      for (const char* c : colors) {
        std::set<int64_t> via_index;
        ASSERT_TRUE((*table)
                        ->LookupBySecondary(1, Value(c),
                                            [&](const Row& row) {
                                              via_index.insert(
                                                  row[0].AsInt());
                                              return Status::OK();
                                            })
                        .ok());
        std::set<int64_t> truth;
        for (const auto& [k, v] : reference) {
          if (v == c) truth.insert(k);
        }
        ASSERT_EQ(via_index, truth) << "color " << c << " op " << op;
      }
    }
  }
}

// ---------- Learned policy converges to the closed form ----------

class ConvergenceTest : public ::testing::TestWithParam<double> {};

TEST_P(ConvergenceTest, LearnedDelaysTrackAnalyticShape) {
  // After enough Zipf(alpha) samples, the learned policy's delay as a
  // function of true rank must track Eq. 1's power law: ratios between
  // head ranks should match i^(alpha+beta) within sampling noise.
  const double alpha = GetParam();
  const uint64_t n = 2'000;
  const double beta = 1.0;
  CountTracker tracker(n, 1.0);
  ZipfDistribution zipf(n, alpha);
  Rng rng(31);
  for (int i = 0; i < 2'000'000; ++i) {
    tracker.Record(static_cast<int64_t>(zipf.Sample(&rng)));
  }
  PopularityDelayParams params;
  params.scale = 1.0;
  params.beta = beta;
  params.bounds = {0.0, 1e18};
  PopularityDelayPolicy learned(&tracker, params);

  // d(i)/d(1) should be ~ i^(alpha+beta).
  const double d1 = learned.DelayFor(1);
  for (uint64_t i : {2ull, 4ull, 8ull, 16ull}) {
    const double expected =
        std::pow(static_cast<double>(i), alpha + beta);
    const double observed = learned.DelayFor(static_cast<int64_t>(i)) / d1;
    EXPECT_NEAR(observed / expected, 1.0, 0.15)
        << "alpha=" << alpha << " rank=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ConvergenceTest,
                         ::testing::Values(0.8, 1.0, 1.5));

TEST(ConvergenceTest, SimulatedExtractionMatchesClosedForm) {
  // The analytic policy + sequential extraction must equal Eq. 6
  // exactly (they are two independent implementations of the sum).
  ZipfModelParams model;
  model.n = 50'000;
  model.alpha = 1.2;
  model.beta = 0.8;
  model.fmax = 3.0;
  model.dmax = 10.0;

  AnalyticZipfParams policy_params;
  policy_params.n = model.n;
  policy_params.alpha = model.alpha;
  policy_params.beta = model.beta;
  policy_params.fmax = model.fmax;
  policy_params.bounds = {0.0, model.dmax};
  AnalyticZipfDelayPolicy policy(policy_params);

  ExtractionReport report = RunSequentialExtraction(policy, model.n);
  const double closed_form = AdversaryDelayCapped(model);
  EXPECT_NEAR(report.total_delay_seconds, closed_form,
              closed_form * 1e-3);
}

// ---------- Reputation store properties ----------

class ReputationPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ReputationPropertyTest, ComposedDelayNeverBelowBaseForAnyHistory) {
  // Against random signal/decay/access histories, for every (key,
  // principal, time) probe: ReputationDelayPolicy::Compose(d) >= d and
  // PenaltyFactor >= 1.
  Rng rng(GetParam());
  ReputationOptions opts;
  opts.growth = 1.0 + rng.NextDouble() * 3.0;
  opts.subnet_growth = 1.0 + rng.NextDouble() * 2.0;
  opts.half_life_seconds = 1.0 + rng.NextDouble() * 100.0;
  opts.breadth_free_fraction = rng.NextDouble() * 0.1;
  ReputationStore store(opts);
  ReputationDelayPolicy policy(nullptr, &store);

  double now = 0.0;
  for (int step = 0; step < 2000; ++step) {
    now += rng.Exponential(1.0);
    const uint64_t identity = rng.Uniform(8);
    const uint32_t subnet = static_cast<uint32_t>(rng.Uniform(4)) << 8;
    switch (rng.Uniform(3)) {
      case 0:
        store.RecordSignal(identity, subnet, now,
                           ReputationSignal::kExternal,
                           rng.NextDouble() * 2.0);
        break;
      case 1:
        store.ObserveAccess(identity, subnet,
                            static_cast<int64_t>(rng.Uniform(500)),
                            500, now);
        break;
      case 2:
        store.RecordBenign(identity, subnet, now);
        break;
    }
    const double base = rng.NextDouble() * 10.0;
    const double composed = policy.Compose(base, identity, subnet, now);
    ASSERT_GE(composed, base) << "step " << step;
    ASSERT_GE(store.PenaltyFactor(identity, subnet, now), 1.0)
        << "step " << step;
  }
}

TEST_P(ReputationPropertyTest, MonotoneGrowthAndFullDecay) {
  // Sustained extraction-shaped signals grow the factor monotonically
  // (decay between signals never outruns growth at dt=0), and any
  // history decays all the way back to EXACTLY baseline.
  Rng rng(GetParam());
  ReputationOptions opts;
  opts.growth = 2.0;
  opts.half_life_seconds = 50.0;
  opts.max_penalty = 1e6;
  ReputationStore store(opts);

  double prev = 1.0;
  const int signals = 5 + static_cast<int>(rng.Uniform(20));
  for (int i = 0; i < signals; ++i) {
    store.RecordSignal(1, 0x0A000000, 0.0, ReputationSignal::kExternal,
                       0.1 + rng.NextDouble());
    const double factor = store.PenaltyFactor(1, 0x0A000000, 0.0);
    ASSERT_GT(factor, prev) << i;
    prev = factor;
  }
  // log-penalty halves every half-life and snaps to zero inside
  // baseline_epsilon; 60 half-lives is past the snap for any capped
  // penalty.
  const double quiet = 60.0 * opts.half_life_seconds;
  EXPECT_DOUBLE_EQ(store.PenaltyFactor(1, 0x0A000000, quiet), 1.0);
}

TEST_P(ReputationPropertyTest, ChurnedIdentitiesCannotShedSubnetPenalty) {
  // However the fleet churns identities, the subnet factor is
  // non-decreasing at a fixed instant: rebirth sheds only the identity
  // component.
  Rng rng(GetParam());
  ReputationOptions opts;
  opts.subnet_growth = 1.5;
  opts.max_subnet_penalty = 1e9;
  ReputationStore store(opts);
  const uint32_t subnet = 0x0A000000;

  double floor = 1.0;
  for (int gen = 0; gen < 50; ++gen) {
    const uint64_t identity = 1000 + gen;
    store.RecordSignal(identity, subnet, 0.0,
                       ReputationSignal::kExternal);
    if (rng.Bernoulli(0.5)) store.ForgetIdentity(identity);  // Churn.
    const uint64_t fresh = 100000 + gen;
    const double inherited = store.PenaltyFactor(fresh, subnet, 0.0);
    ASSERT_GE(inherited, floor) << gen;
    floor = inherited;
  }
  EXPECT_GT(floor, 100.0);  // 1.5^50 capped by max_subnet_penalty.
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReputationPropertyTest,
                         ::testing::Values(11u, 23u, 37u));

}  // namespace
}  // namespace tarpit
