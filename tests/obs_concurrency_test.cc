// Concurrency suite for the metrics registry (labelled "concurrency"
// in CMake; the TSan CI job runs it under ThreadSanitizer). The
// registry's contract: registration is mutex-guarded and idempotent,
// recording is lock-free, and totals are EXACT once writers join --
// striped counter slots and histogram header slots must not lose
// updates under contention.
//
// TARPIT_STRESS_ITERS shrinks per-thread iteration counts for
// sanitizer slowdown (same convention as concurrency_test.cc).

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tarpit {
namespace {

int StressIters(int standard) {
  const char* env = std::getenv("TARPIT_STRESS_ITERS");
  if (env != nullptr && env[0] != '\0') {
    const int v = std::atoi(env);
    if (v > 0) return v < standard ? v : standard;
  }
  return standard;
}

constexpr int kThreads = 8;

TEST(ObsConcurrencyTest, CounterExactUnderContention) {
  const int iters = StressIters(100000);
  obs::MetricRegistry reg;
  obs::Counter* c = reg.GetCounter("tarpit_test_total");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([c, iters] {
      for (int i = 0; i < iters; ++i) c->Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->Value(), static_cast<int64_t>(kThreads) * iters);
}

TEST(ObsConcurrencyTest, RegistrationRacesYieldOneSeries) {
  // All threads race GetCounter/GetHistogram for the same names while
  // also hammering increments; every thread must resolve to the same
  // instrument and no update may be lost.
  const int iters = StressIters(20000);
  obs::MetricRegistry reg;
  std::atomic<obs::Counter*> first{nullptr};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, &first, iters] {
      obs::Counter* c =
          reg.GetCounter("tarpit_raced_total", {{"k", "v"}});
      obs::Counter* expected = nullptr;
      if (!first.compare_exchange_strong(expected, c)) {
        EXPECT_EQ(expected, c);
      }
      for (int i = 0; i < iters; ++i) c->Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(first.load()->Value(), static_cast<int64_t>(kThreads) * iters);
}

TEST(ObsConcurrencyTest, HistogramExactTotalsUnderContention) {
  // Every thread records a distinct value so bucket counts, count, sum,
  // min and max are all exactly checkable after the join. Concurrent
  // snapshot readers run THROUGHOUT the writes (TSan coverage for the
  // relaxed-read snapshot path); mid-run snapshots must be monotonic
  // in count and never see a sum/count pair implying a negative value.
  const int iters = StressIters(50000);
  obs::MetricRegistry reg;
  obs::Histogram* h = reg.GetHistogram("tarpit_test_lat");
  std::atomic<bool> done{false};

  std::thread reader([&reg, &done] {
    int64_t last_count = 0;
    while (!done.load(std::memory_order_acquire)) {
      const obs::RegistrySnapshot snap = reg.Snapshot();
      const obs::MetricSnapshot* m = snap.Find("tarpit_test_lat");
      ASSERT_NE(m, nullptr);
      EXPECT_GE(m->histogram.count, last_count);
      EXPECT_GE(m->histogram.sum, 0);
      last_count = m->histogram.count;
    }
  });

  // Values below 2^sub_bits live in the exact region, so each thread
  // owns a distinct bucket (values above it share sub-buckets and the
  // per-bucket assertion below would double-count).
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([h, iters, t] {
      const int64_t value = 100 + t;
      for (int i = 0; i < iters; ++i) h->Record(value);
    });
  }
  for (auto& w : workers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  const obs::HistogramSnapshot s = h->Snapshot();
  EXPECT_EQ(s.count, static_cast<int64_t>(kThreads) * iters);
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<int64_t>(100 + t) * iters;
    const size_t idx =
        obs::Histogram::BucketIndex(h->options().sub_bits, 100 + t);
    EXPECT_EQ(s.buckets[idx], static_cast<uint64_t>(iters))
        << "thread value " << 100 + t;
  }
  EXPECT_EQ(s.sum, expected_sum);
  EXPECT_EQ(s.min, 100);
  EXPECT_EQ(s.max, 100 + kThreads - 1);
}

TEST(ObsConcurrencyTest, HistogramMergeDuringRecording) {
  // Racing merges exercise MergeFrom's reader side under TSan while
  // writers keep recording. A racing merge reads the source's buckets
  // and striped totals at different instants, so its output is only
  // approximately consistent -- exactness is asserted on a final merge
  // taken after every writer has joined.
  const int iters = StressIters(20000);
  obs::Histogram a, b;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads / 2; ++t) {
    workers.emplace_back([&a, iters] {
      for (int i = 0; i < iters; ++i) a.Record(7);
    });
    workers.emplace_back([&b, iters] {
      for (int i = 0; i < iters; ++i) b.Record(9);
    });
  }
  std::thread merger([&a, &b] {
    for (int i = 0; i < 50; ++i) {
      obs::Histogram scratch;
      scratch.MergeFrom(a);
      scratch.MergeFrom(b);
      const obs::HistogramSnapshot mid = scratch.Snapshot();
      EXPECT_GE(mid.count, 0);
      EXPECT_GE(mid.sum, 0);
    }
  });
  for (auto& w : workers) w.join();
  merger.join();

  obs::Histogram total;
  total.MergeFrom(a);
  total.MergeFrom(b);
  const obs::HistogramSnapshot s = total.Snapshot();
  const int64_t per_side = static_cast<int64_t>(kThreads / 2) * iters;
  EXPECT_EQ(s.count, 2 * per_side);
  EXPECT_EQ(s.sum, per_side * 7 + per_side * 9);
  EXPECT_EQ(s.min, 7);
  EXPECT_EQ(s.max, 9);
  const int sub_bits = total.options().sub_bits;
  EXPECT_EQ(s.buckets[obs::Histogram::BucketIndex(sub_bits, 7)],
            static_cast<uint64_t>(per_side));
  EXPECT_EQ(s.buckets[obs::Histogram::BucketIndex(sub_bits, 9)],
            static_cast<uint64_t>(per_side));
}

TEST(ObsConcurrencyTest, TraceSinkConcurrentCompletions) {
  const int iters = StressIters(20000);
  obs::TraceSinkOptions opts;
  opts.slowest_capacity = 16;
  opts.recent_sample_every = 8;
  opts.sample_every = 1;
  obs::TraceSink sink(opts);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sink, iters, t] {
      for (int i = 0; i < iters; ++i) {
        obs::RequestTrace tr;
        tr.request_id = sink.NextRequestId();
        tr.op = "get_by_key";
        tr.start_micros = 0;
        // Durations overlap across threads so slowest-N admission
        // races on the floor constantly.
        tr.end_micros = (t * iters + i) % 1000;
        sink.Complete(tr);
      }
    });
  }
  for (auto& w : workers) w.join();
  const int64_t total = static_cast<int64_t>(kThreads) * iters;
  EXPECT_EQ(sink.completed_total(), static_cast<uint64_t>(total));
  const std::vector<obs::RequestTrace> slowest = sink.Slowest();
  ASSERT_EQ(slowest.size(),
            static_cast<size_t>(std::min<int64_t>(16, total)));
  // The global maximum duration must have been retained. Generated
  // durations are 0..total-1 reduced mod 1000.
  EXPECT_EQ(slowest.front().TotalMicros(),
            std::min<int64_t>(999, total - 1));
  EXPECT_LE(sink.Recent().size(), 128u);
}

}  // namespace
}  // namespace tarpit
