#include <cmath>
#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/adaptive_decay.h"
#include "core/analytic_zipf_delay.h"
#include "core/delay_engine.h"
#include "core/popularity_delay.h"
#include "core/protected_db.h"
#include "core/update_delay.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

// ---------- DelayBounds ----------

TEST(DelayBoundsTest, ClampsAndHandlesNan) {
  DelayBounds b{0.001, 10.0};
  EXPECT_EQ(b.Apply(5.0), 5.0);
  EXPECT_EQ(b.Apply(0.0), 0.001);
  EXPECT_EQ(b.Apply(100.0), 10.0);
  EXPECT_EQ(b.Apply(std::nan("")), 10.0);
}

// ---------- AnalyticZipfDelayPolicy ----------

TEST(AnalyticZipfDelayTest, MatchesEquationOne) {
  AnalyticZipfParams p;
  p.n = 1000;
  p.alpha = 1.0;
  p.beta = 1.0;
  p.fmax = 2.0;
  p.bounds = {0.0, 1e9};
  AnalyticZipfDelayPolicy policy(p);
  // d(i) = i^2 / (1000 * 2).
  EXPECT_NEAR(policy.DelayFor(1), 1.0 / 2000, 1e-12);
  EXPECT_NEAR(policy.DelayFor(10), 100.0 / 2000, 1e-12);
  EXPECT_NEAR(policy.DelayFor(1000), 1e6 / 2000, 1e-9);
}

TEST(AnalyticZipfDelayTest, DelayIncreasesWithRank) {
  AnalyticZipfParams p;
  p.n = 500;
  p.alpha = 1.5;
  p.beta = 0.5;
  p.fmax = 1.0;
  p.bounds = {0.0, 1e12};
  AnalyticZipfDelayPolicy policy(p);
  double prev = 0;
  for (int64_t i = 1; i <= 500; i += 7) {
    double d = policy.DelayFor(i);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(AnalyticZipfDelayTest, CapAppliesAboveCapRank) {
  AnalyticZipfParams p;
  p.n = 10000;
  p.alpha = 1.0;
  p.beta = 1.0;
  p.fmax = 1.0;
  p.bounds = {0.0, 1.0};  // 1-second cap.
  AnalyticZipfDelayPolicy policy(p);
  uint64_t m = policy.CapRank();
  ASSERT_GT(m, 1u);
  ASSERT_LT(m, 10000u);
  EXPECT_LT(policy.DelayFor(static_cast<int64_t>(m) - 1), 1.0);
  EXPECT_EQ(policy.DelayFor(static_cast<int64_t>(m) + 1), 1.0);
  // Raw delay at the cap rank reaches the cap.
  EXPECT_GE(policy.RawDelayForRank(m), 1.0);
}

TEST(AnalyticZipfDelayTest, RankClampedToValidRange) {
  AnalyticZipfParams p;
  p.n = 10;
  p.fmax = 1.0;
  p.bounds = {0.0, 1e9};
  AnalyticZipfDelayPolicy policy(p);
  EXPECT_EQ(policy.DelayFor(-5), policy.DelayFor(1));
  EXPECT_EQ(policy.DelayFor(99), policy.DelayFor(10));
}

// ---------- PopularityDelayPolicy ----------

TEST(PopularityDelayTest, NeverSeenGetsCap) {
  CountTracker tracker(100, 1.0);
  PopularityDelayParams params;
  params.scale = 1.0;
  params.bounds = {0.0, 10.0};
  PopularityDelayPolicy policy(&tracker, params);
  EXPECT_EQ(policy.DelayFor(42), 10.0);
}

TEST(PopularityDelayTest, PopularTuplesGetShorterDelays) {
  CountTracker tracker(100, 1.0);
  for (int i = 0; i < 100; ++i) tracker.Record(1);
  for (int i = 0; i < 10; ++i) tracker.Record(2);
  tracker.Record(3);
  PopularityDelayParams params;
  params.scale = 1.0;
  params.bounds = {0.0, 1e9};
  PopularityDelayPolicy policy(&tracker, params);
  double d1 = policy.DelayFor(1), d2 = policy.DelayFor(2),
         d3 = policy.DelayFor(3);
  EXPECT_LT(d1, d2);
  EXPECT_LT(d2, d3);
  // With beta=0, delay is exactly scale/count.
  EXPECT_NEAR(d1, 1.0 / 100, 1e-12);
  EXPECT_NEAR(d3, 1.0, 1e-12);
}

TEST(PopularityDelayTest, BetaAmplifiesUnpopularPenalty) {
  CountTracker tracker(100, 1.0);
  for (int i = 0; i < 100; ++i) tracker.Record(1);
  tracker.Record(2);
  PopularityDelayParams flat;
  flat.scale = 1.0;
  flat.beta = 0.0;
  flat.bounds = {0.0, 1e12};
  PopularityDelayParams amplified = flat;
  amplified.beta = 2.0;
  PopularityDelayPolicy flat_policy(&tracker, flat);
  PopularityDelayPolicy amp_policy(&tracker, amplified);
  // Rank-1 tuple: rank^beta = 1 either way.
  EXPECT_NEAR(flat_policy.DelayFor(1), amp_policy.DelayFor(1), 1e-12);
  // Rank-2 tuple gets 2^2 = 4x the flat delay.
  EXPECT_NEAR(amp_policy.DelayFor(2), 4.0 * flat_policy.DelayFor(2),
              1e-9);
}

TEST(PopularityDelayTest, StartupTransientFadesWithLearning) {
  // Before any accesses, even the (truly) most popular item pays the
  // cap; after the distribution is learned its delay collapses.
  CountTracker tracker(1000, 1.0);
  PopularityDelayParams params;
  params.scale = 0.1;
  params.bounds = {0.0, 10.0};
  PopularityDelayPolicy policy(&tracker, params);
  EXPECT_EQ(policy.DelayFor(1), 10.0);
  ZipfDistribution zipf(1000, 1.5);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    tracker.Record(static_cast<int64_t>(zipf.Sample(&rng)));
  }
  EXPECT_LT(policy.DelayFor(1), 0.001);
}

// ---------- UpdateDelayPolicy ----------

TEST(UpdateDelayTest, InverseRateWithCapAndFloor) {
  UpdateTracker tracker(100, 1.0);
  UpdateDelayParams params;
  params.c = 10.0;
  params.n = 100;
  params.rate_window_seconds = 1.0;
  params.bounds = {0.001, 5.0};
  UpdateDelayPolicy policy(&tracker, params);

  // Never updated: cap.
  EXPECT_EQ(policy.DelayFor(7), 5.0);
  // Hot tuple: updated 1000 times in the window -> tiny delay, floored.
  for (int i = 0; i < 1000; ++i) tracker.Record(1);
  EXPECT_NEAR(policy.DelayFor(1), 0.001, 1e-9);
  // Warm tuple: 1 update -> d = c / (N * r) = 10 / (100 * 1) = 0.1.
  tracker.Record(2);
  EXPECT_NEAR(policy.DelayFor(2), 0.1, 1e-9);
}

TEST(UpdateDelayTest, EquationNineUnderZipfRates) {
  // Direct-rate delays must equal Eq. 9 when rates follow Zipf:
  // r_i = r_max * i^-alpha  =>  d(i) = (c/N) i^alpha / r_max.
  UpdateDelayParams params;
  params.c = 2.0;
  params.n = 1000;
  params.bounds = {0.0, 1e12};
  UpdateDelayPolicy policy(nullptr, params);
  const double alpha = 1.3, rmax = 50.0;
  for (uint64_t i = 1; i <= 1000; i *= 10) {
    double rate = rmax * std::pow(static_cast<double>(i), -alpha);
    double expected = (params.c / 1000.0) *
                      std::pow(static_cast<double>(i), alpha) / rmax;
    EXPECT_NEAR(policy.DelayForRate(rate), expected, expected * 1e-9);
  }
}

TEST(UpdateDelayTest, WindowScalesRates) {
  UpdateTracker tracker(10, 1.0);
  for (int i = 0; i < 100; ++i) tracker.Record(1);
  UpdateDelayParams params;
  params.c = 1.0;
  params.n = 10;
  params.rate_window_seconds = 100.0;  // rate = 1/s.
  params.bounds = {0.0, 1e9};
  UpdateDelayPolicy policy(&tracker, params);
  EXPECT_NEAR(policy.DelayFor(1), 0.1, 1e-9);
  policy.set_rate_window_seconds(1000.0);  // rate = 0.1/s.
  EXPECT_NEAR(policy.DelayFor(1), 1.0, 1e-9);
}

// ---------- AdaptiveDecayTracker ----------

TEST(AdaptiveDecayTest, StationaryStreamPrefersNoDecay) {
  AdaptiveDecayTracker adaptive(100, {1.0, 1.05}, 0.99);
  ZipfDistribution zipf(100, 1.2);
  Rng rng(9);
  for (int i = 0; i < 30000; ++i) {
    adaptive.Record(static_cast<int64_t>(zipf.Sample(&rng)));
  }
  EXPECT_EQ(adaptive.best_decay(), 1.0);
}

TEST(AdaptiveDecayTest, ShiftingStreamPrefersDecay) {
  // Popularity flips every 500 requests between two disjoint hot sets;
  // the decaying tracker adapts, the non-decaying one averages out.
  AdaptiveDecayTracker adaptive(1000, {1.0, 1.05}, 0.995);
  Rng rng(11);
  for (int epoch = 0; epoch < 40; ++epoch) {
    int64_t base = (epoch % 2 == 0) ? 0 : 500;
    for (int i = 0; i < 500; ++i) {
      adaptive.Record(base + static_cast<int64_t>(rng.Uniform(5)));
    }
  }
  EXPECT_GT(adaptive.best_decay(), 1.0);
}

TEST(AdaptiveDecayTest, StatsComeFromBestTracker) {
  AdaptiveDecayTracker adaptive(10, {1.0, 2.0});
  for (int i = 0; i < 10; ++i) adaptive.Record(1);
  PopularityStats s = adaptive.Stats(1);
  EXPECT_EQ(s.rank, 1u);
  EXPECT_GT(s.count, 0.0);
  EXPECT_EQ(adaptive.total_requests(), 10u);
  EXPECT_EQ(adaptive.num_candidates(), 2u);
}

// ---------- DelayEngine ----------

TEST(DelayEngineTest, ChargeAdvancesVirtualClock) {
  VirtualClock clock;
  CountTracker tracker(10, 1.0);
  tracker.Record(1);
  PopularityDelayParams params;
  params.scale = 2.0;  // Delay for key 1 = 2 / 1 = 2s.
  params.bounds = {0.0, 100.0};
  PopularityDelayPolicy policy(&tracker, params);
  DelayEngine engine(&clock, &policy);

  EXPECT_NEAR(engine.Peek(1), 2.0, 1e-9);
  double charged = engine.Charge(1);
  EXPECT_NEAR(charged, 2.0, 1e-9);
  EXPECT_EQ(clock.NowMicros(), 2'000'000);
  EXPECT_EQ(engine.charges(), 1u);
  EXPECT_NEAR(engine.total_delay_seconds(), 2.0, 1e-9);
}

TEST(DelayEngineTest, ChargeAllSumsPerTupleDelays) {
  VirtualClock clock;
  CountTracker tracker(10, 1.0);
  tracker.Record(1);
  tracker.Record(1);
  tracker.Record(2);
  PopularityDelayParams params;
  params.scale = 1.0;
  params.bounds = {0.0, 100.0};
  PopularityDelayPolicy policy(&tracker, params);
  DelayEngine engine(&clock, &policy);
  // d(1) = 1/2, d(2) = 1.
  double total = engine.ChargeAll({1, 2});
  EXPECT_NEAR(total, 1.5, 1e-9);
  EXPECT_EQ(engine.charges(), 2u);
  engine.ResetAccounting();
  EXPECT_EQ(engine.charges(), 0u);
  EXPECT_EQ(engine.total_delay_seconds(), 0.0);
}

// ---------- ProtectedDatabase (integration) ----------

class ProtectedDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_pdb_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    pdb_.reset();
    fs::remove_all(dir_);
  }

  void OpenDb(ProtectedDatabaseOptions options) {
    auto pdb =
        ProtectedDatabase::Open(dir_.string(), "items", &clock_, options);
    ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
    pdb_ = std::move(*pdb);
    ASSERT_TRUE(
        pdb_->ExecuteSql(
                "CREATE TABLE items (id INT PRIMARY KEY, name TEXT)")
            .ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(pdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                     Value("item" + std::to_string(i))})
                      .ok());
    }
  }

  fs::path dir_;
  VirtualClock clock_;
  std::unique_ptr<ProtectedDatabase> pdb_;
};

TEST_F(ProtectedDbTest, SelectChargesDelayAndLearns) {
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 1.0;
  opts.popularity.bounds = {0.0, 10.0};
  OpenDb(opts);

  // First access to key 5: it is recorded first, so count=1 ->
  // delay = scale * rank^0 / 1 = 1s.
  auto r1 = pdb_->ExecuteSql("SELECT * FROM items WHERE id = 5");
  ASSERT_TRUE(r1.ok());
  EXPECT_NEAR(r1->delay_seconds, 1.0, 1e-9);
  EXPECT_EQ(clock_.NowMicros(), 1'000'000);

  // Ten more accesses shrink the delay to 1/11.
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(pdb_->ExecuteSql("SELECT * FROM items WHERE id = 5").ok());
  }
  auto r2 = pdb_->ExecuteSql("SELECT * FROM items WHERE id = 5");
  ASSERT_TRUE(r2.ok());
  EXPECT_NEAR(r2->delay_seconds, 1.0 / 11, 1e-9);
}

TEST_F(ProtectedDbTest, MultiTupleQueryChargesSum) {
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 1.0;
  opts.popularity.bounds = {0.0, 10.0};
  OpenDb(opts);
  auto r = pdb_->ExecuteSql("SELECT * FROM items WHERE id >= 0 AND id < 5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.rows.size(), 5u);
  // Each of the 5 tuples: count 1 -> 1s each.
  EXPECT_NEAR(r->delay_seconds, 5.0, 1e-9);
}

TEST_F(ProtectedDbTest, ExtractionPaysOrdersOfMagnitudeMore) {
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 0.05;
  opts.popularity.bounds = {0.0, 10.0};
  OpenDb(opts);

  // Legitimate workload: skewed accesses to a few hot keys.
  ZipfDistribution zipf(20, 1.5);
  Rng rng(5);
  QuantileSketch user_delays;
  for (int i = 0; i < 2000; ++i) {
    int64_t key = static_cast<int64_t>(zipf.Sample(&rng)) - 1;
    auto r = pdb_->ExecuteSql("SELECT * FROM items WHERE id = " +
                              std::to_string(key));
    ASSERT_TRUE(r.ok());
    user_delays.Add(r->delay_seconds);
  }
  // Adversary: one query per key over the whole relation.
  double adversary_total = 0;
  for (int64_t key = 0; key < 20; ++key) {
    auto r = pdb_->ExecuteSql("SELECT * FROM items WHERE id = " +
                              std::to_string(key));
    ASSERT_TRUE(r.ok());
    adversary_total += r->delay_seconds;
  }
  EXPECT_GT(adversary_total, 100 * user_delays.Median());
}

TEST_F(ProtectedDbTest, UpdateRateModeDelaysStableTuples) {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kUpdateRate;
  opts.update.c = 1.0;
  opts.update.n = 20;
  opts.update.bounds = {0.0, 10.0};
  OpenDb(opts);

  // Update key 3 often; key 7 never.
  clock_.AdvanceToMicros(1'000'000);  // 1s of history.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        pdb_->ExecuteSql("UPDATE items SET name = 'x' WHERE id = 3").ok());
  }
  auto hot = pdb_->ExecuteSql("SELECT * FROM items WHERE id = 3");
  auto cold = pdb_->ExecuteSql("SELECT * FROM items WHERE id = 7");
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(cold.ok());
  EXPECT_LT(hot->delay_seconds, cold->delay_seconds);
  EXPECT_EQ(cold->delay_seconds, 10.0);  // Never updated -> cap.
}

TEST_F(ProtectedDbTest, WritesAreNotDelayed) {
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 1.0;
  opts.popularity.bounds = {0.0, 10.0};
  OpenDb(opts);
  int64_t before = clock_.NowMicros();
  auto r = pdb_->ExecuteSql("UPDATE items SET name = 'y' WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->delay_seconds, 0.0);
  EXPECT_EQ(clock_.NowMicros(), before);
}

TEST_F(ProtectedDbTest, OtherTablesPassThrough) {
  ProtectedDatabaseOptions opts;
  opts.popularity.bounds = {0.0, 10.0};
  OpenDb(opts);
  ASSERT_TRUE(
      pdb_->ExecuteSql("CREATE TABLE other (id INT PRIMARY KEY)").ok());
  ASSERT_TRUE(pdb_->ExecuteSql("INSERT INTO other VALUES (1)").ok());
  auto r = pdb_->ExecuteSql("SELECT * FROM other WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->delay_seconds, 0.0);
  EXPECT_EQ(r->result.rows.size(), 1u);
}

TEST_F(ProtectedDbTest, GetByKeyConvenience) {
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 1.0;
  opts.popularity.bounds = {0.0, 10.0};
  OpenDb(opts);
  auto r = pdb_->GetByKey(4);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->result.rows.size(), 1u);
  EXPECT_EQ(r->result.rows[0][1].AsString(), "item4");
  EXPECT_NEAR(r->delay_seconds, 1.0, 1e-9);
  EXPECT_TRUE(pdb_->GetByKey(999).status().IsNotFound());
}

TEST_F(ProtectedDbTest, PersistedCountsFlushOnCheckpoint) {
  ProtectedDatabaseOptions opts;
  opts.persist_counts = true;
  opts.count_cache_capacity = 4;
  opts.popularity.bounds = {0.0, 10.0};
  OpenDb(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pdb_->ExecuteSql("SELECT * FROM items WHERE id = 2").ok());
  }
  ASSERT_TRUE(pdb_->Checkpoint().ok());
  auto counts = pdb_->raw_database()->GetTable("items__counts");
  ASSERT_TRUE(counts.ok());
  auto row = (*counts)->GetByKey(2);
  ASSERT_TRUE(row.ok());
  EXPECT_DOUBLE_EQ((*row)[1].AsDouble(), 10.0);
}

TEST_F(ProtectedDbTest, MetricsSnapshotReflectsActivity) {
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 1.0;
  opts.popularity.bounds = {0.0, 10.0};
  opts.persist_counts = true;
  OpenDb(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pdb_->ExecuteSql("SELECT * FROM items WHERE id = 5").ok());
  }
  ProtectedDatabaseMetrics m = pdb_->Metrics();
  EXPECT_EQ(m.universe_size, 20u);
  EXPECT_EQ(m.total_requests, 10u);
  EXPECT_EQ(m.distinct_keys_seen, 1u);
  EXPECT_EQ(m.delays_charged, 10u);
  EXPECT_GT(m.total_delay_seconds, 0.0);
  EXPECT_GT(m.count_cache_misses, 0u);
  EXPECT_EQ(m.policy_name, "learned-popularity");
  EXPECT_NE(m.ToString().find("requests=10"), std::string::npos);
}

TEST_F(ProtectedDbTest, NoneModeChargesNothing) {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kNone;
  OpenDb(opts);
  auto r = pdb_->ExecuteSql("SELECT * FROM items");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->delay_seconds, 0.0);
  EXPECT_EQ(clock_.NowMicros(), 0);
}

}  // namespace
}  // namespace tarpit
