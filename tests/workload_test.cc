#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "workload/boxoffice_trace.h"
#include "workload/calgary_trace.h"
#include "workload/key_generator.h"
#include "workload/trace_io.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

TEST(KeyGeneratorTest, ZipfKeysInRangeAndSkewed) {
  ZipfKeyGenerator gen(1000, 1.5);
  Rng rng(1);
  std::vector<int> counts(1001, 0);
  for (int i = 0; i < 50000; ++i) {
    int64_t k = gen.Next(&rng);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 1000);
    ++counts[k];
  }
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[1], 50000 / 10);  // Head heavy.
}

TEST(KeyGeneratorTest, UniformKeysCoverRangeEvenly) {
  UniformKeyGenerator gen(100);
  Rng rng(2);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 100000; ++i) ++counts[gen.Next(&rng)];
  for (int k = 1; k <= 100; ++k) {
    EXPECT_GT(counts[k], 700) << k;
    EXPECT_LT(counts[k], 1300) << k;
  }
}

TEST(CalgaryTraceTest, GeneratesConfiguredShape) {
  CalgaryTraceConfig config;
  config.objects = 500;
  config.requests = 50'000;
  config.alpha = 1.5;
  config.duration_seconds = 1000.0;
  CalgaryTrace trace(config);
  auto requests = trace.Generate();
  ASSERT_EQ(requests.size(), 50'000u);
  // Time-ordered, spanning the duration.
  EXPECT_GE(requests.front().time_seconds, 0.0);
  EXPECT_LT(requests.back().time_seconds, 1000.0);
  for (size_t i = 1; i < requests.size(); i += 997) {
    EXPECT_GE(requests[i].time_seconds, requests[i - 1].time_seconds);
  }
  // Empirical head frequency tracks the expected Zipf frequency.
  std::vector<int> counts(config.objects + 1, 0);
  for (const auto& r : requests) ++counts[r.key];
  for (uint64_t rank = 1; rank <= 3; ++rank) {
    double expected = trace.ExpectedFrequency(rank);
    EXPECT_NEAR(counts[rank], expected, expected * 0.15) << rank;
  }
}

TEST(CalgaryTraceTest, DefaultsMatchThePaper) {
  CalgaryTraceConfig config;
  EXPECT_EQ(config.objects, 12'179u);
  EXPECT_EQ(config.requests, 725'091u);
  EXPECT_DOUBLE_EQ(config.alpha, 1.5);
}

TEST(CalgaryTraceTest, DeterministicForSeed) {
  CalgaryTraceConfig config;
  config.objects = 100;
  config.requests = 1000;
  CalgaryTrace a(config), b(config);
  auto ta = a.Generate();
  auto tb = b.Generate();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); i += 101) {
    EXPECT_EQ(ta[i].key, tb[i].key);
  }
}

TEST(BoxOfficeTraceTest, LifecycleShapes) {
  BoxOfficeTraceConfig config;
  BoxOfficeTrace trace(config);
  ASSERT_EQ(trace.films().size(), 634u);

  // Weekly gross decays geometrically after release and is zero before.
  const Film& film = trace.films()[0];
  EXPECT_EQ(trace.WeeklyGross(film, film.release_week - 1), 0.0);
  double open = trace.WeeklyGross(film, film.release_week);
  EXPECT_GT(open, 0.0);
  if (film.release_week + 1 < config.weeks) {
    EXPECT_NEAR(trace.WeeklyGross(film, film.release_week + 1),
                open * film.weekly_decay, 1e-6);
  }
}

TEST(BoxOfficeTraceTest, WeeklySkewSharperThanAnnual) {
  // The paper's key observation: each week is sharply skewed (Fig. 3)
  // while the year-aggregate is flatter (Fig. 2). Compare top1/top10
  // ratios.
  BoxOfficeTrace trace(BoxOfficeTraceConfig{});
  auto annual = trace.AnnualGross();
  std::sort(annual.begin(), annual.end(), std::greater<>());
  double annual_ratio = annual[0] / annual[9];

  double max_weekly_ratio = 0;
  for (int w = 0; w < 52; ++w) {
    auto week = trace.WeekGross(w);
    std::sort(week.begin(), week.end(), std::greater<>());
    if (week[9] > 0) {
      max_weekly_ratio = std::max(max_weekly_ratio, week[0] / week[9]);
    }
  }
  EXPECT_GT(max_weekly_ratio, annual_ratio);
}

TEST(BoxOfficeTraceTest, RequestVolumeMatchesDollars) {
  BoxOfficeTraceConfig config;
  BoxOfficeTrace trace(config);
  auto weekly = trace.GenerateWeeklyRequests();
  ASSERT_EQ(weekly.size(), 52u);
  uint64_t total_requests = 0;
  for (const auto& week : weekly) total_requests += week.size();
  auto annual = trace.AnnualGross();
  double total_gross = std::accumulate(annual.begin(), annual.end(), 0.0);
  // One request per $100k, rounded down per film-week.
  EXPECT_LE(total_requests, total_gross / config.dollars_per_request);
  EXPECT_GT(total_requests,
            0.8 * total_gross / config.dollars_per_request);
  // Keys are valid film ids.
  for (int64_t key : weekly[0]) {
    EXPECT_GE(key, 1);
    EXPECT_LE(key, static_cast<int64_t>(config.films));
  }
}

TEST(BoxOfficeTraceTest, TopAnnualGrossInPaperBallpark) {
  // The 2002 #1 (Spider-Man) grossed ~$404M; our synthetic top film
  // should land within a factor of ~2.
  BoxOfficeTrace trace(BoxOfficeTraceConfig{});
  auto annual = trace.AnnualGross();
  double top = *std::max_element(annual.begin(), annual.end());
  EXPECT_GT(top, 150e6);
  EXPECT_LT(top, 800e6);
}

TEST(TraceIoTest, RoundTrip) {
  auto dir = fs::temp_directory_path() /
             ("tarpit_traceio_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::string path = (dir / "t.csv").string();
  std::vector<TraceRequest> trace = {
      {0.5, 10}, {1.25, 3}, {2.0, 10}, {7.75, 12179}};
  ASSERT_TRUE(WriteTraceCsv(path, trace).ok());
  auto back = ReadTraceCsv(path);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 4u);
  EXPECT_DOUBLE_EQ((*back)[1].time_seconds, 1.25);
  EXPECT_EQ((*back)[3].key, 12179);
  fs::remove_all(dir);
}

TEST(TraceIoTest, RejectsMalformedFiles) {
  auto dir = fs::temp_directory_path() /
             ("tarpit_traceio_bad_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::string path = (dir / "bad.csv").string();
  {
    std::ofstream f(path);
    f << "wrong,header\n1.0,2\n";
  }
  EXPECT_FALSE(ReadTraceCsv(path).ok());
  {
    std::ofstream f(path);
    f << "time_seconds,key\nnot-a-number,2\n";
  }
  EXPECT_FALSE(ReadTraceCsv(path).ok());
  EXPECT_FALSE(ReadTraceCsv((dir / "missing.csv").string()).ok());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tarpit
