// Reputation-escalating delay: penalty growth/decay, composition with
// the base policy stack, persistence across session churn, and the
// wiring through both front doors.

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/concurrent_db.h"
#include "core/delay_policy.h"
#include "core/protected_db.h"
#include "defense/identity.h"
#include "defense/query_gate.h"
#include "defense/reputation.h"
#include "defense/session_manager.h"
#include "obs/metrics.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kAlice = 1;
constexpr uint64_t kBob = 2;
constexpr uint32_t kSubnetA = 0x0A000000;  // 10.0.0.0/24.
constexpr uint32_t kSubnetB = 0x0A000100;  // 10.0.1.0/24.

// ---------- ReputationStore core behavior ----------

TEST(ReputationStoreTest, BaselineIsExactlyOne) {
  ReputationStore store;
  EXPECT_DOUBLE_EQ(store.PenaltyFactor(kAlice, kSubnetA, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(store.IdentityPenalty(kAlice, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(store.SubnetPenalty(kSubnetA, 0.0), 1.0);
}

TEST(ReputationStoreTest, PenaltyGrowsMonotonicallyUnderSignals) {
  ReputationOptions opts;
  opts.growth = 2.0;
  opts.max_penalty = 1024.0;
  ReputationStore store(opts);
  double prev = store.PenaltyFactor(kAlice, kSubnetA, 0.0);
  for (int i = 1; i <= 8; ++i) {
    store.RecordSignal(kAlice, kSubnetA, 0.0,
                       ReputationSignal::kExternal);
    const double factor = store.PenaltyFactor(kAlice, kSubnetA, 0.0);
    EXPECT_GT(factor, prev) << "signal " << i;
    prev = factor;
  }
  // Multiplicative: k signals of strength 1 at growth g -> g^k.
  EXPECT_NEAR(prev, 256.0, 256.0 * 1e-9);
}

TEST(ReputationStoreTest, PenaltyIsCapped) {
  ReputationOptions opts;
  opts.growth = 4.0;
  opts.max_penalty = 64.0;
  ReputationStore store(opts);
  for (int i = 0; i < 50; ++i) {
    store.RecordSignal(kAlice, kSubnetA, 0.0,
                       ReputationSignal::kExternal);
  }
  EXPECT_NEAR(store.IdentityPenalty(kAlice, 0.0), 64.0, 1e-9);
}

TEST(ReputationStoreTest, DecaysExponentiallyWithHalfLife) {
  ReputationOptions opts;
  opts.growth = 16.0;
  opts.half_life_seconds = 100.0;
  ReputationStore store(opts);
  store.RecordSignal(kAlice, kSubnetA, 0.0, ReputationSignal::kExternal);
  const double f0 = store.IdentityPenalty(kAlice, 0.0);
  ASSERT_NEAR(f0, 16.0, 1e-9);
  // One half-life halves log(factor): 16 -> 4.
  EXPECT_NEAR(store.IdentityPenalty(kAlice, 100.0), 4.0, 1e-6);
  // Two half-lives: 16 -> 2.
  EXPECT_NEAR(store.IdentityPenalty(kAlice, 200.0), 2.0, 1e-6);
}

TEST(ReputationStoreTest, DecaysFullyBackToBaseline) {
  ReputationOptions opts;
  opts.growth = 8.0;
  opts.half_life_seconds = 10.0;
  ReputationStore store(opts);
  store.RecordSignal(kAlice, kSubnetA, 0.0, ReputationSignal::kExternal);
  ASSERT_GT(store.PenaltyFactor(kAlice, kSubnetA, 0.0), 1.0);
  // After enough quiet half-lives the epsilon snap lands the factor on
  // EXACTLY 1.0, not asymptotically close.
  EXPECT_DOUBLE_EQ(store.PenaltyFactor(kAlice, kSubnetA, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(store.IdentityPenalty(kAlice, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(store.SubnetPenalty(kSubnetA, 1000.0), 1.0);
}

TEST(ReputationStoreTest, FactorNeverBelowOneEvenWhileDecaying) {
  ReputationOptions opts;
  opts.half_life_seconds = 1.0;
  ReputationStore store(opts);
  store.RecordSignal(kAlice, kSubnetA, 0.0, ReputationSignal::kExternal);
  for (double t = 0.0; t < 50.0; t += 0.7) {
    EXPECT_GE(store.PenaltyFactor(kAlice, kSubnetA, t), 1.0) << t;
  }
}

TEST(ReputationStoreTest, IdentityAndSubnetAreSeparatelyKeyed) {
  ReputationOptions opts;
  opts.growth = 4.0;
  opts.subnet_growth = 2.0;
  ReputationStore store(opts);
  store.RecordSignal(kAlice, kSubnetA, 0.0, ReputationSignal::kExternal);
  // Alice's identity carries growth; her subnet carries subnet_growth.
  EXPECT_NEAR(store.IdentityPenalty(kAlice, 0.0), 4.0, 1e-9);
  EXPECT_NEAR(store.SubnetPenalty(kSubnetA, 0.0), 2.0, 1e-9);
  // Bob in the same subnet inherits the subnet factor but not Alice's
  // identity factor.
  EXPECT_NEAR(store.PenaltyFactor(kBob, kSubnetA, 0.0), 2.0, 1e-9);
  // Bob in a clean subnet is untouched.
  EXPECT_DOUBLE_EQ(store.PenaltyFactor(kBob, kSubnetB, 0.0), 1.0);
}

TEST(ReputationStoreTest, SubnetPenaltySurvivesIdentityChurn) {
  // The Sybil-churn case: shedding the identity sheds the identity
  // factor, but the subnet keeps escalating.
  ReputationOptions opts;
  opts.growth = 2.0;
  opts.subnet_growth = 2.0;
  opts.max_subnet_penalty = 1024.0;
  ReputationStore store(opts);
  for (uint64_t gen = 0; gen < 5; ++gen) {
    const uint64_t sybil = 100 + gen;  // Fresh identity each time.
    store.RecordSignal(sybil, kSubnetA, 0.0,
                       ReputationSignal::kExternal);
    // The fresh identity starts with the subnet's accumulated factor,
    // not 1.0.
    const double inherited =
        store.PenaltyFactor(200 + gen, kSubnetA, 0.0);
    EXPECT_NEAR(inherited, std::pow(2.0, gen + 1), 1e-6) << gen;
  }
}

TEST(ReputationStoreTest, BreadthSignalsFireAsCoverageGrows) {
  ReputationOptions opts;
  opts.breadth_free_fraction = 0.01;
  opts.breadth_signal_stride = 0.01;
  opts.growth = 2.0;
  opts.max_penalty = 1 << 30;
  ReputationStore store(opts);
  const uint64_t n = 10'000;
  // A narrow slice is free.
  for (int64_t key = 0; key < 50; ++key) {
    store.ObserveAccess(kAlice, kSubnetA, key, n, 0.0);
  }
  EXPECT_DOUBLE_EQ(store.IdentityPenalty(kAlice, 0.0), 1.0);
  // Walking 20% of the relation earns a geometric pile of signals.
  for (int64_t key = 0; key < 2000; ++key) {
    store.ObserveAccess(kAlice, kSubnetA, key, n, 0.0);
  }
  EXPECT_GT(store.IdentityPenalty(kAlice, 0.0), 100.0);
  EXPECT_GT(store.signals_total(), 10u);
}

TEST(ReputationStoreTest, RepeatAccessesToSameKeysStayFree) {
  ReputationStore store;
  const uint64_t n = 10'000;
  // Hammering the same 20 keys is popularity-shaped, not
  // extraction-shaped: distinct coverage never grows.
  for (int round = 0; round < 100; ++round) {
    for (int64_t key = 0; key < 20; ++key) {
      store.ObserveAccess(kAlice, kSubnetA, key, n, 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(store.IdentityPenalty(kAlice, 0.0), 1.0);
}

TEST(ReputationStoreTest, RateAnomalySelfSignalFiresOncePerWindow) {
  ReputationOptions opts;
  opts.rate_window_seconds = 1.0;
  opts.rate_threshold_per_second = 100.0;
  opts.growth = 3.0;
  ReputationStore store(opts);
  // 200 accesses inside one window: one signal, not 100.
  for (int i = 0; i < 200; ++i) {
    store.ObserveAccess(kAlice, kSubnetA, 1, 0, 0.5);
  }
  EXPECT_NEAR(store.IdentityPenalty(kAlice, 0.5), 3.0, 1e-9);
}

TEST(ReputationStoreTest, ForgetIsOperatorOverride) {
  ReputationStore store;
  store.RecordSignal(kAlice, kSubnetA, 0.0, ReputationSignal::kExternal);
  ASSERT_GT(store.PenaltyFactor(kAlice, kSubnetA, 0.0), 1.0);
  store.ForgetIdentity(kAlice);
  store.ForgetSubnet(kSubnetA);
  EXPECT_DOUBLE_EQ(store.PenaltyFactor(kAlice, kSubnetA, 0.0), 1.0);
  EXPECT_EQ(store.tracked_identities(), 0u);
  EXPECT_EQ(store.tracked_subnets(), 0u);
}

TEST(ReputationStoreTest, ShardBudgetEvictsClosestToBaseline) {
  ReputationOptions opts;
  opts.shards = 1;
  opts.max_identities_per_shard = 8;
  ReputationStore store(opts);
  // One hot identity and a crowd of cold ones.
  store.RecordSignal(kAlice, kSubnetA, 0.0, ReputationSignal::kExternal);
  store.RecordSignal(kAlice, kSubnetA, 0.0, ReputationSignal::kExternal);
  for (uint64_t id = 100; id < 140; ++id) {
    store.ObserveAccess(id, kSubnetB, 1, 0, 0.0);
  }
  EXPECT_LE(store.tracked_identities(), 8u);
  // The hot identity survived the churn.
  EXPECT_GT(store.IdentityPenalty(kAlice, 0.0), 1.0);
}

TEST(ReputationStoreTest, PublishesMetrics) {
  obs::MetricRegistry registry;
  ReputationOptions opts;
  opts.metrics = &registry;
  ReputationStore store(opts);
  store.RecordSignal(kAlice, kSubnetA, 0.0, ReputationSignal::kExternal);
  store.ObserveAccess(kAlice, kSubnetA, 1, 0, 0.0);
  auto snapshot = registry.Snapshot();
  const auto* signals = snapshot.Find("tarpit_reputation_signals_total",
                                      {{"source", "external"}});
  ASSERT_NE(signals, nullptr);
  EXPECT_EQ(signals->value, 1);
  const auto* tracked =
      snapshot.Find("tarpit_reputation_tracked_principals",
                    {{"scope", "identity"}});
  ASSERT_NE(tracked, nullptr);
  EXPECT_EQ(tracked->value, 1);
}

// ---------- ReputationDelayPolicy composition ----------

class FixedPolicy : public DelayPolicy {
 public:
  explicit FixedPolicy(double seconds) : seconds_(seconds) {}
  double DelayFor(int64_t) const override { return seconds_; }
  std::string name() const override { return "fixed"; }

 private:
  double seconds_;
};

TEST(ReputationDelayPolicyTest, NeverBelowBasePolicy) {
  FixedPolicy base(0.5);
  ReputationStore store;
  ReputationDelayPolicy policy(&base, &store);
  // Clean principal: exactly the base.
  EXPECT_DOUBLE_EQ(policy.DelayForPrincipal(1, kAlice, kSubnetA, 0.0),
                   0.5);
  // Penalized principal: strictly above, never below.
  store.RecordSignal(kAlice, kSubnetA, 0.0, ReputationSignal::kExternal);
  for (double t = 0.0; t < 5000.0; t += 333.3) {
    EXPECT_GE(policy.DelayForPrincipal(1, kAlice, kSubnetA, t),
              base.DelayFor(1))
        << t;
  }
}

TEST(ReputationDelayPolicyTest, AnonymousPathIsBaseUnchanged) {
  FixedPolicy base(0.25);
  ReputationStore store;
  store.RecordSignal(kAlice, kSubnetA, 0.0, ReputationSignal::kExternal);
  ReputationDelayPolicy policy(&base, &store);
  EXPECT_DOUBLE_EQ(policy.DelayFor(7), 0.25);
  EXPECT_EQ(policy.name(), "reputation(fixed)");
}

TEST(ReputationDelayPolicyTest, ComposeScalesExternallyComputedDelay) {
  ReputationOptions opts;
  opts.growth = 3.0;
  ReputationStore store(opts);
  ReputationDelayPolicy policy(nullptr, &store);
  store.RecordSignal(kAlice, kSubnetA, 0.0, ReputationSignal::kExternal);
  EXPECT_NEAR(policy.Compose(2.0, kAlice, kSubnetA, 0.0), 6.0, 1e-9);
  // Zero base stays zero (nothing to escalate), clean principal is
  // pass-through.
  EXPECT_DOUBLE_EQ(policy.Compose(0.0, kAlice, kSubnetA, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(policy.Compose(2.0, kBob, kSubnetB, 0.0), 2.0);
}

TEST(ReputationDelayPolicyTest, NullStoreIsPassThrough) {
  FixedPolicy base(1.5);
  ReputationDelayPolicy policy(&base, nullptr);
  EXPECT_DOUBLE_EQ(policy.DelayForPrincipal(1, kAlice, kSubnetA, 0.0),
                   1.5);
}

// ---------- Persistence across session churn ----------

TEST(ReputationStoreTest, SurvivesSessionEvictionAndRelogin) {
  // The store keys by identity/subnet, never by session: logging out,
  // being TTL-evicted, and logging back in changes nothing.
  ReputationStore store;
  SessionManager sessions;
  Identity alice;
  alice.id = kAlice;
  alice.ipv4 = 0x0A000001;

  auto token = sessions.Login(alice, 0.0);
  ASSERT_TRUE(token.ok());
  store.RecordSignal(alice.id, alice.Subnet24(), 0.0,
                     ReputationSignal::kExternal);
  const double before = store.PenaltyFactor(alice.id, alice.Subnet24(), 0.0);
  ASSERT_GT(before, 1.0);

  // Explicit logout, TTL eviction sweep, then a fresh login.
  sessions.Logout(*token);
  sessions.ExpireStale(1e9);
  auto relogin = sessions.Login(alice, 1.0);
  ASSERT_TRUE(relogin.ok());
  // Same evaluation instant: bit-identical factor (only time decays
  // reputation, never session churn).
  EXPECT_DOUBLE_EQ(
      store.PenaltyFactor(alice.id, alice.Subnet24(), 0.0), before);
}

// ---------- Front-door wiring ----------

class ReputationGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_rep_gate_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ProtectedDatabaseOptions opts;
    opts.popularity.scale = 0.001;
    opts.popularity.bounds = {0.0, 10.0};
    auto pdb =
        ProtectedDatabase::Open(dir_.string(), "items", &clock_, opts);
    ASSERT_TRUE(pdb.ok());
    pdb_ = std::move(*pdb);
    ASSERT_TRUE(
        pdb_->ExecuteSql(
                "CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
            .ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(pdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                     Value(i * 1.0)})
                      .ok());
    }
  }
  void TearDown() override {
    gate_.reset();
    pdb_.reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
  VirtualClock clock_;
  std::unique_ptr<ProtectedDatabase> pdb_;
  std::unique_ptr<QueryGate> gate_;
};

TEST_F(ReputationGateTest, PenalizedIdentityPaysMultipliedDelay) {
  // Breadth self-signaling off: on a 10-row table every access is 10%
  // coverage, which would drown the externally injected factor this
  // test measures.
  ReputationOptions ropts;
  ropts.breadth_free_fraction = 1.0;
  ReputationStore store(ropts);
  QueryGateOptions opts;
  opts.per_user_queries_per_second = 1e6;
  opts.per_user_burst = 1e6;
  opts.per_subnet_queries_per_second = 1e6;
  opts.per_subnet_burst = 1e6;
  opts.reputation = &store;
  gate_ = std::make_unique<QueryGate>(pdb_.get(), opts);

  auto alice = gate_->RegisterUser(0x0A000001);
  ASSERT_TRUE(alice.ok());

  auto clean = gate_->ExecuteSql(*alice,
                                 "SELECT * FROM items WHERE id = 1");
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(clean->delay_seconds, 0.0);

  // Penalize alice out-of-band by a known factor, then re-issue: the
  // second query's BASE delay (access count went 1 -> 2) times the
  // factor.
  store.RecordSignal(alice->id, alice->Subnet24(),
                     clock_.NowSeconds(), ReputationSignal::kExternal,
                     3.0);  // growth 2^3 = 8x.
  const double factor =
      store.PenaltyFactor(alice->id, alice->Subnet24(),
                          clock_.NowSeconds());
  ASSERT_NEAR(factor, 8.0, 1e-9);
  auto taxed = gate_->ExecuteSql(*alice,
                                 "SELECT * FROM items WHERE id = 1");
  ASSERT_TRUE(taxed.ok());
  // The engine charges from post-access stats; PeekDelay right after
  // the query reads the same snapshot the query was priced from.
  const double base = pdb_->PeekDelay(1);
  EXPECT_NEAR(taxed->delay_seconds, base * factor, 1e-9);
  EXPECT_EQ(
      gate_->audit_log()->CountOf(AuditEvent::kReputationEscalated), 1u);
}

TEST_F(ReputationGateTest, RateDenialsFeedReputation) {
  ReputationOptions ropts;
  ropts.breadth_free_fraction = 1.0;  // Count only the denials.
  ReputationStore store(ropts);
  QueryGateOptions opts;
  opts.per_user_queries_per_second = 0.1;
  opts.per_user_burst = 1.0;
  opts.reputation = &store;
  gate_ = std::make_unique<QueryGate>(pdb_.get(), opts);

  auto alice = gate_->RegisterUser(0x0A000001);
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(
      gate_->ExecuteSql(*alice, "SELECT * FROM items WHERE id = 1")
          .ok());
  // Hammer through the empty bucket: every denial is a rate-anomaly
  // signal.
  for (int i = 0; i < 3; ++i) {
    auto r = gate_->ExecuteSql(*alice,
                               "SELECT * FROM items WHERE id = 1");
    ASSERT_TRUE(r.status().IsRateLimited());
  }
  EXPECT_GT(store.PenaltyFactor(alice->id, alice->Subnet24(),
                                clock_.NowSeconds()),
            1.0);
  EXPECT_EQ(store.signals_total(), 3u);  // One per denial.
  EXPECT_GT(store.IdentityPenalty(alice->id, clock_.NowSeconds()), 1.0);
}

TEST_F(ReputationGateTest, GateWithoutReputationIsUnchanged) {
  QueryGateOptions opts;
  opts.per_user_queries_per_second = 1e6;
  opts.per_user_burst = 1e6;
  gate_ = std::make_unique<QueryGate>(pdb_.get(), opts);
  auto alice = gate_->RegisterUser(0x0A000001);
  ASSERT_TRUE(alice.ok());
  auto r = gate_->ExecuteSql(*alice,
                             "SELECT * FROM items WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(
      gate_->audit_log()->CountOf(AuditEvent::kReputationEscalated), 0u);
}

TEST(ReputationConcurrentDoorTest, EscalatesComputePhaseDelay) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("tarpit_rep_cdb_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  VirtualClock clock;
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 0.001;
  opts.popularity.bounds = {0.0, 10.0};
  ReputationOptions ropts;
  ropts.breadth_free_fraction = 1.0;  // Isolate the injected factor.
  ReputationStore store(ropts);
  ConcurrentDatabaseOptions copts;
  copts.serve_delays = false;  // Measure, don't stall.
  copts.reputation = &store;
  auto open = ConcurrentProtectedDatabase::Open(dir.string(), "items",
                                                &clock, opts, copts);
  ASSERT_TRUE(open.ok());
  auto cdb = std::move(*open);
  ASSERT_TRUE(
      cdb->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
          .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cdb->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                  Value(i * 1.0)})
                    .ok());
  }

  RequestPrincipal alice{kAlice, kSubnetA};
  auto clean = cdb->GetByKey(3, alice);
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(clean->delay_seconds, 0.0);

  store.RecordSignal(kAlice, kSubnetA, clock.NowSeconds(),
                     ReputationSignal::kExternal, 2.0);  // 4x.
  const double factor =
      store.PenaltyFactor(kAlice, kSubnetA, clock.NowSeconds());
  ASSERT_NEAR(factor, 4.0, 1e-9);

  // Same principal: escalated. Anonymous and clean principals: not.
  auto taxed = cdb->GetByKey(3, alice);
  ASSERT_TRUE(taxed.ok());
  auto anonymous = cdb->GetByKey(3);
  ASSERT_TRUE(anonymous.ok());
  RequestPrincipal bob{kBob, kSubnetB};
  auto clean_bob = cdb->GetByKey(3, bob);
  ASSERT_TRUE(clean_bob.ok());
  EXPECT_GT(taxed->delay_seconds, 2.0 * anonymous->delay_seconds);
  EXPECT_LT(clean_bob->delay_seconds, taxed->delay_seconds);

  // The async park path parks the POST-escalation delay.
  double parked = -1.0;
  cdb->GetByKeyAsync(3, alice,
                     [&](Result<ProtectedResult> r) {
                       ASSERT_TRUE(r.ok());
                       parked = r->delay_seconds;
                     });
  ASSERT_GE(parked, 0.0);  // serve_delays off: completes inline.
  EXPECT_GT(parked, 2.0 * anonymous->delay_seconds);

  // Metrics() still equals the sum of caller-charged delays.
  cdb->QuiesceStats();
  auto metrics = cdb->Metrics();
  EXPECT_GT(metrics.total_delay_seconds, 0.0);

  cdb.reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tarpit
