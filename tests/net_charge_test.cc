// Keep-the-charge over the wire: a client that connects, triggers a
// long stall, and hangs up mid-park must (1) leave the full delay
// charge on the ledger, (2) earn a reputation penalty for its
// principal, and (3) find its NEXT connection delay-before-served with
// the escalated factor. Disconnect-and-retry gains nothing -- the PR 2
// cancellation semantics, proven end-to-end through real sockets,
// EPOLLRDHUP detection, CancelSession, and the ReputationStore.
//
// Labeled `adversary` (it is an attack regression) and `concurrency`
// (acceptor + reactors + dispatchers under TSan).

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/concurrent_db.h"
#include "defense/identity.h"
#include "defense/reputation.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "obs/metrics.h"

namespace tarpit {
namespace net {
namespace {

namespace fs = std::filesystem;

double NowSecondsSteady() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TEST(NetChargeTest, HangupMidStallKeepsChargeAndEscalatesReconnect) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("tarpit_net_charge_" +
       std::to_string(
           std::chrono::steady_clock::now().time_since_epoch().count()));
  fs::create_directories(dir);
  RealClock clock;
  obs::MetricRegistry metrics;
  ReputationStore reputation;

  // Every read stalls exactly 3s -- long enough that the hangup
  // beats the expiry by a wide margin.
  ProtectedDatabaseOptions dopts;
  dopts.mode = DelayMode::kAccessPopularity;
  dopts.popularity.beta = 0.0;
  dopts.popularity.scale = 3.0;
  dopts.popularity.bounds = {3.0, 3.0};
  ConcurrentDatabaseOptions copts;
  copts.serve_delays = true;
  copts.async_stalls = true;
  copts.metrics = &metrics;
  copts.reputation = &reputation;
  auto opened = ConcurrentProtectedDatabase::Open(dir.string(), "items",
                                                  &clock, dopts, copts);
  ASSERT_TRUE(opened.ok());
  auto db = std::move(*opened);
  ASSERT_TRUE(
      db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
          .ok());
  // A LARGE universe matters: with a tiny table, the attacker's single
  // key access covers enough of the key space to fire the store's
  // breadth-stride signals too, compounding the factor to ~2^6 and
  // stretching the escalated stall into minutes. At 4096 rows one
  // access is 0.02% coverage -- the measured factor isolates exactly
  // the hangup signal this test is about.
  for (int i = 1; i <= 4096; ++i) {
    ASSERT_TRUE(
        db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
            .ok());
  }

  TarpitServerOptions sopts;
  sopts.keepalive_interval_seconds = 0.1;
  sopts.accept_delay_seconds = 0.5;
  sopts.accept_delay_threshold = 1.5;
  sopts.reputation = &reputation;
  sopts.metrics = &metrics;
  TarpitServer server(db.get(), &clock, sopts);
  ASSERT_TRUE(server.Start().ok());

  const uint64_t kIdentity = 0xBADF00Du;
  const double before_charge = db->Metrics().total_delay_seconds;

  // --- Connect, stall, hang up mid-park. ----------------------------
  {
    FrameClient attacker;
    ASSERT_TRUE(attacker.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(attacker.Hello(kIdentity).ok());
    ASSERT_TRUE(
        attacker.SendFrame(FrameType::kGetKey, GetKeyPayload(1)).ok());
    // Wait for the first kProgress keep-alive: positive proof the
    // request is parked (ADMIT and COMPUTE_DELAY are behind us, the
    // charge is on the books) before we yank the cable.
    auto f = attacker.RecvFrame(10.0);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    ASSERT_EQ(f->type, FrameType::kProgress);
    attacker.Close();  // Abrupt hangup, 3s stall still pending.
  }

  // The server notices via EPOLLRDHUP, cancels the park, and records
  // the reputation signal -- all asynchronously; give it a moment.
  const double start = NowSecondsSteady();
  while (server.hangups_mid_stall() == 0 &&
         NowSecondsSteady() - start < 5.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(server.hangups_mid_stall(), 1u);
  // Hangup was detected well before the 3s stall would have expired.
  EXPECT_LT(NowSecondsSteady() - start, 2.5);

  // (1) The charge survived the cancellation. The full 3s is on the
  // ledger even though no tuple was ever delivered.
  const auto m = db->Metrics();
  EXPECT_GE(m.total_delay_seconds - before_charge, 3.0 * 0.999);
  // The response never went out.
  EXPECT_EQ(server.responses_sent(), 0u);

  // (2) The principal's penalty factor escalated (growth 2.0 per
  // external signal; baseline is 1.0).
  const double factor = reputation.PenaltyFactor(
      kIdentity, /*subnet24=*/Ipv4FromString("127.0.0.1") & 0xFFFFFF00u,
      clock.NowSeconds());
  EXPECT_GE(factor, 1.9);
  // ...and not much more: one hangup = one kExternal signal (growth
  // 2.0). A factor blowup here means some other heuristic misfired.
  EXPECT_LE(factor, 4.1);

  // (3) Reconnecting with the same identity is delay-before-served:
  // the factor (>= threshold 1.5) parks the HelloAck for
  // accept_delay * factor ~= 1s before any query is accepted.
  {
    FrameClient retry;
    ASSERT_TRUE(retry.Connect("127.0.0.1", server.port()).ok());
    const double hello_start = NowSecondsSteady();
    ASSERT_TRUE(retry.Hello(kIdentity).ok());
    const double hello_elapsed = NowSecondsSteady() - hello_start;
    EXPECT_GE(hello_elapsed, 0.5 * 1.9);
    EXPECT_LE(hello_elapsed, 10.0);
    EXPECT_GE(server.accept_delays(), 1u);
    // ...and the stall itself is escalated too (engine-side principal
    // escalation): the charged delay exceeds the base 3s.
    auto r = retry.GetByKey(2, /*timeout_seconds=*/60.0);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->status_code, static_cast<uint8_t>(StatusCode::kOk));
    EXPECT_GE(r->delay_micros, static_cast<uint64_t>(3.0 * 1.9 * 1e6));
    EXPECT_LE(r->delay_micros, static_cast<uint64_t>(3.0 * 4.2 * 1e6));
  }

  server.Stop();
  db.reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace net
}  // namespace tarpit
