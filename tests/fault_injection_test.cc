// Crash-safety and overload-survival suite (PR 8): deterministic fail
// points, the fault-injection disk, WAL/page self-healing recovery, the
// durable delay ledger, and the resource governor's shed-before-collapse
// semantics. Registered under the `fault` ctest label.
//
// The centerpiece is CrashTortureTest.SeededKillPoints: >=1000 seeded
// crash simulations (arbitrary torn WAL tails over a fault-injection
// disk) across insert/update/delete, fsync-per-record, group-commit,
// checkpoint and media-corruption regimes, each checked against a
// serial std::map oracle for zero committed-data loss and clean
// torn-tail truncation.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/delay_ledger.h"
#include "core/delay_scheduler.h"
#include "core/protected_db.h"
#include "core/resource_governor.h"
#include "defense/audit_log.h"
#include "defense/identity.h"
#include "defense/query_gate.h"
#include "obs/failpoint_metrics.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection_disk.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"
#include "storage/wal.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

/// Iteration budget for stress-ish loops: TARPIT_STRESS_ITERS caps the
/// default so sanitizer runs stay fast.
int StressIters(int default_iters) {
  const char* env = std::getenv("TARPIT_STRESS_ITERS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return std::min(v, default_iters);
  }
  return default_iters;
}

class TempDir {
 public:
  explicit TempDir(const std::string& name) {
    path_ = fs::temp_directory_path() /
            ("tarpit_fault_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string path() const { return path_.string(); }
  std::string file(const std::string& f) const {
    return (path_ / f).string();
  }

 private:
  fs::path path_;
};

Schema TestSchema() {
  return Schema({{"id", ColumnType::kInt64},
                 {"score", ColumnType::kDouble},
                 {"name", ColumnType::kString}});
}

// ---------- FailPoints registry ----------

/// Every test in this file may enable process-global fail points;
/// the fixture guarantees none leak into the next test.
class FailPointsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FailPoints::Instance().DisableAll();
    FailPoints::Instance().SetObserver(nullptr);
  }
};

TEST_F(FailPointsTest, DisabledIsInert) {
  ASSERT_FALSE(FailPoints::AnyActive());
  EXPECT_FALSE(TARPIT_FAILPOINT("fp.never_enabled").has_value());
  // Hits on never-enabled points are not even tracked (fast path).
  EXPECT_EQ(FailPoints::Instance().hits("fp.never_enabled"), 0u);
}

TEST_F(FailPointsTest, AlwaysFiresUntilDisabled) {
  FailPointSpec spec;  // kAlways.
  FailPoints::Instance().Enable("fp.always", spec);
  EXPECT_TRUE(FailPoints::AnyActive());
  EXPECT_TRUE(TARPIT_FAILPOINT("fp.always").has_value());
  EXPECT_TRUE(TARPIT_FAILPOINT("fp.always").has_value());
  EXPECT_EQ(FailPoints::Instance().hits("fp.always"), 2u);
  EXPECT_EQ(FailPoints::Instance().fires("fp.always"), 2u);
  FailPoints::Instance().Disable("fp.always");
  EXPECT_FALSE(FailPoints::AnyActive());
  EXPECT_FALSE(TARPIT_FAILPOINT("fp.always").has_value());
}

TEST_F(FailPointsTest, NthHitFiresExactlyOnce) {
  FailPointSpec spec;
  spec.trigger = FailPointSpec::Trigger::kNthHit;
  spec.nth = 3;
  FailPoints::Instance().Enable("fp.nth", spec);
  EXPECT_FALSE(TARPIT_FAILPOINT("fp.nth").has_value());
  EXPECT_FALSE(TARPIT_FAILPOINT("fp.nth").has_value());
  EXPECT_TRUE(TARPIT_FAILPOINT("fp.nth").has_value());   // Hit #3.
  EXPECT_FALSE(TARPIT_FAILPOINT("fp.nth").has_value());  // Capped at 1.
  EXPECT_EQ(FailPoints::Instance().fires("fp.nth"), 1u);
}

TEST_F(FailPointsTest, MaxFiresCapsAlways) {
  FailPointSpec spec;
  spec.max_fires = 2;
  FailPoints::Instance().Enable("fp.capped", spec);
  EXPECT_TRUE(TARPIT_FAILPOINT("fp.capped").has_value());
  EXPECT_TRUE(TARPIT_FAILPOINT("fp.capped").has_value());
  EXPECT_FALSE(TARPIT_FAILPOINT("fp.capped").has_value());
  EXPECT_EQ(FailPoints::Instance().fires("fp.capped"), 2u);
  EXPECT_EQ(FailPoints::Instance().hits("fp.capped"), 3u);
}

TEST_F(FailPointsTest, ProbabilityIsSeedDeterministic) {
  auto pattern = [](uint64_t seed) {
    FailPointSpec spec;
    spec.trigger = FailPointSpec::Trigger::kProbability;
    spec.probability = 0.5;
    spec.seed = seed;
    FailPoints::Instance().Enable("fp.prob", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(TARPIT_FAILPOINT("fp.prob").has_value());
    }
    FailPoints::Instance().Disable("fp.prob");
    return fired;
  };
  const auto a = pattern(42);
  const auto b = pattern(42);
  const auto c = pattern(43);
  EXPECT_EQ(a, b);  // Same seed replays identically.
  EXPECT_NE(a, c);  // Different seed is a different trace.
  // And the rate is actually probabilistic, not all-or-nothing.
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 8);
  EXPECT_LT(fires, 56);
}

TEST_F(FailPointsTest, ArgIsDeliveredToTheSite) {
  FailPointSpec spec;
  spec.arg = 1234;
  FailPoints::Instance().Enable("fp.arg", spec);
  auto fired = TARPIT_FAILPOINT("fp.arg");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, 1234);
}

TEST_F(FailPointsTest, MetricsObserverMirrorsHitsAndFires) {
  obs::MetricRegistry registry;
  obs::BindFailPointMetrics(&registry);
  FailPointSpec spec;
  spec.trigger = FailPointSpec::Trigger::kNthHit;
  spec.nth = 2;
  FailPoints::Instance().Enable("fp.metered", spec);
  (void)TARPIT_FAILPOINT("fp.metered");
  (void)TARPIT_FAILPOINT("fp.metered");
  (void)TARPIT_FAILPOINT("fp.metered");
  EXPECT_EQ(registry
                .GetCounter("tarpit_failpoint_hits_total",
                            {{"point", "fp.metered"}})
                ->Value(),
            3);
  EXPECT_EQ(registry
                .GetCounter("tarpit_failpoint_fires_total",
                            {{"point", "fp.metered"}})
                ->Value(),
            1);
  // Uninstall before the registry goes out of scope.
  FailPoints::Instance().SetObserver(nullptr);
}

// ---------- FaultInjectionDiskManager ----------

class FaultDiskTest : public FailPointsTest {};

TEST_F(FaultDiskTest, VolatileOverlayLostWithoutSync) {
  auto state = std::make_shared<FaultDiskState>();
  {
    FaultInjectionDiskManager dm(state);
    ASSERT_TRUE(dm.Open("x.db").ok());
    char page[kPageSize] = {};
    std::memcpy(page, "unsynced", 8);
    ASSERT_TRUE(dm.WritePage(0, page).ok());
    EXPECT_EQ(dm.PageCount(), 1u);
    // No Sync: the write never leaves the volatile overlay.
  }
  FaultInjectionDiskManager dm2(state);
  ASSERT_TRUE(dm2.Open("x.db").ok());
  EXPECT_EQ(dm2.PageCount(), 0u);  // The crash ate it.
}

TEST_F(FaultDiskTest, SyncPromotesToDurable) {
  auto state = std::make_shared<FaultDiskState>();
  char page[kPageSize] = {};
  std::memcpy(page, "durable", 7);
  {
    FaultInjectionDiskManager dm(state);
    ASSERT_TRUE(dm.Open("x.db").ok());
    ASSERT_TRUE(dm.WritePage(0, page).ok());
    ASSERT_TRUE(dm.Sync().ok());
  }
  EXPECT_EQ(state->syncs, 1u);
  FaultInjectionDiskManager dm2(state);
  ASSERT_TRUE(dm2.Open("x.db").ok());
  ASSERT_EQ(dm2.PageCount(), 1u);
  char out[kPageSize];
  ASSERT_TRUE(dm2.ReadPage(0, out).ok());
  EXPECT_EQ(std::memcmp(out, page, kPageUsableSize), 0);
}

TEST_F(FaultDiskTest, PlantedCorruptionFailsChecksum) {
  auto state = std::make_shared<FaultDiskState>();
  FaultInjectionDiskManager dm(state);
  ASSERT_TRUE(dm.Open("x.db").ok());
  char page[kPageSize] = {};
  std::memcpy(page, "victim", 6);
  ASSERT_TRUE(dm.WritePage(0, page).ok());
  ASSERT_TRUE(dm.Sync().ok());
  ASSERT_TRUE(state->CorruptDurablePage(0, 100, 0x5A));
  FaultInjectionDiskManager dm2(state);
  ASSERT_TRUE(dm2.Open("x.db").ok());
  char out[kPageSize];
  Status st = dm2.ReadPage(0, out);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(FaultDiskTest, InjectedWriteAndSyncFaults) {
  auto state = std::make_shared<FaultDiskState>();
  FaultInjectionDiskManager dm(state);
  ASSERT_TRUE(dm.Open("x.db").ok());
  char page[kPageSize] = {};
  std::memcpy(page, "baseline", 8);
  ASSERT_TRUE(dm.WritePage(0, page).ok());

  // ENOSPC: the overwrite fails before anything lands.
  FailPoints::Instance().Enable("disk.pwrite_enospc", FailPointSpec{});
  EXPECT_TRUE(dm.WritePage(0, page).IsIOError());
  FailPoints::Instance().Disable("disk.pwrite_enospc");
  char out[kPageSize];
  EXPECT_TRUE(dm.ReadPage(0, out).ok());  // Baseline image intact.

  // Torn page: only `arg` leading bytes of the NEW image hit, leaving
  // a frankenstein of new prefix + stale suffix whose trailer the
  // read-side checksum catches. The new content must differ from the
  // baseline or the torn image is byte-identical and still valid.
  std::memcpy(page, "overwrite", 9);
  FailPointSpec torn;
  torn.arg = 100;
  FailPoints::Instance().Enable("disk.pwrite_short", torn);
  EXPECT_TRUE(dm.WritePage(0, page).IsIOError());
  FailPoints::Instance().Disable("disk.pwrite_short");
  EXPECT_TRUE(dm.ReadPage(0, out).IsCorruption());

  // fsync failure surfaces instead of silently losing the promote.
  FailPoints::Instance().Enable("disk.fsync_fail", FailPointSpec{});
  EXPECT_TRUE(dm.Sync().IsIOError());
  FailPoints::Instance().Disable("disk.fsync_fail");

  // EIO on read.
  ASSERT_TRUE(dm.WritePage(0, page).ok());
  FailPoints::Instance().Enable("disk.pread_eio", FailPointSpec{});
  EXPECT_TRUE(dm.ReadPage(0, out).IsIOError());
  FailPoints::Instance().Disable("disk.pread_eio");
  EXPECT_TRUE(dm.ReadPage(0, out).ok());
}

// ---------- WAL recovery ----------

class WalRecoveryTest : public FailPointsTest {};

TEST_F(WalRecoveryTest, RecoverTruncatesTornTail) {
  TempDir dir("wal_torn");
  const std::string path = dir.file("t.wal");
  uint64_t intact_bytes = 0;
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kInsert, "alpha").ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kUpdate, "beta").ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kDelete, "12345678").ok());
    intact_bytes = wal.synced_bytes() + wal.unsynced_bytes();
    ASSERT_TRUE(wal.Close().ok());
  }
  // Simulate a crash mid-append: garbage (a plausible-looking partial
  // frame) after the last intact record.
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    const char garbage[] = "\x10\x00\x00\x00\x01torn";
    f.write(garbage, sizeof(garbage) - 1);
  }
  Wal wal2;
  ASSERT_TRUE(wal2.Open(path).ok());
  // Replay is read-only: it stops at the tear but leaves it in place.
  int replayed = 0;
  ASSERT_TRUE(wal2
                  .Replay([&](WalRecordType, std::string_view) {
                    ++replayed;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(replayed, 3);
  ASSERT_GT(*wal2.SizeBytes(), intact_bytes);
  // Recover replays the same prefix AND physically discards the tail.
  replayed = 0;
  ASSERT_TRUE(wal2
                  .Recover([&](WalRecordType, std::string_view) {
                    ++replayed;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(replayed, 3);
  EXPECT_EQ(wal2.last_recovery_records(), 3u);
  EXPECT_GT(wal2.last_recovery_truncated_bytes(), 0u);
  EXPECT_EQ(*wal2.SizeBytes(), intact_bytes);
}

TEST_F(WalRecoveryTest, CorruptedPayloadStopsReplayAtLastIntact) {
  TempDir dir("wal_crc");
  const std::string path = dir.file("t.wal");
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kInsert, "first").ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kInsert, "second").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Flip a byte inside the SECOND record's payload: its CRC fails, so
  // recovery keeps record one and truncates from the tear onward.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(5 + 5 + 4 + 5 + 2));
    char b = 'X';
    f.write(&b, 1);
  }
  Wal wal2;
  ASSERT_TRUE(wal2.Open(path).ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(wal2
                  .Recover([&](WalRecordType, std::string_view p) {
                    seen.emplace_back(p);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "first");
  EXPECT_GT(wal2.last_recovery_truncated_bytes(), 0u);
}

TEST_F(WalRecoveryTest, AppendShortLeavesTornFrame) {
  TempDir dir("wal_short");
  const std::string path = dir.file("t.wal");
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(WalRecordType::kInsert, "kept").ok());
    FailPointSpec spec;
    spec.arg = 3;  // Three bytes of the frame land, then power loss.
    FailPoints::Instance().Enable("wal.append_short", spec);
    EXPECT_TRUE(
        wal.Append(WalRecordType::kInsert, "lost").IsIOError());
    FailPoints::Instance().Disable("wal.append_short");
    ASSERT_TRUE(wal.Close().ok());
  }
  Wal wal2;
  ASSERT_TRUE(wal2.Open(path).ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(wal2
                  .Recover([&](WalRecordType, std::string_view p) {
                    seen.emplace_back(p);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "kept");
  EXPECT_EQ(wal2.last_recovery_truncated_bytes(), 3u);
}

TEST_F(WalRecoveryTest, FsyncFailureSurfaces) {
  TempDir dir("wal_fsync");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir.file("t.wal")).ok());
  FailPoints::Instance().Enable("wal.fsync_fail", FailPointSpec{});
  EXPECT_TRUE(
      wal.Append(WalRecordType::kInsert, "x", /*sync=*/true).IsIOError());
  FailPoints::Instance().Disable("wal.fsync_fail");
  EXPECT_TRUE(wal.Append(WalRecordType::kInsert, "y", true).ok());
  ASSERT_TRUE(wal.Close().ok());
}

// ---------- Table-level recovery (quarantine + rebuild) ----------

/// Routes every table data file onto a fault-injection disk whose
/// durable state (keyed by path, so multi-table databases get one
/// "device" per file) survives instance destruction. The WAL stays a
/// real file whose torn tail the tests control directly.
struct FaultTableRig {
  std::map<std::string, std::shared_ptr<FaultDiskState>> states;

  std::shared_ptr<FaultDiskState> StateFor(const std::string& path) {
    auto& s = states[path];
    if (!s) s = std::make_shared<FaultDiskState>();
    return s;
  }

  /// The crash-surviving state of the first file ending in `suffix`
  /// (e.g. "t.tbl"); null until that file has been opened once.
  std::shared_ptr<FaultDiskState> ForSuffix(const std::string& suffix) {
    for (auto& [path, state] : states) {
      if (path.size() >= suffix.size() &&
          path.compare(path.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
        return state;
      }
    }
    return nullptr;
  }

  TableOptions Options() {
    TableOptions t;
    t.disk_factory =
        [this](const std::string& path) -> std::unique_ptr<DiskManager> {
      return std::make_unique<FaultInjectionDiskManager>(StateFor(path));
    };
    return t;
  }
};

Row MakeRow(int64_t key, double score) {
  return {Value(key), Value(score), Value("k" + std::to_string(key))};
}

TEST_F(FailPointsTest, CorruptHeapPageQuarantinedAndHealedFromWal) {
  TempDir dir("tbl_heal");
  FaultTableRig rig;
  {
    auto t = Table::Create(dir.path(), "t", TestSchema(), 0,
                           rig.Options());
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    for (int64_t k = 1; k <= 20; ++k) {
      ASSERT_TRUE((*t)->Insert(MakeRow(k, k * 1.5)).ok());
    }
    // Push the page images to "disk" but keep the log authoritative.
    ASSERT_TRUE((*t)->FlushPools().ok());
  }
  // Media corruption on a durable heap page AND a durable index page.
  auto heap = rig.ForSuffix("t.tbl");
  auto index = rig.ForSuffix("t.idx");
  ASSERT_NE(heap, nullptr);
  ASSERT_NE(index, nullptr);
  ASSERT_TRUE(heap->CorruptDurablePage(0, 321, 0x7F));
  ASSERT_FALSE(index->durable_pages.empty());
  ASSERT_TRUE(index->CorruptDurablePage(
      index->durable_pages.rbegin()->first, 55, 0x11));

  auto t = Table::Open(dir.path(), "t", TestSchema(), 0, rig.Options());
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ((*t)->quarantined_pages(), 1u);
  EXPECT_EQ((*t)->index_rebuilds(), 1u);
  EXPECT_GT((*t)->recovered_wal_records(), 0u);
  ASSERT_EQ((*t)->NumRows(), 20u);
  for (int64_t k = 1; k <= 20; ++k) {
    auto row = (*t)->GetByKey(k);
    ASSERT_TRUE(row.ok()) << "key " << k << ": "
                          << row.status().ToString();
    EXPECT_EQ((*row)[1].AsDouble(), k * 1.5);
  }
}

TEST_F(FailPointsTest, BufferPoolFetchCorruptionSurfaces) {
  TempDir dir("tbl_fetch");
  TableOptions topt;
  // Tiny pools (but big enough for the B+tree's pinned root-to-leaf
  // path) so point reads actually fetch from disk.
  topt.heap_pool_pages = 2;
  topt.index_pool_pages = 8;
  auto t = Table::Create(dir.path(), "t", TestSchema(), 0, topt);
  ASSERT_TRUE(t.ok());
  // Enough rows that the heap spans many more pages than the 2-frame
  // pool holds, so point reads MUST fetch from disk.
  for (int64_t k = 1; k <= 2000; ++k) {
    ASSERT_TRUE((*t)->Insert(MakeRow(k, 1.0)).ok());
  }
  FailPointSpec spec;
  spec.trigger = FailPointSpec::Trigger::kNthHit;
  spec.nth = 1;
  FailPoints::Instance().Enable("bufpool.fetch_corrupt", spec);
  // Some fetch in this sweep hits the injected rot and must surface
  // Corruption instead of returning a bogus row.
  bool saw_corruption = false;
  for (int64_t k = 1; k <= 2000 && !saw_corruption; ++k) {
    auto row = (*t)->GetByKey(k);
    if (!row.ok()) {
      EXPECT_TRUE(row.status().IsCorruption())
          << row.status().ToString();
      saw_corruption = true;
    }
  }
  FailPoints::Instance().Disable("bufpool.fetch_corrupt");
  EXPECT_TRUE(saw_corruption);
  // The failure is transient (injected at fetch, not on media): the
  // same keys read fine on retry.
  for (int64_t k = 1; k <= 2000; ++k) {
    EXPECT_TRUE((*t)->GetByKey(k).ok());
  }
}

// ---------- Crash torture ----------

/// One logical mutation plus where the log stood after it.
struct TortureOp {
  enum Kind { kInsert, kUpdate, kDelete } kind;
  int64_t key;
  double score;
  uint64_t appended_after;  // WAL bytes (since last truncate) after op.
};

/// >=1000 seeded crash points. Per seed: build a table on
/// fault-injection disks, apply a random op sequence under one of three
/// durability regimes, "crash" by dropping every volatile page overlay
/// and truncating the real WAL at a random physically-possible offset,
/// reopen, and compare against the op-prefix oracle:
///   * zero committed-data loss: every op whose WAL frame survived (and
///     everything below the durability floor) is present;
///   * no phantom ops: nothing beyond the surviving prefix is applied;
///   * clean torn-tail truncation: recovery reports exactly the bytes
///     past the last intact frame.
TEST(CrashTortureTest, SeededKillPoints) {
  const int seeds = StressIters(1000);
  TempDir dir("torture");
  for (int seed = 0; seed < seeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(0x9E3779B97F4A7C15ULL ^ static_cast<uint64_t>(seed));
    const int style = seed % 3;  // 0: no-sync, 1: group-commit, 2: ckpt.
    const std::string sub = dir.file("s" + std::to_string(seed));
    fs::create_directories(sub);

    FaultTableRig rig;
    TableOptions topt = rig.Options();
    topt.heap_pool_pages = 8;
    topt.index_pool_pages = 8;
    if (style == 1) {
      topt.wal_sync = true;
      topt.wal_group_commit_window_micros = int64_t{1} << 40;
    }

    std::vector<TortureOp> ops;
    std::map<int64_t, double> live;  // Working state while generating.
    size_t committed_floor = 0;      // Ops made durable by Checkpoint.
    uint64_t flush_floor_bytes = 0;  // WAL offset at last FlushPools.
    size_t checkpoint_at = style == 2 ? 3 + rng.Uniform(10) : SIZE_MAX;

    {
      auto created =
          Table::Create(sub, "t", TestSchema(), 0, topt);
      ASSERT_TRUE(created.ok()) << created.status().ToString();
      std::unique_ptr<Table> table = std::move(*created);
      // Make the formatted-empty baseline durable, as a real mkfs-and-
      // sync would; everything after is at the mercy of the crash.
      ASSERT_TRUE(table->FlushPools().ok());

      const int n_ops = 12 + static_cast<int>(rng.Uniform(20));
      for (int i = 0; i < n_ops; ++i) {
        const int64_t key = static_cast<int64_t>(rng.Uniform(50));
        TortureOp op;
        op.key = key;
        op.score = static_cast<double>(rng.Uniform(1000)) / 8.0;
        auto it = live.find(key);
        if (it == live.end()) {
          op.kind = TortureOp::kInsert;
          ASSERT_TRUE(table->Insert(MakeRow(key, op.score)).ok());
          live[key] = op.score;
        } else if (rng.Uniform(3) == 0) {
          op.kind = TortureOp::kDelete;
          ASSERT_TRUE(table->DeleteByKey(key).ok());
          live.erase(it);
        } else {
          op.kind = TortureOp::kUpdate;
          ASSERT_TRUE(
              table->UpdateByKey(key, MakeRow(key, op.score)).ok());
          it->second = op.score;
        }
        op.appended_after =
            table->wal()->synced_bytes() + table->wal()->unsynced_bytes();
        ops.push_back(op);

        if (style == 1 && rng.Uniform(4) == 0) {
          ASSERT_TRUE(table->SyncWal().ok());
        }
        if (style == 0 && rng.Uniform(8) == 0) {
          // Base pages go durable but the log is NOT truncated: any
          // crash point at or past this offset is physically possible.
          ASSERT_TRUE(table->FlushPools().ok());
          flush_floor_bytes = op.appended_after;
        }
        if (static_cast<size_t>(i) == checkpoint_at) {
          ASSERT_TRUE(table->Checkpoint().ok());
          committed_floor = ops.size();
          flush_floor_bytes = 0;  // Log restarted at offset zero.
        }
      }

      // Choose the kill point: everything fsync'd (WAL synced offset,
      // checkpoint, base flush) must survive; anything after is fair
      // game, including mid-frame.
      const uint64_t synced = table->wal()->synced_bytes();
      const uint64_t appended = synced + table->wal()->unsynced_bytes();
      const uint64_t floor = std::max(synced, flush_floor_bytes);
      const uint64_t kept = floor + rng.Uniform(appended - floor + 1);
      // "Crash": drop the table (volatile page overlays evaporate),
      // then tear the real log at the kill point.
      table.reset();
      fs::resize_file(fs::path(sub) / "t.wal", kept);

      // Optional media corruption on top of the crash -- only while the
      // un-truncated log still covers every row, so replay heals the
      // quarantined page exactly.
      auto heap = rig.ForSuffix("t.tbl");
      if (committed_floor == 0 && flush_floor_bytes == 0 && heap &&
          rng.Uniform(4) == 0 && !heap->durable_pages.empty()) {
        auto it = heap->durable_pages.begin();
        std::advance(it, rng.Uniform(heap->durable_pages.size()));
        ASSERT_TRUE(heap->CorruptDurablePage(it->first, 77, 0x3C));
      }

      // Oracle: the committed prefix is every checkpointed op plus
      // every later op whose full WAL frame fits in the kept bytes.
      size_t k = committed_floor;
      uint64_t last_boundary = 0;
      for (size_t i = committed_floor; i < ops.size(); ++i) {
        if (ops[i].appended_after <= kept) {
          k = i + 1;
          last_boundary = ops[i].appended_after;
        } else {
          break;
        }
      }
      std::map<int64_t, double> oracle;
      for (size_t i = 0; i < k; ++i) {
        const TortureOp& op = ops[i];
        if (op.kind == TortureOp::kDelete) {
          oracle.erase(op.key);
        } else {
          oracle[op.key] = op.score;
        }
      }

      auto reopened = Table::Open(sub, "t", TestSchema(), 0, topt);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      std::unique_ptr<Table> after = std::move(*reopened);
      EXPECT_EQ(after->recovered_wal_records(), k - committed_floor);
      EXPECT_EQ(after->wal_truncated_bytes(), kept - last_boundary);

      std::map<int64_t, double> actual;
      ASSERT_TRUE(after
                      ->ScanAll([&](const Row& row) {
                        actual[row[0].AsInt()] = row[1].AsDouble();
                        return Status::OK();
                      })
                      .ok());
      EXPECT_EQ(actual, oracle)
          << "style=" << style << " kept=" << kept << " k=" << k
          << " of " << ops.size();
      EXPECT_EQ(after->NumRows(), oracle.size());
    }
    fs::remove_all(sub);
  }
}

/// Group-commit batches + DDL fences through the concurrent front
/// door, then a crash that loses every base page written since create:
/// the commit-time WAL records alone must reconstruct the exact logical
/// state (idempotent replay over an arbitrary reclaim prefix).
TEST(CrashTortureTest, MvccGroupCommitReplaysIdempotently) {
  TempDir dir("mvcc_crash");
  RealClock clock;
  FaultTableRig rig;

  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 0.001;
  opts.popularity.bounds = {0.0, 10.0};
  opts.table_options = rig.Options();
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.mvcc_writes = true;
  copts.mvcc_reclaim_every_commits = 4;  // Partial reclaim guaranteed.
  copts.serve_delays = false;

  std::map<int64_t, double> oracle;
  {
    auto cdb = ConcurrentProtectedDatabase::Open(dir.path(), "items",
                                                 &clock, opts, copts);
    ASSERT_TRUE(cdb.ok()) << cdb.status().ToString();
    ASSERT_TRUE((*cdb)
                    ->ExecuteSql("CREATE TABLE items (id INT PRIMARY "
                                 "KEY, v DOUBLE)")
                    .ok());
    ASSERT_TRUE(
        (*cdb)->unsafe_inner()->table()->FlushPools().ok());

    Rng rng(7);
    for (int i = 0; i < 120; ++i) {
      const int64_t key = static_cast<int64_t>(rng.Uniform(30));
      const double v = static_cast<double>(i);
      auto it = oracle.find(key);
      std::string sql;
      if (it == oracle.end()) {
        sql = "INSERT INTO items VALUES (" + std::to_string(key) + ", " +
              std::to_string(v) + ")";
        oracle[key] = v;
      } else if (rng.Uniform(3) == 0) {
        sql = "DELETE FROM items WHERE id = " + std::to_string(key);
        oracle.erase(it);
      } else {
        sql = "UPDATE items SET v = " + std::to_string(v) +
              " WHERE id = " + std::to_string(key);
        it->second = v;
      }
      auto r = (*cdb)->ExecuteSql(sql);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
      if (i == 40) {
        // DDL fence: drains the version store through the exclusive
        // path mid-stream.
        ASSERT_TRUE((*cdb)
                        ->ExecuteSql("CREATE TABLE side (id INT "
                                     "PRIMARY KEY, x DOUBLE)")
                        .ok());
      }
      if (i == 80) {
        // SELECT barrier: another drain flavor.
        ASSERT_TRUE((*cdb)->ExecuteSql("SELECT * FROM items").ok());
      }
    }
    EXPECT_GT((*cdb)->mvcc_commits(), 0u);
    EXPECT_GT((*cdb)->ddl_fences(), 0u);
    // Crash: no checkpoint. Every base page written since create was
    // only in the volatile overlays and dies with the instance.
  }

  VirtualClock vclock;
  auto pdb = ProtectedDatabase::Open(dir.path(), "items", &vclock, opts);
  ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
  Table* table = (*pdb)->table();
  ASSERT_NE(table, nullptr);
  EXPECT_GT(table->recovered_wal_records(), 0u);
  std::map<int64_t, double> actual;
  ASSERT_TRUE(table
                  ->ScanAll([&](const Row& row) {
                    actual[row[0].AsInt()] = row[1].AsDouble();
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(actual, oracle);
}

// ---------- Delay-ledger recovery ----------

TEST(DelayLedgerTest, LastIntactSnapshotWinsAndTornTailHeals) {
  TempDir dir("ledger");
  const std::string path = dir.file("d.ledger");
  {
    DelayLedger ledger;
    ASSERT_TRUE(ledger.Open(path).ok());
    ASSERT_TRUE(ledger.Append(1.5, 3, /*sync=*/false).ok());
    ASSERT_TRUE(ledger.Append(7.25, 11, /*sync=*/true).ok());
    ASSERT_TRUE(ledger.Close().ok());
  }
  // Torn tail: half a record of garbage.
  {
    std::ofstream f(path, std::ios::app | std::ios::binary);
    f.write("\x01garbage", 8);
  }
  DelayLedger ledger2;
  ASSERT_TRUE(ledger2.Open(path).ok());
  EXPECT_EQ(ledger2.recovered_total_delay(), 7.25);
  EXPECT_EQ(ledger2.recovered_charges(), 11u);
  EXPECT_EQ(ledger2.truncated_bytes(), 8u);
  ASSERT_TRUE(ledger2.Close().ok());
  // The heal is physical: a third open sees a clean file.
  DelayLedger ledger3;
  ASSERT_TRUE(ledger3.Open(path).ok());
  EXPECT_EQ(ledger3.recovered_charges(), 11u);
  EXPECT_EQ(ledger3.truncated_bytes(), 0u);
}

/// The delay debt survives crash/restart: after a checkpointed
/// shutdown the recovered totals drift 0 (well under the 0.01% bar),
/// and after an unclean crash they fall back to the last cadence
/// snapshot -- never below it.
TEST(RecoveryDriftTest, ChargedDelaySurvivesRestart) {
  TempDir dir("drift");
  VirtualClock clock;
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 0.001;
  opts.popularity.bounds = {0.0, 10.0};
  opts.persist_delay_ledger = true;
  opts.delay_ledger_snapshot_every = 4;

  double oracle_delay = 0;
  uint64_t oracle_charges = 0;
  {
    auto pdb = ProtectedDatabase::Open(dir.path(), "items", &clock, opts);
    ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
    ASSERT_TRUE((*pdb)
                    ->ExecuteSql("CREATE TABLE items (id INT PRIMARY "
                                 "KEY, v DOUBLE)")
                    .ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          (*pdb)
              ->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(1.0)})
              .ok());
    }
    for (int i = 0; i < 25; ++i) {
      auto r = (*pdb)->GetByKey(i % 10);
      ASSERT_TRUE(r.ok());
      oracle_delay += r->delay_seconds;
      ++oracle_charges;
    }
    ASSERT_TRUE((*pdb)->Checkpoint().ok());  // Synced snapshot.
  }

  {
    auto pdb = ProtectedDatabase::Open(dir.path(), "items", &clock, opts);
    ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
    auto m = (*pdb)->Metrics();
    EXPECT_EQ(m.delays_charged, oracle_charges);
    ASSERT_GT(oracle_delay, 0.0);
    // Drift bound from the issue: <= 0.01% against the serial oracle.
    EXPECT_NEAR(m.total_delay_seconds, oracle_delay,
                1e-4 * oracle_delay);

    // Second generation: 7 more charges, cadence 4, then an UNCLEAN
    // crash (no checkpoint). The cadence snapshot at +4 is the floor.
    for (int i = 0; i < 7; ++i) {
      auto r = (*pdb)->GetByKey(i % 10);
      ASSERT_TRUE(r.ok());
      oracle_delay += r->delay_seconds;
    }
    EXPECT_EQ((*pdb)->Metrics().delays_charged, oracle_charges + 7);
  }

  auto pdb = ProtectedDatabase::Open(dir.path(), "items", &clock, opts);
  ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
  auto m = (*pdb)->Metrics();
  // The cadence snapshot after the 4th post-restart charge was the last
  // one appended before the crash; charges 5..7 were still in memory.
  EXPECT_EQ(m.delays_charged, oracle_charges + 4);
  EXPECT_GE((*pdb)->ledger_base_charges(), oracle_charges);
}

// ---------- Resource governor ----------

TEST(ResourceGovernorTest, BudgetsAndSheddingReasons) {
  obs::MetricRegistry registry;
  ResourceGovernorOptions go;
  go.max_parked_stalls = 2;
  go.max_parked_bytes = 10000;
  go.stall_bytes_estimate = 4096;
  go.max_wal_backlog_bytes = 100;
  go.max_live_versions = 10;
  go.metrics = &registry;
  ResourceGovernor gov(go);

  EXPECT_TRUE(gov.AdmitStall(0).ok());
  EXPECT_TRUE(gov.AdmitStall(0).ok());
  EXPECT_EQ(gov.parked_stalls(), 2u);
  EXPECT_EQ(gov.parked_bytes(), 8192u);
  // Third stall trips the count budget.
  EXPECT_TRUE(gov.AdmitStall(0).IsOverloaded());
  gov.ReleaseStall(0);
  // Count budget now has room, but 4096 + 8192 > 10000: bytes budget.
  EXPECT_TRUE(gov.AdmitStall(8192).IsOverloaded());
  EXPECT_TRUE(gov.AdmitStall(1000).ok());
  gov.ReleaseStall(1000);
  gov.ReleaseStall(0);
  EXPECT_EQ(gov.parked_stalls(), 0u);
  EXPECT_EQ(gov.parked_bytes(), 0u);

  EXPECT_TRUE(gov.CheckWrite(99, 9).ok());
  EXPECT_TRUE(gov.CheckWrite(101, 0).IsOverloaded());
  EXPECT_TRUE(gov.CheckWrite(0, 11).IsOverloaded());

  EXPECT_EQ(gov.admitted_total(), 3u);
  EXPECT_EQ(gov.shed_total(), 4u);
  EXPECT_EQ(registry.GetGauge("tarpit_governor_parked_stalls")->Value(),
            0);
  int64_t shed = 0;
  for (const char* reason :
       {"parked_stalls", "parked_bytes", "wal_backlog", "live_versions"}) {
    shed += registry
                .GetCounter("tarpit_governor_shed_total",
                            {{"reason", reason}})
                ->Value();
  }
  EXPECT_EQ(shed, 4);
}

TEST(ResourceGovernorTest, ConcurrentDoorShedsAfterCharge) {
  TempDir dir("gov_cdb");
  RealClock clock;
  ResourceGovernorOptions go;
  go.max_parked_stalls = 1;
  ResourceGovernor gov(go);

  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 0.001;  // ~1ms stalls when actually served.
  opts.popularity.bounds = {0.0, 10.0};
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.async_stalls = true;
  copts.governor = &gov;
  auto cdb = ConcurrentProtectedDatabase::Open(dir.path(), "items",
                                               &clock, opts, copts);
  ASSERT_TRUE(cdb.ok()) << cdb.status().ToString();
  ASSERT_TRUE((*cdb)
                  ->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, "
                               "v DOUBLE)")
                  .ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        (*cdb)
            ->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(1.0)})
            .ok());
  }

  // Fill the only parking slot by hand, so the next stall MUST shed
  // (deterministic: nothing depends on wheel timing).
  ASSERT_TRUE(gov.AdmitStall(0).ok());
  auto r = (*cdb)->GetByKey(1);
  EXPECT_TRUE(r.status().IsOverloaded()) << r.status().ToString();
  // Keep-the-charge: the shed request's delay is on the books.
  auto m = (*cdb)->Metrics();
  EXPECT_EQ(m.delays_charged, 1u);
  EXPECT_GT(m.total_delay_seconds, 0.0);
  EXPECT_EQ(gov.shed_total(), 1u);

  // The async path sheds identically, completing inline.
  std::atomic<bool> overloaded{false};
  (*cdb)->GetByKeyAsync(2, [&](Result<ProtectedResult> res) {
    overloaded = res.status().IsOverloaded();
  });
  EXPECT_TRUE(overloaded.load());

  // Release the slot: the same request is admitted and served.
  gov.ReleaseStall(0);
  auto ok = (*cdb)->GetByKey(1);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(gov.parked_stalls(), 0u);
}

TEST(ResourceGovernorTest, WriteShedsOnWalBacklog) {
  TempDir dir("gov_wal");
  RealClock clock;
  ResourceGovernorOptions go;
  go.max_wal_backlog_bytes = 1;  // Any unsynced byte sheds the NEXT write.
  ResourceGovernor gov(go);

  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 0.001;
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.mvcc_writes = true;
  copts.serve_delays = false;
  copts.governor = &gov;
  auto cdb = ConcurrentProtectedDatabase::Open(dir.path(), "items",
                                               &clock, opts, copts);
  ASSERT_TRUE(cdb.ok()) << cdb.status().ToString();
  ASSERT_TRUE((*cdb)
                  ->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, "
                               "v DOUBLE)")
                  .ok());
  // First write: backlog 0 at submit, admitted; its WAL frame is never
  // fdatasync'd, so the second write sees a positive backlog and sheds.
  ASSERT_TRUE((*cdb)->ExecuteSql("INSERT INTO items VALUES (1, 1.0)").ok());
  auto r = (*cdb)->ExecuteSql("INSERT INTO items VALUES (2, 2.0)");
  EXPECT_TRUE(r.status().IsOverloaded()) << r.status().ToString();
  // Checkpoint drains the backlog; writes are admitted again.
  ASSERT_TRUE((*cdb)->Checkpoint().ok());
  EXPECT_TRUE((*cdb)->ExecuteSql("INSERT INTO items VALUES (2, 2.0)").ok());
}

TEST(ResourceGovernorTest, GateShedAuditsAndKeepsCharge) {
  TempDir dir("gov_gate");
  VirtualClock clock;
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 0.001;
  opts.popularity.bounds = {0.0, 10.0};
  opts.defer_delay_sleep = true;  // The gate parks the stall itself.
  auto pdb = ProtectedDatabase::Open(dir.path(), "items", &clock, opts);
  ASSERT_TRUE(pdb.ok());
  ASSERT_TRUE((*pdb)
                  ->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, "
                               "v DOUBLE)")
                  .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        (*pdb)
            ->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(1.0)})
            .ok());
  }

  ResourceGovernorOptions go;
  go.max_parked_stalls = 1;
  ResourceGovernor gov(go);
  obs::MetricRegistry registry;
  QueryGateOptions qopts;
  qopts.governor = &gov;
  qopts.metrics = &registry;
  QueryGate gate(pdb->get(), qopts);
  auto user = gate.RegisterUser(Ipv4FromString("10.0.0.1"));
  ASSERT_TRUE(user.ok());
  DelayScheduler scheduler(&clock);

  ASSERT_TRUE(gov.AdmitStall(0).ok());  // Exhaust the parking budget.
  bool completed = false;
  Status st;
  gate.ExecuteSqlAsync(*user, "SELECT * FROM items WHERE id = 3",
                       &scheduler, [&](Result<ProtectedResult> r) {
                         completed = true;  // Inline: no race.
                         st = r.status();
                       });
  EXPECT_TRUE(completed);
  EXPECT_TRUE(st.IsOverloaded()) << st.ToString();
  EXPECT_EQ(scheduler.parked(), 0u);
  // The shed is audited and counted...
  EXPECT_EQ(gate.audit_log()->CountOf(AuditEvent::kOverloadShed), 1u);
  EXPECT_EQ(registry
                .GetCounter("tarpit_gate_denials_total",
                            {{"reason", "overload"}})
                ->Value(),
            1);
  // ...and the charge stuck: shedding is not a free tuple.
  auto m = (*pdb)->Metrics();
  EXPECT_GE(m.delays_charged, 1u);
  EXPECT_GT(m.total_delay_seconds, 0.0);
  gov.ReleaseStall(0);
}

/// Satellite regression (PR 8): stalls cancelled by scheduler shutdown
/// still REPORT their charged delay -- the tarpit_delay_charged_ns
/// histogram must match the accounting stripes, which always kept the
/// charge (accounting happens in the compute phase; cancellation cuts
/// the serving short, not the bill).
TEST(ResourceGovernorTest, ShutdownCancelledStallKeepsCharge) {
  TempDir dir("gov_shutdown");
  RealClock clock;
  obs::MetricRegistry registry;
  ResourceGovernor gov;  // Unlimited: tracks parked counts only.

  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 1000.0;  // ~1000s stall: never expires here.
  opts.popularity.bounds = {5.0, 3600.0};
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.async_stalls = true;
  copts.governor = &gov;
  copts.metrics = &registry;

  std::atomic<bool> completed{false};
  std::atomic<bool> cancelled{false};
  // Every completed request (including the zero-delay CREATE TABLE /
  // bulk load below) lands a histogram sample, so assert deltas.
  obs::Histogram* h = registry.GetHistogram(
      "tarpit_delay_charged_ns", {{"policy", "access-popularity"}});
  int64_t baseline = 0;
  {
    auto cdb = ConcurrentProtectedDatabase::Open(dir.path(), "items",
                                                 &clock, opts, copts);
    ASSERT_TRUE(cdb.ok()) << cdb.status().ToString();
    ASSERT_TRUE((*cdb)
                    ->ExecuteSql("CREATE TABLE items (id INT PRIMARY "
                                 "KEY, v DOUBLE)")
                    .ok());
    ASSERT_TRUE((*cdb)->BulkLoadRow({Value(int64_t{1}), Value(1.0)}).ok());

    baseline = h->Count();
    (*cdb)->GetByKeyAsync(1, [&](Result<ProtectedResult> r) {
      cancelled = r.status().IsCancelled();
      completed = true;
    });
    // Parked (the stall is minutes long); charged already.
    EXPECT_FALSE(completed.load());
    EXPECT_EQ(gov.parked_stalls(), 1u);
    auto m = (*cdb)->Metrics();
    EXPECT_EQ(m.delays_charged, 1u);
    EXPECT_GE(m.total_delay_seconds, 5.0);
    EXPECT_EQ(h->Count(), baseline);  // Not reported until completion.
    // Destructor shuts the wheel down, cancelling the parked stall.
  }
  EXPECT_TRUE(completed.load());
  EXPECT_TRUE(cancelled.load());
  EXPECT_EQ(gov.parked_stalls(), 0u);  // Released on cancellation.
  // The regression: the delta was 0 when cancelled completions skipped
  // the histogram, silently under-reporting every shutdown-drained
  // charge. The ~1000s stall dwarfs the zero-delay setup samples, so
  // Sum() also pins the cancelled charge specifically.
  EXPECT_EQ(h->Count(), baseline + 1);
  EXPECT_GE(static_cast<double>(h->Sum()), 5e9);  // >= 5s in ns.
}

}  // namespace
}  // namespace tarpit
