// Deterministic attack-regression suite: the adversary zoo vs the
// defense-layer ladder on a virtual clock with fixed seeds. Every
// number in here is reproducible bit-for-bit -- a change in any layer
// that moves time-to-extract or charged-delay totals fails loudly.
//
// Labeled `adversary` (the regression matrix) and `concurrency` (the
// shared-reputation-store stress runs under TSan).

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/protected_db.h"
#include "defense/query_gate.h"
#include "defense/reputation.h"
#include "sim/adversary_zoo.h"
#include "sim/gate_attack.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

int StressIters(int default_iters) {
  if (const char* env = std::getenv("TARPIT_STRESS_ITERS")) {
    const int v = std::atoi(env);
    if (v > 0) return std::min(v, default_iters);
  }
  return default_iters;
}

/// The defense-layer ladder the regression matrix walks. Each rung
/// keeps every knob of the rung below it and adds one mechanism.
enum class Layer {
  kPopularityOnly,      // Paper section 2: per-tuple delay alone.
  kCoverage,            // + per-identity coverage escalation.
  kCoverageReputation,  // + reputation-escalating delay.
};

const char* LayerName(Layer layer) {
  switch (layer) {
    case Layer::kPopularityOnly:
      return "popularity";
    case Layer::kCoverage:
      return "coverage";
    case Layer::kCoverageReputation:
      return "coverage+reputation";
  }
  return "?";
}

/// One self-contained defended database + gate on its own virtual
/// timeline. Fresh per run: popularity, coverage, and reputation state
/// all start cold, so runs are independent and deterministic.
struct Stack {
  fs::path dir;
  std::unique_ptr<VirtualClock> clock;
  std::unique_ptr<ProtectedDatabase> pdb;
  std::unique_ptr<ReputationStore> reputation;
  std::unique_ptr<QueryGate> gate;

  ~Stack() {
    gate.reset();
    pdb.reset();
    if (!dir.empty()) fs::remove_all(dir);
  }
};

/// Builds a stack whose table holds every key in [1, n] for which
/// `present` returns true. Flat popularity (everything charges the
/// 1-second cap) so layer effects are the ONLY thing separating runs.
std::unique_ptr<Stack> MakeStack(Layer layer, const std::string& name,
                                 int64_t n,
                                 bool (*present)(int64_t) = nullptr) {
  auto stack = std::make_unique<Stack>();
  stack->dir = fs::temp_directory_path() /
               ("tarpit_advreg_" + name + "_" +
                std::to_string(::getpid()));
  fs::remove_all(stack->dir);
  fs::create_directories(stack->dir);
  stack->clock = std::make_unique<VirtualClock>();

  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 1e9;  // Everything costs the cap.
  opts.popularity.bounds = {0.0, 1.0};
  opts.defer_delay_sleep = true;  // Discrete-event drivers advance time.
  auto pdb = ProtectedDatabase::Open(stack->dir.string(), "items",
                                     stack->clock.get(), opts);
  EXPECT_TRUE(pdb.ok());
  if (!pdb.ok()) return nullptr;
  stack->pdb = std::move(*pdb);
  EXPECT_TRUE(stack->pdb
                  ->ExecuteSql(
                      "CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
                  .ok());
  for (int64_t key = 1; key <= n; ++key) {
    if (present != nullptr && !present(key)) continue;
    EXPECT_TRUE(
        stack->pdb->BulkLoadRow({Value(key), Value(1.0)}).ok());
  }

  QueryGateOptions gate_opts;
  gate_opts.registration_seconds_per_account = 0.0;
  gate_opts.registration_burst = 1e9;
  gate_opts.per_user_queries_per_second = 5.0;
  gate_opts.per_user_burst = 20.0;
  gate_opts.per_subnet_queries_per_second = 1e9;
  gate_opts.per_subnet_burst = 1e9;
  if (layer != Layer::kPopularityOnly) {
    gate_opts.coverage_escalation = true;
    gate_opts.coverage.free_coverage = 0.01;
    gate_opts.coverage.max_coverage = 0.25;
    gate_opts.coverage.max_escalation = 20.0;
  }
  if (layer == Layer::kCoverageReputation) {
    ReputationOptions rep;
    rep.growth = 2.0;
    rep.subnet_growth = 1.5;
    rep.half_life_seconds = 1e9;  // No decay inside one attack.
    rep.max_penalty = 64.0;
    rep.max_subnet_penalty = 64.0;
    rep.breadth_free_fraction = 0.01;
    rep.breadth_signal_stride = 0.05;
    stack->reputation = std::make_unique<ReputationStore>(rep);
    gate_opts.reputation = stack->reputation.get();
  }
  stack->gate =
      std::make_unique<QueryGate>(stack->pdb.get(), gate_opts);
  return stack;
}

constexpr int64_t kN = 120;

// ---------- Determinism: same seed, bit-identical replay ----------

TEST(AdversaryRegressionTest, SlowLowReplaysBitIdentically) {
  SlowLowConfig config;
  config.n = kN;
  SlowLowReport a, b;
  {
    auto stack = MakeStack(Layer::kCoverageReputation, "det_sl_a", kN);
    ASSERT_NE(stack, nullptr);
    a = RunSlowLowExtraction(stack->gate.get(), stack->clock.get(),
                             config);
  }
  {
    auto stack = MakeStack(Layer::kCoverageReputation, "det_sl_b", kN);
    ASSERT_NE(stack, nullptr);
    b = RunSlowLowExtraction(stack->gate.get(), stack->clock.get(),
                             config);
  }
  EXPECT_TRUE(a.completed);
  EXPECT_DOUBLE_EQ(a.attack_seconds, b.attack_seconds);
  EXPECT_DOUBLE_EQ(a.total_delay_seconds, b.total_delay_seconds);
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.rate_limited, b.rate_limited);
}

TEST(AdversaryRegressionTest, SybilChurnReplaysBitIdentically) {
  SybilChurnConfig config;
  config.n = kN;
  config.fleet_size = 4;
  config.queries_per_identity = 10;
  config.subnet_pool = 2;
  SybilChurnReport a, b;
  {
    auto stack = MakeStack(Layer::kCoverageReputation, "det_sy_a", kN);
    ASSERT_NE(stack, nullptr);
    a = RunSybilChurnExtraction(stack->gate.get(), stack->clock.get(),
                                config);
  }
  {
    auto stack = MakeStack(Layer::kCoverageReputation, "det_sy_b", kN);
    ASSERT_NE(stack, nullptr);
    b = RunSybilChurnExtraction(stack->gate.get(), stack->clock.get(),
                                config);
  }
  EXPECT_TRUE(a.completed);
  EXPECT_DOUBLE_EQ(a.attack_seconds, b.attack_seconds);
  EXPECT_DOUBLE_EQ(a.total_delay_seconds, b.total_delay_seconds);
  EXPECT_EQ(a.identities_registered, b.identities_registered);
}

bool GappedDomain(int64_t key) { return key <= 40 || key >= 61; }

TEST(AdversaryRegressionTest, VolumeInferenceReplaysAndReconstructs) {
  VolumeInferenceConfig config;
  config.domain_max = 100;
  VolumeInferenceReport a, b;
  {
    auto stack = MakeStack(Layer::kCoverageReputation, "det_vi_a", 100,
                           GappedDomain);
    ASSERT_NE(stack, nullptr);
    a = RunVolumeInference(stack->gate.get(), stack->clock.get(),
                           config);
  }
  {
    auto stack = MakeStack(Layer::kCoverageReputation, "det_vi_b", 100,
                           GappedDomain);
    ASSERT_NE(stack, nullptr);
    b = RunVolumeInference(stack->gate.get(), stack->clock.get(),
                           config);
  }
  // The reconstruction is EXACT: the adversary proves precisely which
  // keys exist without fetching a single row.
  ASSERT_TRUE(a.completed);
  ASSERT_EQ(a.present_ranges.size(), 2u);
  EXPECT_EQ(a.present_ranges[0], (std::pair<int64_t, int64_t>{1, 40}));
  EXPECT_EQ(a.present_ranges[1], (std::pair<int64_t, int64_t>{61, 100}));
  EXPECT_EQ(a.keys_identified, 80u);
  EXPECT_DOUBLE_EQ(a.attack_seconds, b.attack_seconds);
  EXPECT_DOUBLE_EQ(a.total_delay_seconds, b.total_delay_seconds);
}

// ---------- Time-to-extract ordering across the ladder ----------

struct LadderTimes {
  double popularity = 0;
  double coverage = 0;
  double coverage_reputation = 0;
};

template <typename Config, typename Runner>
LadderTimes RunLadder(const std::string& name, int64_t n,
                      const Config& config, Runner runner,
                      bool (*present)(int64_t) = nullptr) {
  LadderTimes times;
  for (Layer layer : {Layer::kPopularityOnly, Layer::kCoverage,
                      Layer::kCoverageReputation}) {
    auto stack =
        MakeStack(layer, name + "_" + LayerName(layer), n, present);
    EXPECT_NE(stack, nullptr);
    if (stack == nullptr) return times;
    auto report =
        runner(stack->gate.get(), stack->clock.get(), config);
    EXPECT_TRUE(report.completed)
        << name << " vs " << LayerName(layer);
    switch (layer) {
      case Layer::kPopularityOnly:
        times.popularity = report.attack_seconds;
        break;
      case Layer::kCoverage:
        times.coverage = report.attack_seconds;
        break;
      case Layer::kCoverageReputation:
        times.coverage_reputation = report.attack_seconds;
        break;
    }
  }
  return times;
}

TEST(AdversaryRegressionTest, SlowLowOrderingAcrossLayers) {
  SlowLowConfig config;
  config.n = kN;
  const LadderTimes t =
      RunLadder("ord_sl", kN, config, RunSlowLowExtraction);
  // Each added layer makes extraction strictly slower: the walk covers
  // the whole relation, so coverage escalation and then the
  // reputation surcharge both bite.
  EXPECT_GT(t.coverage, t.popularity);
  EXPECT_GT(t.coverage_reputation, t.coverage);
}

TEST(AdversaryRegressionTest, SybilChurnOrderingAndReputationFactor) {
  SybilChurnConfig config;
  config.n = kN;
  config.fleet_size = 4;
  config.queries_per_identity = 10;
  config.subnet_pool = 2;
  const LadderTimes t =
      RunLadder("ord_sy", kN, config, RunSybilChurnExtraction);
  EXPECT_GE(t.coverage, t.popularity);
  EXPECT_GT(t.coverage_reputation, t.coverage);
  // The acceptance bar: identity churn sheds per-identity state, so
  // only the subnet-keyed reputation makes churn expensive -- at least
  // 5x over the popularity-only baseline.
  EXPECT_GE(t.coverage_reputation, 5.0 * t.popularity)
      << "popularity=" << t.popularity
      << " coverage+reputation=" << t.coverage_reputation;
}

TEST(AdversaryRegressionTest, VolumeInferenceOrderingAcrossLayers) {
  VolumeInferenceConfig config;
  config.domain_max = 100;
  const LadderTimes t = RunLadder("ord_vi", 100, config,
                                  RunVolumeInference, GappedDomain);
  // COUNT probes pay delay over every row they aggregate, so the
  // ladder still orders -- per-tuple delay alone is just far weaker
  // against an adversary that never fetches rows.
  EXPECT_GE(t.coverage, t.popularity);
  EXPECT_GT(t.coverage_reputation, t.coverage);
}

TEST(AdversaryRegressionTest, BruteForceSweepStillOrdered) {
  // The pre-existing sybil sweep (gate_attack.h) rides the same
  // ladder: the zoo extends the matrix, it does not replace it.
  GateAttackConfig config;
  config.n = kN;
  config.identities = 4;
  config.spread_subnets = true;
  LadderTimes times;
  for (Layer layer : {Layer::kPopularityOnly, Layer::kCoverage,
                      Layer::kCoverageReputation}) {
    auto stack = MakeStack(
        layer, std::string("ord_bf_") + LayerName(layer), kN);
    ASSERT_NE(stack, nullptr);
    GateAttackReport report = RunGateExtraction(
        stack->gate.get(), stack->clock.get(), config);
    ASSERT_TRUE(report.completed) << LayerName(layer);
    if (layer == Layer::kPopularityOnly) {
      times.popularity = report.attack_seconds;
    } else if (layer == Layer::kCoverage) {
      times.coverage = report.attack_seconds;
    } else {
      times.coverage_reputation = report.attack_seconds;
    }
  }
  EXPECT_GT(times.coverage, times.popularity);
  EXPECT_GT(times.coverage_reputation, times.coverage);
}

// ---------- Charged-delay totals vs a serial oracle ----------

TEST(AdversaryRegressionTest, SlowLowTotalsMatchSerialOracle) {
  // The slow-and-low driver with jitter off is a plain serial loop:
  // issue key k, wait out the stall, pace, issue k+1. Re-derive its
  // charged-delay total with an independent hand-rolled loop over an
  // identical fresh stack and demand agreement within 0.01%.
  SlowLowConfig config;
  config.n = kN;
  config.pacing_jitter = 0.0;
  double driver_total = 0.0;
  {
    auto stack =
        MakeStack(Layer::kCoverageReputation, "oracle_drv", kN);
    ASSERT_NE(stack, nullptr);
    SlowLowReport report = RunSlowLowExtraction(
        stack->gate.get(), stack->clock.get(), config);
    ASSERT_TRUE(report.completed);
    ASSERT_EQ(report.rate_limited, 0u);  // Paced under the bucket.
    driver_total = report.total_delay_seconds;
  }

  auto stack = MakeStack(Layer::kCoverageReputation, "oracle_ref", kN);
  ASSERT_NE(stack, nullptr);
  VirtualClock* clock = stack->clock.get();
  auto identity = stack->gate->RegisterUser(config.ipv4);
  ASSERT_TRUE(identity.ok());
  const double gap =
      1.0 / (stack->gate->options().per_user_queries_per_second *
             config.rate_headroom);
  double oracle_total = 0.0;
  double next_issue = clock->NowSeconds();
  double busy_until = clock->NowSeconds();
  for (int64_t key = 1; key <= kN; ++key) {
    clock->AdvanceToMicros(static_cast<int64_t>(
        std::max(next_issue, busy_until) * 1e6));
    const double now = clock->NowSeconds();
    auto r = stack->gate->ExecuteSql(
        *identity, "SELECT * FROM items WHERE id = " +
                       std::to_string(key));
    ASSERT_TRUE(r.ok()) << key;
    oracle_total += r->delay_seconds;
    busy_until = now + r->delay_seconds;
    next_issue = now + gap;
  }
  ASSERT_GT(oracle_total, 0.0);
  EXPECT_NEAR(driver_total, oracle_total, oracle_total * 1e-4);
}

// ---------- Shared reputation store under contention ----------

TEST(AdversaryRegressionTest, SharedReputationStoreEightThreads) {
  // One store backing many doors at once: 8 threads hammer the full
  // mutation surface on overlapping principals. Invariants (factor >=
  // 1, counts consistent) must hold throughout; the run is part of the
  // TSan matrix via the `concurrency` label.
  ReputationOptions opts;
  opts.growth = 1.2;
  opts.subnet_growth = 1.1;
  opts.half_life_seconds = 5.0;
  opts.max_identities_per_shard = 64;
  opts.shards = 4;
  ReputationStore store(opts);

  const int iters = StressIters(4000);
  constexpr int kThreads = 8;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &failed, t, iters] {
      for (int i = 0; i < iters; ++i) {
        const uint64_t identity = (t * 7 + i) % 48;
        const uint32_t subnet =
            static_cast<uint32_t>((i % 6) << 8);
        const double now = 0.001 * i;
        switch (i % 5) {
          case 0:
            store.RecordSignal(identity, subnet, now,
                               ReputationSignal::kExternal, 0.5);
            break;
          case 1:
            store.ObserveAccess(identity, subnet, i % 500, 500, now);
            break;
          case 2:
            store.RecordBenign(identity, subnet, now);
            break;
          case 3:
            if (store.PenaltyFactor(identity, subnet, now) < 1.0) {
              failed.store(true);
            }
            break;
          case 4:
            if (i % 97 == 0) store.ForgetIdentity(identity);
            break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  EXPECT_LE(store.tracked_identities(), 4u * 64u);
  EXPECT_GE(store.signals_total(), 1u);
  // The store is still coherent after the storm.
  EXPECT_GE(store.PenaltyFactor(1, 0, 1e9), 1.0);
}

}  // namespace
}  // namespace tarpit
