// Secondary index tests: the in-memory non-unique index, its
// maintenance across mutations, catalog persistence, and the
// SQL/planner integration (CREATE INDEX + SecondaryLookup plans).

#include <filesystem>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "sql/executor.h"
#include "storage/database.h"
#include "storage/secondary_index.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

// ---------- SecondaryIndex unit ----------

TEST(SecondaryIndexTest, InsertLookupErase) {
  SecondaryIndex idx(1);
  idx.Insert(Value("red"), RecordId{1, 0});
  idx.Insert(Value("red"), RecordId{2, 0});
  idx.Insert(Value("blue"), RecordId{3, 0});
  EXPECT_EQ(idx.entries(), 3u);

  std::set<PageId> pages;
  ASSERT_TRUE(idx.LookupEqual(Value("red"), [&](RecordId rid) {
                    pages.insert(rid.page_id);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(pages, (std::set<PageId>{1, 2}));

  idx.Erase(Value("red"), RecordId{1, 0});
  EXPECT_EQ(idx.entries(), 2u);
  pages.clear();
  ASSERT_TRUE(idx.LookupEqual(Value("red"), [&](RecordId rid) {
                    pages.insert(rid.page_id);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(pages, (std::set<PageId>{2}));
  // Erasing a non-existent pair is a no-op.
  idx.Erase(Value("green"), RecordId{9, 9});
  EXPECT_EQ(idx.entries(), 2u);
}

TEST(SecondaryIndexTest, NullsNotIndexed) {
  SecondaryIndex idx(0);
  idx.Insert(Value::Null(), RecordId{1, 0});
  EXPECT_EQ(idx.entries(), 0u);
  int hits = 0;
  ASSERT_TRUE(idx.LookupEqual(Value::Null(), [&](RecordId) {
                    ++hits;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(hits, 0);
}

TEST(SecondaryIndexTest, RangeLookupOrdered) {
  SecondaryIndex idx(0);
  for (int64_t v = 0; v < 20; ++v) {
    idx.Insert(Value(v), RecordId{static_cast<PageId>(v), 0});
  }
  std::vector<PageId> seen;
  ASSERT_TRUE(idx.LookupRange(Value(int64_t{5}), Value(int64_t{8}),
                              [&](RecordId rid) {
                                seen.push_back(rid.page_id);
                                return Status::OK();
                              })
                  .ok());
  EXPECT_EQ(seen, (std::vector<PageId>{5, 6, 7, 8}));
}

// ---------- Through the SQL layer ----------

class SqlIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_idx_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    Open();
    Must("CREATE TABLE users (id INT PRIMARY KEY, city TEXT, "
         "age INT)");
    Must("INSERT INTO users VALUES (1, 'ann_arbor', 30), "
         "(2, 'detroit', 25), (3, 'ann_arbor', 40), "
         "(4, 'lansing', 25), (5, 'detroit', 30)");
  }
  void TearDown() override {
    exec_.reset();
    db_.reset();
    fs::remove_all(dir_);
  }

  void Open() {
    auto db = Database::Open(dir_.string());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    exec_ = std::make_unique<Executor>(db_.get());
  }
  void Reopen() {
    exec_.reset();
    db_.reset();
    Open();
  }
  QueryResult Must(const std::string& sql) {
    auto r = exec_->ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  fs::path dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(SqlIndexTest, CreateIndexSwitchesPlanToSecondaryLookup) {
  QueryResult before = Must("SELECT id FROM users WHERE city = 'detroit'");
  EXPECT_EQ(before.plan.kind, AccessPathKind::kFullScan);

  Must("CREATE INDEX city_idx ON users (city)");
  QueryResult after = Must("SELECT id FROM users WHERE city = 'detroit'");
  EXPECT_EQ(after.plan.kind, AccessPathKind::kSecondaryLookup);
  ASSERT_EQ(after.rows.size(), 2u);
  std::set<int64_t> ids;
  for (const Row& row : after.rows) ids.insert(row[0].AsInt());
  EXPECT_EQ(ids, (std::set<int64_t>{2, 5}));
}

TEST_F(SqlIndexTest, PkPathStillWinsOverSecondary) {
  Must("CREATE INDEX ON users (age)");
  QueryResult r = Must("SELECT * FROM users WHERE id = 3 AND age = 40");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kPointLookup);
}

TEST_F(SqlIndexTest, ResidualPredicateStillApplies) {
  Must("CREATE INDEX ON users (age)");
  QueryResult r =
      Must("SELECT id FROM users WHERE age = 25 AND city = 'detroit'");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kSecondaryLookup);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(SqlIndexTest, IndexMaintainedAcrossMutations) {
  Must("CREATE INDEX ON users (city)");
  Must("INSERT INTO users VALUES (6, 'detroit', 50)");
  Must("UPDATE users SET city = 'detroit' WHERE id = 4");
  Must("DELETE FROM users WHERE id = 2");
  QueryResult r = Must("SELECT id FROM users WHERE city = 'detroit'");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kSecondaryLookup);
  std::set<int64_t> ids;
  for (const Row& row : r.rows) ids.insert(row[0].AsInt());
  EXPECT_EQ(ids, (std::set<int64_t>{4, 5, 6}));
}

TEST_F(SqlIndexTest, IndexRebuiltFromCatalogOnReopen) {
  Must("CREATE INDEX ON users (city)");
  ASSERT_TRUE(db_->CheckpointAll().ok());
  Reopen();
  QueryResult r = Must("SELECT id FROM users WHERE city = 'ann_arbor'");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kSecondaryLookup);
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(SqlIndexTest, AggregateUsesSecondaryPath) {
  Must("CREATE INDEX ON users (age)");
  QueryResult r = Must("SELECT COUNT(*) FROM users WHERE age = 25");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kSecondaryLookup);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
}

TEST_F(SqlIndexTest, UpdateAndDeleteUseSecondaryPath) {
  Must("CREATE INDEX ON users (city)");
  QueryResult up =
      Must("UPDATE users SET age = 99 WHERE city = 'lansing'");
  EXPECT_EQ(up.plan.kind, AccessPathKind::kSecondaryLookup);
  EXPECT_EQ(up.affected, 1u);
  QueryResult del = Must("DELETE FROM users WHERE city = 'lansing'");
  EXPECT_EQ(del.plan.kind, AccessPathKind::kSecondaryLookup);
  EXPECT_EQ(del.affected, 1u);
}

TEST_F(SqlIndexTest, Errors) {
  EXPECT_FALSE(exec_->ExecuteSql("CREATE INDEX ON ghost (x)").ok());
  EXPECT_FALSE(exec_->ExecuteSql("CREATE INDEX ON users (nope)").ok());
  // PK already has the primary index.
  EXPECT_FALSE(exec_->ExecuteSql("CREATE INDEX ON users (id)").ok());
  Must("CREATE INDEX ON users (city)");
  EXPECT_EQ(
      exec_->ExecuteSql("CREATE INDEX ON users (city)").status().code(),
      StatusCode::kAlreadyExists);
  EXPECT_FALSE(exec_->ExecuteSql("CREATE INDEX users (city)").ok());
}

TEST_F(SqlIndexTest, DoubleColumnIndexWorks) {
  Must("CREATE TABLE m (id INT PRIMARY KEY, score DOUBLE)");
  Must("INSERT INTO m VALUES (1, 1.5), (2, 2.5), (3, 1.5)");
  Must("CREATE INDEX ON m (score)");
  QueryResult r = Must("SELECT id FROM m WHERE score = 1.5");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kSecondaryLookup);
  EXPECT_EQ(r.rows.size(), 2u);
}

}  // namespace
}  // namespace tarpit
