// Plan cache correctness: DDL invalidation, schema-version mismatch
// handling, and template-vs-literal equivalence (cached compilations
// must return exactly what a fresh parse + plan + execute would).

#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/concurrent_db.h"
#include "core/protected_db.h"
#include "sql/plan_cache.h"
#include "storage/database.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_plan_cache_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    Result<std::unique_ptr<Database>> db = Database::Open(dir_.string());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
  }
  void TearDown() override {
    db_.reset();
    fs::remove_all(dir_);
  }

  void CreateItems() {
    Schema schema({{"id", ColumnType::kInt64},
                   {"name", ColumnType::kString},
                   {"v", ColumnType::kDouble}});
    Result<Table*> t = db_->CreateTable("items", schema, "id");
    ASSERT_TRUE(t.ok()) << t.status().ToString();
  }

  fs::path dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(PlanCacheTest, HitReturnsSamePreparedStatement) {
  CreateItems();
  PlanCache cache(64, db_.get());
  auto first = cache.Get("SELECT * FROM items WHERE id = 5");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = cache.Get("SELECT * FROM items WHERE id = 5");
  ASSERT_TRUE(second.ok());
  // Same compilation object: hits share, not re-parse.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_TRUE((*first)->has_select_plan);
  EXPECT_EQ((*first)->select_plan.kind, AccessPathKind::kPointLookup);
  EXPECT_EQ((*first)->select_plan.point_key, 5);
  EXPECT_TRUE((*first)->select_plan.fully_absorbed);
}

TEST_F(PlanCacheTest, DistinctLiteralsAreDistinctEntries) {
  CreateItems();
  PlanCache cache(64, db_.get());
  auto a = cache.Get("SELECT * FROM items WHERE id = 5");
  auto b = cache.Get("SELECT * FROM items WHERE id = 7");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Text-keyed: a cached plan for one literal must never serve
  // another.
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ((*a)->select_plan.point_key, 5);
  EXPECT_EQ((*b)->select_plan.point_key, 7);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST_F(PlanCacheTest, SchemaVersionMismatchRecompiles) {
  CreateItems();
  PlanCache cache(64, db_.get());
  auto before = cache.Get("SELECT * FROM items WHERE name = 'x'");
  ASSERT_TRUE(before.ok());
  // No index on `name` yet: full scan.
  EXPECT_EQ((*before)->select_plan.kind, AccessPathKind::kFullScan);
  const uint64_t v0 = (*before)->schema_version;

  // DDL bumps the version; the cached entry must be treated as a miss
  // even though the text matches and Invalidate() was never called.
  ASSERT_TRUE(db_->CreateIndex("items", "name").ok());
  EXPECT_GT(db_->schema_version(), v0);

  auto after = cache.Get("SELECT * FROM items WHERE name = 'x'");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->get(), after->get());
  EXPECT_EQ((*after)->schema_version, db_->schema_version());
  // The recompiled plan sees the new index.
  EXPECT_EQ((*after)->select_plan.kind,
            AccessPathKind::kSecondaryLookup);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST_F(PlanCacheTest, InvalidateDropsEverything) {
  CreateItems();
  PlanCache cache(64, db_.get());
  ASSERT_TRUE(cache.Get("SELECT * FROM items WHERE id = 1").ok());
  ASSERT_TRUE(cache.Get("SELECT * FROM items WHERE id = 2").ok());
  EXPECT_EQ(cache.size(), 2u);
  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_TRUE(cache.Get("SELECT * FROM items WHERE id = 1").ok());
  EXPECT_EQ(cache.misses(), 3u);
}

TEST_F(PlanCacheTest, EvictsLeastRecentlyUsed) {
  CreateItems();
  // Capacity 8 over 8 stripes = 1 entry per stripe: the second
  // statement landing on a stripe evicts the first.
  PlanCache cache(8, db_.get());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(cache
                    .Get("SELECT * FROM items WHERE id = " +
                         std::to_string(i))
                    .ok());
  }
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST_F(PlanCacheTest, ParseErrorsAreNotCached) {
  CreateItems();
  PlanCache cache(64, db_.get());
  EXPECT_FALSE(cache.Get("SELEKT garbage").ok());
  EXPECT_FALSE(cache.Get("SELEKT garbage").ok());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 2u);  // Both attempts compiled (and failed).
}

TEST_F(PlanCacheTest, UnknownTableCachesParseWithoutPlan) {
  PlanCache cache(64, db_.get());
  auto prep = cache.Get("SELECT * FROM ghosts WHERE id = 1");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  EXPECT_FALSE((*prep)->has_select_plan);
}

// End-to-end through ProtectedDatabase: cached execution must be
// indistinguishable from fresh execution (template-vs-literal
// equivalence), and DDL through the front door must invalidate.
class ProtectedPlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_pdb_cache_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    pdb_.reset();
    fs::remove_all(dir_);
  }

  void OpenDb(size_t cache_capacity) {
    ProtectedDatabaseOptions opts;
    opts.mode = DelayMode::kNone;
    opts.plan_cache_capacity = cache_capacity;
    auto pdb = ProtectedDatabase::Open(dir_.string(), "items", &clock_,
                                       opts);
    ASSERT_TRUE(pdb.ok()) << pdb.status().ToString();
    pdb_ = std::move(*pdb);
    ASSERT_TRUE(pdb_->ExecuteSql("CREATE TABLE items (id INT PRIMARY "
                                 "KEY, name TEXT, v DOUBLE)")
                    .ok());
    for (int i = 1; i <= 50; ++i) {
      ASSERT_TRUE(
          pdb_->ExecuteSql("INSERT INTO items VALUES (" +
                           std::to_string(i) + ", 'n" +
                           std::to_string(i) + "', " +
                           std::to_string(i * 1.5) + ")")
              .ok());
    }
  }

  fs::path dir_;
  RealClock clock_;
  std::unique_ptr<ProtectedDatabase> pdb_;
};

TEST_F(ProtectedPlanCacheTest, CachedEqualsUncached) {
  OpenDb(/*cache_capacity=*/128);
  ASSERT_NE(pdb_->plan_cache(), nullptr);
  // Run each statement twice (second run is a guaranteed cache hit)
  // and compare against a fresh Executor with no cache in the loop.
  Executor fresh(pdb_->raw_database());
  const std::string statements[] = {
      "SELECT * FROM items WHERE id = 7",
      "SELECT name FROM items WHERE id = 7 AND v > 1.0",
      "SELECT * FROM items WHERE id >= 10 AND id <= 20",
      "SELECT * FROM items WHERE id IN (3, 9, 27)",
      "SELECT * FROM items WHERE id >= 5 LIMIT 4",
      "SELECT COUNT(*), SUM(v) FROM items WHERE id <= 30",
      "SELECT * FROM items WHERE name = 'n12'",
  };
  for (const std::string& sql : statements) {
    Result<QueryResult> want = fresh.ExecuteSql(sql);
    ASSERT_TRUE(want.ok()) << sql << ": " << want.status().ToString();
    for (int round = 0; round < 2; ++round) {
      Result<ProtectedResult> got = pdb_->ExecuteSql(sql);
      ASSERT_TRUE(got.ok()) << sql << ": " << got.status().ToString();
      ASSERT_EQ(got->result.rows.size(), want->rows.size())
          << sql << " round " << round;
      for (size_t r = 0; r < want->rows.size(); ++r) {
        ASSERT_EQ(got->result.rows[r].size(), want->rows[r].size());
        for (size_t c = 0; c < want->rows[r].size(); ++c) {
          EXPECT_EQ(got->result.rows[r][c].ToString(),
                    want->rows[r][c].ToString())
              << sql << " row " << r << " col " << c;
        }
      }
      EXPECT_EQ(got->result.touched_keys, want->touched_keys) << sql;
    }
  }
  EXPECT_GT(pdb_->plan_cache()->hits(), 0u);
}

TEST_F(ProtectedPlanCacheTest, DdlThroughFrontDoorInvalidates) {
  OpenDb(/*cache_capacity=*/128);
  const std::string q = "SELECT * FROM items WHERE name = 'n3'";
  Result<ProtectedResult> before = pdb_->ExecuteSql(q);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->result.plan.kind, AccessPathKind::kFullScan);
  ASSERT_EQ(before->result.rows.size(), 1u);

  // CREATE INDEX through the cached front door: the cache must not
  // keep serving the full-scan plan afterwards.
  ASSERT_TRUE(pdb_->ExecuteSql("CREATE INDEX idx ON items (name)").ok());
  EXPECT_EQ(pdb_->plan_cache()->size(), 0u);  // Eagerly invalidated.

  Result<ProtectedResult> after = pdb_->ExecuteSql(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result.plan.kind, AccessPathKind::kSecondaryLookup);
  ASSERT_EQ(after->result.rows.size(), 1u);
  EXPECT_EQ(after->result.touched_keys, before->result.touched_keys);
}

TEST_F(ProtectedPlanCacheTest, DisabledCacheStillWorks) {
  OpenDb(/*cache_capacity=*/0);
  EXPECT_EQ(pdb_->plan_cache(), nullptr);
  Result<ProtectedResult> r =
      pdb_->ExecuteSql("SELECT * FROM items WHERE id = 7");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->result.rows.size(), 1u);
}

TEST_F(ProtectedPlanCacheTest, RepeatedLookupsHitAndStayCorrect) {
  OpenDb(/*cache_capacity=*/128);
  // Setup DDL/INSERTs also went through the cache; count deltas.
  const uint64_t base_misses = pdb_->plan_cache()->misses();
  const uint64_t base_hits = pdb_->plan_cache()->hits();
  for (int round = 0; round < 20; ++round) {
    const int key = 1 + (round % 10);
    Result<ProtectedResult> r = pdb_->ExecuteSql(
        "SELECT * FROM items WHERE id = " + std::to_string(key));
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->result.rows.size(), 1u);
    EXPECT_EQ(r->result.rows[0][0].AsInt(), key);
  }
  // 10 distinct texts -> 10 misses, 10 hits.
  EXPECT_EQ(pdb_->plan_cache()->misses() - base_misses, 10u);
  EXPECT_EQ(pdb_->plan_cache()->hits() - base_hits, 10u);
}

// Regression for the MVCC/DDL interaction: a CREATE INDEX taking the
// exclusive fallback must fence (drain) the version store first, so
// the index build and every subsequent cached secondary-lookup plan
// see the committed-but-unreclaimed writes. Without the fence the
// index would be built from stale base images and the fail-closed
// schema-version recompile would faithfully serve wrong results.
TEST(ConcurrentPlanCacheTest, CreateIndexFencesPendingMvccWrites) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("tarpit_cdb_cache_fence_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  RealClock clock;
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kNone;
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.serve_delays = false;
  copts.mvcc_reclaim_every_commits = 0;  // Keep versions pending until
  copts.mvcc_reclaim_interval_micros = 0;  // something fences.
  auto opened = ConcurrentProtectedDatabase::Open(dir.string(), "items",
                                                  &clock, opts, copts);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto cdb = std::move(*opened);
  ASSERT_TRUE(cdb->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, "
                              "name TEXT, v DOUBLE)")
                  .ok());
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(cdb->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                  Value("n" + std::to_string(i)),
                                  Value(i * 1.5)})
                    .ok());
  }

  // Committed but unreclaimed: an updated name, a new row, a delete.
  ASSERT_TRUE(
      cdb->ExecuteSql("UPDATE items SET name = 'zz' WHERE id = 3").ok());
  ASSERT_TRUE(
      cdb->ExecuteSql("INSERT INTO items VALUES (100, 'zz', 7.0)").ok());
  ASSERT_TRUE(cdb->ExecuteSql("DELETE FROM items WHERE id = 5").ok());
  ASSERT_GE(cdb->version_store()->live_versions(), 3u);

  const uint64_t fences_before = cdb->ddl_fences();
  ASSERT_TRUE(cdb->ExecuteSql("CREATE INDEX idx ON items (name)").ok());
  EXPECT_GT(cdb->ddl_fences(), fences_before);
  EXPECT_EQ(cdb->version_store()->live_versions(), 0u);

  // The (recompiled, secondary-lookup) plan finds exactly the two
  // post-write 'zz' rows; the deleted row's old name finds nothing.
  auto zz = cdb->ExecuteSql("SELECT * FROM items WHERE name = 'zz'");
  ASSERT_TRUE(zz.ok()) << zz.status().ToString();
  EXPECT_EQ(zz->result.plan.kind, AccessPathKind::kSecondaryLookup);
  ASSERT_EQ(zz->result.rows.size(), 2u);
  auto stale = cdb->ExecuteSql("SELECT * FROM items WHERE name = 'n3'");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->result.rows.size(), 0u);
  auto deleted = cdb->ExecuteSql("SELECT * FROM items WHERE name = 'n5'");
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->result.rows.size(), 0u);

  // Post-DDL MVCC writes keep working against the new schema version.
  ASSERT_TRUE(
      cdb->ExecuteSql("UPDATE items SET name = 'qq' WHERE id = 7").ok());
  auto get = cdb->GetByKey(7);
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->result.rows.at(0).at(1).AsString(), "qq");

  cdb.reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tarpit
