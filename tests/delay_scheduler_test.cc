// Edge-case tests for the DelayScheduler timer wheel: zero-delay
// immediate fire, overflow-heap promotion (the "multi-hour stall"
// path, exercised through a deliberately tiny wheel geometry),
// cancellation racing the cascade, virtual-clock instant-fire
// ordering, group cancellation, and the drain/shutdown protocol.
//
// Labeled "concurrency" in tests/CMakeLists.txt: the cancellation and
// drain cases are multi-threaded and are primary TSan targets.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/delay_scheduler.h"

namespace tarpit {
namespace {

int StressIters(int default_iters) {
  const char* env = std::getenv("TARPIT_STRESS_ITERS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return std::min(v, default_iters);
  }
  return default_iters;
}

/// Spin-waits (with sleeps) until `pred` holds, failing after ~10s.
template <typename Pred>
void WaitFor(Pred pred) {
  for (int i = 0; i < 10'000; ++i) {
    if (pred()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "condition not reached within 10s";
}

TEST(DelaySchedulerTest, ZeroDelayFiresImmediatelyInOrder) {
  RealClock clock;
  DelaySchedulerOptions opts;
  opts.num_dispatchers = 1;  // Single dispatcher => FIFO completions.
  DelayScheduler sched(&clock, opts);

  std::mutex mu;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    sched.Submit(0.0, [&, i](bool cancelled) {
      EXPECT_FALSE(cancelled);
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  sched.Drain();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sched.fired_total(), 16u);
  EXPECT_EQ(sched.cancelled_total(), 0u);
  EXPECT_EQ(sched.parked(), 0u);
}

TEST(DelaySchedulerTest, NegativeDelayBehavesLikeZero) {
  RealClock clock;
  DelayScheduler sched(&clock);
  std::atomic<int> fired{0};
  sched.Submit(-1.5, [&](bool cancelled) {
    EXPECT_FALSE(cancelled);
    ++fired;
  });
  sched.Drain();
  EXPECT_EQ(fired.load(), 1);
}

TEST(DelaySchedulerTest, StallIsNeverServedShort) {
  RealClock clock;
  DelaySchedulerOptions opts;
  opts.tick_micros = 1000;
  DelayScheduler sched(&clock, opts);

  const double delay = 0.020;  // 20 ms.
  const int64_t start = clock.NowMicros();
  std::atomic<int64_t> fired_at{0};
  sched.Submit(delay, [&](bool cancelled) {
    EXPECT_FALSE(cancelled);
    fired_at = clock.NowMicros();
  });
  sched.Drain();
  ASSERT_GT(fired_at.load(), 0);
  // Rounded UP to a tick: the defense invariant is "never early".
  EXPECT_GE(fired_at.load() - start, static_cast<int64_t>(delay * 1e6));
}

TEST(DelaySchedulerTest, BeyondHorizonGoesToOverflowAndPromotes) {
  RealClock clock;
  // Tiny geometry: 1 ms tick, 4 slots/level, 2 levels => 16 ms horizon.
  // A 60 ms stall is the scaled analogue of a multi-hour stall on the
  // production wheel (1 ms * 256^3 ~ 4.66 h): it must wait in the
  // overflow heap and be promoted onto the wheel as it comes in range.
  DelaySchedulerOptions opts;
  opts.tick_micros = 1000;
  opts.wheel_bits = 2;
  opts.levels = 2;
  DelayScheduler sched(&clock, opts);
  EXPECT_EQ(sched.horizon_micros(), 16'000);

  const int64_t start = clock.NowMicros();
  std::atomic<int64_t> fired_at{0};
  sched.Submit(0.060, [&](bool cancelled) {
    EXPECT_FALSE(cancelled);
    fired_at = clock.NowMicros();
  });
  EXPECT_EQ(sched.parked(), 1u);
  sched.Drain();
  ASSERT_GT(fired_at.load(), 0);
  EXPECT_GE(fired_at.load() - start, 60'000);
  EXPECT_GE(sched.overflow_promotions(), 1u);
  EXPECT_EQ(sched.fired_total(), 1u);
}

TEST(DelaySchedulerTest, CancelBeforeExpiryFiresCancelledExactlyOnce) {
  RealClock clock;
  DelayScheduler sched(&clock);
  std::atomic<int> calls{0};
  std::atomic<bool> was_cancelled{false};
  TimerId id = sched.Submit(30.0, [&](bool cancelled) {
    ++calls;
    was_cancelled = cancelled;
  });
  ASSERT_NE(id, 0u);
  EXPECT_TRUE(sched.Cancel(id));
  EXPECT_FALSE(sched.Cancel(id));  // Second cancel: already gone.
  sched.Drain();
  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE(was_cancelled.load());
  EXPECT_EQ(sched.cancelled_total(), 1u);
  EXPECT_EQ(sched.fired_total(), 0u);
}

TEST(DelaySchedulerTest, CancellationRacesCascadeExactlyOnce) {
  RealClock clock;
  // Geometry chosen so entries live on levels 0-2 and in the overflow
  // heap, and the driver cascades constantly while cancels race it.
  DelaySchedulerOptions opts;
  opts.tick_micros = 1000;
  opts.wheel_bits = 2;
  opts.levels = 3;  // 64 ms horizon.
  opts.num_dispatchers = 4;
  DelayScheduler sched(&clock, opts);

  const int n = StressIters(400);
  std::vector<std::unique_ptr<std::atomic<int>>> calls;
  calls.reserve(n);
  for (int i = 0; i < n; ++i) {
    calls.push_back(std::make_unique<std::atomic<int>>(0));
  }
  std::vector<TimerId> ids(n);
  for (int i = 0; i < n; ++i) {
    // Delays 1..100 ms: every wheel level plus the overflow heap.
    const double delay = 0.001 * (1 + i % 100);
    ids[i] = sched.Submit(delay, [&, i](bool) { ++*calls[i]; });
  }
  // Two threads cancel every other entry while the wheel cascades and
  // fires the rest underneath them.
  std::atomic<size_t> cancel_hits{0};
  std::thread cancellers[2];
  for (int t = 0; t < 2; ++t) {
    cancellers[t] = std::thread([&, t] {
      for (int i = t; i < n; i += 4) {  // Each thread: every 4th entry.
        if (sched.Cancel(ids[i])) ++cancel_hits;
      }
    });
  }
  for (auto& th : cancellers) th.join();
  sched.Drain();

  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(calls[i]->load(), 1) << "entry " << i;
  }
  EXPECT_EQ(sched.fired_total() + sched.cancelled_total(),
            static_cast<uint64_t>(n));
  EXPECT_EQ(sched.cancelled_total(), cancel_hits.load());
  EXPECT_GT(sched.cascades(), 0u);
}

TEST(DelaySchedulerTest, VirtualClockFiresInstantlyInSubmissionOrder) {
  VirtualClock clock;
  DelaySchedulerOptions opts;
  opts.num_dispatchers = 1;  // FIFO through the completion queue.
  DelayScheduler sched(&clock, opts);
  ASSERT_TRUE(sched.virtual_time());

  std::mutex mu;
  std::vector<int> order;
  // Deliberately decreasing delays: on a real wheel #3 (shortest)
  // would fire first; in virtual instant-fire mode completion order is
  // submission order, so the simulation timeline stays deterministic.
  const double delays[] = {3600.0, 60.0, 1.0, 0.001};
  for (int i = 0; i < 4; ++i) {
    sched.Submit(delays[i], [&, i](bool cancelled) {
      EXPECT_FALSE(cancelled);
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    });
  }
  sched.Drain();
  ASSERT_EQ(order.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sched.parked(), 0u);  // Nothing ever parks.
}

TEST(DelaySchedulerTest, CancelGroupSweepsOnlyThatGroup) {
  RealClock clock;
  DelayScheduler sched(&clock);
  std::atomic<int> cancelled_count{0};
  std::atomic<int> fired_count{0};
  auto cb = [&](bool cancelled) {
    if (cancelled) {
      ++cancelled_count;
    } else {
      ++fired_count;
    }
  };
  for (int i = 0; i < 10; ++i) sched.Submit(30.0, cb, /*group=*/7);
  for (int i = 0; i < 5; ++i) sched.Submit(0.005, cb, /*group=*/9);
  EXPECT_EQ(sched.CancelGroup(7), 10u);
  EXPECT_EQ(sched.CancelGroup(7), 0u);   // Idempotent.
  EXPECT_EQ(sched.CancelGroup(0), 0u);   // Group 0 is "ungrouped".
  sched.Drain();  // Group 9's short stalls expire naturally.
  EXPECT_EQ(cancelled_count.load(), 10);
  EXPECT_EQ(fired_count.load(), 5);
}

TEST(DelaySchedulerTest, ShutdownCancelPendingDropsNoCallback) {
  RealClock clock;
  auto sched = std::make_unique<DelayScheduler>(&clock);
  const int n = 64;
  std::atomic<int> called{0};
  std::atomic<int> cancelled{0};
  for (int i = 0; i < n; ++i) {
    // Hours-long stalls: only cancellation can complete them promptly.
    sched->Submit(3600.0 * (i + 1), [&](bool c) {
      ++called;
      if (c) ++cancelled;
    });
  }
  EXPECT_EQ(sched->parked(), static_cast<size_t>(n));
  sched->Shutdown(DelayScheduler::ShutdownMode::kCancelPending);
  EXPECT_EQ(called.load(), n);
  EXPECT_EQ(cancelled.load(), n);

  // Post-shutdown submissions complete inline, cancelled, id 0.
  std::atomic<bool> late_cancelled{false};
  TimerId late = sched->Submit(1.0, [&](bool c) { late_cancelled = c; });
  EXPECT_EQ(late, 0u);
  EXPECT_TRUE(late_cancelled.load());
}

TEST(DelaySchedulerTest, ShutdownDrainWaitsForNaturalExpiry) {
  RealClock clock;
  DelayScheduler sched(&clock);
  std::atomic<int> fired{0};
  for (int i = 0; i < 8; ++i) {
    sched.Submit(0.005 * (i + 1), [&](bool cancelled) {
      EXPECT_FALSE(cancelled);
      ++fired;
    });
  }
  sched.Shutdown(DelayScheduler::ShutdownMode::kDrain);
  EXPECT_EQ(fired.load(), 8);
  EXPECT_EQ(sched.cancelled_total(), 0u);
}

TEST(DelaySchedulerTest, CallbacksMayResubmit) {
  // Completion callbacks run outside the scheduler lock, so a chain of
  // resubmissions from inside callbacks must not deadlock.
  RealClock clock;
  DelayScheduler sched(&clock);
  std::atomic<int> hops{0};
  std::function<void(bool)> hop = [&](bool cancelled) {
    if (cancelled) return;
    if (++hops < 5) sched.Submit(0.001, hop);
  };
  sched.Submit(0.001, hop);
  WaitFor([&] { return hops.load() >= 5; });
  sched.Drain();
  EXPECT_EQ(hops.load(), 5);
}

TEST(DelaySchedulerTest, PeakParkedTracksHighWaterMark) {
  RealClock clock;
  DelayScheduler sched(&clock);
  for (int i = 0; i < 100; ++i) sched.Submit(3600.0, [](bool) {});
  EXPECT_EQ(sched.parked(), 100u);
  EXPECT_EQ(sched.peak_parked(), 100u);
  sched.Shutdown(DelayScheduler::ShutdownMode::kCancelPending);
  EXPECT_EQ(sched.parked(), 0u);
  EXPECT_EQ(sched.peak_parked(), 100u);  // High-water mark survives.
}

}  // namespace
}  // namespace tarpit
