// End-to-end integration tests: the full pipeline (workload generator
// -> SQL front door -> planner/executor -> storage -> learned counts
// -> delay engine), plus the session manager.

#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/concurrent_db.h"
#include "defense/query_gate.h"
#include "sim/gate_attack.h"
#include "core/protected_db.h"
#include "defense/session_manager.h"
#include "sim/trace_replay.h"
#include "workload/calgary_trace.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

// ---------- SessionManager ----------

TEST(SessionManagerTest, LoginValidateLogout) {
  SessionManager mgr;
  Identity alice{1, Ipv4FromString("10.0.0.1"), 0};
  auto token = mgr.Login(alice, 0.0);
  ASSERT_TRUE(token.ok());
  auto who = mgr.Validate(*token, 10.0);
  ASSERT_TRUE(who.ok());
  EXPECT_EQ(*who, alice.id);
  EXPECT_EQ(mgr.SessionsOf(alice.id), 1u);
  mgr.Logout(*token);
  EXPECT_EQ(mgr.active_sessions(), 0u);
  EXPECT_TRUE(mgr.Validate(*token, 11.0).status().code() ==
              StatusCode::kPermissionDenied);
}

TEST(SessionManagerTest, InactivityExpiry) {
  SessionOptions opts;
  opts.ttl_seconds = 100.0;
  SessionManager mgr(opts);
  Identity user{2, 0, 0};
  auto token = mgr.Login(user, 0.0);
  ASSERT_TRUE(token.ok());
  // Activity at t=90 slides the window.
  ASSERT_TRUE(mgr.Validate(*token, 90.0).ok());
  ASSERT_TRUE(mgr.Validate(*token, 180.0).ok());
  // 101 idle seconds: gone.
  EXPECT_FALSE(mgr.Validate(*token, 290.0).ok());
  EXPECT_EQ(mgr.SessionsOf(user.id), 0u);
}

TEST(SessionManagerTest, PerIdentitySessionCap) {
  SessionOptions opts;
  opts.max_sessions_per_identity = 2;
  SessionManager mgr(opts);
  Identity user{3, 0, 0};
  auto t1 = mgr.Login(user, 0.0);
  auto t2 = mgr.Login(user, 0.0);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto t3 = mgr.Login(user, 0.0);
  EXPECT_TRUE(t3.status().IsResourceExhausted());
  mgr.Logout(*t1);
  EXPECT_TRUE(mgr.Login(user, 0.0).ok());
}

TEST(SessionManagerTest, ExpireStaleSweep) {
  SessionOptions opts;
  opts.ttl_seconds = 10.0;
  opts.max_sessions_per_identity = 0;  // Unlimited.
  SessionManager mgr(opts);
  Identity user{4, 0, 0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(mgr.Login(user, static_cast<double>(i)).ok());
  }
  // At t=12, sessions created at t in {0,1} are stale.
  EXPECT_EQ(mgr.ExpireStale(12.0), 2u);
  EXPECT_EQ(mgr.active_sessions(), 3u);
}

TEST(SessionManagerTest, TokensAreUniqueAndUnforgeable) {
  SessionManager mgr;
  Identity user{5, 0, 0};
  auto t1 = mgr.Login(user, 0.0);
  ASSERT_TRUE(t1.ok());
  // A guessed token (off by one) must not validate.
  EXPECT_FALSE(mgr.Validate(*t1 + 1, 0.0).ok());
}

// The eviction hook fires on every way a session can end -- explicit
// logout, TTL expiry observed by Validate, and the ExpireStale sweep --
// exactly once per session. This is the signal the stall scheduler
// relies on to cancel an evicted session's parked stalls.
TEST(SessionManagerTest, EvictionHookFiresOnEveryEnding) {
  SessionOptions opts;
  opts.ttl_seconds = 10.0;
  opts.max_sessions_per_identity = 0;
  SessionManager mgr(opts);
  std::vector<std::pair<SessionToken, IdentityId>> evicted;
  mgr.set_eviction_hook([&](SessionToken token, IdentityId id) {
    evicted.emplace_back(token, id);
  });

  Identity user{6, 0, 0};
  auto by_logout = mgr.Login(user, 0.0);
  auto by_validate = mgr.Login(user, 0.0);
  auto by_sweep = mgr.Login(user, 0.0);
  ASSERT_TRUE(by_logout.ok());
  ASSERT_TRUE(by_validate.ok());
  ASSERT_TRUE(by_sweep.ok());

  mgr.Logout(*by_logout);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].first, *by_logout);
  EXPECT_EQ(evicted[0].second, user.id);

  // Keep by_sweep fresh a little longer so Validate kills only one.
  ASSERT_TRUE(mgr.Validate(*by_sweep, 5.0).ok());
  EXPECT_FALSE(mgr.Validate(*by_validate, 11.0).ok());  // TTL expiry.
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[1].first, *by_validate);

  EXPECT_EQ(mgr.ExpireStale(16.0), 1u);  // by_sweep idle since t=5.
  ASSERT_EQ(evicted.size(), 3u);
  EXPECT_EQ(evicted[2].first, *by_sweep);

  mgr.Logout(*by_logout);  // Idempotent: no double eviction.
  EXPECT_EQ(evicted.size(), 3u);
}

// End-to-end eviction wiring: the session manager's eviction hook
// feeds ConcurrentProtectedDatabase::CancelSession, so an evicted
// session's hour-long parked stalls complete (Cancelled) immediately
// instead of holding wheel entries until they expire.
TEST(SessionManagerTest, EvictionCancelsParkedStallsEndToEnd) {
  fs::path dir = fs::temp_directory_path() /
                 ("tarpit_evict_e2e_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  RealClock clock;
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.scale = 1e12;
  opts.popularity.bounds = {3600.0, 3600.0};  // Hour-long stalls.
  ConcurrentDatabaseOptions copts;
  copts.async_stalls = true;
  auto opened = ConcurrentProtectedDatabase::Open(dir.string(), "items",
                                                  &clock, opts, copts);
  ASSERT_TRUE(opened.ok());
  auto cdb = std::move(*opened);
  ASSERT_TRUE(
      cdb->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
          .ok());
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(
        cdb->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(1.0)})
            .ok());
  }

  SessionManager mgr;
  mgr.set_eviction_hook([&](SessionToken token, IdentityId) {
    cdb->CancelSession(token);
  });
  Identity user{9, Ipv4FromString("10.0.0.9"), 0};
  auto token = mgr.Login(user, 0.0);
  ASSERT_TRUE(token.ok());

  std::atomic<int> cancelled{0};
  for (int i = 1; i <= 4; ++i) {
    cdb->GetByKeyAsync(
        i,
        [&](Result<ProtectedResult> r) {
          if (!r.ok() && r.status().IsCancelled()) ++cancelled;
        },
        /*session=*/*token);
  }
  EXPECT_EQ(cdb->delay_scheduler()->parked(), 4u);
  mgr.Logout(*token);  // Hook fires -> CancelSession(token).
  cdb->delay_scheduler()->Drain();
  EXPECT_EQ(cancelled.load(), 4);
  EXPECT_EQ(cdb->delay_scheduler()->parked(), 0u);
  cdb.reset();
  fs::remove_all(dir);
}

// ---------- Full-pipeline trace replay ----------

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_e2e_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    pdb_.reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
  VirtualClock clock_;
  std::unique_ptr<ProtectedDatabase> pdb_;
};

TEST_F(EndToEndTest, MiniCalgaryThroughTheFullStack) {
  const uint64_t kObjects = 1'000;
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 0.05;
  opts.popularity.beta = 1.0;
  opts.popularity.bounds = {0.0, 10.0};
  opts.persist_counts = true;
  opts.count_cache_capacity = 256;
  auto pdb = ProtectedDatabase::Open(dir_.string(), "pages", &clock_,
                                     opts);
  ASSERT_TRUE(pdb.ok());
  pdb_ = std::move(*pdb);

  ASSERT_TRUE(pdb_->ExecuteSql("CREATE TABLE pages (id INT PRIMARY KEY, "
                               "url TEXT, bytes INT)")
                  .ok());
  for (uint64_t i = 1; i <= kObjects; ++i) {
    ASSERT_TRUE(
        pdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                           Value("/page/" + std::to_string(i)),
                           Value(static_cast<int64_t>(i * 17 % 9000))})
            .ok());
  }

  CalgaryTraceConfig trace_config;
  trace_config.objects = kObjects;
  trace_config.requests = 30'000;
  trace_config.duration_seconds = 86'400;
  CalgaryTrace trace(trace_config);
  auto requests = trace.Generate();

  auto report = ReplayTrace(pdb_.get(), "pages", requests, &clock_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->requests, 30'000u);
  EXPECT_EQ(report->not_found, 0u);

  // The median legitimate request is cheap...
  const double median = report->per_request_delays.Median();
  EXPECT_LT(median, 0.1);
  // ...while frozen extraction of all 1000 tuples is expensive.
  double extraction = 0;
  for (uint64_t key = 1; key <= kObjects; ++key) {
    extraction += pdb_->PeekDelay(static_cast<int64_t>(key));
  }
  EXPECT_GT(extraction, 100.0 * median * kObjects);

  // Learned state flushed through the write-behind cache.
  ASSERT_TRUE(pdb_->Checkpoint().ok());
  auto counts = pdb_->raw_database()->GetTable("pages__counts");
  ASSERT_TRUE(counts.ok());
  EXPECT_GT((*counts)->NumRows(), 100u);

  // The virtual clock advanced past the trace duration (inter-arrival
  // time) plus all served delay.
  EXPECT_GE(clock_.NowSeconds(), 86'000.0);
}

TEST_F(EndToEndTest, SecondaryIndexInsideProtectedDatabase) {
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 0.01;
  opts.popularity.bounds = {0.0, 10.0};
  auto pdb =
      ProtectedDatabase::Open(dir_.string(), "items", &clock_, opts);
  ASSERT_TRUE(pdb.ok());
  pdb_ = std::move(*pdb);
  ASSERT_TRUE(pdb_->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, "
                               "category TEXT)")
                  .ok());
  for (int i = 1; i <= 60; ++i) {
    ASSERT_TRUE(pdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                   Value(i % 3 == 0 ? "hot" : "cold")})
                    .ok());
  }
  ASSERT_TRUE(pdb_->ExecuteSql("CREATE INDEX ON items (category)").ok());
  auto r = pdb_->ExecuteSql("SELECT id FROM items WHERE category = 'hot'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.plan.kind, AccessPathKind::kSecondaryLookup);
  EXPECT_EQ(r->result.rows.size(), 20u);
  // All 20 returned tuples were charged (multi-tuple aggregation).
  EXPECT_GT(r->delay_seconds, 0.0);
  EXPECT_EQ(r->result.touched_keys.size(), 20u);
}

// ---------- Combined delay mode ----------

TEST_F(EndToEndTest, CombinedMaxModeProtectsBothDimensions) {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kCombinedMax;
  opts.popularity.scale = 0.1;
  opts.popularity.bounds = {0.0, 10.0};
  opts.update.c = 1.0;
  opts.update.n = 50;
  opts.update.bounds = {0.0, 10.0};
  auto pdb =
      ProtectedDatabase::Open(dir_.string(), "items", &clock_, opts);
  ASSERT_TRUE(pdb.ok());
  pdb_ = std::move(*pdb);
  ASSERT_TRUE(pdb_->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, "
                               "v DOUBLE)")
                  .ok());
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(pdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                   Value(1.0)})
                    .ok());
  }
  clock_.AdvanceToMicros(10'000'000);  // 10 s of history.

  // Key 1: popular AND frequently updated -> cheap.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        pdb_->ExecuteSql("UPDATE items SET v = 2.0 WHERE id = 1").ok());
    ASSERT_TRUE(
        pdb_->ExecuteSql("SELECT * FROM items WHERE id = 1").ok());
  }
  // Key 2: popular but never updated -> the update term dominates.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        pdb_->ExecuteSql("SELECT * FROM items WHERE id = 2").ok());
  }
  const double hot_both = pdb_->PeekDelay(1);
  const double hot_access_only = pdb_->PeekDelay(2);
  const double cold = pdb_->PeekDelay(40);
  EXPECT_LT(hot_both, 0.5);
  EXPECT_LT(hot_both, hot_access_only / 10);
  EXPECT_EQ(hot_access_only, 10.0);  // Never updated -> update cap wins.
  EXPECT_EQ(cold, 10.0);
}

// ---------- Gate attack simulator ----------

TEST_F(EndToEndTest, GateAttackSimulatorParallelSemantics) {
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 1e9;  // Everything costs the 1 s cap.
  opts.popularity.bounds = {0.0, 1.0};
  opts.defer_delay_sleep = true;
  auto pdb =
      ProtectedDatabase::Open(dir_.string(), "items", &clock_, opts);
  ASSERT_TRUE(pdb.ok());
  pdb_ = std::move(*pdb);
  ASSERT_TRUE(pdb_->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, "
                               "v DOUBLE)")
                  .ok());
  const uint64_t kN = 100;
  for (uint64_t i = 1; i <= kN; ++i) {
    ASSERT_TRUE(pdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                   Value(1.0)})
                    .ok());
  }

  QueryGateOptions gate_opts;
  gate_opts.registration_seconds_per_account = 0.0;
  gate_opts.registration_burst = 50.0;
  gate_opts.per_user_queries_per_second = 1e9;
  gate_opts.per_user_burst = 1e9;
  gate_opts.per_subnet_queries_per_second = 1e9;
  gate_opts.per_subnet_burst = 1e9;

  // Sequential: 100 tuples x 1 s = ~100 s.
  {
    QueryGate gate(pdb_.get(), gate_opts);
    GateAttackConfig attack;
    attack.n = kN;
    attack.identities = 1;
    VirtualClock* clock = &clock_;
    GateAttackReport r = RunGateExtraction(&gate, clock, attack);
    EXPECT_TRUE(r.completed);
    EXPECT_NEAR(r.attack_seconds, 100.0, 5.0);
  }
  // 10-way parallel with free identities: ~10 s.
  {
    QueryGate gate(pdb_.get(), gate_opts);
    GateAttackConfig attack;
    attack.n = kN;
    attack.identities = 10;
    GateAttackReport r = RunGateExtraction(&gate, &clock_, attack);
    EXPECT_TRUE(r.completed);
    EXPECT_NEAR(r.attack_seconds, 10.0, 2.0);
    EXPECT_EQ(r.identities_used, 10u);
  }
  // Registration limiting restores the cost: 10 ids at 60 s each.
  {
    QueryGateOptions limited = gate_opts;
    limited.registration_seconds_per_account = 60.0;
    limited.registration_burst = 1.0;
    QueryGate gate(pdb_.get(), limited);
    GateAttackConfig attack;
    attack.n = kN;
    attack.identities = 10;
    GateAttackReport r = RunGateExtraction(&gate, &clock_, attack);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.attack_seconds, 9 * 60.0);
  }
}

TEST_F(EndToEndTest, GateAttackRespectsLifetimeCaps) {
  ProtectedDatabaseOptions opts;
  opts.popularity.bounds = {0.0, 0.001};
  opts.defer_delay_sleep = true;
  auto pdb =
      ProtectedDatabase::Open(dir_.string(), "items", &clock_, opts);
  ASSERT_TRUE(pdb.ok());
  pdb_ = std::move(*pdb);
  ASSERT_TRUE(pdb_->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, "
                               "v DOUBLE)")
                  .ok());
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(pdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                   Value(1.0)})
                    .ok());
  }
  QueryGateOptions gate_opts;
  gate_opts.registration_seconds_per_account = 0.0;
  gate_opts.registration_burst = 5.0;
  gate_opts.per_user_queries_per_second = 1e9;
  gate_opts.per_user_burst = 1e9;
  gate_opts.per_subnet_queries_per_second = 1e9;
  gate_opts.per_subnet_burst = 1e9;
  gate_opts.per_user_lifetime_query_limit = 10;
  QueryGate gate(pdb_.get(), gate_opts);
  GateAttackConfig attack;
  attack.n = 50;
  attack.identities = 2;  // 2 ids x 10 queries = 20 tuples max.
  GateAttackReport r = RunGateExtraction(&gate, &clock_, attack);
  EXPECT_FALSE(r.completed);
  EXPECT_LE(r.tuples_obtained, 20u);
}

// ---------- Concurrent serving ----------

class ConcurrentDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_conc_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    cdb_.reset();
    fs::remove_all(dir_);
  }

  void OpenDb(double cap_seconds) {
    ProtectedDatabaseOptions opts;
    opts.popularity.scale = 1e9;  // Everything hits the cap.
    opts.popularity.bounds = {0.0, cap_seconds};
    auto cdb = ConcurrentProtectedDatabase::Open(dir_.string(), "items",
                                                 &clock_, opts);
    ASSERT_TRUE(cdb.ok());
    cdb_ = std::move(*cdb);
    ASSERT_TRUE(cdb_->ExecuteSql("CREATE TABLE items (id INT PRIMARY "
                                 "KEY, v DOUBLE)")
                    .ok());
    for (int i = 1; i <= 100; ++i) {
      ASSERT_TRUE(cdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                     Value(1.0)})
                      .ok());
    }
  }

  fs::path dir_;
  RealClock clock_;
  std::unique_ptr<ConcurrentProtectedDatabase> cdb_;
};

TEST_F(ConcurrentDbTest, ParallelSessionsStallConcurrently) {
  // Every retrieval costs a 20 ms cap. 4 threads x 10 keys each:
  // serialized stalls would take >= 800 ms of wall time; with stalls
  // served outside the lock the attack completes in roughly the
  // per-thread time (~200 ms) -- the parallel speedup that makes
  // registration rate limiting necessary.
  OpenDb(0.020);
  const int kThreads = 4, kPerThread = 10;
  std::atomic<int> errors{0};
  RealClock wall;
  const int64_t start = wall.NowMicros();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int key = 1 + t * kPerThread + i;
        auto r = cdb_->GetByKey(key);
        if (!r.ok()) ++errors;
      }
    });
  }
  for (auto& th : threads) th.join();
  const double elapsed = (wall.NowMicros() - start) / 1e6;
  EXPECT_EQ(errors.load(), 0);
  // Generous bounds: must beat full serialization by at least 2x and
  // must have actually stalled at least one partition's worth.
  EXPECT_LT(elapsed, 0.8 * 0.020 * kThreads * kPerThread / 2);
  EXPECT_GE(elapsed, 0.020 * kPerThread * 0.9);
}

TEST_F(ConcurrentDbTest, ConcurrentMixedQueriesStayConsistent) {
  OpenDb(0.0);  // No stalls; stress the locking only.
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const int key = 1 + (t * 200 + i) % 100;
        auto r = cdb_->ExecuteSql("SELECT * FROM items WHERE id = " +
                                  std::to_string(key));
        if (!r.ok() || r->result.rows.size() != 1) ++errors;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  // All 800 accesses were recorded exactly once.
  EXPECT_EQ(cdb_->unsafe_inner()->access_tracker()->total_requests(),
            800u);
}

}  // namespace
}  // namespace tarpit
