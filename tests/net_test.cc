// Network front-end suite: end-to-end frame protocol over real
// sockets, the framing robustness matrix (truncated frames, oversized
// length prefixes rejected without an allocation, slow-loris read
// timeout, seeded malformed-frame fuzz), keep-alive progress frames,
// delay-before-serve, write backpressure, and the shutdown-ordering
// regression (1k parked connections: no leaked fds, no stall served
// short, charges kept).
//
// Labeled `concurrency`: every test runs the multi-threaded server
// (acceptor + reactors + scheduler dispatchers), so the TSan job
// exercises the full cross-thread handoff. TARPIT_STRESS_ITERS caps
// the fuzz iterations under sanitizer slowdown.

#include <dirent.h>
#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "defense/reputation.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/load_client.h"
#include "net/server.h"
#include "obs/metrics.h"

namespace tarpit {
namespace net {
namespace {

namespace fs = std::filesystem;

int StressIters(int default_iters) {
  if (const char* env = std::getenv("TARPIT_STRESS_ITERS")) {
    const int v = std::atoi(env);
    if (v > 0) return std::min(v, default_iters);
  }
  return default_iters;
}

size_t OpenFdCount() {
  size_t count = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

double NowSecondsSteady() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One served database + server on real sockets. Delay shape is
/// popularity with beta=0 so the bounds clamp forces every request to
/// a known stall.
struct ServerHarness {
  explicit ServerHarness(double delay_min, double delay_max,
                         TarpitServerOptions sopts = {}, int rows = 64) {
    dir = fs::temp_directory_path() /
          ("tarpit_net_test_" +
           std::to_string(
               std::chrono::steady_clock::now().time_since_epoch().count()));
    fs::create_directories(dir);
    ProtectedDatabaseOptions dopts;
    dopts.mode = delay_max > 0 ? DelayMode::kAccessPopularity
                               : DelayMode::kNone;
    dopts.popularity.beta = 0.0;
    dopts.popularity.scale = delay_min;
    dopts.popularity.bounds = {delay_min, delay_max};
    ConcurrentDatabaseOptions copts;
    copts.serve_delays = true;
    copts.async_stalls = true;
    copts.metrics = &metrics;
    copts.reputation = sopts.reputation;
    auto opened = ConcurrentProtectedDatabase::Open(
        dir.string(), "items", &clock, dopts, copts);
    if (!opened.ok()) std::abort();
    db = std::move(*opened);
    if (!db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
             .ok()) {
      std::abort();
    }
    for (int i = 1; i <= rows; ++i) {
      if (!db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(i * 0.5)})
               .ok()) {
        std::abort();
      }
    }
    sopts.metrics = &metrics;
    server = std::make_unique<TarpitServer>(db.get(), &clock, sopts);
    Status s = server->Start();
    if (!s.ok()) std::abort();
  }

  ~ServerHarness() {
    server->Stop();
    db.reset();
    fs::remove_all(dir);
  }

  fs::path dir;
  RealClock clock;
  obs::MetricRegistry metrics;
  std::unique_ptr<ConcurrentProtectedDatabase> db;
  std::unique_ptr<TarpitServer> server;
};

TEST(NetFrameTest, RoundTripAndDecoder) {
  std::string wire;
  AppendFrame(&wire, FrameType::kQuery, "SELECT 1");
  AppendFrame(&wire, FrameType::kGetKey, GetKeyPayload(42));
  FrameDecoder dec(1 << 20);
  // Feed byte-by-byte: the decoder must reassemble across arbitrary
  // fragmentation.
  for (char c : wire) dec.Feed(&c, 1);
  Frame f;
  ASSERT_EQ(dec.Pop(&f), FrameDecoder::Next::kFrame);
  EXPECT_EQ(f.type, FrameType::kQuery);
  EXPECT_EQ(f.payload, "SELECT 1");
  ASSERT_EQ(dec.Pop(&f), FrameDecoder::Next::kFrame);
  EXPECT_EQ(f.type, FrameType::kGetKey);
  int64_t key = 0;
  ASSERT_TRUE(ParseGetKey(f.payload, &key));
  EXPECT_EQ(key, 42);
  EXPECT_EQ(dec.Pop(&f), FrameDecoder::Next::kNeedMore);
  EXPECT_FALSE(dec.has_partial());
}

TEST(NetFrameTest, OversizedLengthRejectedBeforeAllocation) {
  // A header claiming a huge payload must poison the decoder from the
  // 5 header bytes alone -- no payload ever arrives, no buffer is
  // sized from the attacker's length.
  FrameDecoder dec(1024);
  std::string header;
  AppendU32(&header, 1u << 30);
  header.push_back(static_cast<char>(FrameType::kQuery));
  dec.Feed(header.data(), header.size());
  Frame f;
  std::string err;
  EXPECT_EQ(dec.Pop(&f, &err), FrameDecoder::Next::kError);
  EXPECT_TRUE(dec.poisoned());
  // Poisoned stays poisoned: the stream is unsynchronized.
  dec.Feed(header.data(), header.size());
  EXPECT_EQ(dec.Pop(&f), FrameDecoder::Next::kError);
}

TEST(NetServerTest, EndToEndQueryAndGetKey) {
  TarpitServerOptions sopts;
  sopts.num_event_loops = 2;
  ServerHarness h(0.01, 0.02, sopts);

  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  ASSERT_TRUE(client.Hello(/*identity=*/7).ok());

  auto get = client.GetByKey(3);
  ASSERT_TRUE(get.ok()) << get.status().ToString();
  EXPECT_EQ(get->status_code, static_cast<uint8_t>(StatusCode::kOk));
  EXPECT_EQ(get->row_count, 1u);
  EXPECT_GE(get->delay_micros, 10000u);  // Clamped to >= 10ms.
  EXPECT_FALSE(get->text.empty());

  auto sql = client.Query("SELECT * FROM items WHERE id = 5");
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(sql->status_code, static_cast<uint8_t>(StatusCode::kOk));
  EXPECT_EQ(sql->row_count, 1u);

  // Missing key: an engine error surfaces as a kError frame, carried
  // through as data (the connection survives).
  auto miss = client.GetByKey(99999);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->status_code, static_cast<uint8_t>(StatusCode::kNotFound));
  auto again = client.GetByKey(4);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status_code, static_cast<uint8_t>(StatusCode::kOk));
}

TEST(NetServerTest, TruncatedFrameThenHangupIsClean) {
  ServerHarness h(0.0, 0.0);
  {
    FrameClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
    // Header promises 100 bytes; send 10 and vanish.
    std::string partial;
    AppendU32(&partial, 100);
    partial.push_back(static_cast<char>(FrameType::kQuery));
    partial.append(10, 'x');
    ASSERT_TRUE(client.SendRaw(partial).ok());
    client.Close();
  }
  // The server must shrug it off: a fresh connection still serves.
  FrameClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", h.server->port()).ok());
  auto r = probe.GetByKey(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status_code, static_cast<uint8_t>(StatusCode::kOk));
}

TEST(NetServerTest, OversizedFrameClosedWithError) {
  TarpitServerOptions sopts;
  sopts.max_frame_bytes = 4096;
  ServerHarness h(0.0, 0.0, sopts);

  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  std::string header;
  AppendU32(&header, 1u << 31);  // 2 GiB claim, zero bytes sent.
  header.push_back(static_cast<char>(FrameType::kQuery));
  ASSERT_TRUE(client.SendRaw(header).ok());
  // Server answers with kError and closes; either the error frame or
  // the close must arrive promptly.
  auto f = client.RecvFrame(5.0);
  if (f.ok()) {
    EXPECT_EQ(f->type, FrameType::kError);
    WireResponse err;
    ASSERT_TRUE(ParseError(f->payload, &err));
    EXPECT_EQ(err.status_code,
              static_cast<uint8_t>(StatusCode::kInvalidArgument));
    // Next read sees the close.
    auto eof = client.RecvFrame(5.0);
    EXPECT_FALSE(eof.ok());
  }
  EXPECT_GE(h.server->protocol_errors(), 1u);
}

TEST(NetServerTest, SlowLorisPartialFrameTimesOut) {
  TarpitServerOptions sopts;
  sopts.read_timeout_seconds = 0.3;
  ServerHarness h(0.0, 0.0, sopts);

  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  // Drip 3 header bytes and stall forever.
  ASSERT_TRUE(client.SendRaw(std::string("\x08\x00\x00", 3)).ok());
  const double start = NowSecondsSteady();
  // The server must cut us off; a compliant idle connection (no
  // partial frame) would NOT be timed out.
  while (NowSecondsSteady() - start < 5.0) {
    auto f = client.RecvFrame(0.5);
    if (!f.ok() && f.status().code() != StatusCode::kIOError) break;
    if (f.ok() && f->type == FrameType::kError) continue;  // Then EOF.
  }
  EXPECT_LT(NowSecondsSteady() - start, 5.0);
  EXPECT_GE(h.server->protocol_errors(), 1u);
}

TEST(NetServerTest, IdleCompleteFrameConnectionIsNotTimedOut) {
  TarpitServerOptions sopts;
  sopts.read_timeout_seconds = 0.2;
  ServerHarness h(0.0, 0.0, sopts);

  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  auto r = client.GetByKey(1);
  ASSERT_TRUE(r.ok());
  // Sit idle well past the read timeout with NO partial frame: parked
  // patience is the product; idleness must not be punished.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  auto r2 = client.GetByKey(2);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->status_code, static_cast<uint8_t>(StatusCode::kOk));
}

TEST(NetServerTest, MalformedFrameFuzzSeeded) {
  TarpitServerOptions sopts;
  sopts.max_frame_bytes = 4096;
  sopts.read_timeout_seconds = 1.0;
  ServerHarness h(0.0, 0.0, sopts);

  const int iters = StressIters(60);
  Rng rng(0xF4A57EEDu);
  for (int i = 0; i < iters; ++i) {
    FrameClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
    std::string garbage;
    const int len = 1 + static_cast<int>(rng.Next() % 64);
    for (int b = 0; b < len; ++b) {
      garbage.push_back(static_cast<char>(rng.Next() & 0xFF));
    }
    // Half the time, lead with a plausible header so the fuzz reaches
    // the payload path, not just the type switch.
    if (rng.Next() % 2 == 0) {
      std::string framed;
      AppendU32(&framed, static_cast<uint32_t>(garbage.size()));
      framed.push_back(static_cast<char>(rng.Next() & 0xFF));
      framed += garbage;
      garbage = std::move(framed);
    }
    (void)client.SendRaw(garbage);
    // Random hangup vs. lingering.
    if (rng.Next() % 2 == 0) client.Close();
  }
  // Still alive and serving after the barrage.
  FrameClient probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", h.server->port()).ok());
  auto r = probe.GetByKey(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status_code, static_cast<uint8_t>(StatusCode::kOk));
}

TEST(NetServerTest, KeepaliveProgressFramesDuringStall) {
  TarpitServerOptions sopts;
  sopts.keepalive_interval_seconds = 0.1;
  ServerHarness h(0.7, 0.7, sopts);

  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  ASSERT_TRUE(client.SendFrame(FrameType::kGetKey, GetKeyPayload(1)).ok());
  // The stall is 0.7s with keep-alives every 0.1s: progress frames
  // must arrive BEFORE the response, proving liveness mid-park.
  int progress = 0;
  while (true) {
    auto f = client.RecvFrame(5.0);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    if (f->type == FrameType::kProgress) {
      ++progress;
      continue;
    }
    ASSERT_EQ(f->type, FrameType::kResponse);
    break;
  }
  EXPECT_GE(progress, 2);
  EXPECT_GE(h.server->keepalives_sent(), 2u);
}

TEST(NetServerTest, DelayBeforeServePunishesKnownOffenders) {
  ReputationStore reputation;
  TarpitServerOptions sopts;
  sopts.reputation = &reputation;
  sopts.accept_delay_seconds = 0.4;
  sopts.accept_delay_threshold = 1.5;
  ServerHarness h(0.0, 0.0, sopts);

  // Fresh principal: HelloAck is immediate.
  FrameClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", h.server->port()).ok());
  double start = NowSecondsSteady();
  ASSERT_TRUE(fresh.Hello(/*identity=*/100).ok());
  EXPECT_LT(NowSecondsSteady() - start, 0.3);
  EXPECT_EQ(h.server->accept_delays(), 0u);

  // Known offender: one external signal doubles the factor (growth
  // 2.0 >= threshold 1.5), so the NEXT hello parks before serving.
  reputation.RecordSignal(/*identity=*/666, /*subnet24=*/0,
                          h.clock.NowSeconds(), ReputationSignal::kExternal);
  FrameClient offender;
  ASSERT_TRUE(offender.Connect("127.0.0.1", h.server->port()).ok());
  start = NowSecondsSteady();
  ASSERT_TRUE(offender.Hello(/*identity=*/666).ok());
  EXPECT_GE(NowSecondsSteady() - start, 0.4);
  EXPECT_EQ(h.server->accept_delays(), 1u);
}

TEST(NetServerTest, BackpressureClosesUnreadingClient) {
  TarpitServerOptions sopts;
  sopts.max_write_buffer_bytes = 8 * 1024;
  sopts.so_sndbuf_bytes = 4 * 1024;  // Deterministic EAGAIN on loopback.
  ServerHarness h(0.0, 0.0, sopts, /*rows=*/60000);

  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  // Pin our receive window small too, so the kernel cannot absorb the
  // response on our behalf.
  const int rcvbuf = 4 * 1024;
  ::setsockopt(client.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  // A full-table scan serializes to ~1MB -- far past the 8KB
  // write-buffer cap once the kernel buffers fill. We never read.
  ASSERT_TRUE(
      client.SendFrame(FrameType::kQuery, "SELECT * FROM items").ok());
  // Never read while the server is producing: the kernel buffers fill,
  // the server's write buffer crosses the cap, and it must give up.
  const double start = NowSecondsSteady();
  while (h.server->protocol_errors() == 0 &&
         NowSecondsSteady() - start < 10.0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_GE(h.server->protocol_errors(), 1u);
  // The close is observable client-side too: drain what the kernel
  // already buffered and hit the FIN (or RST).
  bool closed = false;
  char sink[64 * 1024];
  while (NowSecondsSteady() - start < 15.0) {
    pollfd pfd{client.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 1000) <= 0) continue;
    const ssize_t n = ::recv(client.fd(), sink, sizeof(sink), 0);
    if (n <= 0) {
      closed = true;
      break;
    }
  }
  EXPECT_TRUE(closed);
}

TEST(NetServerTest, HttpMetricsEndpoint) {
  TarpitServerOptions sopts;
  sopts.enable_http = true;
  ServerHarness h(0.01, 0.02, sopts);

  FrameClient q;
  ASSERT_TRUE(q.Connect("127.0.0.1", h.server->port()).ok());
  ASSERT_TRUE(q.GetByKey(1).ok());

  FrameClient http;
  ASSERT_TRUE(http.Connect("127.0.0.1", h.server->http_port()).ok());
  ASSERT_TRUE(
      http.SendRaw("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  std::string body;
  char chunk[4096];
  while (true) {
    pollfd pfd{http.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) break;
    const ssize_t n = ::recv(http.fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    body.append(chunk, static_cast<size_t>(n));
  }
  EXPECT_NE(body.find("200 OK"), std::string::npos);
  EXPECT_NE(body.find("tarpit_net_responses_total"), std::string::npos);
  EXPECT_NE(body.find("tarpit_net_parked_connections"), std::string::npos);

  FrameClient health;
  ASSERT_TRUE(health.Connect("127.0.0.1", h.server->http_port()).ok());
  ASSERT_TRUE(health.SendRaw("GET /healthz HTTP/1.1\r\n\r\n").ok());
  std::string hb;
  while (true) {
    pollfd pfd{health.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 5000) <= 0) break;
    const ssize_t n = ::recv(health.fd(), chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    hb.append(chunk, static_cast<size_t>(n));
  }
  EXPECT_NE(hb.find("200 OK"), std::string::npos);
}

TEST(NetServerTest, PipelinedFramesServeInOrder) {
  ServerHarness h(0.01, 0.02);
  FrameClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", h.server->port()).ok());
  // Fire 8 requests back-to-back before reading anything: the server
  // parks them one at a time (engine serializes per connection) and
  // answers in order.
  std::string burst;
  for (int k = 1; k <= 8; ++k) {
    AppendFrame(&burst, FrameType::kGetKey, GetKeyPayload(k));
  }
  ASSERT_TRUE(client.SendRaw(burst).ok());
  for (int k = 1; k <= 8; ++k) {
    auto f = client.RecvFrame(10.0);
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    if (f->type == FrameType::kProgress) {
      --k;
      continue;
    }
    ASSERT_EQ(f->type, FrameType::kResponse);
    WireResponse r;
    ASSERT_TRUE(ParseResponse(f->payload, &r));
    EXPECT_EQ(r.status_code, static_cast<uint8_t>(StatusCode::kOk));
  }
}

// Satellite regression: shutdown with ~1k connections parked mid-stall
// must (a) return promptly, (b) leak no fds, (c) never serve a stall
// short, and (d) keep every charge on the books. This pins the
// documented ordering: stop accepting -> drain connections -> only
// then may the scheduler die.
TEST(NetShutdownTest, ShutdownWithParkedConnectionsDrainsClean) {
  const size_t kConns = 1000;
  const size_t fds_before = OpenFdCount();
  double charged = 0.0;
  uint64_t charges = 0;
  {
    TarpitServerOptions sopts;
    sopts.num_event_loops = 2;
    ServerHarness h(30.0, 30.0, sopts);  // Parks outlive the test.

    LoadClientOptions lopts;
    lopts.host = "127.0.0.1";
    lopts.port = h.server->port();
    lopts.connections = kConns;
    lopts.key_min = 1;
    lopts.key_max = 64;
    LoadClient lc(lopts);
    ASSERT_TRUE(lc.Init().ok());
    const double ramp_start = NowSecondsSteady();
    while (!lc.done() && NowSecondsSteady() - ramp_start < 60.0) {
      lc.Drive(100);
    }
    ASSERT_EQ(lc.requests_sent(), kConns);
    // Let the engine park everything.
    const double park_start = NowSecondsSteady();
    while (h.server->parked_connections() < kConns &&
           NowSecondsSteady() - park_start < 30.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_EQ(h.server->parked_connections(), kConns);

    const double stop_start = NowSecondsSteady();
    h.server->Stop();
    // (a) Prompt: cancellation, not stall expiry (stalls are 30s).
    EXPECT_LT(NowSecondsSteady() - stop_start, 10.0);
    // (c) No stall served short: zero responses went out.
    EXPECT_EQ(h.server->responses_sent(), 0u);
    EXPECT_EQ(h.server->parked_connections(), 0u);
    EXPECT_EQ(h.server->active_connections(), 0u);
    EXPECT_EQ(h.server->peak_parked_connections(), kConns);
    // (d) Charges kept: every cancelled stall left its 30s on the
    // ledger (keep-the-charge is what makes hanging up pointless).
    const auto m = h.db->Metrics();
    charged = m.total_delay_seconds;
    charges = m.delays_charged;
    lc.CloseAll();
  }
  EXPECT_GE(charges, kConns);
  EXPECT_GE(charged, 30.0 * kConns * 0.999);
  // (b) No fd leak: everything (server sockets, epoll fds, eventfds,
  // client sockets, database files) is back where we started.
  const size_t fds_after = OpenFdCount();
  EXPECT_LE(fds_after, fds_before + 4);
}

}  // namespace
}  // namespace net
}  // namespace tarpit
