// Multi-thread tests for the sharded buffer pool: 8 threads racing
// fetch / evict / pin over a pool far smaller than the page universe,
// with exact hit+miss accounting.
//
// Primary ThreadSanitizer target: run with -DTARPIT_SANITIZE=thread.
// Honors TARPIT_STRESS_ITERS (see tests/CMakeLists.txt).

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

int StressIters(int default_iters) {
  const char* env = std::getenv("TARPIT_STRESS_ITERS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return std::min(v, default_iters);
  }
  return default_iters;
}

/// Deterministic per-thread sequence (splitmix64).
uint64_t NextRand(uint64_t* state) {
  uint64_t x = (*state += 0x9E3779B97F4A7C15ULL);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Every page carries its id at offset 0 and a derived fill byte, so a
/// torn or misdirected read is detectable.
void StampPage(char* data, PageId id) {
  std::memcpy(data, &id, sizeof(id));
  std::memset(data + sizeof(id), static_cast<int>(0x40 + id % 101),
              64);
}

bool CheckPage(const char* data, PageId id) {
  PageId stored = 0;
  std::memcpy(&stored, data, sizeof(stored));
  if (stored != id) return false;
  const char expect = static_cast<char>(0x40 + id % 101);
  for (size_t i = sizeof(id); i < sizeof(id) + 64; ++i) {
    if (data[i] != expect) return false;
  }
  return true;
}

class BufferPoolConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_bufpool_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ASSERT_TRUE(disk_.Open((dir_ / "pages.db").string()).ok());
  }
  void TearDown() override {
    disk_.Close();
    fs::remove_all(dir_);
  }

  /// Seeds `n` stamped pages through a temporary pool (allocation is
  /// writer-serialized by design, so seeding is single-threaded).
  void SeedPages(size_t n) {
    BufferPool seeder(&disk_, /*capacity=*/4);
    for (size_t i = 0; i < n; ++i) {
      Result<PageGuard> guard = seeder.NewPage();
      ASSERT_TRUE(guard.ok()) << guard.status().ToString();
      StampPage(guard->data(), guard->page_id());
      guard->MarkDirty();
    }
    ASSERT_TRUE(seeder.FlushAll().ok());
  }

  fs::path dir_;
  DiskManager disk_;
};

// 8 threads hammer a 64-page universe through an 8-frame pool: every
// fetch either hits or evicts, pins are held briefly (forcing the
// clock hand to skip pinned frames), and page images must never tear.
TEST_F(BufferPoolConcurrencyTest, RacingFetchEvictPin) {
  constexpr size_t kPages = 64;
  constexpr int kThreads = 8;
  const int iters = StressIters(4000);
  SeedPages(kPages);

  BufferPool pool(&disk_, /*capacity=*/8);
  std::atomic<int> corrupt{0};
  std::atomic<int> errors{0};
  std::atomic<uint64_t> extra_lookups{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng = 0x1234567ULL * (t + 1);
      std::vector<PageGuard> held;
      for (int i = 0; i < iters; ++i) {
        const PageId id =
            static_cast<PageId>(NextRand(&rng) % kPages);
        Result<PageGuard> guard = pool.FetchPage(id);
        if (!guard.ok()) {
          // ResourceExhausted is legitimate: 8 threads x up to 2 pins
          // can transiently cover all 8 frames. Drop held pins and
          // retry until the other threads release theirs. Every failed
          // attempt still counted one lookup (a miss).
          held.clear();
          int attempts = 0;
          while (!guard.ok() && ++attempts <= 1000) {
            extra_lookups.fetch_add(1);
            std::this_thread::yield();
            guard = pool.FetchPage(id);
          }
          if (!guard.ok()) {
            errors.fetch_add(1);
            continue;
          }
        }
        if (!CheckPage(guard->data(), id)) corrupt.fetch_add(1);
        // Keep a trailing pin alive across iterations so eviction
        // races against pinned frames, not just unpinned ones.
        if ((i & 3) == 0) {
          held.clear();
          held.push_back(std::move(*guard));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(errors.load(), 0);
  // Exact accounting: every FetchPage call is exactly one hit or one
  // miss -- duplicate concurrent loads must not double count, and
  // failed (then retried) attempts count each attempt.
  const uint64_t total_fetches = pool.hits() + pool.misses();
  const uint64_t expected =
      static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(iters) +
      extra_lookups.load();
  EXPECT_EQ(total_fetches, expected);
  // Per-shard counters must tile the totals exactly.
  uint64_t shard_sum = 0;
  for (size_t s = 0; s < BufferPool::kShards; ++s) {
    shard_sum += pool.ShardLookups(s);
  }
  EXPECT_EQ(shard_sum, total_fetches);

  // All pins must be gone: a full flush + sequential re-read succeeds
  // and sees untorn images.
  ASSERT_TRUE(pool.FlushAll().ok());
  for (PageId id = 0; id < kPages; ++id) {
    Result<PageGuard> guard = pool.FetchPage(id);
    ASSERT_TRUE(guard.ok()) << guard.status().ToString();
    EXPECT_TRUE(CheckPage(guard->data(), id)) << "page " << id;
  }
}

// All threads converge on one page: the duplicate-load race (several
// threads missing simultaneously) must resolve to a single mapped
// frame, and hits + misses must still equal the fetch count exactly.
TEST_F(BufferPoolConcurrencyTest, DuplicateLoadSinglePage) {
  constexpr int kThreads = 8;
  const int iters = StressIters(2000);
  SeedPages(4);

  BufferPool pool(&disk_, /*capacity=*/8);
  std::atomic<int> corrupt{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        Result<PageGuard> guard = pool.FetchPage(2);
        ASSERT_TRUE(guard.ok()) << guard.status().ToString();
        if (!CheckPage(guard->data(), 2)) corrupt.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(pool.hits() + pool.misses(),
            static_cast<uint64_t>(kThreads) *
                static_cast<uint64_t>(iters));
  // With no eviction pressure the page is unmapped only at startup:
  // the initial stampede misses (each racer counts its lookup miss
  // even if it loses the install race), everything after hits.
  EXPECT_GE(pool.misses(), 1u);
  EXPECT_LE(pool.misses(), static_cast<uint64_t>(kThreads));
}

// Warm pool, capacity >= universe: concurrent readers never miss, and
// concurrent dirty writes through MarkDirty survive FlushAll intact.
TEST_F(BufferPoolConcurrencyTest, WarmPoolAllHits) {
  constexpr size_t kPages = 16;
  constexpr int kThreads = 8;
  const int iters = StressIters(2000);
  SeedPages(kPages);

  BufferPool pool(&disk_, /*capacity=*/32);
  for (PageId id = 0; id < kPages; ++id) {
    Result<PageGuard> guard = pool.FetchPage(id);
    ASSERT_TRUE(guard.ok());
  }
  const uint64_t warm_misses = pool.misses();
  ASSERT_EQ(warm_misses, kPages);

  std::vector<std::thread> threads;
  std::atomic<int> corrupt{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng = 0xABCDEFULL * (t + 1);
      for (int i = 0; i < iters; ++i) {
        const PageId id =
            static_cast<PageId>(NextRand(&rng) % kPages);
        Result<PageGuard> guard = pool.FetchPage(id);
        ASSERT_TRUE(guard.ok());
        if (!CheckPage(guard->data(), id)) corrupt.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(pool.misses(), warm_misses);  // No evictions possible.
  EXPECT_EQ(pool.hits(),
            static_cast<uint64_t>(kThreads) *
                static_cast<uint64_t>(iters));
}

}  // namespace
}  // namespace tarpit
