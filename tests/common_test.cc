#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "common/result.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/zipf.h"

namespace tarpit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("tuple 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: tuple 42");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::IOError("disk"); };
  auto outer = [&]() -> Status {
    TARPIT_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 3;
  };
  auto consume = [&](bool fail) -> Result<int> {
    TARPIT_ASSIGN_OR_RETURN(int v, produce(fail));
    return v * 2;
  };
  EXPECT_EQ(*consume(false), 6);
  EXPECT_FALSE(consume(true).ok());
}

TEST(VirtualClockTest, SleepAdvances) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.SleepForMicros(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SleepForMicros(-5);  // Negative sleeps are ignored.
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.AdvanceToMicros(120);  // Never moves backwards.
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.AdvanceToMicros(200);
  EXPECT_EQ(clock.NowMicros(), 200);
}

TEST(RealClockTest, MonotonicAndSleeps) {
  RealClock clock;
  int64_t a = clock.NowMicros();
  clock.SleepForMicros(2000);
  int64_t b = clock.NowMicros();
  EXPECT_GE(b - a, 2000);
}

TEST(ClockTest, IsVirtualDistinguishesClockKinds) {
  RealClock real;
  VirtualClock virt;
  EXPECT_FALSE(real.IsVirtual());
  EXPECT_TRUE(virt.IsVirtual());
}

TEST(ClockTest, DelayToMicrosRoundsUpNotDown) {
  // The old truncating cast mapped any sub-microsecond delay to zero,
  // so small charges never reached wall time. Rounding is UP: a
  // positive charge always costs at least 1 us.
  EXPECT_EQ(Clock::DelayToMicros(4e-7), 1);
  EXPECT_EQ(Clock::DelayToMicros(1e-9), 1);
  EXPECT_EQ(Clock::DelayToMicros(1e-6), 1);    // Exact: no inflation.
  EXPECT_EQ(Clock::DelayToMicros(1.5e-6), 2);
  EXPECT_EQ(Clock::DelayToMicros(0.25), 250'000);
}

TEST(ClockTest, DelayToMicrosDegenerateInputs) {
  EXPECT_EQ(Clock::DelayToMicros(0.0), 0);
  EXPECT_EQ(Clock::DelayToMicros(-3.0), 0);
  EXPECT_EQ(Clock::DelayToMicros(std::nan("")), 0);
  // Beyond-int64 delays clamp instead of overflowing.
  EXPECT_EQ(Clock::DelayToMicros(1e300),
            std::numeric_limits<int64_t>::max());
}

TEST(ClockTest, VirtualSleepForSecondsAdvancesRoundedUp) {
  VirtualClock clock;
  clock.SleepForSeconds(4e-7);  // Sub-microsecond: still costs a tick.
  EXPECT_EQ(clock.NowMicros(), 1);
}

TEST(StatusTest, CancelledCode) {
  Status s = Status::Cancelled("stall cancelled before expiry");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCancelled());
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  EXPECT_EQ(s.ToString(), "Cancelled: stall cancelled before expiry");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformInBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Uniform(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(2);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[rng.Uniform(8)];
  for (int v : seen) EXPECT_GT(v, 0);
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, ExponentialMeanApproximatesInverseRate) {
  Rng rng(6);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) stat.Add(rng.Exponential(2.0));
  EXPECT_NEAR(stat.mean(), 0.5, 0.02);
}

TEST(ZipfMathTest, HarmonicMatchesDirectSum) {
  // H_{10,1} = 2.9289682...
  EXPECT_NEAR(GeneralizedHarmonic(10, 1.0), 2.9289682539682538, 1e-12);
  // H_{5,2} = 1 + 1/4 + 1/9 + 1/16 + 1/25.
  EXPECT_NEAR(GeneralizedHarmonic(5, 2.0),
              1.0 + 0.25 + 1.0 / 9 + 1.0 / 16 + 0.04, 1e-12);
}

TEST(ZipfMathTest, PowerSumSmall) {
  // 1^2 + 2^2 + 3^2 + 4^2 = 30.
  EXPECT_NEAR(PowerSum(4, 2.0), 30.0, 1e-9);
  // Sum of first 100 integers = 5050.
  EXPECT_NEAR(PowerSum(100, 1.0), 5050.0, 1e-6);
}

TEST(ZipfMathTest, LargeNApproximationIsClose) {
  // For n beyond the direct-sum limit the Euler-Maclaurin branch must
  // agree with the closed form for s=2 tail: H_{inf,2} = pi^2/6.
  double h = GeneralizedHarmonic(50'000'000, 2.0);
  EXPECT_NEAR(h, M_PI * M_PI / 6.0, 1e-7);
}

TEST(ZipfDistributionTest, PmfNormalized) {
  ZipfDistribution z(1000, 1.2);
  double total = 0.0;
  for (uint64_t i = 1; i <= 1000; ++i) total += z.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfDistributionTest, SamplesInRange) {
  ZipfDistribution z(50, 0.8);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    uint64_t s = z.Sample(&rng);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 50u);
  }
}

class ZipfFrequencyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfFrequencyTest, EmpiricalFrequencyMatchesPmf) {
  const double alpha = GetParam();
  const uint64_t n = 100;
  const int draws = 200000;
  ZipfDistribution z(n, alpha);
  Rng rng(11);
  std::vector<int> counts(n + 1, 0);
  for (int i = 0; i < draws; ++i) ++counts[z.Sample(&rng)];
  // Check the head ranks where mass is concentrated.
  for (uint64_t i = 1; i <= 5; ++i) {
    double expected = z.Pmf(i) * draws;
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected) + 30)
        << "rank " << i << " alpha " << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfFrequencyTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.5, 2.0, 2.5));

TEST(ZipfDistributionTest, SingleElement) {
  ZipfDistribution z(1, 1.5);
  Rng rng(8);
  EXPECT_EQ(z.Sample(&rng), 1u);
  EXPECT_NEAR(z.Pmf(1), 1.0, 1e-12);
}

TEST(ExpectedZipfCountsTest, SumsToRequests) {
  auto counts = ExpectedZipfCounts(100, 1.5, 1e6);
  double total = 0.0;
  for (double c : counts) total += c;
  EXPECT_NEAR(total, 1e6, 1e-3);
  // Monotone decreasing by rank.
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LE(counts[i], counts[i - 1]);
  }
}

TEST(RunningStatTest, MeanVarianceMinMax) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(QuantileSketchTest, MedianOddEven) {
  QuantileSketch q;
  for (double x : {5.0, 1.0, 3.0}) q.Add(x);
  EXPECT_NEAR(q.Median(), 3.0, 1e-12);
  q.Add(7.0);
  EXPECT_NEAR(q.Median(), 4.0, 1e-12);  // Interpolated between 3 and 5.
}

TEST(QuantileSketchTest, ExtremesAndInterpolation) {
  QuantileSketch q;
  for (int i = 1; i <= 100; ++i) q.Add(i);
  EXPECT_EQ(q.Quantile(0.0), 1.0);
  EXPECT_EQ(q.Quantile(1.0), 100.0);
  EXPECT_NEAR(q.Quantile(0.25), 25.75, 1e-9);
  EXPECT_NEAR(q.Mean(), 50.5, 1e-9);
}

TEST(QuantileSketchTest, EmptyReturnsZero) {
  QuantileSketch q;
  EXPECT_EQ(q.Median(), 0.0);
  EXPECT_EQ(q.Sum(), 0.0);
}

TEST(QuantileSketchTest, AddAfterQueryStaysSorted) {
  QuantileSketch q;
  q.Add(10.0);
  EXPECT_EQ(q.Median(), 10.0);
  q.Add(0.0);
  q.Add(20.0);
  EXPECT_EQ(q.Median(), 10.0);
}

TEST(LogHistogramTest, BucketsAndOverflow) {
  LogHistogram h(1.0, 10.0, 3);  // [0,1) [1,10) [10,100) overflow.
  h.Add(0.5);
  h.Add(2.0);
  h.Add(50.0);
  h.Add(1e9);
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(1), 1);
  EXPECT_EQ(h.BucketCount(2), 1);
  EXPECT_EQ(h.BucketCount(3), 1);
  EXPECT_EQ(h.BucketLowerBound(0), 0.0);
  EXPECT_NEAR(h.BucketLowerBound(2), 10.0, 1e-9);
}

}  // namespace
}  // namespace tarpit
