// Unit + integration tests for src/obs/: the log-bucketed histogram
// (against the exact QuantileSketch as ground truth), the metric
// registry, the exposition formats, the trace sink, the periodic file
// exporter -- plus the satellites that ride with ISSUE 4: the bounded
// reservoir sketch and clock-injected audit timestamps.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/concurrent_db.h"
#include "defense/audit_log.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

// ---------- Histogram geometry ----------

TEST(HistogramTest, ExactRegionBelowSubBucketCount) {
  // Values under 2^sub_bits get one bucket each: zero relative error.
  for (int64_t v : {0, 1, 2, 63, 127}) {
    const size_t idx = obs::Histogram::BucketIndex(7, v);
    EXPECT_EQ(obs::Histogram::BucketLowerBound(7, idx), v);
    EXPECT_EQ(obs::Histogram::BucketUpperBound(7, idx), v + 1);
  }
}

TEST(HistogramTest, BucketBoundsContainValue) {
  Rng rng(0x0B5);
  for (int sub_bits : {1, 7, 11}) {
    for (int i = 0; i < 2000; ++i) {
      // Log-uniform values across the full positive range.
      const int shift = static_cast<int>(rng.Next() % 63);
      const int64_t v =
          static_cast<int64_t>(rng.Next() & ((uint64_t{1} << shift) - 1));
      const size_t idx = obs::Histogram::BucketIndex(sub_bits, v);
      ASSERT_LT(idx, obs::Histogram::NumBuckets(sub_bits));
      EXPECT_LE(obs::Histogram::BucketLowerBound(sub_bits, idx), v);
      EXPECT_GT(obs::Histogram::BucketUpperBound(sub_bits, idx), v);
    }
  }
}

TEST(HistogramTest, BucketRelativeWidthBounded) {
  // Above the exact region, (hi-lo)/lo <= 2^-sub_bits: the histogram's
  // advertised worst-case quantile error.
  for (int sub_bits : {7, 11}) {
    const double max_rel = std::ldexp(1.0, -sub_bits);
    for (size_t idx = size_t{1} << sub_bits;
         idx < obs::Histogram::NumBuckets(sub_bits); idx += 97) {
      const double lo = static_cast<double>(
          obs::Histogram::BucketLowerBound(sub_bits, idx));
      const double hi = static_cast<double>(
          obs::Histogram::BucketUpperBound(sub_bits, idx));
      EXPECT_LE((hi - lo) / lo, max_rel * (1 + 1e-12));
    }
  }
}

TEST(HistogramTest, CountSumMinMax) {
  obs::Histogram h;
  h.Record(5);
  h.Record(1000);
  h.Record(3);
  h.Record(-7);  // Clamped to 0.
  EXPECT_EQ(h.Count(), 4);
  EXPECT_EQ(h.Sum(), 1008);
  const obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.sum, 1008);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 1000);
}

TEST(HistogramTest, QuantilesMatchExactSketchGroundTruth) {
  // Zipf-ish heavy-tailed values: the regime the delay histograms
  // actually see. Every quantile must agree with the exact sketch
  // within one bucket's relative width.
  obs::HistogramOptions opts;
  opts.sub_bits = 11;
  obs::Histogram h(opts);
  QuantileSketch exact;
  Rng rng(0xFACE);
  for (int i = 0; i < 50000; ++i) {
    const double u = (static_cast<double>(rng.Next() % 1000000) + 1) / 1e6;
    const int64_t v =
        static_cast<int64_t>(2e7 / std::pow(u, 1.2));  // >= 2e7.
    h.Record(v);
    exact.Add(static_cast<double>(v));
  }
  const obs::HistogramSnapshot s = h.Snapshot();
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    const double truth = exact.Quantile(q);
    EXPECT_NEAR(s.Quantile(q) / truth, 1.0, 2 * std::ldexp(1.0, -11))
        << "q=" << q;
  }
  EXPECT_NEAR(s.Median() / exact.Median(), 1.0, 2 * std::ldexp(1.0, -11));
}

TEST(HistogramTest, MergeAccumulates) {
  obs::Histogram a, b;
  for (int i = 1; i <= 100; ++i) a.Record(i);
  for (int i = 101; i <= 200; ++i) b.Record(i);
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 200);
  EXPECT_EQ(a.Sum(), 200 * 201 / 2);
  const obs::HistogramSnapshot s = a.Snapshot();
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 200);
  EXPECT_NEAR(s.Median(), 100.0, 2.0);
}

TEST(HistogramTest, NanosFromSeconds) {
  EXPECT_EQ(obs::NanosFromSeconds(0.0), 0);
  EXPECT_EQ(obs::NanosFromSeconds(-1.0), 0);
  EXPECT_EQ(obs::NanosFromSeconds(1.0), 1000000000);
  EXPECT_EQ(obs::NanosFromSeconds(0.02), 20000000);
  EXPECT_EQ(obs::NanosFromSeconds(1e12), INT64_MAX);  // Clamped.
}

// ---------- Registry ----------

TEST(MetricRegistryTest, SameSeriesSamePointer) {
  obs::MetricRegistry reg;
  obs::Counter* a = reg.GetCounter("hits", {{"table", "t"}, {"pool", "p"}});
  // Label order must not matter.
  obs::Counter* b = reg.GetCounter("hits", {{"pool", "p"}, {"table", "t"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("hits", {{"table", "u"}, {"pool", "p"}}));
  EXPECT_NE(a, reg.GetCounter("hits"));
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricRegistryTest, SnapshotFindAndValues) {
  obs::MetricRegistry reg;
  reg.GetCounter("c", {{"k", "v"}})->Increment(41);
  reg.GetCounter("c", {{"k", "v"}})->Increment();
  reg.GetGauge("g")->Set(-7);
  obs::HistogramOptions opts;
  opts.unit = "us";
  reg.GetHistogram("h", {}, opts)->Record(9);

  const obs::RegistrySnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  const obs::MetricSnapshot* c = snap.Find("c", {{"k", "v"}});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 42);
  EXPECT_EQ(snap.Find("c"), nullptr);  // Labels are part of identity.
  const obs::MetricSnapshot* g = snap.Find("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, -7);
  const obs::MetricSnapshot* h = snap.Find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->histogram.count, 1);
  EXPECT_EQ(h->histogram.unit, "us");
}

// ---------- Exposition ----------

TEST(ExpositionTest, PrometheusTextShape) {
  obs::MetricRegistry reg;
  reg.GetCounter("tarpit_x_total", {{"table", "items"}})->Increment(3);
  reg.GetGauge("tarpit_level")->Set(12);
  obs::HistogramOptions opts;
  opts.unit = "us";
  obs::Histogram* h = reg.GetHistogram("tarpit_lat", {}, opts);
  h->Record(1);
  h->Record(100);
  const std::string text = obs::ToPrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE tarpit_x_total counter"), std::string::npos);
  EXPECT_NE(text.find("tarpit_x_total{table=\"items\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tarpit_level gauge"), std::string::npos);
  EXPECT_NE(text.find("tarpit_level 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tarpit_lat histogram"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("tarpit_lat_sum 101"), std::string::npos);
  EXPECT_NE(text.find("tarpit_lat_count 2"), std::string::npos);
}

TEST(ExpositionTest, JsonContainsSeries) {
  obs::MetricRegistry reg;
  reg.GetCounter("a_total", {{"k", "v"}})->Increment(5);
  reg.GetHistogram("b")->Record(77);
  const std::string json = obs::ToJson(reg.Snapshot());
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":5"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(ExpositionTest, PeriodicExporterWriteOnceAndFlushOnStop) {
  const fs::path dir = fs::temp_directory_path() / "tarpit_obs_test_exp";
  fs::remove_all(dir);
  fs::create_directories(dir);
  obs::MetricRegistry reg;
  reg.GetCounter("tarpit_events_total")->Increment(9);

  obs::PeriodicExporterOptions opts;
  opts.path = (dir / "metrics.prom").string();
  opts.interval_seconds = 3600;  // Never fires during the test.
  opts.flush_on_stop = true;
  {
    obs::PeriodicExporter exporter(&reg, opts);
    EXPECT_TRUE(exporter.WriteOnce());
    EXPECT_GE(exporter.writes(), 1u);
  }  // Destructor stops and flushes.
  std::ifstream in(opts.path);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("tarpit_events_total 9"), std::string::npos);
  fs::remove_all(dir);
}

// ---------- TraceSink ----------

obs::RequestTrace MakeTrace(uint64_t id, int64_t total_micros) {
  obs::RequestTrace t;
  t.request_id = id;
  t.op = "get_by_key";
  t.start_micros = 0;
  t.end_micros = total_micros;
  return t;
}

TEST(TraceSinkTest, KeepsSlowestN) {
  obs::TraceSinkOptions opts;
  opts.slowest_capacity = 4;
  opts.recent_sample_every = 1;
  opts.sample_every = 1;
  obs::TraceSink sink(opts);
  for (uint64_t i = 1; i <= 100; ++i) {
    sink.Complete(MakeTrace(i, static_cast<int64_t>(i)));
  }
  EXPECT_EQ(sink.completed_total(), 100u);
  const std::vector<obs::RequestTrace> slowest = sink.Slowest();
  ASSERT_EQ(slowest.size(), 4u);
  EXPECT_EQ(slowest[0].TotalMicros(), 100);
  EXPECT_EQ(slowest[3].TotalMicros(), 97);
}

TEST(TraceSinkTest, RecentRingSamplesAndWraps) {
  obs::TraceSinkOptions opts;
  opts.recent_capacity = 8;
  opts.recent_sample_every = 2;  // Every other request.
  opts.sample_every = 1;
  obs::TraceSink sink(opts);
  for (uint64_t i = 1; i <= 64; ++i) {
    sink.Complete(MakeTrace(i, 10));
  }
  const std::vector<obs::RequestTrace> recent = sink.Recent();
  ASSERT_EQ(recent.size(), 8u);  // Bounded despite 32 samples.
  // Oldest-first and strictly increasing ids among the sampled set.
  for (size_t i = 1; i < recent.size(); ++i) {
    EXPECT_LT(recent[i - 1].request_id, recent[i].request_id);
  }
}

TEST(TraceSinkTest, HeadSamplingHonorsEvery) {
  obs::TraceSinkOptions opts;
  opts.sample_every = 4;
  obs::TraceSink sink(opts);
  int sampled = 0;
  for (int i = 0; i < 64; ++i) {
    if (sink.ShouldSample()) ++sampled;
  }
  EXPECT_EQ(sampled, 16);

  obs::TraceSinkOptions all;
  all.sample_every = 1;
  obs::TraceSink every(all);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(every.ShouldSample());
}

TEST(TraceSinkTest, ToJsonHasBothSets) {
  obs::TraceSinkOptions opts;
  opts.recent_sample_every = 1;
  opts.sample_every = 1;
  obs::TraceSink sink(opts);
  obs::RequestTrace t = MakeTrace(7, 42);
  t.phase_micros[static_cast<int>(obs::TracePhase::kPark)] = 40;
  sink.Complete(t);
  const std::string json = sink.ToJson();
  EXPECT_NE(json.find("\"completed_total\":1"), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"park\":40"), std::string::npos);
  EXPECT_NE(json.find("\"slowest\":["), std::string::npos);
  EXPECT_NE(json.find("\"recent\":["), std::string::npos);
}

// ---------- BoundedQuantileSketch (satellite) ----------

TEST(BoundedQuantileSketchTest, ExactBelowCapacity) {
  BoundedQuantileSketch sketch(128);
  for (int i = 1; i <= 100; ++i) sketch.Add(i);
  EXPECT_EQ(sketch.count(), 100u);
  EXPECT_EQ(sketch.reservoir_size(), 100u);
  EXPECT_DOUBLE_EQ(sketch.Sum(), 5050.0);
  EXPECT_NEAR(sketch.Median(), 50.5, 1.0);
}

TEST(BoundedQuantileSketchTest, BoundedMemoryApproximateQuantiles) {
  BoundedQuantileSketch sketch(1024);
  for (int i = 0; i < 200000; ++i) {
    sketch.Add(static_cast<double>(i % 1000));
  }
  EXPECT_EQ(sketch.count(), 200000u);
  EXPECT_EQ(sketch.reservoir_size(), 1024u);  // Never grows past cap.
  // Uniform over [0,1000): reservoir median within a few rank percent.
  EXPECT_NEAR(sketch.Median(), 500.0, 60.0);
  EXPECT_NEAR(sketch.Mean(), 499.5, 1e-9);  // Sum/count stay exact.
}

TEST(BoundedQuantileSketchTest, MergePreservesCountAndSum) {
  BoundedQuantileSketch a(64), b(64);
  for (int i = 0; i < 1000; ++i) a.Add(1.0);
  for (int i = 0; i < 3000; ++i) b.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4000u);
  EXPECT_DOUBLE_EQ(a.Sum(), 1000.0 + 15000.0);
  // 3/4 of the mass is 5.0, so the median must be 5.0-ish.
  EXPECT_NEAR(a.Median(), 5.0, 1e-9);
}

// ---------- AuditLog clock stamping (satellite) ----------

TEST(AuditLogClockTest, StampsFromInjectedClock) {
  VirtualClock clock(5'000'000);  // t = 5s.
  AuditLog log(&clock);
  AuditRecord r;
  r.event = AuditEvent::kQueryServed;
  r.time_seconds = 123.0;  // Emitter's value is overridden.
  log.Record(r);
  clock.SleepForSeconds(2.5);
  log.Record(r);

  std::vector<double> stamps;
  log.ForEach([&](const AuditRecord& rec) {
    stamps.push_back(rec.time_seconds);
    return true;
  });
  ASSERT_EQ(stamps.size(), 2u);
  EXPECT_DOUBLE_EQ(stamps[0], 5.0);
  EXPECT_DOUBLE_EQ(stamps[1], 7.5);
}

TEST(AuditLogClockTest, NoClockKeepsEmitterValue) {
  AuditLog log;
  AuditRecord r;
  r.time_seconds = 123.0;
  log.Record(r);
  log.ForEach([&](const AuditRecord& rec) {
    EXPECT_DOUBLE_EQ(rec.time_seconds, 123.0);
    return true;
  });
}

// ---------- End-to-end: instrumented database ----------

TEST(ObsIntegrationTest, DatabasePublishesMetricsAndTraces) {
  const fs::path dir = fs::temp_directory_path() / "tarpit_obs_test_db";
  fs::remove_all(dir);
  fs::create_directories(dir);

  obs::MetricRegistry registry;
  obs::TraceSinkOptions sink_opts;
  sink_opts.sample_every = 1;        // Trace every request.
  sink_opts.recent_sample_every = 1;
  obs::TraceSink sink(sink_opts);

  VirtualClock clock;
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.serve_delays = true;  // Virtual clock: sleeps advance time.
  copts.metrics = &registry;
  copts.trace_sink = &sink;
  auto opened = ConcurrentProtectedDatabase::Open(dir.string(), "items",
                                                  &clock, opts, copts);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto db = std::move(*opened);
  ASSERT_TRUE(
      db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
          .ok());
  for (int i = 1; i <= 32; ++i) {
    ASSERT_TRUE(
        db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(1.0)}).ok());
  }
  constexpr int kReads = 64;
  for (int i = 0; i < kReads; ++i) {
    auto r = db->GetByKey(i % 32 + 1);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  db.reset();  // Quiesce writers: the snapshot below is exact.

  const obs::RegistrySnapshot snap = registry.Snapshot();
  const obs::MetricSnapshot* requests =
      snap.Find("tarpit_db_requests_total");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->value, kReads + 1);  // Reads + CREATE TABLE.
  const obs::MetricSnapshot* hits = snap.Find("tarpit_row_cache_hits_total");
  const obs::MetricSnapshot* misses =
      snap.Find("tarpit_row_cache_misses_total");
  ASSERT_NE(hits, nullptr);
  ASSERT_NE(misses, nullptr);
  EXPECT_EQ(hits->value + misses->value, kReads);
  EXPECT_EQ(misses->value, 32);  // One storage trip per distinct key.
  const obs::MetricSnapshot* delay_hist = snap.Find(
      "tarpit_delay_charged_ns", {{"policy", "access-popularity"}});
  ASSERT_NE(delay_hist, nullptr);
  EXPECT_EQ(delay_hist->histogram.count, kReads + 1);
  EXPECT_GT(delay_hist->histogram.max, 0);

  // Every request traced; the park phase carries the charged stall on
  // the virtual timeline, and no phase time is lost (phases sum to the
  // span).
  EXPECT_EQ(sink.completed_total(), static_cast<uint64_t>(kReads) + 1);
  bool saw_parked_read = false;
  for (const obs::RequestTrace& t : sink.Slowest()) {
    int64_t phase_sum = 0;
    for (int p = 0; p < obs::kNumTracePhases; ++p) {
      phase_sum += t.phase_micros[p];
    }
    EXPECT_EQ(phase_sum, t.TotalMicros());
    if (std::string(t.op) == "get_by_key" &&
        t.phase_micros[static_cast<int>(obs::TracePhase::kPark)] > 0) {
      saw_parked_read = true;
      EXPECT_GT(t.charged_delay_seconds, 0.0);
    }
  }
  EXPECT_TRUE(saw_parked_read);

  // The same pipeline is visible through the exposition surface.
  const std::string prom = obs::ToPrometheusText(snap);
  EXPECT_NE(prom.find("tarpit_db_requests_total 65"), std::string::npos);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tarpit
