// Property test: for any interleaving (seeded schedule shuffling,
// random shard/epoch geometry, random thread counts), a quiesced
// ConcurrentCountTracker equals a serial CountTracker replay of the
// same multiset of keys -- rank, f_max, distinct_seen, per-key counts
// all equal. With decay disabled (delta = 1.0) the learned state is a
// pure function of the multiset, so equality is exact; a second
// property checks the decay>1 invariants (exact total mass, exact
// request counts) that hold for *any* order.

#include <algorithm>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/zipf.h"
#include "stats/concurrent_count_tracker.h"
#include "stats/count_tracker.h"

namespace tarpit {
namespace {

int StressIters(int default_iters) {
  const char* env = std::getenv("TARPIT_STRESS_ITERS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return std::min(v, default_iters);
  }
  return default_iters;
}

/// Seeded Fisher-Yates so the "interleaving" (both the partition into
/// threads and each thread's order) varies per seed.
void Shuffle(std::vector<int64_t>* v, Rng* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    std::swap((*v)[i - 1], (*v)[rng->Uniform(i)]);
  }
}

struct ScheduleParams {
  uint64_t n_keys;
  double alpha;
  int threads;
  size_t shards;
  size_t epoch;
  int total_ops;
};

ScheduleParams DrawParams(Rng* rng, int total_ops) {
  ScheduleParams p;
  p.n_keys = 16 + rng->Uniform(200);
  p.alpha = 0.6 + rng->NextDouble();  // [0.6, 1.6): mild to sharp skew.
  p.threads = 2 + static_cast<int>(rng->Uniform(4));  // 2..5
  p.shards = static_cast<size_t>(1) << rng->Uniform(6);  // 1..32
  p.epoch = 1 + rng->Uniform(128);
  p.total_ops = total_ops;
  return p;
}

/// Draws the multiset, shuffles it, and runs `threads` workers that
/// record their round-robin slices concurrently. Returns the multiset.
std::vector<int64_t> RunConcurrent(const ScheduleParams& p, Rng* rng,
                                   ConcurrentCountTracker* tracker) {
  ZipfDistribution zipf(p.n_keys, p.alpha);
  std::vector<int64_t> ops;
  ops.reserve(p.total_ops);
  for (int i = 0; i < p.total_ops; ++i) {
    ops.push_back(static_cast<int64_t>(zipf.Sample(rng)));
  }
  Shuffle(&ops, rng);

  std::vector<std::thread> workers;
  for (int t = 0; t < p.threads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = t; i < ops.size();
           i += static_cast<size_t>(p.threads)) {
        tracker->Record(ops[i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  tracker->FlushAll();
  return ops;
}

TEST(ConcurrentPropertyTest, QuiescedEqualsSerialReplayNoDecay) {
  const int seeds = StressIters(12);
  const int total_ops = StressIters(2500);
  for (int seed = 1; seed <= seeds; ++seed) {
    Rng rng(7919u * seed);
    const ScheduleParams p = DrawParams(&rng, total_ops);

    CountTracker inner(p.n_keys, /*decay=*/1.0);
    ConcurrentCountTrackerOptions topts;
    topts.num_shards = p.shards;
    topts.epoch_batch = p.epoch;
    ConcurrentCountTracker tracker(&inner, topts);
    const std::vector<int64_t> ops = RunConcurrent(p, &rng, &tracker);

    ASSERT_EQ(tracker.pending_records(), 0u) << "seed " << seed;
    ASSERT_EQ(tracker.total_requests(),
              static_cast<uint64_t>(p.total_ops))
        << "seed " << seed;

    // Serial replay of the same multiset (any order is equivalent when
    // decay is off; use the generation order).
    CountTracker serial(p.n_keys, /*decay=*/1.0);
    for (int64_t key : ops) serial.Record(key);

    ASSERT_EQ(inner.total_requests(), serial.total_requests())
        << "seed " << seed;
    ASSERT_EQ(inner.distinct_seen(), serial.distinct_seen())
        << "seed " << seed;

    const std::set<int64_t> distinct(ops.begin(), ops.end());
    for (int64_t key : distinct) {
      const PopularityStats got = tracker.Stats(key);
      const PopularityStats want = serial.Stats(key);
      ASSERT_DOUBLE_EQ(got.count, want.count)
          << "seed " << seed << " key " << key;
      ASSERT_EQ(got.rank, want.rank)
          << "seed " << seed << " key " << key;
      ASSERT_DOUBLE_EQ(got.max_count, want.max_count)
          << "seed " << seed << " key " << key;
      ASSERT_DOUBLE_EQ(got.total_count, want.total_count)
          << "seed " << seed << " key " << key;
    }
    // Never-seen keys share the bottom rank in both views.
    for (int64_t key = 1; key <= static_cast<int64_t>(p.n_keys); ++key) {
      if (distinct.count(key) > 0) continue;
      ASSERT_EQ(tracker.Stats(key).rank, serial.Stats(key).rank)
          << "seed " << seed << " key " << key;
      break;  // One representative is enough per seed.
    }
  }
}

TEST(ConcurrentPropertyTest, DecayInvariantsHoldForAnyInterleaving) {
  const int seeds = StressIters(6);
  const int total_ops = StressIters(2000);
  const double kDelta = 1.0002;
  for (int seed = 1; seed <= seeds; ++seed) {
    Rng rng(104729u * seed);
    const ScheduleParams p = DrawParams(&rng, total_ops);

    CountTracker inner(p.n_keys, kDelta);
    ConcurrentCountTrackerOptions topts;
    topts.num_shards = p.shards;
    topts.epoch_batch = p.epoch;
    ConcurrentCountTracker tracker(&inner, topts);
    const std::vector<int64_t> ops = RunConcurrent(p, &rng, &tracker);

    CountTracker serial(p.n_keys, kDelta);
    for (int64_t key : ops) serial.Record(key);

    // Request counts and distinct keys are order-independent.
    ASSERT_EQ(inner.total_requests(), serial.total_requests())
        << "seed " << seed;
    ASSERT_EQ(inner.distinct_seen(), serial.distinct_seen())
        << "seed " << seed;
    // Total decayed mass depends only on the request count, never the
    // order: sum_j delta^{-(R-j)} for j = 1..R.
    const double got_mass = tracker.Stats(1).total_count;
    const double want_mass = serial.Stats(1).total_count;
    ASSERT_NEAR(got_mass, want_mass, 1e-6 * want_mass) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tarpit
