// Deterministic multi-thread tests for the sharded concurrent query
// path (ConcurrentProtectedDatabase + ConcurrentCountTracker).
//
// These tests are the primary ThreadSanitizer targets: run them with
// -DTARPIT_SANITIZE=thread. Long-running cases honor the
// TARPIT_STRESS_ITERS environment variable so sanitizer CI can shrink
// them (see tests/CMakeLists.txt and .github/workflows/ci.yml).

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/popularity_delay.h"
#include "stats/concurrent_count_tracker.h"
#include "stats/count_tracker.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

/// Iteration budget for stress-ish loops: TARPIT_STRESS_ITERS caps the
/// default so sanitizer runs stay fast.
int StressIters(int default_iters) {
  const char* env = std::getenv("TARPIT_STRESS_ITERS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return std::min(v, default_iters);
  }
  return default_iters;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_concurrency_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    cdb_.reset();
    fs::remove_all(dir_);
  }

  void OpenDb(int rows, ProtectedDatabaseOptions opts,
              ConcurrentDatabaseOptions copts) {
    auto cdb =
        ConcurrentProtectedDatabase::Open(dir_.string(), "items", &clock_,
                                          opts, copts);
    ASSERT_TRUE(cdb.ok()) << cdb.status().ToString();
    cdb_ = std::move(*cdb);
    ASSERT_TRUE(cdb_->ExecuteSql("CREATE TABLE items (id INT PRIMARY "
                                 "KEY, v DOUBLE)")
                    .ok());
    for (int i = 1; i <= rows; ++i) {
      ASSERT_TRUE(cdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                     Value(1.0)})
                      .ok());
    }
  }

  fs::path dir_;
  RealClock clock_;
  std::unique_ptr<ConcurrentProtectedDatabase> cdb_;
};

// k threads extracting disjoint partitions: each thread's accumulated
// delay must match a serial oracle replay of its own key sequence.
// With beta = 0 (delay depends only on the tuple's own count) and decay
// delta = 1.0 (order-independent counts), the sharded path is exact:
// a thread's own completed records are always visible to its own
// snapshot reads.
TEST_F(ConcurrencyTest, DisjointPartitionsMatchSerialOracle) {
  constexpr int kThreads = 4;
  constexpr int kKeysPerThread = 50;
  const int passes = StressIters(30);
  ProtectedDatabaseOptions opts;
  opts.popularity.beta = 0.0;
  opts.popularity.scale = 0.25;
  opts.popularity.bounds = {0.0, 10.0};
  opts.decay_per_request = 1.0;
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.num_shards = 8;
  copts.stats_shards = 8;
  copts.epoch_batch = 16;
  copts.serve_delays = false;  // Measure, don't stall.
  OpenDb(kThreads * kKeysPerThread, opts, copts);

  std::vector<double> per_thread_delay(kThreads, 0.0);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      double sum = 0.0;
      for (int p = 0; p < passes; ++p) {
        for (int i = 0; i < kKeysPerThread; ++i) {
          const int64_t key = 1 + t * kKeysPerThread + i;
          auto r = cdb_->GetByKey(key);
          if (!r.ok()) {
            ++errors;
            continue;
          }
          sum += r->delay_seconds;
        }
      }
      per_thread_delay[t] = sum;
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(errors.load(), 0);

  // Serial oracle: this thread's partition replayed alone. Disjoint
  // partitions + beta = 0 means other threads cannot perturb it.
  for (int t = 0; t < kThreads; ++t) {
    CountTracker oracle(kThreads * kKeysPerThread, 1.0);
    double expected = 0.0;
    for (int p = 0; p < passes; ++p) {
      for (int i = 0; i < kKeysPerThread; ++i) {
        const int64_t key = 1 + t * kKeysPerThread + i;
        oracle.Record(key);
        expected += PopularityDelayPolicy::DelayFromStats(
            oracle.Stats(key), opts.popularity);
      }
    }
    EXPECT_NEAR(per_thread_delay[t], expected, 1e-9 * expected + 1e-12)
        << "thread " << t;
  }

  // Accounting is exact across the fleet.
  const uint64_t total =
      static_cast<uint64_t>(kThreads) * kKeysPerThread * passes;
  EXPECT_EQ(cdb_->Metrics().total_requests, total);
}

// k threads hammering the same 16 hot keys: no counter update may be
// lost. total_requests is exact; per-key decayed counts stay within the
// epoch-staleness bound of a serial round-robin replay; the total
// decayed mass is permutation-invariant and therefore (near-)exact.
TEST_F(ConcurrencyTest, OverlappingHotKeysLoseNoUpdates) {
  constexpr int kThreads = 4;
  constexpr int kHotKeys = 16;
  const int iters = StressIters(2000);
  const double kDelta = 1.0001;

  CountTracker inner(1000, kDelta);
  ConcurrentCountTrackerOptions topts;
  topts.num_shards = 8;
  topts.epoch_batch = 32;
  ConcurrentCountTracker tracker(&inner, topts);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < iters; ++i) {
        tracker.Record(1 + (i * kThreads + t) % kHotKeys);
      }
    });
  }
  for (auto& th : threads) th.join();
  tracker.FlushAll();

  const uint64_t total = static_cast<uint64_t>(kThreads) * iters;
  EXPECT_EQ(tracker.total_requests(), total);
  EXPECT_EQ(tracker.pending_records(), 0u);
  EXPECT_EQ(tracker.distinct_seen(),
            static_cast<uint64_t>(std::min<int>(kHotKeys, kThreads * iters)));

  // Serial round-robin oracle over the same multiset.
  CountTracker oracle(1000, kDelta);
  for (int i = 0; i < iters; ++i) {
    for (int t = 0; t < kThreads; ++t) {
      oracle.Record(1 + (i * kThreads + t) % kHotKeys);
    }
  }
  ASSERT_EQ(oracle.total_requests(), total);

  // Total decayed mass depends only on the number of requests, not
  // their order: exact up to floating-point noise.
  const double mass = tracker.Stats(1).total_count;
  const double oracle_mass = oracle.Stats(1).total_count;
  EXPECT_NEAR(mass, oracle_mass, 1e-6 * oracle_mass);

  // Per-key counts: the multiset per key is exact (the mass check above
  // already fails if even one increment is lost -- a dropped update
  // shifts total mass by >= delta^-R, far above the 1e-6 tolerance).
  // The *decayed* per-key count depends on where the key's increments
  // landed in the global order; for any interleaving each increment
  // shifts by at most R positions, so got/want lies in
  // [delta^-R, delta^R]. Assert that rigorous envelope.
  const double span =
      std::pow(kDelta, static_cast<double>(total));  // delta^R
  for (int k = 1; k <= kHotKeys; ++k) {
    const double got = tracker.Count(k);
    const double want = oracle.Count(k);
    EXPECT_GT(got, 0.0) << "key " << k;
    EXPECT_GE(got, want / span * (1.0 - 1e-9)) << "key " << k;
    EXPECT_LE(got, want * span * (1.0 + 1e-9)) << "key " << k;
  }
}

// A rank-free spine (rank_reads = false) defers all treap repositions
// past the epoch merge: rank-free reads return count-exact snapshots
// with rank/max_count unset, and rank-bearing Stats() calls take the
// spine exclusively to fold the deferred work. The threaded phase
// races rank-free RecordAndStats against a rank-bearing reader -- the
// TSan matrix for the lock-kind branch -- and the final state must
// match a serial oracle exactly (decay 1.0 makes the replay
// order-independent, including ranks).
TEST_F(ConcurrencyTest, RankFreeSpineDefersTreapWorkSafely) {
  constexpr int kThreads = 4;
  constexpr int kKeys = 64;
  const int iters = StressIters(2000);

  CountTracker inner(kKeys, 1.0);
  ConcurrentCountTrackerOptions topts;
  topts.num_shards = 8;
  topts.epoch_batch = 32;
  topts.rank_reads = false;
  ConcurrentCountTracker tracker(&inner, topts);

  std::atomic<bool> stop{false};
  std::thread rank_reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      // Exclusive-spine path: folds deferred index work mid-run.
      const PopularityStats s = tracker.Stats(7);
      EXPECT_GE(s.rank, 1u);  // Seen => treap rank; unseen => universe.
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> recorders;
  for (int t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&, t] {
      for (int i = 0; i < iters; ++i) {
        // Final counts tie across keys, which is fine: Rank is a pure
        // function of the final (count, key) multiset, so the oracle
        // comparison below is exact regardless of interleaving.
        const int64_t key = 1 + (i * kThreads + t) % kKeys;
        const PopularityStats s = tracker.RecordAndStats(key, false);
        EXPECT_GT(s.count, 0.0);
      }
    });
  }
  for (auto& th : recorders) th.join();
  stop.store(true, std::memory_order_relaxed);
  rank_reader.join();
  tracker.FlushAll();

  const uint64_t total = static_cast<uint64_t>(kThreads) * iters;
  EXPECT_EQ(tracker.total_requests(), total);
  EXPECT_EQ(tracker.pending_records(), 0u);

  // Serial oracle over the same multiset (order-independent at
  // decay 1.0, so any interleaving must land on these exact values).
  CountTracker oracle(kKeys, 1.0);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < iters; ++i) {
      oracle.Record(1 + (i * kThreads + t) % kKeys);
    }
  }
  for (int k = 1; k <= kKeys; ++k) {
    EXPECT_DOUBLE_EQ(tracker.Count(k), oracle.Count(k)) << "key " << k;
    // Rank-bearing read on the rank-free spine: deferred repositions
    // fold here and must reproduce the serial treap's answer.
    EXPECT_EQ(tracker.Stats(k).rank, oracle.Stats(k).rank) << "key " << k;
  }
}

// Destroying the database while sessions were just stalling must not
// deadlock: stalls are served outside every lock, so shutdown only has
// to wait for in-flight computation, never for sleeps it cannot cancel.
TEST_F(ConcurrencyTest, ShutdownWhileStallingDoesNotDeadlock) {
  constexpr int kThreads = 4;
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 1e9;            // Everything hits the cap.
  opts.popularity.bounds = {0.0, 0.02};   // 20 ms stall per retrieval.
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.serve_delays = true;
  OpenDb(64, opts, copts);

  RealClock wall;
  const int64_t start = wall.NowMicros();
  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(17 * (t + 1));
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = cdb_->GetByKey(1 + static_cast<int64_t>(rng.Uniform(64)));
        if (!r.ok()) ++errors;
        ++completed;
      }
    });
  }
  // Let every thread get into (at least) one stall, then shut down.
  wall.SleepForMicros(100'000);
  stop.store(true);
  for (auto& th : threads) th.join();
  cdb_.reset();  // Destructor quiesces the stats spine.
  const double elapsed = (wall.NowMicros() - start) / 1e6;
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GE(completed.load(), kThreads);
  EXPECT_LT(elapsed, 10.0) << "shutdown stalled";
}

// unsafe_inner() misuse guard: the in-flight counter returns to zero
// once queries complete, and unsafe_inner() quiesces the stats spine so
// the inner tracker reflects every completed request. (Calling
// unsafe_inner() *during* a query trips a debug assert -- that path is
// exercised manually, not here, since death tests and threads mix
// poorly.)
TEST_F(ConcurrencyTest, UnsafeInnerGuardAndQuiesce) {
  constexpr int kThreads = 4;
  const int iters = StressIters(500);
  ProtectedDatabaseOptions opts;
  opts.popularity.bounds = {0.0, 0.0};
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.epoch_batch = 64;
  copts.serve_delays = false;
  OpenDb(128, opts, copts);

  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < iters; ++i) {
        auto r =
            cdb_->GetByKey(1 + (t * iters + i) % 128);
        if (!r.ok()) ++errors;
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(errors.load(), 0);
  EXPECT_EQ(cdb_->in_flight_queries(), 0);
  // unsafe_inner() flushes pending epoch deltas: the single-threaded
  // tracker now holds the exact request count.
  EXPECT_EQ(cdb_->unsafe_inner()->access_tracker()->total_requests(),
            static_cast<uint64_t>(kThreads) * iters);
}

// Readers race a SQL writer: the row cache must never serve a value
// that storage no longer holds once the write is visible.
TEST_F(ConcurrencyTest, WritesInvalidateRowCache) {
  constexpr int kRows = 50;
  ProtectedDatabaseOptions opts;
  opts.popularity.bounds = {0.0, 0.0};
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.serve_delays = false;
  OpenDb(kRows, opts, copts);

  // Warm the cache.
  for (int k = 1; k <= kRows; ++k) {
    auto r = cdb_->GetByKey(k);
    ASSERT_TRUE(r.ok());
    ASSERT_DOUBLE_EQ(r->result.rows[0][1].AsDouble(), 1.0);
  }
  ASSERT_GT(cdb_->row_cache_hits() + cdb_->row_cache_misses(), 0u);

  std::atomic<int> errors{0};
  std::vector<std::thread> readers;
  std::atomic<bool> stop{false};
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(101 * (t + 1));
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t key = 1 + static_cast<int64_t>(rng.Uniform(kRows));
        auto r = cdb_->GetByKey(key);
        if (!r.ok()) {
          ++errors;
          continue;
        }
        const double v = r->result.rows[0][1].AsDouble();
        if (v != 1.0 && v != 42.0) ++errors;  // Torn/stale value.
      }
    });
  }
  std::thread writer([&] {
    for (int k = 1; k <= kRows; ++k) {
      auto r = cdb_->ExecuteSql("UPDATE items SET v = 42.0 WHERE id = " +
                                std::to_string(k));
      if (!r.ok()) ++errors;
    }
    stop.store(true);
  });
  writer.join();
  for (auto& th : readers) th.join();
  ASSERT_EQ(errors.load(), 0);

  // Post-quiesce: every read must observe the written value.
  for (int k = 1; k <= kRows; ++k) {
    auto r = cdb_->GetByKey(k);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r->result.rows[0][1].AsDouble(), 42.0) << "key " << k;
  }
}

// SQL SELECTs and striped point reads share one stats spine: the
// merged metrics count every access exactly once.
TEST_F(ConcurrencyTest, SqlAndPointReadsShareOneSpine) {
  constexpr int kThreads = 4;
  const int iters = StressIters(300);
  ProtectedDatabaseOptions opts;
  opts.popularity.bounds = {0.0, 0.0};
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.epoch_batch = 8;
  copts.serve_delays = false;
  OpenDb(100, opts, copts);

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < iters; ++i) {
        const int64_t key = 1 + (t * iters + i) % 100;
        if (t % 2 == 0) {
          auto r = cdb_->GetByKey(key);
          if (!r.ok() || r->result.rows.size() != 1) ++errors;
        } else {
          auto r = cdb_->ExecuteSql("SELECT * FROM items WHERE id = " +
                                    std::to_string(key));
          if (!r.ok() || r->result.rows.size() != 1) ++errors;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(errors.load(), 0);
  EXPECT_EQ(cdb_->Metrics().total_requests,
            static_cast<uint64_t>(kThreads) * iters);
}

// The kGlobalLock baseline (the seed behavior) must keep working -- it
// is the comparison arm of bench_concurrent_scaling.
TEST_F(ConcurrencyTest, GlobalLockModeStillServes) {
  ProtectedDatabaseOptions opts;
  opts.popularity.bounds = {0.0, 0.0};
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kGlobalLock;
  OpenDb(32, opts, copts);

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        auto r = cdb_->GetByKey(1 + (t * 100 + i) % 32);
        if (!r.ok()) ++errors;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(cdb_->Metrics().total_requests, 400u);
  EXPECT_EQ(cdb_->in_flight_queries(), 0);
}

// --- Async stall scheduling (the ISSUE 2 timer-wheel path). -------------

// A single caller submits far more stalling requests than the process
// has threads: they all park on the wheel simultaneously instead of
// each holding a thread for its stall.
TEST_F(ConcurrencyTest, AsyncStallsParkInsteadOfBlocking) {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.scale = 1.0;
  opts.popularity.bounds = {0.05, 0.5};  // Every request stalls >=50ms.
  ConcurrentDatabaseOptions copts;
  copts.async_stalls = true;
  copts.scheduler.num_dispatchers = 2;
  OpenDb(64, opts, copts);

  const int n = StressIters(200);
  std::atomic<int> completed{0};
  std::atomic<int> errors{0};
  for (int i = 0; i < n; ++i) {
    cdb_->GetByKeyAsync(1 + i % 64, [&](Result<ProtectedResult> r) {
      if (!r.ok()) ++errors;
      ++completed;
    });
  }
  // Submission returned without serving any 50ms+ stall: far more
  // requests were in flight at once than the 2 dispatcher threads.
  ASSERT_NE(cdb_->delay_scheduler(), nullptr);
  EXPECT_GT(cdb_->delay_scheduler()->peak_parked(),
            copts.scheduler.num_dispatchers);
  cdb_->delay_scheduler()->Drain();
  EXPECT_EQ(completed.load(), n);
  EXPECT_EQ(errors.load(), 0);
}

// The blocking API still works when async_stalls is on: it becomes a
// park-and-wait shim over the same wheel.
TEST_F(ConcurrencyTest, BlockingShimServesFullStallThroughWheel) {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.scale = 1e9;           // Everything hits the cap.
  opts.popularity.bounds = {0.0, 0.02};  // 20ms stall.
  ConcurrentDatabaseOptions copts;
  copts.async_stalls = true;
  OpenDb(8, opts, copts);

  const int64_t start = clock_.NowMicros();
  auto r = cdb_->GetByKey(3);
  const int64_t elapsed = clock_.NowMicros() - start;
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->delay_seconds, 0.02);
  EXPECT_GE(elapsed, 20'000);  // The stall was really served.
}

// CancelSession completes every stall parked under the session token
// with Cancelled -- the tuple is withheld, not delivered early.
TEST_F(ConcurrencyTest, CancelSessionCancelsParkedStalls) {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.scale = 1e12;
  opts.popularity.bounds = {3600.0, 3600.0};  // Hour-long stalls.
  ConcurrentDatabaseOptions copts;
  copts.async_stalls = true;
  OpenDb(16, opts, copts);

  constexpr StallGroup kSession = 42;
  const int n = 10;
  std::atomic<int> cancelled{0};
  std::atomic<int> delivered{0};
  for (int i = 0; i < n; ++i) {
    cdb_->GetByKeyAsync(
        1 + i,
        [&](Result<ProtectedResult> r) {
          if (!r.ok() && r.status().IsCancelled()) {
            ++cancelled;
          } else {
            ++delivered;
          }
        },
        kSession);
  }
  EXPECT_EQ(cdb_->CancelSession(kSession), static_cast<size_t>(n));
  cdb_->delay_scheduler()->Drain();
  EXPECT_EQ(cancelled.load(), n);
  EXPECT_EQ(delivered.load(), 0);
  // The delays were still CHARGED at admit time -- cancellation never
  // refunds accounting (an evicted attacker keeps its history).
  EXPECT_EQ(cdb_->Metrics().total_requests, static_cast<uint64_t>(n));
}

// Destroying the database with hour-long stalls parked must not hang:
// the destructor shuts the scheduler down with kCancelPending and every
// outstanding completion fires (cancelled) before teardown proceeds.
TEST_F(ConcurrencyTest, ShutdownWithParkedStallsDrainsCleanly) {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.scale = 1e12;
  opts.popularity.bounds = {3600.0, 3600.0};
  ConcurrentDatabaseOptions copts;
  copts.async_stalls = true;
  OpenDb(16, opts, copts);

  const int n = 32;
  std::atomic<int> called{0};
  for (int i = 0; i < n; ++i) {
    cdb_->GetByKeyAsync(1 + i % 16, [&](Result<ProtectedResult> r) {
      EXPECT_TRUE(!r.ok() && r.status().IsCancelled());
      ++called;
    });
  }
  cdb_.reset();  // Must cancel all parked stalls and join.
  EXPECT_EQ(called.load(), n);
}

// ExecuteSqlAsync parks SELECT stalls the same way.
TEST_F(ConcurrencyTest, ExecuteSqlAsyncParksSelectStall) {
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.bounds = {0.01, 0.01};
  ConcurrentDatabaseOptions copts;
  copts.async_stalls = true;
  OpenDb(8, opts, copts);

  std::atomic<bool> done{false};
  std::atomic<bool> ok{false};
  cdb_->ExecuteSqlAsync("SELECT * FROM items WHERE id = 5",
                        [&](Result<ProtectedResult> r) {
                          ok = r.ok() && r->result.rows.size() == 1;
                          done = true;
                        });
  cdb_->delay_scheduler()->Drain();
  EXPECT_TRUE(done.load());
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace tarpit
