#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sql/executor.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "sql/statement_template.h"
#include "storage/database.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

// ---------- Lexer ----------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT * FROM t WHERE id = 3;");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types,
            (std::vector<TokenType>{
                TokenType::kSelect, TokenType::kStar, TokenType::kFrom,
                TokenType::kIdentifier, TokenType::kWhere,
                TokenType::kIdentifier, TokenType::kEq,
                TokenType::kIntLiteral, TokenType::kSemicolon,
                TokenType::kEof}));
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select Select SELECT");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kSelect);
  }
}

TEST(LexerTest, NumericLiterals) {
  auto tokens = Tokenize("42 -17 3.5 -2.5e3 1e-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].int_value, -17);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 3.5);
  EXPECT_DOUBLE_EQ((*tokens)[3].double_value, -2500.0);
  EXPECT_DOUBLE_EQ((*tokens)[4].double_value, 0.01);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = Tokenize("'it''s here'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kStringLiteral);
  EXPECT_EQ((*tokens)[0].text, "it's here");
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Tokenize("< <= > >= = != <>");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kLt, TokenType::kLtEq, TokenType::kGt,
                       TokenType::kGtEq, TokenType::kEq, TokenType::kNotEq,
                       TokenType::kNotEq, TokenType::kEof}));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("select @").ok());
  EXPECT_FALSE(Tokenize("99999999999999999999").ok());  // Overflow.
}

// ---------- Parser ----------

TEST(ParserTest, CreateTable) {
  auto stmt = Parser::Parse(
      "CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, gross DOUBLE)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  const auto& ct = stmt->create_table;
  EXPECT_EQ(ct.table, "movies");
  ASSERT_EQ(ct.columns.size(), 3u);
  EXPECT_TRUE(ct.columns[0].primary_key);
  EXPECT_EQ(ct.columns[0].type, ColumnType::kInt64);
  EXPECT_EQ(ct.columns[1].type, ColumnType::kString);
  EXPECT_EQ(ct.columns[2].type, ColumnType::kDouble);
}

TEST(ParserTest, InsertMultiRow) {
  auto stmt = Parser::Parse(
      "INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt->insert.columns,
            (std::vector<std::string>{"id", "name"}));
  ASSERT_EQ(stmt->insert.rows.size(), 2u);
  EXPECT_EQ(stmt->insert.rows[1][0].AsInt(), 2);
  EXPECT_EQ(stmt->insert.rows[1][1].AsString(), "b");
}

TEST(ParserTest, SelectWithWhereOrderLimit) {
  auto stmt = Parser::Parse(
      "SELECT id, title FROM movies WHERE gross > 100.0 AND id < 50 "
      "ORDER BY gross DESC LIMIT 10");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, Statement::Kind::kSelect);
  const auto& sel = stmt->select;
  EXPECT_EQ(sel.columns, (std::vector<std::string>{"id", "title"}));
  ASSERT_NE(sel.where, nullptr);
  EXPECT_EQ(sel.where->op, BinaryOp::kAnd);
  ASSERT_TRUE(sel.order_by.has_value());
  EXPECT_EQ(sel.order_by->column, "gross");
  EXPECT_FALSE(sel.order_by->ascending);
  EXPECT_EQ(sel.limit, 10u);
}

TEST(ParserTest, ExprPrecedenceAndParens) {
  auto stmt =
      Parser::Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  // OR binds loosest: (a=1) OR ((b=2) AND (c=3)).
  const Expr* e = stmt->select.where.get();
  ASSERT_EQ(e->op, BinaryOp::kOr);
  EXPECT_EQ(e->rhs->op, BinaryOp::kAnd);

  auto stmt2 =
      Parser::Parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_EQ(stmt2->select.where->op, BinaryOp::kAnd);
}

TEST(ParserTest, NotExpression) {
  auto stmt = Parser::Parse("SELECT * FROM t WHERE NOT a = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select.where->kind, Expr::Kind::kNot);
}

TEST(ParserTest, UpdateAndDelete) {
  auto up = Parser::Parse("UPDATE t SET a = 5, b = 'x' WHERE id = 1");
  ASSERT_TRUE(up.ok());
  ASSERT_EQ(up->kind, Statement::Kind::kUpdate);
  EXPECT_EQ(up->update.assignments.size(), 2u);

  auto del = Parser::Parse("DELETE FROM t WHERE id > 10");
  ASSERT_TRUE(del.ok());
  ASSERT_EQ(del->kind, Statement::Kind::kDelete);
  EXPECT_NE(del->del.where, nullptr);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parser::Parse("").ok());
  EXPECT_FALSE(Parser::Parse("SELEC * FROM t").ok());
  EXPECT_FALSE(Parser::Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * FROM t garbage").ok());
  EXPECT_FALSE(Parser::Parse("INSERT INTO t VALUES (1").ok());
  EXPECT_FALSE(Parser::Parse("CREATE TABLE t (x BOGUS)").ok());
  EXPECT_FALSE(Parser::Parse("SELECT * FROM t LIMIT -3").ok());
}

// ---------- Planner ----------

ExprPtr ParseWhere(const std::string& cond) {
  auto stmt = Parser::Parse("SELECT * FROM t WHERE " + cond);
  EXPECT_TRUE(stmt.ok()) << cond;
  return std::move(stmt->select.where);
}

TEST(PlannerTest, PointLookupFromEquality) {
  ExprPtr e = ParseWhere("id = 42");
  AccessPlan plan = PlanAccess(e.get(), "id");
  EXPECT_EQ(plan.kind, AccessPathKind::kPointLookup);
  EXPECT_EQ(plan.point_key, 42);
}

TEST(PlannerTest, FlippedComparison) {
  ExprPtr e = ParseWhere("10 <= id AND 20 > id");
  AccessPlan plan = PlanAccess(e.get(), "id");
  EXPECT_EQ(plan.kind, AccessPathKind::kRangeScan);
  EXPECT_EQ(plan.range_lo, 10);
  EXPECT_EQ(plan.range_hi, 19);
}

TEST(PlannerTest, RangeFromConjunction) {
  ExprPtr e = ParseWhere("id >= 5 AND id <= 15 AND name = 'x'");
  AccessPlan plan = PlanAccess(e.get(), "id");
  EXPECT_EQ(plan.kind, AccessPathKind::kRangeScan);
  EXPECT_EQ(plan.range_lo, 5);
  EXPECT_EQ(plan.range_hi, 15);
}

TEST(PlannerTest, ContradictionIsEmpty) {
  ExprPtr e = ParseWhere("id = 1 AND id = 2");
  AccessPlan plan = PlanAccess(e.get(), "id");
  EXPECT_TRUE(plan.empty);

  ExprPtr e2 = ParseWhere("id > 10 AND id < 5");
  EXPECT_TRUE(PlanAccess(e2.get(), "id").empty);
}

TEST(PlannerTest, OrForcesFullScan) {
  ExprPtr e = ParseWhere("id = 1 OR id = 2");
  AccessPlan plan = PlanAccess(e.get(), "id");
  EXPECT_EQ(plan.kind, AccessPathKind::kFullScan);
}

TEST(PlannerTest, NonPkColumnForcesFullScan) {
  ExprPtr e = ParseWhere("name = 'a'");
  EXPECT_EQ(PlanAccess(e.get(), "id").kind, AccessPathKind::kFullScan);
  EXPECT_EQ(PlanAccess(nullptr, "id").kind, AccessPathKind::kFullScan);
}

TEST(PlannerTest, AdjacentBoundsCollapseToPoint) {
  ExprPtr e = ParseWhere("id >= 7 AND id <= 7");
  AccessPlan plan = PlanAccess(e.get(), "id");
  EXPECT_EQ(plan.kind, AccessPathKind::kPointLookup);
  EXPECT_EQ(plan.point_key, 7);
}

// ---------- Executor (integration) ----------

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_sql_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    auto db = Database::Open(dir_.string());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    exec_ = std::make_unique<Executor>(db_.get());
  }
  void TearDown() override {
    exec_.reset();
    db_.reset();
    fs::remove_all(dir_);
  }

  QueryResult MustExec(const std::string& sql) {
    auto r = exec_->ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  fs::path dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(ExecutorTest, EndToEndCrud) {
  MustExec(
      "CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, gross DOUBLE)");
  QueryResult ins = MustExec(
      "INSERT INTO movies VALUES (1, 'Spider-Man', 403.7), "
      "(2, 'Signs', 228.0), (3, 'Ice Age', 176.4)");
  EXPECT_EQ(ins.affected, 3u);
  EXPECT_EQ(ins.touched_keys, (std::vector<int64_t>{1, 2, 3}));

  QueryResult sel = MustExec("SELECT title FROM movies WHERE id = 2");
  ASSERT_EQ(sel.rows.size(), 1u);
  EXPECT_EQ(sel.rows[0][0].AsString(), "Signs");
  EXPECT_EQ(sel.plan.kind, AccessPathKind::kPointLookup);

  QueryResult up =
      MustExec("UPDATE movies SET gross = 229.5 WHERE id = 2");
  EXPECT_EQ(up.affected, 1u);
  EXPECT_EQ(MustExec("SELECT gross FROM movies WHERE id = 2")
                .rows[0][0]
                .AsDouble(),
            229.5);

  QueryResult del = MustExec("DELETE FROM movies WHERE id = 1");
  EXPECT_EQ(del.affected, 1u);
  EXPECT_EQ(MustExec("SELECT * FROM movies").rows.size(), 2u);
}

TEST_F(ExecutorTest, SelectStarProjectsAllColumns) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, a TEXT, b DOUBLE)");
  MustExec("INSERT INTO t VALUES (1, 'x', 2.0)");
  QueryResult r = MustExec("SELECT * FROM t");
  EXPECT_EQ(r.columns, (std::vector<std::string>{"id", "a", "b"}));
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].size(), 3u);
}

TEST_F(ExecutorTest, InsertWithColumnSubsetFillsNulls) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, a TEXT, b DOUBLE)");
  MustExec("INSERT INTO t (id) VALUES (5)");
  QueryResult r = MustExec("SELECT a, b FROM t WHERE id = 5");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ExecutorTest, WhereOnNonPkColumn) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, grade TEXT)");
  MustExec(
      "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'a'), (4, 'c')");
  QueryResult r = MustExec("SELECT id FROM t WHERE grade = 'a'");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kFullScan);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
}

TEST_F(ExecutorTest, RangeScanUsesIndex) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE)");
  for (int i = 0; i < 100; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
             std::to_string(i * 1.5) + ")");
  }
  QueryResult r = MustExec("SELECT id FROM t WHERE id >= 10 AND id < 20");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kRangeScan);
  EXPECT_EQ(r.rows.size(), 10u);
}

TEST_F(ExecutorTest, OrderByAndLimit) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE)");
  MustExec(
      "INSERT INTO t VALUES (1, 5.0), (2, 1.0), (3, 9.0), (4, 3.0)");
  QueryResult r = MustExec("SELECT id FROM t ORDER BY v DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[1][0].AsInt(), 1);
}

TEST_F(ExecutorTest, LimitWithoutOrderStopsEarly) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE)");
  for (int i = 0; i < 50; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", 1.0)");
  }
  QueryResult r = MustExec("SELECT id FROM t LIMIT 5");
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.touched_keys.size(), 5u);
}

TEST_F(ExecutorTest, NullComparisonsAreFalse) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE)");
  MustExec("INSERT INTO t (id) VALUES (1)");
  MustExec("INSERT INTO t VALUES (2, 7.0)");
  EXPECT_EQ(MustExec("SELECT id FROM t WHERE v = 7.0").rows.size(), 1u);
  EXPECT_EQ(MustExec("SELECT id FROM t WHERE v != 7.0").rows.size(), 0u);
  // NOT (NULL = x) is true under two-valued logic; documented behavior.
  EXPECT_EQ(MustExec("SELECT id FROM t WHERE NOT v = 7.0").rows.size(),
            1u);
}

TEST_F(ExecutorTest, UpdatePkRejected) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE)");
  MustExec("INSERT INTO t VALUES (1, 1.0)");
  auto r = exec_->ExecuteSql("UPDATE t SET id = 2 WHERE id = 1");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(ExecutorTest, DeleteAllWithoutWhere) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE)");
  MustExec("INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0)");
  QueryResult r = MustExec("DELETE FROM t");
  EXPECT_EQ(r.affected, 3u);
  EXPECT_EQ(MustExec("SELECT * FROM t").rows.size(), 0u);
}

TEST_F(ExecutorTest, TypeMismatchInWhereFails) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE)");
  MustExec("INSERT INTO t VALUES (1, 1.0)");
  EXPECT_FALSE(exec_->ExecuteSql("SELECT * FROM t WHERE v = 'str'").ok());
}

TEST_F(ExecutorTest, UnknownTableAndColumnErrors) {
  EXPECT_TRUE(exec_->ExecuteSql("SELECT * FROM ghost")
                  .status()
                  .IsNotFound());
  MustExec("CREATE TABLE t (id INT PRIMARY KEY)");
  EXPECT_FALSE(exec_->ExecuteSql("SELECT nope FROM t").ok());
  EXPECT_FALSE(
      exec_->ExecuteSql("INSERT INTO t (nope) VALUES (1)").ok());
}

TEST_F(ExecutorTest, CreateTableRequiresPk) {
  EXPECT_FALSE(exec_->ExecuteSql("CREATE TABLE t (a TEXT)").ok());
  EXPECT_FALSE(exec_->ExecuteSql(
                       "CREATE TABLE t (a INT PRIMARY KEY, "
                       "b INT PRIMARY KEY)")
                   .ok());
}

TEST_F(ExecutorTest, DuplicatePkInsertFails) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY)");
  MustExec("INSERT INTO t VALUES (1)");
  EXPECT_EQ(exec_->ExecuteSql("INSERT INTO t VALUES (1)").status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ExecutorTest, EmptyPlanShortCircuits) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY)");
  MustExec("INSERT INTO t VALUES (1), (2)");
  QueryResult r = MustExec("SELECT * FROM t WHERE id = 1 AND id = 2");
  EXPECT_TRUE(r.plan.empty);
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(ExecutorTest, TouchedKeysMatchResults) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE)");
  MustExec("INSERT INTO t VALUES (10, 1.0), (20, 2.0), (30, 3.0)");
  QueryResult r = MustExec("SELECT v FROM t WHERE id >= 20");
  EXPECT_EQ(r.touched_keys, (std::vector<int64_t>{20, 30}));
  QueryResult up = MustExec("UPDATE t SET v = 0.0 WHERE id >= 20");
  EXPECT_EQ(up.touched_keys, (std::vector<int64_t>{20, 30}));
  QueryResult del = MustExec("DELETE FROM t WHERE id = 10");
  EXPECT_EQ(del.touched_keys, (std::vector<int64_t>{10}));
}

TEST_F(ExecutorTest, InListUsesMultiPointPlan) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE)");
  for (int i = 0; i < 20; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
             std::to_string(i * 1.0) + ")");
  }
  QueryResult r = MustExec("SELECT id FROM t WHERE id IN (3, 7, 11, 7)");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kMultiPoint);
  ASSERT_EQ(r.rows.size(), 3u);  // Duplicate 7 deduped.
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[2][0].AsInt(), 11);
  // Missing keys are skipped silently.
  QueryResult miss = MustExec("SELECT id FROM t WHERE id IN (99, 5)");
  EXPECT_EQ(miss.rows.size(), 1u);
}

TEST_F(ExecutorTest, InListOnNonPkColumnFiltersFullScan) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)");
  MustExec("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  QueryResult r =
      MustExec("SELECT id FROM t WHERE name IN ('a', 'c', 'z')");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kFullScan);
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, InListTypeMismatchFails) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)");
  MustExec("INSERT INTO t VALUES (1, 'a')");
  EXPECT_FALSE(
      exec_->ExecuteSql("SELECT * FROM t WHERE name IN (1, 2)").ok());
}

TEST_F(ExecutorTest, NotInViaNotOperator) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY)");
  MustExec("INSERT INTO t VALUES (1), (2), (3), (4)");
  QueryResult r =
      MustExec("SELECT id FROM t WHERE NOT id IN (2, 3)");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt(), 4);
}

TEST_F(ExecutorTest, InListCombinedWithRangeUsesRange) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY)");
  for (int i = 0; i < 10; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  }
  // The PK range wins planning; the IN acts as residual filter.
  QueryResult r = MustExec(
      "SELECT id FROM t WHERE id >= 2 AND id <= 8 AND id IN (1, 4, 6)");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kRangeScan);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_EQ(r.rows[1][0].AsInt(), 6);
}

TEST_F(ExecutorTest, ExplainReportsPlanWithoutExecuting) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, city TEXT)");
  MustExec("INSERT INTO t VALUES (1, 'a'), (2, 'b')");
  QueryResult r = MustExec("EXPLAIN SELECT * FROM t WHERE id = 1");
  ASSERT_GE(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "PointLookup(1)");
  EXPECT_EQ(r.touched_keys.size(), 0u);  // Nothing executed/charged.

  MustExec("CREATE INDEX ON t (city)");
  QueryResult r2 = MustExec("EXPLAIN SELECT * FROM t WHERE city = 'a'");
  EXPECT_EQ(r2.rows[0][0].AsString(), "SecondaryLookup(city = 'a')");
  QueryResult r3 = MustExec("EXPLAIN DELETE FROM t");
  EXPECT_EQ(r3.rows[0][0].AsString(), "FullScan");
  // Table contents untouched by the explained delete.
  EXPECT_EQ(MustExec("SELECT COUNT(*) FROM t").rows[0][0].AsInt(), 2);
  EXPECT_FALSE(exec_->ExecuteSql("EXPLAIN INSERT INTO t VALUES (9, 'x')")
                   .ok());
}

TEST_F(ExecutorTest, BetweenDesugarsToRangeScan) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE)");
  for (int i = 0; i < 30; ++i) {
    MustExec("INSERT INTO t VALUES (" + std::to_string(i) + ", " +
             std::to_string(i * 0.5) + ")");
  }
  QueryResult r = MustExec("SELECT id FROM t WHERE id BETWEEN 5 AND 9");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kRangeScan);
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
  EXPECT_EQ(r.rows[4][0].AsInt(), 9);
  // Non-PK BETWEEN filters a full scan.
  QueryResult r2 =
      MustExec("SELECT id FROM t WHERE v BETWEEN 1.0 AND 2.0");
  EXPECT_EQ(r2.plan.kind, AccessPathKind::kFullScan);
  EXPECT_EQ(r2.rows.size(), 3u);  // v in {1.0, 1.5, 2.0}.
  EXPECT_FALSE(exec_->ExecuteSql("SELECT * FROM t WHERE id BETWEEN 5")
                   .ok());
}

// ---------- StatementTemplate ----------

TEST(StatementTemplateTest, RendersEscapedLiterals) {
  auto tmpl = StatementTemplate::Parse(
      "SELECT * FROM users WHERE city = ? AND age > ?");
  ASSERT_TRUE(tmpl.ok());
  EXPECT_EQ(tmpl->num_params(), 2u);
  auto sql = tmpl->Render({Value("ann arbor"), Value(int64_t{21})});
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql,
            "SELECT * FROM users WHERE city = 'ann arbor' AND age > 21");
}

TEST(StatementTemplateTest, InjectionAttemptIsNeutralized) {
  auto tmpl = StatementTemplate::Parse(
      "SELECT * FROM users WHERE name = ?");
  ASSERT_TRUE(tmpl.ok());
  // Classic smuggle: close the string, widen the predicate.
  auto sql = tmpl->Render({Value("x' OR id > 0 OR name = 'x")});
  ASSERT_TRUE(sql.ok());
  // The rendered SQL keeps the whole payload inside ONE string literal.
  EXPECT_EQ(*sql,
            "SELECT * FROM users WHERE name = "
            "'x'' OR id > 0 OR name = ''x'");
  // And it parses back to a single equality, not three predicates.
  auto stmt = Parser::Parse(*sql);
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select.where->kind, Expr::Kind::kBinary);
  EXPECT_EQ(stmt->select.where->op, BinaryOp::kEq);
  EXPECT_EQ(stmt->select.where->rhs->literal.AsString(),
            "x' OR id > 0 OR name = 'x");
}

TEST(StatementTemplateTest, QuestionMarkInsideStringIsNotAParam) {
  auto tmpl = StatementTemplate::Parse(
      "SELECT * FROM t WHERE name = 'what?' AND id = ?");
  ASSERT_TRUE(tmpl.ok());
  EXPECT_EQ(tmpl->num_params(), 1u);
  auto sql = tmpl->Render({Value(int64_t{5})});
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql, "SELECT * FROM t WHERE name = 'what?' AND id = 5");
}

TEST(StatementTemplateTest, TypedRendering) {
  auto tmpl = StatementTemplate::Parse("INSERT INTO t VALUES (?, ?, ?)");
  ASSERT_TRUE(tmpl.ok());
  auto sql = tmpl->Render({Value(int64_t{1}), Value(2.0), Value::Null()});
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(*sql, "INSERT INTO t VALUES (1, 2.0, NULL)");
  // Doubles survive a round trip through the lexer as doubles.
  auto stmt = Parser::Parse(*sql);
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->insert.rows[0][1].is_double());
}

TEST(StatementTemplateTest, ArityAndSyntaxErrors) {
  auto tmpl = StatementTemplate::Parse("SELECT * FROM t WHERE id = ?");
  ASSERT_TRUE(tmpl.ok());
  EXPECT_FALSE(tmpl->Render({}).ok());
  EXPECT_FALSE(
      tmpl->Render({Value(int64_t{1}), Value(int64_t{2})}).ok());
  EXPECT_FALSE(StatementTemplate::Parse("SELECT 'open").ok());
}

TEST_F(ExecutorTest, TemplateEndToEnd) {
  MustExec("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)");
  auto ins = StatementTemplate::Parse("INSERT INTO t VALUES (?, ?)");
  ASSERT_TRUE(ins.ok());
  for (int i = 1; i <= 3; ++i) {
    auto sql = ins->Render({Value(static_cast<int64_t>(i)),
                            Value("it's #" + std::to_string(i))});
    ASSERT_TRUE(sql.ok());
    MustExec(*sql);
  }
  auto sel = StatementTemplate::Parse("SELECT name FROM t WHERE id = ?");
  ASSERT_TRUE(sel.ok());
  auto sql = sel->Render({Value(int64_t{2})});
  ASSERT_TRUE(sql.ok());
  QueryResult r = MustExec(*sql);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "it's #2");
}

}  // namespace
}  // namespace tarpit
