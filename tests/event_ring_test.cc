// DefenseEventRing: the lock-free bounded forensics ring (ISSUE 9).
// Covers sequencing, wraparound + exact drop accounting, query
// filtering, metric publication, and an 8-thread producer/reader
// stress that the TSan CI job runs under `ctest -L concurrency`.

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/event_ring.h"
#include "obs/metrics.h"

namespace tarpit {
namespace obs {
namespace {

int StressIters(int dflt) {
  if (const char* env = std::getenv("TARPIT_STRESS_ITERS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return dflt;
}

DefenseEvent MakeEvent(DefenseEventType type, uint64_t principal,
                       int64_t time_micros, int64_t arg = 0) {
  DefenseEvent e;
  e.type = type;
  e.principal = principal;
  e.time_micros = time_micros;
  e.arg = arg;
  return e;
}

TEST(DefenseEventRing, AssignsDenseSequencesOldestFirst) {
  DefenseEventRingOptions opts;
  opts.capacity = 16;
  DefenseEventRing ring(opts);
  for (int i = 0; i < 5; ++i) {
    ring.Append(MakeEvent(DefenseEventType::kQueryAdmitted, 7, i, i));
  }
  const std::vector<DefenseEvent> got = ring.Snapshot();
  ASSERT_EQ(got.size(), 5u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, i);
    EXPECT_EQ(got[i].arg, static_cast<int64_t>(i));
    EXPECT_EQ(got[i].principal, 7u);
  }
  EXPECT_EQ(ring.appended_total(), 5u);
  EXPECT_EQ(ring.dropped_total(), 0u);
  EXPECT_EQ(ring.retained(), 5u);
}

TEST(DefenseEventRing, WraparoundKeepsNewestAndCountsDropsExactly) {
  DefenseEventRingOptions opts;
  opts.capacity = 8;
  DefenseEventRing ring(opts);
  const int n = 29;
  for (int i = 0; i < n; ++i) {
    ring.Append(MakeEvent(DefenseEventType::kOverloadShed, 1, i, i));
  }
  EXPECT_EQ(ring.appended_total(), static_cast<uint64_t>(n));
  EXPECT_EQ(ring.dropped_total(), static_cast<uint64_t>(n - 8));
  EXPECT_EQ(ring.retained(), 8u);

  const std::vector<DefenseEvent> got = ring.Snapshot();
  ASSERT_EQ(got.size(), 8u);
  // Exactly the newest 8, oldest-first, seqs dense.
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, static_cast<uint64_t>(n - 8) + i);
    EXPECT_EQ(got[i].arg, static_cast<int64_t>(n - 8 + i));
  }
}

TEST(DefenseEventRing, CapacityRoundsUpToPowerOfTwo) {
  DefenseEventRingOptions opts;
  opts.capacity = 10;
  DefenseEventRing ring(opts);
  EXPECT_EQ(ring.capacity(), 16u);
}

TEST(DefenseEventRing, QueryFiltersPrincipalTypeTimeAndLimit) {
  DefenseEventRing ring;
  for (int i = 0; i < 10; ++i) {
    ring.Append(MakeEvent(i % 2 == 0
                              ? DefenseEventType::kQueryAdmitted
                              : DefenseEventType::kRateLimitedUser,
                          i % 2 == 0 ? 100 : 200, /*time_micros=*/i));
  }
  DefenseEventRing::Query by_principal;
  by_principal.principal = 200;
  EXPECT_EQ(ring.Snapshot(by_principal).size(), 5u);

  DefenseEventRing::Query by_type;
  by_type.type = static_cast<int>(DefenseEventType::kQueryAdmitted);
  EXPECT_EQ(ring.Snapshot(by_type).size(), 5u);

  DefenseEventRing::Query by_time;
  by_time.min_time_micros = 4;
  by_time.max_time_micros = 7;
  EXPECT_EQ(ring.Snapshot(by_time).size(), 4u);

  DefenseEventRing::Query newest;
  newest.limit = 3;
  const std::vector<DefenseEvent> tail = ring.Snapshot(newest);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().seq, 7u);  // Newest 3, still oldest-first.
  EXPECT_EQ(tail.back().seq, 9u);
}

TEST(DefenseEventRing, PerTypeCountersSurviveOverwrite) {
  DefenseEventRingOptions opts;
  opts.capacity = 4;
  DefenseEventRing ring(opts);
  for (int i = 0; i < 20; ++i) {
    ring.Append(MakeEvent(DefenseEventType::kCoverageEscalated, 1, i));
  }
  for (int i = 0; i < 3; ++i) {
    ring.Append(MakeEvent(DefenseEventType::kCancelled, 1, i));
  }
  EXPECT_EQ(ring.CountOfType(DefenseEventType::kCoverageEscalated), 20u);
  EXPECT_EQ(ring.CountOfType(DefenseEventType::kCancelled), 3u);
  EXPECT_EQ(ring.CountOfType(DefenseEventType::kOverloadShed), 0u);
}

TEST(DefenseEventRing, PublishesMetrics) {
  MetricRegistry registry;
  DefenseEventRingOptions opts;
  opts.capacity = 4;
  opts.metrics = &registry;
  DefenseEventRing ring(opts);
  for (int i = 0; i < 6; ++i) {
    ring.Append(MakeEvent(DefenseEventType::kOverloadShed, 1, i));
  }
  const RegistrySnapshot snap = registry.Snapshot();
  const MetricSnapshot* appended =
      snap.Find("tarpit_events_appended_total");
  ASSERT_NE(appended, nullptr);
  EXPECT_EQ(appended->value, 6);
  const MetricSnapshot* dropped =
      snap.Find("tarpit_events_dropped_total");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value, 2);
  const MetricSnapshot* by_type = snap.Find(
      "tarpit_events_by_type_total", {{"type", "overload-shed"}});
  ASSERT_NE(by_type, nullptr);
  EXPECT_EQ(by_type->value, 6);
}

// 8 producers race appends (far past wraparound) while a reader
// snapshots continuously. TSan-clean by construction; every record a
// reader sees must be internally consistent (the payload encodes the
// producer + index, so a torn mix is detectable), and the final
// accounting must be exact.
TEST(DefenseEventRing, ConcurrentProducersAndReaderStayConsistent) {
  DefenseEventRingOptions opts;
  opts.capacity = 64;  // Small: maximize overwrite pressure.
  DefenseEventRing ring(opts);
  constexpr int kThreads = 8;
  const int per_thread = StressIters(20'000);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inconsistent{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const DefenseEvent& e : ring.Snapshot()) {
        // Producer t writes principal=t+1, arg=i, time_micros=
        // (t+1)*1'000'000 + i: any torn combination breaks the
        // equation.
        const int64_t expect =
            static_cast<int64_t>(e.principal) * 1'000'000 + e.arg;
        if (e.time_micros != expect) {
          inconsistent.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&ring, t, per_thread] {
      for (int i = 0; i < per_thread; ++i) {
        DefenseEvent e;
        e.type = DefenseEventType::kQueryAdmitted;
        e.principal = static_cast<uint64_t>(t + 1);
        e.arg = i;
        e.time_micros = static_cast<int64_t>(t + 1) * 1'000'000 + i;
        ring.Append(e);
      }
    });
  }
  for (auto& p : producers) p.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const uint64_t total =
      static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(per_thread);
  EXPECT_EQ(ring.appended_total(), total);
  EXPECT_EQ(ring.dropped_total(), total - ring.capacity());
  EXPECT_EQ(inconsistent.load(), 0u);
  EXPECT_EQ(ring.CountOfType(DefenseEventType::kQueryAdmitted), total);

  // Quiesced: one final snapshot sees a full, dense, consistent window.
  const std::vector<DefenseEvent> final_snap = ring.Snapshot();
  EXPECT_EQ(final_snap.size(), ring.capacity());
  std::set<uint64_t> seqs;
  for (const DefenseEvent& e : final_snap) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), final_snap.size());
  EXPECT_EQ(*seqs.rbegin(), total - 1);
}

}  // namespace
}  // namespace obs
}  // namespace tarpit
