// MVCC write-path tests (ISSUE 7): epoch manager + version store
// primitives, snapshot isolation through the concurrent front door,
// clock-driven deterministic reclamation, WAL convergence, and the
// 8-thread 80/20 read/write storm.
//
// The storm and the drain interplay are ThreadSanitizer targets: run
// with -DTARPIT_SANITIZE=thread. Long loops honor TARPIT_STRESS_ITERS.

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/protected_db.h"
#include "stats/count_tracker.h"
#include "storage/mvcc.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

/// Iteration budget for stress-ish loops: TARPIT_STRESS_ITERS caps the
/// default so sanitizer runs stay fast.
int StressIters(int default_iters) {
  const char* env = std::getenv("TARPIT_STRESS_ITERS");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return std::min(v, default_iters);
  }
  return default_iters;
}

// ---------------------------------------------------------------------
// EpochManager / VersionStore unit tests (no database).
// ---------------------------------------------------------------------

TEST(EpochManagerTest, PinPublishAndLowerBound) {
  EpochManager em(4);
  EXPECT_EQ(em.current(), 1u);
  EXPECT_EQ(em.MinActiveLowerBound(), 1u);  // Nothing pinned.

  EpochManager::Snapshot old_pin = em.Pin();
  EXPECT_EQ(old_pin.epoch(), 1u);
  EXPECT_TRUE(old_pin.valid());
  EXPECT_EQ(em.MinActiveLowerBound(), 1u);

  em.Publish(2);
  EXPECT_EQ(em.current(), 2u);
  EpochManager::Snapshot new_pin = em.Pin();
  EXPECT_EQ(new_pin.epoch(), 2u);
  // The stale pin still holds the bound down.
  EXPECT_EQ(em.MinActiveLowerBound(), 1u);

  old_pin.Release();
  EXPECT_FALSE(old_pin.valid());
  EXPECT_EQ(em.MinActiveLowerBound(), 2u);
  new_pin.Release();
  EXPECT_EQ(em.MinActiveLowerBound(), 2u);  // Back to current().
  EXPECT_EQ(em.pins_total(), 2u);
}

TEST(EpochManagerTest, MoveTransfersThePin) {
  EpochManager em(2);
  EpochManager::Snapshot a = em.Pin();
  EpochManager::Snapshot b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(em.MinActiveLowerBound(), 1u);
  b.Release();
  EXPECT_EQ(em.MinActiveLowerBound(), 1u);
}

TEST(VersionStoreTest, SnapshotVisibilityAndTombstones) {
  VersionStore vs(4);
  vs.Install(7, /*begin=*/2, /*tombstone=*/false,
             {Value(int64_t{7}), Value(2.5)});
  vs.Install(7, /*begin=*/4, /*tombstone=*/true, {});
  EXPECT_EQ(vs.installed_total(), 2u);
  EXPECT_EQ(vs.live_versions(), 2u);

  Row out;
  // A snapshot older than every version falls through to base.
  EXPECT_EQ(vs.Lookup(7, 1, &out), VersionLookup::kMiss);
  // Snapshots 2 and 3 see the row image; 4+ see the delete.
  ASSERT_EQ(vs.Lookup(7, 2, &out), VersionLookup::kRow);
  EXPECT_DOUBLE_EQ(out[1].AsDouble(), 2.5);
  EXPECT_EQ(vs.Lookup(7, 3, &out), VersionLookup::kRow);
  EXPECT_EQ(vs.Lookup(7, 4, &out), VersionLookup::kTombstone);
  EXPECT_EQ(vs.Head(7, &out), VersionLookup::kTombstone);
  // Unknown keys are a miss at any snapshot.
  EXPECT_EQ(vs.Lookup(8, 99, &out), VersionLookup::kMiss);
}

TEST(VersionStoreTest, ReclaimAppliesNewestAndUnlinksSuperseded) {
  VersionStore vs(4);
  // Key 1 is written twice before the boundary: the reclaimer must
  // apply only the newest image but unlink both versions.
  vs.Install(1, 2, false, {Value(int64_t{1}), Value(1.0)});
  vs.Install(1, 3, false, {Value(int64_t{1}), Value(2.0)});
  vs.Install(2, 3, true, {});
  vs.Install(3, 5, false, {Value(int64_t{3}), Value(3.0)});

  std::vector<std::pair<int64_t, double>> applied_rows;
  std::vector<int64_t> applied_tombstones;
  auto apply = [&](int64_t key, bool tombstone, const Row& row) {
    if (tombstone) {
      applied_tombstones.push_back(key);
    } else {
      applied_rows.emplace_back(key, row[1].AsDouble());
    }
    return Status::OK();
  };

  ASSERT_TRUE(vs.Reclaim(/*boundary=*/3, apply).ok());
  ASSERT_EQ(applied_rows.size(), 1u);
  EXPECT_EQ(applied_rows[0].first, 1);
  EXPECT_DOUBLE_EQ(applied_rows[0].second, 2.0);  // Newest, not first.
  ASSERT_EQ(applied_tombstones.size(), 1u);
  EXPECT_EQ(applied_tombstones[0], 2);
  // 3 versions unlinked (two for key 1, one for key 2), 2 applied.
  EXPECT_EQ(vs.reclaimed_total(), 3u);
  EXPECT_EQ(vs.applied_total(), 2u);
  EXPECT_EQ(vs.live_versions(), 1u);  // Key 3 at epoch 5 survives.
  Row out;
  EXPECT_EQ(vs.Lookup(1, 10, &out), VersionLookup::kMiss);
  EXPECT_EQ(vs.Lookup(3, 5, &out), VersionLookup::kRow);

  ASSERT_TRUE(vs.Reclaim(/*boundary=*/5, apply).ok());
  EXPECT_EQ(vs.live_versions(), 0u);
  EXPECT_EQ(vs.installed_total(),
            vs.reclaimed_total());  // Exactness: nothing lost or double-
                                    // counted once fully drained.
  EXPECT_LE(vs.applied_total(), vs.reclaimed_total());
}

// ---------------------------------------------------------------------
// Through the front door.
// ---------------------------------------------------------------------

class MvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_mvcc_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    cdb_.reset();
    fs::remove_all(dir_);
    fs::remove_all(dir_.string() + "_oracle");
  }

  void OpenDb(int rows, ProtectedDatabaseOptions opts,
              ConcurrentDatabaseOptions copts, Clock* clock = nullptr) {
    if (clock == nullptr) clock = &clock_;
    copts.mode = ConcurrencyMode::kSharded;
    copts.serve_delays = false;
    auto cdb = ConcurrentProtectedDatabase::Open(dir_.string(), "items",
                                                 clock, opts, copts);
    ASSERT_TRUE(cdb.ok()) << cdb.status().ToString();
    cdb_ = std::move(*cdb);
    ASSERT_TRUE(cdb_->ExecuteSql("CREATE TABLE items (id INT PRIMARY "
                                 "KEY, v DOUBLE)")
                    .ok());
    for (int i = 1; i <= rows; ++i) {
      ASSERT_TRUE(cdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                     Value(1.0)})
                      .ok());
    }
  }

  double MustGet(int64_t key) {
    auto r = cdb_->GetByKey(key);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok()) return -1.0;
    return r->result.rows.at(0).at(1).AsDouble();
  }

  fs::path dir_;
  RealClock clock_;
  std::unique_ptr<ConcurrentProtectedDatabase> cdb_;
};

// Eligible DML lowers to version-store commits; point reads resolve
// through the chains (read-your-writes) without any reclaim having run.
TEST_F(MvccTest, DmlLowersToVersionStoreAndReadsResolveThroughChains) {
  ProtectedDatabaseOptions opts;
  opts.popularity.bounds = {0.0, 10.0};
  ConcurrentDatabaseOptions copts;
  copts.mvcc_reclaim_every_commits = 0;  // Only drains fold versions.
  copts.mvcc_reclaim_interval_micros = 0;
  OpenDb(16, opts, copts);
  const uint64_t setup_fences = cdb_->ddl_fences();  // CREATE TABLE.

  ASSERT_TRUE(
      cdb_->ExecuteSql("UPDATE items SET v = 2.5 WHERE id = 7").ok());
  ASSERT_TRUE(cdb_->ExecuteSql("DELETE FROM items WHERE id = 8").ok());
  ASSERT_TRUE(
      cdb_->ExecuteSql("INSERT INTO items VALUES (100, 4.0)").ok());

  EXPECT_EQ(cdb_->mvcc_commits(), 3u);
  EXPECT_GE(cdb_->write_batches(), 1u);
  EXPECT_EQ(cdb_->ddl_fences(), setup_fences);  // Lowered DML: no fence.
  ASSERT_NE(cdb_->version_store(), nullptr);
  EXPECT_EQ(cdb_->version_store()->live_versions(), 3u);
  EXPECT_EQ(cdb_->epoch_manager()->current(), 4u);  // 1 + 3 commits.

  // Reads are served from the chains: nothing has been reclaimed.
  EXPECT_DOUBLE_EQ(MustGet(7), 2.5);
  EXPECT_DOUBLE_EQ(MustGet(100), 4.0);
  auto gone = cdb_->GetByKey(8);
  EXPECT_FALSE(gone.ok());
  EXPECT_EQ(cdb_->version_store()->applied_total(), 0u);
  EXPECT_EQ(cdb_->logical_rows(), 16u);  // 16 - 1 delete + 1 insert.

  // Partial-prefix persistence mirrors the serial executor: the first
  // row of a multi-row INSERT commits even though the second errors.
  auto dup = cdb_->ExecuteSql("INSERT INTO items VALUES (200, 9.0), "
                              "(3, 9.0)");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().ToString().find("duplicate key 3"),
            std::string::npos)
      << dup.status().ToString();
  EXPECT_DOUBLE_EQ(MustGet(200), 9.0);
  EXPECT_DOUBLE_EQ(MustGet(3), 1.0);
  EXPECT_EQ(cdb_->logical_rows(), 17u);
}

// The tentpole isolation guarantee: a snapshot pinned before a commit
// never sees it, while later snapshots do.
TEST_F(MvccTest, SnapshotPinnedBeforeCommitNeverSeesIt) {
  ProtectedDatabaseOptions opts;
  opts.popularity.bounds = {0.0, 10.0};
  ConcurrentDatabaseOptions copts;
  copts.mvcc_reclaim_every_commits = 0;
  copts.mvcc_reclaim_interval_micros = 0;
  OpenDb(8, opts, copts);

  EpochManager::Snapshot before = cdb_->epoch_manager()->Pin();
  ASSERT_TRUE(
      cdb_->ExecuteSql("UPDATE items SET v = 9.0 WHERE id = 5").ok());

  Row out;
  // The old snapshot misses the chain (falls through to base state,
  // which the reclaimer cannot have advanced past it).
  EXPECT_EQ(cdb_->version_store()->Lookup(5, before.epoch(), &out),
            VersionLookup::kMiss);
  // A snapshot taken after the publish sees the new image.
  EpochManager::Snapshot after = cdb_->epoch_manager()->Pin();
  ASSERT_EQ(cdb_->version_store()->Lookup(5, after.epoch(), &out),
            VersionLookup::kRow);
  EXPECT_DOUBLE_EQ(out[1].AsDouble(), 9.0);
  after.Release();
  before.Release();
  EXPECT_DOUBLE_EQ(MustGet(5), 9.0);
}

// Satellite 2: reclamation is driven by the injected clock, so a
// VirtualClock advances it deterministically -- no wall-clock reads.
TEST_F(MvccTest, ClockDrivenReclaimIsDeterministic) {
  VirtualClock vclock;
  ProtectedDatabaseOptions opts;
  opts.popularity.bounds = {0.0, 10.0};
  ConcurrentDatabaseOptions copts;
  copts.mvcc_reclaim_every_commits = 0;         // Time trigger only.
  copts.mvcc_reclaim_interval_micros = 1'000;   // 1ms of virtual time.
  OpenDb(8, opts, copts, &vclock);

  ASSERT_TRUE(
      cdb_->ExecuteSql("UPDATE items SET v = 2.0 WHERE id = 1").ok());
  ASSERT_TRUE(
      cdb_->ExecuteSql("UPDATE items SET v = 3.0 WHERE id = 2").ok());
  // Virtual time has not advanced: nothing may be reclaimed.
  EXPECT_EQ(cdb_->version_store()->live_versions(), 2u);
  EXPECT_EQ(cdb_->version_store()->applied_total(), 0u);

  // Cross the interval; the next leader pass must fold everything
  // (no snapshot is pinned, so the boundary is the current epoch).
  vclock.AdvanceToMicros(2'000);
  ASSERT_TRUE(
      cdb_->ExecuteSql("UPDATE items SET v = 4.0 WHERE id = 3").ok());
  EXPECT_EQ(cdb_->version_store()->live_versions(), 0u);
  EXPECT_EQ(cdb_->version_store()->applied_total(), 3u);
  EXPECT_EQ(cdb_->version_store()->installed_total(),
            cdb_->version_store()->reclaimed_total());

  // Deterministic repeat: same advance, same outcome.
  ASSERT_TRUE(
      cdb_->ExecuteSql("UPDATE items SET v = 5.0 WHERE id = 4").ok());
  EXPECT_EQ(cdb_->version_store()->live_versions(), 1u);
  vclock.AdvanceToMicros(4'000);
  ASSERT_TRUE(
      cdb_->ExecuteSql("UPDATE items SET v = 6.0 WHERE id = 5").ok());
  EXPECT_EQ(cdb_->version_store()->live_versions(), 0u);
  EXPECT_DOUBLE_EQ(MustGet(3), 4.0);
  EXPECT_DOUBLE_EQ(MustGet(4), 5.0);
}

// Ineligible statements (here: DDL and a range-predicate UPDATE) take
// the exclusive fallback behind a version-store fence, so they always
// observe exact base state.
TEST_F(MvccTest, ExclusiveFallbackFencesTheVersionStore) {
  ProtectedDatabaseOptions opts;
  opts.popularity.bounds = {0.0, 10.0};
  ConcurrentDatabaseOptions copts;
  copts.mvcc_reclaim_every_commits = 0;
  copts.mvcc_reclaim_interval_micros = 0;
  OpenDb(8, opts, copts);

  ASSERT_TRUE(
      cdb_->ExecuteSql("UPDATE items SET v = 2.0 WHERE id = 1").ok());
  ASSERT_TRUE(cdb_->ExecuteSql("DELETE FROM items WHERE id = 2").ok());
  ASSERT_EQ(cdb_->version_store()->live_versions(), 2u);

  // Range-predicate UPDATE cannot lower (no pk equality): it must
  // fence, then see the MVCC delete (key 2 gets no new value).
  auto range = cdb_->ExecuteSql(
      "UPDATE items SET v = 7.0 WHERE id >= 1 AND id <= 3");
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(range->result.affected, 2u);  // Keys 1 and 3 only.
  EXPECT_GE(cdb_->ddl_fences(), 1u);
  EXPECT_EQ(cdb_->version_store()->live_versions(), 0u);
  EXPECT_DOUBLE_EQ(MustGet(1), 7.0);
  EXPECT_FALSE(cdb_->GetByKey(2).ok());

  // DDL also fences (exercised again, with versions pending).
  ASSERT_TRUE(
      cdb_->ExecuteSql("UPDATE items SET v = 8.0 WHERE id = 4").ok());
  const uint64_t fences_before = cdb_->ddl_fences();
  ASSERT_TRUE(
      cdb_->ExecuteSql("CREATE TABLE side (id INT PRIMARY KEY)").ok());
  EXPECT_GT(cdb_->ddl_fences(), fences_before);
  EXPECT_EQ(cdb_->version_store()->live_versions(), 0u);
  EXPECT_DOUBLE_EQ(MustGet(4), 8.0);
}

// Commits are durable from the WAL alone: versions never reclaimed
// into base pages replay on reopen (the commit-time logging split).
TEST_F(MvccTest, CommitsSurviveReopenWithoutReclaim) {
  ProtectedDatabaseOptions opts;
  opts.popularity.bounds = {0.0, 10.0};
  ConcurrentDatabaseOptions copts;
  copts.mvcc_reclaim_every_commits = 0;
  copts.mvcc_reclaim_interval_micros = 0;
  OpenDb(8, opts, copts);
  ASSERT_TRUE(cdb_->Checkpoint().ok());  // Base durable, WAL empty.

  ASSERT_TRUE(
      cdb_->ExecuteSql("UPDATE items SET v = 42.0 WHERE id = 3").ok());
  ASSERT_TRUE(cdb_->ExecuteSql("DELETE FROM items WHERE id = 4").ok());
  ASSERT_TRUE(
      cdb_->ExecuteSql("INSERT INTO items VALUES (99, 5.5)").ok());
  cdb_.reset();  // No checkpoint: the WAL is the only trace.

  ProtectedDatabaseOptions ropts;
  ropts.mode = DelayMode::kNone;
  auto reopened =
      ProtectedDatabase::Open(dir_.string(), "items", &clock_, ropts);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& pdb = *reopened;
  auto hot = pdb->GetByKey(3);
  ASSERT_TRUE(hot.ok());
  EXPECT_DOUBLE_EQ(hot->result.rows.at(0).at(1).AsDouble(), 42.0);
  EXPECT_FALSE(pdb->GetByKey(4).ok());
  auto fresh = pdb->GetByKey(99);
  ASSERT_TRUE(fresh.ok());
  EXPECT_DOUBLE_EQ(fresh->result.rows.at(0).at(1).AsDouble(), 5.5);
  EXPECT_EQ(pdb->table()->NumRows(), 8u);
}

// Satellite 6 cousin at the tracker level: the concurrent write path's
// bookkeeping must be indistinguishable from the serial door given the
// same statement sequence (update-rate mode reads it directly).
TEST_F(MvccTest, UpdateAccountingMatchesSerialOracle) {
  VirtualClock vclock;
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kUpdateRate;
  opts.update.c = 1.0;
  opts.update.bounds = {0.0, 10.0};
  ConcurrentDatabaseOptions copts;
  copts.mvcc_reclaim_every_commits = 4;  // Reclaim mid-sequence.
  OpenDb(16, opts, copts, &vclock);

  const fs::path oracle_dir = dir_.string() + "_oracle";
  fs::create_directories(oracle_dir);
  auto oracle_open = ProtectedDatabase::Open(oracle_dir.string(), "items",
                                             &vclock, opts);
  ASSERT_TRUE(oracle_open.ok()) << oracle_open.status().ToString();
  auto& oracle = *oracle_open;
  ASSERT_TRUE(oracle
                  ->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, "
                               "v DOUBLE)")
                  .ok());
  for (int i = 1; i <= 16; ++i) {
    ASSERT_TRUE(
        oracle->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(1.0)})
            .ok());
  }

  vclock.AdvanceToMicros(1'000'000);  // 1s of history for the rates.
  std::vector<std::string> statements;
  for (int i = 0; i < 40; ++i) {
    const int64_t key = 1 + (i * 7) % 16;
    statements.push_back("UPDATE items SET v = " + std::to_string(i) +
                         ".0 WHERE id = " + std::to_string(key));
    if (i % 10 == 4) {
      statements.push_back("INSERT INTO items VALUES (" +
                           std::to_string(100 + i) + ", 1.0)");
    }
  }
  statements.push_back("DELETE FROM items WHERE id = 2");
  statements.push_back("DELETE FROM items WHERE id = 9");
  statements.push_back("INSERT INTO items VALUES (2, 3.0)");
  for (const std::string& sql : statements) {
    auto a = cdb_->ExecuteSql(sql);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    auto b = oracle->ExecuteSql(sql);
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
  }

  cdb_->QuiesceStats();
  ProtectedDatabase* inner = cdb_->unsafe_inner();
  UpdateTracker* mine = inner->update_tracker();
  UpdateTracker* theirs = oracle->update_tracker();
  ASSERT_NE(mine, nullptr);
  ASSERT_NE(theirs, nullptr);
  EXPECT_EQ(mine->total_requests(), theirs->total_requests());
  EXPECT_EQ(mine->universe_size(), theirs->universe_size());
  EXPECT_EQ(mine->distinct_seen(), theirs->distinct_seen());
  for (int64_t key = 1; key <= 140; ++key) {
    const PopularityStats a = mine->Stats(key);
    const PopularityStats b = theirs->Stats(key);
    EXPECT_DOUBLE_EQ(a.count, b.count) << "key " << key;
    EXPECT_EQ(a.rank, b.rank) << "key " << key;
    EXPECT_DOUBLE_EQ(inner->PeekDelay(key), oracle->PeekDelay(key))
        << "key " << key;
  }
  EXPECT_EQ(cdb_->logical_rows(), oracle->table()->NumRows());
}

// Satellite 3: the 8-thread 80/20 read/write storm. Writers are
// idempotent per key (everyone writes v = 2*key), so the post-quiesce
// state is exactly checkable; occasional SELECTs force drain barriers
// against live pins and commits.
TEST_F(MvccTest, MixedReadWriteStorm8Threads) {
  constexpr int kThreads = 8;
  constexpr int kKeys = 128;
  const int iters = StressIters(1500);
  ProtectedDatabaseOptions opts;
  opts.popularity.beta = 0.0;
  opts.popularity.scale = 0.25;
  opts.popularity.bounds = {0.0, 10.0};
  opts.decay_per_request = 1.0;
  ConcurrentDatabaseOptions copts;
  copts.num_shards = 8;
  copts.stats_shards = 8;
  copts.epoch_batch = 16;
  copts.mvcc_reclaim_every_commits = 32;
  OpenDb(kKeys, opts, copts);

  std::vector<std::atomic<bool>> updated(kKeys + 1);
  for (auto& u : updated) u.store(false);
  std::atomic<int> errors{0};
  std::atomic<uint64_t> successful_writes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xC0FFEEu + 131u * static_cast<uint64_t>(t));
      for (int i = 0; i < iters; ++i) {
        const int64_t key =
            1 + static_cast<int64_t>(rng.Uniform(kKeys));
        const uint64_t dice = rng.Uniform(100);
        if (dice < 80) {
          if (!cdb_->GetByKey(key).ok()) ++errors;
        } else if (dice < 95) {
          auto r = cdb_->ExecuteSql(
              "UPDATE items SET v = " + std::to_string(2 * key) +
              ".0 WHERE id = " + std::to_string(key));
          if (r.ok()) {
            updated[key].store(true, std::memory_order_relaxed);
            successful_writes.fetch_add(1, std::memory_order_relaxed);
          } else {
            ++errors;
          }
        } else {
          // SELECT: drains the store, then scans exact base state.
          if (!cdb_->ExecuteSql("SELECT * FROM items WHERE id = " +
                                std::to_string(key))
                   .ok()) {
            ++errors;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(errors.load(), 0);

  ASSERT_TRUE(cdb_->Checkpoint().ok());  // Drains + surfaces deferred
                                         // reclaim failures.
  EXPECT_EQ(cdb_->mvcc_commits(), successful_writes.load());
  const VersionStore* vs = cdb_->version_store();
  EXPECT_EQ(vs->live_versions(), 0u);
  EXPECT_EQ(vs->installed_total(), vs->reclaimed_total());
  EXPECT_LE(vs->applied_total(), vs->reclaimed_total());
  EXPECT_EQ(cdb_->logical_rows(), static_cast<uint64_t>(kKeys));

  for (int64_t key = 1; key <= kKeys; ++key) {
    const double expected = updated[key].load() ? 2.0 * key : 1.0;
    EXPECT_DOUBLE_EQ(MustGet(key), expected) << "key " << key;
  }
  EXPECT_EQ(cdb_->unsafe_inner()->table()->NumRows(),
            static_cast<uint64_t>(kKeys));
}

}  // namespace
}  // namespace tarpit
