// Tests for the extension features beyond the paper's core scheme:
// HyperLogLog sketches, coverage-tracking delay escalation, combined
// delay policies, the registration-fee model, SQL aggregates, and
// warm-starting learned counts from persisted state.

#include <cmath>
#include <filesystem>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/hyperloglog.h"
#include "common/random.h"
#include "core/combined_delay.h"
#include "core/protected_db.h"
#include "defense/coverage_monitor.h"
#include "defense/query_gate.h"
#include "defense/registration_fee.h"
#include "sql/executor.h"
#include "storage/database.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

// ---------- HyperLogLog ----------

TEST(HyperLogLogTest, SmallCardinalityExact) {
  HyperLogLog hll(12);
  for (int64_t k = 0; k < 100; ++k) hll.Add(k);
  // Linear-counting regime: near-exact.
  EXPECT_NEAR(hll.Estimate(), 100.0, 5.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12);
  for (int rep = 0; rep < 1000; ++rep) {
    for (int64_t k = 0; k < 50; ++k) hll.Add(k);
  }
  EXPECT_NEAR(hll.Estimate(), 50.0, 3.0);
  EXPECT_EQ(hll.items_added(), 50'000u);
}

class HllCardinalityTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(HllCardinalityTest, EstimateWithinStandardError) {
  const int64_t n = GetParam();
  HyperLogLog hll(12);  // ~1.6% standard error.
  for (int64_t k = 0; k < n; ++k) hll.Add(k * 2654435761LL + 7);
  const double est = hll.Estimate();
  EXPECT_NEAR(est, static_cast<double>(n), 0.06 * n) << n;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllCardinalityTest,
                         ::testing::Values(1'000, 10'000, 100'000,
                                           1'000'000));

TEST(HyperLogLogTest, MergeEqualsUnion) {
  HyperLogLog a(10), b(10), both(10);
  for (int64_t k = 0; k < 5000; ++k) {
    a.Add(k);
    both.Add(k);
  }
  for (int64_t k = 2500; k < 7500; ++k) {
    b.Add(k);
    both.Add(k);
  }
  ASSERT_TRUE(a.Merge(b));
  EXPECT_NEAR(a.Estimate(), both.Estimate(), both.Estimate() * 0.01);
  HyperLogLog wrong(8);
  EXPECT_FALSE(a.Merge(wrong));
}

TEST(HyperLogLogTest, ClearResets) {
  HyperLogLog hll(8);
  for (int64_t k = 0; k < 1000; ++k) hll.Add(k);
  hll.Clear();
  EXPECT_EQ(hll.items_added(), 0u);
  EXPECT_LT(hll.Estimate(), 1.0);
}

// ---------- CoverageMonitor ----------

TEST(CoverageMonitorTest, BrowserStaysUnescalated) {
  CoverageMonitorOptions opts;
  opts.free_coverage = 0.01;
  CoverageMonitor monitor(opts);
  // A user touching 50 of 100k tuples (0.05% coverage).
  for (int64_t k = 0; k < 50; ++k) monitor.RecordAccess(1, k);
  EXPECT_NEAR(monitor.DistinctTuples(1), 50.0, 5.0);
  EXPECT_EQ(monitor.EscalationFactor(1, 100'000), 1.0);
}

TEST(CoverageMonitorTest, ExtractorEscalatesToMax) {
  CoverageMonitorOptions opts;
  opts.free_coverage = 0.01;
  opts.max_coverage = 0.25;
  opts.max_escalation = 100.0;
  CoverageMonitor monitor(opts);
  const uint64_t n = 10'000;
  for (int64_t k = 0; k < static_cast<int64_t>(n) / 2; ++k) {
    monitor.RecordAccess(7, k);  // 50% coverage.
  }
  EXPECT_EQ(monitor.EscalationFactor(7, n), 100.0);
}

TEST(CoverageMonitorTest, EscalationInterpolates) {
  CoverageMonitorOptions opts;
  opts.free_coverage = 0.0;
  opts.max_coverage = 0.5;
  opts.max_escalation = 11.0;
  opts.hll_precision = 14;
  CoverageMonitor monitor(opts);
  const uint64_t n = 10'000;
  for (int64_t k = 0; k < 2'500; ++k) monitor.RecordAccess(3, k);
  // ~25% coverage => halfway => factor ~ 6.
  EXPECT_NEAR(monitor.EscalationFactor(3, n), 6.0, 0.5);
}

TEST(CoverageMonitorTest, ForgetDropsHistory) {
  CoverageMonitor monitor;
  monitor.RecordAccess(5, 1);
  EXPECT_EQ(monitor.tracked_principals(), 1u);
  monitor.Forget(5);
  EXPECT_EQ(monitor.tracked_principals(), 0u);
  EXPECT_EQ(monitor.DistinctTuples(5), 0.0);
}

TEST(CoverageMonitorTest, PrincipalsAreIndependent) {
  CoverageMonitor monitor;
  for (int64_t k = 0; k < 1000; ++k) monitor.RecordAccess(1, k);
  monitor.RecordAccess(2, 42);
  EXPECT_GT(monitor.DistinctTuples(1), 900.0);
  EXPECT_LT(monitor.DistinctTuples(2), 5.0);
}

// ---------- CombinedDelayPolicy ----------

class FixedPolicy : public DelayPolicy {
 public:
  explicit FixedPolicy(double even, double odd)
      : even_(even), odd_(odd) {}
  double DelayFor(int64_t key) const override {
    return key % 2 == 0 ? even_ : odd_;
  }
  std::string name() const override { return "fixed"; }

 private:
  double even_, odd_;
};

TEST(CombinedDelayTest, MaxTakesStrongerSignal) {
  FixedPolicy access(0.1, 5.0);  // Protects odd keys.
  FixedPolicy update(4.0, 0.2);  // Protects even keys.
  CombinedDelayPolicy combined(&access, &update, CombineMode::kMax,
                               {0.0, 10.0});
  EXPECT_EQ(combined.DelayFor(2), 4.0);
  EXPECT_EQ(combined.DelayFor(3), 5.0);
}

TEST(CombinedDelayTest, SumAndCap) {
  FixedPolicy a(6.0, 6.0), b(7.0, 7.0);
  CombinedDelayPolicy combined(&a, &b, CombineMode::kSum, {0.0, 10.0});
  EXPECT_EQ(combined.DelayFor(1), 10.0);  // 13 capped.
  CombinedDelayPolicy uncapped(&a, &b, CombineMode::kSum, {0.0, 100.0});
  EXPECT_EQ(uncapped.DelayFor(1), 13.0);
  EXPECT_NE(combined.name().find("combined-sum"), std::string::npos);
}

// ---------- RegistrationFeeModel ----------

TEST(RegistrationFeeTest, OptimalIdentitiesBalanceTimeAndFees) {
  RegistrationFeeModel model;
  model.extraction_delay_seconds = 100'000;  // ~28 hours.
  model.adversary_value_per_second = 0.01;   // 1 cent per second.
  // k* = sqrt(d*v/fee) = sqrt(1000/fee).
  EXPECT_EQ(model.OptimalIdentities(10.0), 10u);
  EXPECT_EQ(model.OptimalIdentities(1000.0), 1u);
  EXPECT_EQ(model.OptimalIdentities(0.0), UINT64_MAX);
}

TEST(RegistrationFeeTest, NeutralizingFeeMakesParallelismPointless) {
  RegistrationFeeModel model;
  model.extraction_delay_seconds = 100'000;
  model.adversary_value_per_second = 0.01;
  const double sequential_cost = model.AdversaryCost(1, 0.0);
  const double fee = model.FeeToNeutralizeParallelism();
  EXPECT_NEAR(fee, 250.0, 1e-9);  // d*v/4 = 1000/4.
  // At the neutralizing fee, even the optimal k costs at least the
  // sequential attack.
  uint64_t k = model.OptimalIdentities(fee);
  EXPECT_GE(model.AdversaryCost(k, fee), sequential_cost * 0.999);
  // And a lower fee leaves parallelism profitable.
  uint64_t cheap_k = model.OptimalIdentities(fee / 100);
  EXPECT_LT(model.AdversaryCost(cheap_k, fee / 100), sequential_cost);
}

// ---------- SQL aggregates ----------

class AggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_agg_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    auto db = Database::Open(dir_.string());
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    exec_ = std::make_unique<Executor>(db_.get());
    Must("CREATE TABLE t (id INT PRIMARY KEY, v DOUBLE, name TEXT)");
    Must("INSERT INTO t VALUES (1, 2.0, 'b'), (2, 4.0, 'a'), "
         "(3, 6.0, 'c')");
    Must("INSERT INTO t (id, name) VALUES (4, 'd')");  // v is NULL.
  }
  void TearDown() override {
    exec_.reset();
    db_.reset();
    fs::remove_all(dir_);
  }
  QueryResult Must(const std::string& sql) {
    auto r = exec_->ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : QueryResult{};
  }

  fs::path dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> exec_;
};

TEST_F(AggregateTest, CountStarAndColumn) {
  QueryResult r = Must("SELECT COUNT(*), COUNT(v) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.columns[0], "COUNT(*)");
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);  // All rows.
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);  // Nulls ignored.
}

TEST_F(AggregateTest, SumAvgMinMax) {
  QueryResult r =
      Must("SELECT SUM(v), AVG(v), MIN(v), MAX(v) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 12.0);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), 6.0);
}

TEST_F(AggregateTest, AggregateWithWhereUsesPlan) {
  QueryResult r = Must("SELECT COUNT(*) FROM t WHERE id >= 2");
  EXPECT_EQ(r.plan.kind, AccessPathKind::kRangeScan);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.touched_keys.size(), 3u);
}

TEST_F(AggregateTest, EmptyInputSemantics) {
  QueryResult r = Must(
      "SELECT COUNT(*), SUM(v), AVG(v), MIN(v) FROM t WHERE id > 99");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
  EXPECT_TRUE(r.rows[0][3].is_null());
}

TEST_F(AggregateTest, MinMaxOnStrings) {
  QueryResult r = Must("SELECT MIN(name), MAX(name) FROM t");
  EXPECT_EQ(r.rows[0][0].AsString(), "a");
  EXPECT_EQ(r.rows[0][1].AsString(), "d");
}

TEST_F(AggregateTest, IntSumStaysInt) {
  Must("CREATE TABLE nums (id INT PRIMARY KEY, k INT)");
  Must("INSERT INTO nums VALUES (1, 10), (2, 20)");
  QueryResult r = Must("SELECT SUM(k) FROM nums");
  EXPECT_TRUE(r.rows[0][0].is_int());
  EXPECT_EQ(r.rows[0][0].AsInt(), 30);
}

TEST_F(AggregateTest, Errors) {
  EXPECT_FALSE(exec_->ExecuteSql("SELECT SUM(name) FROM t").ok());
  EXPECT_FALSE(exec_->ExecuteSql("SELECT SUM(*) FROM t").ok());
  EXPECT_FALSE(exec_->ExecuteSql("SELECT id, COUNT(*) FROM t").ok());
  EXPECT_FALSE(exec_->ExecuteSql("SELECT BOGUS(v) FROM t").ok());
  EXPECT_FALSE(exec_->ExecuteSql("SELECT COUNT(nope) FROM t").ok());
}

TEST_F(AggregateTest, GroupByCountsPerGroup) {
  Must("CREATE TABLE sales (id INT PRIMARY KEY, region TEXT, "
       "amount DOUBLE)");
  Must("INSERT INTO sales VALUES (1, 'east', 10.0), (2, 'west', 20.0), "
       "(3, 'east', 30.0), (4, 'west', 40.0), (5, 'east', 50.0)");
  QueryResult r = Must(
      "SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region");
  ASSERT_EQ(r.rows.size(), 2u);
  // First-seen order: east, then west.
  EXPECT_EQ(r.rows[0][0].AsString(), "east");
  EXPECT_EQ(r.rows[0][1].AsInt(), 3);
  EXPECT_DOUBLE_EQ(r.rows[0][2].AsDouble(), 90.0);
  EXPECT_EQ(r.rows[1][0].AsString(), "west");
  EXPECT_EQ(r.rows[1][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(r.rows[1][2].AsDouble(), 60.0);
}

TEST_F(AggregateTest, GroupByWithWhereAndLimit) {
  Must("CREATE TABLE sales (id INT PRIMARY KEY, region TEXT, "
       "amount DOUBLE)");
  Must("INSERT INTO sales VALUES (1, 'east', 10.0), (2, 'west', 20.0), "
       "(3, 'east', 30.0), (4, 'north', 5.0)");
  QueryResult r = Must(
      "SELECT region, MAX(amount) FROM sales WHERE amount > 7.0 "
      "GROUP BY region LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);  // north filtered out, limit 2 kept.
  EXPECT_EQ(r.rows[0][0].AsString(), "east");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 30.0);
}

TEST_F(AggregateTest, GroupByWithoutAggregatesIsDistinct) {
  Must("CREATE TABLE sales (id INT PRIMARY KEY, region TEXT)");
  Must("INSERT INTO sales VALUES (1, 'a'), (2, 'b'), (3, 'a')");
  QueryResult r = Must("SELECT region FROM sales GROUP BY region");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "a");
  EXPECT_EQ(r.rows[1][0].AsString(), "b");
}

TEST_F(AggregateTest, GroupByNullsFormTheirOwnGroup) {
  QueryResult r =
      Must("SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v");
  // Values 2,4,6 and one NULL row -> 4 groups.
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(AggregateTest, NonGroupedPlainColumnRejected) {
  EXPECT_FALSE(
      exec_->ExecuteSql("SELECT name, COUNT(*) FROM t GROUP BY v").ok());
  EXPECT_FALSE(exec_->ExecuteSql("SELECT COUNT(*) FROM t GROUP BY nope")
                   .ok());
}

// ---------- Coverage escalation through the gate ----------

class GateEscalationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_esc_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ProtectedDatabaseOptions opts;
    opts.popularity.scale = 0.01;
    opts.popularity.bounds = {0.0, 10.0};
    auto pdb =
        ProtectedDatabase::Open(dir_.string(), "items", &clock_, opts);
    ASSERT_TRUE(pdb.ok());
    pdb_ = std::move(*pdb);
    ASSERT_TRUE(pdb_->ExecuteSql("CREATE TABLE items (id INT PRIMARY "
                                 "KEY, v DOUBLE)")
                    .ok());
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(pdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                     Value(1.0)})
                      .ok());
    }
  }
  void TearDown() override {
    gate_.reset();
    pdb_.reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
  VirtualClock clock_;
  std::unique_ptr<ProtectedDatabase> pdb_;
  std::unique_ptr<QueryGate> gate_;
};

TEST_F(GateEscalationTest, ExtractionShapedAccessGetsAmplified) {
  QueryGateOptions opts;
  opts.per_user_queries_per_second = 1e9;
  opts.per_user_burst = 1e9;
  opts.per_subnet_queries_per_second = 1e9;
  opts.per_subnet_burst = 1e9;
  opts.coverage_escalation = true;
  opts.coverage.free_coverage = 0.05;
  opts.coverage.max_coverage = 0.5;
  opts.coverage.max_escalation = 50.0;
  gate_ = std::make_unique<QueryGate>(pdb_.get(), opts);

  auto scraper = gate_->RegisterUser(Ipv4FromString("10.1.1.1"));
  ASSERT_TRUE(scraper.ok());

  // Walk the keyspace. Early queries are unescalated; once coverage
  // passes the free threshold the same retrieval costs multiples.
  double early_delay = 0, late_delay = 0;
  for (int64_t k = 0; k < 200; ++k) {
    auto r = gate_->ExecuteSql(
        *scraper, "SELECT * FROM items WHERE id = " + std::to_string(k));
    ASSERT_TRUE(r.ok()) << k;
    if (k == 5) early_delay = r->delay_seconds;
    if (k == 190) late_delay = r->delay_seconds;
  }
  EXPECT_GT(late_delay, 5.0 * early_delay);
  EXPECT_GT(gate_->coverage_monitor()->Coverage(scraper->id, 200), 0.5);

  // Meanwhile a user hammering one hot key stays unescalated.
  auto browser = gate_->RegisterUser(Ipv4FromString("10.2.2.2"));
  ASSERT_TRUE(browser.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        gate_->ExecuteSql(*browser, "SELECT * FROM items WHERE id = 1")
            .ok());
  }
  EXPECT_EQ(gate_->coverage_monitor()->EscalationFactor(browser->id, 200),
            1.0);
}

// ---------- Warm start ----------

TEST(WarmStartTest, PersistedCountsSurviveRestart) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("tarpit_warm_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  VirtualClock clock;
  ProtectedDatabaseOptions opts;
  opts.persist_counts = true;
  opts.popularity.scale = 1.0;
  opts.popularity.bounds = {0.0, 10.0};
  {
    auto pdb = ProtectedDatabase::Open(dir.string(), "items", &clock,
                                       opts);
    ASSERT_TRUE(pdb.ok());
    ASSERT_TRUE((*pdb)
                    ->ExecuteSql("CREATE TABLE items (id INT PRIMARY "
                                 "KEY, v DOUBLE)")
                    .ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*pdb)
                      ->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                     Value(1.0)})
                      .ok());
    }
    for (int i = 0; i < 99; ++i) {
      ASSERT_TRUE(
          (*pdb)->ExecuteSql("SELECT * FROM items WHERE id = 3").ok());
    }
    ASSERT_TRUE((*pdb)->Checkpoint().ok());
  }
  // Reopen: key 3's popularity must be warm, so its first retrieval is
  // already cheap (count 99 persisted + 1 recorded now = 100).
  auto pdb =
      ProtectedDatabase::Open(dir.string(), "items", &clock, opts);
  ASSERT_TRUE(pdb.ok());
  auto r = (*pdb)->ExecuteSql("SELECT * FROM items WHERE id = 3");
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->delay_seconds, 1.0 / 100, 1e-6);
  // An unseen key still pays the cap.
  auto cold = (*pdb)->ExecuteSql("SELECT * FROM items WHERE id = 7");
  ASSERT_TRUE(cold.ok());
  EXPECT_GE(cold->delay_seconds, 1.0);  // count 1 after recording -> scale/1.
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tarpit
