#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "defense/audit_log.h"
#include "defense/coverage_monitor.h"
#include "defense/identity.h"
#include "defense/query_gate.h"
#include "defense/registration_limiter.h"
#include "defense/token_bucket.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

// ---------- TokenBucket ----------

TEST(TokenBucketTest, BurstThenThrottles) {
  TokenBucket bucket(1.0, 3.0);  // 1/s, burst 3.
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));
  EXPECT_NEAR(bucket.RetryAfter(0), 1.0, 1e-9);
}

TEST(TokenBucketTest, RefillsOverTime) {
  TokenBucket bucket(2.0, 2.0);  // 2/s.
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0.1));
  EXPECT_TRUE(bucket.TryAcquire(0.6));  // 0.6s * 2/s = 1.2 tokens.
  EXPECT_FALSE(bucket.TryAcquire(0.6));
}

TEST(TokenBucketTest, NeverExceedsBurst) {
  TokenBucket bucket(100.0, 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(1000.0));
  EXPECT_FALSE(bucket.TryAcquire(1000.0));
}

TEST(TokenBucketTest, TimeGoingBackwardsIsIgnored) {
  TokenBucket bucket(1.0, 1.0);
  EXPECT_TRUE(bucket.TryAcquire(10.0));
  EXPECT_FALSE(bucket.TryAcquire(5.0));  // No negative refill.
}

// ---------- Identity ----------

TEST(IdentityTest, Ipv4RoundTripAndSubnet) {
  uint32_t ip = Ipv4FromString("192.168.34.17");
  EXPECT_EQ(Ipv4ToString(ip), "192.168.34.17");
  Identity id;
  id.ipv4 = ip;
  EXPECT_EQ(Ipv4ToString(id.Subnet24()), "192.168.34.0");
  EXPECT_EQ(Ipv4FromString("999.1.1.1"), 0u);
  EXPECT_EQ(Ipv4FromString("garbage"), 0u);
}

// ---------- RegistrationLimiter ----------

TEST(RegistrationLimiterTest, OneAccountPerInterval) {
  RegistrationLimiter limiter(60.0, 1.0);
  auto a = limiter.Register(1, 0.0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->id, 1u);
  auto b = limiter.Register(2, 1.0);
  EXPECT_TRUE(b.status().IsRateLimited());
  auto c = limiter.Register(2, 61.0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->id, 2u);
  EXPECT_EQ(limiter.registered(), 2u);
}

TEST(RegistrationLimiterTest, TimeToAccumulateBound) {
  RegistrationLimiter limiter(30.0, 1.0);
  EXPECT_EQ(limiter.TimeToAccumulate(1), 0.0);
  EXPECT_NEAR(limiter.TimeToAccumulate(100), 99 * 30.0, 1e-9);
}

// ---------- QueryGate (integration) ----------

class QueryGateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tarpit_gate_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()) +
            "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ProtectedDatabaseOptions opts;
    opts.popularity.scale = 0.001;
    opts.popularity.bounds = {0.0, 10.0};
    auto pdb =
        ProtectedDatabase::Open(dir_.string(), "items", &clock_, opts);
    ASSERT_TRUE(pdb.ok());
    pdb_ = std::move(*pdb);
    ASSERT_TRUE(
        pdb_->ExecuteSql(
                "CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
            .ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(pdb_->BulkLoadRow({Value(static_cast<int64_t>(i)),
                                     Value(i * 1.0)})
                      .ok());
    }
  }
  void TearDown() override {
    gate_.reset();
    pdb_.reset();
    fs::remove_all(dir_);
  }

  void MakeGate(QueryGateOptions opts) {
    gate_ = std::make_unique<QueryGate>(pdb_.get(), opts);
  }

  fs::path dir_;
  VirtualClock clock_;
  std::unique_ptr<ProtectedDatabase> pdb_;
  std::unique_ptr<QueryGate> gate_;
};

TEST_F(QueryGateTest, RegistrationRateLimited) {
  QueryGateOptions opts;
  opts.registration_seconds_per_account = 100.0;
  opts.registration_burst = 1.0;
  MakeGate(opts);
  auto a = gate_->RegisterUser(Ipv4FromString("10.0.0.1"));
  ASSERT_TRUE(a.ok());
  auto b = gate_->RegisterUser(Ipv4FromString("10.0.0.2"));
  EXPECT_TRUE(b.status().IsRateLimited());
  clock_.AdvanceToMicros(101 * 1'000'000LL);
  auto c = gate_->RegisterUser(Ipv4FromString("10.0.0.2"));
  EXPECT_TRUE(c.ok());
}

TEST_F(QueryGateTest, QueriesPassAndAreDelayed) {
  QueryGateOptions opts;
  MakeGate(opts);
  auto user = gate_->RegisterUser(Ipv4FromString("10.0.0.1"));
  ASSERT_TRUE(user.ok());
  auto r = gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result.rows.size(), 1u);
  EXPECT_GT(r->delay_seconds, 0.0);
  EXPECT_EQ(gate_->LifetimeQueries(user->id), 1u);
}

TEST_F(QueryGateTest, PerUserThrottleKicksIn) {
  QueryGateOptions opts;
  opts.per_user_queries_per_second = 1.0;
  opts.per_user_burst = 2.0;
  opts.per_subnet_queries_per_second = 1000.0;
  opts.per_subnet_burst = 1000.0;
  MakeGate(opts);
  auto user = gate_->RegisterUser(Ipv4FromString("10.0.0.1"));
  ASSERT_TRUE(user.ok());
  // Delay charged per query advances the virtual clock slightly, so
  // pin delays near zero by querying hot key repeatedly.
  ASSERT_TRUE(
      gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 1").ok());
  ASSERT_TRUE(
      gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 1").ok());
  auto r = gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 1");
  EXPECT_TRUE(r.status().IsRateLimited());
  EXPECT_GT(gate_->RetryAfter(*user), 0.0);
}

TEST_F(QueryGateTest, SubnetAggregationThrottlesSybils) {
  QueryGateOptions opts;
  opts.registration_seconds_per_account = 0.0;  // Free registration.
  opts.registration_burst = 10.0;
  opts.per_user_queries_per_second = 1000.0;
  opts.per_user_burst = 1000.0;
  opts.per_subnet_queries_per_second = 1.0;
  opts.per_subnet_burst = 3.0;
  MakeGate(opts);
  // Three sybils in the same /24.
  std::vector<Identity> sybils;
  for (int i = 1; i <= 3; ++i) {
    auto s = gate_->RegisterUser(
        Ipv4FromString("10.0.0." + std::to_string(i)));
    ASSERT_TRUE(s.ok());
    sybils.push_back(*s);
  }
  // The subnet bucket admits 3 queries total, regardless of identity.
  ASSERT_TRUE(
      gate_->ExecuteSql(sybils[0], "SELECT * FROM items WHERE id = 1")
          .ok());
  ASSERT_TRUE(
      gate_->ExecuteSql(sybils[1], "SELECT * FROM items WHERE id = 1")
          .ok());
  ASSERT_TRUE(
      gate_->ExecuteSql(sybils[2], "SELECT * FROM items WHERE id = 1")
          .ok());
  auto r =
      gate_->ExecuteSql(sybils[0], "SELECT * FROM items WHERE id = 1");
  EXPECT_TRUE(r.status().IsRateLimited());
  // A user in a different /24 is unaffected.
  auto other = gate_->RegisterUser(Ipv4FromString("10.0.1.1"));
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(
      gate_->ExecuteSql(*other, "SELECT * FROM items WHERE id = 1").ok());
}

TEST_F(QueryGateTest, LifetimeLimitStopsStorefront) {
  QueryGateOptions opts;
  opts.per_user_lifetime_query_limit = 2;
  opts.per_user_queries_per_second = 1000.0;
  opts.per_user_burst = 1000.0;
  opts.per_subnet_queries_per_second = 1000.0;
  opts.per_subnet_burst = 1000.0;
  MakeGate(opts);
  auto user = gate_->RegisterUser(Ipv4FromString("10.0.0.1"));
  ASSERT_TRUE(user.ok());
  ASSERT_TRUE(
      gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 1").ok());
  ASSERT_TRUE(
      gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 2").ok());
  auto r = gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 3");
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(QueryGateTest, RateLimitedQueryDoesNotExecute) {
  QueryGateOptions opts;
  opts.per_user_queries_per_second = 0.0;
  opts.per_user_burst = 1.0;
  MakeGate(opts);
  auto user = gate_->RegisterUser(Ipv4FromString("10.0.0.1"));
  ASSERT_TRUE(user.ok());
  ASSERT_TRUE(
      gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 1").ok());
  uint64_t requests_before = pdb_->access_tracker()->total_requests();
  auto r = gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 2");
  EXPECT_TRUE(r.status().IsRateLimited());
  EXPECT_EQ(pdb_->access_tracker()->total_requests(), requests_before);
}

// ---------- QueryGate::ExecuteSqlAsync ----------

// On a virtual clock the scheduler is in instant-fire mode: the parked
// stall completes immediately through the completion queue, so
// simulations can drive the async perimeter on one timeline.
TEST_F(QueryGateTest, ExecuteSqlAsyncCompletesOnVirtualClock) {
  MakeGate(QueryGateOptions{});
  auto user = gate_->RegisterUser(Ipv4FromString("10.0.0.1"));
  ASSERT_TRUE(user.ok());
  DelayScheduler scheduler(&clock_);
  ASSERT_TRUE(scheduler.virtual_time());

  std::atomic<bool> got_row{false};
  gate_->ExecuteSqlAsync(*user, "SELECT * FROM items WHERE id = 3",
                         &scheduler, [&](Result<ProtectedResult> r) {
                           got_row = r.ok() && r->result.rows.size() == 1;
                         });
  scheduler.Drain();
  EXPECT_TRUE(got_row.load());
  EXPECT_EQ(gate_->LifetimeQueries(user->id), 1u);
}

// Perimeter denials never reach the scheduler: the completion fires
// inline with the denial status and nothing executes.
TEST_F(QueryGateTest, ExecuteSqlAsyncDenialCompletesInline) {
  QueryGateOptions opts;
  opts.per_user_queries_per_second = 0.0;
  opts.per_user_burst = 0.5;  // Not even one query.
  MakeGate(opts);
  auto user = gate_->RegisterUser(Ipv4FromString("10.0.0.1"));
  ASSERT_TRUE(user.ok());
  DelayScheduler scheduler(&clock_);

  bool completed = false;
  Status status;
  gate_->ExecuteSqlAsync(*user, "SELECT * FROM items WHERE id = 1",
                         &scheduler, [&](Result<ProtectedResult> r) {
                           completed = true;  // Inline: no race.
                           status = r.status();
                         });
  EXPECT_TRUE(completed);
  EXPECT_TRUE(status.IsRateLimited());
  EXPECT_EQ(scheduler.scheduled_total(), 0u);
}

// Real clock + defer_delay_sleep: the charged stall parks on the wheel
// under the caller's session group, and evicting the session cancels
// it -- the result is withheld (Cancelled), never delivered early.
TEST(QueryGateAsyncTest, SessionEvictionCancelsParkedStall) {
  fs::path dir = fs::temp_directory_path() /
                 ("tarpit_gate_async_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  RealClock clock;
  ProtectedDatabaseOptions opts;
  opts.popularity.scale = 1e12;             // Everything hits the cap.
  opts.popularity.bounds = {0.0, 3600.0};   // Hour-long stalls.
  opts.defer_delay_sleep = true;            // The gate parks, not sleeps.
  auto pdb = ProtectedDatabase::Open(dir.string(), "items", &clock, opts);
  ASSERT_TRUE(pdb.ok());
  ASSERT_TRUE((*pdb)
                  ->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, "
                               "v DOUBLE)")
                  .ok());
  ASSERT_TRUE(
      (*pdb)->BulkLoadRow({Value(static_cast<int64_t>(1)), Value(1.0)})
          .ok());
  QueryGate gate(pdb->get(), QueryGateOptions{});
  auto user = gate.RegisterUser(Ipv4FromString("10.0.0.1"));
  ASSERT_TRUE(user.ok());
  DelayScheduler scheduler(&clock);

  constexpr StallGroup kSession = 77;
  std::atomic<bool> completed{false};
  std::atomic<bool> cancelled{false};
  gate.ExecuteSqlAsync(
      *user, "SELECT * FROM items WHERE id = 1", &scheduler,
      [&](Result<ProtectedResult> r) {
        cancelled = !r.ok() && r.status().IsCancelled();
        completed = true;
      },
      kSession);
  EXPECT_FALSE(completed.load());  // Parked for an hour, not served.
  EXPECT_EQ(scheduler.parked(), 1u);
  EXPECT_EQ(scheduler.CancelGroup(kSession), 1u);
  scheduler.Drain();
  EXPECT_TRUE(completed.load());
  EXPECT_TRUE(cancelled.load());
  pdb->reset();
  fs::remove_all(dir);
}

// ---------- AuditLog ----------

TEST(AuditLogTest, RingBufferEvictsOldest) {
  AuditLog log(3);
  for (int i = 0; i < 5; ++i) {
    AuditRecord r;
    r.time_seconds = i;
    r.event = AuditEvent::kQueryServed;
    log.Record(r);
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_recorded(), 5u);
  double first = -1;
  log.ForEach([&](const AuditRecord& r) {
    first = r.time_seconds;
    return false;  // Stop at the first (oldest).
  });
  EXPECT_EQ(first, 2.0);
}

TEST(AuditLogTest, CountsByEventAndIdentity) {
  AuditLog log;
  AuditRecord served;
  served.event = AuditEvent::kQueryServed;
  served.identity = 7;
  AuditRecord limited;
  limited.event = AuditEvent::kRateLimitedUser;
  limited.identity = 7;
  log.Record(served);
  log.Record(served);
  log.Record(limited);
  EXPECT_EQ(log.CountOf(AuditEvent::kQueryServed), 2u);
  EXPECT_EQ(log.CountOf(AuditEvent::kRateLimitedUser), 1u);
  EXPECT_EQ(log.CountOf(AuditEvent::kLifetimeCapHit), 0u);
  EXPECT_EQ(log.CountForIdentity(7), 3u);
  EXPECT_EQ(log.CountForIdentity(8), 0u);
  EXPECT_EQ(AuditEventName(AuditEvent::kCoverageEscalated),
            "coverage-escalated");
}

TEST_F(QueryGateTest, GateDecisionsAreAudited) {
  QueryGateOptions opts;
  opts.registration_seconds_per_account = 1000.0;
  opts.registration_burst = 1.0;
  opts.per_user_queries_per_second = 1.0;
  opts.per_user_burst = 2.0;
  MakeGate(opts);
  auto user = gate_->RegisterUser(Ipv4FromString("10.0.0.1"));
  ASSERT_TRUE(user.ok());
  auto denied = gate_->RegisterUser(Ipv4FromString("10.0.0.2"));
  EXPECT_FALSE(denied.ok());
  ASSERT_TRUE(
      gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 1").ok());
  ASSERT_TRUE(
      gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 1").ok());
  auto limited =
      gate_->ExecuteSql(*user, "SELECT * FROM items WHERE id = 1");
  EXPECT_TRUE(limited.status().IsRateLimited());

  AuditLog* log = gate_->audit_log();
  EXPECT_EQ(log->CountOf(AuditEvent::kRegistered), 1u);
  EXPECT_EQ(log->CountOf(AuditEvent::kRegistrationDenied), 1u);
  EXPECT_EQ(log->CountOf(AuditEvent::kQueryServed), 2u);
  EXPECT_EQ(log->CountOf(AuditEvent::kRateLimitedUser), 1u);
  EXPECT_GE(log->CountForIdentity(user->id), 3u);
}

// ---------- CoverageMonitor boundary behavior ----------

TEST(CoverageBoundaryTest, ExactEdgesOfTheEscalationCurve) {
  CoverageMonitorOptions opts;
  opts.free_coverage = 0.01;
  opts.max_coverage = 0.25;
  opts.max_escalation = 100.0;
  CoverageMonitor monitor(opts);
  // Exactly AT the free edge is free; the first epsilon past it is not.
  EXPECT_DOUBLE_EQ(monitor.EscalationForCoverage(0.0), 1.0);
  EXPECT_DOUBLE_EQ(monitor.EscalationForCoverage(0.01), 1.0);
  EXPECT_GT(monitor.EscalationForCoverage(0.01 + 1e-12), 1.0);
  // Exactly AT the max edge is full escalation, as is anything above.
  EXPECT_DOUBLE_EQ(monitor.EscalationForCoverage(0.25), 100.0);
  EXPECT_DOUBLE_EQ(monitor.EscalationForCoverage(1.0), 100.0);
  // Midpoint of the linear ramp.
  EXPECT_NEAR(monitor.EscalationForCoverage(0.13), 50.5, 1e-9);
}

TEST(CoverageBoundaryTest, DegenerateFreeEqualsMaxIsAStep) {
  CoverageMonitorOptions opts;
  opts.free_coverage = 0.1;
  opts.max_coverage = 0.1;  // Zero-width ramp.
  opts.max_escalation = 40.0;
  CoverageMonitor monitor(opts);
  EXPECT_DOUBLE_EQ(monitor.EscalationForCoverage(0.1), 1.0);
  EXPECT_DOUBLE_EQ(monitor.EscalationForCoverage(0.1 + 1e-12), 40.0);
}

TEST(CoverageBoundaryTest, MisconfiguredMaxEscalationClampsToOne) {
  CoverageMonitorOptions opts;
  opts.free_coverage = 0.0;
  opts.max_coverage = 0.5;
  opts.max_escalation = 0.25;  // Nonsense: escalation must never
                               // DISCOUNT the base delay.
  CoverageMonitor monitor(opts);
  for (double c = 0.0; c <= 1.0; c += 0.05) {
    EXPECT_GE(monitor.EscalationForCoverage(c), 1.0) << c;
  }
}

TEST(CoverageBoundaryTest, SketchEstimateStaysInsideHllErrorBand) {
  // Precision 12 => standard error ~1.04/sqrt(4096) ~ 1.63%. The
  // sketch's estimate of an exactly known distinct count must land
  // well inside a 5-sigma band, so EscalationFactor's edge behavior is
  // only ever off by that band, never by a gross margin.
  CoverageMonitorOptions opts;
  opts.hll_precision = 12;
  CoverageMonitor monitor(opts);
  const double sigma = 1.04 / std::sqrt(4096.0);
  for (int64_t exact : {100, 1'000, 10'000, 50'000}) {
    monitor.Forget(9);
    for (int64_t k = 0; k < exact; ++k) monitor.RecordAccess(9, k);
    const double est = monitor.DistinctTuples(9);
    EXPECT_NEAR(est, static_cast<double>(exact),
                5.0 * sigma * static_cast<double>(exact))
        << exact;
  }
}

TEST(CoverageBoundaryTest, SubnetKeyingSeesWhatIdentityKeyingCannot) {
  // A Sybil fleet: 10 identities in one /24, each touching a DISJOINT
  // 3% slice. Keyed per identity, nobody crosses the 5% free line.
  // Keyed per subnet (principal = Subnet24 value), the same accesses
  // aggregate to 30% and hit full escalation -- the whole point of
  // subnet-scoped coverage.
  CoverageMonitorOptions opts;
  opts.free_coverage = 0.05;
  opts.max_coverage = 0.25;
  opts.max_escalation = 100.0;
  CoverageMonitor by_identity(opts);
  CoverageMonitor by_subnet(opts);
  const uint64_t n = 10'000;
  Identity member;
  member.ipv4 = Ipv4FromString("10.1.2.3");
  const IdentityId subnet_principal = member.Subnet24();
  for (uint64_t sybil = 0; sybil < 10; ++sybil) {
    const IdentityId identity = 100 + sybil;
    const int64_t lo = static_cast<int64_t>(sybil * 300);
    for (int64_t k = lo; k < lo + 300; ++k) {
      by_identity.RecordAccess(identity, k);
      by_subnet.RecordAccess(subnet_principal, k);
    }
  }
  for (uint64_t sybil = 0; sybil < 10; ++sybil) {
    EXPECT_DOUBLE_EQ(by_identity.EscalationFactor(100 + sybil, n), 1.0)
        << sybil;
  }
  EXPECT_DOUBLE_EQ(by_subnet.EscalationFactor(subnet_principal, n),
                   100.0);
}

}  // namespace
}  // namespace tarpit
