#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/model.h"
#include "analysis/staleness.h"
#include "analysis/zipf_fit.h"
#include "common/random.h"
#include "common/zipf.h"

namespace tarpit {
namespace {

// ---------- Model (Eqs. 1-7) ----------

TEST(ModelTest, DelayForRankMatchesEquationOne) {
  ZipfModelParams p;
  p.n = 100;
  p.alpha = 1.0;
  p.beta = 2.0;
  p.fmax = 4.0;
  EXPECT_NEAR(DelayForRank(p, 1), 1.0 / 400, 1e-12);
  EXPECT_NEAR(DelayForRank(p, 10), 1000.0 / 400, 1e-12);
}

TEST(ModelTest, AdversaryDelayUncappedIsEquationTwo) {
  ZipfModelParams p;
  p.n = 4;
  p.alpha = 1.0;
  p.beta = 1.0;
  p.fmax = 1.0;
  // sum i^2 for i=1..4 = 30; / (4*1) = 7.5.
  EXPECT_NEAR(AdversaryDelayUncapped(p), 7.5, 1e-12);
}

TEST(ModelTest, CapRankInvertsEquationFive) {
  ZipfModelParams p;
  p.n = 10000;
  p.alpha = 1.0;
  p.beta = 1.0;
  p.fmax = 1.0;
  p.dmax = 1.0;
  // M = (dmax*N*fmax)^(1/2) = 100.
  EXPECT_EQ(CapRank(p), 100u);
  EXPECT_LE(DelayForRank(p, CapRank(p) - 1), p.dmax);
  EXPECT_GE(DelayForRank(p, CapRank(p)), p.dmax);
}

TEST(ModelTest, CappedDelayBelowUncappedAndBelowNaiveMax) {
  ZipfModelParams p;
  p.n = 12179;
  p.alpha = 1.5;
  p.beta = 1.0;
  p.fmax = 0.01;
  p.dmax = 10.0;
  double capped = AdversaryDelayCapped(p);
  EXPECT_LT(capped, AdversaryDelayUncapped(p));
  EXPECT_LE(capped, static_cast<double>(p.n) * p.dmax + 1e-9);
  // Cap engaged: most tuples pay dmax, so capped is near N * dmax.
  EXPECT_GT(capped, 0.5 * static_cast<double>(p.n) * p.dmax);
}

TEST(ModelTest, MedianRankMatchesBruteForce) {
  for (double alpha : {0.5, 1.0, 1.5, 2.0}) {
    const uint64_t n = 1000;
    uint64_t m = MedianRankZipf(n, alpha);
    // CDF(m) >= 0.5 > CDF(m-1).
    double h = GeneralizedHarmonic(n, alpha);
    double cdf_m = GeneralizedHarmonic(m, alpha) / h;
    EXPECT_GE(cdf_m, 0.5) << alpha;
    if (m > 1) {
      double cdf_prev = GeneralizedHarmonic(m - 1, alpha) / h;
      EXPECT_LT(cdf_prev, 0.5) << alpha;
    }
  }
}

TEST(ModelTest, MedianRankRegimes) {
  // Eq. 3 asymptotics: alpha > 1 gives tiny (log N) median ranks,
  // alpha < 1 gives ranks linear in N.
  EXPECT_LT(MedianRankZipf(100000, 1.5), 50u);
  EXPECT_GT(MedianRankZipf(100000, 0.5), 10000u);
  uint64_t sqrtish = MedianRankZipf(100000, 1.0);
  EXPECT_GT(sqrtish, 50u);
  EXPECT_LT(sqrtish, 5000u);

  EXPECT_EQ(MedianRankRegimeFor(0.5), MedianRankRegime::kLinearInN);
  EXPECT_EQ(MedianRankRegimeFor(1.0), MedianRankRegime::kSqrtN);
  EXPECT_EQ(MedianRankRegimeFor(1.5), MedianRankRegime::kLogN);
}

TEST(ModelTest, RatioGrowsSuperlinearlyForHighSkew) {
  // Eq. 4: for alpha >= 1, the adversary/median ratio should explode
  // with N.
  ZipfModelParams small;
  small.n = 1000;
  small.alpha = 1.5;
  small.beta = 1.0;
  small.fmax = 1.0;
  small.dmax = 0;  // Uncapped for the pure asymptotic.
  ZipfModelParams big = small;
  big.n = 100000;
  double r_small = AdversaryToMedianRatio(small);
  double r_big = AdversaryToMedianRatio(big);
  EXPECT_GT(r_big / r_small, 100.0 * 0.5);  // Superlinear in N.
  EXPECT_FALSE(RatioRegimeDescription(1.5, 1.0).empty());
  EXPECT_FALSE(RatioRegimeDescription(1.0, 1.0).empty());
  EXPECT_FALSE(RatioRegimeDescription(0.5, 1.0).empty());
}

TEST(ModelTest, MedianUserDelayRespectsCap) {
  ZipfModelParams p;
  p.n = 100;
  p.alpha = 0.3;  // Median rank deep in the tail.
  p.beta = 5.0;
  p.fmax = 1e-9;  // Huge raw delays.
  p.dmax = 10.0;
  EXPECT_EQ(MedianUserDelay(p), 10.0);
}

// ---------- Staleness (Eqs. 8-12) ----------

TEST(StalenessTest, SmaxApproxMatchesFormula) {
  EXPECT_NEAR(SmaxApprox(2.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(SmaxApprox(1.0, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(SmaxApprox(0.5, 1.0), 0.25, 1e-12);
  // alpha = 2: S = (c/3)^(1/2).
  EXPECT_NEAR(SmaxApprox(0.75, 2.0), 0.5, 1e-12);
  // Clamped to [0, 1].
  EXPECT_EQ(SmaxApprox(100.0, 1.0), 1.0);
}

TEST(StalenessTest, SmaxExactConvergesToApprox) {
  // For large N the finite-sum solution approaches the continuous
  // approximation (Eq. 11 -> Eq. 12).
  for (double alpha : {0.5, 1.0, 2.0}) {
    double exact = SmaxExact(1'000'000, alpha, 0.5);
    double approx = SmaxApprox(0.5, alpha);
    EXPECT_NEAR(exact, approx, approx * 0.05) << alpha;
  }
}

TEST(StalenessTest, DeterministicCriterion) {
  // Rates: 1/s, 0.1/s, 0.01/s. d_total = 15s -> items with 1/r <= 15
  // (rates >= 1/15) are stale: the first two.
  std::vector<double> rates = {1.0, 0.1, 0.01};
  EXPECT_NEAR(DeterministicStaleFraction(rates, 15.0), 2.0 / 3, 1e-12);
  EXPECT_NEAR(DeterministicStaleFraction(rates, 0.5), 0.0, 1e-12);
  EXPECT_NEAR(DeterministicStaleFraction(rates, 1000.0), 1.0, 1e-12);
  EXPECT_EQ(DeterministicStaleFraction({}, 10.0), 0.0);
}

TEST(StalenessTest, PoissonExpectationBounds) {
  std::vector<double> rates = {10.0, 0.0};
  std::vector<double> times = {0.0, 5.0};
  double s = ExpectedStaleFractionPoisson(rates, times, 10.0);
  // Item 1: 1-exp(-100) ~ 1. Item 2: rate 0 -> never stale.
  EXPECT_NEAR(s, 0.5, 1e-6);
  // Retrieval at the very end leaves no exposure window.
  EXPECT_NEAR(
      ExpectedStaleFractionPoisson({100.0}, {10.0}, 10.0), 0.0, 1e-12);
}

TEST(StalenessTest, StaleFractionMonotoneInSkewRegimeCheck) {
  // With fixed c, higher alpha concentrates updates on fewer tuples,
  // so the deterministic stale fraction (under Zipf rates and the
  // resulting d_total) should fall -- the Figure 6 trend at high skew.
  auto stale_at = [](double alpha) {
    const uint64_t n = 10000;
    const double total_rate = 100.0;
    std::vector<double> rates(n);
    ZipfDistribution z(n, alpha);
    for (uint64_t i = 1; i <= n; ++i) {
      rates[i - 1] = total_rate * z.Pmf(i);
    }
    // Delay per Eq. 8 with c = 0.5 and a 10s cap.
    double c = 0.5, dmax = 10.0, dtotal = 0.0;
    for (double r : rates) {
      double d = r > 0 ? c / (static_cast<double>(n) * r) : dmax;
      dtotal += std::min(d, dmax);
    }
    return DeterministicStaleFraction(rates, dtotal);
  };
  EXPECT_GT(stale_at(0.5), stale_at(2.5));
}

// ---------- Zipf fitting ----------

TEST(ZipfFitTest, RecoversExactPowerLaw) {
  std::vector<double> counts;
  for (int i = 1; i <= 500; ++i) {
    counts.push_back(1e6 * std::pow(i, -1.3));
  }
  ZipfFit fit = FitZipf(counts);
  EXPECT_NEAR(fit.alpha, 1.3, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_EQ(fit.points, 500u);
}

TEST(ZipfFitTest, ZeroCountsTerminateFit) {
  std::vector<double> counts = {100, 50, 0, 25};
  ZipfFit fit = FitZipf(counts);
  EXPECT_EQ(fit.points, 2u);
  EXPECT_NEAR(fit.alpha, 1.0, 1e-9);  // 100 -> 50 over ranks 1 -> 2.
}

TEST(ZipfFitTest, DegenerateInputs) {
  EXPECT_EQ(FitZipf({}).points, 0u);
  EXPECT_EQ(FitZipf({5.0}).points, 1u);
  EXPECT_EQ(FitZipf({5.0}).alpha, 0.0);
}

class ZipfFitSampleTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfFitSampleTest, RecoversAlphaFromSampledCounts) {
  const double alpha = GetParam();
  const uint64_t n = 2000;
  CountTracker tracker(n, 1.0);
  ZipfDistribution zipf(n, alpha);
  Rng rng(5);
  for (int i = 0; i < 500'000; ++i) {
    tracker.Record(static_cast<int64_t>(zipf.Sample(&rng)));
  }
  std::vector<int64_t> keys;
  for (uint64_t k = 1; k <= n; ++k) {
    keys.push_back(static_cast<int64_t>(k));
  }
  ZipfFit fit = FitZipfFromTracker(tracker, keys, /*top_k=*/100);
  EXPECT_NEAR(fit.alpha, alpha, 0.1) << alpha;
  EXPECT_GT(fit.r_squared, 0.98);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfFitSampleTest,
                         ::testing::Values(0.8, 1.2, 1.6));

}  // namespace
}  // namespace tarpit
