// Forensics & continuous self-audit layer (ISSUE 9): the time-series
// scraper, the self-audit watchdog (zero false positives benign,
// one-pass detection of failpoint-injected ledger drift), extraction-
// risk scoring against the adversary zoo, Chrome-trace export span
// accounting, and the bounded AuditLog with its event-ring overflow
// route.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/concurrent_db.h"
#include "core/protected_db.h"
#include "core/self_audit.h"
#include "defense/audit_log.h"
#include "defense/query_gate.h"
#include "obs/event_ring.h"
#include "obs/metrics.h"
#include "obs/risk.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "obs/watchdog.h"
#include "sim/adversary_zoo.h"
#include "workload/key_generator.h"

namespace tarpit {
namespace {

namespace fs = std::filesystem;

// ---------------- MetricTimeSeries ----------------------------------

TEST(MetricTimeSeriesTest, CountersScrapeValueAndDelta) {
  obs::MetricRegistry registry;
  obs::Counter* c = registry.GetCounter("tarpit_test_total");
  obs::MetricTimeSeries ts(&registry);

  c->Increment(5);
  EXPECT_EQ(ts.ScrapeOnce(1.0), 0u);
  c->Increment(3);
  EXPECT_EQ(ts.ScrapeOnce(2.0), 1u);

  const std::vector<obs::TimeSeriesPoint> pts =
      ts.Series("tarpit_test_total");
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].time_seconds, 1.0);
  EXPECT_DOUBLE_EQ(pts[0].value, 5.0);
  EXPECT_DOUBLE_EQ(pts[0].delta, 0.0);  // No prior point.
  EXPECT_DOUBLE_EQ(pts[1].time_seconds, 2.0);
  EXPECT_DOUBLE_EQ(pts[1].value, 8.0);
  EXPECT_DOUBLE_EQ(pts[1].delta, 3.0);

  obs::TimeSeriesPoint latest;
  ASSERT_TRUE(ts.Latest("tarpit_test_total", {}, {}, &latest));
  EXPECT_DOUBLE_EQ(latest.value, 8.0);
  EXPECT_EQ(ts.scrapes_total(), 2u);
}

TEST(MetricTimeSeriesTest, WindowIsARingWithFixedMemory) {
  obs::MetricRegistry registry;
  obs::Counter* c = registry.GetCounter("tarpit_ring_total");
  obs::MetricTimeSeriesOptions opts;
  opts.window = 4;
  obs::MetricTimeSeries ts(&registry, opts);

  for (int i = 1; i <= 10; ++i) {
    c->Increment(1);
    ts.ScrapeOnce(static_cast<double>(i));
  }
  const std::vector<obs::TimeSeriesPoint> pts =
      ts.Series("tarpit_ring_total");
  ASSERT_EQ(pts.size(), 4u);  // Only the window is retained.
  EXPECT_DOUBLE_EQ(pts.front().time_seconds, 7.0);  // Oldest kept.
  EXPECT_DOUBLE_EQ(pts.back().time_seconds, 10.0);
  EXPECT_DOUBLE_EQ(pts.back().value, 10.0);
  EXPECT_DOUBLE_EQ(pts.back().delta, 1.0);
}

TEST(MetricTimeSeriesTest, HistogramSubSeriesAndCardinalityCap) {
  obs::MetricRegistry registry;
  obs::Histogram* h = registry.GetHistogram("tarpit_lat_ns");
  for (int i = 1; i <= 100; ++i) h->Record(i * 1000);
  obs::MetricTimeSeries ts(&registry);
  ts.ScrapeOnce(1.0);

  obs::TimeSeriesPoint count, p99;
  ASSERT_TRUE(ts.Latest("tarpit_lat_ns", {}, "count", &count));
  EXPECT_DOUBLE_EQ(count.value, 100.0);
  ASSERT_TRUE(ts.Latest("tarpit_lat_ns", {}, "p99", &p99));
  EXPECT_GT(p99.value, 0.0);

  // Cardinality explosion degrades to "newest untracked", not
  // unbounded growth.
  obs::MetricRegistry wide;
  for (int i = 0; i < 8; ++i) {
    wide.GetCounter("tarpit_wide_total",
                    {{"shard", std::to_string(i)}});
  }
  obs::MetricTimeSeriesOptions capped;
  capped.max_series = 3;
  obs::MetricTimeSeries cts(&wide, capped);
  cts.ScrapeOnce(1.0);
  EXPECT_EQ(cts.tracked_series(), 3u);
  EXPECT_GT(cts.dropped_series(), 0u);
}

// ---------------- Self-audit watchdog -------------------------------

std::unique_ptr<ConcurrentProtectedDatabase> OpenAuditedDb(
    const fs::path& dir, Clock* clock, obs::MetricRegistry* metrics) {
  fs::create_directories(dir);
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.beta = 0.0;
  opts.popularity.scale = 1e-3;
  opts.popularity.bounds = {0.0, 10.0};
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.serve_delays = false;  // Charges recorded, stalls skipped.
  copts.metrics = metrics;
  auto opened = ConcurrentProtectedDatabase::Open(dir.string(), "items",
                                                  clock, opts, copts);
  EXPECT_TRUE(opened.ok());
  if (!opened.ok()) return nullptr;
  auto db = std::move(*opened);
  EXPECT_TRUE(
      db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
          .ok());
  for (int i = 1; i <= 256; ++i) {
    EXPECT_TRUE(
        db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(0.5)})
            .ok());
  }
  EXPECT_TRUE(db->Checkpoint().ok());
  return db;
}

void RunUniformReads(ConcurrentProtectedDatabase* db, int ops,
                     uint64_t seed) {
  Rng rng(seed);
  UniformKeyGenerator gen(256);
  for (int i = 0; i < ops; ++i) {
    ASSERT_TRUE(db->GetByKey(gen.Next(&rng)).ok());
  }
}

TEST(SelfAuditWatchdogTest, BenignVirtualClockRunHasZeroFalsePositives) {
  const fs::path dir = fs::temp_directory_path() / "tarpit_wd_benign";
  fs::remove_all(dir);
  VirtualClock clock;
  obs::MetricRegistry registry;
  auto db = OpenAuditedDb(dir, &clock, &registry);
  ASSERT_NE(db, nullptr);

  obs::SelfAuditWatchdogOptions wopts;
  wopts.metrics = &registry;
  obs::SelfAuditWatchdog watchdog(wopts);
  SelfAuditTargets targets;
  targets.db = db.get();
  targets.metrics = &registry;
  ASSERT_GE(InstallStandardChecks(&watchdog, targets), 1u);

  // Interleave watchdog passes with workload chunks: every pass on a
  // benign engine must either pass or skip, never flag.
  for (int round = 0; round < 6; ++round) {
    RunUniformReads(db.get(), 500, 0xFACEu + round);
    clock.SleepForMicros(1'000'000);
    watchdog.RunOnce(clock.NowMicros());
  }
  EXPECT_EQ(watchdog.violations_total(), 0u);
  EXPECT_TRUE(watchdog.healthy());
  EXPECT_GT(watchdog.passes_total(), 0u);

  const obs::RegistrySnapshot snap = registry.Snapshot();
  const obs::MetricSnapshot* healthy =
      snap.Find("tarpit_watchdog_healthy");
  ASSERT_NE(healthy, nullptr);
  EXPECT_EQ(healthy->value, 1);

  db.reset();
  fs::remove_all(dir);
}

TEST(SelfAuditWatchdogTest, CatchesInjectedLedgerDriftInOnePass) {
  const fs::path dir = fs::temp_directory_path() / "tarpit_wd_drift";
  fs::remove_all(dir);
  VirtualClock clock;
  obs::MetricRegistry registry;
  auto db = OpenAuditedDb(dir, &clock, &registry);
  ASSERT_NE(db, nullptr);

  obs::DefenseEventRing ring;
  obs::SelfAuditWatchdogOptions wopts;
  wopts.metrics = &registry;
  wopts.events = &ring;
  obs::SelfAuditWatchdog watchdog(wopts);
  SelfAuditTargets targets;
  targets.db = db.get();
  targets.metrics = &registry;
  ASSERT_GE(InstallStandardChecks(&watchdog, targets), 1u);

  // Skim 1 permille off every RECORDED charge (callers still served
  // the full delay): the exact embezzlement the ledger-vs-histogram
  // check exists to catch. A fresh database means no clean prior
  // ledger dilutes the relative drift.
  FailPointSpec skim;
  skim.trigger = FailPointSpec::Trigger::kAlways;
  skim.arg = 1;
  FailPoints::Instance().Enable("concurrent_db.acct_skim", skim);
  RunUniformReads(db.get(), 3'000, 0xFEEDu);
  FailPoints::Instance().DisableAll();

  // Detection latency is ONE scrape interval: the first quiescent pass
  // after the skimmed workload must flag it.
  watchdog.RunOnce(clock.NowMicros());
  EXPECT_GE(watchdog.violations_total(), 1u);
  EXPECT_FALSE(watchdog.healthy());

  double drift = 0;
  for (const auto& cs : watchdog.Stats()) {
    if (cs.name == "ledger-vs-histogram") drift = cs.last.drift;
  }
  EXPECT_NEAR(drift, 1e-3, 3e-4);  // Measured == injected 0.1%.
  EXPECT_GE(ring.CountOfType(obs::DefenseEventType::kWatchdogViolation),
            1u);

  db.reset();
  fs::remove_all(dir);
}

// ---------------- Extraction-risk scoring ---------------------------

/// Serial defended stack on a virtual timeline with the risk scorer
/// wired through the gate, mirroring the attack-regression fixture.
struct RiskStack {
  fs::path dir;
  VirtualClock clock;
  obs::RiskScorer scorer;
  std::unique_ptr<ProtectedDatabase> pdb;
  std::unique_ptr<QueryGate> gate;

  explicit RiskStack(const std::string& name, int64_t n)
      : scorer([] {
          obs::RiskScorerOptions r;
          r.query_sample_every = 1;  // Exact: deterministic ranking.
          return r;
        }()) {
    dir = fs::temp_directory_path() / ("tarpit_risk_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    ProtectedDatabaseOptions opts;
    opts.popularity.scale = 1e9;  // Flat: everything costs the cap.
    opts.popularity.bounds = {0.0, 1.0};
    opts.defer_delay_sleep = true;
    auto pdb_or =
        ProtectedDatabase::Open(dir.string(), "items", &clock, opts);
    if (!pdb_or.ok()) return;
    pdb = std::move(*pdb_or);
    if (!pdb->ExecuteSql(
                "CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
             .ok()) {
      return;
    }
    for (int64_t key = 1; key <= n; ++key) {
      if (!pdb->BulkLoadRow({Value(key), Value(1.0)}).ok()) return;
    }
    QueryGateOptions gate_opts;
    gate_opts.registration_seconds_per_account = 0.0;
    gate_opts.registration_burst = 1e9;
    gate_opts.per_user_queries_per_second = 5.0;
    gate_opts.per_user_burst = 20.0;
    gate_opts.per_subnet_queries_per_second = 1e9;
    gate_opts.per_subnet_burst = 1e9;
    gate_opts.coverage_escalation = true;
    gate_opts.coverage.free_coverage = 0.01;
    gate_opts.coverage.max_coverage = 0.25;
    gate_opts.coverage.max_escalation = 20.0;
    gate_opts.risk = &scorer;
    gate = std::make_unique<QueryGate>(pdb.get(), gate_opts);
  }

  ~RiskStack() {
    gate.reset();
    pdb.reset();
    if (!dir.empty()) fs::remove_all(dir);
  }
};

TEST(RiskScoringTest, ZooExtractorOutranksEveryBenignUser) {
  constexpr int64_t kN = 120;
  RiskStack stack("zoo", kN);
  ASSERT_NE(stack.gate, nullptr);

  // Benign population: four users browsing a handful of head keys at a
  // polite pace -- narrow breadth, modest rate, no defense signals.
  std::vector<Identity> benign;
  for (int u = 0; u < 4; ++u) {
    auto id = stack.gate->RegisterUser(0xC0A80001u + (u << 8));
    ASSERT_TRUE(id.ok());
    benign.push_back(*id);
  }
  Rng rng(0xB16B00B5u);
  for (int i = 0; i < 60; ++i) {
    for (const Identity& id : benign) {
      const int64_t key = 1 + static_cast<int64_t>(rng.Uniform(5));
      ASSERT_TRUE(stack.gate
                      ->ExecuteSql(id, "SELECT v FROM items WHERE id = " +
                                           std::to_string(key))
                      .ok());
    }
    stack.clock.SleepForMicros(500'000);  // 2 qps per user.
  }

  // The patient slow-low extractor from the zoo sweeps [1, kN].
  SlowLowConfig attack;
  attack.n = kN;
  const SlowLowReport report =
      RunSlowLowExtraction(stack.gate.get(), &stack.clock, attack);
  ASSERT_TRUE(report.completed);

  const double now =
      static_cast<double>(stack.clock.NowMicros()) / 1e6;
  const std::vector<obs::RiskScore> top = stack.scorer.TopN(1, now);
  ASSERT_EQ(top.size(), 1u);
  for (const Identity& id : benign) {
    EXPECT_NE(top[0].principal, id.id);
    EXPECT_GT(top[0].score, stack.scorer.Score(id.id, now))
        << "benign user " << id.id << " outranked the extractor";
  }
  // Breadth is what separates them: the extractor swept the relation.
  EXPECT_GT(top[0].breadth, 0.5 * static_cast<double>(kN));
}

// ---------------- Trace export --------------------------------------

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(TraceExportTest, SpanCountMatchesRetainedUnion) {
  const fs::path dir = fs::temp_directory_path() / "tarpit_trace_test";
  fs::remove_all(dir);
  VirtualClock clock;
  obs::MetricRegistry registry;
  obs::TraceSinkOptions sopts;
  sopts.sample_every = 1;  // Trace everything.
  sopts.recent_sample_every = 1;
  obs::TraceSink sink(sopts);

  fs::create_directories(dir);
  ProtectedDatabaseOptions opts;
  opts.mode = DelayMode::kAccessPopularity;
  opts.popularity.beta = 0.0;
  opts.popularity.scale = 1e-3;
  opts.popularity.bounds = {0.0, 10.0};
  ConcurrentDatabaseOptions copts;
  copts.mode = ConcurrencyMode::kSharded;
  copts.serve_delays = false;
  copts.metrics = &registry;
  copts.trace_sink = &sink;
  auto opened = ConcurrentProtectedDatabase::Open(dir.string(), "items",
                                                  &clock, opts, copts);
  ASSERT_TRUE(opened.ok());
  auto db = std::move(*opened);
  ASSERT_TRUE(
      db->ExecuteSql("CREATE TABLE items (id INT PRIMARY KEY, v DOUBLE)")
          .ok());
  for (int i = 1; i <= 64; ++i) {
    ASSERT_TRUE(
        db->BulkLoadRow({Value(static_cast<int64_t>(i)), Value(0.5)})
            .ok());
  }
  Rng rng(0xBEADu);
  UniformKeyGenerator gen(64);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(db->GetByKey(gen.Next(&rng)).ok());
  }
  db.reset();  // Quiesce before exporting.

  obs::ChromeTraceOptions topts;
  topts.registry = &registry;
  const obs::ChromeTrace trace = obs::ExportChromeTrace(sink, topts);

  std::set<uint64_t> retained;
  for (const obs::RequestTrace& t : sink.Slowest()) {
    retained.insert(t.request_id);
  }
  for (const obs::RequestTrace& t : sink.Recent()) {
    retained.insert(t.request_id);
  }
  EXPECT_GT(trace.request_spans, 0u);
  EXPECT_EQ(trace.request_spans, retained.size());
  EXPECT_EQ(CountOccurrences(trace.json, "\"ph\":\"X\""),
            trace.request_spans + trace.phase_spans);
  EXPECT_EQ(trace.json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(trace.json.back(), '}');

  fs::remove_all(dir);
}

// ---------------- Bounded AuditLog ----------------------------------

TEST(AuditLogTest, BoundedMemoryCountsDropsAndRoutesToRing) {
  VirtualClock clock;
  obs::MetricRegistry registry;
  obs::DefenseEventRing ring;
  AuditLog log(&clock, /*capacity=*/4);
  log.BindMetrics(&registry);
  log.set_event_ring(&ring);

  for (int i = 0; i < 10; ++i) {
    clock.SleepForMicros(1'000'000);
    AuditRecord record;
    record.event = AuditEvent::kRateLimitedUser;
    record.identity = static_cast<IdentityId>(i + 1);
    record.magnitude = 1.0;
    log.Record(record);
  }

  // The log is bounded: only the newest 4 survive, evictions counted.
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.dropped_total(), 6u);
  EXPECT_EQ(log.CountOf(AuditEvent::kRateLimitedUser), 4u);

  const obs::RegistrySnapshot snap = registry.Snapshot();
  const obs::MetricSnapshot* dropped =
      snap.Find("tarpit_audit_dropped_total");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value, 6);

  // Oldest retained record is the 7th recorded.
  IdentityId first = 0;
  log.ForEach([&](const AuditRecord& r) {
    if (first == 0) first = r.identity;
    return true;
  });
  EXPECT_EQ(first, 7u);

  // The ring's window is independent: everything the log evicted
  // survives there in binary form, stamped on the virtual timeline.
  EXPECT_EQ(
      ring.CountOfType(obs::DefenseEventType::kRateLimitedUser), 10u);
  const std::vector<obs::DefenseEvent> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 10u);
  EXPECT_EQ(events.front().principal, 1u);
  EXPECT_EQ(events.front().time_micros, 1'000'000);
  EXPECT_EQ(events.back().principal, 10u);
}

}  // namespace
}  // namespace tarpit
