#ifndef TARPIT_SIM_DYNAMIC_SIMULATION_H_
#define TARPIT_SIM_DYNAMIC_SIMULATION_H_

#include <cstdint>

#include "core/update_delay.h"

namespace tarpit {

/// Configuration of the dynamic-data simulation behind paper Figures
/// 4-6: uniform queries against a relation receiving Zipf-distributed
/// updates, with delays assigned by update rate.
struct DynamicSimConfig {
  uint64_t n = 100'000;
  /// Zipf parameter of the update distribution (the x-axis of the
  /// figures).
  double update_alpha = 1.0;
  /// Aggregate update throughput (updates/second across all tuples).
  double updates_per_second = 100.0;
  /// Learning phase length.
  uint64_t warmup_updates = 1'000'000;
  /// Number of legitimate (uniform) queries measured for median delay.
  uint64_t measured_queries = 10'000;
  UpdateDelayParams delay;
  uint64_t seed = 42;
};

struct DynamicSimResult {
  double median_user_delay_seconds = 0;
  double adversary_delay_seconds = 0;
  /// Deterministic staleness (paper Eq. 10 criterion with the true
  /// update rates).
  double stale_fraction = 0;
  /// Poisson-model expected staleness (accounting for when each tuple
  /// was retrieved during the extraction).
  double expected_stale_fraction = 0;
};

/// Runs one point of the Figures 4-6 sweep.
DynamicSimResult RunDynamicSimulation(const DynamicSimConfig& config);

}  // namespace tarpit

#endif  // TARPIT_SIM_DYNAMIC_SIMULATION_H_
