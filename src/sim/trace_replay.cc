#include "sim/trace_replay.h"

namespace tarpit {

Result<TraceReplayReport> ReplayTrace(
    ProtectedDatabase* db, const std::string& table_name,
    const std::vector<TraceRequest>& trace,
    VirtualClock* clock_to_advance) {
  TraceReplayReport report;
  Result<Table*> table = db->raw_database()->GetTable(table_name);
  TARPIT_RETURN_IF_ERROR(table.status());
  const std::string pk_name =
      (*table)->schema().column((*table)->pk_column()).name;
  const std::string prefix =
      "SELECT * FROM " + table_name + " WHERE " + pk_name + " = ";

  for (const TraceRequest& request : trace) {
    if (clock_to_advance != nullptr) {
      clock_to_advance->AdvanceToMicros(
          static_cast<int64_t>(request.time_seconds * 1e6));
    }
    Result<ProtectedResult> r =
        db->ExecuteSql(prefix + std::to_string(request.key));
    TARPIT_RETURN_IF_ERROR(r.status());
    ++report.requests;
    if (r->result.rows.empty()) ++report.not_found;
    report.total_delay_seconds += r->delay_seconds;
    report.per_request_delays.Add(r->delay_seconds);
  }
  return report;
}

}  // namespace tarpit
