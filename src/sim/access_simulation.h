#ifndef TARPIT_SIM_ACCESS_SIMULATION_H_
#define TARPIT_SIM_ACCESS_SIMULATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/stats.h"
#include "core/delay_engine.h"
#include "core/popularity_delay.h"
#include "stats/count_tracker.h"

namespace tarpit {

/// Lightweight harness for the access-popularity scheme: a virtual
/// clock, a count tracker, the learned delay policy, and a delay
/// engine, with no storage underneath. This is how the paper's own
/// evaluation works -- delays are accounted analytically from learned
/// counts; only the overhead experiment (Table 5) touches a real
/// database.
class AccessDelaySimulation {
 public:
  AccessDelaySimulation(uint64_t universe_size, double decay_per_request,
                        PopularityDelayParams params);

  /// Serves one legitimate request: records the access (learning), then
  /// charges the delay. Returns seconds charged.
  double ServeRequest(int64_t key);

  /// Replays a request stream, collecting per-request delays into
  /// `sketch` (optional).
  void ServeTrace(const std::vector<int64_t>& keys,
                  QuantileSketch* sketch);

  /// Applies an out-of-band decay (e.g., weekly boundary).
  void ApplyDecayFactor(double factor) {
    tracker_->ApplyDecayFactor(factor);
  }

  /// Total delay an adversary would face extracting keys 1..N with the
  /// learned counts *frozen* (the paper's measurement: "we computed the
  /// delay that would be imposed on an adversary ... by examining the
  /// access counts after the trace was replayed").
  double ExtractionDelayFrozen() const;

  /// Per-key frozen delays (for staleness/completion-time analysis).
  std::vector<double> FrozenDelays() const;

  /// Extraction where the adversary's own queries feed the tracker
  /// (each key's count rises as it is stolen). Mutates learned state.
  double ExtractionDelayLive();

  CountTracker* tracker() { return tracker_.get(); }
  const PopularityDelayPolicy* policy() const { return policy_.get(); }
  DelayEngine* engine() { return engine_.get(); }
  VirtualClock* clock() { return &clock_; }
  uint64_t universe_size() const { return tracker_->universe_size(); }

 private:
  VirtualClock clock_;
  std::unique_ptr<CountTracker> tracker_;
  std::unique_ptr<PopularityDelayPolicy> policy_;
  std::unique_ptr<DelayEngine> engine_;
};

}  // namespace tarpit

#endif  // TARPIT_SIM_ACCESS_SIMULATION_H_
