#include "sim/dynamic_simulation.h"

#include <cmath>
#include <vector>

#include "analysis/staleness.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/zipf.h"
#include "sim/adversary.h"
#include "stats/update_tracker.h"

namespace tarpit {

DynamicSimResult RunDynamicSimulation(const DynamicSimConfig& config) {
  DynamicSimResult result;

  // Learning phase: the tracker observes warmup_updates update events
  // drawn Zipf(update_alpha); they span warmup/updates_per_second
  // seconds of (virtual) time.
  UpdateTracker tracker(config.n, 1.0);
  ZipfDistribution zipf(config.n, config.update_alpha);
  Rng rng(config.seed);
  for (uint64_t i = 0; i < config.warmup_updates; ++i) {
    tracker.Record(static_cast<int64_t>(zipf.Sample(&rng)));
  }
  const double window = static_cast<double>(config.warmup_updates) /
                        config.updates_per_second;

  UpdateDelayParams params = config.delay;
  params.n = config.n;
  params.rate_window_seconds = window;
  UpdateDelayPolicy policy(&tracker, params);

  // Median legitimate-user delay under uniform queries.
  QuantileSketch user_delays;
  for (uint64_t i = 0; i < config.measured_queries; ++i) {
    const int64_t key =
        static_cast<int64_t>(rng.Uniform(config.n)) + 1;
    user_delays.Add(policy.DelayFor(key));
  }
  result.median_user_delay_seconds = user_delays.Median();

  // Adversary: full extraction with learned (frozen) delays.
  ExtractionReport extraction = RunSequentialExtraction(policy, config.n);
  result.adversary_delay_seconds = extraction.total_delay_seconds;

  // Staleness against the *true* update rates r_i = R * pmf(i).
  std::vector<double> rates(config.n);
  for (uint64_t i = 1; i <= config.n; ++i) {
    rates[i - 1] = config.updates_per_second * zipf.Pmf(i);
  }
  result.stale_fraction = DeterministicStaleFraction(
      rates, extraction.total_delay_seconds);
  result.expected_stale_fraction = ExpectedStaleFractionPoisson(
      rates, extraction.completion_times,
      extraction.total_delay_seconds);
  return result;
}

}  // namespace tarpit
