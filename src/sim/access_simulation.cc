#include "sim/access_simulation.h"

namespace tarpit {

AccessDelaySimulation::AccessDelaySimulation(
    uint64_t universe_size, double decay_per_request,
    PopularityDelayParams params) {
  tracker_ = std::make_unique<CountTracker>(universe_size,
                                            decay_per_request);
  policy_ =
      std::make_unique<PopularityDelayPolicy>(tracker_.get(), params);
  engine_ = std::make_unique<DelayEngine>(&clock_, policy_.get());
}

double AccessDelaySimulation::ServeRequest(int64_t key) {
  tracker_->Record(key);
  return engine_->Charge(key);
}

void AccessDelaySimulation::ServeTrace(const std::vector<int64_t>& keys,
                                       QuantileSketch* sketch) {
  for (int64_t key : keys) {
    const double d = ServeRequest(key);
    if (sketch != nullptr) sketch->Add(d);
  }
}

double AccessDelaySimulation::ExtractionDelayFrozen() const {
  double total = 0.0;
  const uint64_t n = tracker_->universe_size();
  for (uint64_t key = 1; key <= n; ++key) {
    total += policy_->DelayFor(static_cast<int64_t>(key));
  }
  return total;
}

std::vector<double> AccessDelaySimulation::FrozenDelays() const {
  const uint64_t n = tracker_->universe_size();
  std::vector<double> delays;
  delays.reserve(n);
  for (uint64_t key = 1; key <= n; ++key) {
    delays.push_back(policy_->DelayFor(static_cast<int64_t>(key)));
  }
  return delays;
}

double AccessDelaySimulation::ExtractionDelayLive() {
  double total = 0.0;
  const uint64_t n = tracker_->universe_size();
  for (uint64_t key = 1; key <= n; ++key) {
    total += ServeRequest(static_cast<int64_t>(key));
  }
  return total;
}

}  // namespace tarpit
