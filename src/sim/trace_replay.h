#ifndef TARPIT_SIM_TRACE_REPLAY_H_
#define TARPIT_SIM_TRACE_REPLAY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/status.h"
#include "core/protected_db.h"
#include "workload/calgary_trace.h"

namespace tarpit {

/// Outcome of replaying a trace end-to-end through the SQL front door.
struct TraceReplayReport {
  uint64_t requests = 0;
  uint64_t not_found = 0;
  double total_delay_seconds = 0;
  QuantileSketch per_request_delays;
};

/// Replays a timestamped request trace against a ProtectedDatabase:
/// each TraceRequest becomes `SELECT * FROM <table> WHERE <pk> = key`
/// through the full parse/plan/execute/learn/charge pipeline. When the
/// database runs on a VirtualClock, the clock is advanced to each
/// request's trace timestamp before executing it (so inter-arrival
/// time and charged delay both flow through one timeline).
Result<TraceReplayReport> ReplayTrace(
    ProtectedDatabase* db, const std::string& table_name,
    const std::vector<TraceRequest>& trace,
    VirtualClock* clock_to_advance = nullptr);

}  // namespace tarpit

#endif  // TARPIT_SIM_TRACE_REPLAY_H_
