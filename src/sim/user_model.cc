#include "sim/user_model.h"

#include <queue>
#include <utility>
#include <vector>

#include "common/zipf.h"

namespace tarpit {

UserPopulationReport RunUserPopulation(
    CountTracker* tracker, const DelayPolicy& policy,
    const UserPopulationConfig& config) {
  UserPopulationReport report;
  Rng rng(config.seed);
  ZipfDistribution zipf(tracker->universe_size(), config.zipf_alpha);

  // Min-heap of (next wake time, user id).
  using Event = std::pair<double, uint64_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  for (uint64_t u = 0; u < config.num_users; ++u) {
    queue.emplace(rng.Exponential(1.0 / config.think_time_mean_seconds),
                  u);
  }

  QuantileSketch delays;
  uint64_t intolerable = 0;
  double now = 0;
  while (report.requests < config.total_requests && !queue.empty()) {
    auto [wake, user] = queue.top();
    queue.pop();
    now = wake;
    const int64_t key = static_cast<int64_t>(zipf.Sample(&rng));
    tracker->Record(key);
    const double d = policy.DelayFor(key);
    delays.Add(d);
    if (d > config.tolerance_seconds) ++intolerable;
    ++report.requests;
    queue.emplace(
        now + d +
            rng.Exponential(1.0 / config.think_time_mean_seconds),
        user);
  }
  report.median_delay_seconds = delays.Median();
  report.p99_delay_seconds = delays.Quantile(0.99);
  report.intolerable_fraction =
      report.requests == 0
          ? 0
          : static_cast<double>(intolerable) /
                static_cast<double>(report.requests);
  report.duration_seconds = now;
  return report;
}

}  // namespace tarpit
