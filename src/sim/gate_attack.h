#ifndef TARPIT_SIM_GATE_ATTACK_H_
#define TARPIT_SIM_GATE_ATTACK_H_

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "defense/query_gate.h"

namespace tarpit {

/// Configuration of a determined extraction attack mounted through the
/// full defense perimeter (QueryGate) on a virtual timeline.
struct GateAttackConfig {
  /// Keys [1, n] to extract.
  uint64_t n = 0;
  /// SQL table being extracted.
  std::string table = "items";
  /// Name of the PK column in SQL.
  std::string pk_column = "id";
  /// How many identities the adversary tries to operate; registrations
  /// beyond the gate's quota cost waiting time.
  uint64_t identities = 1;
  /// Base IP; sybil i gets base+i (same /24 unless spread_subnets).
  uint32_t base_ipv4 = 0x0A000001;  // 10.0.0.1.
  /// Put each sybil in its own /24 (a stronger adversary who controls
  /// many network positions).
  bool spread_subnets = false;
  /// Give up if the attack exceeds this much virtual time.
  double give_up_after_seconds = 1e9;
  /// Extract each identity's partition in a seed-determined random
  /// order instead of descending key order. Same seed -> bit-identical
  /// replay (no hidden entropy anywhere in sim).
  bool shuffle_keys = false;
  uint64_t seed = 7;
};

struct GateAttackReport {
  /// Virtual seconds from attack start to full extraction.
  double attack_seconds = 0;
  uint64_t tuples_obtained = 0;
  uint64_t queries_issued = 0;
  uint64_t rate_limited = 0;
  uint64_t identities_used = 0;
  bool completed = false;
};

/// Runs the attack: registers identities (waiting out the registration
/// limiter as needed), then extracts keys round-robin across them,
/// advancing the virtual clock through every rate-limit backoff and
/// served delay. Requires the gate's database to run on `clock`.
GateAttackReport RunGateExtraction(QueryGate* gate, VirtualClock* clock,
                                   const GateAttackConfig& config);

}  // namespace tarpit

#endif  // TARPIT_SIM_GATE_ATTACK_H_
