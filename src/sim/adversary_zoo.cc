#include "sim/adversary_zoo.h"

#include <algorithm>
#include <limits>

#include "common/random.h"

namespace tarpit {

namespace {

/// Advances `clock` to `target_seconds` (no-op if already past).
void AdvanceTo(VirtualClock* clock, double target_seconds) {
  clock->AdvanceToMicros(static_cast<int64_t>(target_seconds * 1e6));
}

/// Registers one identity from `ipv4`, waiting out the registration
/// limiter on the shared timeline. Returns nullopt-like invalid
/// Identity (id 0) on deadline.
bool RegisterWaiting(QueryGate* gate, VirtualClock* clock, uint32_t ipv4,
                     double deadline, Identity* out) {
  while (clock->NowSeconds() < deadline) {
    Result<Identity> id = gate->RegisterUser(ipv4);
    if (id.ok()) {
      *out = *id;
      return true;
    }
    const double wait =
        gate->registration_limiter()->RetryAfter(clock->NowSeconds());
    clock->SleepForMicros(
        static_cast<int64_t>(std::max(wait, 1e-3) * 1e6));
  }
  return false;
}

}  // namespace

// --- Slow-and-low. --------------------------------------------------

SlowLowReport RunSlowLowExtraction(QueryGate* gate, VirtualClock* clock,
                                   const SlowLowConfig& config) {
  SlowLowReport report;
  Rng rng(config.seed);
  const double start = clock->NowSeconds();
  const double deadline = start + config.give_up_after_seconds;

  Identity identity;
  if (!RegisterWaiting(gate, clock, config.ipv4, deadline, &identity)) {
    report.attack_seconds = clock->NowSeconds() - start;
    return report;
  }

  // Pace at a fixed fraction of the gate's sustained per-user rate:
  // the bucket refills faster than it drains, so the throttle never
  // fires and the only cost left is the per-tuple delay itself.
  const double rate = gate->options().per_user_queries_per_second *
                      std::clamp(config.rate_headroom, 1e-3, 1.0);
  const double gap = rate > 0 ? 1.0 / rate : 1.0;

  const std::string prefix = "SELECT * FROM " + config.table +
                             " WHERE " + config.pk_column + " = ";
  double next_issue = clock->NowSeconds();
  double busy_until = clock->NowSeconds();
  for (uint64_t key = 1; key <= config.n;) {
    // Issue no sooner than the pacing schedule allows AND no sooner
    // than the previous stall ends (one patient connection).
    const double jitter =
        1.0 + config.pacing_jitter * (2.0 * rng.NextDouble() - 1.0);
    const double at = std::max(next_issue, busy_until);
    if (at >= deadline) break;
    AdvanceTo(clock, at);
    const double now = clock->NowSeconds();

    Result<ProtectedResult> r =
        gate->ExecuteSql(identity, prefix + std::to_string(key));
    ++report.queries_issued;
    if (r.ok()) {
      ++report.tuples_obtained;
      report.total_delay_seconds += r->delay_seconds;
      busy_until = now + r->delay_seconds;
      next_issue = now + gap * jitter;
      ++key;
      continue;
    }
    if (r.status().IsRateLimited()) {
      // Should not happen at headroom < 1; pace down and retry.
      ++report.rate_limited;
      next_issue =
          now + std::max(gate->RetryAfter(identity), gap * jitter);
      continue;
    }
    break;  // Lifetime cap or hard failure: one identity, game over.
  }
  AdvanceTo(clock, busy_until);
  report.attack_seconds = clock->NowSeconds() - start;
  report.completed = report.tuples_obtained == config.n;
  return report;
}

// --- Sybil churn. ---------------------------------------------------

SybilChurnReport RunSybilChurnExtraction(QueryGate* gate,
                                         VirtualClock* clock,
                                         const SybilChurnConfig& config) {
  SybilChurnReport report;
  Rng rng(config.seed);
  const double start = clock->NowSeconds();
  const double deadline = start + config.give_up_after_seconds;
  const uint64_t fleet = std::max<uint64_t>(1, config.fleet_size);
  const uint64_t pool = std::max<uint64_t>(1, config.subnet_pool);
  const uint64_t per_id = std::max<uint64_t>(1, config.queries_per_identity);

  uint64_t next_subnet = 0;
  auto fresh_ip = [&]() {
    // Round-robin across the /24 pool; random host octet so churned
    // identities do not reuse an address.
    const uint32_t subnet =
        (config.base_ipv4 & 0xFFFFFF00u) +
        static_cast<uint32_t>((next_subnet++ % pool) << 8);
    return subnet | static_cast<uint32_t>(1 + rng.Uniform(254));
  };

  struct Worker {
    Identity identity;
    double next_free = 0;
    uint64_t used = 0;
    bool needs_rebirth = false;
  };
  std::vector<Worker> workers;

  // Initial fleet, waiting out the registration limiter serially.
  for (uint64_t i = 0; i < fleet; ++i) {
    Identity id;
    if (!RegisterWaiting(gate, clock, fresh_ip(), deadline, &id)) break;
    ++report.identities_registered;
    workers.push_back(Worker{id, clock->NowSeconds(), 0, false});
  }
  if (workers.empty()) {
    report.attack_seconds = clock->NowSeconds() - start;
    return report;
  }

  // Shared work stack: keys in descending order so pop_back ascends.
  std::vector<int64_t> pending;
  pending.reserve(config.n);
  for (uint64_t key = config.n; key >= 1; --key) {
    pending.push_back(static_cast<int64_t>(key));
  }

  const std::string prefix = "SELECT * FROM " + config.table +
                             " WHERE " + config.pk_column + " = ";
  double completion = clock->NowSeconds();
  while (!pending.empty()) {
    Worker* next = nullptr;
    for (Worker& w : workers) {
      if (next == nullptr || w.next_free < next->next_free) next = &w;
    }
    if (next == nullptr || next->next_free >= deadline) break;
    AdvanceTo(clock, next->next_free);
    const double now = clock->NowSeconds();

    if (next->needs_rebirth || next->used >= per_id) {
      // Churn: abandon the identity (with any penalty it accrued) and
      // register a replacement in the next subnet of the pool.
      next->needs_rebirth = true;
      Result<Identity> id = gate->RegisterUser(fresh_ip());
      if (id.ok()) {
        next->identity = *id;
        next->used = 0;
        next->needs_rebirth = false;
        ++report.identities_registered;
      } else {
        next->next_free =
            now + std::max(gate->registration_limiter()->RetryAfter(now),
                           1e-3);
      }
      continue;
    }

    const int64_t key = pending.back();
    Result<ProtectedResult> r =
        gate->ExecuteSql(next->identity, prefix + std::to_string(key));
    ++report.queries_issued;
    ++next->used;
    if (r.ok()) {
      pending.pop_back();
      ++report.tuples_obtained;
      report.total_delay_seconds += r->delay_seconds;
      next->next_free = now + r->delay_seconds;
      completion = std::max(completion, next->next_free);
      continue;
    }
    if (r.status().IsRateLimited()) {
      ++report.rate_limited;
      next->next_free =
          now + std::max(gate->RetryAfter(next->identity), 1e-3);
      continue;
    }
    // Lifetime cap: churn immediately.
    next->needs_rebirth = true;
  }
  AdvanceTo(clock, completion);
  report.attack_seconds = clock->NowSeconds() - start;
  report.completed = report.tuples_obtained == config.n;
  return report;
}

// --- Volume inference. ----------------------------------------------

VolumeInferenceReport RunVolumeInference(
    QueryGate* gate, VirtualClock* clock,
    const VolumeInferenceConfig& config) {
  VolumeInferenceReport report;
  Rng rng(config.seed);
  const double start = clock->NowSeconds();
  const double deadline = start + config.give_up_after_seconds;

  Identity identity;
  if (!RegisterWaiting(gate, clock, config.ipv4, deadline, &identity)) {
    report.attack_seconds = clock->NowSeconds() - start;
    return report;
  }

  struct Range {
    int64_t lo, hi;
  };
  std::vector<Range> frontier;
  if (config.domain_max >= 1) frontier.push_back({1, config.domain_max});

  double busy_until = clock->NowSeconds();
  bool gave_up = false;
  while (!frontier.empty()) {
    if (busy_until >= deadline) {
      gave_up = true;
      break;
    }
    AdvanceTo(clock, busy_until);
    const double now = clock->NowSeconds();
    const Range range = frontier.back();

    const std::string sql =
        "SELECT COUNT(*) FROM " + config.table + " WHERE " +
        config.pk_column + " >= " + std::to_string(range.lo) + " AND " +
        config.pk_column + " <= " + std::to_string(range.hi);
    Result<ProtectedResult> r = gate->ExecuteSql(identity, sql);
    ++report.queries_issued;
    if (!r.ok()) {
      if (r.status().IsRateLimited()) {
        ++report.rate_limited;
        busy_until = now + std::max(gate->RetryAfter(identity), 1e-3);
        continue;
      }
      gave_up = true;  // Lifetime cap: reconstruction incomplete.
      break;
    }
    frontier.pop_back();
    report.total_delay_seconds += r->delay_seconds;
    busy_until = now + r->delay_seconds;

    const int64_t span = range.hi - range.lo + 1;
    const int64_t count = (!r->result.rows.empty() &&
                           !r->result.rows[0].empty() &&
                           r->result.rows[0][0].is_int())
                              ? r->result.rows[0][0].AsInt()
                              : 0;
    if (count == 0) continue;  // Empty: pruned.
    if (count == span) {       // Dense: resolved wholesale.
      report.present_ranges.emplace_back(range.lo, range.hi);
      continue;
    }
    // Mixed: split. Seed decides which half the adversary explores
    // first (the reconstruction is exact either way).
    const int64_t mid = range.lo + (range.hi - range.lo) / 2;
    const Range left{range.lo, mid};
    const Range right{mid + 1, range.hi};
    if (rng.Bernoulli(0.5)) {
      frontier.push_back(left);
      frontier.push_back(right);
    } else {
      frontier.push_back(right);
      frontier.push_back(left);
    }
  }
  AdvanceTo(clock, busy_until);

  // Canonical form: sorted, adjacent ranges merged.
  std::sort(report.present_ranges.begin(), report.present_ranges.end());
  std::vector<std::pair<int64_t, int64_t>> merged;
  for (const auto& range : report.present_ranges) {
    if (!merged.empty() && range.first == merged.back().second + 1) {
      merged.back().second = range.second;
    } else {
      merged.push_back(range);
    }
  }
  report.present_ranges = std::move(merged);
  for (const auto& [lo, hi] : report.present_ranges) {
    report.keys_identified += static_cast<uint64_t>(hi - lo + 1);
  }
  report.attack_seconds = clock->NowSeconds() - start;
  report.completed = !gave_up;
  return report;
}

}  // namespace tarpit
