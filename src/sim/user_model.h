#ifndef TARPIT_SIM_USER_MODEL_H_
#define TARPIT_SIM_USER_MODEL_H_

#include <cstdint>

#include "common/random.h"
#include "common/stats.h"
#include "core/delay_policy.h"
#include "stats/count_tracker.h"

namespace tarpit {

/// A closed-loop population of legitimate users: each user thinks for
/// an exponential interval, issues one Zipf-distributed request, waits
/// out its delay, and repeats. Captures what the paper's per-request
/// replay cannot: how served delays feed back into user pacing, and
/// what fraction of requests exceed a human tolerance threshold
/// (Bhatti et al., cited by the paper for tolerable wait times).
struct UserPopulationConfig {
  uint64_t num_users = 100;
  /// Mean think time between a user's requests (exponential).
  double think_time_mean_seconds = 30.0;
  /// Shared popularity preference across the population.
  double zipf_alpha = 1.2;
  /// Delay above which a request counts as "intolerable".
  double tolerance_seconds = 1.0;
  uint64_t total_requests = 100'000;
  uint64_t seed = 99;
};

struct UserPopulationReport {
  uint64_t requests = 0;
  double median_delay_seconds = 0;
  double p99_delay_seconds = 0;
  /// Fraction of requests delayed beyond the tolerance threshold.
  double intolerable_fraction = 0;
  /// Virtual time the population took to issue all requests.
  double duration_seconds = 0;
};

/// Runs the population against a tracker + policy pair: every request
/// records its access (learning) and is charged policy delay on the
/// issuing user's own timeline. The tracker's universe_size defines the
/// keyspace.
UserPopulationReport RunUserPopulation(CountTracker* tracker,
                                       const DelayPolicy& policy,
                                       const UserPopulationConfig& config);

}  // namespace tarpit

#endif  // TARPIT_SIM_USER_MODEL_H_
