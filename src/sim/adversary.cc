#include "sim/adversary.h"

#include <algorithm>

namespace tarpit {

ExtractionReport RunSequentialExtraction(const DelayPolicy& policy,
                                         uint64_t n) {
  ExtractionReport report;
  report.completion_times.reserve(n);
  double t = 0.0;
  for (uint64_t key = 1; key <= n; ++key) {
    t += policy.DelayFor(static_cast<int64_t>(key));
    report.completion_times.push_back(t);
  }
  report.total_delay_seconds = t;
  return report;
}

ParallelExtractionReport RunParallelExtraction(
    const DelayPolicy& policy, uint64_t n, uint64_t identities,
    double registration_seconds_per_account) {
  ParallelExtractionReport report;
  report.identities = std::max<uint64_t>(1, identities);
  report.registration_seconds =
      report.identities <= 1
          ? 0.0
          : static_cast<double>(report.identities - 1) *
                registration_seconds_per_account;
  std::vector<double> partition(report.identities, 0.0);
  for (uint64_t key = 1; key <= n; ++key) {
    partition[(key - 1) % report.identities] +=
        policy.DelayFor(static_cast<int64_t>(key));
  }
  report.max_partition_delay_seconds =
      *std::max_element(partition.begin(), partition.end());
  report.total_attack_seconds =
      report.registration_seconds + report.max_partition_delay_seconds;
  return report;
}

StorefrontReport AnalyzeStorefront(
    uint64_t n, uint64_t per_user_lifetime_limit,
    double registration_seconds_per_account) {
  StorefrontReport report;
  if (per_user_lifetime_limit == 0) {
    report.identities_needed = 1;
    report.registration_seconds = 0;
    return report;
  }
  report.identities_needed =
      (n + per_user_lifetime_limit - 1) / per_user_lifetime_limit;
  report.registration_seconds =
      report.identities_needed <= 1
          ? 0.0
          : static_cast<double>(report.identities_needed - 1) *
                registration_seconds_per_account;
  return report;
}

}  // namespace tarpit
