#ifndef TARPIT_SIM_ADVERSARY_ZOO_H_
#define TARPIT_SIM_ADVERSARY_ZOO_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "defense/query_gate.h"

namespace tarpit {

/// Three extraction strategies beyond the brute-force sybil sweep in
/// gate_attack.h, each engineered to slip past a DIFFERENT layer of
/// the defense stack. All run through the full QueryGate perimeter on
/// a VirtualClock with an explicit seed: same seed, same gate config
/// -> bit-identical replay (the attack-regression suite depends on
/// this; no hidden entropy anywhere in sim).
///
///   slow-and-low       beats token buckets   (paces under the rate)
///   sybil churn        beats identity state  (sheds penalized ids)
///   volume inference   beats per-tuple delay (reads counts, not rows)

// --- Slow-and-low extractor. ---------------------------------------

/// One patient identity pacing itself UNDER the per-user token-bucket
/// rate, so the throttle never fires and per-tuple popularity delays
/// are the only per-query cost. Defeated by breadth: coverage still
/// accumulates, so the coverage monitor and the reputation store see
/// it anyway.
struct SlowLowConfig {
  /// Keys [1, n] to extract.
  uint64_t n = 0;
  std::string table = "items";
  std::string pk_column = "id";
  uint32_t ipv4 = 0x0A000001;  // 10.0.0.1.
  /// Fraction of the gate's sustained per-user rate to consume; < 1
  /// keeps the bucket's steady state positive so no denial ever fires.
  double rate_headroom = 0.8;
  /// +/- uniform jitter applied to each pacing gap (fraction of the
  /// gap), so the stream does not look metronomic.
  double pacing_jitter = 0.1;
  double give_up_after_seconds = 1e9;
  uint64_t seed = 1001;
};

struct SlowLowReport {
  double attack_seconds = 0;
  uint64_t tuples_obtained = 0;
  uint64_t queries_issued = 0;
  uint64_t rate_limited = 0;
  /// Sum of charged delays over served queries (for the serial oracle
  /// in the regression suite).
  double total_delay_seconds = 0;
  bool completed = false;
};

SlowLowReport RunSlowLowExtraction(QueryGate* gate, VirtualClock* clock,
                                   const SlowLowConfig& config);

// --- Sybil fleet with identity churn. ------------------------------

/// A fleet that retires each identity after a fixed number of queries
/// and registers a replacement, rotating its IPs across a pool of /24
/// subnets -- shedding any per-identity penalty the defense has
/// accrued. Per-identity reputation resets with each churn; the
/// per-subnet penalty (and the subnet-aggregate token bucket) is what
/// the fleet cannot shed, which is exactly the reputation store's
/// counter-design.
struct SybilChurnConfig {
  uint64_t n = 0;
  std::string table = "items";
  std::string pk_column = "id";
  /// Concurrently active identities.
  uint64_t fleet_size = 4;
  /// Queries an identity issues before it is abandoned and replaced.
  uint64_t queries_per_identity = 50;
  /// Base IP of the first /24; subnet i is base + i * 256. Fresh
  /// identities rotate round-robin across the pool (seed-jittered
  /// host octet).
  uint32_t base_ipv4 = 0x0A000001;
  uint64_t subnet_pool = 8;
  double give_up_after_seconds = 1e9;
  uint64_t seed = 2002;
};

struct SybilChurnReport {
  double attack_seconds = 0;
  uint64_t tuples_obtained = 0;
  uint64_t queries_issued = 0;
  uint64_t rate_limited = 0;
  /// Total identities registered across all churn generations.
  uint64_t identities_registered = 0;
  double total_delay_seconds = 0;
  bool completed = false;
};

SybilChurnReport RunSybilChurnExtraction(QueryGate* gate,
                                         VirtualClock* clock,
                                         const SybilChurnConfig& config);

// --- Volume-inference reconstructor. -------------------------------

/// Learns which keys EXIST from result-set volumes alone: recursive
/// binary splitting of [1, domain_max] with COUNT(*) range queries
/// (modeled on the SQLite volume-reconstruction attack, Shahverdi et
/// al.). An empty range is pruned; a full range is resolved wholesale;
/// anything else splits. Never fetches a tuple, so per-tuple delay
/// only reaches it through the keys each COUNT aggregates over -- and
/// through the reputation surcharge once its probes look
/// extraction-shaped.
struct VolumeInferenceConfig {
  /// Key domain [1, domain_max] to reconstruct over. The table's
  /// actual keys may be any subset (gaps are what make inference
  /// nontrivial).
  int64_t domain_max = 0;
  std::string table = "items";
  std::string pk_column = "id";
  uint32_t ipv4 = 0x0A000001;
  double give_up_after_seconds = 1e9;
  /// Explore subranges in seed-determined order (the reconstruction
  /// is exact either way; the ORDER the adversary learns in varies).
  uint64_t seed = 3003;
};

struct VolumeInferenceReport {
  double attack_seconds = 0;
  uint64_t queries_issued = 0;
  uint64_t rate_limited = 0;
  /// Keys proven present, as sorted disjoint dense ranges [lo, hi].
  std::vector<std::pair<int64_t, int64_t>> present_ranges;
  uint64_t keys_identified = 0;
  double total_delay_seconds = 0;
  bool completed = false;
};

VolumeInferenceReport RunVolumeInference(
    QueryGate* gate, VirtualClock* clock,
    const VolumeInferenceConfig& config);

}  // namespace tarpit

#endif  // TARPIT_SIM_ADVERSARY_ZOO_H_
