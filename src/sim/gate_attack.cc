#include "sim/gate_attack.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/random.h"

namespace tarpit {

GateAttackReport RunGateExtraction(QueryGate* gate, VirtualClock* clock,
                                   const GateAttackConfig& config) {
  GateAttackReport report;
  const double start = clock->NowSeconds();
  const double deadline = start + config.give_up_after_seconds;

  // Phase 1: amass identities, waiting out the registration limiter.
  std::vector<Identity> identities;
  const uint64_t wanted = std::max<uint64_t>(1, config.identities);
  uint32_t next_ip = config.base_ipv4;
  while (identities.size() < wanted &&
         clock->NowSeconds() < deadline) {
    Result<Identity> id = gate->RegisterUser(next_ip);
    if (id.ok()) {
      identities.push_back(*id);
      next_ip += config.spread_subnets ? 0x100 : 1;
      continue;
    }
    const double wait =
        gate->registration_limiter()->RetryAfter(clock->NowSeconds());
    clock->SleepForMicros(
        static_cast<int64_t>(std::max(wait, 1e-3) * 1e6));
  }
  report.identities_used = identities.size();
  if (identities.empty()) {
    report.attack_seconds = clock->NowSeconds() - start;
    return report;
  }

  // Phase 2: discrete-event extraction. Each identity runs its own
  // timeline (busy until its last stall ends); the global clock is
  // advanced to each query's issue time, and the served delay extends
  // only that identity's timeline -- the parallel-attack semantics of
  // paper section 2.4. Requires the database to run in
  // defer_delay_sleep mode so ExecuteSql does not advance the shared
  // clock itself.
  struct Worker {
    Identity identity;
    double next_free;
    std::vector<int64_t> keys;  // Assigned keys, back = next.
    bool burned = false;
  };
  std::vector<Worker> workers;
  workers.reserve(identities.size());
  for (const Identity& id : identities) {
    workers.push_back(Worker{id, clock->NowSeconds(), {}, false});
  }
  // Round-robin partition, reversed so pop_back serves in order.
  for (uint64_t key = config.n; key >= 1; --key) {
    workers[(key - 1) % workers.size()].keys.push_back(
        static_cast<int64_t>(key));
  }
  if (config.shuffle_keys) {
    // Seeded Fisher-Yates per partition: reproducible, not clever.
    Rng rng(config.seed);
    for (Worker& w : workers) {
      for (size_t i = w.keys.size(); i > 1; --i) {
        std::swap(w.keys[i - 1], w.keys[rng.Uniform(i)]);
      }
    }
  }

  const std::string prefix = "SELECT * FROM " + config.table +
                             " WHERE " + config.pk_column + " = ";
  uint64_t remaining = config.n;
  double completion = clock->NowSeconds();
  while (remaining > 0) {
    // Next worker to act: smallest next_free with work left.
    Worker* next = nullptr;
    for (Worker& w : workers) {
      if (w.burned || w.keys.empty()) continue;
      if (next == nullptr || w.next_free < next->next_free) next = &w;
    }
    if (next == nullptr) break;  // All remaining work is on burned ids.
    if (next->next_free >= deadline) break;
    clock->AdvanceToMicros(
        static_cast<int64_t>(next->next_free * 1e6));
    const double now = clock->NowSeconds();

    const int64_t key = next->keys.back();
    Result<ProtectedResult> r =
        gate->ExecuteSql(next->identity, prefix + std::to_string(key));
    ++report.queries_issued;
    if (r.ok()) {
      next->keys.pop_back();
      ++report.tuples_obtained;
      --remaining;
      next->next_free = now + r->delay_seconds;
      completion = std::max(completion, next->next_free);
      continue;
    }
    if (r.status().IsRateLimited()) {
      ++report.rate_limited;
      next->next_free = now + std::max(gate->RetryAfter(next->identity),
                                       1e-3);
      continue;
    }
    // Lifetime cap or hard failure: redistribute this worker's keys.
    next->burned = true;
    std::vector<int64_t> orphaned = std::move(next->keys);
    next->keys.clear();
    size_t i = 0;
    bool any_alive = false;
    for (Worker& w : workers) {
      if (!w.burned) {
        any_alive = true;
        break;
      }
    }
    if (!any_alive) break;
    while (i < orphaned.size()) {
      for (Worker& w : workers) {
        if (w.burned) continue;
        if (i >= orphaned.size()) break;
        w.keys.push_back(orphaned[i++]);
      }
    }
  }
  // The attack ends when the slowest identity finishes its last stall.
  clock->AdvanceToMicros(static_cast<int64_t>(completion * 1e6));
  report.attack_seconds = clock->NowSeconds() - start;
  report.completed = report.tuples_obtained == config.n;
  return report;
}

}  // namespace tarpit
