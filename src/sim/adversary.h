#ifndef TARPIT_SIM_ADVERSARY_H_
#define TARPIT_SIM_ADVERSARY_H_

#include <cstdint>
#include <vector>

#include "core/delay_policy.h"

namespace tarpit {

/// Outcome of a sequential extraction over keys 1..n.
struct ExtractionReport {
  double total_delay_seconds = 0;
  /// completion_times[i]: seconds into the attack when key i+1 was
  /// obtained.
  std::vector<double> completion_times;
};

/// A single identity querying every key back-to-back; per-key delays
/// come from the (frozen) policy.
ExtractionReport RunSequentialExtraction(const DelayPolicy& policy,
                                         uint64_t n);

/// Outcome of a Sybil-parallel extraction (paper section 2.4).
struct ParallelExtractionReport {
  uint64_t identities = 0;
  /// Time to amass the identities under registration rate limiting.
  double registration_seconds = 0;
  /// The slowest identity's extraction time (keys are striped so each
  /// identity gets every k-th key; delays are serialized per identity).
  double max_partition_delay_seconds = 0;
  /// registration + slowest partition: the attack's wall-clock time.
  double total_attack_seconds = 0;
};

/// Models an adversary with `identities` accounts splitting the
/// keyspace. With registration limited to one account per
/// `registration_seconds_per_account`, total time is the identity
/// accumulation plus the slowest partition -- showing how rate-limited
/// registration restores most of the sequential penalty.
ParallelExtractionReport RunParallelExtraction(
    const DelayPolicy& policy, uint64_t n, uint64_t identities,
    double registration_seconds_per_account);

/// Storefront attack bound (paper section 2.4): the attacker forwards
/// legitimate queries through registered identities, each capped at
/// `per_user_lifetime_limit` queries. To cover all n keys it needs
/// ceil(n / limit) identities, which registration limiting stretches
/// over time.
struct StorefrontReport {
  uint64_t identities_needed = 0;
  double registration_seconds = 0;
};
StorefrontReport AnalyzeStorefront(uint64_t n,
                                   uint64_t per_user_lifetime_limit,
                                   double registration_seconds_per_account);

}  // namespace tarpit

#endif  // TARPIT_SIM_ADVERSARY_H_
