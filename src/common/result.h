#ifndef TARPIT_COMMON_RESULT_H_
#define TARPIT_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace tarpit {

/// Result<T> holds either a value of type T or a non-OK Status, in the
/// style of arrow::Result / absl::StatusOr. Accessing the value of an
/// errored result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (the error path).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result must not be constructed from an OK status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns OK when a value is held, otherwise the stored error.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or, if errored, the provided fallback.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T>), propagating its error, otherwise
/// assigning the value to `lhs`. Usable in functions returning Status or
/// Result<U>.
#define TARPIT_ASSIGN_OR_RETURN(lhs, rexpr)         \
  TARPIT_ASSIGN_OR_RETURN_IMPL_(                    \
      TARPIT_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define TARPIT_CONCAT_INNER_(a, b) a##b
#define TARPIT_CONCAT_(a, b) TARPIT_CONCAT_INNER_(a, b)
#define TARPIT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace tarpit

#endif  // TARPIT_COMMON_RESULT_H_
