#ifndef TARPIT_COMMON_FAILPOINT_H_
#define TARPIT_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace tarpit {

/// How an enabled fail point decides whether a given hit fires.
struct FailPointSpec {
  enum class Trigger {
    kAlways,       // Every hit fires.
    kNthHit,       // Fires on exactly the `nth` hit (1-based), once.
    kProbability,  // Each hit fires with `probability`, seeded RNG.
  };

  Trigger trigger = Trigger::kAlways;
  /// kNthHit: the 1-based hit index that fires.
  uint64_t nth = 1;
  /// kProbability: chance in [0,1] that a hit fires.
  double probability = 1.0;
  /// kProbability: deterministic per-point RNG seed, so a torture run
  /// replays identically from its seed.
  uint64_t seed = 0;
  /// Stop firing after this many fires (0 = unlimited). kNthHit
  /// implicitly caps at 1 unless raised.
  uint64_t max_fires = 0;
  /// Opaque payload handed to the site that fires, e.g. "bytes to
  /// short-write before failing" for `wal.append_short`.
  int64_t arg = 0;
};

/// Process-wide registry of named fail points — deterministic fault
/// injection for crash/corruption testing (inspired by FreeBSD's
/// fail(9) and RocksDB's SyncPoint, reduced to what the torture suite
/// needs).
///
/// Instrumented sites ask TARPIT_FAILPOINT("disk.fsync_fail"); the
/// macro expands to one relaxed atomic load and a predictable branch
/// when no point is enabled anywhere in the process, so shipping the
/// instrumentation costs nothing measurable on hot paths (the bench
/// bar is ≤1% with injection compiled in but inactive). Only when at
/// least one point is enabled does the slow path take the registry
/// mutex and evaluate the trigger policy.
///
/// Fire() returns the spec's `arg` when the point fires (so sites can
/// parameterize the fault: how many bytes were "written", which errno
/// to surface) and nullopt when it does not.
class FailPoints {
 public:
  static FailPoints& Instance();

  /// True iff any point is enabled in the process. Single relaxed
  /// load; this is the fast-path guard the macro uses.
  static bool AnyActive() {
    return active_.load(std::memory_order_relaxed) > 0;
  }

  void Enable(std::string_view name, FailPointSpec spec);
  void Disable(std::string_view name);
  void DisableAll();

  /// Slow path: evaluates `name`'s trigger policy (if enabled).
  /// Call through TARPIT_FAILPOINT so disabled-everywhere stays a
  /// branch on one atomic.
  std::optional<int64_t> Fire(std::string_view name);

  /// Total hits observed for `name` (enabled points only) and total
  /// fires. Test-introspection helpers.
  uint64_t hits(std::string_view name) const;
  uint64_t fires(std::string_view name) const;

  /// Called on every hit of an *enabled* point with (name, fired).
  /// common/ cannot depend on obs/ (layering), so the metric mirror —
  /// tarpit_failpoint_{hits,fires}_total — is installed through this
  /// hook by obs::BindFailPointMetrics (obs/failpoint_metrics.h).
  using Observer = std::function<void(std::string_view name, bool fired)>;
  void SetObserver(Observer observer);

 private:
  struct Point {
    FailPointSpec spec;
    uint64_t hit_count = 0;
    uint64_t fire_count = 0;
    uint64_t rng_state = 0;
  };

  FailPoints() = default;

  static std::atomic<int> active_;

  mutable std::mutex mu_;
  std::map<std::string, Point, std::less<>> points_;
  Observer observer_;
};

/// Evaluate fail point `name` at this site. Yields
/// std::optional<int64_t>: engaged (with the spec's arg) iff the point
/// fired. Compiles to a relaxed atomic load + branch when no point is
/// enabled.
#define TARPIT_FAILPOINT(name)                      \
  (::tarpit::FailPoints::AnyActive()                \
       ? ::tarpit::FailPoints::Instance().Fire(name) \
       : std::nullopt)

}  // namespace tarpit

#endif  // TARPIT_COMMON_FAILPOINT_H_
