#ifndef TARPIT_COMMON_SYSCALL_RETRY_H_
#define TARPIT_COMMON_SYSCALL_RETRY_H_

#include <cerrno>

namespace tarpit {

/// Invokes a raw syscall expression until it stops failing with EINTR.
/// Every blocking-ish syscall in the tree (pread/pwrite on storage,
/// read/write/accept/epoll_wait on the network front end, fsync
/// variants) is interruptible by signals; a bare `-1/EINTR` return is
/// not an error, just a request to try again. Centralizing the loop
/// keeps the retry policy identical in DiskManager, Wal, and src/net
/// instead of three hand-rolled variants.
///
/// Usage:
///   ssize_t n = RetryOnEintr([&] { return ::read(fd, buf, len); });
///
/// The callable is re-invoked verbatim, so arguments that must advance
/// across partial transfers (short reads/writes) belong in the caller's
/// loop, not here: this helper only absorbs EINTR, never short counts.
/// EAGAIN/EWOULDBLOCK are returned to the caller -- on a non-blocking
/// fd they are flow control, not noise, and every event-loop read/write
/// path must see them.
template <typename Fn>
inline auto RetryOnEintr(Fn&& fn) -> decltype(fn()) {
  decltype(fn()) r;
  do {
    r = fn();
  } while (r < 0 && errno == EINTR);
  return r;
}

}  // namespace tarpit

#endif  // TARPIT_COMMON_SYSCALL_RETRY_H_
