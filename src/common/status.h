#ifndef TARPIT_COMMON_STATUS_H_
#define TARPIT_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace tarpit {

/// Error categories used across the library. Tarpit never throws; all
/// fallible operations return a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kResourceExhausted,
  kFailedPrecondition,
  kPermissionDenied,
  kRateLimited,
  kUnimplemented,
  kInternal,
  kCancelled,
  kOverloaded,
};

/// Returns a stable human-readable name for a status code, e.g. "NotFound".
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, value-semantic error carrier in the style of
/// rocksdb::Status / arrow::Status. The OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status RateLimited(std::string msg) {
    return Status(StatusCode::kRateLimited, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A parked request was cancelled before its stall expired (session
  /// eviction, scheduler shutdown). The computation may have happened;
  /// the result is withheld because the delay was never served.
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  /// The engine shed this request to protect itself: a resource budget
  /// (parked stalls, WAL backlog, version-store size) is exhausted.
  /// Distinct from kRateLimited (per-principal throttling) — overload is
  /// a whole-engine condition, and any delay charge computed before the
  /// shed decision is kept (the stall is owed even if never parked).
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsRateLimited() const { return code_ == StatusCode::kRateLimited; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define TARPIT_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::tarpit::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace tarpit

#endif  // TARPIT_COMMON_STATUS_H_
