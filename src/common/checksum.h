#ifndef TARPIT_COMMON_CHECKSUM_H_
#define TARPIT_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace tarpit {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven, one byte
/// per step. Used for WAL record framing and page trailers: unlike the
/// FNV-1a hash it replaces, CRC32 detects all burst errors up to 32
/// bits, which is the failure shape of torn sector writes.
///
/// `seed` lets callers chain partial buffers:
///   Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b), na + nb).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace tarpit

#endif  // TARPIT_COMMON_CHECKSUM_H_
