#ifndef TARPIT_COMMON_ZIPF_H_
#define TARPIT_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace tarpit {

/// Generalized harmonic number H_{n,s} = sum_{i=1..n} i^{-s}.
double GeneralizedHarmonic(uint64_t n, double s);

/// Sum of powers sum_{i=1..n} i^{a} (a may be positive; used by the
/// analytical model for d_total, Eq. 2/6 of the paper).
double PowerSum(uint64_t n, double a);

/// Samples ranks from a Zipf distribution: P(rank = i) proportional to
/// i^{-alpha}, i in [1, n]. Uses Hormann & Derflinger's
/// rejection-inversion method, which is O(1) per sample and exact for any
/// alpha > 0 (including alpha = 1), with no O(n) table.
class ZipfDistribution {
 public:
  /// n >= 1, alpha > 0.
  ZipfDistribution(uint64_t n, double alpha);

  /// Returns a rank in [1, n].
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

  /// Probability mass of rank i (normalized by H_{n,alpha}).
  double Pmf(uint64_t i) const;

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
  double normalizer_;  // H_{n,alpha}, for Pmf.
};

/// Builds the exact frequency vector (index 0 = rank 1) of `requests`
/// draws from Zipf(n, alpha) scaled so probabilities sum to `requests` --
/// the *expected* counts, not a sampled realization.
std::vector<double> ExpectedZipfCounts(uint64_t n, double alpha,
                                       double requests);

}  // namespace tarpit

#endif  // TARPIT_COMMON_ZIPF_H_
