#ifndef TARPIT_COMMON_STATS_H_
#define TARPIT_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tarpit {

/// Welford's online mean/variance accumulator.
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples and answers quantile queries. The paper reports
/// *median* user delay throughout (quantiles are robust to the heavy
/// Zipf tail; see paper section 2.1), so this is the primary metric sink
/// of the simulation harness.
class QuantileSketch {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void Reserve(size_t n) { samples_.reserve(n); }

  /// Folds another sketch's samples into this one (exact: both keep
  /// raw samples). Used to merge per-stripe delay accounting.
  void Merge(const QuantileSketch& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  /// q in [0,1]; linear interpolation between order statistics.
  /// Returns 0 when empty.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }

  double Sum() const;
  double Mean() const;

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Quantile sketch with BOUNDED memory: reservoir sampling (Vitter's
/// algorithm R) over a fixed-capacity sample set, with exact count and
/// sum. QuantileSketch keeps every raw sample, which is the right
/// call for experiment harnesses but grows linearly forever in a
/// server -- long-running accounting (the concurrent front door's
/// per-stripe delay sketches) uses this instead, trading exact
/// quantiles for an O(capacity) ceiling. With capacity k the median's
/// standard error is ~1/(2*sqrt(k)) in rank space (k=4096 -> +-0.8%
/// rank), independent of how many samples stream through.
class BoundedQuantileSketch {
 public:
  explicit BoundedQuantileSketch(size_t capacity = 4096,
                                 uint64_t seed = 0x5EEDBA5E);

  void Add(double x);

  /// Folds `other` into this sketch. Approximate: the merged reservoir
  /// draws from each side's reservoir in proportion to the sides'
  /// true counts (count and sum merge exactly).
  void Merge(const BoundedQuantileSketch& other);

  /// Total values observed (not the retained sample count).
  uint64_t count() const { return count_; }
  size_t reservoir_size() const { return samples_.size(); }
  size_t capacity() const { return capacity_; }

  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double Sum() const { return sum_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  void Clear();

 private:
  uint64_t NextRandom();

  size_t capacity_;
  uint64_t rng_state_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Fixed-boundary histogram with geometrically growing buckets, for
/// delay distributions that span nine decades (microseconds to weeks).
class LogHistogram {
 public:
  /// Buckets: [0, base), [base, base*growth), ... `buckets` of them plus
  /// an overflow bucket.
  LogHistogram(double base, double growth, int buckets);

  void Add(double x);
  int64_t BucketCount(int b) const { return counts_[b]; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  double BucketLowerBound(int b) const;
  int64_t total() const { return total_; }

 private:
  double base_;
  double growth_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace tarpit

#endif  // TARPIT_COMMON_STATS_H_
