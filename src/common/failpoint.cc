#include "common/failpoint.h"

namespace tarpit {
namespace {

/// splitmix64: tiny, stateless-friendly PRNG. Good enough bit mixing
/// for Bernoulli trials and fully determined by the spec's seed, which
/// is what torture-test replay needs.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::atomic<int> FailPoints::active_{0};

FailPoints& FailPoints::Instance() {
  static FailPoints* instance = new FailPoints();
  return *instance;
}

void FailPoints::Enable(std::string_view name, FailPointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    Point p;
    p.spec = spec;
    p.rng_state = spec.seed;
    points_.emplace(std::string(name), p);
    active_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Re-enabling resets trigger state so tests can re-arm a point.
    it->second.spec = spec;
    it->second.hit_count = 0;
    it->second.fire_count = 0;
    it->second.rng_state = spec.seed;
  }
}

void FailPoints::Disable(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it != points_.end()) {
    points_.erase(it);
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoints::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.fetch_sub(static_cast<int>(points_.size()),
                    std::memory_order_relaxed);
  points_.clear();
}

std::optional<int64_t> FailPoints::Fire(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return std::nullopt;

  Point& p = it->second;
  ++p.hit_count;

  uint64_t fire_cap = p.spec.max_fires;
  bool fires = false;
  switch (p.spec.trigger) {
    case FailPointSpec::Trigger::kAlways:
      fires = true;
      break;
    case FailPointSpec::Trigger::kNthHit:
      fires = p.hit_count == p.spec.nth;
      if (fire_cap == 0) fire_cap = 1;
      break;
    case FailPointSpec::Trigger::kProbability: {
      uint64_t r = SplitMix64(p.rng_state);
      double u =
          static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);  // 2^53
      fires = u < p.spec.probability;
      break;
    }
  }
  if (fires && fire_cap != 0 && p.fire_count >= fire_cap) fires = false;
  if (fires) ++p.fire_count;
  if (observer_) observer_(name, fires);
  if (!fires) return std::nullopt;
  return p.spec.arg;
}

uint64_t FailPoints::hits(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hit_count;
}

uint64_t FailPoints::fires(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fire_count;
}

void FailPoints::SetObserver(Observer observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

}  // namespace tarpit
