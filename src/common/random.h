#ifndef TARPIT_COMMON_RANDOM_H_
#define TARPIT_COMMON_RANDOM_H_

#include <cstdint>

namespace tarpit {

/// Deterministic, seedable PRNG (xoshiro256** seeded via splitmix64).
/// Used everywhere instead of std::mt19937 for speed and reproducible
/// cross-platform streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double Exponential(double rate);

  /// Normally distributed value (Box-Muller).
  double Gaussian(double mean, double stddev);

  /// Lognormal: exp(N(log_mean, log_stddev)).
  double LogNormal(double log_mean, double log_stddev);

 private:
  uint64_t s_[4];
};

}  // namespace tarpit

#endif  // TARPIT_COMMON_RANDOM_H_
