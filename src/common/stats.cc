#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace tarpit {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double QuantileSketch::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double QuantileSketch::Sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double QuantileSketch::Mean() const {
  return samples_.empty() ? 0.0
                          : Sum() / static_cast<double>(samples_.size());
}

BoundedQuantileSketch::BoundedQuantileSketch(size_t capacity,
                                             uint64_t seed)
    : capacity_(capacity == 0 ? 1 : capacity),
      rng_state_(seed == 0 ? 1 : seed) {
  samples_.reserve(capacity_);
}

uint64_t BoundedQuantileSketch::NextRandom() {
  // xorshift64*: cheap, decent, and deterministic for a given seed.
  uint64_t x = rng_state_;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  rng_state_ = x;
  return x * 0x2545F4914F6CDD1DULL;
}

void BoundedQuantileSketch::Add(double x) {
  ++count_;
  sum_ += x;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Algorithm R: the new value displaces a uniformly random retained
  // sample with probability capacity/count.
  const uint64_t j = NextRandom() % count_;
  if (j < capacity_) {
    samples_[static_cast<size_t>(j)] = x;
    sorted_ = false;
  }
}

void BoundedQuantileSketch::Merge(const BoundedQuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    samples_ = other.samples_;
    if (samples_.size() > capacity_) samples_.resize(capacity_);
    count_ = other.count_;
    sum_ = other.sum_;
    sorted_ = false;
    return;
  }
  // Draw the merged reservoir from the two sides in proportion to
  // their true counts (with replacement within a side -- acceptable
  // for the stripe-merge use where both sides saw the same workload).
  const uint64_t total = count_ + other.count_;
  std::vector<double> merged;
  const size_t want = std::min(
      capacity_, samples_.size() + other.samples_.size());
  merged.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    const bool from_this = NextRandom() % total < count_;
    const std::vector<double>& src =
        from_this ? samples_ : other.samples_;
    merged.push_back(src[NextRandom() % src.size()]);
  }
  samples_ = std::move(merged);
  count_ = total;
  sum_ += other.sum_;
  sorted_ = false;
}

double BoundedQuantileSketch::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

void BoundedQuantileSketch::Clear() {
  samples_.clear();
  sorted_ = false;
  count_ = 0;
  sum_ = 0.0;
}

LogHistogram::LogHistogram(double base, double growth, int buckets)
    : base_(base), growth_(growth), counts_(buckets + 1, 0) {}

void LogHistogram::Add(double x) {
  ++total_;
  if (x < base_) {
    ++counts_[0];
    return;
  }
  const int b =
      1 + static_cast<int>(std::log(x / base_) / std::log(growth_));
  if (b >= static_cast<int>(counts_.size())) {
    ++counts_.back();
  } else {
    ++counts_[b];
  }
}

double LogHistogram::BucketLowerBound(int b) const {
  if (b == 0) return 0.0;
  return base_ * std::pow(growth_, b - 1);
}

}  // namespace tarpit
