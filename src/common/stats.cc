#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace tarpit {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double QuantileSketch::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double QuantileSketch::Sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double QuantileSketch::Mean() const {
  return samples_.empty() ? 0.0
                          : Sum() / static_cast<double>(samples_.size());
}

LogHistogram::LogHistogram(double base, double growth, int buckets)
    : base_(base), growth_(growth), counts_(buckets + 1, 0) {}

void LogHistogram::Add(double x) {
  ++total_;
  if (x < base_) {
    ++counts_[0];
    return;
  }
  const int b =
      1 + static_cast<int>(std::log(x / base_) / std::log(growth_));
  if (b >= static_cast<int>(counts_.size())) {
    ++counts_.back();
  } else {
    ++counts_[b];
  }
}

double LogHistogram::BucketLowerBound(int b) const {
  if (b == 0) return 0.0;
  return base_ * std::pow(growth_, b - 1);
}

}  // namespace tarpit
