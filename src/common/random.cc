#include "common/random.h"

#include <cmath>

namespace tarpit {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation; the modulo bias of
  // the plain approach is unacceptable for the large bounds used by the
  // workload generators.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return (Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double rate) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

double Rng::Gaussian(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::LogNormal(double log_mean, double log_stddev) {
  return std::exp(Gaussian(log_mean, log_stddev));
}

}  // namespace tarpit
