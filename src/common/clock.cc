#include "common/clock.h"

#include <chrono>
#include <thread>

namespace tarpit {

int64_t RealClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealClock::SleepForMicros(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

}  // namespace tarpit
