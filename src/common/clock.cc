#include "common/clock.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

namespace tarpit {

int64_t Clock::DelayToMicros(double seconds) {
  if (!(seconds > 0.0)) return 0;  // Also catches NaN.
  const double micros = std::ceil(seconds * 1e6);
  if (micros >= static_cast<double>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return static_cast<int64_t>(micros);
}

int64_t RealClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealClock::SleepForMicros(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

}  // namespace tarpit
