#ifndef TARPIT_COMMON_HYPERLOGLOG_H_
#define TARPIT_COMMON_HYPERLOGLOG_H_

#include <cstdint>
#include <vector>

namespace tarpit {

/// HyperLogLog distinct-value sketch (Flajolet et al. 2007) with the
/// standard small-range (linear counting) correction. Used by the
/// coverage monitor to track how much of the keyspace each identity
/// has touched in O(2^precision) bytes instead of one bit per tuple.
class HyperLogLog {
 public:
  /// `precision` in [4, 16]: 2^precision registers; standard error is
  /// about 1.04 / sqrt(2^precision) (~1.6% at precision 12).
  explicit HyperLogLog(int precision = 12);

  /// Adds a 64-bit key (hashed internally).
  void Add(int64_t key);

  /// Estimated number of distinct keys added.
  double Estimate() const;

  /// Merges another sketch of the same precision into this one.
  /// Returns false on precision mismatch.
  bool Merge(const HyperLogLog& other);

  void Clear();

  int precision() const { return precision_; }
  uint64_t items_added() const { return items_added_; }

 private:
  int precision_;
  uint32_t num_registers_;
  double alpha_mm_;  // Bias constant * m^2, precomputed.
  std::vector<uint8_t> registers_;
  uint64_t items_added_ = 0;
};

}  // namespace tarpit

#endif  // TARPIT_COMMON_HYPERLOGLOG_H_
