#include "common/hyperloglog.h"

#include <cassert>
#include <cmath>

namespace tarpit {

namespace {

uint64_t Hash64(int64_t key) {
  // SplitMix64 finalizer: a strong enough mix for HLL register/rank
  // extraction.
  uint64_t z = static_cast<uint64_t>(key) + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double AlphaFor(uint32_t m) {
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  assert(precision >= 4 && precision <= 16);
  num_registers_ = 1u << precision_;
  alpha_mm_ = AlphaFor(num_registers_) *
              static_cast<double>(num_registers_) *
              static_cast<double>(num_registers_);
  registers_.assign(num_registers_, 0);
}

void HyperLogLog::Add(int64_t key) {
  ++items_added_;
  const uint64_t h = Hash64(key);
  const uint32_t idx = static_cast<uint32_t>(h >> (64 - precision_));
  const uint64_t rest = h << precision_;
  // Rank: position of the leftmost 1 in the remaining bits (1-based);
  // all-zero rest maps to the maximum rank.
  const uint8_t rank =
      rest == 0 ? static_cast<uint8_t>(64 - precision_ + 1)
                : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  if (rank > registers_[idx]) registers_[idx] = rank;
}

double HyperLogLog::Estimate() const {
  double sum = 0.0;
  uint32_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -r);
    if (r == 0) ++zeros;
  }
  double estimate = alpha_mm_ / sum;
  // Small-range correction: linear counting.
  if (estimate <= 2.5 * num_registers_ && zeros != 0) {
    estimate = static_cast<double>(num_registers_) *
               std::log(static_cast<double>(num_registers_) /
                        static_cast<double>(zeros));
  }
  return estimate;
}

bool HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) return false;
  for (uint32_t i = 0; i < num_registers_; ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
  items_added_ += other.items_added_;
  return true;
}

void HyperLogLog::Clear() {
  registers_.assign(num_registers_, 0);
  items_added_ = 0;
}

}  // namespace tarpit
