#include "common/zipf.h"

#include <cassert>
#include <cmath>

namespace tarpit {

namespace {

// Direct summation is used up to this many terms; beyond it we switch to
// an Euler-Maclaurin approximation whose error is negligible at that
// scale.
constexpr uint64_t kDirectSumLimit = 20'000'000;

}  // namespace

double GeneralizedHarmonic(uint64_t n, double s) {
  if (n == 0) return 0.0;
  if (n <= kDirectSumLimit) {
    double sum = 0.0;
    // Summing small terms first reduces floating-point error.
    for (uint64_t i = n; i >= 1; --i) {
      sum += std::pow(static_cast<double>(i), -s);
    }
    return sum;
  }
  // Euler-Maclaurin: H_{n,s} = H_{m,s} + integral_m^n x^{-s} dx + ...
  double head = GeneralizedHarmonic(kDirectSumLimit, s);
  double m = static_cast<double>(kDirectSumLimit);
  double nn = static_cast<double>(n);
  double integral = (s == 1.0)
                        ? std::log(nn / m)
                        : (std::pow(nn, 1.0 - s) - std::pow(m, 1.0 - s)) /
                              (1.0 - s);
  double correction =
      0.5 * (std::pow(nn, -s) - std::pow(m, -s));
  return head + integral + correction;
}

double PowerSum(uint64_t n, double a) {
  return GeneralizedHarmonic(n, -a);
}

ZipfDistribution::ZipfDistribution(uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  assert(n >= 1);
  assert(alpha > 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -alpha_));
  normalizer_ = GeneralizedHarmonic(n, alpha);
}

double ZipfDistribution::H(double x) const {
  // Integral of x^{-alpha}: the antiderivative used by
  // rejection-inversion (Hormann & Derflinger 1996).
  if (alpha_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - alpha_) - 1.0) / (1.0 - alpha_);
}

double ZipfDistribution::HInverse(double x) const {
  if (alpha_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - alpha_), 1.0 / (1.0 - alpha_));
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ ||
        u >= H(kd + 0.5) - std::pow(kd, -alpha_)) {
      return k;
    }
  }
}

double ZipfDistribution::Pmf(uint64_t i) const {
  assert(i >= 1 && i <= n_);
  return std::pow(static_cast<double>(i), -alpha_) / normalizer_;
}

std::vector<double> ExpectedZipfCounts(uint64_t n, double alpha,
                                       double requests) {
  std::vector<double> counts(n);
  const double h = GeneralizedHarmonic(n, alpha);
  for (uint64_t i = 1; i <= n; ++i) {
    counts[i - 1] =
        requests * std::pow(static_cast<double>(i), -alpha) / h;
  }
  return counts;
}

}  // namespace tarpit
