#ifndef TARPIT_COMMON_CLOCK_H_
#define TARPIT_COMMON_CLOCK_H_

#include <cstdint>

namespace tarpit {

/// Abstract time source. All delay accounting in the library goes through
/// a Clock so that simulations can charge week-long delays without
/// sleeping (VirtualClock) while the overhead experiment (Table 5) runs
/// against real time (RealClock).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;

  /// Blocks (or, for virtual clocks, advances time) for `micros`.
  virtual void SleepForMicros(int64_t micros) = 0;

  /// True when time is simulated (VirtualClock): sleeps are
  /// instantaneous bookkeeping. The DelayScheduler uses this to fire
  /// its timer wheel instantly instead of running a driver thread.
  virtual bool IsVirtual() const { return false; }

  double NowSeconds() const { return NowMicros() / 1e6; }

  /// Converts a charged delay in seconds to sleepable microseconds,
  /// rounding UP. A truncating cast here let sub-microsecond delays
  /// round to zero and never reach wall time, silently under-charging
  /// workloads whose per-tuple delays sit below 1 µs (common with
  /// small `scale` and large counts). Negative/zero delays map to 0;
  /// values beyond int64 range clamp to the maximum.
  static int64_t DelayToMicros(double seconds);

  /// Convenience: sleeps for `seconds`, rounded up to whole
  /// microseconds so every positive charge costs at least one tick of
  /// wall time.
  void SleepForSeconds(double seconds) {
    SleepForMicros(DelayToMicros(seconds));
  }
};

/// Wall-clock time via std::chrono::steady_clock; SleepForMicros really
/// sleeps.
class RealClock : public Clock {
 public:
  int64_t NowMicros() const override;
  void SleepForMicros(int64_t micros) override;
};

/// A manually advanced clock for simulation. SleepForMicros advances the
/// clock instantaneously; nothing blocks.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(int64_t start_micros = 0) : now_(start_micros) {}

  bool IsVirtual() const override { return true; }

  int64_t NowMicros() const override { return now_; }
  void SleepForMicros(int64_t micros) override {
    if (micros > 0) now_ += micros;
  }

  /// Jumps directly to an absolute time; must not move backwards.
  void AdvanceToMicros(int64_t t) {
    if (t > now_) now_ = t;
  }

 private:
  int64_t now_;
};

}  // namespace tarpit

#endif  // TARPIT_COMMON_CLOCK_H_
