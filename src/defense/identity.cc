#include "defense/identity.h"

#include <cstdio>

namespace tarpit {

std::string Ipv4ToString(uint32_t ipv4) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ipv4 >> 24) & 0xFF,
                (ipv4 >> 16) & 0xFF, (ipv4 >> 8) & 0xFF, ipv4 & 0xFF);
  return buf;
}

uint32_t Ipv4FromString(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char tail = 0;
  int n = std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d,
                      &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) return 0;
  return (a << 24) | (b << 16) | (c << 8) | d;
}

}  // namespace tarpit
