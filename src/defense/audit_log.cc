#include "defense/audit_log.h"

namespace tarpit {

std::string AuditEventName(AuditEvent event) {
  switch (event) {
    case AuditEvent::kRegistered: return "registered";
    case AuditEvent::kRegistrationDenied: return "registration-denied";
    case AuditEvent::kQueryServed: return "query-served";
    case AuditEvent::kRateLimitedUser: return "rate-limited-user";
    case AuditEvent::kRateLimitedSubnet: return "rate-limited-subnet";
    case AuditEvent::kLifetimeCapHit: return "lifetime-cap";
    case AuditEvent::kCoverageEscalated: return "coverage-escalated";
    case AuditEvent::kReputationEscalated: return "reputation-escalated";
    case AuditEvent::kOverloadShed: return "overload-shed";
  }
  return "unknown";
}

void AuditLog::BindMetrics(obs::MetricRegistry* metrics) {
  if (metrics != nullptr) {
    m_dropped_ = metrics->GetCounter("tarpit_audit_dropped_total");
  }
}

void AuditLog::Record(AuditRecord record) {
  if (clock_ != nullptr) record.time_seconds = clock_->NowSeconds();
  ++total_recorded_;
  records_.push_back(record);
  while (records_.size() > capacity_) {
    records_.pop_front();
    ++dropped_total_;
    if (m_dropped_ != nullptr) m_dropped_->Increment();
  }
  if (ring_ != nullptr) {
    // AuditEvent values 0..8 map 1:1 onto the first nine
    // DefenseEventType values (the ring's enum extends this one).
    obs::DefenseEvent e;
    e.time_micros = static_cast<int64_t>(record.time_seconds * 1e6);
    e.type = static_cast<obs::DefenseEventType>(
        static_cast<uint16_t>(record.event));
    e.principal = record.identity;
    e.subnet24 = record.ipv4 & 0xFFFFFF00u;
    e.magnitude = record.magnitude;
    ring_->Append(e);
  }
}

void AuditLog::ForEach(
    const std::function<bool(const AuditRecord&)>& fn) const {
  for (const AuditRecord& record : records_) {
    if (!fn(record)) return;
  }
}

uint64_t AuditLog::CountOf(AuditEvent event) const {
  uint64_t n = 0;
  for (const AuditRecord& record : records_) {
    if (record.event == event) ++n;
  }
  return n;
}

uint64_t AuditLog::CountForIdentity(IdentityId identity) const {
  uint64_t n = 0;
  for (const AuditRecord& record : records_) {
    if (record.identity == identity) ++n;
  }
  return n;
}

}  // namespace tarpit
