#include "defense/audit_log.h"

namespace tarpit {

std::string AuditEventName(AuditEvent event) {
  switch (event) {
    case AuditEvent::kRegistered: return "registered";
    case AuditEvent::kRegistrationDenied: return "registration-denied";
    case AuditEvent::kQueryServed: return "query-served";
    case AuditEvent::kRateLimitedUser: return "rate-limited-user";
    case AuditEvent::kRateLimitedSubnet: return "rate-limited-subnet";
    case AuditEvent::kLifetimeCapHit: return "lifetime-cap";
    case AuditEvent::kCoverageEscalated: return "coverage-escalated";
    case AuditEvent::kReputationEscalated: return "reputation-escalated";
    case AuditEvent::kOverloadShed: return "overload-shed";
  }
  return "unknown";
}

void AuditLog::Record(AuditRecord record) {
  if (clock_ != nullptr) record.time_seconds = clock_->NowSeconds();
  ++total_recorded_;
  records_.push_back(record);
  while (records_.size() > capacity_) records_.pop_front();
}

void AuditLog::ForEach(
    const std::function<bool(const AuditRecord&)>& fn) const {
  for (const AuditRecord& record : records_) {
    if (!fn(record)) return;
  }
}

uint64_t AuditLog::CountOf(AuditEvent event) const {
  uint64_t n = 0;
  for (const AuditRecord& record : records_) {
    if (record.event == event) ++n;
  }
  return n;
}

uint64_t AuditLog::CountForIdentity(IdentityId identity) const {
  uint64_t n = 0;
  for (const AuditRecord& record : records_) {
    if (record.identity == identity) ++n;
  }
  return n;
}

}  // namespace tarpit
