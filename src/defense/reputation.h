#ifndef TARPIT_DEFENSE_REPUTATION_H_
#define TARPIT_DEFENSE_REPUTATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hyperloglog.h"
#include "core/delay_policy.h"
#include "defense/identity.h"
#include "obs/metrics.h"

namespace tarpit {

/// Tuning for reputation-escalating delay (ROADMAP open item 2, in the
/// spirit of delayer's 1->60s per-IP backoff and mopher's
/// session-accumulating tarpit).
struct ReputationOptions {
  /// Multiplicative bump applied to an identity's penalty factor per
  /// unit-strength signal.
  double growth = 2.0;
  /// Bump applied to the identity's /24 subnet per signal. Weaker than
  /// the identity bump: a subnet is shared with bystanders (NAT), but
  /// it is the state a Sybil fleet cannot shed by churning identities.
  double subnet_growth = 1.5;
  /// Half-life of the penalty's exponential decay toward baseline
  /// (factor 1.0) while a principal behaves benignly.
  double half_life_seconds = 900.0;
  /// Caps on the penalty factors.
  double max_penalty = 64.0;
  double max_subnet_penalty = 64.0;
  /// Log-space snap-to-baseline threshold: once decay brings
  /// log(factor) under this, the penalty is exactly 1.0 again
  /// ("decays fully back to baseline", and the entry stops paying
  /// decay math).
  double baseline_epsilon = 1e-3;

  // -- Self-observed breadth signal (extraction-shaped coverage). ----
  /// Coverage (distinct tuples / N) below which breadth is free;
  /// matches the coverage monitor's notion of a legitimate slice.
  double breadth_free_fraction = 0.01;
  /// One growth signal per additional `stride` of coverage beyond the
  /// free fraction: a principal walking the relation earns a
  /// multiplicative bump every stride * N new distinct tuples, so its
  /// penalty grows geometrically with breadth.
  double breadth_signal_stride = 0.01;
  /// HyperLogLog precision for per-principal distinct counting.
  int hll_precision = 12;

  // -- Self-observed rate anomaly. -----------------------------------
  /// Sliding observation window for the rate signal.
  double rate_window_seconds = 10.0;
  /// Served-tuple rate (per second, sustained over a full window)
  /// above which one rate signal fires per window. 0 disables the
  /// self-observed rate signal (the QueryGate still feeds explicit
  /// rate-anomaly signals on throttle denials).
  double rate_threshold_per_second = 0.0;

  /// Per-shard cap on tracked identities; when a shard fills, the
  /// entry closest to baseline is evicted (bounded memory under
  /// identity churn -- the subnet entries carry the long memory).
  size_t max_identities_per_shard = 4096;
  /// Lock shards for the identity map (power of two).
  size_t shards = 16;

  /// When non-null the store publishes tarpit_reputation_* signal
  /// counters and tracked-principal gauges here. Must outlive the
  /// store.
  obs::MetricRegistry* metrics = nullptr;
};

/// Why a penalty signal fired (metric label + audit context).
enum class ReputationSignal { kBreadth, kRateAnomaly, kExternal };

const char* ReputationSignalName(ReputationSignal signal);

/// Thread-safe per-identity and per-/24-subnet penalty scores.
///
/// The paper's delay is purely popularity/update-driven, so an
/// adversary that spreads load across identities or stays under
/// per-tuple popularity thresholds pays almost nothing per query. This
/// store adds the missing dimension: a penalty factor per principal
/// that grows multiplicatively on extraction-shaped behavior (breadth
/// of coverage, rate anomalies, explicit signals from the QueryGate),
/// decays exponentially while the principal behaves, and -- because it
/// is keyed by identity and subnet, never by session -- survives
/// SessionManager eviction and re-registration. Identity churn sheds
/// the identity score but not the subnet score, which is what defeats
/// Sybil fleets.
///
/// Factors are always >= 1.0: composition can only escalate the base
/// policy, never undercut it.
class ReputationStore : public PrincipalPenalty {
 public:
  explicit ReputationStore(ReputationOptions options = {});

  // -- PrincipalPenalty ----------------------------------------------
  /// max(identity factor, subnet factor) at `now_seconds`; >= 1.0.
  double PenaltyFactor(uint64_t identity, uint32_t subnet24,
                       double now_seconds) const override;
  /// Feeds breadth/rate learning with one served tuple access.
  void ObserveAccess(uint64_t identity, uint32_t subnet24, int64_t key,
                     uint64_t universe_n, double now_seconds) override;

  /// Explicit signal (the QueryGate feeds throttle denials and
  /// coverage-monitor escalations through here). `strength` scales the
  /// bump: factor *= growth^strength.
  void RecordSignal(uint64_t identity, uint32_t subnet24,
                    double now_seconds, ReputationSignal source,
                    double strength = 1.0);

  /// Benign-behavior hint: decay is purely time-based, so this only
  /// advances the lazy decay bookkeeping (kept as an explicit entry
  /// point so callers express intent and future schemes can credit).
  void RecordBenign(uint64_t identity, uint32_t subnet24,
                    double now_seconds);

  /// Individual factors (both >= 1.0), for tests and dashboards.
  double IdentityPenalty(uint64_t identity, double now_seconds) const;
  double SubnetPenalty(uint32_t subnet24, double now_seconds) const;

  /// Drops a principal's penalty AND breadth history. Operator
  /// override only -- nothing in the engine calls this on session
  /// expiry (that persistence is the point).
  void ForgetIdentity(uint64_t identity);
  void ForgetSubnet(uint32_t subnet24);

  size_t tracked_identities() const;
  size_t tracked_subnets() const;
  uint64_t signals_total() const;
  const ReputationOptions& options() const { return options_; }

 private:
  struct Entry {
    /// log(penalty factor); 0 = baseline. Decays exponentially.
    double log_penalty = 0.0;
    /// Timestamp of the last decay application.
    double decay_stamp_seconds = 0.0;
    /// Distinct tuples served to this principal (breadth).
    std::unique_ptr<HyperLogLog> breadth;
    /// Breadth strides already converted into signals.
    uint64_t breadth_signals = 0;
    /// Rate window.
    double window_start_seconds = 0.0;
    uint64_t window_count = 0;
    bool window_signaled = false;
  };

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> entries;
  };

  Shard& IdentityShard(uint64_t identity) const;
  /// Applies lazy exponential decay to `entry` as of `now`.
  void Decay(Entry* entry, double now_seconds) const;
  /// Multiplicative bump clamped to `max_log`.
  void Bump(Entry* entry, double log_growth, double strength,
            double max_log, double now_seconds);
  /// Shared breadth/rate observation for one principal's entry.
  /// Returns the number of signals that fired.
  uint64_t ObserveEntry(Entry* entry, int64_t key, uint64_t universe_n,
                        double now_seconds, double log_growth,
                        double max_log);
  /// Evicts the entry closest to baseline when `shard` is over budget.
  void EnforceShardBudget(Shard* shard);
  void CountSignal(ReputationSignal source, uint64_t n = 1);

  ReputationOptions options_;
  double log_growth_ = 0.0;
  double log_subnet_growth_ = 0.0;
  double max_log_penalty_ = 0.0;
  double max_log_subnet_penalty_ = 0.0;
  /// Total entries across identity shards, maintained at insert and
  /// erase so tracked_identities() never needs every shard lock.
  std::atomic<size_t> identity_count_{0};
  std::atomic<uint64_t> signal_count_{0};
  std::vector<std::unique_ptr<Shard>> identity_shards_;
  mutable std::mutex subnet_mu_;
  /// Guarded by subnet_mu_; mutable because const readers apply lazy
  /// decay in place.
  mutable std::unordered_map<uint32_t, Entry> subnets_;

  obs::Counter* m_signals_breadth_ = nullptr;
  obs::Counter* m_signals_rate_ = nullptr;
  obs::Counter* m_signals_external_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Gauge* m_tracked_identities_ = nullptr;
  obs::Gauge* m_tracked_subnets_ = nullptr;
};

/// DelayPolicy adapter: composes a base policy (typically the
/// CombinedDelayPolicy stack) with a ReputationStore. The anonymous
/// DelayFor(key) is the base policy unchanged (factor 1 -- reputation
/// needs a principal), so the policy slots anywhere a DelayPolicy
/// does; principal-aware callers use DelayForPrincipal / Compose.
///
/// Invariant: for every (key, principal, time),
///   DelayForPrincipal(...) >= base->DelayFor(key).
class ReputationDelayPolicy : public DelayPolicy {
 public:
  /// Neither pointer is owned; both must outlive this object. `store`
  /// may be null (pure pass-through).
  ReputationDelayPolicy(const DelayPolicy* base,
                        const ReputationStore* store);

  double DelayFor(int64_t key) const override;
  std::string name() const override;

  /// base delay for `key`, escalated by the principal's penalty.
  double DelayForPrincipal(int64_t key, uint64_t identity,
                           uint32_t subnet24, double now_seconds) const;

  /// Escalates an externally computed base delay (the concurrent front
  /// door computes delays from read-mostly snapshots and composes
  /// here). Never returns less than `base_delay_seconds`.
  double Compose(double base_delay_seconds, uint64_t identity,
                 uint32_t subnet24, double now_seconds) const;

  const ReputationStore* store() const { return store_; }

 private:
  const DelayPolicy* base_;
  const ReputationStore* store_;
};

}  // namespace tarpit

#endif  // TARPIT_DEFENSE_REPUTATION_H_
