#ifndef TARPIT_DEFENSE_QUERY_GATE_H_
#define TARPIT_DEFENSE_QUERY_GATE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "core/delay_scheduler.h"
#include "core/protected_db.h"
#include "core/resource_governor.h"
#include "defense/audit_log.h"
#include "defense/coverage_monitor.h"
#include "defense/identity.h"
#include "defense/registration_limiter.h"
#include "defense/reputation.h"
#include "defense/token_bucket.h"
#include "obs/event_ring.h"
#include "obs/risk.h"

namespace tarpit {

/// Perimeter policy knobs (paper section 2.4).
struct QueryGateOptions {
  /// One new account every this many seconds.
  double registration_seconds_per_account = 60.0;
  double registration_burst = 1.0;
  /// Per-identity query budget.
  double per_user_queries_per_second = 5.0;
  double per_user_burst = 20.0;
  /// Per-/24-subnet aggregate budget: forged or rented identities
  /// sharing a subnet share this bucket.
  double per_subnet_queries_per_second = 20.0;
  double per_subnet_burst = 50.0;
  /// Hard ceiling on lifetime queries per identity (0 = unlimited):
  /// the storefront defense. Exceeding it is PermissionDenied.
  uint64_t per_user_lifetime_query_limit = 0;
  /// Coverage-tracking escalation (extension, see CoverageMonitor):
  /// identities whose distinct-tuple coverage looks extraction-shaped
  /// have their delays multiplied.
  bool coverage_escalation = false;
  CoverageMonitorOptions coverage;
  /// Reputation-escalating delay (ROADMAP open item 2). Not owned and
  /// deliberately external: one store can back several gates and the
  /// concurrent front door at once, and -- because it is keyed by
  /// identity/subnet, not session -- its penalties survive
  /// SessionManager eviction and gate re-creation. The gate feeds it
  /// rate-limit denials and coverage escalations as signals, feeds
  /// every served tuple as a breadth observation, and multiplies each
  /// query's charged delay by the principal's penalty factor accrued
  /// *before* the query (same no-retroactive-penalty rule as coverage
  /// escalation). Null disables reputation entirely.
  ReputationStore* reputation = nullptr;
  /// Overload governor (shed-before-collapse), typically shared with
  /// the concurrent front door. Consulted only by ExecuteSqlAsync
  /// before the charged stall parks: when the parked-stall budgets are
  /// exhausted the request completes with Status::Overloaded instead
  /// of occupying the wheel. The delay (including any coverage /
  /// reputation surcharge) was already charged -- the accounting and
  /// reputation penalty stick, an extraction suspect cannot convert
  /// overload into free tuples. Not owned; must outlive the gate.
  ResourceGovernor* governor = nullptr;
  /// When non-null the gate publishes admission/denial counters and
  /// the delay-charged histograms (split legitimate vs flagged by the
  /// coverage monitor) here. Must outlive the gate.
  obs::MetricRegistry* metrics = nullptr;
  /// When non-null every audit record is mirrored into this binary
  /// forensics ring (the AuditLog keeps only a bounded window; the
  /// ring adds lock-free capture and structured querying). Not owned;
  /// must outlive the gate.
  obs::DefenseEventRing* events = nullptr;
  /// When non-null the gate feeds the extraction-risk scorer: every
  /// served tuple (breadth + rate), every multi-tuple statement
  /// (volume-probe shape) and every denial/escalation (defense
  /// signal). Purely observational -- the scorer never changes a
  /// delay. Not owned; must outlive the gate.
  obs::RiskScorer* risk = nullptr;
};

/// The front door: account registration plus per-user and per-subnet
/// rate limiting wrapped around the delay-protected database. Every
/// path an adversary has into the data passes through here.
class QueryGate {
 public:
  /// `db` must outlive the gate; the gate reads time from the db's
  /// clock so simulations stay on one timeline.
  QueryGate(ProtectedDatabase* db, QueryGateOptions options);

  /// Registers a new account from `ipv4`. RateLimited when the
  /// registration quota is exhausted.
  Result<Identity> RegisterUser(uint32_t ipv4);

  /// Executes SQL as `identity`. RateLimited / PermissionDenied when a
  /// perimeter limit trips -- the statement is not executed.
  Result<ProtectedResult> ExecuteSql(const Identity& identity,
                                     const std::string& sql);

  using AsyncCompletion = std::function<void(Result<ProtectedResult>)>;

  /// Async perimeter execution: admit + compute + delay accounting run
  /// inline on the caller (the gate itself is single-threaded, like
  /// the serial ProtectedDatabase it fronts); the charged stall parks
  /// on `scheduler` and `done` fires on a dispatcher thread at expiry.
  /// Perimeter denials complete inline. Requires the database to be
  /// opened with defer_delay_sleep -- otherwise the inner engine has
  /// already served the stall and nothing is parked. `session` groups
  /// the parked stall for DelayScheduler::CancelGroup (session
  /// eviction).
  void ExecuteSqlAsync(const Identity& identity, const std::string& sql,
                       DelayScheduler* scheduler, AsyncCompletion done,
                       StallGroup session = 0);

  /// Seconds until `identity` may issue another query (0 = now).
  double RetryAfter(const Identity& identity);

  RegistrationLimiter* registration_limiter() { return &reg_limiter_; }
  CoverageMonitor* coverage_monitor() { return &coverage_monitor_; }
  AuditLog* audit_log() { return &audit_log_; }
  uint64_t LifetimeQueries(IdentityId id) const;
  const QueryGateOptions& options() const { return options_; }

 private:
  struct UserState {
    TokenBucket bucket;
    uint64_t lifetime_queries = 0;
  };

  UserState& UserFor(IdentityId id);
  TokenBucket& SubnetFor(uint32_t subnet);
  double NowSeconds() const;

  ProtectedDatabase* db_;
  QueryGateOptions options_;
  RegistrationLimiter reg_limiter_;
  CoverageMonitor coverage_monitor_;
  AuditLog audit_log_;
  std::unordered_map<IdentityId, UserState> users_;
  std::unordered_map<uint32_t, TokenBucket> subnets_;

  // Registry-owned instruments; all null when options_.metrics is null.
  obs::Counter* m_admits_ = nullptr;
  obs::Counter* m_denied_lifetime_ = nullptr;
  obs::Counter* m_denied_subnet_ = nullptr;
  obs::Counter* m_denied_user_ = nullptr;
  obs::Counter* m_denied_overload_ = nullptr;
  obs::Counter* m_registrations_ = nullptr;
  obs::Counter* m_reg_denied_ = nullptr;
  obs::Counter* m_escalations_ = nullptr;
  obs::Counter* m_rep_escalations_ = nullptr;
  obs::Histogram* m_rep_factor_permille_ = nullptr;
  obs::Histogram* m_delay_legit_ns_ = nullptr;
  obs::Histogram* m_delay_flagged_ns_ = nullptr;
};

}  // namespace tarpit

#endif  // TARPIT_DEFENSE_QUERY_GATE_H_
