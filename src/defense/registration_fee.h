#ifndef TARPIT_DEFENSE_REGISTRATION_FEE_H_
#define TARPIT_DEFENSE_REGISTRATION_FEE_H_

#include <cstdint>

namespace tarpit {

/// The paper's monetary variant of registration limiting (section
/// 2.4): "one can charge a small fee for registration, computed so
/// that a parallel adversary would have to spend as much in
/// registration fees as to collect the data separately."
///
/// The economics: with k identities the adversary's wall-clock cost is
/// d_total / k, worth (d_total / k) * value_per_second to them; the
/// fee bill is k * fee. The fee that makes the *optimal* k no cheaper
/// than sequential extraction equates the two at the adversary's best
/// choice of k.
struct RegistrationFeeModel {
  /// Total sequential extraction delay (seconds).
  double extraction_delay_seconds = 0;
  /// What a second of the adversary's time is worth (currency/s).
  double adversary_value_per_second = 0;

  /// Adversary's total cost (time value + fees) with k identities.
  double AdversaryCost(uint64_t k, double fee) const;

  /// The k minimizing AdversaryCost for a given fee (continuous optimum
  /// k* = sqrt(d_total * v / fee), clamped to >= 1).
  uint64_t OptimalIdentities(double fee) const;

  /// The minimum fee such that even the adversary's best k costs at
  /// least as much as pure sequential extraction (k = 1, zero fees):
  /// from 2*sqrt(d*v*fee) >= d*v, fee >= d*v/4.
  double FeeToNeutralizeParallelism() const;
};

}  // namespace tarpit

#endif  // TARPIT_DEFENSE_REGISTRATION_FEE_H_
