#include "defense/coverage_monitor.h"

#include <algorithm>

namespace tarpit {

CoverageMonitor::CoverageMonitor(CoverageMonitorOptions options)
    : options_(options) {}

void CoverageMonitor::RecordAccess(IdentityId principal, int64_t key) {
  auto it = sketches_.find(principal);
  if (it == sketches_.end()) {
    it = sketches_
             .emplace(principal, HyperLogLog(options_.hll_precision))
             .first;
  }
  it->second.Add(key);
}

double CoverageMonitor::DistinctTuples(IdentityId principal) const {
  auto it = sketches_.find(principal);
  return it == sketches_.end() ? 0.0 : it->second.Estimate();
}

double CoverageMonitor::Coverage(IdentityId principal,
                                 uint64_t n) const {
  if (n == 0) return 0.0;
  return std::min(1.0, DistinctTuples(principal) /
                           static_cast<double>(n));
}

double CoverageMonitor::EscalationFactor(IdentityId principal,
                                         uint64_t n) const {
  return EscalationForCoverage(Coverage(principal, n));
}

double CoverageMonitor::EscalationForCoverage(double coverage) const {
  // The escalation never undercuts the base policy, even under a
  // misconfigured max_escalation < 1.
  const double max_escalation = std::max(1.0, options_.max_escalation);
  // The edge AT free_coverage is still free; the edge AT max_coverage
  // is fully escalated. With free_coverage == max_coverage the curve
  // degenerates to a step: the <= free test wins on the shared edge.
  if (coverage <= options_.free_coverage) return 1.0;
  if (coverage >= options_.max_coverage) return max_escalation;
  const double t = (coverage - options_.free_coverage) /
                   (options_.max_coverage - options_.free_coverage);
  return 1.0 + t * (max_escalation - 1.0);
}

void CoverageMonitor::Forget(IdentityId principal) {
  sketches_.erase(principal);
}

}  // namespace tarpit
