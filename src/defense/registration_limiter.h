#ifndef TARPIT_DEFENSE_REGISTRATION_LIMITER_H_
#define TARPIT_DEFENSE_REGISTRATION_LIMITER_H_

#include <cstdint>

#include "common/result.h"
#include "common/status.h"
#include "defense/identity.h"
#include "defense/token_bucket.h"

namespace tarpit {

/// Grants at most one new account every `seconds_per_account` (paper
/// section 2.4): this lower-bounds the time an adversary needs to amass
/// enough identities for a parallel extraction, which neutralizes
/// unbounded parallelism.
class RegistrationLimiter {
 public:
  /// `burst` accounts may be registered back-to-back before the limit
  /// engages (legitimate signup spikes).
  explicit RegistrationLimiter(double seconds_per_account,
                               double burst = 1.0);

  /// Registers a new identity from `ipv4` at `now_seconds`.
  /// RateLimited when the quota is exhausted.
  Result<Identity> Register(uint32_t ipv4, double now_seconds);

  /// Seconds until the next registration would be admitted.
  double RetryAfter(double now_seconds) {
    return bucket_.RetryAfter(now_seconds);
  }

  /// Analysis helper: minimum seconds an adversary needs to accumulate
  /// `k` identities (k-burst of them are rate-limited).
  double TimeToAccumulate(uint64_t k) const;

  uint64_t registered() const { return next_id_ - 1; }
  double seconds_per_account() const { return seconds_per_account_; }

 private:
  double seconds_per_account_;
  double burst_;
  TokenBucket bucket_;
  IdentityId next_id_ = 1;
};

}  // namespace tarpit

#endif  // TARPIT_DEFENSE_REGISTRATION_LIMITER_H_
