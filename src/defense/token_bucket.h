#ifndef TARPIT_DEFENSE_TOKEN_BUCKET_H_
#define TARPIT_DEFENSE_TOKEN_BUCKET_H_

#include <algorithm>
#include <cstdint>

namespace tarpit {

/// Classic token bucket over explicit timestamps (the caller supplies
/// "now" from whichever Clock drives the simulation).
class TokenBucket {
 public:
  /// `rate_per_second` tokens accrue continuously up to `burst`.
  TokenBucket(double rate_per_second, double burst)
      : rate_(rate_per_second), burst_(burst), tokens_(burst) {}

  /// Attempts to take one token at time `now_seconds`. Returns true on
  /// success; on failure the bucket is unchanged.
  bool TryAcquire(double now_seconds) {
    Refill(now_seconds);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    return false;
  }

  /// Seconds from `now_seconds` until one token will be available
  /// (0 when a token is ready).
  double RetryAfter(double now_seconds) {
    Refill(now_seconds);
    if (tokens_ >= 1.0) return 0.0;
    if (rate_ <= 0.0) return 1e18;  // Never.
    return (1.0 - tokens_) / rate_;
  }

  double tokens() const { return tokens_; }
  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void Refill(double now_seconds) {
    if (now_seconds > last_refill_) {
      tokens_ = std::min(burst_,
                         tokens_ + (now_seconds - last_refill_) * rate_);
      last_refill_ = now_seconds;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_refill_ = 0.0;
};

}  // namespace tarpit

#endif  // TARPIT_DEFENSE_TOKEN_BUCKET_H_
