#include "defense/registration_fee.h"

#include <algorithm>
#include <cmath>

namespace tarpit {

double RegistrationFeeModel::AdversaryCost(uint64_t k, double fee) const {
  if (k == 0) k = 1;
  const double time_cost = extraction_delay_seconds /
                           static_cast<double>(k) *
                           adversary_value_per_second;
  return time_cost + static_cast<double>(k) * fee;
}

uint64_t RegistrationFeeModel::OptimalIdentities(double fee) const {
  if (fee <= 0) return UINT64_MAX;  // Unbounded parallelism is free.
  const double k_star = std::sqrt(
      extraction_delay_seconds * adversary_value_per_second / fee);
  if (k_star <= 1.0) return 1;
  // The integer optimum is one of the neighbors of the continuous one.
  const uint64_t lo = static_cast<uint64_t>(k_star);
  const uint64_t hi = lo + 1;
  return AdversaryCost(lo, fee) <= AdversaryCost(hi, fee) ? lo : hi;
}

double RegistrationFeeModel::FeeToNeutralizeParallelism() const {
  // Cost at the continuous optimum is 2*sqrt(d*v*fee); requiring that
  // to be >= the sequential cost d*v gives fee >= d*v/4.
  return extraction_delay_seconds * adversary_value_per_second / 4.0;
}

}  // namespace tarpit
