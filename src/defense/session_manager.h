#ifndef TARPIT_DEFENSE_SESSION_MANAGER_H_
#define TARPIT_DEFENSE_SESSION_MANAGER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "defense/identity.h"
#include "obs/metrics.h"

namespace tarpit {

using SessionToken = uint64_t;

struct SessionOptions {
  /// Sliding inactivity timeout: a session dies this long after its
  /// last use.
  double ttl_seconds = 3600.0;
  /// Hard cap on concurrent sessions per identity (0 = unlimited).
  /// Bounds how much parallelism one account can mount by itself.
  uint32_t max_sessions_per_identity = 4;
  /// When non-null the manager publishes the active-session gauge and
  /// login/eviction counters here. Must outlive the manager.
  obs::MetricRegistry* metrics = nullptr;
};

/// Issues and validates opaque session tokens for registered
/// identities. Sessions expire by inactivity; expiry never erases the
/// identity's coverage or rate-limit state (an adversary cannot shed
/// its history by re-logging in -- that state is keyed by identity, not
/// session).
class SessionManager {
 public:
  explicit SessionManager(SessionOptions options = {},
                          uint64_t seed = 0x5E55);

  /// Starts a session for `identity` at `now_seconds`.
  /// ResourceExhausted when the identity's session cap is reached.
  Result<SessionToken> Login(const Identity& identity,
                             double now_seconds);

  /// Validates a token, sliding its expiry. Returns the owning
  /// identity id; PermissionDenied for unknown/expired tokens.
  Result<IdentityId> Validate(SessionToken token, double now_seconds);

  /// Explicit logout (idempotent).
  void Logout(SessionToken token);

  /// Drops every session idle past its TTL; returns how many died.
  size_t ExpireStale(double now_seconds);

  /// Invoked whenever a session ends -- explicit Logout, TTL expiry in
  /// Validate, or an ExpireStale sweep. This is how eviction reaches
  /// the stall scheduler: wire it to
  /// ConcurrentProtectedDatabase::CancelSession(token) so an evicted
  /// session's parked stalls complete (Cancelled) instead of holding
  /// wheel entries until multi-hour expiries fire.
  using EvictionHook = std::function<void(SessionToken, IdentityId)>;
  void set_eviction_hook(EvictionHook hook) {
    eviction_hook_ = std::move(hook);
  }

  size_t active_sessions() const { return sessions_.size(); }
  uint32_t SessionsOf(IdentityId id) const;
  const SessionOptions& options() const { return options_; }

 private:
  struct Session {
    IdentityId identity;
    double last_active_seconds;
  };

  /// Ends one session, attributing the eviction to `reason_counter`
  /// (null ok). Shared by Logout, Validate expiry, and ExpireStale.
  void RemoveSession(SessionToken token, obs::Counter* reason_counter);

  SessionOptions options_;
  Rng rng_;
  EvictionHook eviction_hook_;
  std::unordered_map<SessionToken, Session> sessions_;
  std::unordered_map<IdentityId, uint32_t> per_identity_;

  obs::Gauge* m_active_ = nullptr;
  obs::Counter* m_logins_ = nullptr;
  obs::Counter* m_evict_logout_ = nullptr;
  obs::Counter* m_evict_ttl_ = nullptr;
};

}  // namespace tarpit

#endif  // TARPIT_DEFENSE_SESSION_MANAGER_H_
