#include "defense/registration_limiter.h"

namespace tarpit {

RegistrationLimiter::RegistrationLimiter(double seconds_per_account,
                                         double burst)
    : seconds_per_account_(seconds_per_account),
      burst_(burst),
      bucket_(seconds_per_account > 0 ? 1.0 / seconds_per_account : 1e18,
              burst) {}

Result<Identity> RegistrationLimiter::Register(uint32_t ipv4,
                                               double now_seconds) {
  if (!bucket_.TryAcquire(now_seconds)) {
    return Status::RateLimited(
        "registration quota exhausted; retry in " +
        std::to_string(bucket_.RetryAfter(now_seconds)) + "s");
  }
  Identity identity;
  identity.id = next_id_++;
  identity.ipv4 = ipv4;
  identity.registered_at_micros =
      static_cast<int64_t>(now_seconds * 1e6);
  return identity;
}

double RegistrationLimiter::TimeToAccumulate(uint64_t k) const {
  if (k <= static_cast<uint64_t>(burst_)) return 0.0;
  return (static_cast<double>(k) - burst_) * seconds_per_account_;
}

}  // namespace tarpit
