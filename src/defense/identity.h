#ifndef TARPIT_DEFENSE_IDENTITY_H_
#define TARPIT_DEFENSE_IDENTITY_H_

#include <cstdint>
#include <string>

namespace tarpit {

using IdentityId = uint64_t;

/// A registered account. The source address matters because true Sybil
/// attacks are hard to mount from one network position (paper section
/// 2.4): addresses are easy to forge but routing the *response* back is
/// not, so the /24 is the natural aggregation unit for rate limiting.
struct Identity {
  IdentityId id = 0;
  uint32_t ipv4 = 0;
  int64_t registered_at_micros = 0;

  /// The /24 prefix this identity belongs to.
  uint32_t Subnet24() const { return ipv4 & 0xFFFFFF00u; }
};

/// Renders a.b.c.d.
std::string Ipv4ToString(uint32_t ipv4);

/// Parses a.b.c.d (returns 0 on malformed input).
uint32_t Ipv4FromString(const std::string& text);

}  // namespace tarpit

#endif  // TARPIT_DEFENSE_IDENTITY_H_
