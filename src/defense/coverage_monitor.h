#ifndef TARPIT_DEFENSE_COVERAGE_MONITOR_H_
#define TARPIT_DEFENSE_COVERAGE_MONITOR_H_

#include <cstdint>
#include <unordered_map>

#include "common/hyperloglog.h"
#include "defense/identity.h"

namespace tarpit {

/// Tuning for coverage-based delay escalation.
struct CoverageMonitorOptions {
  /// Coverage (distinct tuples / N) below which no escalation applies:
  /// legitimate users browse a tiny, popularity-skewed slice.
  double free_coverage = 0.01;
  /// Coverage at which the maximum escalation is reached.
  double max_coverage = 0.25;
  /// Multiplier applied to delays at max_coverage and beyond.
  double max_escalation = 100.0;
  /// HyperLogLog precision for per-principal distinct counting.
  int hll_precision = 12;
};

/// Extension of the paper's scheme: per-principal *coverage tracking*.
///
/// The paper assigns delay purely from tuple popularity, so an
/// adversary pays only because it must eventually fetch unpopular
/// tuples. This monitor adds a second, orthogonal signal: how much of
/// the keyspace a principal (identity or subnet) has already touched.
/// A principal whose distinct-tuple coverage looks extraction-shaped
/// has its delays escalated multiplicatively -- popular tuples stop
/// being cheap for someone who is clearly walking the whole relation.
/// Distinct counting uses a HyperLogLog sketch per principal, so
/// memory stays O(kilobytes) per principal regardless of N.
class CoverageMonitor {
 public:
  explicit CoverageMonitor(CoverageMonitorOptions options = {});

  /// Records that `principal` retrieved tuple `key`.
  void RecordAccess(IdentityId principal, int64_t key);

  /// Estimated distinct tuples `principal` has retrieved.
  double DistinctTuples(IdentityId principal) const;

  /// Coverage fraction given the relation size `n`.
  double Coverage(IdentityId principal, uint64_t n) const;

  /// Delay multiplier for `principal` against a relation of `n`
  /// tuples: 1.0 up to free_coverage, rising linearly (in coverage) to
  /// max_escalation at max_coverage.
  double EscalationFactor(IdentityId principal, uint64_t n) const;

  /// The pure escalation curve: multiplier for an exact `coverage`
  /// fraction, independent of any sketch. Exposed separately because
  /// the sketch's estimate carries ~1.6% standard error (precision
  /// 12), so edge behavior (exactly AT free_coverage / max_coverage)
  /// can only be pinned down on exact inputs. Always >= 1.0, even
  /// under misconfigured max_escalation < 1; a degenerate
  /// free_coverage == max_coverage config is a step function (1.0 at
  /// the edge, max_escalation above it).
  double EscalationForCoverage(double coverage) const;

  /// Drops a principal's history (e.g., session expiry).
  void Forget(IdentityId principal);

  size_t tracked_principals() const { return sketches_.size(); }
  const CoverageMonitorOptions& options() const { return options_; }

 private:
  CoverageMonitorOptions options_;
  std::unordered_map<IdentityId, HyperLogLog> sketches_;
};

}  // namespace tarpit

#endif  // TARPIT_DEFENSE_COVERAGE_MONITOR_H_
