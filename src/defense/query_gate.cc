#include "defense/query_gate.h"

namespace tarpit {

QueryGate::QueryGate(ProtectedDatabase* db, QueryGateOptions options)
    : db_(db),
      options_(options),
      reg_limiter_(options.registration_seconds_per_account,
                   options.registration_burst),
      coverage_monitor_(options.coverage) {}

double QueryGate::NowSeconds() const {
  return db_->clock()->NowSeconds();
}

Result<Identity> QueryGate::RegisterUser(uint32_t ipv4) {
  Result<Identity> id = reg_limiter_.Register(ipv4, NowSeconds());
  AuditRecord record;
  record.time_seconds = NowSeconds();
  record.ipv4 = ipv4;
  if (id.ok()) {
    record.event = AuditEvent::kRegistered;
    record.identity = id->id;
  } else {
    record.event = AuditEvent::kRegistrationDenied;
    record.magnitude = reg_limiter_.RetryAfter(NowSeconds());
  }
  audit_log_.Record(record);
  return id;
}

QueryGate::UserState& QueryGate::UserFor(IdentityId id) {
  auto it = users_.find(id);
  if (it == users_.end()) {
    it = users_
             .emplace(id,
                      UserState{TokenBucket(
                                    options_.per_user_queries_per_second,
                                    options_.per_user_burst),
                                0})
             .first;
  }
  return it->second;
}

TokenBucket& QueryGate::SubnetFor(uint32_t subnet) {
  auto it = subnets_.find(subnet);
  if (it == subnets_.end()) {
    it = subnets_
             .emplace(subnet,
                      TokenBucket(options_.per_subnet_queries_per_second,
                                  options_.per_subnet_burst))
             .first;
  }
  return it->second;
}

Result<ProtectedResult> QueryGate::ExecuteSql(const Identity& identity,
                                              const std::string& sql) {
  const double now = NowSeconds();
  UserState& user = UserFor(identity.id);
  AuditRecord record;
  record.time_seconds = now;
  record.identity = identity.id;
  record.ipv4 = identity.ipv4;
  if (options_.per_user_lifetime_query_limit > 0 &&
      user.lifetime_queries >= options_.per_user_lifetime_query_limit) {
    record.event = AuditEvent::kLifetimeCapHit;
    audit_log_.Record(record);
    return Status::PermissionDenied(
        "identity " + std::to_string(identity.id) +
        " exceeded its lifetime query limit");
  }
  // Check the subnet aggregate FIRST so a single Sybil cannot starve
  // its own subnet bucket of per-user tokens it failed to use.
  TokenBucket& subnet = SubnetFor(identity.Subnet24());
  if (!subnet.TryAcquire(now)) {
    record.event = AuditEvent::kRateLimitedSubnet;
    record.magnitude = subnet.RetryAfter(now);
    audit_log_.Record(record);
    return Status::RateLimited(
        "subnet " + Ipv4ToString(identity.Subnet24()) +
        "/24 rate limit; retry in " +
        std::to_string(subnet.RetryAfter(now)) + "s");
  }
  if (!user.bucket.TryAcquire(now)) {
    record.event = AuditEvent::kRateLimitedUser;
    record.magnitude = user.bucket.RetryAfter(now);
    audit_log_.Record(record);
    return Status::RateLimited(
        "identity " + std::to_string(identity.id) +
        " rate limit; retry in " +
        std::to_string(user.bucket.RetryAfter(now)) + "s");
  }
  ++user.lifetime_queries;

  // Coverage escalation uses the factor accrued *before* this query so
  // a first-time crossing is not penalized retroactively.
  double escalation = 1.0;
  uint64_t n = 0;
  if (options_.coverage_escalation) {
    n = db_->access_tracker()->universe_size();
    escalation = coverage_monitor_.EscalationFactor(identity.id, n);
  }
  Result<ProtectedResult> result = db_->ExecuteSql(sql);
  if (!result.ok()) return result;
  if (options_.coverage_escalation) {
    for (int64_t key : result->result.touched_keys) {
      coverage_monitor_.RecordAccess(identity.id, key);
    }
    if (escalation > 1.0 && result->delay_seconds > 0) {
      const double extra = (escalation - 1.0) * result->delay_seconds;
      if (!db_->options().defer_delay_sleep) {
        // Round up (see Clock::DelayToMicros): escalation surcharges
        // below 1 µs must still cost wall time.
        db_->clock()->SleepForSeconds(extra);
      }
      result->delay_seconds += extra;
      record.event = AuditEvent::kCoverageEscalated;
      record.magnitude = escalation;
      audit_log_.Record(record);
    }
  }
  record.event = AuditEvent::kQueryServed;
  record.magnitude = result->delay_seconds;
  audit_log_.Record(record);
  return result;
}

void QueryGate::ExecuteSqlAsync(const Identity& identity,
                                const std::string& sql,
                                DelayScheduler* scheduler,
                                AsyncCompletion done,
                                StallGroup session) {
  // Perimeter checks + compute + accounting run inline (the gate is
  // not thread-safe; this is the same admit path as ExecuteSql). Only
  // the stall moves off-thread: it parks on the wheel and `done` fires
  // on a dispatcher at expiry -- instantly under a VirtualClock, which
  // is how simulations drive the async perimeter on one timeline.
  Result<ProtectedResult> result = ExecuteSql(identity, sql);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  // When the database is configured to defer stall serving
  // (defer_delay_sleep), the whole charged delay is still owed; park
  // it. Otherwise the inner engine already slept and we owe nothing.
  const double park =
      db_->options().defer_delay_sleep ? result->delay_seconds : 0.0;
  auto shared = std::make_shared<Result<ProtectedResult>>(
      std::move(result));
  scheduler->Submit(
      park,
      [shared, done = std::move(done)](bool cancelled) {
        if (cancelled) {
          done(Status::Cancelled(
              "stall cancelled before expiry (session evicted or "
              "scheduler shut down)"));
        } else {
          done(std::move(*shared));
        }
      },
      session);
}

double QueryGate::RetryAfter(const Identity& identity) {
  const double now = NowSeconds();
  UserState& user = UserFor(identity.id);
  TokenBucket& subnet = SubnetFor(identity.Subnet24());
  return std::max(user.bucket.RetryAfter(now), subnet.RetryAfter(now));
}

uint64_t QueryGate::LifetimeQueries(IdentityId id) const {
  auto it = users_.find(id);
  return it == users_.end() ? 0 : it->second.lifetime_queries;
}

}  // namespace tarpit
