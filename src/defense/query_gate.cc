#include "defense/query_gate.h"

#include <algorithm>
#include <cmath>

namespace tarpit {

QueryGate::QueryGate(ProtectedDatabase* db, QueryGateOptions options)
    : db_(db),
      options_(options),
      reg_limiter_(options.registration_seconds_per_account,
                   options.registration_burst),
      coverage_monitor_(options.coverage),
      // The audit trail stamps from the database's clock so
      // virtual-clock simulations get reproducible timestamps.
      audit_log_(db->clock()) {
  audit_log_.BindMetrics(options_.metrics);
  if (options_.events != nullptr) {
    audit_log_.set_event_ring(options_.events);
  }
  if (options_.metrics != nullptr) {
    obs::MetricRegistry* m = options_.metrics;
    m_admits_ = m->GetCounter("tarpit_gate_admits_total");
    m_denied_lifetime_ = m->GetCounter("tarpit_gate_denials_total",
                                       {{"reason", "lifetime-cap"}});
    m_denied_subnet_ = m->GetCounter("tarpit_gate_denials_total",
                                     {{"reason", "subnet-rate"}});
    m_denied_user_ = m->GetCounter("tarpit_gate_denials_total",
                                   {{"reason", "user-rate"}});
    m_denied_overload_ = m->GetCounter("tarpit_gate_denials_total",
                                       {{"reason", "overload"}});
    m_registrations_ = m->GetCounter("tarpit_gate_registrations_total");
    m_reg_denied_ = m->GetCounter("tarpit_gate_denials_total",
                                  {{"reason", "registration"}});
    m_escalations_ =
        m->GetCounter("tarpit_gate_coverage_escalations_total");
    m_rep_escalations_ = m->GetCounter(
        "tarpit_reputation_escalations_total", {{"door", "serial"}});
    obs::HistogramOptions permille;
    permille.unit = "permille";
    // Factor 1.0 records as 1000, so quantiles read directly as
    // multipliers with 0.1% granularity.
    m_rep_factor_permille_ = m->GetHistogram(
        "tarpit_reputation_factor_permille", {{"door", "serial"}},
        permille);
    obs::HistogramOptions ns;
    ns.sub_bits = 11;
    ns.unit = "ns";
    const char* policy = DelayModeName(db_->options().mode);
    m_delay_legit_ns_ = m->GetHistogram(
        "tarpit_gate_delay_charged_ns",
        {{"policy", policy}, {"class", "legitimate"}}, ns);
    m_delay_flagged_ns_ = m->GetHistogram(
        "tarpit_gate_delay_charged_ns",
        {{"policy", policy}, {"class", "flagged"}}, ns);
  }
}

double QueryGate::NowSeconds() const {
  return db_->clock()->NowSeconds();
}

Result<Identity> QueryGate::RegisterUser(uint32_t ipv4) {
  Result<Identity> id = reg_limiter_.Register(ipv4, NowSeconds());
  AuditRecord record;
  record.time_seconds = NowSeconds();
  record.ipv4 = ipv4;
  if (id.ok()) {
    record.event = AuditEvent::kRegistered;
    record.identity = id->id;
    if (m_registrations_ != nullptr) m_registrations_->Increment();
  } else {
    record.event = AuditEvent::kRegistrationDenied;
    record.magnitude = reg_limiter_.RetryAfter(NowSeconds());
    if (m_reg_denied_ != nullptr) m_reg_denied_->Increment();
  }
  audit_log_.Record(record);
  return id;
}

QueryGate::UserState& QueryGate::UserFor(IdentityId id) {
  auto it = users_.find(id);
  if (it == users_.end()) {
    it = users_
             .emplace(id,
                      UserState{TokenBucket(
                                    options_.per_user_queries_per_second,
                                    options_.per_user_burst),
                                0})
             .first;
  }
  return it->second;
}

TokenBucket& QueryGate::SubnetFor(uint32_t subnet) {
  auto it = subnets_.find(subnet);
  if (it == subnets_.end()) {
    it = subnets_
             .emplace(subnet,
                      TokenBucket(options_.per_subnet_queries_per_second,
                                  options_.per_subnet_burst))
             .first;
  }
  return it->second;
}

Result<ProtectedResult> QueryGate::ExecuteSql(const Identity& identity,
                                              const std::string& sql) {
  const double now = NowSeconds();
  UserState& user = UserFor(identity.id);
  AuditRecord record;
  record.time_seconds = now;
  record.identity = identity.id;
  record.ipv4 = identity.ipv4;
  if (options_.per_user_lifetime_query_limit > 0 &&
      user.lifetime_queries >= options_.per_user_lifetime_query_limit) {
    record.event = AuditEvent::kLifetimeCapHit;
    audit_log_.Record(record);
    if (m_denied_lifetime_ != nullptr) m_denied_lifetime_->Increment();
    // A tripped lifetime cap is the strongest perimeter signal there
    // is -- the storefront defense only fires on extraction-scale use.
    if (options_.risk != nullptr) {
      options_.risk->ObserveSignal(identity.id, 3.0, now);
    }
    return Status::PermissionDenied(
        "identity " + std::to_string(identity.id) +
        " exceeded its lifetime query limit");
  }
  // Check the subnet aggregate FIRST so a single Sybil cannot starve
  // its own subnet bucket of per-user tokens it failed to use.
  TokenBucket& subnet = SubnetFor(identity.Subnet24());
  if (!subnet.TryAcquire(now)) {
    record.event = AuditEvent::kRateLimitedSubnet;
    record.magnitude = subnet.RetryAfter(now);
    audit_log_.Record(record);
    if (m_denied_subnet_ != nullptr) m_denied_subnet_->Increment();
    if (options_.reputation != nullptr) {
      options_.reputation->RecordSignal(identity.id, identity.Subnet24(),
                                        now,
                                        ReputationSignal::kRateAnomaly);
    }
    if (options_.risk != nullptr) {
      options_.risk->ObserveSignal(identity.id, 1.0, now);
    }
    return Status::RateLimited(
        "subnet " + Ipv4ToString(identity.Subnet24()) +
        "/24 rate limit; retry in " +
        std::to_string(subnet.RetryAfter(now)) + "s");
  }
  if (!user.bucket.TryAcquire(now)) {
    record.event = AuditEvent::kRateLimitedUser;
    record.magnitude = user.bucket.RetryAfter(now);
    audit_log_.Record(record);
    if (m_denied_user_ != nullptr) m_denied_user_->Increment();
    if (options_.reputation != nullptr) {
      options_.reputation->RecordSignal(identity.id, identity.Subnet24(),
                                        now,
                                        ReputationSignal::kRateAnomaly);
    }
    if (options_.risk != nullptr) {
      options_.risk->ObserveSignal(identity.id, 1.0, now);
    }
    return Status::RateLimited(
        "identity " + std::to_string(identity.id) +
        " rate limit; retry in " +
        std::to_string(user.bucket.RetryAfter(now)) + "s");
  }
  ++user.lifetime_queries;
  if (m_admits_ != nullptr) m_admits_->Increment();

  // Coverage escalation uses the factor accrued *before* this query so
  // a first-time crossing is not penalized retroactively.
  double escalation = 1.0;
  uint64_t n = 0;
  if (options_.coverage_escalation) {
    n = db_->access_tracker()->universe_size();
    escalation = coverage_monitor_.EscalationFactor(identity.id, n);
  }
  // Reputation uses the factor accrued before this query too: the
  // penalty earned *by* this query lands on the next one.
  double rep_factor = 1.0;
  if (options_.reputation != nullptr) {
    rep_factor = std::max(
        1.0, options_.reputation->PenaltyFactor(
                 identity.id, identity.Subnet24(), now));
  }
  Result<ProtectedResult> result = db_->ExecuteSql(sql);
  if (!result.ok()) return result;
  if (options_.coverage_escalation) {
    for (int64_t key : result->result.touched_keys) {
      coverage_monitor_.RecordAccess(identity.id, key);
    }
    if (escalation > 1.0 && result->delay_seconds > 0) {
      const double extra = (escalation - 1.0) * result->delay_seconds;
      if (!db_->options().defer_delay_sleep) {
        // Round up (see Clock::DelayToMicros): escalation surcharges
        // below 1 µs must still cost wall time.
        db_->clock()->SleepForSeconds(extra);
      }
      result->delay_seconds += extra;
      record.event = AuditEvent::kCoverageEscalated;
      record.magnitude = escalation;
      audit_log_.Record(record);
      if (m_escalations_ != nullptr) m_escalations_->Increment();
    }
  }
  if (options_.reputation != nullptr) {
    ReputationStore* rep = options_.reputation;
    // Every served tuple feeds the store's breadth learning (HLL per
    // identity AND per subnet -- the subnet sketch is what identity
    // churn cannot shed).
    const uint64_t universe = db_->access_tracker()->universe_size();
    for (int64_t key : result->result.touched_keys) {
      rep->ObserveAccess(identity.id, identity.Subnet24(), key, universe,
                         now);
    }
    // A coverage-monitor escalation is itself an extraction signal.
    if (escalation > 1.0) {
      rep->RecordSignal(identity.id, identity.Subnet24(), now,
                        ReputationSignal::kExternal);
    }
    if (m_rep_factor_permille_ != nullptr) {
      m_rep_factor_permille_->Record(
          static_cast<int64_t>(std::llround(rep_factor * 1000.0)));
    }
    if (rep_factor > 1.0 && result->delay_seconds > 0) {
      const double extra = (rep_factor - 1.0) * result->delay_seconds;
      if (!db_->options().defer_delay_sleep) {
        db_->clock()->SleepForSeconds(extra);
      }
      result->delay_seconds += extra;
      record.event = AuditEvent::kReputationEscalated;
      record.magnitude = rep_factor;
      audit_log_.Record(record);
      if (m_rep_escalations_ != nullptr) m_rep_escalations_->Increment();
    }
  }
  if (options_.risk != nullptr) {
    obs::RiskScorer* risk = options_.risk;
    for (int64_t key : result->result.touched_keys) {
      risk->ObserveQuery(identity.id, key, now);
    }
    // Multi-tuple statements are the volume-inference fingerprint
    // (wide range probes reconstruct the dataset fastest); single-key
    // point reads are not probes.
    if (result->result.touched_keys.size() > 1) {
      risk->ObserveRangeProbe(identity.id,
                              result->result.touched_keys.size(), now);
    }
    if (escalation > 1.0) risk->ObserveSignal(identity.id, 2.0, now);
    if (rep_factor > 1.0) risk->ObserveSignal(identity.id, 2.0, now);
  }
  // Per-class delay accounting: an identity the coverage monitor or
  // reputation store has escalated is "flagged"; everyone else is
  // "legitimate". The split is what lets a dashboard confirm the
  // defense's core promise -- extraction-shaped traffic pays, normal
  // traffic doesn't.
  obs::Histogram* delay_hist =
      (escalation > 1.0 || rep_factor > 1.0) ? m_delay_flagged_ns_
                                             : m_delay_legit_ns_;
  if (delay_hist != nullptr) {
    delay_hist->Record(obs::NanosFromSeconds(result->delay_seconds));
  }
  record.event = AuditEvent::kQueryServed;
  record.magnitude = result->delay_seconds;
  audit_log_.Record(record);
  return result;
}

void QueryGate::ExecuteSqlAsync(const Identity& identity,
                                const std::string& sql,
                                DelayScheduler* scheduler,
                                AsyncCompletion done,
                                StallGroup session) {
  // Perimeter checks + compute + accounting run inline (the gate is
  // not thread-safe; this is the same admit path as ExecuteSql). Only
  // the stall moves off-thread: it parks on the wheel and `done` fires
  // on a dispatcher at expiry -- instantly under a VirtualClock, which
  // is how simulations drive the async perimeter on one timeline.
  Result<ProtectedResult> result = ExecuteSql(identity, sql);
  if (!result.ok()) {
    done(std::move(result));
    return;
  }
  // When the database is configured to defer stall serving
  // (defer_delay_sleep), the whole charged delay is still owed; park
  // it. Otherwise the inner engine already slept and we owe nothing.
  const double park =
      db_->options().defer_delay_sleep ? result->delay_seconds : 0.0;
  ResourceGovernor* gov = options_.governor;
  if (gov != nullptr) {
    Status admit = gov->AdmitStall(0);
    if (!admit.ok()) {
      // Shed before park. The delay -- including any coverage or
      // reputation surcharge -- is already charged and the served
      // tuples already fed breadth learning, so the suspect's penalty
      // sticks; only the wheel slot (and the tuple) is refused.
      AuditRecord record;
      record.event = AuditEvent::kOverloadShed;
      record.identity = identity.id;
      record.ipv4 = identity.ipv4;
      record.magnitude = result->delay_seconds;
      audit_log_.Record(record);
      if (m_denied_overload_ != nullptr) m_denied_overload_->Increment();
      if (options_.risk != nullptr) {
        options_.risk->ObserveSignal(identity.id, 1.0, NowSeconds());
      }
      done(std::move(admit));
      return;
    }
  }
  auto shared = std::make_shared<Result<ProtectedResult>>(
      std::move(result));
  scheduler->Submit(
      park,
      [gov, shared, done = std::move(done)](bool cancelled) {
        if (gov != nullptr) gov->ReleaseStall(0);
        if (cancelled) {
          done(Status::Cancelled(
              "stall cancelled before expiry (session evicted or "
              "scheduler shut down)"));
        } else {
          done(std::move(*shared));
        }
      },
      session);
}

double QueryGate::RetryAfter(const Identity& identity) {
  const double now = NowSeconds();
  UserState& user = UserFor(identity.id);
  TokenBucket& subnet = SubnetFor(identity.Subnet24());
  return std::max(user.bucket.RetryAfter(now), subnet.RetryAfter(now));
}

uint64_t QueryGate::LifetimeQueries(IdentityId id) const {
  auto it = users_.find(id);
  return it == users_.end() ? 0 : it->second.lifetime_queries;
}

}  // namespace tarpit
