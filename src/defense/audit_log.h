#ifndef TARPIT_DEFENSE_AUDIT_LOG_H_
#define TARPIT_DEFENSE_AUDIT_LOG_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "common/clock.h"
#include "defense/identity.h"
#include "obs/event_ring.h"
#include "obs/metrics.h"

namespace tarpit {

/// What happened at the perimeter.
enum class AuditEvent : uint8_t {
  kRegistered,
  kRegistrationDenied,
  kQueryServed,
  kRateLimitedUser,
  kRateLimitedSubnet,
  kLifetimeCapHit,
  kCoverageEscalated,
  kReputationEscalated,
  /// The resource governor refused to park this request's stall
  /// (overload shed). The delay was still charged -- magnitude is the
  /// charged-but-unserved delay in seconds.
  kOverloadShed,
};

std::string AuditEventName(AuditEvent event);

struct AuditRecord {
  /// Stamped by AuditLog::Record from the injected clock when the log
  /// was constructed with one; otherwise the emitter's value is kept.
  double time_seconds = 0;
  AuditEvent event = AuditEvent::kQueryServed;
  IdentityId identity = 0;
  uint32_t ipv4 = 0;
  /// Event-specific magnitude: delay served, escalation factor,
  /// retry-after seconds -- see the emitting site.
  double magnitude = 0;
};

/// Bounded in-memory audit trail of perimeter decisions. Extraction
/// attempts announce themselves long before they finish: a stream of
/// rate-limit denials and coverage escalations against one identity or
/// subnet is the operator's early warning, so the gate records every
/// decision here for inspection and alerting.
class AuditLog {
 public:
  explicit AuditLog(size_t capacity = 4096) : capacity_(capacity) {}

  /// Timestamps every record from `clock` (which must outlive the
  /// log). Records once stamped wall-clock time at the emitting sites,
  /// which made virtual-clock simulation runs irreproducible -- the
  /// same trace produced different audit timestamps on every run.
  /// Routing through the injected clock keeps the audit trail on the
  /// simulation's timeline.
  explicit AuditLog(const Clock* clock, size_t capacity = 4096)
      : capacity_(capacity), clock_(clock) {}

  /// Appends one record; stamps `record.time_seconds` from the
  /// attached clock when one was injected. Records evicted by the
  /// capacity bound are counted (tarpit_audit_dropped_total once
  /// BindMetrics ran) and, when an event ring is attached, survive
  /// there in binary form.
  void Record(AuditRecord record);

  /// Publishes tarpit_audit_dropped_total to `metrics` (which must
  /// outlive the log).
  void BindMetrics(obs::MetricRegistry* metrics);

  /// Mirrors every record into `ring` (which must outlive the log) as
  /// a structured DefenseEvent -- the forensic successor to this
  /// string log. The ring's window is independent of this log's
  /// capacity, so evictions here lose nothing there.
  void set_event_ring(obs::DefenseEventRing* ring) { ring_ = ring; }

  /// Records evicted by the capacity bound since construction.
  uint64_t dropped_total() const { return dropped_total_; }

  /// Iterates records oldest-first; `fn` returns false to stop.
  void ForEach(const std::function<bool(const AuditRecord&)>& fn) const;

  /// Count of records matching `event` currently retained.
  uint64_t CountOf(AuditEvent event) const;

  /// Count of retained records attributed to `identity`.
  uint64_t CountForIdentity(IdentityId identity) const;

  size_t size() const { return records_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t total_recorded() const { return total_recorded_; }

 private:
  size_t capacity_;
  const Clock* clock_ = nullptr;
  std::deque<AuditRecord> records_;
  uint64_t total_recorded_ = 0;
  uint64_t dropped_total_ = 0;
  obs::DefenseEventRing* ring_ = nullptr;
  obs::Counter* m_dropped_ = nullptr;
};

}  // namespace tarpit

#endif  // TARPIT_DEFENSE_AUDIT_LOG_H_
