#include "defense/reputation.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tarpit {

namespace {

// Mixes an identity id into a shard index (splitmix64 finalizer, same
// mixer the buffer pool uses -- sequential ids spread evenly).
uint64_t MixId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* ReputationSignalName(ReputationSignal signal) {
  switch (signal) {
    case ReputationSignal::kBreadth:
      return "breadth";
    case ReputationSignal::kRateAnomaly:
      return "rate_anomaly";
    case ReputationSignal::kExternal:
      return "external";
  }
  return "unknown";
}

ReputationStore::ReputationStore(ReputationOptions options)
    : options_(options) {
  options_.growth = std::max(1.0, options_.growth);
  options_.subnet_growth = std::max(1.0, options_.subnet_growth);
  options_.max_penalty = std::max(1.0, options_.max_penalty);
  options_.max_subnet_penalty = std::max(1.0, options_.max_subnet_penalty);
  options_.half_life_seconds = std::max(1e-9, options_.half_life_seconds);
  options_.breadth_signal_stride =
      std::max(1e-9, options_.breadth_signal_stride);
  options_.max_identities_per_shard =
      std::max<size_t>(1, options_.max_identities_per_shard);
  log_growth_ = std::log(options_.growth);
  log_subnet_growth_ = std::log(options_.subnet_growth);
  max_log_penalty_ = std::log(options_.max_penalty);
  max_log_subnet_penalty_ = std::log(options_.max_subnet_penalty);

  size_t shards = RoundUpPow2(std::max<size_t>(1, options_.shards));
  identity_shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    identity_shards_.push_back(std::make_unique<Shard>());
  }

  if (options_.metrics != nullptr) {
    obs::MetricRegistry* r = options_.metrics;
    m_signals_breadth_ =
        r->GetCounter("tarpit_reputation_signals_total",
                      {{"source", "breadth"}});
    m_signals_rate_ =
        r->GetCounter("tarpit_reputation_signals_total",
                      {{"source", "rate_anomaly"}});
    m_signals_external_ =
        r->GetCounter("tarpit_reputation_signals_total",
                      {{"source", "external"}});
    m_evictions_ = r->GetCounter("tarpit_reputation_evictions_total");
    m_tracked_identities_ =
        r->GetGauge("tarpit_reputation_tracked_principals",
                    {{"scope", "identity"}});
    m_tracked_subnets_ =
        r->GetGauge("tarpit_reputation_tracked_principals",
                    {{"scope", "subnet24"}});
  }
}

ReputationStore::Shard& ReputationStore::IdentityShard(
    uint64_t identity) const {
  size_t mask = identity_shards_.size() - 1;
  return *identity_shards_[MixId(identity) & mask];
}

void ReputationStore::Decay(Entry* entry, double now_seconds) const {
  if (entry->log_penalty <= 0.0) {
    entry->decay_stamp_seconds = now_seconds;
    return;
  }
  double dt = now_seconds - entry->decay_stamp_seconds;
  if (dt > 0.0) {
    entry->log_penalty *= std::exp2(-dt / options_.half_life_seconds);
    if (entry->log_penalty < options_.baseline_epsilon) {
      entry->log_penalty = 0.0;  // Snap: fully back to baseline.
    }
  }
  entry->decay_stamp_seconds = now_seconds;
}

void ReputationStore::Bump(Entry* entry, double log_growth,
                           double strength, double max_log,
                           double now_seconds) {
  Decay(entry, now_seconds);
  entry->log_penalty =
      std::min(max_log, entry->log_penalty + log_growth * strength);
}

uint64_t ReputationStore::ObserveEntry(Entry* entry, int64_t key,
                                       uint64_t universe_n,
                                       double now_seconds,
                                       double log_growth,
                                       double max_log) {
  uint64_t fired = 0;

  // Breadth: one signal per stride of coverage past the free fraction.
  if (universe_n > 0) {
    if (entry->breadth == nullptr) {
      entry->breadth =
          std::make_unique<HyperLogLog>(options_.hll_precision);
    }
    entry->breadth->Add(key);
    double coverage =
        entry->breadth->Estimate() / static_cast<double>(universe_n);
    double past_free = coverage - options_.breadth_free_fraction;
    if (past_free > 0.0) {
      uint64_t due = static_cast<uint64_t>(
          past_free / options_.breadth_signal_stride);
      if (due > entry->breadth_signals) {
        uint64_t n = due - entry->breadth_signals;
        entry->breadth_signals = due;
        Bump(entry, log_growth, static_cast<double>(n), max_log,
             now_seconds);
        fired += n;
        CountSignal(ReputationSignal::kBreadth, n);
      }
    }
  }

  // Rate: at most one signal per window, once the window's count
  // implies a sustained rate above the threshold.
  if (options_.rate_threshold_per_second > 0.0) {
    if (now_seconds - entry->window_start_seconds >=
        options_.rate_window_seconds) {
      entry->window_start_seconds = now_seconds;
      entry->window_count = 0;
      entry->window_signaled = false;
    }
    entry->window_count++;
    double implied_rate = static_cast<double>(entry->window_count) /
                          options_.rate_window_seconds;
    if (!entry->window_signaled &&
        implied_rate > options_.rate_threshold_per_second) {
      entry->window_signaled = true;
      Bump(entry, log_growth, 1.0, max_log, now_seconds);
      fired += 1;
      CountSignal(ReputationSignal::kRateAnomaly);
    }
  }

  if (fired == 0) {
    // Pure benign observation: just advance decay.
    Decay(entry, now_seconds);
  }
  return fired;
}

void ReputationStore::EnforceShardBudget(Shard* shard) {
  while (shard->entries.size() > options_.max_identities_per_shard) {
    auto victim = shard->entries.end();
    double lowest = std::numeric_limits<double>::infinity();
    for (auto it = shard->entries.begin(); it != shard->entries.end();
         ++it) {
      if (it->second.log_penalty < lowest) {
        lowest = it->second.log_penalty;
        victim = it;
      }
    }
    if (victim == shard->entries.end()) break;
    shard->entries.erase(victim);
    identity_count_.fetch_sub(1, std::memory_order_relaxed);
    if (m_evictions_ != nullptr) m_evictions_->Increment();
  }
}

double ReputationStore::PenaltyFactor(uint64_t identity,
                                      uint32_t subnet24,
                                      double now_seconds) const {
  double log_id = 0.0;
  {
    Shard& shard = IdentityShard(identity);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(identity);
    if (it != shard.entries.end()) {
      Decay(&it->second, now_seconds);
      log_id = it->second.log_penalty;
    }
  }
  double log_subnet = 0.0;
  {
    std::lock_guard<std::mutex> lock(subnet_mu_);
    auto it = subnets_.find(subnet24);
    if (it != subnets_.end()) {
      Decay(&it->second, now_seconds);
      log_subnet = it->second.log_penalty;
    }
  }
  double log_max = std::max(0.0, std::max(log_id, log_subnet));
  return std::exp(log_max);
}

void ReputationStore::ObserveAccess(uint64_t identity, uint32_t subnet24,
                                    int64_t key, uint64_t universe_n,
                                    double now_seconds) {
  {
    Shard& shard = IdentityShard(identity);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.entries.try_emplace(identity);
    if (inserted) {
      identity_count_.fetch_add(1, std::memory_order_relaxed);
    }
    ObserveEntry(&it->second, key, universe_n, now_seconds, log_growth_,
                 max_log_penalty_);
    EnforceShardBudget(&shard);
    if (m_tracked_identities_ != nullptr) {
      m_tracked_identities_->Set(
          static_cast<int64_t>(tracked_identities()));
    }
  }
  {
    std::lock_guard<std::mutex> lock(subnet_mu_);
    Entry& entry = subnets_[subnet24];
    ObserveEntry(&entry, key, universe_n, now_seconds,
                 log_subnet_growth_, max_log_subnet_penalty_);
    if (m_tracked_subnets_ != nullptr) {
      m_tracked_subnets_->Set(static_cast<int64_t>(subnets_.size()));
    }
  }
}

void ReputationStore::RecordSignal(uint64_t identity, uint32_t subnet24,
                                   double now_seconds,
                                   ReputationSignal source,
                                   double strength) {
  if (strength <= 0.0) return;
  {
    Shard& shard = IdentityShard(identity);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.entries.try_emplace(identity);
    if (inserted) {
      identity_count_.fetch_add(1, std::memory_order_relaxed);
    }
    Bump(&it->second, log_growth_, strength, max_log_penalty_,
         now_seconds);
    EnforceShardBudget(&shard);
    if (m_tracked_identities_ != nullptr) {
      m_tracked_identities_->Set(
          static_cast<int64_t>(tracked_identities()));
    }
  }
  {
    std::lock_guard<std::mutex> lock(subnet_mu_);
    Entry& entry = subnets_[subnet24];
    Bump(&entry, log_subnet_growth_, strength, max_log_subnet_penalty_,
         now_seconds);
    if (m_tracked_subnets_ != nullptr) {
      m_tracked_subnets_->Set(static_cast<int64_t>(subnets_.size()));
    }
  }
  CountSignal(source);
}

void ReputationStore::RecordBenign(uint64_t identity, uint32_t subnet24,
                                   double now_seconds) {
  {
    Shard& shard = IdentityShard(identity);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(identity);
    if (it != shard.entries.end()) Decay(&it->second, now_seconds);
  }
  {
    std::lock_guard<std::mutex> lock(subnet_mu_);
    auto it = subnets_.find(subnet24);
    if (it != subnets_.end()) Decay(&it->second, now_seconds);
  }
}

double ReputationStore::IdentityPenalty(uint64_t identity,
                                        double now_seconds) const {
  Shard& shard = IdentityShard(identity);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(identity);
  if (it == shard.entries.end()) return 1.0;
  Decay(&it->second, now_seconds);
  return std::exp(std::max(0.0, it->second.log_penalty));
}

double ReputationStore::SubnetPenalty(uint32_t subnet24,
                                      double now_seconds) const {
  std::lock_guard<std::mutex> lock(subnet_mu_);
  auto it = subnets_.find(subnet24);
  if (it == subnets_.end()) return 1.0;
  Decay(&it->second, now_seconds);
  return std::exp(std::max(0.0, it->second.log_penalty));
}

void ReputationStore::ForgetIdentity(uint64_t identity) {
  Shard& shard = IdentityShard(identity);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.erase(identity) > 0) {
    identity_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ReputationStore::ForgetSubnet(uint32_t subnet24) {
  std::lock_guard<std::mutex> lock(subnet_mu_);
  subnets_.erase(subnet24);
}

size_t ReputationStore::tracked_identities() const {
  return identity_count_.load(std::memory_order_relaxed);
}

size_t ReputationStore::tracked_subnets() const {
  std::lock_guard<std::mutex> lock(subnet_mu_);
  return subnets_.size();
}

uint64_t ReputationStore::signals_total() const {
  return signal_count_.load(std::memory_order_relaxed);
}

void ReputationStore::CountSignal(ReputationSignal source, uint64_t n) {
  signal_count_.fetch_add(n, std::memory_order_relaxed);
  obs::Counter* c = nullptr;
  switch (source) {
    case ReputationSignal::kBreadth:
      c = m_signals_breadth_;
      break;
    case ReputationSignal::kRateAnomaly:
      c = m_signals_rate_;
      break;
    case ReputationSignal::kExternal:
      c = m_signals_external_;
      break;
  }
  if (c != nullptr) c->Increment(static_cast<int64_t>(n));
}

ReputationDelayPolicy::ReputationDelayPolicy(const DelayPolicy* base,
                                             const ReputationStore* store)
    : base_(base), store_(store) {}

double ReputationDelayPolicy::DelayFor(int64_t key) const {
  return base_ != nullptr ? base_->DelayFor(key) : 0.0;
}

std::string ReputationDelayPolicy::name() const {
  std::string inner = base_ != nullptr ? base_->name() : "none";
  return "reputation(" + inner + ")";
}

double ReputationDelayPolicy::DelayForPrincipal(int64_t key,
                                                uint64_t identity,
                                                uint32_t subnet24,
                                                double now_seconds) const {
  return Compose(DelayFor(key), identity, subnet24, now_seconds);
}

double ReputationDelayPolicy::Compose(double base_delay_seconds,
                                      uint64_t identity,
                                      uint32_t subnet24,
                                      double now_seconds) const {
  if (store_ == nullptr || base_delay_seconds <= 0.0) {
    return base_delay_seconds;
  }
  double factor =
      std::max(1.0, store_->PenaltyFactor(identity, subnet24, now_seconds));
  return base_delay_seconds * factor;
}

}  // namespace tarpit
