#include "defense/session_manager.h"

#include <vector>

namespace tarpit {

SessionManager::SessionManager(SessionOptions options, uint64_t seed)
    : options_(options), rng_(seed) {}

Result<SessionToken> SessionManager::Login(const Identity& identity,
                                           double now_seconds) {
  uint32_t& count = per_identity_[identity.id];
  if (options_.max_sessions_per_identity > 0 &&
      count >= options_.max_sessions_per_identity) {
    return Status::ResourceExhausted(
        "identity " + std::to_string(identity.id) + " already has " +
        std::to_string(count) + " sessions");
  }
  SessionToken token;
  do {
    token = rng_.Next();
  } while (token == 0 || sessions_.count(token));
  sessions_[token] = Session{identity.id, now_seconds};
  ++count;
  return token;
}

Result<IdentityId> SessionManager::Validate(SessionToken token,
                                            double now_seconds) {
  auto it = sessions_.find(token);
  if (it == sessions_.end()) {
    return Status::PermissionDenied("unknown session token");
  }
  if (now_seconds - it->second.last_active_seconds >
      options_.ttl_seconds) {
    const IdentityId id = it->second.identity;
    sessions_.erase(it);
    if (--per_identity_[id] == 0) per_identity_.erase(id);
    if (eviction_hook_) eviction_hook_(token, id);
    return Status::PermissionDenied("session expired");
  }
  it->second.last_active_seconds = now_seconds;
  return it->second.identity;
}

void SessionManager::Logout(SessionToken token) {
  auto it = sessions_.find(token);
  if (it == sessions_.end()) return;
  const IdentityId id = it->second.identity;
  sessions_.erase(it);
  auto pit = per_identity_.find(id);
  if (pit != per_identity_.end() && --pit->second == 0) {
    per_identity_.erase(pit);
  }
  if (eviction_hook_) eviction_hook_(token, id);
}

size_t SessionManager::ExpireStale(double now_seconds) {
  std::vector<SessionToken> dead;
  for (const auto& [token, session] : sessions_) {
    if (now_seconds - session.last_active_seconds >
        options_.ttl_seconds) {
      dead.push_back(token);
    }
  }
  for (SessionToken token : dead) Logout(token);
  return dead.size();
}

uint32_t SessionManager::SessionsOf(IdentityId id) const {
  auto it = per_identity_.find(id);
  return it == per_identity_.end() ? 0 : it->second;
}

}  // namespace tarpit
