#include "defense/session_manager.h"

#include <vector>

namespace tarpit {

SessionManager::SessionManager(SessionOptions options, uint64_t seed)
    : options_(options), rng_(seed) {
  if (options_.metrics != nullptr) {
    obs::MetricRegistry* m = options_.metrics;
    m_active_ = m->GetGauge("tarpit_sessions_active");
    m_logins_ = m->GetCounter("tarpit_session_logins_total");
    m_evict_logout_ = m->GetCounter("tarpit_session_evictions_total",
                                    {{"reason", "logout"}});
    m_evict_ttl_ = m->GetCounter("tarpit_session_evictions_total",
                                 {{"reason", "ttl"}});
  }
}

Result<SessionToken> SessionManager::Login(const Identity& identity,
                                           double now_seconds) {
  uint32_t& count = per_identity_[identity.id];
  if (options_.max_sessions_per_identity > 0 &&
      count >= options_.max_sessions_per_identity) {
    return Status::ResourceExhausted(
        "identity " + std::to_string(identity.id) + " already has " +
        std::to_string(count) + " sessions");
  }
  SessionToken token;
  do {
    token = rng_.Next();
  } while (token == 0 || sessions_.count(token));
  sessions_[token] = Session{identity.id, now_seconds};
  ++count;
  if (m_logins_ != nullptr) m_logins_->Increment();
  if (m_active_ != nullptr) {
    m_active_->Set(static_cast<int64_t>(sessions_.size()));
  }
  return token;
}

Result<IdentityId> SessionManager::Validate(SessionToken token,
                                            double now_seconds) {
  auto it = sessions_.find(token);
  if (it == sessions_.end()) {
    return Status::PermissionDenied("unknown session token");
  }
  if (now_seconds - it->second.last_active_seconds >
      options_.ttl_seconds) {
    RemoveSession(token, m_evict_ttl_);
    return Status::PermissionDenied("session expired");
  }
  it->second.last_active_seconds = now_seconds;
  return it->second.identity;
}

void SessionManager::RemoveSession(SessionToken token,
                                   obs::Counter* reason_counter) {
  auto it = sessions_.find(token);
  if (it == sessions_.end()) return;
  const IdentityId id = it->second.identity;
  sessions_.erase(it);
  auto pit = per_identity_.find(id);
  if (pit != per_identity_.end() && --pit->second == 0) {
    per_identity_.erase(pit);
  }
  if (reason_counter != nullptr) reason_counter->Increment();
  if (m_active_ != nullptr) {
    m_active_->Set(static_cast<int64_t>(sessions_.size()));
  }
  if (eviction_hook_) eviction_hook_(token, id);
}

void SessionManager::Logout(SessionToken token) {
  RemoveSession(token, m_evict_logout_);
}

size_t SessionManager::ExpireStale(double now_seconds) {
  std::vector<SessionToken> dead;
  for (const auto& [token, session] : sessions_) {
    if (now_seconds - session.last_active_seconds >
        options_.ttl_seconds) {
      dead.push_back(token);
    }
  }
  for (SessionToken token : dead) RemoveSession(token, m_evict_ttl_);
  return dead.size();
}

uint32_t SessionManager::SessionsOf(IdentityId id) const {
  auto it = per_identity_.find(id);
  return it == per_identity_.end() ? 0 : it->second;
}

}  // namespace tarpit
