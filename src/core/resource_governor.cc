#include "core/resource_governor.h"

namespace tarpit {

ResourceGovernor::ResourceGovernor(ResourceGovernorOptions options)
    : options_(options) {
  if (options_.metrics != nullptr) {
    obs::MetricRegistry* m = options_.metrics;
    m_parked_stalls_ = m->GetGauge("tarpit_governor_parked_stalls");
    m_parked_bytes_ = m->GetGauge("tarpit_governor_parked_bytes");
    m_peak_parked_stalls_ =
        m->GetGauge("tarpit_governor_peak_parked_stalls");
    m_admitted_ = m->GetCounter("tarpit_governor_admitted_total");
  }
}

void ResourceGovernor::CountShed(const char* reason) {
  // mu_ held by callers.
  ++shed_total_;
  if (options_.metrics != nullptr) {
    options_.metrics
        ->GetCounter("tarpit_governor_shed_total", {{"reason", reason}})
        ->Increment();
  }
}

Status ResourceGovernor::AdmitStall(uint64_t bytes) {
  const uint64_t b = EffectiveBytes(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_parked_stalls != 0 &&
      parked_stalls_ >= options_.max_parked_stalls) {
    CountShed("parked_stalls");
    return Status::Overloaded(
        "parked-stall budget exhausted (" +
        std::to_string(options_.max_parked_stalls) + " stalls)");
  }
  if (options_.max_parked_bytes != 0 &&
      parked_bytes_ + b > options_.max_parked_bytes) {
    CountShed("parked_bytes");
    return Status::Overloaded(
        "parked-stall memory budget exhausted (" +
        std::to_string(options_.max_parked_bytes) + " bytes)");
  }
  ++parked_stalls_;
  parked_bytes_ += b;
  ++admitted_total_;
  if (parked_stalls_ > peak_parked_stalls_) {
    peak_parked_stalls_ = parked_stalls_;
    if (m_peak_parked_stalls_ != nullptr) {
      m_peak_parked_stalls_->Set(
          static_cast<int64_t>(peak_parked_stalls_));
    }
  }
  if (parked_bytes_ > peak_parked_bytes_) peak_parked_bytes_ = parked_bytes_;
  if (m_parked_stalls_ != nullptr) {
    m_parked_stalls_->Set(static_cast<int64_t>(parked_stalls_));
  }
  if (m_parked_bytes_ != nullptr) {
    m_parked_bytes_->Set(static_cast<int64_t>(parked_bytes_));
  }
  if (m_admitted_ != nullptr) m_admitted_->Increment();
  return Status::OK();
}

void ResourceGovernor::ReleaseStall(uint64_t bytes) {
  const uint64_t b = EffectiveBytes(bytes);
  std::lock_guard<std::mutex> lock(mu_);
  parked_stalls_ = parked_stalls_ > 0 ? parked_stalls_ - 1 : 0;
  parked_bytes_ = parked_bytes_ > b ? parked_bytes_ - b : 0;
  if (m_parked_stalls_ != nullptr) {
    m_parked_stalls_->Set(static_cast<int64_t>(parked_stalls_));
  }
  if (m_parked_bytes_ != nullptr) {
    m_parked_bytes_->Set(static_cast<int64_t>(parked_bytes_));
  }
}

Status ResourceGovernor::CheckWrite(uint64_t wal_backlog_bytes,
                                    uint64_t live_versions) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.max_wal_backlog_bytes != 0 &&
      wal_backlog_bytes > options_.max_wal_backlog_bytes) {
    CountShed("wal_backlog");
    return Status::Overloaded(
        "wal backlog " + std::to_string(wal_backlog_bytes) +
        " bytes over budget (" +
        std::to_string(options_.max_wal_backlog_bytes) + ")");
  }
  if (options_.max_live_versions != 0 &&
      live_versions > options_.max_live_versions) {
    CountShed("live_versions");
    return Status::Overloaded(
        "version store " + std::to_string(live_versions) +
        " live versions over budget (" +
        std::to_string(options_.max_live_versions) + ")");
  }
  return Status::OK();
}

uint64_t ResourceGovernor::parked_stalls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_stalls_;
}

uint64_t ResourceGovernor::parked_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_bytes_;
}

uint64_t ResourceGovernor::peak_parked_stalls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_parked_stalls_;
}

uint64_t ResourceGovernor::peak_parked_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_parked_bytes_;
}

uint64_t ResourceGovernor::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_total_;
}

uint64_t ResourceGovernor::shed_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_total_;
}

}  // namespace tarpit
