#include "core/update_delay.h"

namespace tarpit {

UpdateDelayPolicy::UpdateDelayPolicy(const UpdateTracker* tracker,
                                     UpdateDelayParams params)
    : tracker_(tracker), params_(params) {}

double UpdateDelayPolicy::DelayForRate(double updates_per_second) const {
  if (updates_per_second <= 0.0) return params_.bounds.max_seconds;
  return params_.bounds.Apply(
      params_.c /
      (static_cast<double>(params_.n) * updates_per_second));
}

double UpdateDelayPolicy::DelayFor(int64_t key) const {
  return DelayForWindow(key, params_.rate_window_seconds);
}

double UpdateDelayPolicy::DelayForWindow(int64_t key,
                                         double rate_window_seconds) const {
  const double count = tracker_->Count(key);
  if (count <= 0.0) return params_.bounds.max_seconds;
  if (rate_window_seconds <= 0.0) rate_window_seconds = 1.0;
  return DelayForRate(count / rate_window_seconds);
}

}  // namespace tarpit
