#include "core/combined_delay.h"

#include <algorithm>

namespace tarpit {

CombinedDelayPolicy::CombinedDelayPolicy(const DelayPolicy* first,
                                         const DelayPolicy* second,
                                         CombineMode mode,
                                         DelayBounds bounds)
    : first_(first), second_(second), mode_(mode), bounds_(bounds) {}

double CombinedDelayPolicy::DelayFor(int64_t key) const {
  const double a = first_->DelayFor(key);
  const double b = second_->DelayFor(key);
  const double combined =
      mode_ == CombineMode::kMax ? std::max(a, b) : a + b;
  return bounds_.Apply(combined);
}

std::string CombinedDelayPolicy::name() const {
  return std::string("combined-") +
         (mode_ == CombineMode::kMax ? "max" : "sum") + "(" +
         first_->name() + "," + second_->name() + ")";
}

}  // namespace tarpit
