#include "core/delay_ledger.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/checksum.h"

namespace tarpit {

namespace {

constexpr uint8_t kSnapshotKind = 1;
constexpr size_t kRecordSize = 1 + 8 + 8 + 4;

void EncodeRecord(double total, uint64_t charges, char* out) {
  out[0] = static_cast<char>(kSnapshotKind);
  std::memcpy(out + 1, &total, 8);
  std::memcpy(out + 9, &charges, 8);
  uint32_t crc = Crc32(out, kRecordSize - 4);
  std::memcpy(out + kRecordSize - 4, &crc, 4);
}

bool DecodeRecord(const char* in, double* total, uint64_t* charges) {
  if (static_cast<uint8_t>(in[0]) != kSnapshotKind) return false;
  uint32_t stored;
  std::memcpy(&stored, in + kRecordSize - 4, 4);
  if (stored != Crc32(in, kRecordSize - 4)) return false;
  std::memcpy(total, in + 1, 8);
  std::memcpy(charges, in + 9, 8);
  return true;
}

std::string ErrnoContext(const char* op, const std::string& what, int err) {
  return std::string(op) + " " + what + ": " + std::strerror(err) +
         " (errno " + std::to_string(err) + ")";
}

}  // namespace

DelayLedger::~DelayLedger() {
  if (fd_ >= 0) ::close(fd_);
}

Status DelayLedger::Open(const std::string& path) {
  if (fd_ >= 0) return Status::FailedPrecondition("ledger already open");
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IOError(ErrnoContext("open ledger", path, errno));
  }
  path_ = path;
  recovered_total_delay_ = 0;
  recovered_charges_ = 0;
  truncated_bytes_ = 0;
  appends_ = 0;

  // Last intact record wins; stop at the first torn/corrupt one.
  uint64_t pos = 0;
  char rec[kRecordSize];
  while (true) {
    ssize_t n = ::pread(fd_, rec, kRecordSize, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd_);
      fd_ = -1;
      return Status::IOError(ErrnoContext("pread ledger", path, err));
    }
    if (n < static_cast<ssize_t>(kRecordSize)) break;  // Clean/torn end.
    double total;
    uint64_t charges;
    if (!DecodeRecord(rec, &total, &charges)) break;  // Corrupt tail.
    recovered_total_delay_ = total;
    recovered_charges_ = charges;
    pos += kRecordSize;
  }
  off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    return Status::IOError(ErrnoContext("lseek ledger", path, err));
  }
  if (static_cast<uint64_t>(end) > pos) {
    if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
      int err = errno;
      ::close(fd_);
      fd_ = -1;
      return Status::IOError(ErrnoContext("ftruncate ledger", path, err));
    }
    truncated_bytes_ = static_cast<uint64_t>(end) - pos;
  }
  return Status::OK();
}

Status DelayLedger::Close() {
  if (fd_ < 0) return Status::OK();
  if (::close(fd_) != 0) {
    int err = errno;
    fd_ = -1;
    return Status::IOError(ErrnoContext("close ledger", path_, err));
  }
  fd_ = -1;
  return Status::OK();
}

Status DelayLedger::Append(double total_delay_seconds, uint64_t charges,
                           bool sync) {
  if (fd_ < 0) return Status::FailedPrecondition("ledger not open");
  char rec[kRecordSize];
  EncodeRecord(total_delay_seconds, charges, rec);
  size_t done = 0;
  while (done < kRecordSize) {
    ssize_t w = ::write(fd_, rec + done, kRecordSize - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(ErrnoContext("write ledger", path_, errno));
    }
    if (w == 0) {
      return Status::IOError(ErrnoContext("write ledger", path_, EIO));
    }
    done += static_cast<size_t>(w);
  }
  ++appends_;
  if (sync) return Sync();
  return Status::OK();
}

Status DelayLedger::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("ledger not open");
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(ErrnoContext("fdatasync ledger", path_, errno));
  }
  return Status::OK();
}

}  // namespace tarpit
