#include "core/adaptive_decay.h"

#include <cassert>
#include <cmath>

namespace tarpit {

AdaptiveDecayTracker::AdaptiveDecayTracker(
    uint64_t universe_size, std::vector<double> decay_candidates,
    double score_smoothing)
    : score_smoothing_(score_smoothing), universe_size_(universe_size) {
  assert(!decay_candidates.empty());
  for (double d : decay_candidates) {
    Candidate c;
    c.decay = d;
    c.tracker = std::make_unique<CountTracker>(universe_size, d);
    candidates_.push_back(std::move(c));
  }
}

void AdaptiveDecayTracker::Record(int64_t key) {
  ++total_requests_;
  const double n = static_cast<double>(
      universe_size_ > 0 ? universe_size_ : 1);
  for (Candidate& c : candidates_) {
    // Mixture smoothing keeps the log finite for never-seen keys while
    // staying scale-free: a tracker's decayed totals may be tiny, and
    // additive smoothing would unfairly flatten its predictions.
    constexpr double kUniformMix = 0.01;
    const double count = c.tracker->Count(key);
    const PopularityStats s = c.tracker->Stats(key);
    const double share = s.total_count > 0 ? count / s.total_count : 0.0;
    const double p =
        (1.0 - kUniformMix) * share + kUniformMix / n;
    const double loss = -std::log(p);
    c.score = score_smoothing_ * c.score +
              (1.0 - score_smoothing_) * loss;
    c.tracker->Record(key);
  }
}

void AdaptiveDecayTracker::ApplyDecayFactor(double factor) {
  for (Candidate& c : candidates_) c.tracker->ApplyDecayFactor(factor);
}

size_t AdaptiveDecayTracker::BestIndex() const {
  size_t best = 0;
  for (size_t i = 1; i < candidates_.size(); ++i) {
    if (candidates_[i].score < candidates_[best].score) best = i;
  }
  return best;
}

PopularityStats AdaptiveDecayTracker::Stats(int64_t key) const {
  return candidates_[BestIndex()].tracker->Stats(key);
}

double AdaptiveDecayTracker::best_decay() const {
  return candidates_[BestIndex()].decay;
}

const CountTracker* AdaptiveDecayTracker::best_tracker() const {
  return candidates_[BestIndex()].tracker.get();
}

}  // namespace tarpit
