#ifndef TARPIT_CORE_SELF_AUDIT_H_
#define TARPIT_CORE_SELF_AUDIT_H_

#include "core/concurrent_db.h"
#include "core/resource_governor.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace tarpit {

/// What the standard invariant checks reconcile. Any null target
/// simply skips the checks that need it.
struct SelfAuditTargets {
  ConcurrentProtectedDatabase* db = nullptr;
  obs::MetricRegistry* metrics = nullptr;
  ResourceGovernor* governor = nullptr;
  /// Allowed relative drift between the charged-delay ledger and the
  /// delay-charged histogram sum (1e-4 = 0.01%, the accounting bar
  /// every bench holds the engine to).
  double ledger_tolerance = 1e-4;
};

/// Registers the engine's standard production invariants on `watchdog`:
///
///  * "ledger-vs-histogram" -- the merged per-stripe delay ledger
///    (Metrics().total_delay_seconds, recorded at delay-compute time)
///    must match the tarpit_delay_charged_ns histogram sum (recorded
///    at request completion) within ledger_tolerance. The two record
///    at different pipeline phases, so the check double-reads the
///    histogram and SKIPS -- never false-positives -- while requests
///    are in flight, parked, or completing between its reads; on a
///    quiescent engine the comparison is exact and a skimmed charge
///    (failpoint concurrent_db.acct_skim) trips it within one pass.
///  * "parked-gauge" -- the tarpit_scheduler_parked gauge must agree
///    with the scheduler's internal parked() count (same double-read
///    discipline; the gauge is written outside the wheel's lock).
///  * "governor-budget" -- the governor's observed peaks must respect
///    its configured budgets: a peak over a nonzero cap means an
///    admission raced past shed-before-collapse.
///
/// Returns the number of checks registered. Every captured target must
/// outlive the watchdog.
size_t InstallStandardChecks(obs::SelfAuditWatchdog* watchdog,
                             const SelfAuditTargets& targets);

}  // namespace tarpit

#endif  // TARPIT_CORE_SELF_AUDIT_H_
