#include "core/protected_db.h"

#include <algorithm>
#include <cstdio>

#include "sql/parser.h"

namespace tarpit {

namespace {

/// Null-object policy for DelayMode::kNone.
class NoDelayPolicy : public DelayPolicy {
 public:
  double DelayFor(int64_t) const override { return 0.0; }
  std::string name() const override { return "none"; }
};

}  // namespace

const char* DelayModeName(DelayMode mode) {
  switch (mode) {
    case DelayMode::kNone: return "none";
    case DelayMode::kAccessPopularity: return "access-popularity";
    case DelayMode::kUpdateRate: return "update-rate";
    case DelayMode::kCombinedMax: return "combined-max";
  }
  return "unknown";
}

Result<std::unique_ptr<ProtectedDatabase>> ProtectedDatabase::Open(
    const std::string& dir, const std::string& table_name, Clock* clock,
    ProtectedDatabaseOptions options) {
  auto pdb = std::unique_ptr<ProtectedDatabase>(
      new ProtectedDatabase(options, clock));
  TARPIT_RETURN_IF_ERROR(pdb->Init(dir, table_name));
  return pdb;
}

Status ProtectedDatabase::Init(const std::string& dir,
                               const std::string& table_name) {
  protected_table_name_ = table_name;
  options_.table_options.metrics = options_.metrics;
  TARPIT_ASSIGN_OR_RETURN(db_, Database::Open(dir, options_.table_options));
  Result<Table*> table = db_->GetTable(table_name);
  if (table.ok()) {
    table_ = *table;
  } else if (!table.status().IsNotFound()) {
    return table.status();
  }
  // table_ may be null until the protected table is created via SQL.

  executor_ = std::make_unique<Executor>(db_.get());
  if (options_.plan_cache_capacity > 0) {
    plan_cache_ = std::make_unique<PlanCache>(options_.plan_cache_capacity,
                                              db_.get());
    if (options_.metrics != nullptr) {
      plan_cache_->BindMetrics(options_.metrics,
                               {{"table", table_name}});
    }
  }

  uint64_t n = options_.universe_size;
  if (n == 0 && table_ != nullptr) n = table_->NumRows();
  if (n == 0) n = 1;

  access_tracker_ =
      std::make_unique<CountTracker>(n, options_.decay_per_request);
  update_tracker_ = std::make_unique<UpdateTracker>(n, 1.0);
  // The update policy's Eq. 9 needs N; default it to the inferred
  // universe when the caller left it unset.
  if (options_.update.n <= 1) options_.update.n = n;

  if (options_.persist_counts) {
    const std::string counts_name = table_name + "__counts";
    Result<Table*> counts = db_->GetTable(counts_name);
    if (counts.ok()) {
      counts_table_ = *counts;
    } else if (counts.status().IsNotFound()) {
      Schema schema(
          {{"key", ColumnType::kInt64}, {"cnt", ColumnType::kDouble}});
      TARPIT_ASSIGN_OR_RETURN(counts_table_,
                              db_->CreateTable(counts_name, schema, "key"));
    } else {
      return counts.status();
    }
    count_cache_ = std::make_unique<CountCache>(
        counts_table_, options_.count_cache_capacity);
    if (options_.metrics != nullptr) {
      obs::MetricRegistry* m = options_.metrics;
      count_cache_->BindMetrics(
          m->GetCounter("tarpit_count_cache_hits_total"),
          m->GetCounter("tarpit_count_cache_misses_total"),
          m->GetCounter("tarpit_count_cache_spills_total"),
          m->GetCounter("tarpit_count_cache_write_behind_flushes_total"));
    }
    // Warm-start: counts persisted by a previous run seed the learned
    // distribution, so delays are sensible immediately after restart
    // instead of re-paying the start-up transient.
    TARPIT_RETURN_IF_ERROR(counts_table_->ScanAll([this](const Row& row) {
      access_tracker_->Seed(row[0].AsInt(), row[1].AsDouble());
      return Status::OK();
    }));
  }

  switch (options_.mode) {
    case DelayMode::kNone:
      policy_ = std::make_unique<NoDelayPolicy>();
      break;
    case DelayMode::kAccessPopularity:
      policy_ = std::make_unique<PopularityDelayPolicy>(
          access_tracker_.get(), options_.popularity);
      break;
    case DelayMode::kUpdateRate: {
      auto up = std::make_unique<UpdateDelayPolicy>(update_tracker_.get(),
                                                    options_.update);
      update_policy_ = up.get();
      policy_ = std::move(up);
      break;
    }
    case DelayMode::kCombinedMax: {
      access_subpolicy_ = std::make_unique<PopularityDelayPolicy>(
          access_tracker_.get(), options_.popularity);
      update_subpolicy_ = std::make_unique<UpdateDelayPolicy>(
          update_tracker_.get(), options_.update);
      update_policy_ = update_subpolicy_.get();
      DelayBounds bounds = options_.popularity.bounds;
      bounds.max_seconds = std::max(bounds.max_seconds,
                                    options_.update.bounds.max_seconds);
      policy_ = std::make_unique<CombinedDelayPolicy>(
          access_subpolicy_.get(), update_subpolicy_.get(),
          CombineMode::kMax, bounds);
      break;
    }
  }
  engine_ = std::make_unique<DelayEngine>(clock_, policy_.get());

  if (options_.persist_delay_ledger) {
    TARPIT_RETURN_IF_ERROR(
        delay_ledger_.Open(dir + "/" + table_name + ".delay_ledger"));
    ledger_base_delay_ = delay_ledger_.recovered_total_delay();
    ledger_base_charges_ = delay_ledger_.recovered_charges();
  }

  open_time_micros_ = clock_->NowMicros();
  return Status::OK();
}

Result<ProtectedResult> ProtectedDatabase::ExecuteSql(
    const std::string& sql) {
  if (plan_cache_ != nullptr) {
    TARPIT_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedStatement> prep,
                            plan_cache_->Get(sql));
    return ExecutePrepared(*prep);
  }
  TARPIT_ASSIGN_OR_RETURN(Statement stmt, Parser::Parse(sql));
  return ExecuteStatement(stmt, nullptr);
}

Result<ProtectedResult> ProtectedDatabase::ExecutePrepared(
    const PreparedStatement& prepared) {
  // The plan is only trustworthy while the schema it was compiled
  // against is still live; fail closed to a fresh planning pass.
  const AccessPlan* hint =
      prepared.has_select_plan &&
              prepared.schema_version == db_->schema_version()
          ? &prepared.select_plan
          : nullptr;
  Result<ProtectedResult> out = ExecuteStatement(prepared.stmt, hint);
  if (out.ok() && plan_cache_ != nullptr &&
      (prepared.stmt.kind == Statement::Kind::kCreateTable ||
       prepared.stmt.kind == Statement::Kind::kCreateIndex)) {
    // Version stamping already makes old entries unservable; this just
    // reclaims them eagerly.
    plan_cache_->Invalidate();
  }
  return out;
}

Result<ProtectedResult> ProtectedDatabase::ExecuteStatement(
    const Statement& stmt, const AccessPlan* select_plan_hint) {
  TARPIT_ASSIGN_OR_RETURN(QueryResult qr,
                          executor_->Execute(stmt, select_plan_hint));

  ProtectedResult out;
  const bool targets_protected_table = [&] {
    switch (stmt.kind) {
      case Statement::Kind::kSelect:
        return stmt.select.table == protected_table_name_;
      case Statement::Kind::kInsert:
        return stmt.insert.table == protected_table_name_;
      case Statement::Kind::kUpdate:
        return stmt.update.table == protected_table_name_;
      case Statement::Kind::kDelete:
        return stmt.del.table == protected_table_name_;
      case Statement::Kind::kCreateTable:
        return stmt.create_table.table == protected_table_name_;
      case Statement::Kind::kCreateIndex:
        return stmt.create_index.table == protected_table_name_;
    }
    return false;
  }();

  if (!targets_protected_table) {
    out.result = std::move(qr);
    return out;
  }

  switch (stmt.kind) {
    case Statement::Kind::kCreateTable: {
      TARPIT_ASSIGN_OR_RETURN(table_,
                              db_->GetTable(protected_table_name_));
      break;
    }
    case Statement::Kind::kCreateIndex:
      break;  // DDL: nothing to learn, nothing to charge.
    case Statement::Kind::kSelect: {
      // Learn, then charge: each returned tuple is one access event and
      // one delay unit.
      for (int64_t key : qr.touched_keys) {
        access_tracker_->Record(key);
        if (count_cache_ != nullptr) {
          TARPIT_RETURN_IF_ERROR(count_cache_->Add(key, 1.0));
        }
      }
      if (update_policy_ != nullptr) {
        const double elapsed =
            std::max(1e-6, (clock_->NowMicros() - open_time_micros_) / 1e6);
        update_policy_->set_rate_window_seconds(elapsed);
      }
      if (options_.defer_delay_sleep) {
        for (int64_t key : qr.touched_keys) {
          out.delay_seconds += engine_->ChargeDeferred(key);
        }
      } else {
        out.delay_seconds = engine_->ChargeAll(qr.touched_keys);
      }
      MaybeSnapshotLedger();
      break;
    }
    case Statement::Kind::kInsert: {
      // Growing the relation grows N.
      access_tracker_->set_universe_size(table_->NumRows());
      update_tracker_->set_universe_size(table_->NumRows());
      if (update_policy_ != nullptr) {
        update_policy_->set_n(table_->NumRows());
      }
      for (int64_t key : qr.touched_keys) update_tracker_->Record(key);
      break;
    }
    case Statement::Kind::kUpdate: {
      for (int64_t key : qr.touched_keys) update_tracker_->Record(key);
      break;
    }
    case Statement::Kind::kDelete: {
      access_tracker_->set_universe_size(std::max<uint64_t>(
          1, table_->NumRows()));
      update_tracker_->set_universe_size(std::max<uint64_t>(
          1, table_->NumRows()));
      if (update_policy_ != nullptr) {
        update_policy_->set_n(table_->NumRows());
      }
      break;
    }
  }
  out.result = std::move(qr);
  return out;
}

void ProtectedDatabase::RecordWriteForConcurrent(
    Statement::Kind kind, uint64_t logical_rows,
    const std::vector<int64_t>& touched_keys) {
  // Mirrors the per-kind switch in ExecuteStatement (including the
  // delete path's unclamped set_n), with the caller's logical row
  // count standing in for table_->NumRows().
  switch (kind) {
    case Statement::Kind::kInsert: {
      update_tracker_->set_universe_size(logical_rows);
      if (update_policy_ != nullptr) update_policy_->set_n(logical_rows);
      for (int64_t key : touched_keys) update_tracker_->Record(key);
      break;
    }
    case Statement::Kind::kUpdate: {
      for (int64_t key : touched_keys) update_tracker_->Record(key);
      break;
    }
    case Statement::Kind::kDelete: {
      update_tracker_->set_universe_size(
          std::max<uint64_t>(1, logical_rows));
      if (update_policy_ != nullptr) update_policy_->set_n(logical_rows);
      break;
    }
    default:
      break;
  }
}

double ProtectedDatabase::DelayForAccessStats(const PopularityStats& stats,
                                              int64_t key) const {
  switch (options_.mode) {
    case DelayMode::kNone:
      return 0.0;
    case DelayMode::kAccessPopularity:
      return PopularityDelayPolicy::DelayFromStats(stats,
                                                   options_.popularity);
    case DelayMode::kUpdateRate: {
      const double window =
          std::max(1e-6, (clock_->NowMicros() - open_time_micros_) / 1e6);
      return update_policy_->DelayForWindow(key, window);
    }
    case DelayMode::kCombinedMax: {
      const double window =
          std::max(1e-6, (clock_->NowMicros() - open_time_micros_) / 1e6);
      const double access = PopularityDelayPolicy::DelayFromStats(
          stats, options_.popularity);
      const double update = update_policy_->DelayForWindow(key, window);
      // Mirror Init's combined bounds: cap = max of the two caps.
      DelayBounds bounds = options_.popularity.bounds;
      bounds.max_seconds = std::max(bounds.max_seconds,
                                    options_.update.bounds.max_seconds);
      return bounds.Apply(std::max(access, update));
    }
  }
  return 0.0;
}

Result<ProtectedResult> ProtectedDatabase::GetByKey(int64_t key) {
  if (table_ == nullptr) {
    return Status::FailedPrecondition("protected table not created yet");
  }
  TARPIT_ASSIGN_OR_RETURN(Row row, table_->GetByKey(key));
  access_tracker_->Record(key);
  if (count_cache_ != nullptr) {
    TARPIT_RETURN_IF_ERROR(count_cache_->Add(key, 1.0));
  }
  if (update_policy_ != nullptr) {
    const double elapsed =
        std::max(1e-6, (clock_->NowMicros() - open_time_micros_) / 1e6);
    update_policy_->set_rate_window_seconds(elapsed);
  }
  ProtectedResult out;
  out.delay_seconds = options_.defer_delay_sleep
                          ? engine_->ChargeDeferred(key)
                          : engine_->Charge(key);
  MaybeSnapshotLedger();
  out.result.rows.push_back(std::move(row));
  out.result.touched_keys.push_back(key);
  for (size_t i = 0; i < table_->schema().num_columns(); ++i) {
    out.result.columns.push_back(table_->schema().column(i).name);
  }
  return out;
}

Status ProtectedDatabase::BulkLoadRow(const Row& row) {
  if (table_ == nullptr) {
    return Status::FailedPrecondition("protected table not created yet");
  }
  TARPIT_RETURN_IF_ERROR(table_->Insert(row));
  access_tracker_->set_universe_size(table_->NumRows());
  update_tracker_->set_universe_size(table_->NumRows());
  if (update_policy_ != nullptr) {
    update_policy_->set_n(table_->NumRows());
  }
  return Status::OK();
}

std::string ProtectedDatabaseMetrics::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "policy=%s N=%llu requests=%llu distinct=%llu charges=%llu "
      "total_delay=%.3fs median=%.1fms p99=%.1fms "
      "count_cache{hits=%llu misses=%llu writes=%llu}",
      policy_name.c_str(),
      static_cast<unsigned long long>(universe_size),
      static_cast<unsigned long long>(total_requests),
      static_cast<unsigned long long>(distinct_keys_seen),
      static_cast<unsigned long long>(delays_charged),
      total_delay_seconds, median_delay_seconds * 1e3,
      p99_delay_seconds * 1e3,
      static_cast<unsigned long long>(count_cache_hits),
      static_cast<unsigned long long>(count_cache_misses),
      static_cast<unsigned long long>(count_cache_backing_writes));
  return buf;
}

ProtectedDatabaseMetrics ProtectedDatabase::Metrics() const {
  ProtectedDatabaseMetrics m;
  m.universe_size = access_tracker_->universe_size();
  m.total_requests = access_tracker_->total_requests();
  m.distinct_keys_seen = access_tracker_->distinct_seen();
  m.delays_charged = ledger_base_charges_ + engine_->charges();
  m.total_delay_seconds =
      ledger_base_delay_ + engine_->total_delay_seconds();
  m.median_delay_seconds = engine_->delay_sketch().Median();
  m.p99_delay_seconds = engine_->delay_sketch().Quantile(0.99);
  if (count_cache_ != nullptr) {
    m.count_cache_hits = count_cache_->hits();
    m.count_cache_misses = count_cache_->misses();
    m.count_cache_backing_writes = count_cache_->backing_writes();
  }
  m.policy_name = policy_->name();
  return m;
}

Status ProtectedDatabase::Checkpoint() {
  if (count_cache_ != nullptr) {
    TARPIT_RETURN_IF_ERROR(count_cache_->FlushAll());
  }
  TARPIT_RETURN_IF_ERROR(
      SnapshotDelayLedger(0, 0, /*sync=*/true));
  return db_->CheckpointAll();
}

Status ProtectedDatabase::SnapshotDelayLedger(double extra_delay_seconds,
                                              uint64_t extra_charges,
                                              bool sync) {
  if (!delay_ledger_.is_open()) return Status::OK();
  const double total = ledger_base_delay_ + engine_->total_delay_seconds() +
                       extra_delay_seconds;
  const uint64_t charges =
      ledger_base_charges_ + engine_->charges() + extra_charges;
  TARPIT_RETURN_IF_ERROR(delay_ledger_.Append(total, charges, sync));
  ledger_last_snapshot_charges_ = engine_->charges() + extra_charges;
  return Status::OK();
}

void ProtectedDatabase::MaybeSnapshotLedger() {
  if (!delay_ledger_.is_open() ||
      options_.delay_ledger_snapshot_every == 0) {
    return;
  }
  if (engine_->charges() - ledger_last_snapshot_charges_ <
      options_.delay_ledger_snapshot_every) {
    return;
  }
  // Unsynced on the cadence: a crash loses at most the last window of
  // accounting; Checkpoint hardens the horizon with fdatasync.
  (void)SnapshotDelayLedger(0, 0, /*sync=*/false);
}

}  // namespace tarpit
