#include "core/self_audit.h"

#include <cmath>
#include <string>

namespace tarpit {

namespace {

/// Sums count/sum across every labels-variant of `name` (the
/// delay-charged histogram is labelled by policy; the ledger spans all
/// of them).
void SumHistogram(const obs::RegistrySnapshot& snap,
                  const std::string& name, int64_t* count,
                  int64_t* sum) {
  *count = 0;
  *sum = 0;
  for (const obs::MetricSnapshot& m : snap.metrics) {
    if (m.kind == obs::MetricKind::kHistogram && m.name == name) {
      *count += m.histogram.count;
      *sum += m.histogram.sum;
    }
  }
}

obs::WatchdogResult CheckLedger(const SelfAuditTargets& t) {
  const std::string hist = "tarpit_delay_charged_ns";
  int64_t count_before = 0, sum_before = 0;
  SumHistogram(t.metrics->Snapshot(), hist, &count_before, &sum_before);
  // The ledger records at delay-compute, the histogram at completion;
  // anything between those phases makes the two legitimately disagree.
  // Skip rather than guess -- the skip is itself counted, so a check
  // that never gets a quiescent window is visible too.
  if (t.db->in_flight_queries() > 0) {
    return obs::WatchdogResult::Skipped("queries in flight");
  }
  DelayScheduler* sched = t.db->delay_scheduler();
  if (sched != nullptr && sched->parked() > 0) {
    return obs::WatchdogResult::Skipped("stalls parked on the wheel");
  }
  const double ledger = t.db->Metrics().total_delay_seconds;
  int64_t count_after = 0, sum_after = 0;
  SumHistogram(t.metrics->Snapshot(), hist, &count_after, &sum_after);
  if (count_after != count_before || sum_after != sum_before) {
    return obs::WatchdogResult::Skipped(
        "histogram moved during the check");
  }
  const double hist_seconds = static_cast<double>(sum_after) * 1e-9;
  if (count_after == 0 && ledger == 0) return obs::WatchdogResult::Ok();
  const double denom = std::max(std::abs(hist_seconds), 1e-9);
  const double drift = std::abs(ledger - hist_seconds) / denom;
  if (drift > t.ledger_tolerance) {
    return obs::WatchdogResult::Violation(
        drift, "charged-delay ledger " + std::to_string(ledger) +
                   "s vs histogram " + std::to_string(hist_seconds) +
                   "s (relative drift " + std::to_string(drift) + ")");
  }
  return obs::WatchdogResult::Ok();
}

obs::WatchdogResult CheckParkedGauge(const SelfAuditTargets& t) {
  const obs::RegistrySnapshot before = t.metrics->Snapshot();
  const obs::MetricSnapshot* g_before =
      before.Find("tarpit_scheduler_parked");
  if (g_before == nullptr) {
    // Scheduler not instrumented (metrics wired without a wheel).
    return obs::WatchdogResult::Ok();
  }
  const uint64_t internal = t.db->delay_scheduler()->parked();
  const obs::MetricSnapshot* g_after =
      t.metrics->Snapshot().Find("tarpit_scheduler_parked");
  if (g_after == nullptr || g_after->value != g_before->value) {
    return obs::WatchdogResult::Skipped("parked gauge moved");
  }
  if (static_cast<uint64_t>(g_after->value) != internal) {
    const double drift = std::abs(static_cast<double>(g_after->value) -
                                  static_cast<double>(internal));
    return obs::WatchdogResult::Violation(
        drift, "tarpit_scheduler_parked gauge " +
                   std::to_string(g_after->value) +
                   " vs scheduler internal " + std::to_string(internal));
  }
  return obs::WatchdogResult::Ok();
}

obs::WatchdogResult CheckGovernorBudget(const SelfAuditTargets& t) {
  const ResourceGovernorOptions& opts = t.governor->options();
  const uint64_t peak_stalls = t.governor->peak_parked_stalls();
  const uint64_t peak_bytes = t.governor->peak_parked_bytes();
  if (opts.max_parked_stalls != 0 &&
      peak_stalls > opts.max_parked_stalls) {
    return obs::WatchdogResult::Violation(
        static_cast<double>(peak_stalls - opts.max_parked_stalls),
        "peak parked stalls " + std::to_string(peak_stalls) +
            " exceeded budget " +
            std::to_string(opts.max_parked_stalls));
  }
  if (opts.max_parked_bytes != 0 && peak_bytes > opts.max_parked_bytes) {
    return obs::WatchdogResult::Violation(
        static_cast<double>(peak_bytes - opts.max_parked_bytes),
        "peak parked bytes " + std::to_string(peak_bytes) +
            " exceeded budget " + std::to_string(opts.max_parked_bytes));
  }
  return obs::WatchdogResult::Ok();
}

}  // namespace

size_t InstallStandardChecks(obs::SelfAuditWatchdog* watchdog,
                             const SelfAuditTargets& targets) {
  size_t installed = 0;
  if (targets.db != nullptr && targets.metrics != nullptr) {
    const SelfAuditTargets t = targets;
    watchdog->RegisterCheck("ledger-vs-histogram",
                            [t] { return CheckLedger(t); });
    ++installed;
    if (targets.db->delay_scheduler() != nullptr) {
      watchdog->RegisterCheck("parked-gauge",
                              [t] { return CheckParkedGauge(t); });
      ++installed;
    }
  }
  if (targets.governor != nullptr) {
    const SelfAuditTargets t = targets;
    watchdog->RegisterCheck("governor-budget",
                            [t] { return CheckGovernorBudget(t); });
    ++installed;
  }
  return installed;
}

}  // namespace tarpit
