#ifndef TARPIT_CORE_POPULARITY_DELAY_H_
#define TARPIT_CORE_POPULARITY_DELAY_H_

#include <cstdint>
#include <string>

#include "core/delay_policy.h"
#include "stats/count_tracker.h"

namespace tarpit {

/// Parameters of the learned popularity-based delay (paper sections
/// 2.1-2.3 in learned form).
struct PopularityDelayParams {
  /// Amplification exponent beta: the learned generalization of Eq. 1.
  double beta = 0.0;
  /// Seconds scale. Under a Zipf(alpha) steady state with R total
  /// requests this reduces to Eq. 1 with scale = R / (H_{N,alpha} * N *
  /// f_max_rate); experiments calibrate it directly.
  double scale = 1.0;
  DelayBounds bounds;
};

/// Charges each tuple a delay inversely proportional to its *learned*
/// popularity, amplified by its learned rank:
///
///   d(key) = scale * rank(key)^beta / count(key),  clamped to bounds,
///
/// where count is the decayed request count and rank its position in
/// the learned ordering. Never-seen tuples (count 0) are charged the
/// cap -- this is exactly the paper's start-up transient behavior: all
/// items start "equally unpopular with frequencies of zero" and the
/// capped delay keeps them servable while the distribution is learned.
class PopularityDelayPolicy : public DelayPolicy {
 public:
  /// `tracker` must outlive the policy.
  PopularityDelayPolicy(const CountTracker* tracker,
                        PopularityDelayParams params);

  double DelayFor(int64_t key) const override;
  std::string name() const override { return "learned-popularity"; }

  /// Pure delay math on an explicit stats snapshot: what DelayFor
  /// charges once the tracker lookup is done. Lets concurrent callers
  /// compute delays from a read-mostly PopularityStats snapshot without
  /// touching shared tracker state.
  static double DelayFromStats(const PopularityStats& stats,
                               const PopularityDelayParams& params);

  const PopularityDelayParams& params() const { return params_; }

 private:
  const CountTracker* tracker_;
  PopularityDelayParams params_;
};

}  // namespace tarpit

#endif  // TARPIT_CORE_POPULARITY_DELAY_H_
