#ifndef TARPIT_CORE_DELAY_SCHEDULER_H_
#define TARPIT_CORE_DELAY_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace tarpit {

/// Opaque handle for a parked stall. 0 is never a valid id.
using TimerId = uint64_t;

/// Groups stalls for bulk cancellation (session eviction). 0 means
/// "ungrouped": such stalls are only cancelled individually or at
/// shutdown.
using StallGroup = uint64_t;

struct DelaySchedulerOptions {
  /// Completion workers: the threads that run expiry callbacks. This
  /// is the *fixed* thread budget that carries every concurrent stall
  /// -- the whole point of the scheduler is that parked requests cost
  /// a wheel entry, not a thread.
  size_t num_dispatchers = 4;
  /// Wheel resolution. Expiries are rounded UP to the next tick, so a
  /// stall is never served short (the defense invariant); it may run
  /// up to one tick long.
  int64_t tick_micros = 1000;
  /// log2 of slots per wheel level.
  size_t wheel_bits = 8;
  /// Hierarchy depth. Horizon = tick * 2^(bits*levels); with the
  /// defaults (1 ms * 256^3) that is ~4.66 hours. Stalls beyond the
  /// horizon -- extraction-scale multi-hour/multi-week charges -- wait
  /// in an overflow min-heap and are promoted onto the wheel when they
  /// come within range.
  size_t levels = 3;
  /// Fire every submission instantly through the completion queue
  /// (simulation mode). Also implied by Clock::IsVirtual(), so
  /// simulations on a VirtualClock never spin a driver thread.
  bool virtual_time = false;
  /// When non-null, the scheduler publishes wheel occupancy, cascade
  /// and overflow-promotion counts, completion-queue depth, and park /
  /// dispatch-lag latency histograms here (names are listed in
  /// docs/INTERNALS.md). Must outlive the scheduler.
  obs::MetricRegistry* metrics = nullptr;
};

/// Hierarchical timer wheel + overflow heap with a dispatcher pool:
/// turns "a stalled request" from a blocked OS thread into a parked
/// wheel entry, so a fixed thread count can carry tens of thousands of
/// concurrently-stalled sessions.
///
/// Threads: one driver (advances the wheel; absent in virtual mode)
/// plus `num_dispatchers` completion workers. Expired/cancelled
/// entries move to a FIFO completion queue; dispatchers pop and invoke
/// the callback OUTSIDE the scheduler lock, so callbacks may submit,
/// cancel, or block without deadlocking the wheel.
///
/// Every submitted callback is invoked exactly once, with
/// `cancelled == false` on expiry and `cancelled == true` when the
/// entry was cancelled (Cancel/CancelGroup/shutdown). Shutdown drains:
/// no callback is ever dropped.
class DelayScheduler {
 public:
  /// `cancelled` is true when the stall was cancelled before expiry.
  using Callback = std::function<void(bool cancelled)>;

  enum class ShutdownMode {
    /// Wait for every parked stall to expire naturally, then stop.
    kDrain,
    /// Cancel all parked stalls (callbacks fire with cancelled=true),
    /// run the completion queue dry, then stop.
    kCancelPending,
  };

  /// `clock` must outlive the scheduler. A virtual clock implies
  /// instant-fire mode.
  explicit DelayScheduler(Clock* clock, DelaySchedulerOptions options = {});

  /// Shutdown(kCancelPending) if still running.
  ~DelayScheduler();

  DelayScheduler(const DelayScheduler&) = delete;
  DelayScheduler& operator=(const DelayScheduler&) = delete;

  /// Parks `done` for `delay_seconds` (rounded up to a tick). Zero or
  /// negative delays complete through the queue immediately, in
  /// submission order. After shutdown the callback fires inline with
  /// cancelled=true and the returned id is 0.
  TimerId Submit(double delay_seconds, Callback done, StallGroup group = 0);

  /// Cancels one parked stall; its callback fires (cancelled=true) on
  /// a dispatcher. False when the id is unknown or already expired.
  bool Cancel(TimerId id);

  /// Cancels every parked stall in `group` (group 0 is a no-op by
  /// definition). Returns the number cancelled.
  size_t CancelGroup(StallGroup group);

  /// Blocks until nothing is parked, queued, or executing.
  void Drain();

  /// Stops the scheduler. Idempotent; joins all threads.
  void Shutdown(ShutdownMode mode = ShutdownMode::kCancelPending);

  // --- Observability (locked snapshots). ---------------------------------
  /// Stalls currently parked on the wheel or overflow heap.
  size_t parked() const;
  /// High-water mark of parked() -- the bench's capacity metric.
  size_t peak_parked() const;
  uint64_t scheduled_total() const;
  uint64_t fired_total() const;
  uint64_t cancelled_total() const;
  /// Level>0 slot drains (entries re-filed toward level 0).
  uint64_t cascades() const;
  /// Overflow-heap entries promoted onto the wheel.
  uint64_t overflow_promotions() const;
  /// Micros covered by the wheel before the overflow heap takes over.
  int64_t horizon_micros() const { return span_ticks_ * tick_micros_; }
  bool virtual_time() const { return virtual_; }
  const DelaySchedulerOptions& options() const { return options_; }

 private:
  struct Entry {
    TimerId id = 0;
    StallGroup group = 0;
    int64_t deadline_tick = 0;
    int64_t submit_micros = 0;
    Callback done;
    // Intrusive wheel-slot list links + location (for O(1) unlink).
    Entry* prev = nullptr;
    Entry* next = nullptr;
    int level = -1;  // -1 => overflow heap.
    size_t slot = 0;
  };
  struct Completion {
    Callback done;
    bool cancelled = false;
  };

  int64_t TickOf(int64_t micros) const { return micros / tick_micros_; }

  // All *Locked methods require mu_.
  void InsertLocked(Entry* e, std::vector<Entry*>* expired);
  void UnlinkLocked(Entry* e);
  void CascadeLocked(size_t level, std::vector<Entry*>* expired);
  void AdvanceToLocked(int64_t now_micros, std::vector<Entry*>* expired);
  void PromoteOverflowLocked(std::vector<Entry*>* expired);
  /// Earliest tick at which anything can expire or cascade, or -1.
  int64_t NextEventTickLocked() const;
  /// Moves entries to the completion queue (deletes them) and wakes
  /// dispatchers.
  void CompleteLocked(std::vector<Entry*>* entries, bool cancelled);
  void DriverLoop();
  void DispatcherLoop();

  Clock* clock_;
  DelaySchedulerOptions options_;
  bool virtual_ = false;
  int64_t tick_micros_ = 1;
  size_t slots_per_level_ = 0;
  size_t slot_mask_ = 0;
  int64_t span_ticks_ = 0;

  mutable std::mutex mu_;
  std::condition_variable timer_cv_;  // Driver: new earlier deadline/stop.
  std::condition_variable ready_cv_;  // Dispatchers: completion queue.
  std::condition_variable drain_cv_;  // Drain()/Shutdown(kDrain).
  bool stop_ = false;
  bool joined_ = false;
  TimerId next_id_ = 1;
  int64_t current_tick_ = 0;
  // wheel_[level][slot]: head of an intrusive doubly-linked list.
  std::vector<std::vector<Entry*>> wheel_;
  // Min-heap on deadline_tick (std::push_heap with greater-than).
  std::vector<Entry*> overflow_;
  std::unordered_map<TimerId, Entry*> entries_;
  std::deque<Completion> ready_;
  size_t executing_ = 0;
  size_t peak_parked_ = 0;
  uint64_t scheduled_total_ = 0;
  uint64_t fired_total_ = 0;
  uint64_t cancelled_total_ = 0;
  uint64_t cascades_ = 0;
  uint64_t overflow_promotions_ = 0;

  // Registry-owned instruments; null when options_.metrics is null so
  // the unobserved hot path pays a single pointer test.
  obs::Counter* m_scheduled_ = nullptr;
  obs::Counter* m_fired_ = nullptr;
  obs::Counter* m_cancelled_ = nullptr;
  obs::Counter* m_cascades_ = nullptr;
  obs::Counter* m_overflow_promotions_ = nullptr;
  obs::Gauge* m_parked_ = nullptr;
  obs::Gauge* m_parked_peak_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Histogram* m_park_micros_ = nullptr;
  obs::Histogram* m_dispatch_lag_micros_ = nullptr;

  std::thread driver_;
  std::vector<std::thread> dispatchers_;
};

}  // namespace tarpit

#endif  // TARPIT_CORE_DELAY_SCHEDULER_H_
