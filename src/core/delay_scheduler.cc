#include "core/delay_scheduler.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

namespace tarpit {

namespace {

/// Min-heap on deadline (std::*_heap builds a max-heap, so invert).
struct DeadlineGreater {
  template <typename E>
  bool operator()(const E* a, const E* b) const {
    return a->deadline_tick > b->deadline_tick;
  }
};

}  // namespace

DelayScheduler::DelayScheduler(Clock* clock, DelaySchedulerOptions options)
    : clock_(clock), options_(options) {
  if (options_.num_dispatchers == 0) options_.num_dispatchers = 1;
  if (options_.tick_micros < 1) options_.tick_micros = 1;
  if (options_.wheel_bits < 1) options_.wheel_bits = 1;
  if (options_.wheel_bits > 16) options_.wheel_bits = 16;
  if (options_.levels < 1) options_.levels = 1;
  // Keep the full span addressable in an int64 shift.
  while (options_.wheel_bits * options_.levels > 32) --options_.levels;

  virtual_ = options_.virtual_time || clock_->IsVirtual();
  tick_micros_ = options_.tick_micros;
  slots_per_level_ = size_t{1} << options_.wheel_bits;
  slot_mask_ = slots_per_level_ - 1;
  span_ticks_ = int64_t{1} << (options_.wheel_bits * options_.levels);
  current_tick_ = TickOf(clock_->NowMicros());

  if (options_.metrics != nullptr) {
    obs::MetricRegistry* m = options_.metrics;
    m_scheduled_ = m->GetCounter("tarpit_scheduler_scheduled_total");
    m_fired_ = m->GetCounter("tarpit_scheduler_fired_total");
    m_cancelled_ = m->GetCounter("tarpit_scheduler_cancelled_total");
    m_cascades_ = m->GetCounter("tarpit_scheduler_cascades_total");
    m_overflow_promotions_ =
        m->GetCounter("tarpit_scheduler_overflow_promotions_total");
    m_parked_ = m->GetGauge("tarpit_scheduler_parked");
    m_parked_peak_ = m->GetGauge("tarpit_scheduler_parked_peak");
    m_queue_depth_ =
        m->GetGauge("tarpit_scheduler_completion_queue_depth");
    obs::HistogramOptions us;
    us.unit = "us";
    m_park_micros_ =
        m->GetHistogram("tarpit_scheduler_park_micros", {}, us);
    m_dispatch_lag_micros_ =
        m->GetHistogram("tarpit_scheduler_dispatch_lag_micros", {}, us);
  }

  wheel_.assign(options_.levels,
                std::vector<Entry*>(slots_per_level_, nullptr));
  dispatchers_.reserve(options_.num_dispatchers);
  for (size_t i = 0; i < options_.num_dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
  if (!virtual_) {
    driver_ = std::thread([this] { DriverLoop(); });
  }
}

DelayScheduler::~DelayScheduler() { Shutdown(ShutdownMode::kCancelPending); }

TimerId DelayScheduler::Submit(double delay_seconds, Callback done,
                               StallGroup group) {
  const int64_t delay_us = Clock::DelayToMicros(delay_seconds);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      ++scheduled_total_;
      if (m_scheduled_ != nullptr) m_scheduled_->Increment();
      const TimerId id = next_id_++;
      if (virtual_ || delay_us == 0) {
        // Instant fire: virtual time charges without waiting, and a
        // zero delay has nothing to wait for. FIFO through the
        // completion queue preserves submission order.
        ++fired_total_;
        ready_.push_back(Completion{std::move(done), false});
        if (m_fired_ != nullptr) m_fired_->Increment();
        if (m_queue_depth_ != nullptr) {
          m_queue_depth_->Set(static_cast<int64_t>(ready_.size()));
        }
        ready_cv_.notify_one();
        return id;
      }
      Entry* e = new Entry;
      e->id = id;
      e->group = group;
      e->done = std::move(done);
      e->submit_micros = clock_->NowMicros();
      // Round the expiry UP to the next tick so a stall is never
      // served short.
      e->deadline_tick =
          (e->submit_micros + delay_us + tick_micros_ - 1) /
          tick_micros_;
      std::vector<Entry*> expired;
      InsertLocked(e, &expired);
      if (expired.empty()) {
        entries_.emplace(id, e);
        peak_parked_ = std::max(peak_parked_, entries_.size());
        if (m_parked_ != nullptr) {
          m_parked_->Set(static_cast<int64_t>(entries_.size()));
          m_parked_peak_->Set(static_cast<int64_t>(peak_parked_));
        }
        // Wake the driver in case this deadline is earlier than what
        // it is sleeping toward.
        timer_cv_.notify_one();
      } else {
        CompleteLocked(&expired, /*cancelled=*/false);
      }
      return id;
    }
  }
  // Shut down: complete inline as cancelled so no submission is ever
  // silently dropped.
  done(/*cancelled=*/true);
  return 0;
}

bool DelayScheduler::Cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  Entry* e = it->second;
  if (e->level >= 0) {
    UnlinkLocked(e);
  } else {
    auto hit = std::find(overflow_.begin(), overflow_.end(), e);
    assert(hit != overflow_.end());
    overflow_.erase(hit);
    std::make_heap(overflow_.begin(), overflow_.end(), DeadlineGreater{});
  }
  std::vector<Entry*> one{e};
  CompleteLocked(&one, /*cancelled=*/true);
  return true;
}

size_t DelayScheduler::CancelGroup(StallGroup group) {
  if (group == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry*> victims;
  for (const auto& [id, e] : entries_) {
    if (e->group == group) victims.push_back(e);
  }
  bool heap_touched = false;
  for (Entry* e : victims) {
    if (e->level >= 0) {
      UnlinkLocked(e);
    } else {
      overflow_.erase(std::find(overflow_.begin(), overflow_.end(), e));
      heap_touched = true;
    }
  }
  if (heap_touched) {
    std::make_heap(overflow_.begin(), overflow_.end(), DeadlineGreater{});
  }
  const size_t n = victims.size();
  CompleteLocked(&victims, /*cancelled=*/true);
  return n;
}

void DelayScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] {
    return entries_.empty() && ready_.empty() && executing_ == 0;
  });
}

void DelayScheduler::Shutdown(ShutdownMode mode) {
  bool do_join = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (mode == ShutdownMode::kDrain && !stop_) {
      drain_cv_.wait(lock, [this] {
        return entries_.empty() && ready_.empty() && executing_ == 0;
      });
    }
    if (!stop_) {
      stop_ = true;
      if (mode == ShutdownMode::kCancelPending && !entries_.empty()) {
        std::vector<Entry*> victims;
        victims.reserve(entries_.size());
        for (const auto& [id, e] : entries_) victims.push_back(e);
        for (Entry* e : victims) {
          if (e->level >= 0) UnlinkLocked(e);
        }
        overflow_.clear();
        CompleteLocked(&victims, /*cancelled=*/true);
      }
      timer_cv_.notify_all();
      ready_cv_.notify_all();
    }
    if (!joined_) {
      joined_ = true;
      do_join = true;
    }
  }
  if (do_join) {
    if (driver_.joinable()) driver_.join();
    for (auto& d : dispatchers_) {
      if (d.joinable()) d.join();
    }
  }
}

// --- Accessors. ----------------------------------------------------------

size_t DelayScheduler::parked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}
size_t DelayScheduler::peak_parked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_parked_;
}
uint64_t DelayScheduler::scheduled_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scheduled_total_;
}
uint64_t DelayScheduler::fired_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_total_;
}
uint64_t DelayScheduler::cancelled_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_total_;
}
uint64_t DelayScheduler::cascades() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cascades_;
}
uint64_t DelayScheduler::overflow_promotions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overflow_promotions_;
}

// --- Wheel mechanics (mu_ held). -----------------------------------------

void DelayScheduler::InsertLocked(Entry* e, std::vector<Entry*>* expired) {
  const int64_t delta = e->deadline_tick - current_tick_;
  if (delta <= 0) {
    e->level = -1;
    expired->push_back(e);
    return;
  }
  if (delta >= span_ticks_) {
    e->level = -1;
    overflow_.push_back(e);
    std::push_heap(overflow_.begin(), overflow_.end(), DeadlineGreater{});
    return;
  }
  const size_t bits = options_.wheel_bits;
  for (size_t level = 0; level < options_.levels; ++level) {
    if (delta < (int64_t{1} << (bits * (level + 1)))) {
      const size_t slot =
          static_cast<size_t>(e->deadline_tick >> (bits * level)) &
          slot_mask_;
      e->level = static_cast<int>(level);
      e->slot = slot;
      e->prev = nullptr;
      e->next = wheel_[level][slot];
      if (e->next != nullptr) e->next->prev = e;
      wheel_[level][slot] = e;
      return;
    }
  }
  assert(false && "delta < span_ticks_ must land in some level");
}

void DelayScheduler::UnlinkLocked(Entry* e) {
  assert(e->level >= 0);
  if (e->prev != nullptr) {
    e->prev->next = e->next;
  } else {
    wheel_[e->level][e->slot] = e->next;
  }
  if (e->next != nullptr) e->next->prev = e->prev;
  e->prev = nullptr;
  e->next = nullptr;
  e->level = -1;
}

void DelayScheduler::CascadeLocked(size_t level,
                                   std::vector<Entry*>* expired) {
  if (level >= options_.levels) return;
  const size_t idx =
      static_cast<size_t>(current_tick_ >> (options_.wheel_bits * level)) &
      slot_mask_;
  // If this level's cursor also just wrapped, the level above owes us
  // its slot first (its entries re-file into this level's slots,
  // possibly including `idx`).
  if (idx == 0) CascadeLocked(level + 1, expired);
  Entry* node = wheel_[level][idx];
  if (node == nullptr) return;
  wheel_[level][idx] = nullptr;
  ++cascades_;
  if (m_cascades_ != nullptr) m_cascades_->Increment();
  while (node != nullptr) {
    Entry* next = node->next;
    node->prev = nullptr;
    node->next = nullptr;
    node->level = -1;
    InsertLocked(node, expired);
    node = next;
  }
}

void DelayScheduler::PromoteOverflowLocked(std::vector<Entry*>* expired) {
  while (!overflow_.empty() &&
         overflow_.front()->deadline_tick - current_tick_ < span_ticks_) {
    std::pop_heap(overflow_.begin(), overflow_.end(), DeadlineGreater{});
    Entry* e = overflow_.back();
    overflow_.pop_back();
    ++overflow_promotions_;
    if (m_overflow_promotions_ != nullptr) {
      m_overflow_promotions_->Increment();
    }
    InsertLocked(e, expired);
  }
}

void DelayScheduler::AdvanceToLocked(int64_t now_micros,
                                     std::vector<Entry*>* expired) {
  const int64_t target = TickOf(now_micros);
  while (current_tick_ < target) {
    // Fast-forward across empty space: nothing expires or cascades
    // before the next event tick, so don't iterate tick-by-tick
    // through an idle hour.
    const int64_t next_event = NextEventTickLocked();
    if (next_event < 0 || next_event > target) {
      current_tick_ = target;
      break;
    }
    if (next_event > current_tick_ + 1) current_tick_ = next_event - 1;
    ++current_tick_;
    const size_t idx0 = static_cast<size_t>(current_tick_) & slot_mask_;
    if (idx0 == 0) CascadeLocked(1, expired);
    // Everything in the level-0 slot for this tick expires now.
    Entry* node = wheel_[0][idx0];
    wheel_[0][idx0] = nullptr;
    while (node != nullptr) {
      Entry* next = node->next;
      node->prev = nullptr;
      node->next = nullptr;
      node->level = -1;
      expired->push_back(node);
      node = next;
    }
    PromoteOverflowLocked(expired);
  }
  PromoteOverflowLocked(expired);
}

int64_t DelayScheduler::NextEventTickLocked() const {
  int64_t best = -1;
  auto consider = [&best](int64_t t) {
    if (best < 0 || t < best) best = t;
  };
  // Level 0 slots hold exact expiry ticks in (current, current+slots].
  for (size_t off = 1; off <= slots_per_level_; ++off) {
    const size_t idx =
        static_cast<size_t>(current_tick_ + static_cast<int64_t>(off)) &
        slot_mask_;
    if (wheel_[0][idx] != nullptr) {
      consider(current_tick_ + static_cast<int64_t>(off));
      break;
    }
  }
  // Higher levels: the next event is the cascade boundary of the
  // nearest non-empty slot (entries inside expire at or after it).
  const size_t bits = options_.wheel_bits;
  for (size_t level = 1; level < options_.levels; ++level) {
    const int64_t base = current_tick_ >> (bits * level);
    for (size_t off = 1; off <= slots_per_level_; ++off) {
      const size_t idx =
          static_cast<size_t>(base + static_cast<int64_t>(off)) &
          slot_mask_;
      if (wheel_[level][idx] != nullptr) {
        consider((base + static_cast<int64_t>(off))
                 << (bits * level));
        break;
      }
    }
  }
  if (!overflow_.empty()) consider(overflow_.front()->deadline_tick);
  return best;
}

void DelayScheduler::CompleteLocked(std::vector<Entry*>* entries,
                                    bool cancelled) {
  if (entries->empty()) return;
  const int64_t now_micros =
      options_.metrics != nullptr ? clock_->NowMicros() : 0;
  for (Entry* e : *entries) {
    entries_.erase(e->id);
    if (cancelled) {
      ++cancelled_total_;
      if (m_cancelled_ != nullptr) m_cancelled_->Increment();
    } else {
      ++fired_total_;
      if (m_fired_ != nullptr) m_fired_->Increment();
    }
    if (options_.metrics != nullptr) {
      m_park_micros_->Record(
          std::max<int64_t>(0, now_micros - e->submit_micros));
      if (!cancelled) {
        // How late past its rounded-up deadline the stall actually
        // fired: driver wakeup jitter plus cascade batching.
        m_dispatch_lag_micros_->Record(std::max<int64_t>(
            0, now_micros - e->deadline_tick * tick_micros_));
      }
    }
    ready_.push_back(Completion{std::move(e->done), cancelled});
    delete e;
  }
  if (m_parked_ != nullptr) {
    m_parked_->Set(static_cast<int64_t>(entries_.size()));
  }
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->Set(static_cast<int64_t>(ready_.size()));
  }
  if (entries->size() == 1) {
    ready_cv_.notify_one();
  } else {
    ready_cv_.notify_all();
  }
  entries->clear();
}

// --- Threads. ------------------------------------------------------------

void DelayScheduler::DriverLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const int64_t next_tick = NextEventTickLocked();
    if (next_tick < 0) {
      timer_cv_.wait(lock);
      continue;
    }
    const int64_t now = clock_->NowMicros();
    const int64_t due = next_tick * tick_micros_;
    if (now < due) {
      timer_cv_.wait_for(lock, std::chrono::microseconds(due - now));
      continue;  // Re-evaluate: submit/cancel/stop may have changed things.
    }
    std::vector<Entry*> expired;
    AdvanceToLocked(now, &expired);
    CompleteLocked(&expired, /*cancelled=*/false);
  }
}

void DelayScheduler::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    ready_cv_.wait(lock, [this] { return stop_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (stop_) return;
      continue;
    }
    Completion c = std::move(ready_.front());
    ready_.pop_front();
    if (m_queue_depth_ != nullptr) {
      m_queue_depth_->Set(static_cast<int64_t>(ready_.size()));
    }
    ++executing_;
    lock.unlock();
    c.done(c.cancelled);  // Outside the lock: callbacks may re-enter.
    lock.lock();
    --executing_;
    if (ready_.empty() && entries_.empty() && executing_ == 0) {
      drain_cv_.notify_all();
    }
  }
}

}  // namespace tarpit
