#ifndef TARPIT_CORE_DELAY_POLICY_H_
#define TARPIT_CORE_DELAY_POLICY_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace tarpit {

/// Clamp applied to every computed delay. The paper caps the maximum
/// delay (section 2.2) so the least popular tuples remain tolerable for
/// the occasional legitimate user; a floor of zero is the default.
struct DelayBounds {
  double min_seconds = 0.0;
  double max_seconds = 10.0;  // The cap used throughout the paper.

  double Apply(double d) const {
    if (!(d == d)) return max_seconds;  // NaN -> worst case.
    return std::clamp(d, min_seconds, max_seconds);
  }
};

/// Strategy mapping a tuple to the delay (in seconds) charged for
/// retrieving it. Implementations read learned statistics; they never
/// mutate them (recording accesses/updates is the caller's job, which
/// keeps "what happened" separate from "what to charge").
class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;

  /// Delay in seconds for retrieving the tuple identified by `key`.
  virtual double DelayFor(int64_t key) const = 0;

  /// Short policy name for logs and experiment output.
  virtual std::string name() const = 0;
};

}  // namespace tarpit

#endif  // TARPIT_CORE_DELAY_POLICY_H_
