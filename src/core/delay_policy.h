#ifndef TARPIT_CORE_DELAY_POLICY_H_
#define TARPIT_CORE_DELAY_POLICY_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace tarpit {

/// Clamp applied to every computed delay. The paper caps the maximum
/// delay (section 2.2) so the least popular tuples remain tolerable for
/// the occasional legitimate user; a floor of zero is the default.
struct DelayBounds {
  double min_seconds = 0.0;
  double max_seconds = 10.0;  // The cap used throughout the paper.

  double Apply(double d) const {
    if (!(d == d)) return max_seconds;  // NaN -> worst case.
    return std::clamp(d, min_seconds, max_seconds);
  }
};

/// Per-principal delay escalation seam. Core front doors multiply a
/// request's computed delay by PenaltyFactor(identity, subnet) when a
/// principal is known; the defense layer's ReputationStore is the
/// implementation (core cannot link against defense, so the interface
/// lives here). Contract: PenaltyFactor returns >= 1.0 -- composition
/// can only escalate, never undercut the base policy -- and every
/// method is safe to call from concurrent request threads.
class PrincipalPenalty {
 public:
  virtual ~PrincipalPenalty() = default;

  /// Multiplier (>= 1.0) applied to the base policy's delay for this
  /// (identity, /24 subnet) pair at `now_seconds`.
  virtual double PenaltyFactor(uint64_t identity, uint32_t subnet24,
                               double now_seconds) const = 0;

  /// Observes one served tuple access so the implementation can learn
  /// extraction-shaped breadth and rate. `universe_n` is the protected
  /// relation's size (0 = unknown).
  virtual void ObserveAccess(uint64_t identity, uint32_t subnet24,
                             int64_t key, uint64_t universe_n,
                             double now_seconds) = 0;
};

/// Strategy mapping a tuple to the delay (in seconds) charged for
/// retrieving it. Implementations read learned statistics; they never
/// mutate them (recording accesses/updates is the caller's job, which
/// keeps "what happened" separate from "what to charge").
class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;

  /// Delay in seconds for retrieving the tuple identified by `key`.
  virtual double DelayFor(int64_t key) const = 0;

  /// Short policy name for logs and experiment output.
  virtual std::string name() const = 0;
};

}  // namespace tarpit

#endif  // TARPIT_CORE_DELAY_POLICY_H_
