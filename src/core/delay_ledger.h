#ifndef TARPIT_CORE_DELAY_LEDGER_H_
#define TARPIT_CORE_DELAY_LEDGER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace tarpit {

/// Durable record of the engine's cumulative charged delay.
///
/// The paper's defense is an accounting promise: every tuple retrieval
/// owes a computed delay, and that debt must not evaporate in a crash —
/// otherwise an extractor could reset its bill by killing the process.
/// The ledger persists absolute snapshots (total_delay_seconds,
/// delays_charged) in an append-only checksummed file:
///
///   record := [kind:u8 = 1][total_delay:f64][charges:u64][crc32:u32]
///
/// Snapshots are absolute, not deltas, so recovery is "last intact
/// record wins" — idempotent from any crash point, no replay math.
/// Open() scans the file, adopts the last intact record, and truncates
/// any torn tail (same self-healing contract as the WAL). Appends are
/// unsynced on the snapshot cadence (cheap, lost only with the last
/// few seconds of accounting) and fdatasync'd at Checkpoint/Close, so
/// the durable horizon is never behind the data's.
class DelayLedger {
 public:
  DelayLedger() = default;
  ~DelayLedger();

  DelayLedger(const DelayLedger&) = delete;
  DelayLedger& operator=(const DelayLedger&) = delete;

  /// Opens (creating if needed) the ledger at `path`, recovers the
  /// last intact snapshot, and truncates any torn tail.
  Status Open(const std::string& path);
  Status Close();

  bool is_open() const { return fd_ >= 0; }

  /// Appends an absolute snapshot; fdatasyncs when `sync`.
  Status Append(double total_delay_seconds, uint64_t charges, bool sync);

  /// fdatasyncs the file now.
  Status Sync();

  /// Totals adopted by the last Open() — the delay debt carried across
  /// the crash/restart boundary.
  double recovered_total_delay() const { return recovered_total_delay_; }
  uint64_t recovered_charges() const { return recovered_charges_; }
  /// Torn-tail bytes discarded by the last Open().
  uint64_t truncated_bytes() const { return truncated_bytes_; }
  /// Records appended since Open().
  uint64_t appends() const { return appends_; }

 private:
  int fd_ = -1;
  std::string path_;
  double recovered_total_delay_ = 0;
  uint64_t recovered_charges_ = 0;
  uint64_t truncated_bytes_ = 0;
  uint64_t appends_ = 0;
};

}  // namespace tarpit

#endif  // TARPIT_CORE_DELAY_LEDGER_H_
